// Multi-origin HA benchmarks: what the CA-sharded, WAL-shipping origin
// fleet costs. Three numbers matter for the deployment story: how far a
// follower trails the leader (replication lag per ∆ batch), how long a
// crashed leader leaves RAs without statuses (failover to first Status),
// and whether sharding actually divides origin load (pulls per shard).
package ritm_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ritm"
	"ritm/internal/serial"
)

// flakyOrigin delegates to inner until killed.
type flakyOrigin struct {
	inner ritm.Origin
	dead  atomic.Bool
}

func (o *flakyOrigin) Pull(ca ritm.CAID, from uint64) (*ritm.PullResponse, error) {
	if o.dead.Load() {
		return nil, fmt.Errorf("connection refused")
	}
	return o.inner.Pull(ca, from)
}
func (o *flakyOrigin) LatestRoot(ca ritm.CAID) (*ritm.SignedRoot, error) {
	if o.dead.Load() {
		return nil, fmt.Errorf("connection refused")
	}
	return o.inner.LatestRoot(ca)
}
func (o *flakyOrigin) CAs() ([]ritm.CAID, error) {
	if o.dead.Load() {
		return nil, fmt.Errorf("connection refused")
	}
	return o.inner.CAs()
}

// shardProbe counts the pulls one shard's origin serves.
type shardProbe struct {
	ritm.Origin
	pulls atomic.Int64
}

func (p *shardProbe) Pull(ca ritm.CAID, from uint64) (*ritm.PullResponse, error) {
	p.pulls.Add(1)
	return p.Origin.Pull(ca, from)
}

// BenchmarkReplicationLag measures the leader→follower shipping cost of
// one ∆'s revocation batch: frame tail, signature + root verification,
// and replica apply. This is the window during which a leader crash loses
// unreplicated records, so it is the HA design's freshness bound.
func BenchmarkReplicationLag(b *testing.B) {
	const batch = 32
	leader := ritm.NewDistributionPointWithStorage(nil, ritm.NewMemoryBackend(), 0)
	defer leader.Close()
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "BenchCA", Delta: 10 * time.Second, Publisher: leader})
	if err != nil {
		b.Fatal(err)
	}
	if err := leader.RegisterCA("BenchCA", authority.PublicKey()); err != nil {
		b.Fatal(err)
	}
	if err := authority.PublishRoot(); err != nil {
		b.Fatal(err)
	}
	if err := authority.PublishRefresh(); err != nil {
		b.Fatal(err)
	}
	followerDP := ritm.NewDistributionPointWithStorage(nil, ritm.NewMemoryBackend(), 0)
	defer followerDP.Close()
	if err := followerDP.RegisterCA("BenchCA", authority.PublicKey()); err != nil {
		b.Fatal(err)
	}
	follower := ritm.NewFollower(followerDP, leader)
	if err := follower.SyncOnce(); err != nil {
		b.Fatal(err)
	}

	gen := serial.NewGenerator(71, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := authority.Revoke(gen.NextN(batch)...); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := follower.SyncOnce(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if lag := follower.Lag("BenchCA"); lag != 0 {
		b.Fatalf("follower still lags %d frames", lag)
	}
	b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "replication-lag-ms")
	b.ReportMetric(batch, "revocations/batch")
}

// BenchmarkFailoverFirstStatus measures the RA-visible outage of a leader
// crash: the caught-up RA's next sync probes the corpse, demotes it,
// pulls the (empty) suffix from the surviving candidate, and serves a
// Status — the paper's availability story in one number.
func BenchmarkFailoverFirstStatus(b *testing.B) {
	const history = 1000
	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "BenchCA", Delta: 10 * time.Second, Publisher: dp})
	if err != nil {
		b.Fatal(err)
	}
	if err := dp.RegisterCA("BenchCA", authority.PublicKey()); err != nil {
		b.Fatal(err)
	}
	if err := authority.PublishRoot(); err != nil {
		b.Fatal(err)
	}
	sns := serial.NewGenerator(72, nil).NextN(history)
	if _, err := authority.Revoke(sns...); err != nil {
		b.Fatal(err)
	}
	if err := authority.PublishRefresh(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		leader := &flakyOrigin{inner: dp}
		agent, err := ritm.NewRA(ritm.RAConfig{
			Roots:            []*ritm.Certificate{authority.RootCertificate()},
			Origins:          []ritm.Origin{leader, dp},
			FailoverCooldown: time.Minute,
			Delta:            10 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := agent.SyncOnce(); err != nil {
			b.Fatal(err)
		}
		leader.dead.Store(true) // crash between ∆s
		b.StartTimer()
		if err := agent.SyncOnce(); err != nil {
			b.Fatal(err)
		}
		if _, err := agent.Status("BenchCA", sns[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "failover-to-first-status-ms")
}

// BenchmarkShardedOriginPulls drives one full pull cycle (every CA once)
// through a CA-sharded origin fleet and reports the per-shard origin
// load: with S shards each origin should see ~CAs/S pulls per cycle, not
// the fleet total.
func BenchmarkShardedOriginPulls(b *testing.B) {
	const (
		shardCount = 4
		caCount    = 32
	)
	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "CA-000", Delta: 10 * time.Second, Publisher: dp})
	if err != nil {
		b.Fatal(err)
	}
	cas := make([]ritm.CAID, caCount)
	for i := range cas {
		cas[i] = ritm.CAID(fmt.Sprintf("CA-%03d", i))
		if err := dp.RegisterCA(cas[i], authority.PublicKey()); err != nil {
			b.Fatal(err)
		}
	}
	probes := make([]*shardProbe, shardCount)
	lists := make([][]ritm.Origin, shardCount)
	for s := range lists {
		probes[s] = &shardProbe{Origin: dp}
		lists[s] = []ritm.Origin{probes[s]}
	}
	so, err := ritm.NewShardedOrigin(lists, ritm.ShardedOriginOptions{})
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ca := range cas {
			if _, err := so.Pull(ca, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	total, maxShard := int64(0), int64(0)
	for _, p := range probes {
		n := p.pulls.Load()
		total += n
		if n > maxShard {
			maxShard = n
		}
	}
	if total != int64(b.N)*caCount {
		b.Fatalf("origin pulls = %d, want %d", total, int64(b.N)*caCount)
	}
	b.ReportMetric(float64(total)/float64(shardCount)/float64(b.N), "origin-pulls/shard-cycle")
	b.ReportMetric(float64(maxShard)/(float64(total)/float64(shardCount)), "shard-load-max/mean")
}
