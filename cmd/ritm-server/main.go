// Command ritm-server runs a TLS-sim echo server whose certificate is
// issued by a running ritm-ca. The server needs no RITM support at all —
// per the paper, deployment is entirely middlebox-driven — so this is a
// plain TLS server; the -announce flag opts into the TLS-terminator
// deployment confirmation of §IV.
//
// Example:
//
//	ritm-server -ca http://127.0.0.1:8440 -listen 127.0.0.1:9443 -subject demo.example
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"ritm"
	"ritm/internal/cert"
	"ritm/internal/tlssim"
)

func main() {
	var (
		caURL    = flag.String("ca", "http://127.0.0.1:8440", "CA base URL (admin API)")
		listen   = flag.String("listen", "127.0.0.1:9443", "listen address")
		subject  = flag.String("subject", "demo.example", "certificate subject")
		announce = flag.Bool("announce", false, "announce RITM deployment in the ServerHello (§IV)")
	)
	flag.Parse()
	if err := run(*caURL, *listen, *subject, *announce); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(caURL, listen, subject string, announce bool) error {
	key, err := ritm.NewSigner()
	if err != nil {
		return err
	}
	leaf, err := requestCertificate(caURL, subject, key)
	if err != nil {
		return err
	}
	log.Printf("ritm-server: certificate for %s, serial %v, issued by %s",
		subject, leaf.SerialNumber, leaf.Issuer)

	cfg := &ritm.TLSConfig{
		Chain:        ritm.Chain{leaf},
		Key:          key,
		AnnounceRITM: announce,
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				serveEcho(tlssim.Server(raw, cfg))
			}()
		}
	}()
	log.Printf("ritm-server: echoing on %s", listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	ln.Close()
	wg.Wait()
	return nil
}

func serveEcho(conn *ritm.TLSConn) {
	defer conn.Close()
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return
		}
		if _, err := conn.Write(buf[:n]); err != nil {
			return
		}
	}
}

// requestCertificate asks the CA admin API to issue a certificate binding
// subject to the server's public key.
func requestCertificate(caURL, subject string, key *ritm.Signer) (*ritm.Certificate, error) {
	u := fmt.Sprintf("%s/admin/issue?subject=%s&pub=%s",
		caURL, url.QueryEscape(subject), hex.EncodeToString(key.Public()))
	resp, err := http.Get(u)
	if err != nil {
		return nil, fmt.Errorf("request certificate: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("request certificate: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("request certificate: status %d: %s", resp.StatusCode, body)
	}
	return cert.Decode(body)
}
