// Command ritm-ra runs a Revocation Agent: it replicates the dictionaries
// of a CA from a dissemination endpoint (pulling every ∆) and proxies TCP
// traffic between clients and one upstream, injecting revocation statuses
// into RITM-supported TLS connections.
//
// Example (after starting ritm-ca and ritm-server):
//
//	ritm-ra -ca http://127.0.0.1:8440 -listen 127.0.0.1:8443 -target 127.0.0.1:9443
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ritm"
	"ritm/internal/cert"
)

func main() {
	var (
		caURL  = flag.String("ca", "http://127.0.0.1:8440", "CA base URL (dissemination + admin API)")
		listen = flag.String("listen", "127.0.0.1:8443", "address clients connect to")
		target = flag.String("target", "127.0.0.1:9443", "upstream server address")
		delta  = flag.Duration("delta", 10*time.Second, "pull interval ∆")
		jitter = flag.Duration("jitter", 0, "max random per-CA pull delay each cycle (avoids fleet-wide stampedes)")
		expire = flag.Duration("expire-shards", 0, "expiry-shard bucket width; >0 drops fully expired shards every cycle")
	)
	flag.Parse()
	if err := run(*caURL, *listen, *target, *delta, *jitter, *expire); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(caURL, listen, target string, delta, jitter, expire time.Duration) error {
	root, err := fetchRoot(caURL)
	if err != nil {
		return err
	}
	agent, err := ritm.NewRA(ritm.RAConfig{
		Roots:  []*ritm.Certificate{root},
		Origin: &ritm.HTTPClient{BaseURL: caURL},
		Delta:  delta,
	})
	if err != nil {
		return err
	}
	// Fail fast if the dissemination endpoint is unreachable; the fetcher
	// also syncs immediately on start, so a transient race here only costs
	// one extra (edge-cached) pull.
	if err := agent.SyncOnce(); err != nil {
		return fmt.Errorf("initial sync: %w", err)
	}
	fetcher := agent.StartFetcherWith(ritm.FetcherOptions{
		Interval:    delta,
		Jitter:      jitter,
		ShardExpiry: expire,
		OnError:     func(err error) { log.Printf("sync: %v", err) },
	})
	defer fetcher.Shutdown()

	proxy, err := agent.NewProxy(listen, target)
	if err != nil {
		return err
	}
	defer proxy.Close()
	proxy.SetOnError(func(err error) { log.Printf("proxy: %v", err) })
	log.Printf("ritm-ra: replicating %s (∆=%v), proxying %s → %s",
		root.Issuer, delta, proxy.Addr(), target)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := agent.Stats()
	log.Printf("shutting down: %d connections (%d supported), %d statuses injected",
		st.ConnectionsTotal, st.ConnectionsSupported, st.StatusesInjected)
	return nil
}

// fetchRoot downloads the CA's self-signed root certificate.
func fetchRoot(caURL string) (*ritm.Certificate, error) {
	resp, err := http.Get(caURL + "/admin/root")
	if err != nil {
		return nil, fmt.Errorf("fetch CA root: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch CA root: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("fetch CA root: %w", err)
	}
	return cert.Decode(body)
}
