// Command ritm-ra runs a Revocation Agent: it replicates the dictionaries
// of a CA from a dissemination endpoint (pulling every ∆) and proxies TCP
// traffic between clients and one upstream, injecting revocation statuses
// into RITM-supported TLS connections.
//
// Example (after starting ritm-ca and ritm-server):
//
//	ritm-ra -ca http://127.0.0.1:8440 -listen 127.0.0.1:8443 -target 127.0.0.1:9443
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ritm"
	"ritm/internal/cert"
)

func main() {
	var (
		caURL  = flag.String("ca", "http://127.0.0.1:8440", "CA base URL (dissemination + admin API)")
		listen = flag.String("listen", "127.0.0.1:8443", "address clients connect to")
		target = flag.String("target", "127.0.0.1:9443", "upstream server address")
		delta  = flag.Duration("delta", 10*time.Second, "pull interval ∆")
	)
	flag.Parse()
	if err := run(*caURL, *listen, *target, *delta); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(caURL, listen, target string, delta time.Duration) error {
	root, err := fetchRoot(caURL)
	if err != nil {
		return err
	}
	agent, err := ritm.NewRA(ritm.RAConfig{
		Roots:  []*ritm.Certificate{root},
		Origin: &ritm.HTTPClient{BaseURL: caURL},
		Delta:  delta,
	})
	if err != nil {
		return err
	}
	if err := agent.SyncOnce(); err != nil {
		return fmt.Errorf("initial sync: %w", err)
	}
	fetcher := agent.StartFetcher(func(err error) { log.Printf("sync: %v", err) })
	defer fetcher.Shutdown()

	proxy, err := agent.NewProxy(listen, target)
	if err != nil {
		return err
	}
	defer proxy.Close()
	proxy.SetOnError(func(err error) { log.Printf("proxy: %v", err) })
	log.Printf("ritm-ra: replicating %s (∆=%v), proxying %s → %s",
		root.Issuer, delta, proxy.Addr(), target)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := agent.Stats()
	log.Printf("shutting down: %d connections (%d supported), %d statuses injected",
		st.ConnectionsTotal, st.ConnectionsSupported, st.StatusesInjected)
	return nil
}

// fetchRoot downloads the CA's self-signed root certificate.
func fetchRoot(caURL string) (*ritm.Certificate, error) {
	resp, err := http.Get(caURL + "/admin/root")
	if err != nil {
		return nil, fmt.Errorf("fetch CA root: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch CA root: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("fetch CA root: %w", err)
	}
	return cert.Decode(body)
}
