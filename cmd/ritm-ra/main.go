// Command ritm-ra runs a Revocation Agent: it replicates the dictionaries
// of one or more CAs from a dissemination endpoint (pulling every ∆) and
// proxies TCP traffic between clients and one upstream, injecting
// revocation statuses into RITM-supported TLS connections.
//
// Example (after starting ritm-ca and ritm-server):
//
//	ritm-ra -ca http://127.0.0.1:8440 -listen 127.0.0.1:8443 -target 127.0.0.1:9443
//
// Multi-origin deployments hand the RA the whole dissemination fleet via
// -origins: ';' separates origin shards (CA ids map onto shards by the
// deployment-wide consistent-hash ring, so the list's shard order must
// match the fleet's), ',' separates failover candidates within a shard,
// preferred first — typically "leader,follower". -ca then takes a
// comma-separated list of admin URLs to fetch every trusted root from:
//
//	ritm-ra -ca http://ca0:8440,http://ca1:8450 \
//	        -origins "http://ca0:8440,http://f0:8441;http://ca1:8450,http://f1:8451" \
//	        -shards 2 -listen 127.0.0.1:8443 -target 127.0.0.1:9443
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux; served only via -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ritm"
	"ritm/internal/cert"
)

func main() {
	var (
		caURL     = flag.String("ca", "http://127.0.0.1:8440", "CA base URL(s), comma-separated (dissemination + admin API); every listed CA's root is trusted")
		origins   = flag.String("origins", "", "sharded origin fleet: ';' separates shards (ring order), ',' separates failover candidates within a shard, preferred first. Empty = pull from -ca directly")
		shardsN   = flag.Int("shards", 0, "expected shard count for -origins; >0 makes a mismatched fleet list a startup error instead of silently wrong routing")
		cooldown  = flag.Duration("failover-cooldown", 0, "how long a demoted origin candidate stays skipped before being probed again (0 = library default)")
		listen    = flag.String("listen", "127.0.0.1:8443", "address clients connect to")
		target    = flag.String("target", "127.0.0.1:9443", "upstream server address")
		delta     = flag.Duration("delta", 10*time.Second, "pull interval ∆")
		jitter    = flag.Duration("jitter", 0, "max random per-CA pull delay each cycle (avoids fleet-wide stampedes)")
		expire    = flag.Duration("expire-shards", 0, "expiry-shard bucket width; >0 drops fully expired shards every cycle")
		chain     = flag.String("edge-chain", "", "comma-separated TTLs of local caching edge layers over the dissemination endpoint, nearest first (e.g. \"5s,30s\" = PoP-style 5s cache in front of a 30s regional-style cache); each layer also negative-caches unknown CAs for its TTL")
		layout    = flag.String("layout", "sorted", "dictionary commitment layout (sorted|forest|forest:<cap>); must match the CA's -layout, or every pulled update is rejected")
		forestCap = flag.Int("forest-bucket-cap", 0, "forest bucket capacity (0 = 256); must match the CA's, and a durable store refuses to reopen under a different one")
		dataDir   = flag.String("data-dir", "", "directory for durable replica state (WAL + checkpoints per CA); a restarted RA resumes at its persisted count and pulls only the missed suffix. Empty = in-memory only")
		ckptEvery = flag.Int("checkpoint-every", 64, "persisted update batches between checkpoint snapshots")
		fsync     = flag.Bool("fsync", true, "fsync the WAL on every persisted update batch")
		shared    = flag.Bool("shared-data", false, "serve read-only from another ritm-ra's -data-dir instead of pulling: the checkpoint is mmap'd (physical pages shared across co-located RAs) and the writer's stamp is polled at ∆/8. Exactly one process writes a data dir; any number may read it")
		intercept = flag.Bool("intercept", false, "terminate real TLS on -listen instead of the tlssim DPI proxy: bumped handshakes drive the dictionary status check (upstream leaf mapped by issuer CN + serial), revoked upstreams are refused with a certificate_revoked alert, and clients see leaves minted under -bump-root")
		bumpRoot  = flag.String("bump-root", "", "PEM file holding the interception root certificate + private key; created (ECDSA P-256, 10y) if missing. Required with -intercept; clients must install the certificate")
		bypass    = flag.String("bypass-file", "", "file listing hosts never bumped (one per line, '#' comments; 'example.com' exact, '.example.com' includes subdomains); matching connections are spliced verbatim")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty = disabled")
	)
	flag.Parse()
	startPprof(*pprofAddr)
	kind, err := ritm.ParseLayout(*layout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *forestCap > 0 {
		if kind.ForestCap() == 0 {
			fmt.Fprintln(os.Stderr, "ritm-ra: -forest-bucket-cap requires -layout forest")
			os.Exit(2)
		}
		kind = ritm.LayoutForestWithCap(*forestCap)
	}
	if *shared && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "ritm-ra: -shared-data requires -data-dir (the writer RA's directory)")
		os.Exit(2)
	}
	if *shared && *origins != "" {
		fmt.Fprintln(os.Stderr, "ritm-ra: -shared-data and -origins are mutually exclusive (a shared reader never pulls)")
		os.Exit(2)
	}
	if *shardsN > 0 {
		if got := len(splitShards(*origins)); got != *shardsN {
			fmt.Fprintf(os.Stderr, "ritm-ra: -shards %d but -origins lists %d shard group(s); CA→shard routing would disagree with the fleet\n", *shardsN, got)
			os.Exit(2)
		}
	}
	if *intercept && *bumpRoot == "" {
		fmt.Fprintln(os.Stderr, "ritm-ra: -intercept requires -bump-root (the minting root's PEM file)")
		os.Exit(2)
	}
	if !*intercept && (*bumpRoot != "" || *bypass != "") {
		fmt.Fprintln(os.Stderr, "ritm-ra: -bump-root/-bypass-file only apply with -intercept")
		os.Exit(2)
	}
	if err := run(*caURL, *origins, *listen, *target, *delta, *jitter, *expire, *cooldown, *chain, kind, *dataDir, *ckptEvery, *fsync, *shared, *intercept, *bumpRoot, *bypass); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// startPprof exposes the pprof endpoints on their own listener. Opt-in
// and on a separate address by design: the profiling surface (heap dumps,
// symbol tables, 30-second CPU captures) must never ride on the address
// clients or the fleet talk to.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("pprof: %v", err)
		}
	}()
}

// splitShards splits an -origins value into its per-shard candidate
// groups (empty input = no groups).
func splitShards(origins string) []string {
	if strings.TrimSpace(origins) == "" {
		return nil
	}
	return strings.Split(origins, ";")
}

// buildShardedOrigin parses -origins into a CA-sharded failover origin,
// layering the -edge-chain caches over every candidate (each candidate is
// an independent upstream; caching in front of the failover wrapper would
// blur which candidate answered and defeat per-candidate demotion).
func buildShardedOrigin(origins, chain string, cooldown time.Duration) (ritm.Origin, error) {
	groups := splitShards(origins)
	shards := make([][]ritm.Origin, len(groups))
	for i, group := range groups {
		for j, raw := range strings.Split(group, ",") {
			u := strings.TrimSpace(raw)
			if u == "" {
				return nil, fmt.Errorf("origins shard %d candidate %d: empty URL", i, j)
			}
			candidate, err := buildEdgeChain(&ritm.HTTPClient{BaseURL: strings.TrimRight(u, "/")}, chain)
			if err != nil {
				return nil, err
			}
			shards[i] = append(shards[i], candidate)
		}
	}
	sharded, err := ritm.NewShardedOrigin(shards, ritm.ShardedOriginOptions{Cooldown: cooldown})
	if err != nil {
		return nil, err
	}
	return sharded, nil
}

// buildEdgeChain layers in-process caching edges over base, mirroring the
// PoP → regional tiers of a CDN hierarchy inside one RA process. ttls is
// nearest-layer-first ("5s,30s" caches 5s in front of 30s); each layer
// negative-caches unknown CAs for its TTL, so a misconfigured trust list
// cannot hammer the remote endpoint either.
func buildEdgeChain(base ritm.Origin, ttls string) (ritm.Origin, error) {
	if ttls == "" {
		return base, nil
	}
	parts := strings.Split(ttls, ",")
	origin := base
	for i := len(parts) - 1; i >= 0; i-- {
		ttl, err := time.ParseDuration(strings.TrimSpace(parts[i]))
		if err != nil {
			return nil, fmt.Errorf("edge-chain layer %d: %w", i, err)
		}
		if ttl <= 0 {
			return nil, fmt.Errorf("edge-chain layer %d: TTL %v must be positive", i, ttl)
		}
		edge := ritm.NewEdgeServer(origin, ttl, nil)
		edge.SetNegativeTTL(ttl)
		origin = edge
	}
	return origin, nil
}

func run(caURL, origins, listen, target string, delta, jitter, expire, cooldown time.Duration, chain string, layout ritm.LayoutKind, dataDir string, ckptEvery int, fsync bool, shared bool, intercept bool, bumpRoot, bypassFile string) error {
	// The trust anchors always come from the CAs, even for shared readers:
	// a reader trusts nothing in the mapped directory beyond what the
	// anchors' keys verify.
	var roots []*ritm.Certificate
	for _, u := range strings.Split(caURL, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		root, err := fetchRoot(strings.TrimRight(u, "/"))
		if err != nil {
			return err
		}
		roots = append(roots, root)
	}
	if len(roots) == 0 {
		return fmt.Errorf("ritm-ra: -ca lists no CA URLs")
	}
	var (
		origin ritm.Origin
		err    error
	)
	switch {
	case shared:
		// Shared readers never pull from the dissemination network; their
		// sync cycle polls the writer's stamp instead.
	case origins != "":
		if origin, err = buildShardedOrigin(origins, chain, cooldown); err != nil {
			return err
		}
	default:
		if origin, err = buildEdgeChain(&ritm.HTTPClient{BaseURL: strings.TrimRight(strings.TrimSpace(strings.Split(caURL, ",")[0]), "/")}, chain); err != nil {
			return err
		}
	}
	var backend ritm.StorageBackend
	if dataDir != "" {
		backend = ritm.NewFileBackend(dataDir, fsync)
	}
	agent, err := ritm.NewRA(ritm.RAConfig{
		Roots:           roots,
		Origin:          origin,
		Delta:           delta,
		Layout:          layout,
		Storage:         backend,
		CheckpointEvery: ckptEvery,
		SharedData:      shared,
	})
	if err != nil {
		return err
	}
	defer agent.Store().Close()
	// Fail fast if the dissemination endpoint is unreachable; the fetcher
	// also syncs immediately on start, so a transient race here only costs
	// one extra (edge-cached) pull.
	if err := agent.SyncOnce(); err != nil {
		return fmt.Errorf("initial sync: %w", err)
	}
	interval := delta
	if shared {
		// A reader's sync cycle is two stat calls against a local file, so
		// poll well inside ∆: the writer is already up to ∆ behind the CA,
		// and a reader lagging another full ∆ behind the writer can serve
		// freshness outside the client's {p, p−1} tolerance.
		interval = delta / 8
		if interval < 50*time.Millisecond {
			interval = 50 * time.Millisecond
		}
	}
	fetcher := agent.StartFetcherWith(ritm.FetcherOptions{
		Interval:    interval,
		Jitter:      jitter,
		ShardExpiry: expire,
		OnError:     func(err error) { log.Printf("sync: %v", err) },
	})
	defer fetcher.Shutdown()

	mode := "replicating"
	if shared {
		mode = "sharing (read-only map of " + dataDir + ")"
	}
	var caIDs []string
	for _, root := range roots {
		caIDs = append(caIDs, string(root.Issuer))
	}
	if origins != "" {
		mode += fmt.Sprintf(" across %d origin shard(s)", len(splitShards(origins)))
	}

	var interceptor *ritm.Interceptor
	if intercept {
		mintRoot, err := ritm.LoadOrCreateMintingRoot(bumpRoot, "RITM Interception Root", ritm.KeyECDSA)
		if err != nil {
			return err
		}
		cfg := ritm.InterceptConfig{
			Minter:  ritm.NewMinter(mintRoot, 0),
			Target:  target,
			OnError: func(err error) { log.Printf("intercept: %v", err) },
		}
		if bypassFile != "" {
			if cfg.Bypass, err = ritm.LoadBypassFile(bypassFile); err != nil {
				return err
			}
		}
		if interceptor, err = agent.NewInterceptor(listen, cfg); err != nil {
			return err
		}
		defer interceptor.Close()
		log.Printf("ritm-ra: %s %s (∆=%v, layout=%s), intercepting TLS %s → %s (bump root %s)",
			mode, strings.Join(caIDs, "+"), delta, layout, interceptor.Addr(), target, bumpRoot)
	} else {
		proxy, err := agent.NewProxy(listen, target)
		if err != nil {
			return err
		}
		defer proxy.Close()
		proxy.SetOnError(func(err error) { log.Printf("proxy: %v", err) })
		log.Printf("ritm-ra: %s %s (∆=%v, layout=%s), proxying %s → %s",
			mode, strings.Join(caIDs, "+"), delta, layout, proxy.Addr(), target)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	st := agent.Stats()
	if intercept {
		ist := interceptor.Stats()
		hits, misses := ist.MintCacheHits, ist.MintCacheMisses
		log.Printf("shutting down: %d connections (%d bumped, %d refused, %d bypassed, %d non-TLS), %d statuses checked, mint cache %d/%d hits",
			st.ConnectionsTotal, st.ConnectionsBumped, st.ConnectionsRefused,
			ist.Bypassed, ist.NonTLS, st.StatusesInjected, hits, hits+misses)
		return nil
	}
	log.Printf("shutting down: %d connections (%d supported), %d statuses injected",
		st.ConnectionsTotal, st.ConnectionsSupported, st.StatusesInjected)
	return nil
}

// fetchRoot downloads the CA's self-signed root certificate.
func fetchRoot(caURL string) (*ritm.Certificate, error) {
	resp, err := http.Get(caURL + "/admin/root")
	if err != nil {
		return nil, fmt.Errorf("fetch CA root: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch CA root: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("fetch CA root: %w", err)
	}
	return cert.Decode(body)
}
