// Command ritm-ca runs a certification authority together with its CDN
// distribution point: it serves the dissemination API that edge servers
// and RAs pull from, keeps the dictionary fresh every ∆, and exposes a
// small admin API for issuing and revoking certificates.
//
// Endpoints (on -listen):
//
//	GET /v1/cas, /v1/pull?ca=&from=, /v1/root?ca=   dissemination (cdn API)
//	GET /admin/root                                  root certificate (binary)
//	GET /admin/issue?subject=S&pub=HEX               issue a certificate
//	GET /admin/revoke?serial=HEX                     revoke a serial number
//
// With -data-dir the CA is durable: the signing key, the dictionary (an
// append-only WAL of signed update batches plus checkpoints), and the
// distribution point's state all live under the directory, and a
// restarted ritm-ca resumes with the exact signed root it crashed with —
// same ETag, so edge caches revalidate with 304s and RAs just pull the
// suffix they missed.
//
// With -follow the process runs as a follower origin instead of a CA: it
// tails the leader's replication stream (GET /v1/replicate), applies every
// shipped WAL record after verifying it against the leader CA's signed
// root, and serves the same dissemination API — including /v1/replicate
// for chained followers. A promoted follower answers with byte-identical
// signed roots and ETags, so edges and RAs fail over to it without
// re-downloading state they already verified. The leader's root
// certificate is fetched once at startup and served on /admin/root, so
// RAs can bootstrap trust from a follower exactly as from the leader.
//
// Examples:
//
//	ritm-ca -id DemoCA -delta 10s -listen 127.0.0.1:8440 -data-dir /var/lib/ritm-ca
//	ritm-ca -follow http://127.0.0.1:8440 -listen 127.0.0.1:8441
package main

import (
	"crypto/ed25519"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux; served only via -pprof
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ritm"
	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

func main() {
	var (
		id        = flag.String("id", "DemoCA", "CA identifier")
		delta     = flag.Duration("delta", 10*time.Second, "dissemination interval ∆")
		listen    = flag.String("listen", "127.0.0.1:8440", "address for the dissemination + admin API")
		layout    = flag.String("layout", "sorted", "dictionary commitment layout (sorted|forest|forest:<cap>); every RA replicating this CA must use the same -layout")
		forestCap = flag.Int("forest-bucket-cap", 0, "forest bucket capacity (0 = 256); shorthand for -layout forest:<cap>, part of the commitment contract and persisted in checkpoints")
		dataDir   = flag.String("data-dir", "", "directory for durable state (signing key, dictionary WAL + checkpoints, distribution-point state); empty = in-memory only")
		ckptEvery = flag.Int("checkpoint-every", 64, "WAL records between checkpoint snapshots")
		fsync     = flag.Bool("fsync", true, "fsync the WAL on every committed update batch (off trades crash-durability of the newest batches for latency)")
		gzipOn    = flag.Bool("gzip", false, "compress large /v1/pull bodies for gzip-accepting clients (Vary-safe, per-encoding ETags)")
		follow    = flag.String("follow", "", "run as a follower origin replicating from this leader URL instead of as a CA; -layout must match the leader's")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6061); empty = disabled")
	)
	flag.Parse()
	startPprof(*pprofAddr)
	kind, err := ritm.ParseLayout(*layout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *forestCap > 0 {
		if kind.ForestCap() == 0 {
			fmt.Fprintln(os.Stderr, "ritm-ca: -forest-bucket-cap requires -layout forest")
			os.Exit(2)
		}
		kind = ritm.LayoutForestWithCap(*forestCap)
	}
	if *follow != "" {
		if err := runFollower(*follow, *delta, *listen, kind, *dataDir, *ckptEvery, *fsync, *gzipOn); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := run(*id, *delta, *listen, kind, *dataDir, *ckptEvery, *fsync, *gzipOn); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// startPprof exposes the pprof endpoints on their own listener. Opt-in
// and on a separate address by design: the profiling surface must never
// ride on the dissemination/admin address the fleet talks to.
func startPprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("pprof: %v", err)
		}
	}()
}

// loadOrCreateSigner persists the CA's Ed25519 seed under dir (mode 0600):
// a durable CA must restart with the identity its dictionary history was
// signed with, or recovery verification refuses the store.
func loadOrCreateSigner(dir string) (*ritm.Signer, error) {
	path := filepath.Join(dir, "ca.key")
	if raw, err := os.ReadFile(path); err == nil {
		seedBytes, err := hex.DecodeString(strings.TrimSpace(string(raw)))
		if err != nil || len(seedBytes) != ed25519.SeedSize {
			return nil, fmt.Errorf("ritm-ca: malformed key file %s", path)
		}
		var seed [32]byte
		copy(seed[:], seedBytes)
		return cryptoutil.NewSignerFromSeed(seed), nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	signer, err := ritm.NewSigner()
	if err != nil {
		return nil, err
	}
	seed := signer.Seed()
	if err := os.WriteFile(path, []byte(hex.EncodeToString(seed[:])+"\n"), 0o600); err != nil {
		return nil, fmt.Errorf("ritm-ca: persist key: %w", err)
	}
	return signer, nil
}

// catchUpOrigin re-feeds the distribution point whatever suffix the
// authority committed (write-ahead) but the origin never ingested. It is
// a no-op when both sides agree — the common case; the gap arises only
// from a crash inside one revocation's WAL-commit→publish window, so it
// is at most a few batches.
func catchUpOrigin(dp *ritm.DistributionPoint, authority *ritm.CA) error {
	auth := authority.Authority()
	caN := auth.Count()
	var dpN uint64
	if root, err := dp.LatestRoot(authority.ID()); err == nil {
		dpN = root.N
	}
	if dpN >= caN {
		return nil
	}
	suffix, err := auth.LogSuffix(dpN, caN)
	if err != nil {
		return err
	}
	var bounds []uint64
	for _, b := range auth.BatchBounds() {
		if b > dpN && b < caN {
			bounds = append(bounds, b)
		}
	}
	log.Printf("ritm-ca: origin recovered at %d of the authority's %d revocations; re-feeding the missed suffix", dpN, caN)
	return dp.PublishIssuanceBounded(&dictionary.IssuanceMessage{Serials: suffix, Root: auth.SignedRoot()}, bounds)
}

func run(id string, delta time.Duration, listen string, layout ritm.LayoutKind, dataDir string, ckptEvery int, fsync, gzipOn bool) error {
	var (
		caBackend, dpBackend ritm.StorageBackend
		signer               *ritm.Signer
		err                  error
	)
	if dataDir != "" {
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return err
		}
		if signer, err = loadOrCreateSigner(dataDir); err != nil {
			return err
		}
		// Authority and distribution point keep separate namespaces: both
		// persist a log named after the CA id.
		caBackend = ritm.NewFileBackend(filepath.Join(dataDir, "authority"), fsync)
		dpBackend = ritm.NewFileBackend(filepath.Join(dataDir, "origin"), fsync)
	} else {
		// Even an in-memory origin keeps a WAL: /v1/replicate ships it to
		// follower origins, so replication works without -data-dir.
		dpBackend = ritm.NewMemoryBackend()
	}
	dp := ritm.NewDistributionPointWithStorage(nil, dpBackend, ckptEvery)
	defer dp.Close()
	authority, err := ritm.NewCA(ritm.CAConfig{
		ID:              ritm.CAID(id),
		Delta:           delta,
		Publisher:       dp,
		Layout:          layout,
		Signer:          signer,
		Storage:         caBackend,
		CheckpointEvery: ckptEvery,
	})
	if err != nil {
		return err
	}
	defer authority.Close()
	if err := dp.RegisterCAWithLayout(ritm.CAID(id), authority.PublicKey(), layout); err != nil {
		return err
	}
	// The CA's log is write-ahead of the publish: a crash between the WAL
	// commit and the distribution point's ingest leaves the recovered
	// authority a suffix ahead of the recovered origin. Feed that suffix
	// (under the authority's batch structure) before anything else, or the
	// root publication below would be rejected as desynchronized on every
	// restart.
	if err := catchUpOrigin(dp, authority); err != nil {
		return fmt.Errorf("ritm-ca: catch origin up to authority: %w", err)
	}
	// On a warm start both sides now hold the same state, so this is a
	// verified no-op; on a cold start it publishes the empty dictionary's
	// root (the bootstrapping manifest of §VIII).
	if err := authority.PublishRoot(); err != nil {
		return err
	}
	refresher := authority.StartRefresher(func(err error) {
		log.Printf("refresh: %v", err)
	})
	defer refresher.Shutdown()

	mux := http.NewServeMux()
	mux.Handle("/v1/", cdn.NewHandler(dp, cdn.HandlerOptions{Gzip: gzipOn}))
	mux.HandleFunc("GET /admin/root", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(authority.RootCertificate().Encode())
	})
	mux.HandleFunc("GET /admin/issue", func(w http.ResponseWriter, r *http.Request) {
		subject := r.URL.Query().Get("subject")
		pubHex := r.URL.Query().Get("pub")
		pub, err := hex.DecodeString(pubHex)
		if subject == "" || err != nil || len(pub) != ed25519.PublicKeySize {
			http.Error(w, "issue requires subject and a 32-byte hex pub", http.StatusBadRequest)
			return
		}
		crt, err := authority.IssueServerCertificate(subject, pub)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		log.Printf("issued %s serial=%v", subject, crt.SerialNumber)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(crt.Encode())
	})
	mux.HandleFunc("GET /admin/revoke", func(w http.ResponseWriter, r *http.Request) {
		sn, err := serial.Parse(r.URL.Query().Get("serial"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if _, err := authority.Revoke(sn); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		log.Printf("revoked serial=%v (n=%d)", sn, authority.Authority().Count())
		fmt.Fprintf(w, "revoked %v\n", sn)
	})

	srv := &http.Server{Addr: listen, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	durable := "in-memory"
	if dataDir != "" {
		durable = fmt.Sprintf("durable at %s (fsync=%v, checkpoint-every=%d)", dataDir, fsync, ckptEvery)
	}
	log.Printf("ritm-ca %s: ∆=%v, layout=%s, n=%d, %s, serving dissemination + admin on %s",
		id, delta, layout, authority.Authority().Count(), durable, listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		log.Print("shutting down")
		return srv.Close()
	}
}

// fetchLeaderRoot downloads the leader CA's root certificate, retrying
// briefly so a follower started alongside its leader does not lose the
// race to the leader's listener.
func fetchLeaderRoot(leaderURL string) (*ritm.Certificate, error) {
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		if attempt > 0 {
			time.Sleep(500 * time.Millisecond)
		}
		resp, err := http.Get(leaderURL + "/admin/root")
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("status %d", resp.StatusCode)
			continue
		}
		if err != nil {
			lastErr = err
			continue
		}
		return cert.Decode(body)
	}
	return nil, fmt.Errorf("fetch leader root from %s: %w", leaderURL, lastErr)
}

// runFollower runs the process as a replicating follower origin: no
// authority, no admin issue/revoke — just a distribution point kept in
// sync by tailing the leader's per-CA WAL and verifying every applied
// suffix against the leader CA's signed root.
func runFollower(leaderURL string, delta time.Duration, listen string, layout ritm.LayoutKind, dataDir string, ckptEvery int, fsync, gzipOn bool) error {
	leaderURL = strings.TrimRight(leaderURL, "/")
	rootCert, err := fetchLeaderRoot(leaderURL)
	if err != nil {
		return fmt.Errorf("ritm-ca: %w", err)
	}
	if !rootCert.IsCA {
		return fmt.Errorf("ritm-ca: leader root %s is not a CA certificate", rootCert.Subject)
	}
	if err := rootCert.CheckSignature(rootCert.PublicKey); err != nil {
		return fmt.Errorf("ritm-ca: leader root is not self-signed: %w", err)
	}
	var dpBackend ritm.StorageBackend
	if dataDir != "" {
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return err
		}
		dpBackend = ritm.NewFileBackend(filepath.Join(dataDir, "origin"), fsync)
	} else {
		dpBackend = ritm.NewMemoryBackend()
	}
	dp := ritm.NewDistributionPointWithStorage(nil, dpBackend, ckptEvery)
	defer dp.Close()
	// The trust anchor comes from the leader's root certificate, not from
	// the leader's goodwill: every replicated record is verified against
	// this key before it is served, so a compromised or split-brain leader
	// feeds us nothing.
	if err := dp.RegisterCAWithLayout(rootCert.Issuer, rootCert.PublicKey, layout); err != nil {
		return err
	}
	leader := &cdn.HTTPClient{BaseURL: leaderURL}
	follower := cdn.NewFollower(dp, leader)
	interval := delta / 4
	if interval <= 0 {
		interval = time.Second
	}
	loop := follower.Start(interval, func(err error) {
		log.Printf("replicate: %v", err)
	})
	defer loop.Shutdown()

	mux := http.NewServeMux()
	mux.Handle("/v1/", cdn.NewHandler(dp, cdn.HandlerOptions{Gzip: gzipOn}))
	// Serve the leader's root certificate so RAs bootstrap trust from a
	// promoted follower exactly as they would from the leader.
	rootBytes := rootCert.Encode()
	mux.HandleFunc("GET /admin/root", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(rootBytes)
	})

	srv := &http.Server{Addr: listen, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	durable := "in-memory"
	if dataDir != "" {
		durable = fmt.Sprintf("durable at %s (fsync=%v, checkpoint-every=%d)", dataDir, fsync, ckptEvery)
	}
	log.Printf("ritm-ca follower of %s: ca=%s, sync every %v, layout=%s, %s, serving dissemination on %s",
		leaderURL, rootCert.Issuer, interval, layout, durable, listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		log.Print("shutting down")
		return srv.Close()
	}
}
