// Command ritm-ca runs a certification authority together with its CDN
// distribution point: it serves the dissemination API that edge servers
// and RAs pull from, keeps the dictionary fresh every ∆, and exposes a
// small admin API for issuing and revoking certificates.
//
// Endpoints (on -listen):
//
//	GET /v1/cas, /v1/pull?ca=&from=, /v1/root?ca=   dissemination (cdn API)
//	GET /admin/root                                  root certificate (binary)
//	GET /admin/issue?subject=S&pub=HEX               issue a certificate
//	GET /admin/revoke?serial=HEX                     revoke a serial number
//
// Example:
//
//	ritm-ca -id DemoCA -delta 10s -listen 127.0.0.1:8440
package main

import (
	"crypto/ed25519"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ritm"
	"ritm/internal/cdn"
	"ritm/internal/serial"
)

func main() {
	var (
		id     = flag.String("id", "DemoCA", "CA identifier")
		delta  = flag.Duration("delta", 10*time.Second, "dissemination interval ∆")
		listen = flag.String("listen", "127.0.0.1:8440", "address for the dissemination + admin API")
		layout = flag.String("layout", "sorted", "dictionary commitment layout (sorted|forest); every RA replicating this CA must use the same -layout")
	)
	flag.Parse()
	kind, err := ritm.ParseLayout(*layout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run(*id, *delta, *listen, kind); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(id string, delta time.Duration, listen string, layout ritm.LayoutKind) error {
	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: ritm.CAID(id), Delta: delta, Publisher: dp, Layout: layout})
	if err != nil {
		return err
	}
	if err := dp.RegisterCAWithLayout(ritm.CAID(id), authority.PublicKey(), layout); err != nil {
		return err
	}
	if err := authority.PublishRoot(); err != nil {
		return err
	}
	refresher := authority.StartRefresher(func(err error) {
		log.Printf("refresh: %v", err)
	})
	defer refresher.Shutdown()

	mux := http.NewServeMux()
	mux.Handle("/v1/", cdn.Handler(dp))
	mux.HandleFunc("GET /admin/root", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(authority.RootCertificate().Encode())
	})
	mux.HandleFunc("GET /admin/issue", func(w http.ResponseWriter, r *http.Request) {
		subject := r.URL.Query().Get("subject")
		pubHex := r.URL.Query().Get("pub")
		pub, err := hex.DecodeString(pubHex)
		if subject == "" || err != nil || len(pub) != ed25519.PublicKeySize {
			http.Error(w, "issue requires subject and a 32-byte hex pub", http.StatusBadRequest)
			return
		}
		crt, err := authority.IssueServerCertificate(subject, pub)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		log.Printf("issued %s serial=%v", subject, crt.SerialNumber)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(crt.Encode())
	})
	mux.HandleFunc("GET /admin/revoke", func(w http.ResponseWriter, r *http.Request) {
		sn, err := serial.Parse(r.URL.Query().Get("serial"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if _, err := authority.Revoke(sn); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		log.Printf("revoked serial=%v (n=%d)", sn, authority.Authority().Count())
		fmt.Fprintf(w, "revoked %v\n", sn)
	})

	srv := &http.Server{Addr: listen, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("ritm-ca %s: ∆=%v, layout=%s, serving dissemination + admin on %s", id, delta, layout, listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
		log.Print("shutting down")
		return srv.Close()
	}
}
