// Command ritm-bench regenerates the tables and figures of the paper's
// evaluation section (§VII). With no arguments it runs every experiment at
// full fidelity; pass identifiers to select a subset, -quick for reduced
// parameters, and -csv for machine-readable output.
//
//	ritm-bench                  # everything, full fidelity
//	ritm-bench fig5 tab3        # selected experiments
//	ritm-bench -quick -csv fig6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ritm/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced parameters (smoke run)")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned text")
		list  = flag.Bool("list", false, "list experiment identifiers and exit")
	)
	flag.Parse()
	if err := run(flag.Args(), *quick, *csv, *list); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(ids []string, quick, csv, list bool) error {
	if list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		tbl, err := experiments.Run(id, quick)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if csv {
			if err := tbl.CSV(os.Stdout); err != nil {
				return err
			}
		} else {
			if err := tbl.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
