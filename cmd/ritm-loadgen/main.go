// Command ritm-loadgen is the macro-benchmark harness: it stands up the
// full RITM stack in one process tree — CA/origin → region × PoP edge
// hierarchy → RA fleet (writers + shared-data readers) → real-TLS
// interceptors — over real TCP sockets, and drives it with an open-loop
// arrival schedule so coordinated omission cannot flatter the tail.
//
// Two tiers are driven concurrently: real TLS clients performing
// intercepted handshakes (crypto-bound; what a user feels), and
// in-process Status lookups against the fleet (how the revocation-check
// path itself is pushed to 10k+/s under revocation churn).
//
// Aggregate results are printed to stdout as benchjson-compatible JSON
// lines; pipe them into the perf trajectory:
//
//	ritm-loadgen -rate 200 -status-rate 10000 -churn 100000 \
//	    | go run ./tools/benchjson -out BENCH_9.json
//
// A human-readable summary goes to stderr, and -cpuprofile/-memprofile
// capture pprof profiles covering exactly the steady-state window.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ritm/internal/dictionary"
	"ritm/internal/loadgen"
	"ritm/internal/netsim"
)

func main() {
	var (
		rate       = flag.Float64("rate", 100, "offered TLS-handshake arrivals/sec (0 disables the tier)")
		statusRate = flag.Float64("status-rate", 10000, "offered in-process status-check arrivals/sec (0 disables the tier)")
		process    = flag.String("process", "poisson", "arrival process: poisson or uniform")
		duration   = flag.Duration("duration", 5*time.Second, "measured steady-state window")
		warmup     = flag.Duration("warmup", 2*time.Second, "unrecorded warmup window")
		regions    = flag.Int("regions", 1, "regional edge servers")
		pops       = flag.Int("pops", 2, "PoP edges per region")
		writers    = flag.Int("writers", 2, "writer RAs (each pulls from a PoP and intercepts)")
		readers    = flag.Int("readers", 1, "shared-data reader RAs mapping writer 0's checkpoints")
		layoutFlag = flag.String("layout", "forest", "dictionary layout: sorted or forest")
		delta      = flag.Duration("delta", time.Second, "∆: CA refresh cadence and RA staleness unit (min 1s)")
		preload    = flag.Int("preload", 20000, "revocations published before the run")
		churn      = flag.Int("churn", 100000, "revocations spread across the run (batch + refresh per ∆)")
		seed       = flag.Int64("seed", 1, "seed for schedules and serial generators")
		dataDir    = flag.String("data-dir", "", "writer WAL/checkpoint dir for shared readers (default: temp dir)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the steady-state window")
		memProfile = flag.String("memprofile", "", "write a heap profile taken at steady-state end")
		allocRuns  = flag.Int("alloc-runs", 200, "samples per allocs/op tier")
		out        = flag.String("out", "", "write JSON-line records here instead of stdout")
		quiet      = flag.Bool("quiet", false, "suppress progress logging on stderr")
	)
	flag.Parse()

	proc, err := netsim.ParseArrivalProcess(*process)
	if err != nil {
		fatal(err)
	}
	var layout dictionary.LayoutKind
	switch *layoutFlag {
	case "sorted":
		layout = dictionary.LayoutSorted
	case "forest":
		layout = dictionary.LayoutForest
	default:
		fatal(fmt.Errorf("unknown -layout %q (want sorted or forest)", *layoutFlag))
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ritm-loadgen: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	rep, err := loadgen.Run(loadgen.Options{
		Stack: loadgen.StackOptions{
			Regions: *regions,
			PoPs:    *pops,
			Writers: *writers,
			Readers: *readers,
			Layout:  layout,
			Delta:   *delta,
			DataDir: *dataDir,
		},
		Process:     proc,
		Rate:        *rate,
		StatusRate:  *statusRate,
		Duration:    *duration,
		Warmup:      *warmup,
		PreloadKeys: *preload,
		ChurnKeys:   *churn,
		Seed:        *seed,
		CPUProfile:  *cpuProfile,
		MemProfile:  *memProfile,
		AllocRuns:   *allocRuns,
		Log:         logf,
	})
	if err != nil {
		fatal(err)
	}

	rep.WriteSummary(os.Stderr)
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if err := rep.WriteJSONLines(dst); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ritm-loadgen:", err)
	os.Exit(1)
}
