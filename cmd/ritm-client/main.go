// Command ritm-client opens a RITM-protected connection (normally through
// a ritm-ra proxy), sends one message, and reports the revocation status
// it verified. With -require-status it refuses connections on which no
// on-path RA delivered a valid status — the bootstrapped-client policy of
// §IV/§V.
//
// Example:
//
//	ritm-client -ca http://127.0.0.1:8440 -addr 127.0.0.1:8443 \
//	    -server-name demo.example -message "hello ritm"
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"ritm"
	"ritm/internal/cert"
)

func main() {
	var (
		caURL      = flag.String("ca", "http://127.0.0.1:8440", "CA base URL (admin API, for the trust anchor)")
		addr       = flag.String("addr", "127.0.0.1:8443", "address to connect to (an RA proxy)")
		serverName = flag.String("server-name", "demo.example", "expected certificate subject")
		message    = flag.String("message", "hello ritm", "message to send")
		require    = flag.Bool("require-status", true, "fail unless a valid revocation status arrives")
		delta      = flag.Duration("delta", 10*time.Second, "fallback ∆ for the freshness policy")
	)
	flag.Parse()
	if err := run(*caURL, *addr, *serverName, *message, *require, *delta); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(caURL, addr, serverName, message string, require bool, delta time.Duration) error {
	root, err := fetchRoot(caURL)
	if err != nil {
		return err
	}
	pool, err := ritm.NewPool(root)
	if err != nil {
		return err
	}

	conn, err := ritm.Dial("tcp", addr, serverName, &ritm.ClientConfig{
		Pool:          pool,
		Delta:         delta,
		RequireStatus: require,
	})
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()

	state := conn.ConnectionState()
	log.Printf("connected: serial=%v issuer=%s resumed=%v server-announces-ritm=%v",
		state.ServerSerial, state.ServerCA, state.Resumed, state.ServerDeploysRITM)
	log.Printf("revocation statuses verified: %d", conn.Verifier().ValidCount())

	if _, err := conn.Write([]byte(message)); err != nil {
		return fmt.Errorf("write: %w", err)
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return fmt.Errorf("read: %w", err)
	}
	fmt.Printf("%s\n", buf[:n])
	return nil
}

func fetchRoot(caURL string) (*ritm.Certificate, error) {
	resp, err := http.Get(caURL + "/admin/root")
	if err != nil {
		return nil, fmt.Errorf("fetch CA root: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch CA root: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("fetch CA root: %w", err)
	}
	return cert.Decode(body)
}
