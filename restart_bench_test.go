// Restart benchmarks: what an origin restart costs the dissemination tier
// with and without the durable state tier. The paper's availability story
// (§VII) assumes restarts are cheap; before PR 5 every RA behind a
// restarted origin re-downloaded the whole dictionary (ErrAhead → full
// Resync), and a restarted RA started cold. BenchmarkWarmStart pins the
// difference: a warm start is a checkpoint+WAL replay plus one
// suffix-sized pull; a cold start is a full-dictionary pull — the gap
// grows linearly with dictionary size while the warm cost stays
// O(missed ∆).
package ritm_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ritm"
	"ritm/internal/serial"
)

// meteredOrigin counts the origin traffic a puller causes.
type meteredOrigin struct {
	ritm.Origin
	pulls atomic.Int64
	bytes atomic.Int64
}

func (m *meteredOrigin) Pull(ca ritm.CAID, from uint64) (*ritm.PullResponse, error) {
	resp, err := m.Origin.Pull(ca, from)
	m.pulls.Add(1)
	if err == nil {
		m.bytes.Add(int64(resp.Size()))
	}
	return resp, err
}

// restartEnv is an origin with n revocations of history (in ∆-cycle
// batches) and the durable-store image of an RA that crashed missed
// batches ago (crashCkpt + crashWAL, replayed into a pristine backend per
// benchmark iteration so no run observes another's catch-up).
type restartEnv struct {
	dp        *ritm.DistributionPoint
	ca        *ritm.CA
	root      *ritm.Certificate
	n         int
	crashCkpt []byte
	crashWAL  [][]byte
}

// crashBackend materializes the crash-time durable state into a fresh
// in-memory backend.
func (e *restartEnv) crashBackend(tb testing.TB) *ritm.MemoryBackend {
	tb.Helper()
	backend := ritm.NewMemoryBackend()
	lg, err := backend.Open("BenchCA")
	if err != nil {
		tb.Fatal(err)
	}
	defer lg.Close()
	if e.crashCkpt != nil {
		if err := lg.Checkpoint(e.crashCkpt); err != nil {
			tb.Fatal(err)
		}
	}
	for _, rec := range e.crashWAL {
		if err := lg.Append(rec); err != nil {
			tb.Fatal(err)
		}
	}
	return backend
}

func newRestartEnv(tb testing.TB, layout ritm.LayoutKind, n, batch, missed int) *restartEnv {
	tb.Helper()
	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "BenchCA", Delta: 10 * time.Second, Publisher: dp, Layout: layout})
	if err != nil {
		tb.Fatal(err)
	}
	if err := dp.RegisterCAWithLayout("BenchCA", authority.PublicKey(), layout); err != nil {
		tb.Fatal(err)
	}
	if err := authority.PublishRoot(); err != nil {
		tb.Fatal(err)
	}
	gen := serial.NewGenerator(0xBE7C4, nil)
	revoke := func(batches int) {
		for i := 0; i < batches; i++ {
			if _, err := authority.Revoke(gen.NextN(batch)...); err != nil {
				tb.Fatal(err)
			}
		}
	}
	env := &restartEnv{dp: dp, ca: authority, root: authority.RootCertificate(), n: n}

	// History up to the crash point, synced and persisted by a first RA
	// (CheckpointEvery 1: the crash image is a checkpoint, the restore
	// path the steady state pays).
	revoke(n/batch - missed)
	backend := ritm.NewMemoryBackend()
	agent, err := ritm.NewRA(ritm.RAConfig{
		Roots:           []*ritm.Certificate{env.root},
		Origin:          dp,
		Delta:           10 * time.Second,
		Layout:          layout,
		Storage:         backend,
		CheckpointEvery: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := agent.SyncOnce(); err != nil {
		tb.Fatal(err)
	}
	if err := agent.Store().Close(); err != nil {
		tb.Fatal(err)
	}
	// Capture the crash image, then the batches the RA misses while "down".
	lg, err := backend.Open("BenchCA")
	if err != nil {
		tb.Fatal(err)
	}
	env.crashCkpt, env.crashWAL, err = lg.Load()
	if err != nil {
		tb.Fatal(err)
	}
	lg.Close()
	revoke(missed)
	return env
}

// BenchmarkWarmStart measures an RA restart: construction (checkpoint
// restore + WAL replay) plus the catch-up sync, warm (durable store,
// suffix-only pull) vs cold (no store, full-dictionary pull), for both
// layouts. Reported per op: origin pulls, origin bytes, and the recovered
// dictionary size.
func BenchmarkWarmStart(b *testing.B) {
	const batch, missed = 64, 8
	for _, layout := range []ritm.LayoutKind{ritm.LayoutSorted, ritm.LayoutForest} {
		for _, n := range []int{8192, 65536} {
			env := newRestartEnv(b, layout, n, batch, missed)
			for _, mode := range []string{"warm", "cold"} {
				b.Run(fmt.Sprintf("layout=%s/n=%d/%s", layout, n, mode), func(b *testing.B) {
					var pulls, bytes int64
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						origin := &meteredOrigin{Origin: env.dp}
						cfg := ritm.RAConfig{
							Roots:  []*ritm.Certificate{env.root},
							Origin: origin,
							Delta:  10 * time.Second,
							Layout: layout,
						}
						if mode == "warm" {
							cfg.Storage = env.crashBackend(b)
						}
						agent, err := ritm.NewRA(cfg)
						if err != nil {
							b.Fatal(err)
						}
						if err := agent.SyncOnce(); err != nil {
							b.Fatal(err)
						}
						r, err := agent.Store().Replica("BenchCA")
						if err != nil {
							b.Fatal(err)
						}
						if r.Count() != uint64(env.n) {
							b.Fatalf("count = %d, want %d", r.Count(), env.n)
						}
						if mode == "warm" {
							if err := agent.Store().Close(); err != nil {
								b.Fatal(err)
							}
						}
						pulls += origin.pulls.Load()
						bytes += origin.bytes.Load()
					}
					b.ReportMetric(float64(pulls)/float64(b.N), "origin-pulls/op")
					b.ReportMetric(float64(bytes)/float64(b.N), "origin-bytes/op")
					b.ReportMetric(float64(missed*batch), "missed-revocations")
				})
			}
		}
	}
}
