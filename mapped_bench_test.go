// Zero-copy serving benchmarks: what the offset-indexed checkpoint v2 and
// the mmap-shared replica store buy. Three claims are pinned here and
// exported to BENCH_6.json by the CI harness:
//
//  1. BenchmarkMappedProve/BenchmarkMappedStatus — proof construction and
//     full status encoding straight off mapped checkpoint bytes stay in
//     the same ballpark as heap snapshots (the mapped views do the same
//     O(log n) work over []byte arithmetic instead of pointer chasing).
//  2. BenchmarkSharedStoreRSS — every co-located reader RA beyond the
//     first costs O(1) heap: its dictionary is the writer's checkpoint
//     mapping, not a private deserialized copy.
//  3. BenchmarkRestartFirstStatus — restart-to-first-Status via the v2
//     map-don't-replay path versus full v1 checkpoint replay.
package ritm_test

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/ra"
	"ritm/internal/serial"
	"ritm/internal/storage"
	"ritm/internal/workload"
)

// mappedEnv is an authority + caught-up replica of n revocations with
// both checkpoint encodings captured, shared across sub-benchmarks.
type mappedEnv struct {
	signer  *cryptoutil.Signer
	layout  dictionary.LayoutKind
	replica *dictionary.Replica
	v1, v2  []byte
	revoked []serial.Number // sample of revoked serials
	absent  []serial.Number
}

func newMappedEnv(tb testing.TB, layout dictionary.LayoutKind, n int) *mappedEnv {
	tb.Helper()
	now := time.Now().Unix()
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		tb.Fatal(err)
	}
	a, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA: "BenchCA", Signer: signer, Delta: 10 * time.Second, ChainLength: 16, Layout: layout,
	}, now)
	if err != nil {
		tb.Fatal(err)
	}
	r := dictionary.NewReplicaWithLayout("BenchCA", signer.Public(), layout)
	gen := serial.NewGenerator(uint64(n)^0xBE0C, nil)
	env := &mappedEnv{signer: signer, layout: layout, replica: r}
	const batch = 4096
	for have := 0; have < n; have += batch {
		k := batch
		if n-have < k {
			k = n - have
		}
		serials := gen.NextN(k)
		msg, err := a.Insert(serials, now)
		if err != nil {
			tb.Fatal(err)
		}
		if err := r.Update(msg); err != nil {
			tb.Fatal(err)
		}
		if have == 0 {
			env.revoked = serials[:256]
		}
	}
	env.absent = gen.NextN(256)
	env.v1 = r.PersistentState().Encode()
	env.v2 = r.PersistentStateV2()
	return env
}

// mappedSnapshot installs the env's v2 checkpoint into a file backend and
// maps it, returning the serving snapshot (and keeping the mapping alive
// via the returned checkpoint).
func (e *mappedEnv) mappedSnapshot(tb testing.TB, dir string) (*dictionary.MappedSnapshot, *storage.MappedCheckpoint) {
	tb.Helper()
	be := storage.NewFileBackend(dir, false)
	lg, err := be.Open("BenchCA")
	if err != nil {
		tb.Fatal(err)
	}
	if err := lg.Checkpoint(e.v2); err != nil {
		tb.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		tb.Fatal(err)
	}
	mc, err := be.Map("BenchCA")
	if err != nil {
		tb.Fatal(err)
	}
	ms, err := dictionary.NewMappedSnapshot("BenchCA", e.signer.Public(), e.layout, mc.State, mc.WAL, time.Now().Unix(), 1)
	if err != nil {
		tb.Fatal(err)
	}
	return ms, mc
}

// proveSource is the common read contract of heap and mapped snapshots.
type proveSource interface {
	Prove(sn serial.Number) (*dictionary.Status, error)
}

func benchProve(b *testing.B, src proveSource, serials []serial.Number, encode bool) {
	b.Helper()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := src.Prove(serials[i%len(serials)])
		if err != nil {
			b.Fatal(err)
		}
		if encode && len(st.Encode()) == 0 {
			b.Fatal("empty status encoding")
		}
	}
}

// BenchmarkMappedProve: proof construction per layout at the largest-CRL
// size, heap snapshot vs mapped checkpoint, revoked and absent serials.
func BenchmarkMappedProve(b *testing.B) {
	n := workload.LargestCRLEntries
	for _, layout := range []dictionary.LayoutKind{dictionary.LayoutSorted, dictionary.LayoutForest} {
		env := newMappedEnv(b, layout, n)
		ms, mc := env.mappedSnapshot(b, b.TempDir())
		defer mc.Close()
		heap := env.replica.Snapshot()
		for _, mode := range []struct {
			name string
			src  proveSource
		}{{"heap", heap}, {"mapped", ms}} {
			for _, probe := range []struct {
				name    string
				serials []serial.Number
			}{{"revoked", env.revoked}, {"absent", env.absent}} {
				b.Run(fmt.Sprintf("layout=%s/n=%d/%s/%s", layout, n, mode.name, probe.name), func(b *testing.B) {
					benchProve(b, mode.src, probe.serials, false)
				})
			}
		}
	}
}

// BenchmarkMappedStatus: the full per-connection unit of work — proof
// construction plus status encoding — heap vs mapped.
func BenchmarkMappedStatus(b *testing.B) {
	n := workload.LargestCRLEntries
	for _, layout := range []dictionary.LayoutKind{dictionary.LayoutSorted, dictionary.LayoutForest} {
		env := newMappedEnv(b, layout, n)
		ms, mc := env.mappedSnapshot(b, b.TempDir())
		defer mc.Close()
		heap := env.replica.Snapshot()
		for _, mode := range []struct {
			name string
			src  proveSource
		}{{"heap", heap}, {"mapped", ms}} {
			b.Run(fmt.Sprintf("layout=%s/n=%d/%s", layout, n, mode.name), func(b *testing.B) {
				benchProve(b, mode.src, env.absent, true)
			})
		}
	}
}

// BenchmarkSharedStoreRSS measures what each additional co-located reader
// RA costs in heap once the first copy of the dictionary exists: reader
// stores map the writer's checkpoint instead of deserializing their own.
// Reported: heap bytes per additional reader, the full-copy footprint a
// non-shared RA would pay, and their ratio (the ≥10× acceptance claim),
// plus the file-backed mapped bytes each reader serves from.
func BenchmarkSharedStoreRSS(b *testing.B) {
	const readers = 4
	n := workload.LargestCRLEntries
	layout := dictionary.LayoutForest
	env := newMappedEnv(b, layout, n)
	dir := b.TempDir()
	be := storage.NewFileBackend(dir, false)
	lg, err := be.Open("BenchCA")
	if err != nil {
		b.Fatal(err)
	}
	if err := lg.Checkpoint(env.v2); err != nil {
		b.Fatal(err)
	}
	lg.Close()
	now := time.Now().Unix()
	rootCert, err := cert.SelfSigned("BenchCA", env.signer, now, now+3600, 10)
	if err != nil {
		b.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	stores := make([]*ra.Store, readers)
	for i := range stores {
		s, err := ra.NewStoreWithOptions(ra.StoreOptions{
			Layout: layout, Storage: be, SharedData: true,
		}, rootCert)
		if err != nil {
			b.Fatal(err)
		}
		stores[i] = s
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	heapPerReader := float64(after.HeapAlloc-before.HeapAlloc) / readers
	fullCopy := float64(env.replica.MemoryFootprint())
	mappedPerReader := float64(stores[0].MappedBytes())

	probe := env.revoked[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := stores[i%readers].Status("BenchCA", probe); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(heapPerReader, "heap-bytes/reader")
	b.ReportMetric(mappedPerReader, "mapped-bytes/reader")
	b.ReportMetric(fullCopy, "full-copy-bytes")
	b.ReportMetric(fullCopy/heapPerReader, "rss-reduction-x")
	for _, s := range stores {
		s.Close()
	}
}

// BenchmarkRestartFirstStatus: time from opening a durable log to the
// first served status, for the v1 checkpoint (full replay: decode +
// re-hash the whole commitment structure) versus v2 (map-don't-replay:
// materialize off the offset-indexed bytes, zero re-hashing), across the
// benchmark sizes the paper's tables use plus 1M.
func BenchmarkRestartFirstStatus(b *testing.B) {
	layout := dictionary.LayoutForest
	for _, n := range []int{65536, workload.LargestCRLEntries, 1_000_000} {
		env := newMappedEnv(b, layout, n)
		for _, mode := range []struct {
			name string
			ckpt []byte
		}{{"replay-v1", env.v1}, {"map-v2", env.v2}} {
			b.Run(fmt.Sprintf("layout=%s/n=%d/%s", layout, n, mode.name), func(b *testing.B) {
				pub := env.signer.Public()
				now := time.Now().Unix()
				probe := env.revoked[0]
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					backend := storage.NewMemory()
					lg, err := backend.Open("BenchCA")
					if err != nil {
						b.Fatal(err)
					}
					if err := lg.Checkpoint(mode.ckpt); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					r, err := dictionary.RecoverReplicaLog(lg, "BenchCA", pub, layout, now)
					if err != nil {
						b.Fatal(err)
					}
					st, err := r.Prove(probe)
					if err != nil {
						b.Fatal(err)
					}
					if len(st.Encode()) == 0 {
						b.Fatal("empty status")
					}
					b.StopTimer()
					lg.Close()
					b.StartTimer()
				}
			})
		}
	}
}
