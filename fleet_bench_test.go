// Fleet benchmarks: N Revocation Agents syncing in lockstep through one
// edge server against one distribution point — the deployment shape RITM's
// economy depends on (§II–III: the CDN tier absorbs RA fleet load; Fig 5's
// worst case is every request reaching the origin). The interesting
// quantities are the edge hit rate (how much of the fleet's pull traffic
// the edge absorbs, counting singleflight-collapsed pulls), and origin
// pulls per RA (how little of it the origin sees).
package ritm_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ritm"
	"ritm/internal/serial"
)

// fleetEnv is one origin, one edge, and a fleet of RAs behind it.
type fleetEnv struct {
	dp     *ritm.DistributionPoint
	ca     *ritm.CA
	edge   *ritm.EdgeServer
	agents []*ritm.RA
	gen    *serial.Generator
}

func newFleet(tb testing.TB, n int, ttl time.Duration) *fleetEnv {
	tb.Helper()
	dp := ritm.NewDistributionPoint(nil)
	authority, err := ritm.NewCA(ritm.CAConfig{ID: "FleetCA", Delta: 10 * time.Second, Publisher: dp})
	if err != nil {
		tb.Fatal(err)
	}
	if err := dp.RegisterCA("FleetCA", authority.PublicKey()); err != nil {
		tb.Fatal(err)
	}
	if err := authority.PublishRoot(); err != nil {
		tb.Fatal(err)
	}
	edge := ritm.NewEdgeServer(dp, ttl, nil)
	agents := make([]*ritm.RA, n)
	for i := range agents {
		agents[i], err = ritm.NewRA(ritm.RAConfig{
			Roots:  []*ritm.Certificate{authority.RootCertificate()},
			Origin: edge,
			Delta:  10 * time.Second,
		})
		if err != nil {
			tb.Fatal(err)
		}
	}
	return &fleetEnv{
		dp:     dp,
		ca:     authority,
		edge:   edge,
		agents: agents,
		gen:    serial.NewGenerator(0xF1EE7, nil),
	}
}

// cycle publishes one revocation batch and syncs the whole fleet
// concurrently — one ∆ boundary of a lockstep deployment.
func (f *fleetEnv) cycle(tb testing.TB, revocations int) {
	tb.Helper()
	if revocations > 0 {
		if _, err := f.ca.Revoke(f.gen.NextN(revocations)...); err != nil {
			tb.Fatal(err)
		}
	}
	errs := make(chan error, len(f.agents))
	var wg sync.WaitGroup
	for _, a := range f.agents {
		wg.Add(1)
		go func(a *ritm.RA) {
			defer wg.Done()
			if err := a.SyncOnce(); err != nil {
				errs <- err
			}
		}(a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		tb.Fatal(err)
	}
}

// TestFleetPullSharing is the scaling contract of the dissemination tier:
// 16 RAs at the same count must cost the origin at most one pull per
// (ca, from) — concurrent misses collapse, everyone else hits the edge
// cache — for an edge hit rate ≥ 90%.
func TestFleetPullSharing(t *testing.T) {
	const (
		ras    = 16
		cycles = 20
	)
	f := newFleet(t, ras, time.Hour)
	// Each cycle publishes before the fleet pulls, so the fleet always
	// pulls a key the edge has not served stale (a real deployment gets
	// the same property from TTL ≤ ∆: entries die before the next count).
	for i := 0; i < cycles; i++ {
		f.cycle(t, 50)
	}

	st := f.edge.Stats()
	total := st.Hits + st.Misses + st.CollapsedPulls
	if want := ras * cycles; total != want {
		t.Fatalf("edge served %d pulls, want %d", total, want)
	}
	// ≤ 1 origin pull per distinct (ca, from): the fleet advances through
	// `cycles` distinct counts.
	if origin := f.dp.Stats().Pulls; origin > cycles {
		t.Errorf("origin saw %d pulls for %d distinct counts: stampede not collapsed", origin, cycles)
	}
	if st.Misses > cycles {
		t.Errorf("edge misses = %d, want ≤ %d", st.Misses, cycles)
	}
	hitRate := float64(total-st.Misses) / float64(total)
	if hitRate < 0.9 {
		t.Errorf("edge hit rate = %.3f, want ≥ 0.90 (hits=%d collapsed=%d misses=%d)",
			hitRate, st.Hits, st.CollapsedPulls, st.Misses)
	}
	// Every agent landed on the same final count.
	want := uint64(cycles * 50)
	for i, a := range f.agents {
		r, err := a.Store().Replica("FleetCA")
		if err != nil {
			t.Fatal(err)
		}
		if r.Count() != want {
			t.Errorf("agent %d count = %d, want %d", i, r.Count(), want)
		}
	}
}

// BenchmarkFleetPull measures one ∆ boundary of an N-RA fleet (publish a
// batch, every RA syncs concurrently through the shared edge) and reports
// the dissemination-tier health metrics: edge-hit-rate (collapsed pulls
// count as served-without-origin), collapsed-pulls/cycle, and
// origin-pulls/ra over the whole run. ttl=0 is the Fig 5 worst case —
// every pull reaches the origin.
func BenchmarkFleetPull(b *testing.B) {
	for _, cfg := range []struct {
		ras int
		ttl time.Duration
	}{
		{4, time.Hour},
		{16, time.Hour},
		{16, 0},
	} {
		name := fmt.Sprintf("ras=%d/ttl=%v", cfg.ras, cfg.ttl)
		b.Run(name, func(b *testing.B) {
			f := newFleet(b, cfg.ras, cfg.ttl)
			f.cycle(b, 1000) // steady-state dictionary before measuring
			base := f.edge.Stats()
			basePulls := f.dp.Stats().Pulls
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.cycle(b, 100)
			}
			b.StopTimer()

			st := f.edge.Stats()
			hits := st.Hits - base.Hits
			misses := st.Misses - base.Misses
			collapsed := st.CollapsedPulls - base.CollapsedPulls
			total := hits + misses + collapsed
			if total > 0 {
				b.ReportMetric(float64(total-misses)/float64(total), "edge-hit-rate")
			}
			b.ReportMetric(float64(collapsed)/float64(b.N), "collapsed-pulls/cycle")
			b.ReportMetric(float64(f.dp.Stats().Pulls-basePulls)/float64(cfg.ras), "origin-pulls/ra")
			b.ReportMetric(float64(st.Entries), "edge-entries")
		})
	}
}
