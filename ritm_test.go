package ritm_test

import (
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ritm"
	"ritm/internal/cdn"
	"ritm/internal/ritmclient"
	"ritm/internal/tlssim"
)

// deployment is a full RITM deployment built exclusively through the
// public facade, with the CDN reached over its real HTTP transport.
type deployment struct {
	ca     *ritm.CA
	dp     *ritm.DistributionPoint
	agent  *ritm.RA
	pool   *ritm.Pool
	chain  ritm.Chain
	key    *ritm.Signer
	server net.Listener
	proxy  *ritm.RAProxy
	wg     sync.WaitGroup
}

func newDeployment(t *testing.T, delta time.Duration) *deployment {
	return newDeploymentWithLayout(t, delta, ritm.LayoutSorted)
}

func newDeploymentWithLayout(t *testing.T, delta time.Duration, layout ritm.LayoutKind) *deployment {
	t.Helper()
	d := &deployment{}
	d.dp = ritm.NewDistributionPoint(nil)
	var err error
	d.ca, err = ritm.NewCA(ritm.CAConfig{ID: "IntegrationCA", Delta: delta, Publisher: d.dp, Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.dp.RegisterCAWithLayout("IntegrationCA", d.ca.PublicKey(), layout); err != nil {
		t.Fatal(err)
	}
	if err := d.ca.PublishRoot(); err != nil {
		t.Fatal(err)
	}

	// The RA pulls over real HTTP, as a production RA would.
	cdnSrv := httptest.NewServer(cdn.Handler(ritm.NewEdgeServer(d.dp, 0, nil)))
	t.Cleanup(cdnSrv.Close)
	d.agent, err = ritm.NewRA(ritm.RAConfig{
		Roots:  []*ritm.Certificate{d.ca.RootCertificate()},
		Origin: &ritm.HTTPClient{BaseURL: cdnSrv.URL, Client: http.DefaultClient},
		Delta:  delta,
		Layout: layout,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	d.key, err = ritm.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := d.ca.IssueServerCertificate("integration.example", d.key.Public())
	if err != nil {
		t.Fatal(err)
	}
	d.chain = ritm.Chain{leaf}
	d.pool, err = ritm.NewPool(d.ca.RootCertificate())
	if err != nil {
		t.Fatal(err)
	}

	// Echo server behind the RA proxy.
	d.server, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serverCfg := &ritm.TLSConfig{Chain: d.chain, Key: d.key}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		for {
			raw, err := d.server.Accept()
			if err != nil {
				return
			}
			d.wg.Add(1)
			go func() {
				defer d.wg.Done()
				conn := tlssim.Server(raw, serverCfg)
				defer conn.Close()
				buf := make([]byte, 1024)
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					if _, err := conn.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	d.proxy, err = d.agent.NewProxy("127.0.0.1:0", d.server.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.proxy.Close()
		d.server.Close()
		d.wg.Wait()
	})
	return d
}

func TestEndToEndThroughPublicAPI(t *testing.T) {
	// Both dictionary layouts run the identical deployment: the layout is
	// invisible to the wire protocols — only roots and proofs change shape.
	for _, layout := range []ritm.LayoutKind{ritm.LayoutSorted, ritm.LayoutForest} {
		t.Run(layout.String(), func(t *testing.T) {
			d := newDeploymentWithLayout(t, 10*time.Second, layout)

			conn, err := ritm.Dial("tcp", d.proxy.Addr().String(), "integration.example", &ritm.ClientConfig{
				Pool:          d.pool,
				Delta:         10 * time.Second,
				RequireStatus: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			if conn.Verifier().ValidCount() == 0 {
				t.Error("no verified status")
			}
			if _, err := conn.Write([]byte("integration")); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 32)
			n, err := conn.Read(buf)
			if err != nil || string(buf[:n]) != "integration" {
				t.Fatalf("echo: %q, %v", buf[:n], err)
			}
		})
	}
}

// TestEndToEndForestRevocation revokes through a forest-layout deployment:
// the injected presence proof (with its spine segment) must block the
// handshake exactly as the sorted layout's does.
func TestEndToEndForestRevocation(t *testing.T) {
	d := newDeploymentWithLayout(t, 10*time.Second, ritm.LayoutForest)
	if _, err := d.ca.RevokeCertificate(d.chain.Leaf()); err != nil {
		t.Fatal(err)
	}
	if err := d.agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	_, err := ritm.Dial("tcp", d.proxy.Addr().String(), "integration.example", &ritm.ClientConfig{
		Pool:          d.pool,
		Delta:         10 * time.Second,
		RequireStatus: true,
	})
	if err == nil {
		t.Fatal("revoked certificate accepted end-to-end under forest layout")
	}
	if !errors.Is(err, tlssim.ErrStatusRejected) && !errors.Is(err, ritmclient.ErrRevoked) {
		t.Errorf("err = %v", err)
	}
}

func TestEndToEndRevocationBlocksHandshake(t *testing.T) {
	d := newDeployment(t, 10*time.Second)
	if _, err := d.ca.RevokeCertificate(d.chain.Leaf()); err != nil {
		t.Fatal(err)
	}
	if err := d.agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	_, err := ritm.Dial("tcp", d.proxy.Addr().String(), "integration.example", &ritm.ClientConfig{
		Pool:          d.pool,
		Delta:         10 * time.Second,
		RequireStatus: true,
	})
	if err == nil {
		t.Fatal("revoked certificate accepted end-to-end")
	}
	if !errors.Is(err, tlssim.ErrStatusRejected) && !errors.Is(err, ritmclient.ErrRevoked) {
		t.Errorf("err = %v", err)
	}
}

func TestEndToEndConsistencyChecking(t *testing.T) {
	d := newDeployment(t, 10*time.Second)
	auditor := ritm.NewAuditor(d.pool)
	ms := ritm.NewMapServer()
	ms.Register("dp", d.dp)
	ms.Register("ra", d.agent.Store())

	res := ritm.CrossCheck(ms, auditor, "IntegrationCA")
	if len(res.Errors) != 0 {
		t.Fatalf("cross-check errors: %v", res.Errors)
	}
	if len(res.Proofs) != 0 {
		t.Fatalf("honest deployment flagged: %d proofs", len(res.Proofs))
	}
	if res.RootsCompared != 2 {
		t.Errorf("compared %d roots", res.RootsCompared)
	}
}

func TestExperimentRegistryThroughFacade(t *testing.T) {
	ids := ritm.ExperimentIDs()
	if len(ids) != 12 {
		t.Fatalf("experiments = %v", ids)
	}
	tbl, err := ritm.RunExperiment("tab4", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Errorf("tab4 rows = %d", len(tbl.Rows))
	}
	if len(ritm.BaselineSchemes()) != 8 {
		t.Error("baseline schemes incomplete")
	}
}
