package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/url"
	"os"
	"path/filepath"

	"ritm/internal/mmap"
)

// This file is the read-only side of the durable tier: mapping a log's
// state without opening it for writing. N co-located RA processes can
// point at one writer's data directory; each reader maps the current
// checkpoint (sharing physical pages via mmap where the platform allows)
// and polls a cheap Stamp to learn when the writer installed a new one.
//
// Readers never mutate anything — no torn-tail truncation, no WAL
// renumbering, no checkpoint repair. The writer's atomic-rename install
// discipline is what makes this safe: a mapped checkpoint file is never
// overwritten in place, so a live mapping stays byte-stable while the
// writer installs its successor, and the reader simply re-maps on the
// next stamp change.

// Mapper is the optional read-only extension of Backend. Both built-in
// backends implement it: FileBackend maps checkpoint files (mmap on
// platforms that support it), Memory hands out copies guarded by a
// version counter.
type Mapper interface {
	// Map returns the newest valid checkpoint state and the WAL records
	// appended after it, without opening the log for writing. A log with
	// no durable state yet yields an empty (nil-State) checkpoint.
	Map(name string) (*MappedCheckpoint, error)
	// MapStamp fingerprints the log's durable state. It is cheap (two
	// stats for the file backend); an unchanged stamp means a prior Map
	// is still current, a changed one means the reader should re-Map.
	MapStamp(name string) (Stamp, error)
}

// Stamp is a comparable fingerprint of a log's durable state, used by
// read-only consumers to detect writer activity. Opaque: compare with
// ==, do not interpret.
type Stamp struct {
	ckptSize int64
	ckptMod  int64
	walSize  int64
}

// MappedCheckpoint is one read-only view of a log's durable state.
type MappedCheckpoint struct {
	// State is the newest valid checkpoint payload, nil if none was ever
	// installed. For the file backend it aliases the mapping — valid
	// only until Close, shared with every other reader of the same file.
	State []byte
	// WAL holds the decoded payloads of the records appended after the
	// checkpoint, in order. Always heap-allocated (the WAL file mutates
	// in place, so aliasing it would not be stable).
	WAL [][]byte
	// Stamp fingerprints the durable state this view was taken from,
	// taken before the files were read: if MapStamp still returns it,
	// the view is current (a concurrent install can only make the stamp
	// newer than the view, never the reverse).
	Stamp Stamp
	// SharedPages reports whether State aliases a file mapping shared
	// with other processes (false for the heap fallback and Memory).
	SharedPages bool

	mapping *mmap.Mapping
}

// Close releases the mapping. State must not be touched after. Safe to
// call twice, and on a checkpoint with no mapping.
func (c *MappedCheckpoint) Close() error {
	if c.mapping == nil {
		return nil
	}
	m := c.mapping
	c.mapping = nil
	c.State = nil
	return m.Close()
}

// Map implements Mapper.
func (b *FileBackend) Map(name string) (*MappedCheckpoint, error) {
	if b.Dir == "" {
		return nil, fmt.Errorf("storage: file backend has no root directory")
	}
	dir := filepath.Join(b.Dir, url.QueryEscape(name))
	stamp, err := b.MapStamp(name)
	if err != nil {
		return nil, err
	}

	mc := &MappedCheckpoint{Stamp: stamp}
	var ckptLSN uint64
	m, state, lsn, err := mapCheckpoint(filepath.Join(dir, ckptName))
	if err != nil {
		// Newest damaged or missing mid-install (the window between the
		// cur→prev and tmp→cur renames has no cur at all): the fallback
		// plus the intact WAL is still a consistent prefix, same as
		// writer-side recovery. Only a doubly-missing pair means a
		// genuinely fresh log.
		curMissing := os.IsNotExist(err)
		m, state, lsn, err = mapCheckpoint(filepath.Join(dir, ckptPrevName))
		if err != nil && os.IsNotExist(err) && !curMissing {
			err = fmt.Errorf("%w: checkpoint damaged and no fallback", ErrCorrupt)
		}
	}
	switch {
	case err == nil:
		mc.mapping, mc.State, ckptLSN = m, state, lsn
		mc.SharedPages = m.Mapped()
	case os.IsNotExist(err):
		// Fresh log: no checkpoint yet, possibly WAL records.
	default:
		return nil, fmt.Errorf("storage: map %q: %w", name, err)
	}

	f, err := os.Open(filepath.Join(dir, walName))
	if err != nil {
		if os.IsNotExist(err) {
			return mc, nil
		}
		mc.Close()
		return nil, fmt.Errorf("storage: map %q: %w", name, err)
	}
	// Records covered by the checkpoint (lsn ≤ ckptLSN) are skipped; a
	// torn tail — including a frame the writer is appending right now —
	// ends the scan. Readers tolerate, never repair.
	_, records, _, _ := scanWAL(f, ckptLSN)
	f.Close()
	mc.WAL = records
	return mc, nil
}

// MapStamp implements Mapper.
func (b *FileBackend) MapStamp(name string) (Stamp, error) {
	if b.Dir == "" {
		return Stamp{}, fmt.Errorf("storage: file backend has no root directory")
	}
	dir := filepath.Join(b.Dir, url.QueryEscape(name))
	var s Stamp
	if fi, err := os.Stat(filepath.Join(dir, ckptName)); err == nil {
		s.ckptSize = fi.Size()
		s.ckptMod = fi.ModTime().UnixNano()
	}
	if fi, err := os.Stat(filepath.Join(dir, walName)); err == nil {
		s.walSize = fi.Size()
	}
	return s, nil
}

// mapCheckpoint maps one checkpoint file and validates its framing and
// checksum, returning the mapping, the state payload (aliasing the
// mapping), and the lsn the checkpoint covers.
func mapCheckpoint(path string) (*mmap.Mapping, []byte, uint64, error) {
	m, err := mmap.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	buf := m.Data()
	headerLen := len(checkpointMagic) + 12
	if len(buf) < headerLen+4 ||
		string(buf[:len(checkpointMagic)]) != string(checkpointMagic) {
		m.Close()
		return nil, nil, 0, fmt.Errorf("%w: bad checkpoint framing", ErrCorrupt)
	}
	body := buf[len(checkpointMagic):]
	lsn := binary.BigEndian.Uint64(body[:8])
	n := binary.BigEndian.Uint32(body[8:12])
	if uint64(n) > maxRecordLen || len(body) != 12+int(n)+4 {
		m.Close()
		return nil, nil, 0, fmt.Errorf("%w: bad checkpoint length", ErrCorrupt)
	}
	state := body[12 : 12+n]
	if crc32.ChecksumIEEE(body[:12+n]) != binary.BigEndian.Uint32(body[12+n:]) {
		m.Close()
		return nil, nil, 0, fmt.Errorf("%w: checkpoint checksum mismatch", ErrCorrupt)
	}
	return m, state, lsn, nil
}

// Map implements Mapper: Memory hands out copies (there is no medium to
// share pages of).
func (m *Memory) Map(name string) (*MappedCheckpoint, error) {
	m.mu.Lock()
	st, ok := m.logs[name]
	m.mu.Unlock()
	if !ok {
		return &MappedCheckpoint{}, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	mc := &MappedCheckpoint{Stamp: Stamp{ckptMod: int64(st.version)}}
	if st.checkpoint != nil {
		mc.State = append([]byte(nil), st.checkpoint...)
	}
	for _, rec := range st.wal {
		mc.WAL = append(mc.WAL, append([]byte(nil), rec.Payload...))
	}
	return mc, nil
}

// MapStamp implements Mapper.
func (m *Memory) MapStamp(name string) (Stamp, error) {
	m.mu.Lock()
	st, ok := m.logs[name]
	m.mu.Unlock()
	if !ok {
		return Stamp{}, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return Stamp{ckptMod: int64(st.version)}, nil
}
