package storage

import (
	"bytes"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"testing"
)

// openMust opens a log on b, failing the test on error.
func openMust(t *testing.T, b Backend, name string) Log {
	t.Helper()
	lg, err := b.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

// testMapperContract exercises the shared Mapper semantics against any
// backend: checkpoint + WAL suffix visibility, stamp movement, and
// empty-log behavior.
func testMapperContract(t *testing.T, b Backend, mp Mapper) {
	t.Helper()

	// A never-opened log maps to nothing.
	mc, err := mp.Map("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if mc.State != nil || len(mc.WAL) != 0 {
		t.Fatal("ghost log mapped to non-empty state")
	}
	mc.Close()

	lg := openMust(t, b, "d")
	defer lg.Close()

	s0, err := mp.MapStamp("d")
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Append([]byte("covered-1")); err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("state-1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := lg.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	s1, err := mp.MapStamp("d")
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s0 {
		t.Fatal("stamp unchanged across checkpoint + appends")
	}

	mc, err = mp.Map("d")
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if !bytes.Equal(mc.State, []byte("state-1")) {
		t.Fatalf("mapped state %q", mc.State)
	}
	if len(mc.WAL) != 3 {
		t.Fatalf("%d WAL records, want 3 (covered record must be skipped)", len(mc.WAL))
	}
	for i, rec := range mc.WAL {
		if want := fmt.Sprintf("rec-%d", i); string(rec) != want {
			t.Fatalf("WAL[%d] = %q, want %q", i, rec, want)
		}
	}
	if mc.Stamp != s1 {
		t.Fatal("mapped stamp differs from MapStamp")
	}

	// An unchanged log keeps its stamp; the next mutation moves it.
	s2, _ := mp.MapStamp("d")
	if s2 != s1 {
		t.Fatal("stamp moved without a mutation")
	}
	if err := lg.Append([]byte("rec-3")); err != nil {
		t.Fatal(err)
	}
	if s3, _ := mp.MapStamp("d"); s3 == s1 {
		t.Fatal("stamp unchanged after append")
	}
}

func TestFileMapperContract(t *testing.T) {
	b := NewFileBackend(t.TempDir(), false)
	testMapperContract(t, b, b)
}

func TestMemoryMapperContract(t *testing.T) {
	m := NewMemory()
	testMapperContract(t, m, m)
}

func TestFileMapFallsBackToPrev(t *testing.T) {
	dir := t.TempDir()
	b := NewFileBackend(dir, false)
	lg := openMust(t, b, "d")
	defer lg.Close()
	if err := lg.Checkpoint([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("new")); err != nil {
		t.Fatal(err)
	}

	// Damage the newest checkpoint; the reader must serve the retained
	// fallback rather than fail or repair anything.
	cur := filepath.Join(dir, url.QueryEscape("d"), ckptName)
	buf, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(cur, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	mc, err := b.Map("d")
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if !bytes.Equal(mc.State, []byte("old")) {
		t.Fatalf("mapped state %q, want fallback", mc.State)
	}
}

func TestFileMapToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	b := NewFileBackend(dir, false)
	lg := openMust(t, b, "d")
	defer lg.Close()
	if err := lg.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}

	// A torn frame at the tail — the shape of a writer crash or an
	// append in flight — ends the reader's scan without error.
	wal := filepath.Join(dir, url.QueryEscape("d"), walName)
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x00, 0xFF, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	mc, err := b.Map("d")
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	if len(mc.WAL) != 1 || string(mc.WAL[0]) != "good" {
		t.Fatalf("WAL = %q, want the single good record", mc.WAL)
	}

	// The reader must not have repaired the file: the torn bytes are the
	// writer's to deal with.
	if fi, err := os.Stat(wal); err != nil || fi.Size() == 0 {
		t.Fatal("reader mutated the WAL file")
	}
}

// TestFileMapSurvivesCheckpointInstall pins the RCU property end to end:
// a mapped view taken before a new checkpoint install keeps serving the
// old bytes, and a fresh Map picks up the new state.
func TestFileMapSurvivesCheckpointInstall(t *testing.T) {
	b := NewFileBackend(t.TempDir(), false)
	lg := openMust(t, b, "d")
	defer lg.Close()
	if err := lg.Checkpoint([]byte("generation-1")); err != nil {
		t.Fatal(err)
	}

	mc1, err := b.Map("d")
	if err != nil {
		t.Fatal(err)
	}
	defer mc1.Close()

	if err := lg.Checkpoint([]byte("generation-2")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mc1.State, []byte("generation-1")) {
		t.Fatal("live mapping changed under a checkpoint install")
	}
	s, err := b.MapStamp("d")
	if err != nil {
		t.Fatal(err)
	}
	if s == mc1.Stamp {
		t.Fatal("stamp unchanged across checkpoint install")
	}
	mc2, err := b.Map("d")
	if err != nil {
		t.Fatal(err)
	}
	defer mc2.Close()
	if !bytes.Equal(mc2.State, []byte("generation-2")) {
		t.Fatalf("re-map sees %q", mc2.State)
	}
}
