package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Tailing turns a Log into a replication source: a follower origin asks
// the leader for "everything after LSN x" and receives the leader's
// checkpoint (only when the follower is so far behind that the WAL alone
// cannot bridge the gap — the leader truncates covered records on
// checkpoint) plus the WAL frames after max(x, checkpoint LSN), in the
// exact CRC-framed on-disk encoding. The bytes that cross the wire are
// therefore the same bytes recovery replays from disk, and the follower
// re-verifies every one of them against the trust anchor before applying
// — storage ships history, it never vouches for it.

// Frame is one WAL record with its log sequence number.
type Frame struct {
	LSN     uint64
	Payload []byte
}

// TailResult is the suffix of a log's history after some LSN.
type TailResult struct {
	// CheckpointLSN is the LSN covered by the log's newest checkpoint
	// (0 = none installed).
	CheckpointLSN uint64
	// Checkpoint is the newest checkpoint state; non-nil only when the
	// requested position precedes CheckpointLSN, i.e. the caller must
	// restore the snapshot before replaying frames.
	Checkpoint []byte
	// Frames are the WAL records with LSN > max(from, CheckpointLSN), in
	// order.
	Frames []Frame
	// LastLSN is the highest LSN the log has committed (0 = empty log).
	// A caller already at LastLSN is caught up.
	LastLSN uint64
}

// Tailer is implemented by logs that can serve their history suffix for
// replication. Both built-in backends implement it; wrap-around or
// third-party Logs may not, in which case the origin reports replication
// as unsupported.
type Tailer interface {
	Tail(from uint64) (TailResult, error)
}

// EncodeFrame appends the wire/on-disk encoding of one frame to dst:
// len u32 | lsn u64 | payload | crc32 u32 (big-endian, CRC-32 IEEE over
// lsn+payload). This is byte-identical to the file backend's WAL framing.
func EncodeFrame(dst []byte, lsn uint64, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	start := len(dst)
	dst = binary.BigEndian.AppendUint64(dst, lsn)
	dst = append(dst, payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// EncodeFrames appends the encoding of each frame to dst.
func EncodeFrames(dst []byte, frames []Frame) []byte {
	for _, f := range frames {
		dst = EncodeFrame(dst, f.LSN, f.Payload)
	}
	return dst
}

// DecodeFrames parses a concatenation of frames. Unlike recovery's
// torn-tail tolerance, decoding is strict: a short frame, oversized
// length, or CRC mismatch is an error, because a replication response is
// either delivered intact or retried — there is no "crash mid-append"
// shape to forgive.
func DecodeFrames(buf []byte) ([]Frame, error) {
	var frames []Frame
	for len(buf) > 0 {
		if len(buf) < 4 {
			return nil, fmt.Errorf("%w: truncated frame header", ErrCorrupt)
		}
		n := binary.BigEndian.Uint32(buf[:4])
		if n > maxRecordLen {
			return nil, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorrupt, n)
		}
		if len(buf) < 4+8+int(n)+4 {
			return nil, fmt.Errorf("%w: truncated frame body", ErrCorrupt)
		}
		body := buf[4 : 4+8+int(n)]
		wantCRC := binary.BigEndian.Uint32(buf[4+8+int(n) : 4+8+int(n)+4])
		if crc32.ChecksumIEEE(body) != wantCRC {
			return nil, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
		}
		frames = append(frames, Frame{
			LSN:     binary.BigEndian.Uint64(body[:8]),
			Payload: append([]byte(nil), body[8:]...),
		})
		buf = buf[4+8+int(n)+4:]
	}
	return frames, nil
}

// Tail implements Tailer for the file backend by re-reading the WAL's
// committed prefix. The read happens under the log mutex, so it observes
// a frame boundary: walSize only ever covers fully committed frames.
func (l *fileLog) Tail(from uint64) (TailResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return TailResult{}, fmt.Errorf("storage: tail of closed log %q", l.name)
	}
	res := TailResult{CheckpointLSN: l.ckptLSN, LastLSN: l.nextLSN - 1}
	floor := from
	if l.ckptLSN > floor {
		floor = l.ckptLSN
		if from < l.ckptLSN {
			res.Checkpoint = append([]byte(nil), l.checkpoint...)
		}
	}
	if l.walSize > 0 {
		buf := make([]byte, l.walSize)
		if _, err := l.wal.ReadAt(buf, 0); err != nil {
			return TailResult{}, fmt.Errorf("storage: tail %q: %w", l.name, err)
		}
		all, err := DecodeFrames(buf)
		if err != nil {
			return TailResult{}, fmt.Errorf("storage: tail %q: %w", l.name, err)
		}
		for _, f := range all {
			// A crash between checkpoint install and WAL truncation leaves
			// covered frames behind; skip them exactly as recovery does.
			if f.LSN > floor {
				res.Frames = append(res.Frames, f)
			}
		}
	}
	return res, nil
}

// Tail implements Tailer for the in-memory backend.
func (l *memoryLog) Tail(from uint64) (TailResult, error) {
	l.state.mu.Lock()
	defer l.state.mu.Unlock()
	if l.closed {
		return TailResult{}, fmt.Errorf("storage: tail of closed log %q", l.name)
	}
	res := TailResult{CheckpointLSN: l.state.ckptLSN, LastLSN: l.state.nextLSN - 1}
	floor := from
	if l.state.ckptLSN > floor {
		floor = l.state.ckptLSN
		if from < l.state.ckptLSN {
			res.Checkpoint = append([]byte(nil), l.state.checkpoint...)
		}
	}
	for _, f := range l.state.wal {
		if f.LSN > floor {
			res.Frames = append(res.Frames, Frame{LSN: f.LSN, Payload: append([]byte(nil), f.Payload...)})
		}
	}
	return res, nil
}
