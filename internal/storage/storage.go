// Package storage is RITM's durable state tier: an append-only write-ahead
// log of signed ∆ update batches plus periodic checkpoint snapshots, behind
// a pluggable Backend so every stateful component (the CA's authority, the
// CDN distribution point, the RA's dictionary store) can survive a crash
// and warm-start instead of resynchronizing from scratch.
//
// The paper's availability story (§VII: CDNs keep serving signed
// dictionaries through CA outages) assumes an origin that can come back
// after a crash without losing its update log; this package is that log.
// The contents it persists are exactly the messages that already cross
// trust boundaries — signed issuance batches and committed dictionary
// state — so recovery re-verifies everything against the trust anchor and
// a corrupted store can at worst lose a suffix, never forge state.
//
// A Backend hands out one Log per named dictionary. A Log is two files'
// worth of state:
//
//   - a WAL of length-prefixed, CRC-framed records, appended (and, by
//     default, fsynced) on every committed update batch;
//   - checkpoint snapshots of the committed state, installed atomically by
//     rename, with the previous checkpoint retained as a fallback.
//
// Recovery loads the newest valid checkpoint and replays the WAL records
// after it (records are stamped with a log sequence number, so records
// already covered by the checkpoint are skipped). A torn WAL tail — a
// partially written frame from a crash mid-append — is truncated; a frame
// whose CRC does not match is treated as the end of the usable prefix.
// Either way the caller observes a prefix-consistent history.
//
// The zero configuration (a nil Backend everywhere) preserves the old
// purely in-memory behavior byte for byte; Memory is a Backend for tests
// and simulations that want restart semantics without a filesystem.
package storage

import (
	"fmt"
	"sync"
)

// Backend opens durable logs for named dictionaries. Implementations:
// FileBackend (one directory per log under a root), Memory (retained
// in-process, for tests and restart simulations).
type Backend interface {
	// Open returns the log for the dictionary named name, creating it if it
	// does not exist and recovering its state if it does. Names may contain
	// any bytes (CA identifiers include '/'); backends are responsible for
	// mapping them onto their namespace.
	Open(name string) (Log, error)
}

// Log is one dictionary's durable state: an append-only WAL plus the
// newest checkpoint snapshot. Records and checkpoint states are opaque
// bytes; the dictionary layer owns their encoding (and re-verifies them
// against the trust anchor on recovery — storage integrity is framing and
// checksums, not authentication).
type Log interface {
	// Load returns the newest valid checkpoint state (nil if none was ever
	// installed) and the WAL records appended after it, in order. It
	// reflects recovery performed at Open time; calling it again returns
	// the same data until the log is mutated.
	Load() (checkpoint []byte, wal [][]byte, err error)
	// Append durably adds one WAL record.
	Append(record []byte) error
	// Checkpoint atomically installs state as the newest checkpoint and
	// discards the WAL records it covers. A crash at any point leaves
	// either the previous checkpoint plus the full WAL or the new
	// checkpoint recoverable.
	Checkpoint(state []byte) error
	// Close releases the log's resources. The log must not be used after.
	Close() error
	// Destroy closes the log and deletes its durable state (an RA dropping
	// an expired shard reclaims the disk too).
	Destroy() error
}

// Memory is a Backend retained entirely in process memory: reopening a
// name on the same Memory instance recovers the state a previous Log
// holder left behind, which is exactly what restart tests and simulations
// need. It performs no framing or checksumming — there is no medium to
// corrupt — but honors the same Load/Append/Checkpoint contract.
type Memory struct {
	mu   sync.Mutex
	logs map[string]*memoryState
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{logs: make(map[string]*memoryState)}
}

// memoryState is the retained state of one named log. Records carry the
// same per-log monotone LSNs as the file backend so the Memory backend
// can serve replication tails with identical semantics.
type memoryState struct {
	mu         sync.Mutex
	checkpoint []byte
	wal        []Frame
	nextLSN    uint64
	ckptLSN    uint64
	// version counts mutations; it backs the Memory backend's MapStamp
	// the way file size/mtime back the file backend's.
	version uint64
}

// Open implements Backend.
func (m *Memory) Open(name string) (Log, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.logs[name]
	if !ok {
		st = &memoryState{nextLSN: 1}
		m.logs[name] = st
	}
	return &memoryLog{backend: m, name: name, state: st}, nil
}

type memoryLog struct {
	backend *Memory
	name    string
	state   *memoryState
	closed  bool
}

func (l *memoryLog) Load() ([]byte, [][]byte, error) {
	l.state.mu.Lock()
	defer l.state.mu.Unlock()
	if l.closed {
		return nil, nil, fmt.Errorf("storage: log %q is closed", l.name)
	}
	wal := make([][]byte, len(l.state.wal))
	for i, f := range l.state.wal {
		wal[i] = f.Payload
	}
	return l.state.checkpoint, wal, nil
}

func (l *memoryLog) Append(record []byte) error {
	l.state.mu.Lock()
	defer l.state.mu.Unlock()
	if l.closed {
		return fmt.Errorf("storage: append to closed log %q", l.name)
	}
	l.state.wal = append(l.state.wal, Frame{LSN: l.state.nextLSN, Payload: append([]byte(nil), record...)})
	l.state.nextLSN++
	l.state.version++
	return nil
}

func (l *memoryLog) Checkpoint(state []byte) error {
	l.state.mu.Lock()
	defer l.state.mu.Unlock()
	if l.closed {
		return fmt.Errorf("storage: checkpoint on closed log %q", l.name)
	}
	l.state.checkpoint = append([]byte(nil), state...)
	l.state.wal = nil
	l.state.ckptLSN = l.state.nextLSN - 1
	l.state.version++
	return nil
}

func (l *memoryLog) Close() error {
	l.state.mu.Lock()
	defer l.state.mu.Unlock()
	l.closed = true
	return nil
}

func (l *memoryLog) Destroy() error {
	l.backend.mu.Lock()
	delete(l.backend.logs, l.name)
	l.backend.mu.Unlock()
	return l.Close()
}
