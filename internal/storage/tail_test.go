package storage

import (
	"errors"
	"fmt"
	"testing"
)

// Tail is the replication source: these tests pin its contract — exact
// LSN filtering, checkpoint-only-when-needed, and the strict wire codec —
// for both backends, since a follower replicating a file-backed leader
// must see the same history a memory-backed test double serves.

func backendsUnderTest(t *testing.T) map[string]Backend {
	t.Helper()
	return map[string]Backend{
		"memory": NewMemory(),
		"file":   NewFileBackend(t.TempDir(), true),
	}
}

func TestTailSuffixContract(t *testing.T) {
	for name, backend := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			log, err := backend.Open("ca1")
			if err != nil {
				t.Fatal(err)
			}
			defer log.Close()
			tailer, ok := log.(Tailer)
			if !ok {
				t.Fatalf("%T does not implement Tailer", log)
			}

			// Empty log: nothing to ship.
			res, err := tailer.Tail(0)
			if err != nil {
				t.Fatal(err)
			}
			if res.LastLSN != 0 || res.Checkpoint != nil || len(res.Frames) != 0 {
				t.Fatalf("empty-log tail = %+v", res)
			}

			for i := 1; i <= 5; i++ {
				if err := log.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
					t.Fatal(err)
				}
			}

			// Tail(0) ships everything with contiguous LSNs from 1.
			res, err = tailer.Tail(0)
			if err != nil {
				t.Fatal(err)
			}
			if res.LastLSN != 5 || len(res.Frames) != 5 {
				t.Fatalf("tail(0): last=%d frames=%d, want 5/5", res.LastLSN, len(res.Frames))
			}
			for i, f := range res.Frames {
				if f.LSN != uint64(i+1) || string(f.Payload) != fmt.Sprintf("rec-%d", i+1) {
					t.Fatalf("frame %d = {%d %q}", i, f.LSN, f.Payload)
				}
			}

			// Tail(3) ships only the suffix.
			res, err = tailer.Tail(3)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Frames) != 2 || res.Frames[0].LSN != 4 {
				t.Fatalf("tail(3) frames = %+v", res.Frames)
			}

			// A caught-up caller gets an empty, snapshot-free answer.
			res, err = tailer.Tail(5)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Frames) != 0 || res.Checkpoint != nil {
				t.Fatalf("caught-up tail = %+v", res)
			}
		})
	}
}

func TestTailCheckpointBridging(t *testing.T) {
	for name, backend := range backendsUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			log, err := backend.Open("ca1")
			if err != nil {
				t.Fatal(err)
			}
			defer log.Close()
			tailer := log.(Tailer)
			for i := 1; i <= 3; i++ {
				if err := log.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := log.Checkpoint([]byte("snapshot@3")); err != nil {
				t.Fatal(err)
			}
			if err := log.Append([]byte("new-4")); err != nil {
				t.Fatal(err)
			}

			// A caller behind the checkpoint needs the snapshot: the WAL
			// records it covered are gone.
			res, err := tailer.Tail(1)
			if err != nil {
				t.Fatal(err)
			}
			if res.CheckpointLSN != 3 || string(res.Checkpoint) != "snapshot@3" {
				t.Fatalf("tail(1) checkpoint = %d %q", res.CheckpointLSN, res.Checkpoint)
			}
			if len(res.Frames) != 1 || res.Frames[0].LSN != 4 {
				t.Fatalf("tail(1) frames = %+v", res.Frames)
			}
			if res.LastLSN != 4 {
				t.Fatalf("tail(1) last = %d, want 4", res.LastLSN)
			}

			// A caller at (or past) the checkpoint gets frames only — no
			// redundant snapshot download.
			res, err = tailer.Tail(3)
			if err != nil {
				t.Fatal(err)
			}
			if res.Checkpoint != nil || len(res.Frames) != 1 {
				t.Fatalf("tail(3) = %+v", res)
			}
		})
	}
}

func TestFrameCodecRoundTrip(t *testing.T) {
	frames := []Frame{
		{LSN: 1, Payload: []byte("alpha")},
		{LSN: 2, Payload: nil},
		{LSN: 9, Payload: make([]byte, 1024)},
	}
	buf := EncodeFrames(nil, frames)
	got, err := DecodeFrames(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if got[i].LSN != frames[i].LSN || len(got[i].Payload) != len(frames[i].Payload) {
			t.Fatalf("frame %d round-tripped to {%d %d bytes}", i, got[i].LSN, len(got[i].Payload))
		}
	}
}

func TestFrameCodecStrict(t *testing.T) {
	buf := EncodeFrame(nil, 7, []byte("payload"))

	// Truncation: replication responses are delivered intact or rejected.
	for _, cut := range []int{1, 4, len(buf) - 1} {
		if _, err := DecodeFrames(buf[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
	// Bit flip in the payload: CRC must catch it.
	flipped := append([]byte(nil), buf...)
	flipped[13] ^= 0x01
	if _, err := DecodeFrames(flipped); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip: err = %v, want ErrCorrupt", err)
	}
	// Oversized declared length.
	huge := append([]byte(nil), buf...)
	huge[0], huge[1] = 0xff, 0xff
	if _, err := DecodeFrames(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized length: err = %v, want ErrCorrupt", err)
	}
}

// TestTailMatchesRecovery pins the property replication rests on: the
// frames Tail ships after a crash-with-leftover-WAL are exactly the
// records recovery would replay (covered frames filtered, torn tails
// absent — the read happens under the log lock at a frame boundary).
func TestTailMatchesRecovery(t *testing.T) {
	backend := NewFileBackend(t.TempDir(), true)
	log, err := backend.Open("ca1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := log.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Checkpoint([]byte("ckpt")); err != nil {
		t.Fatal(err)
	}
	for i := 5; i <= 6; i++ {
		if err := log.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := backend.Open("ca1")
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	_, wal, err := reopened.Load()
	if err != nil {
		t.Fatal(err)
	}
	res, err := reopened.(Tailer).Tail(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != len(wal) {
		t.Fatalf("tail ships %d frames, recovery replays %d", len(res.Frames), len(wal))
	}
	for i := range wal {
		if string(res.Frames[i].Payload) != string(wal[i]) {
			t.Fatalf("record %d: tail %q vs recovery %q", i, res.Frames[i].Payload, wal[i])
		}
	}
}
