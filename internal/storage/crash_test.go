package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// Crash-consistency property tests: arbitrary truncation of the WAL (a
// torn write) and arbitrary single-bit corruption of WAL or checkpoint
// must leave recovery with a strict prefix of the appended records — never
// a reordered, altered, or invented record — or an explicit error. The
// dictionary-level half of this property (a recovered prefix re-verifies
// against the trust anchor) lives in internal/dictionary's persist tests.

// writeHistory populates a fresh file log with n records and returns the
// backend and directory.
func writeHistory(t *testing.T, n int, checkpointAt int) (*FileBackend, string) {
	t.Helper()
	dir := t.TempDir()
	be := NewFileBackend(dir, true)
	lg, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i == checkpointAt {
			if err := lg.Checkpoint([]byte(fmt.Sprintf("state-%04d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := lg.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	return be, dir
}

// verifyPrefix asserts that recovered is rec(base), rec(base+1), ... — a
// contiguous prefix of the original history starting at the checkpoint.
func verifyPrefix(t *testing.T, recovered [][]byte, base, total int) {
	t.Helper()
	if len(recovered) > total-base {
		t.Fatalf("recovered %d records, history only has %d after the checkpoint", len(recovered), total-base)
	}
	for i, r := range recovered {
		if !bytes.Equal(r, rec(base+i)) {
			t.Fatalf("recovered[%d] = %q, want %q: not a prefix", i, r, rec(base+i))
		}
	}
}

func TestWALTruncationRecoversPrefix(t *testing.T) {
	const n, ckptAt = 12, 4
	_, refDir := writeHistory(t, n, ckptAt)
	walRef, err := os.ReadFile(filepath.Join(refDir, "CA1", walName))
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point, including 0 and mid-frame offsets.
	for cut := 0; cut <= len(walRef); cut += 7 {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			be, dir := writeHistory(t, n, ckptAt)
			walPath := filepath.Join(dir, "CA1", walName)
			if err := os.WriteFile(walPath, walRef[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			lg, err := be.Open("CA1")
			if err != nil {
				t.Fatalf("recovery after truncation at %d: %v", cut, err)
			}
			defer lg.Close()
			ckpt, wal, err := lg.Load()
			if err != nil {
				t.Fatal(err)
			}
			if string(ckpt) != fmt.Sprintf("state-%04d", ckptAt) {
				t.Fatalf("checkpoint = %q after WAL truncation", ckpt)
			}
			verifyPrefix(t, wal, ckptAt, n)
			// The log must remain appendable and those appends recoverable.
			if err := lg.Append([]byte("after-crash")); err != nil {
				t.Fatal(err)
			}
			lg.Close()
			lg2, err := be.Open("CA1")
			if err != nil {
				t.Fatal(err)
			}
			defer lg2.Close()
			_, wal2, err := lg2.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(wal2) != len(wal)+1 || !bytes.Equal(wal2[len(wal2)-1], []byte("after-crash")) {
				t.Fatalf("post-crash append not recovered: %q", wal2)
			}
		})
	}
}

func TestWALBitFlipRecoversPrefixOrFails(t *testing.T) {
	const n, ckptAt = 10, 3
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 64; trial++ {
		be, dir := writeHistory(t, n, ckptAt)
		walPath := filepath.Join(dir, "CA1", walName)
		buf, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) == 0 {
			t.Fatal("empty WAL")
		}
		pos := rng.Intn(len(buf))
		bit := byte(1) << rng.Intn(8)
		buf[pos] ^= bit
		if err := os.WriteFile(walPath, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		lg, err := be.Open("CA1")
		if err != nil {
			// Failing loudly is acceptable; serving garbage is not.
			continue
		}
		_, wal, err := lg.Load()
		if err != nil {
			lg.Close()
			continue
		}
		// Whatever survived must be a contiguous prefix: the flip can only
		// shorten the history (every frame after the damaged one is
		// discarded), never alter record content undetected.
		verifyPrefix(t, wal, ckptAt, n)
		lg.Close()
	}
}

// TestAppendsAfterFallbackRecoverySurvive pins the re-anchoring rule: a
// recovery that fell back to checkpoint.prev (newest checkpoint damaged)
// rewrites the WAL so that records appended AFTER that recovery are
// recoverable by the NEXT one — without the rewrite, the lsn sequence
// stays out of joint with the fallback anchor forever and every
// fsync-acknowledged post-recovery append would be silently dropped.
func TestAppendsAfterFallbackRecoverySurvive(t *testing.T) {
	dir := t.TempDir()
	be := NewFileBackend(dir, true)
	lg, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("fallback-state")); err != nil {
		t.Fatal(err)
	}
	if err := lg.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("newest-state")); err != nil {
		t.Fatal(err)
	}
	lg.Close()

	// Damage the newest checkpoint, forcing the fallback path.
	path := filepath.Join(dir, "CA1", ckptName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	lg2, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	ckpt, wal, err := lg2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "fallback-state" || len(wal) != 0 {
		t.Fatalf("fallback recovery: ckpt=%q wal=%d", ckpt, len(wal))
	}
	// Post-recovery commits — these are acknowledged and MUST survive.
	for i := 10; i < 13; i++ {
		if err := lg2.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	lg2.Close()

	lg3, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	defer lg3.Close()
	ckpt, wal, err = lg3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "fallback-state" {
		t.Fatalf("second recovery checkpoint = %q", ckpt)
	}
	if len(wal) != 3 {
		t.Fatalf("acknowledged post-recovery appends lost: wal=%d, want 3", len(wal))
	}
	for i, r := range wal {
		if !bytes.Equal(r, rec(10+i)) {
			t.Fatalf("wal[%d] = %q, want %q", i, r, rec(10+i))
		}
	}
}

// TestMapAcrossCrashMidInstall walks a read-only Map through every
// intermediate file state the checkpoint-install sequence (write tmp →
// rename cur→prev → rename tmp→cur → truncate WAL) can be crashed in,
// plus arbitrary truncations of the in-flight tmp file and corruption of
// the freshly installed cur. The property: Map always serves a consistent
// view — the OLD checkpoint with the full WAL suffix, or the NEW one with
// the covered records filtered — never an error, never a torn mix; and it
// never repairs, so the on-disk bytes are identical after the Map. The
// served view must also agree with what writer-side recovery would
// anchor on, so readers and a restarted writer can never disagree about
// the current history.
func TestMapAcrossCrashMidInstall(t *testing.T) {
	// Build the reference artifacts: gen1 checkpoint, three appends on
	// top of it, then the gen2 checkpoint that covers them.
	refDir := t.TempDir()
	be := NewFileBackend(refDir, true)
	lg, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("gen1-state")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := lg.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	gen1Ckpt, err := os.ReadFile(filepath.Join(refDir, "CA1", ckptName))
	if err != nil {
		t.Fatal(err)
	}
	walBuf, err := os.ReadFile(filepath.Join(refDir, "CA1", walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("gen2-state")); err != nil {
		t.Fatal(err)
	}
	gen2Ckpt, err := os.ReadFile(filepath.Join(refDir, "CA1", ckptName))
	if err != nil {
		t.Fatal(err)
	}
	lg.Close()

	// assemble materializes one crashed file state and returns its backend.
	assemble := func(t *testing.T, files map[string][]byte) (*FileBackend, string) {
		t.Helper()
		dir := t.TempDir()
		sub := filepath.Join(dir, "CA1")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, buf := range files {
			if err := os.WriteFile(filepath.Join(sub, name), buf, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return NewFileBackend(dir, true), sub
	}

	// checkMap asserts the mapped view, that mapping left every byte in
	// place, and that writer recovery over the same files anchors on the
	// same checkpoint with the same record suffix.
	checkMap := func(t *testing.T, b *FileBackend, sub, wantState string, wantRecords int) {
		t.Helper()
		before := map[string][]byte{}
		entries, err := os.ReadDir(sub)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			buf, err := os.ReadFile(filepath.Join(sub, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			before[e.Name()] = buf
		}
		mc, err := b.Map("CA1")
		if err != nil {
			t.Fatalf("Map: %v", err)
		}
		if string(mc.State) != wantState {
			t.Fatalf("mapped state = %q, want %q", mc.State, wantState)
		}
		if len(mc.WAL) != wantRecords {
			t.Fatalf("mapped WAL = %d records, want %d", len(mc.WAL), wantRecords)
		}
		for i, r := range mc.WAL {
			if !bytes.Equal(r, rec(i)) {
				t.Fatalf("mapped WAL[%d] = %q, want %q", i, r, rec(i))
			}
		}
		mc.Close()
		for name, buf := range before {
			after, err := os.ReadFile(filepath.Join(sub, name))
			if err != nil {
				t.Fatalf("%s vanished after Map: %v", name, err)
			}
			if !bytes.Equal(buf, after) {
				t.Fatalf("Map modified %s", name)
			}
		}
		// Writer recovery must anchor identically.
		lg, err := b.Open("CA1")
		if err != nil {
			t.Fatalf("writer recovery: %v", err)
		}
		defer lg.Close()
		ckpt, wal, err := lg.Load()
		if err != nil {
			t.Fatal(err)
		}
		if string(ckpt) != wantState || len(wal) != wantRecords {
			t.Fatalf("writer recovery = (%q, %d records), reader mapped (%q, %d)",
				ckpt, len(wal), wantState, wantRecords)
		}
	}

	t.Run("tmp-written", func(t *testing.T) {
		// Crash after the tmp write, before any rename — including every
		// torn prefix of the tmp file. The reader must ignore tmp entirely.
		for cut := 0; cut <= len(gen2Ckpt); cut += 9 {
			b, sub := assemble(t, map[string][]byte{
				ckptName:    gen1Ckpt,
				walName:     walBuf,
				ckptTmpName: gen2Ckpt[:cut],
			})
			checkMap(t, b, sub, "gen1-state", 3)
		}
	})
	t.Run("cur-renamed-away", func(t *testing.T) {
		// Crash between the two renames: no cur, only prev + tmp.
		b, sub := assemble(t, map[string][]byte{
			ckptPrevName: gen1Ckpt,
			ckptTmpName:  gen2Ckpt,
			walName:      walBuf,
		})
		checkMap(t, b, sub, "gen1-state", 3)
	})
	t.Run("new-installed-wal-untruncated", func(t *testing.T) {
		// Crash after the tmp→cur rename, before the WAL truncation: the
		// new checkpoint covers every WAL record, so the suffix is empty.
		b, sub := assemble(t, map[string][]byte{
			ckptName:     gen2Ckpt,
			ckptPrevName: gen1Ckpt,
			walName:      walBuf,
		})
		checkMap(t, b, sub, "gen2-state", 0)
	})
	t.Run("install-complete", func(t *testing.T) {
		b, sub := assemble(t, map[string][]byte{
			ckptName:     gen2Ckpt,
			ckptPrevName: gen1Ckpt,
			walName:      nil,
		})
		checkMap(t, b, sub, "gen2-state", 0)
	})
	t.Run("new-checkpoint-corrupt", func(t *testing.T) {
		// Single-bit corruption anywhere in the installed cur must bounce
		// the reader to the prev fallback (CRC32 catches every 1-bit flip),
		// with the full WAL suffix still served.
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 32; trial++ {
			bad := append([]byte(nil), gen2Ckpt...)
			bad[rng.Intn(len(bad))] ^= byte(1) << rng.Intn(8)
			b, sub := assemble(t, map[string][]byte{
				ckptName:     bad,
				ckptPrevName: gen1Ckpt,
				walName:      walBuf,
			})
			checkMap(t, b, sub, "gen1-state", 3)
		}
	})
	t.Run("new-checkpoint-torn", func(t *testing.T) {
		// A torn cur (truncated mid-write by the filesystem) likewise
		// falls back; a zero-length cur included.
		for cut := 0; cut < len(gen2Ckpt); cut += 11 {
			b, sub := assemble(t, map[string][]byte{
				ckptName:     gen2Ckpt[:cut],
				ckptPrevName: gen1Ckpt,
				walName:      walBuf,
			})
			checkMap(t, b, sub, "gen1-state", 3)
		}
	})
}

func TestCheckpointBitFlipFallsBackOrFails(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 32; trial++ {
		dir := t.TempDir()
		be := NewFileBackend(dir, true)
		lg, err := be.Open("CA1")
		if err != nil {
			t.Fatal(err)
		}
		if err := lg.Checkpoint([]byte("fallback-state")); err != nil {
			t.Fatal(err)
		}
		if err := lg.Append(rec(0)); err != nil {
			t.Fatal(err)
		}
		if err := lg.Checkpoint([]byte("newest-state")); err != nil {
			t.Fatal(err)
		}
		if err := lg.Append(rec(1)); err != nil {
			t.Fatal(err)
		}
		lg.Close()

		path := filepath.Join(dir, "CA1", ckptName)
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		buf[rng.Intn(len(buf))] ^= byte(1) << rng.Intn(8)
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}

		lg2, err := be.Open("CA1")
		if err != nil {
			continue // loud failure: acceptable
		}
		ckpt, wal, err := lg2.Load()
		if err != nil {
			lg2.Close()
			continue
		}
		switch string(ckpt) {
		case "newest-state":
			// The flip missed the covered region (or cancelled out —
			// impossible for a single bit, but the CRC check decides).
			if len(wal) != 1 || !bytes.Equal(wal[0], rec(1)) {
				t.Fatalf("trial %d: newest checkpoint with wal %q", trial, wal)
			}
		case "fallback-state":
			// The newest checkpoint's install truncated rec(0) out of the
			// WAL, so the fallback's history has an lsn hole before
			// rec(1): replaying rec(1) would fabricate a history, and the
			// scanner must drop it. The recovered state is the (shorter)
			// fallback prefix alone.
			if len(wal) != 0 {
				t.Fatalf("trial %d: fallback checkpoint replayed across an lsn hole: %q", trial, wal)
			}
		default:
			t.Fatalf("trial %d: recovered checkpoint %q is neither installed state", trial, ckpt)
		}
		lg2.Close()
	}
}
