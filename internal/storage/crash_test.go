package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// Crash-consistency property tests: arbitrary truncation of the WAL (a
// torn write) and arbitrary single-bit corruption of WAL or checkpoint
// must leave recovery with a strict prefix of the appended records — never
// a reordered, altered, or invented record — or an explicit error. The
// dictionary-level half of this property (a recovered prefix re-verifies
// against the trust anchor) lives in internal/dictionary's persist tests.

// writeHistory populates a fresh file log with n records and returns the
// backend and directory.
func writeHistory(t *testing.T, n int, checkpointAt int) (*FileBackend, string) {
	t.Helper()
	dir := t.TempDir()
	be := NewFileBackend(dir, true)
	lg, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i == checkpointAt {
			if err := lg.Checkpoint([]byte(fmt.Sprintf("state-%04d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := lg.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	return be, dir
}

// verifyPrefix asserts that recovered is rec(base), rec(base+1), ... — a
// contiguous prefix of the original history starting at the checkpoint.
func verifyPrefix(t *testing.T, recovered [][]byte, base, total int) {
	t.Helper()
	if len(recovered) > total-base {
		t.Fatalf("recovered %d records, history only has %d after the checkpoint", len(recovered), total-base)
	}
	for i, r := range recovered {
		if !bytes.Equal(r, rec(base+i)) {
			t.Fatalf("recovered[%d] = %q, want %q: not a prefix", i, r, rec(base+i))
		}
	}
}

func TestWALTruncationRecoversPrefix(t *testing.T) {
	const n, ckptAt = 12, 4
	_, refDir := writeHistory(t, n, ckptAt)
	walRef, err := os.ReadFile(filepath.Join(refDir, "CA1", walName))
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point, including 0 and mid-frame offsets.
	for cut := 0; cut <= len(walRef); cut += 7 {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			be, dir := writeHistory(t, n, ckptAt)
			walPath := filepath.Join(dir, "CA1", walName)
			if err := os.WriteFile(walPath, walRef[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			lg, err := be.Open("CA1")
			if err != nil {
				t.Fatalf("recovery after truncation at %d: %v", cut, err)
			}
			defer lg.Close()
			ckpt, wal, err := lg.Load()
			if err != nil {
				t.Fatal(err)
			}
			if string(ckpt) != fmt.Sprintf("state-%04d", ckptAt) {
				t.Fatalf("checkpoint = %q after WAL truncation", ckpt)
			}
			verifyPrefix(t, wal, ckptAt, n)
			// The log must remain appendable and those appends recoverable.
			if err := lg.Append([]byte("after-crash")); err != nil {
				t.Fatal(err)
			}
			lg.Close()
			lg2, err := be.Open("CA1")
			if err != nil {
				t.Fatal(err)
			}
			defer lg2.Close()
			_, wal2, err := lg2.Load()
			if err != nil {
				t.Fatal(err)
			}
			if len(wal2) != len(wal)+1 || !bytes.Equal(wal2[len(wal2)-1], []byte("after-crash")) {
				t.Fatalf("post-crash append not recovered: %q", wal2)
			}
		})
	}
}

func TestWALBitFlipRecoversPrefixOrFails(t *testing.T) {
	const n, ckptAt = 10, 3
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 64; trial++ {
		be, dir := writeHistory(t, n, ckptAt)
		walPath := filepath.Join(dir, "CA1", walName)
		buf, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) == 0 {
			t.Fatal("empty WAL")
		}
		pos := rng.Intn(len(buf))
		bit := byte(1) << rng.Intn(8)
		buf[pos] ^= bit
		if err := os.WriteFile(walPath, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		lg, err := be.Open("CA1")
		if err != nil {
			// Failing loudly is acceptable; serving garbage is not.
			continue
		}
		_, wal, err := lg.Load()
		if err != nil {
			lg.Close()
			continue
		}
		// Whatever survived must be a contiguous prefix: the flip can only
		// shorten the history (every frame after the damaged one is
		// discarded), never alter record content undetected.
		verifyPrefix(t, wal, ckptAt, n)
		lg.Close()
	}
}

// TestAppendsAfterFallbackRecoverySurvive pins the re-anchoring rule: a
// recovery that fell back to checkpoint.prev (newest checkpoint damaged)
// rewrites the WAL so that records appended AFTER that recovery are
// recoverable by the NEXT one — without the rewrite, the lsn sequence
// stays out of joint with the fallback anchor forever and every
// fsync-acknowledged post-recovery append would be silently dropped.
func TestAppendsAfterFallbackRecoverySurvive(t *testing.T) {
	dir := t.TempDir()
	be := NewFileBackend(dir, true)
	lg, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("fallback-state")); err != nil {
		t.Fatal(err)
	}
	if err := lg.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("newest-state")); err != nil {
		t.Fatal(err)
	}
	lg.Close()

	// Damage the newest checkpoint, forcing the fallback path.
	path := filepath.Join(dir, "CA1", ckptName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	lg2, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	ckpt, wal, err := lg2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "fallback-state" || len(wal) != 0 {
		t.Fatalf("fallback recovery: ckpt=%q wal=%d", ckpt, len(wal))
	}
	// Post-recovery commits — these are acknowledged and MUST survive.
	for i := 10; i < 13; i++ {
		if err := lg2.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	lg2.Close()

	lg3, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	defer lg3.Close()
	ckpt, wal, err = lg3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "fallback-state" {
		t.Fatalf("second recovery checkpoint = %q", ckpt)
	}
	if len(wal) != 3 {
		t.Fatalf("acknowledged post-recovery appends lost: wal=%d, want 3", len(wal))
	}
	for i, r := range wal {
		if !bytes.Equal(r, rec(10+i)) {
			t.Fatalf("wal[%d] = %q, want %q", i, r, rec(10+i))
		}
	}
}

func TestCheckpointBitFlipFallsBackOrFails(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 32; trial++ {
		dir := t.TempDir()
		be := NewFileBackend(dir, true)
		lg, err := be.Open("CA1")
		if err != nil {
			t.Fatal(err)
		}
		if err := lg.Checkpoint([]byte("fallback-state")); err != nil {
			t.Fatal(err)
		}
		if err := lg.Append(rec(0)); err != nil {
			t.Fatal(err)
		}
		if err := lg.Checkpoint([]byte("newest-state")); err != nil {
			t.Fatal(err)
		}
		if err := lg.Append(rec(1)); err != nil {
			t.Fatal(err)
		}
		lg.Close()

		path := filepath.Join(dir, "CA1", ckptName)
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		buf[rng.Intn(len(buf))] ^= byte(1) << rng.Intn(8)
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}

		lg2, err := be.Open("CA1")
		if err != nil {
			continue // loud failure: acceptable
		}
		ckpt, wal, err := lg2.Load()
		if err != nil {
			lg2.Close()
			continue
		}
		switch string(ckpt) {
		case "newest-state":
			// The flip missed the covered region (or cancelled out —
			// impossible for a single bit, but the CRC check decides).
			if len(wal) != 1 || !bytes.Equal(wal[0], rec(1)) {
				t.Fatalf("trial %d: newest checkpoint with wal %q", trial, wal)
			}
		case "fallback-state":
			// The newest checkpoint's install truncated rec(0) out of the
			// WAL, so the fallback's history has an lsn hole before
			// rec(1): replaying rec(1) would fabricate a history, and the
			// scanner must drop it. The recovered state is the (shorter)
			// fallback prefix alone.
			if len(wal) != 0 {
				t.Fatalf("trial %d: fallback checkpoint replayed across an lsn hole: %q", trial, wal)
			}
		default:
			t.Fatalf("trial %d: recovered checkpoint %q is neither installed state", trial, ckpt)
		}
		lg2.Close()
	}
}
