package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sync"
)

// File layout of one FileBackend log, under <root>/<escaped name>/:
//
//	wal.log          frames: len u32 | lsn u64 | payload | crc32 u32
//	checkpoint       magic | lsn u64 | len u32 | state | crc32 u32
//	checkpoint.prev  the previously installed checkpoint (fallback)
//	checkpoint.tmp   in-progress install; ignored and removed on open
//
// Lengths and fixed-width integers are big-endian; the CRC is IEEE CRC-32
// over everything after the length prefix (WAL) or after the magic
// (checkpoint). The lsn is a per-log monotone counter: a checkpoint covers
// every record with lsn ≤ its own, which is what lets Checkpoint truncate
// the WAL lazily — leftover covered records found after a crash are simply
// skipped on recovery.
const (
	walName      = "wal.log"
	ckptName     = "checkpoint"
	ckptPrevName = "checkpoint.prev"
	ckptTmpName  = "checkpoint.tmp"
)

// checkpointMagic versions the checkpoint file format.
var checkpointMagic = []byte("RITMCKP1")

// maxRecordLen bounds a single WAL record or checkpoint state, purely as a
// safety valve against a corrupt length prefix allocating gigabytes. Real
// records are signed issuance batches (kilobytes); checkpoints of a
// 339k-entry dictionary are a few megabytes.
const maxRecordLen = 1 << 30

// ErrCorrupt reports durable state that failed framing or checksum
// validation beyond what recovery can repair (for example, both the newest
// and the fallback checkpoint are damaged). Torn WAL tails are NOT
// reported as ErrCorrupt: they are the expected shape of a crash and are
// truncated silently.
var ErrCorrupt = errors.New("storage: corrupt durable state")

// FileBackend stores each named log in its own directory under Dir.
type FileBackend struct {
	// Dir is the root directory; it is created on first Open.
	Dir string
	// Fsync, when true (the default from NewFileBackend), syncs the WAL
	// file on every Append — the "fsync-on-commit" durability point. With
	// it off, a power failure can lose the records the OS had not flushed
	// yet (a crash of the process alone loses nothing); recovery semantics
	// are unchanged. Checkpoint installs always sync regardless, since the
	// rename protocol depends on ordering.
	Fsync bool
}

// NewFileBackend returns a file-backed Backend rooted at dir with
// fsync-on-commit enabled or disabled.
func NewFileBackend(dir string, fsync bool) *FileBackend {
	return &FileBackend{Dir: dir, Fsync: fsync}
}

// Open implements Backend: it creates the log's directory if needed and
// recovers its durable state (checkpoint selection, WAL scan, torn-tail
// truncation).
func (b *FileBackend) Open(name string) (Log, error) {
	if b.Dir == "" {
		return nil, fmt.Errorf("storage: file backend has no root directory")
	}
	dir := filepath.Join(b.Dir, url.QueryEscape(name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open %q: %w", name, err)
	}
	l := &fileLog{dir: dir, name: name, fsync: b.Fsync}
	if err := l.recover(); err != nil {
		return nil, fmt.Errorf("storage: recover %q: %w", name, err)
	}
	return l, nil
}

// fileLog is one directory's worth of durable state.
type fileLog struct {
	dir   string
	name  string
	fsync bool

	mu      sync.Mutex
	wal     *os.File // open for append; nil after Close
	walSize int64    // offset after the last fully committed frame
	nextLSN uint64
	ckptLSN uint64 // lsn the loaded checkpoint covers (0 = none)
	// failed latches after an append error that could not be rolled back
	// (truncate failed too): the file may end in torn bytes that a later
	// append would bury, silently losing it to the next recovery's
	// torn-tail truncation. Once latched, every mutation is refused.
	failed bool

	// Recovery results, served by Load.
	checkpoint []byte
	records    [][]byte
}

// recover selects the newest valid checkpoint, scans the WAL (truncating a
// torn or corrupt tail), and leaves the WAL file open for appends.
func (l *fileLog) recover() error {
	// A crash mid-install can leave checkpoint.tmp behind; it was never
	// activated, so it is garbage.
	os.Remove(filepath.Join(l.dir, ckptTmpName))

	usedFallback := false
	state, lsn, err := readCheckpoint(filepath.Join(l.dir, ckptName))
	if err != nil {
		// Fall back to the previous checkpoint: either the newest install
		// was interrupted between the two renames (no checkpoint file at
		// all) or the newest file is damaged. The fallback plus the intact
		// WAL is still a consistent prefix.
		var prevErr error
		state, lsn, prevErr = readCheckpoint(filepath.Join(l.dir, ckptPrevName))
		if prevErr != nil {
			if os.IsNotExist(err) && os.IsNotExist(prevErr) {
				// No checkpoint was ever installed: a genuinely fresh log.
				state, lsn = nil, 0
			} else {
				// A checkpoint existed but nothing trustworthy survives to
				// anchor a replay on. Fail loudly rather than serve an
				// unverifiable (or silently emptied) state.
				return fmt.Errorf("%w: checkpoint unreadable (%v) and fallback unreadable (%v)", ErrCorrupt, err, prevErr)
			}
		} else {
			usedFallback = true
		}
	}
	l.checkpoint, l.ckptLSN = state, lsn
	l.nextLSN = lsn + 1

	walPath := filepath.Join(l.dir, walName)
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	good, records, lastLSN, holed := scanWAL(f, l.ckptLSN)
	l.wal = f
	l.records = records
	if usedFallback || holed {
		// The file's lsn sequence no longer lines up with the checkpoint
		// this recovery anchored on (the damaged newer checkpoint had
		// truncated records the fallback needs, or frames went missing).
		// Without normalization the misalignment is permanent: appends
		// made now would be skipped as non-contiguous by the NEXT
		// recovery — acknowledged writes silently lost. Rewrite the WAL
		// to exactly the records this recovery kept, renumbered
		// contiguously from the anchoring checkpoint.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return err
		}
		l.walSize = 0
		for _, rec := range records {
			if err := l.writeFrameLocked(rec, false); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return nil
	}
	// Truncate the torn/corrupt tail so appends extend the valid prefix.
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.walSize = good
	if lastLSN >= l.nextLSN {
		l.nextLSN = lastLSN + 1
	}
	return nil
}

// scanWAL walks the frames of f, returning the byte offset of the end of
// the last valid frame, the payloads of the contiguous lsn run
// after+1, after+2, …, the highest lsn seen, and whether any valid
// frame fell OUTSIDE that run (holed). A short or checksum-failing frame
// ends the scan: the bytes from there on are a torn tail. An lsn hole
// ends record collection (but not the scan): a hole means the records
// bridging the checkpoint to the survivors were lost — replaying the
// survivors onto the checkpoint would fabricate a history, so recovery
// keeps the shorter, consistent prefix instead (and, seeing holed,
// rewrites the file so the kept prefix and future appends stay
// recoverable). Holes only arise when recovery fell back to the previous
// checkpoint after the newest one (whose install truncated the WAL) was
// damaged.
func scanWAL(f *os.File, after uint64) (good int64, records [][]byte, lastLSN uint64, holed bool) {
	var off int64
	var header [4]byte
	expect := after + 1
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			return off, records, lastLSN, holed // clean EOF or torn length
		}
		n := binary.BigEndian.Uint32(header[:])
		if n > maxRecordLen {
			return off, records, lastLSN, holed // corrupt length: tail ends here
		}
		body := make([]byte, 8+int(n)+4)
		if _, err := io.ReadFull(f, body); err != nil {
			return off, records, lastLSN, holed // torn frame
		}
		payload := body[8 : 8+n]
		wantCRC := binary.BigEndian.Uint32(body[8+n:])
		if crc32.ChecksumIEEE(body[:8+n]) != wantCRC {
			return off, records, lastLSN, holed // bit rot or torn overwrite
		}
		lsn := binary.BigEndian.Uint64(body[:8])
		if lsn > lastLSN {
			lastLSN = lsn
		}
		switch {
		case lsn == expect:
			records = append(records, payload)
			expect++
		case lsn > after:
			// Uncollected live frame: the sequence is out of joint.
			holed = true
		}
		off += int64(4 + len(body))
	}
}

// readCheckpoint parses and validates one checkpoint file.
func readCheckpoint(path string) ([]byte, uint64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	headerLen := len(checkpointMagic) + 8 + 4
	if len(buf) < headerLen+4 {
		return nil, 0, fmt.Errorf("%w: checkpoint too short", ErrCorrupt)
	}
	if string(buf[:len(checkpointMagic)]) != string(checkpointMagic) {
		return nil, 0, fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}
	body := buf[len(checkpointMagic):]
	lsn := binary.BigEndian.Uint64(body[:8])
	n := binary.BigEndian.Uint32(body[8:12])
	if uint64(n) > maxRecordLen || len(body) != 12+int(n)+4 {
		return nil, 0, fmt.Errorf("%w: bad checkpoint length", ErrCorrupt)
	}
	state := body[12 : 12+n]
	wantCRC := binary.BigEndian.Uint32(body[12+n:])
	if crc32.ChecksumIEEE(body[:12+n]) != wantCRC {
		return nil, 0, fmt.Errorf("%w: checkpoint checksum mismatch", ErrCorrupt)
	}
	return state, lsn, nil
}

func (l *fileLog) Load() ([]byte, [][]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return nil, nil, fmt.Errorf("storage: log %q is closed", l.name)
	}
	return l.checkpoint, l.records, nil
}

func (l *fileLog) Append(record []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return fmt.Errorf("storage: append to closed log %q", l.name)
	}
	if l.failed {
		return fmt.Errorf("%w: log %q failed a previous write and cannot be repaired in place", ErrCorrupt, l.name)
	}
	if len(record) > maxRecordLen {
		return fmt.Errorf("storage: record of %d bytes exceeds limit", len(record))
	}
	return l.writeFrameLocked(record, l.fsync)
}

// writeFrameLocked frames and writes one record at nextLSN, optionally
// syncing. On failure the file is rewound to the last committed frame: a
// partial write (ENOSPC, I/O error) leaves torn bytes at the end of the
// file, and they must not stay there — a LATER successful append would
// land after them, and recovery's torn-tail scan would stop at the
// garbage and truncate the acknowledged frame away. (A failed fsync
// rewinds too: the caller treats the record as not persisted, so the
// file must agree.) Caller holds mu.
func (l *fileLog) writeFrameLocked(record []byte, sync bool) error {
	frame := make([]byte, 4+8+len(record)+4)
	binary.BigEndian.PutUint32(frame[:4], uint32(len(record)))
	binary.BigEndian.PutUint64(frame[4:12], l.nextLSN)
	copy(frame[12:], record)
	binary.BigEndian.PutUint32(frame[12+len(record):], crc32.ChecksumIEEE(frame[4:12+len(record)]))
	if _, err := l.wal.Write(frame); err != nil {
		l.rewindLocked()
		return fmt.Errorf("storage: append %q: %w", l.name, err)
	}
	if sync {
		if err := l.wal.Sync(); err != nil {
			l.rewindLocked()
			return fmt.Errorf("storage: fsync %q: %w", l.name, err)
		}
	}
	l.walSize += int64(len(frame))
	l.nextLSN++
	return nil
}

// rewindLocked truncates the WAL back to the last committed frame after a
// failed write, latching the log failed if the rewind itself fails.
// Caller holds mu.
func (l *fileLog) rewindLocked() {
	if l.wal.Truncate(l.walSize) != nil {
		l.failed = true
		return
	}
	if _, err := l.wal.Seek(l.walSize, io.SeekStart); err != nil {
		l.failed = true
	}
}

func (l *fileLog) Checkpoint(state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return fmt.Errorf("storage: checkpoint on closed log %q", l.name)
	}
	if l.failed {
		return fmt.Errorf("%w: log %q failed a previous write and cannot be repaired in place", ErrCorrupt, l.name)
	}
	if len(state) > maxRecordLen {
		return fmt.Errorf("storage: checkpoint of %d bytes exceeds limit", len(state))
	}
	// The checkpoint covers every record appended so far.
	lsn := l.nextLSN - 1

	buf := make([]byte, 0, len(checkpointMagic)+12+len(state)+4)
	buf = append(buf, checkpointMagic...)
	buf = binary.BigEndian.AppendUint64(buf, lsn)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(state)))
	buf = append(buf, state...)
	crc := crc32.ChecksumIEEE(buf[len(checkpointMagic):])
	buf = binary.BigEndian.AppendUint32(buf, crc)

	tmp := filepath.Join(l.dir, ckptTmpName)
	cur := filepath.Join(l.dir, ckptName)
	prev := filepath.Join(l.dir, ckptPrevName)
	if err := writeFileSync(tmp, buf); err != nil {
		return fmt.Errorf("storage: checkpoint %q: %w", l.name, err)
	}
	// Retain the current checkpoint as the fallback, then activate the new
	// one. Each rename is atomic; a crash between them recovers from the
	// fallback plus the still-untruncated WAL.
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, prev); err != nil {
			return fmt.Errorf("storage: checkpoint %q: %w", l.name, err)
		}
	}
	if err := os.Rename(tmp, cur); err != nil {
		return fmt.Errorf("storage: checkpoint %q: %w", l.name, err)
	}
	if err := syncDir(l.dir); err != nil {
		return fmt.Errorf("storage: checkpoint %q: %w", l.name, err)
	}
	// The WAL records covered by the checkpoint are dead weight now; a
	// crash before (or during) this truncation is harmless, since covered
	// records are filtered by lsn on recovery.
	if err := l.wal.Truncate(0); err != nil {
		return fmt.Errorf("storage: truncate WAL %q: %w", l.name, err)
	}
	if _, err := l.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("storage: truncate WAL %q: %w", l.name, err)
	}
	l.walSize = 0
	l.checkpoint = append([]byte(nil), state...)
	l.ckptLSN = lsn
	l.records = nil
	return nil
}

func (l *fileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wal == nil {
		return nil
	}
	err := l.wal.Close()
	l.wal = nil
	return err
}

func (l *fileLog) Destroy() error {
	if err := l.Close(); err != nil {
		return err
	}
	return os.RemoveAll(l.dir)
}

// writeFileSync writes data to path and syncs it to stable storage.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir flushes directory metadata (the renames) to stable storage.
// Platforms that cannot sync directories (Windows) are given a pass: the
// rename itself is still atomic there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	if err != nil && (errors.Is(err, os.ErrInvalid) || errors.Is(err, os.ErrPermission)) {
		return nil
	}
	return err
}
