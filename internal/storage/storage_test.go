package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// backends under test: every Backend must satisfy the same contract.
func backends(t *testing.T) map[string]func() Backend {
	t.Helper()
	return map[string]func() Backend{
		"memory": func() Backend { return NewMemory() },
		"file":   func() Backend { return NewFileBackend(t.TempDir(), true) },
	}
}

func rec(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func TestLogRoundTrip(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			be := mk()
			lg, err := be.Open("CA1")
			if err != nil {
				t.Fatal(err)
			}
			ckpt, wal, err := lg.Load()
			if err != nil {
				t.Fatal(err)
			}
			if ckpt != nil || len(wal) != 0 {
				t.Fatalf("fresh log not empty: ckpt=%v wal=%d", ckpt, len(wal))
			}
			for i := 0; i < 5; i++ {
				if err := lg.Append(rec(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := lg.Checkpoint([]byte("state-5")); err != nil {
				t.Fatal(err)
			}
			for i := 5; i < 8; i++ {
				if err := lg.Append(rec(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := lg.Close(); err != nil {
				t.Fatal(err)
			}

			lg2, err := be.Open("CA1")
			if err != nil {
				t.Fatal(err)
			}
			defer lg2.Close()
			ckpt, wal, err = lg2.Load()
			if err != nil {
				t.Fatal(err)
			}
			if string(ckpt) != "state-5" {
				t.Errorf("checkpoint = %q, want state-5", ckpt)
			}
			if len(wal) != 3 {
				t.Fatalf("wal records = %d, want 3", len(wal))
			}
			for i, r := range wal {
				if !bytes.Equal(r, rec(5+i)) {
					t.Errorf("wal[%d] = %q, want %q", i, r, rec(5+i))
				}
			}
		})
	}
}

func TestLogNamesAreIndependent(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			be := mk()
			// Names with '/' (shard ids) and other URL-hostile bytes must
			// neither collide nor escape the backend's namespace.
			names := []string{"CA1", "CA1/exp-123", "CA1%2Fexp-123", "a b&c#d"}
			for i, n := range names {
				lg, err := be.Open(n)
				if err != nil {
					t.Fatalf("open %q: %v", n, err)
				}
				if err := lg.Append(rec(i)); err != nil {
					t.Fatal(err)
				}
				lg.Close()
			}
			for i, n := range names {
				lg, err := be.Open(n)
				if err != nil {
					t.Fatal(err)
				}
				_, wal, err := lg.Load()
				if err != nil {
					t.Fatal(err)
				}
				if len(wal) != 1 || !bytes.Equal(wal[0], rec(i)) {
					t.Errorf("log %q: wal = %q, want [%q]", n, wal, rec(i))
				}
				lg.Close()
			}
		})
	}
}

func TestDestroyForgetsState(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			be := mk()
			lg, err := be.Open("CA1")
			if err != nil {
				t.Fatal(err)
			}
			if err := lg.Append(rec(0)); err != nil {
				t.Fatal(err)
			}
			if err := lg.Destroy(); err != nil {
				t.Fatal(err)
			}
			lg2, err := be.Open("CA1")
			if err != nil {
				t.Fatal(err)
			}
			defer lg2.Close()
			ckpt, wal, err := lg2.Load()
			if err != nil {
				t.Fatal(err)
			}
			if ckpt != nil || len(wal) != 0 {
				t.Errorf("destroyed log retained state: ckpt=%v wal=%d", ckpt, len(wal))
			}
		})
	}
}

// TestCheckpointSurvivesStaleWALRecords covers the crash window between
// checkpoint install and WAL truncation: covered records left in the WAL
// must be skipped on recovery, not replayed.
func TestCheckpointSurvivesStaleWALRecords(t *testing.T) {
	dir := t.TempDir()
	be := NewFileBackend(dir, true)
	lg, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := lg.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash window: install the checkpoint through a second
	// handle's protocol but keep the original WAL bytes.
	walPath := filepath.Join(dir, "CA1", walName)
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("state-4")); err != nil {
		t.Fatal(err)
	}
	lg.Close()
	// Put the pre-truncation WAL back: this is what a crash immediately
	// after the rename would have left.
	if err := os.WriteFile(walPath, walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	lg2, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	ckpt, wal, err := lg2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "state-4" || len(wal) != 0 {
		t.Fatalf("recovery replayed covered records: ckpt=%q wal=%d", ckpt, len(wal))
	}
	// Appends after such a recovery must still be recoverable (LSNs moved
	// past the leftover records).
	if err := lg2.Append(rec(9)); err != nil {
		t.Fatal(err)
	}
	lg2.Close()
	lg3, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	defer lg3.Close()
	_, wal, err = lg3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) != 1 || !bytes.Equal(wal[0], rec(9)) {
		t.Fatalf("post-recovery append lost: wal=%q", wal)
	}
}

func TestCheckpointFallbackToPrevious(t *testing.T) {
	dir := t.TempDir()
	be := NewFileBackend(dir, true)
	lg, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("new")); err != nil {
		t.Fatal(err)
	}
	lg.Close()

	// Damage the newest checkpoint: recovery must use the fallback.
	ckptPath := filepath.Join(dir, "CA1", ckptName)
	buf, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if err := os.WriteFile(ckptPath, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	lg2, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	ckpt, _, err := lg2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(ckpt) != "old" {
		t.Errorf("fallback checkpoint = %q, want old", ckpt)
	}
}

// TestSoleCheckpointCorruptFailsLoudly: with no fallback to retreat to, a
// damaged checkpoint must be an explicit recovery error — never a silent
// restart from empty (which would masquerade as data loss the operator
// chose).
func TestSoleCheckpointCorruptFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	be := NewFileBackend(dir, true)
	lg, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("only")); err != nil {
		t.Fatal(err)
	}
	lg.Close()
	path := filepath.Join(dir, "CA1", ckptName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-3] ^= 0x01
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Open("CA1"); err == nil {
		t.Fatal("recovery over a corrupt sole checkpoint did not fail")
	}
}

func TestBothCheckpointsCorruptFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	be := NewFileBackend(dir, true)
	lg, err := be.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint([]byte("new")); err != nil {
		t.Fatal(err)
	}
	lg.Close()
	for _, name := range []string{ckptName, ckptPrevName} {
		path := filepath.Join(dir, "CA1", name)
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		buf[len(buf)/2] ^= 0xFF
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := be.Open("CA1"); err == nil {
		t.Fatal("recovery over two corrupt checkpoints did not fail")
	}
}
