package loadgen

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"ritm/internal/dictionary"
	"ritm/internal/netsim"
)

// Smoke-scale end-to-end run: a real stack over real sockets, both tiers
// driven open-loop, churn on, every reported metric sane. This is the
// same path cmd/ritm-loadgen runs at full scale.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack run")
	}
	rep, err := Run(Options{
		Stack: StackOptions{
			Regions: 1, PoPs: 2, Writers: 2, Readers: 1,
			Layout: dictionary.LayoutForest,
			Delta:  time.Second,
		},
		Process:     netsim.ArrivalPoisson,
		Rate:        20,
		StatusRate:  2000,
		Duration:    2 * time.Second,
		Warmup:      500 * time.Millisecond,
		PreloadKeys: 2000,
		ChurnKeys:   4000,
		Seed:        7,
		AllocRuns:   50,
		Log:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Handshake.Count == 0 {
		t.Fatal("no successful handshakes recorded")
	}
	if rep.Handshake.Errors > rep.Handshake.Count/4 {
		t.Fatalf("handshake errors %d vs %d ok: stack unhealthy", rep.Handshake.Errors, rep.Handshake.Count)
	}
	if rep.StatusTier.Count == 0 || rep.StatusTier.Errors > 0 {
		t.Fatalf("status tier: %d ok, %d err", rep.StatusTier.Count, rep.StatusTier.Errors)
	}
	if rep.StatusTier.P50 <= 0 || rep.StatusTier.P999 < rep.StatusTier.P99 || rep.StatusTier.P99 < rep.StatusTier.P50 {
		t.Fatalf("status quantiles not monotone: %+v", rep.StatusTier)
	}
	// Open-loop accounting: the achieved rate can lag the offered rate
	// but never exceed it by more than sampling slop.
	if rep.StatusTier.Achieved > rep.StatusTier.Offered*1.5 {
		t.Fatalf("achieved %v far above offered %v", rep.StatusTier.Achieved, rep.StatusTier.Offered)
	}
	if rep.ChurnedKeys == 0 || rep.Refreshes == 0 {
		t.Fatalf("churn driver idle: %+v", rep)
	}
	if rep.OriginPulls == 0 {
		t.Fatal("no origin pulls during steady state: fetchers idle")
	}
	for _, tier := range []string{"ra-status-miss", "ra-status-hit", "cdn-edge-root"} {
		if _, ok := rep.AllocsPerOp[tier]; !ok {
			t.Fatalf("missing allocs/op tier %q: %v", tier, rep.AllocsPerOp)
		}
	}
	// The hit path must be far cheaper than the miss path — that's the
	// cache working.
	if rep.AllocsPerOp["ra-status-hit"] >= rep.AllocsPerOp["ra-status-miss"] {
		t.Fatalf("status cache hit (%v allocs) not cheaper than miss (%v)",
			rep.AllocsPerOp["ra-status-hit"], rep.AllocsPerOp["ra-status-miss"])
	}

	// Records round-trip as benchjson-compatible JSON lines.
	var buf bytes.Buffer
	if err := rep.WriteJSONLines(&buf); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	n := 0
	for dec.More() {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		if rec.Name == "" || rec.Metrics == nil {
			t.Fatalf("malformed record: %+v", rec)
		}
		n++
	}
	if n < 5 {
		t.Fatalf("expected ≥5 records (2 tiers + control plane + 3 alloc tiers), got %d", n)
	}
	rep.WriteSummary(testWriter{t})
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
