// Package loadgen stands up the full RITM stack — CA/origin → region ×
// PoP edge hierarchy → RA fleet (writer + shared-data readers) → real-TLS
// interceptors — in one process tree over real TCP sockets, and drives it
// with open-loop arrival schedules (see internal/netsim). It is the
// engine behind cmd/ritm-loadgen; tests use it at smoke scale.
package loadgen

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"ritm/internal/ca"
	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/dictionary"
	"ritm/internal/interception"
	"ritm/internal/ra"
	"ritm/internal/storage"
)

// caID is the single RITM CA identity the harness runs under.
const caID = dictionary.CAID("LOADGEN-CA")

// siteHost is the SNI / leaf identity of the upstream the clients bump.
const siteHost = "site.loadgen.ritm"

// siteSerial is the upstream leaf's dictionary serial. The churn driver
// draws from seeded generators producing ≥8-byte serials, so a small
// fixed value can never collide with a revoked one.
const siteSerial = 0x5151

// httpTier is one dissemination node exposed over a real TCP socket.
type httpTier struct {
	edge *cdn.EdgeServer
	srv  *http.Server
	ln   net.Listener
}

func (t *httpTier) url() string { return "http://" + t.ln.Addr().String() }

func (t *httpTier) close() {
	t.srv.Close()
	t.ln.Close()
}

// serveHTTP exposes origin over a fresh loopback listener.
func serveHTTP(origin cdn.Origin, opts cdn.HandlerOptions) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: cdn.NewHandler(origin, opts)}
	go srv.Serve(ln) //nolint:errcheck // closed via Stack.Close
	return srv, ln, nil
}

// Stack is the full assembled system under test.
type Stack struct {
	CA *ca.CA
	DP *cdn.DistributionPoint

	originSrv *http.Server
	originLn  net.Listener
	regions   []*httpTier
	pops      []*httpTier

	Writers []*ra.RA
	Readers []*ra.RA
	// Agents is Writers followed by Readers — the fleet handshake
	// traffic is spread across.
	Agents       []*ra.RA
	fetchers     []*ra.Fetcher
	Interceptors []*interception.Interceptor

	PKI          *sitePKI
	UpstreamAddr string
	upstreamLn   net.Listener
	// MintPool trusts the interceptors' bump root — what the TLS clients
	// verify against.
	MintPool *x509.CertPool

	dataDir    string
	ownDataDir bool
}

// StackOptions sizes the stack. Zero values select smoke-scale defaults.
type StackOptions struct {
	Regions int // regional edge servers pulling from the origin
	PoPs    int // PoP edges per region, pulling from their region
	Writers int // RAs pulling from PoPs (round-robin), each intercepting
	Readers int // shared-data reader RAs mapping writer 0's checkpoints

	Layout dictionary.LayoutKind
	// Delta is ∆ — the CA freshness cadence and the RA staleness unit.
	// Clamped to 1s (the RA minimum).
	Delta time.Duration
	// EdgeTTL is the edge cache TTL (0 = ∆/2).
	EdgeTTL time.Duration
	// RootTTL is the edge signed-root cache TTL (0 = ∆/4). The loadgen
	// stack runs no equivocation monitor through its edges, so bounded
	// staleness well under the client's 2∆ tolerance is safe; pass a
	// negative value to disable root caching entirely.
	RootTTL time.Duration
	// FetchInterval is the RA pull cadence (0 = ∆/2).
	FetchInterval time.Duration
	// DataDir holds the writer's WAL/checkpoints when Readers > 0
	// (empty = a fresh temp dir, removed on Close).
	DataDir string
	// OnSyncError receives background fetcher errors (nil = dropped).
	OnSyncError func(error)
}

func (o *StackOptions) fill() {
	if o.Regions <= 0 {
		o.Regions = 1
	}
	if o.PoPs <= 0 {
		o.PoPs = 2
	}
	if o.Writers <= 0 {
		o.Writers = 2
	}
	if o.Readers < 0 {
		o.Readers = 0
	}
	if o.Delta < time.Second {
		o.Delta = time.Second
	}
	if o.EdgeTTL <= 0 {
		o.EdgeTTL = o.Delta / 2
	}
	if o.RootTTL == 0 {
		o.RootTTL = o.Delta / 4
	} else if o.RootTTL < 0 {
		o.RootTTL = 0
	}
	if o.FetchInterval <= 0 {
		o.FetchInterval = o.Delta / 2
	}
}

// BuildStack assembles the system: real x509 site PKI, TLS echo
// upstream, CA publishing into an origin distribution point served over
// HTTP, two edge tiers stacked over HTTP clients, the RA fleet pulling
// from PoP edges, and one real-TLS interceptor per RA. Fetchers are NOT
// started; callers sync once explicitly and then StartFetchers.
func BuildStack(opts StackOptions) (*Stack, error) {
	opts.fill()
	s := &Stack{}
	ok := false
	defer func() {
		if !ok {
			s.Close()
		}
	}()

	pki, err := newSitePKI(string(caID), siteHost, siteSerial)
	if err != nil {
		return nil, err
	}
	s.PKI = pki

	// Upstream: a real TLS echo server presenting the site leaf.
	upLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s.upstreamLn = upLn
	s.UpstreamAddr = upLn.Addr().String()
	upCfg := &tls.Config{Certificates: []tls.Certificate{pki.leaf}}
	go func() {
		for {
			raw, err := upLn.Accept()
			if err != nil {
				return
			}
			go func() {
				conn := tls.Server(raw, upCfg)
				defer conn.Close()
				io.Copy(conn, conn) //nolint:errcheck // echo until close
			}()
		}
	}()

	// Control plane: CA → distribution point → HTTP origin.
	s.DP = cdn.NewDistributionPoint(nil)
	authority, err := ca.New(ca.Config{
		ID:        caID,
		Delta:     opts.Delta,
		Layout:    opts.Layout,
		Publisher: s.DP,
	})
	if err != nil {
		return nil, err
	}
	s.CA = authority
	if err := s.DP.RegisterCAWithLayout(caID, authority.PublicKey(), opts.Layout); err != nil {
		return nil, err
	}
	if err := authority.PublishRoot(); err != nil {
		return nil, err
	}
	s.originSrv, s.originLn, err = serveHTTP(s.DP, cdn.HandlerOptions{})
	if err != nil {
		return nil, err
	}
	originURL := "http://" + s.originLn.Addr().String()

	// Edge hierarchy: regions pull the origin, PoPs pull their region —
	// every hop over a real socket through cdn.HTTPClient.
	for r := 0; r < opts.Regions; r++ {
		edge := cdn.NewEdgeServer(&cdn.HTTPClient{BaseURL: originURL}, opts.EdgeTTL, nil)
		edge.SetRootTTL(opts.RootTTL)
		srv, ln, err := serveHTTP(edge, cdn.HandlerOptions{})
		if err != nil {
			return nil, err
		}
		s.regions = append(s.regions, &httpTier{edge: edge, srv: srv, ln: ln})
	}
	for r := 0; r < opts.Regions; r++ {
		for p := 0; p < opts.PoPs; p++ {
			edge := cdn.NewEdgeServer(&cdn.HTTPClient{BaseURL: s.regions[r].url()}, opts.EdgeTTL, nil)
			edge.SetRootTTL(opts.RootTTL)
			srv, ln, err := serveHTTP(edge, cdn.HandlerOptions{})
			if err != nil {
				return nil, err
			}
			s.pops = append(s.pops, &httpTier{edge: edge, srv: srv, ln: ln})
		}
	}

	// Writer RAs: pull from PoP edges round-robin. Writer 0 persists to
	// DataDir when readers will map it.
	roots := []*cert.Certificate{authority.RootCertificate()}
	var backend storage.Backend
	if opts.Readers > 0 {
		s.dataDir = opts.DataDir
		if s.dataDir == "" {
			dir, err := os.MkdirTemp("", "ritm-loadgen-*")
			if err != nil {
				return nil, err
			}
			s.dataDir = dir
			s.ownDataDir = true
		}
		backend = storage.NewFileBackend(filepath.Join(s.dataDir, "writer0"), false)
	}
	for w := 0; w < opts.Writers; w++ {
		cfg := ra.Config{
			Roots:  roots,
			Origin: &cdn.HTTPClient{BaseURL: s.pops[w%len(s.pops)].url()},
			Delta:  opts.Delta,
			Layout: opts.Layout,
		}
		if w == 0 && backend != nil {
			cfg.Storage = backend
			cfg.CheckpointEvery = 1 // readers see v2 state immediately
		}
		agent, err := ra.New(cfg)
		if err != nil {
			return nil, err
		}
		s.Writers = append(s.Writers, agent)
	}
	for i := 0; i < opts.Readers; i++ {
		agent, err := ra.New(ra.Config{
			Roots:      roots,
			Delta:      opts.Delta,
			Layout:     opts.Layout,
			Storage:    backend,
			SharedData: true,
		})
		if err != nil {
			return nil, err
		}
		s.Readers = append(s.Readers, agent)
	}
	s.Agents = append(append([]*ra.RA{}, s.Writers...), s.Readers...)

	// One bump root shared by the fleet, one interceptor per RA.
	mintRoot, err := interception.NewMintingRoot("Loadgen Bump Root", interception.KeyECDSA)
	if err != nil {
		return nil, err
	}
	s.MintPool = x509.NewCertPool()
	s.MintPool.AddCert(mintRoot.Certificate())
	for _, agent := range s.Agents {
		it, err := agent.NewInterceptor("127.0.0.1:0", interception.Config{
			Minter: interception.NewMinter(mintRoot, 0),
			Target: s.UpstreamAddr,
		})
		if err != nil {
			return nil, err
		}
		s.Interceptors = append(s.Interceptors, it)
	}

	ok = true
	return s, nil
}

// SyncOnce brings the whole fleet up to the origin's current state —
// writers first (the shared checkpoint must exist before readers map it).
func (s *Stack) SyncOnce() error {
	for i, w := range s.Writers {
		if err := w.SyncOnce(); err != nil {
			return fmt.Errorf("writer %d: %w", i, err)
		}
	}
	for i, r := range s.Readers {
		if err := r.SyncOnce(); err != nil {
			return fmt.Errorf("reader %d: %w", i, err)
		}
	}
	return nil
}

// StartFetchers launches the background pull loop on every RA.
func (s *Stack) StartFetchers(interval, jitter time.Duration, onErr func(error)) {
	for _, agent := range s.Agents {
		s.fetchers = append(s.fetchers, agent.StartFetcherWith(ra.FetcherOptions{
			Interval: interval,
			Jitter:   jitter,
			OnError:  onErr,
		}))
	}
}

// StopFetchers shuts the pull loops down (idempotent; Close also stops
// any still running). Used to quiesce background allocation before the
// allocs/op samplers run.
func (s *Stack) StopFetchers() {
	for _, f := range s.fetchers {
		f.Shutdown()
	}
	s.fetchers = nil
}

// EdgeStatsByTier sums cache counters across each tier.
func (s *Stack) EdgeStatsByTier() (region, pop cdn.EdgeStats) {
	sum := func(tiers []*httpTier) cdn.EdgeStats {
		var t cdn.EdgeStats
		for _, e := range tiers {
			st := e.edge.Stats()
			t.Hits += st.Hits
			t.Misses += st.Misses
			t.CollapsedPulls += st.CollapsedPulls
			t.Evictions += st.Evictions
			t.Errors += st.Errors
			t.NegativeHits += st.NegativeHits
		}
		return t
	}
	return sum(s.regions), sum(s.pops)
}

// Close tears the stack down in dependency order.
func (s *Stack) Close() {
	for _, f := range s.fetchers {
		f.Shutdown()
	}
	for _, it := range s.Interceptors {
		it.Close()
	}
	for _, agent := range s.Readers {
		agent.Store().Close()
	}
	for _, agent := range s.Writers {
		agent.Store().Close()
	}
	for _, t := range s.pops {
		t.close()
	}
	for _, t := range s.regions {
		t.close()
	}
	if s.originSrv != nil {
		s.originSrv.Close()
	}
	if s.originLn != nil {
		s.originLn.Close()
	}
	if s.CA != nil {
		s.CA.Close()
	}
	if s.upstreamLn != nil {
		s.upstreamLn.Close()
	}
	if s.ownDataDir && s.dataDir != "" {
		os.RemoveAll(s.dataDir)
	}
}
