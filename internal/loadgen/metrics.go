package loadgen

import (
	"sort"
	"sync"
	"time"
)

// latencyRecorder collects per-arrival latencies with a fixed-capacity
// slice sized from the schedule, so the hot path is one mutex'd append —
// no reallocation, no per-sample allocation.
type latencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	errors  int
}

func newLatencyRecorder(capacity int) *latencyRecorder {
	return &latencyRecorder{samples: make([]time.Duration, 0, capacity)}
}

func (r *latencyRecorder) ok(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

func (r *latencyRecorder) err() {
	r.mu.Lock()
	r.errors++
	r.mu.Unlock()
}

// TierResult summarizes one driven tier of a run.
type TierResult struct {
	// Offered is the schedule's arrival rate; Achieved counts only
	// successful completions over the same window. A gap between them is
	// saturation (or errors), not a slower clock — the open-loop
	// schedule never yields.
	Offered  float64 `json:"offered_qps"`
	Achieved float64 `json:"achieved_qps"`
	Count    int     `json:"count"`
	Errors   int     `json:"errors"`
	// Latency quantiles measured from each arrival's *scheduled* time,
	// so queueing delay behind a saturated server counts against the
	// tail (no coordinated omission).
	P50  time.Duration `json:"p50"`
	P99  time.Duration `json:"p99"`
	P999 time.Duration `json:"p999"`
	Max  time.Duration `json:"max"`
}

// summarize freezes the recorder into a TierResult over the given window.
func (r *latencyRecorder) summarize(offered float64, window time.Duration) TierResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	res := TierResult{
		Offered: offered,
		Count:   len(r.samples),
		Errors:  r.errors,
	}
	if window > 0 {
		res.Achieved = float64(len(r.samples)) / window.Seconds()
	}
	if len(r.samples) == 0 {
		return res
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	res.P50 = quantileDur(sorted, 0.50)
	res.P99 = quantileDur(sorted, 0.99)
	res.P999 = quantileDur(sorted, 0.999)
	res.Max = sorted[len(sorted)-1]
	return res
}

// quantileDur is the nearest-rank quantile of an ascending slice.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
