package loadgen

import (
	"context"
	"crypto/tls"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"ritm/internal/netsim"
	"ritm/internal/serial"
)

// Options configures one harness run.
type Options struct {
	Stack StackOptions

	// Process shapes arrivals on both driven tiers.
	Process netsim.ArrivalProcess
	// Rate is the handshake tier's offered arrivals/second: real TLS
	// clients dialing the interceptors over TCP. 0 disables the tier.
	Rate float64
	// StatusRate is the status tier's offered arrivals/second: in-process
	// open-loop Status lookups against the RA fleet. Full-TLS handshakes
	// are crypto-bound at a few hundred/second/core, so this tier is how
	// the harness pushes the revocation-check path itself to 10k+/s
	// under churn. 0 disables the tier.
	StatusRate float64

	// Duration is the measured steady-state window; Warmup runs the same
	// load beforehand without recording (caches fill, fetchers settle).
	Duration time.Duration
	Warmup   time.Duration

	// PreloadKeys revocations are published before the run starts (the
	// standing corpus); ChurnKeys more are spread across the run in one
	// batch + freshness refresh per ∆ tick (the churn).
	PreloadKeys int
	ChurnKeys   int

	// Seed drives every RNG in the run (schedules, serial generators).
	Seed int64

	// CPUProfile/MemProfile, when non-empty, capture pprof profiles
	// covering exactly the steady-state window.
	CPUProfile string
	MemProfile string

	// AllocRuns is the per-tier allocs/op sample count (0 = 200).
	AllocRuns int

	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

func (o *Options) fill() error {
	o.Stack.fill()
	if o.Rate <= 0 && o.StatusRate <= 0 {
		return fmt.Errorf("loadgen: both tiers disabled (rate and status-rate are 0)")
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.PreloadKeys < 0 || o.ChurnKeys < 0 {
		return fmt.Errorf("loadgen: negative key counts")
	}
	if o.AllocRuns <= 0 {
		o.AllocRuns = 200
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return nil
}

// Report is the machine-readable outcome of a run.
type Report struct {
	Process  string        `json:"process"`
	Duration time.Duration `json:"duration"`

	Handshake  TierResult `json:"handshake"`
	StatusTier TierResult `json:"status_tier"`

	// Origin load and edge effectiveness over the steady-state window.
	OriginPulls       int     `json:"origin_pulls"`
	OriginPullsPerSec float64 `json:"origin_pulls_per_sec"`
	RegionHitRate     float64 `json:"region_hit_rate"`
	PoPHitRate        float64 `json:"pop_hit_rate"`
	CollapsedPulls    int     `json:"collapsed_pulls"`

	ChurnedKeys int `json:"churned_keys"`
	Refreshes   int `json:"refreshes"`

	// AllocsPerOp holds the per-tier allocation samplers, keyed by tier
	// name (ra-status-miss, ra-status-hit, cdn-edge-root).
	AllocsPerOp map[string]float64 `json:"allocs_per_op"`
}

// Run executes one full harness run: build, preload, sync, warm up,
// measure, profile, sample, tear down.
func Run(opts Options) (*Report, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	log := opts.Log

	log("building stack: %d region(s) × %d PoP(s), %d writer(s) + %d reader(s), layout=%v ∆=%v",
		opts.Stack.Regions, opts.Stack.PoPs, opts.Stack.Writers, opts.Stack.Readers,
		opts.Stack.Layout, opts.Stack.Delta)
	stack, err := BuildStack(opts.Stack)
	if err != nil {
		return nil, err
	}
	defer stack.Close()

	// Standing revocation corpus, published before anyone syncs.
	// All generators draw 16-byte randomized serials (disjoint seeded
	// streams): collision-free across preload/churn/probe pools, and the
	// high-cardinality regime the paper's randomized-serial CAs produce.
	loadDist := serial.SizeDistribution{{Bytes: 16, Weight: 1}}
	preloadGen := serial.NewGenerator(uint64(opts.Seed)+0x9E3779B9, loadDist)
	var revokedPool []serial.Number
	if opts.PreloadKeys > 0 {
		log("preloading %d revocations", opts.PreloadKeys)
		remaining := opts.PreloadKeys
		for remaining > 0 {
			n := remaining
			if n > 8192 {
				n = 8192
			}
			batch := preloadGen.NextN(n)
			if len(revokedPool) < 32768 {
				revokedPool = append(revokedPool, batch...)
			}
			if _, err := stack.CA.Revoke(batch...); err != nil {
				return nil, fmt.Errorf("preload revoke: %w", err)
			}
			remaining -= n
		}
		if err := stack.CA.PublishRefresh(); err != nil {
			return nil, fmt.Errorf("preload publish: %w", err)
		}
	}

	log("syncing fleet")
	if err := stack.SyncOnce(); err != nil {
		return nil, err
	}

	// Fail fast: one end-to-end handshake before opening the floodgates.
	clientCfg := &tls.Config{ServerName: siteHost, RootCAs: stack.MintPool}
	dialer := &net.Dialer{Timeout: 10 * time.Second}
	if opts.Rate > 0 {
		conn, err := tls.DialWithDialer(dialer, "tcp", stack.Interceptors[0].Addr().String(), clientCfg)
		if err != nil {
			return nil, fmt.Errorf("sanity handshake through interceptor 0: %w", err)
		}
		conn.Close()
	}

	stack.StartFetchers(opts.Stack.FetchInterval, opts.Stack.FetchInterval/4, func(err error) {
		log("fetcher: %v", err)
	})

	// Churn driver: one revocation batch + freshness refresh per ∆ tick.
	total := opts.Warmup + opts.Duration
	churnStop := make(chan struct{})
	var churnWG sync.WaitGroup
	var churned, refreshes int
	var churnMu sync.Mutex
	if opts.ChurnKeys > 0 {
		ticks := int(total/opts.Stack.Delta) + 1
		perTick := opts.ChurnKeys / ticks
		if perTick < 1 {
			perTick = 1
		}
		churnGen := serial.NewGenerator(uint64(opts.Seed)+0xC0FFEE, loadDist)
		log("churn: ~%d keys/tick every %v (%d total)", perTick, opts.Stack.Delta, opts.ChurnKeys)
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			ticker := time.NewTicker(opts.Stack.Delta)
			defer ticker.Stop()
			left := opts.ChurnKeys
			for left > 0 {
				select {
				case <-churnStop:
					return
				case <-ticker.C:
				}
				n := perTick
				if n > left {
					n = left
				}
				if _, err := stack.CA.Revoke(churnGen.NextN(n)...); err != nil {
					log("churn revoke: %v", err)
					return
				}
				if err := stack.CA.PublishRefresh(); err != nil {
					log("churn publish: %v", err)
					return
				}
				churnMu.Lock()
				churned += n
				refreshes++
				churnMu.Unlock()
				left -= n
			}
		}()
	}

	// Status-tier probe pool: alternate standing revocations (presence
	// proofs, cache-friendly until the next generation bump) and fresh
	// absent serials (absence proofs, permanently cache-hostile) — the
	// high-cardinality mix that stresses the status cache under churn.
	var probes []serial.Number
	if opts.StatusRate > 0 {
		absentGen := serial.NewGenerator(uint64(opts.Seed)+0xAB5E17, loadDist)
		absent := absentGen.NextN(32768)
		if len(revokedPool) == 0 {
			revokedPool = absent[:1] // preload disabled: probe absents only
		}
		probes = make([]serial.Number, 0, 65536)
		for i := 0; i < 32768; i++ {
			probes = append(probes, revokedPool[i%len(revokedPool)], absent[i%len(absent)])
		}
	}

	runTier := func(window time.Duration, record bool, hs, st *latencyRecorder) error {
		var wg sync.WaitGroup
		ctx := context.Background()
		start := time.Now().Add(50 * time.Millisecond) // shared anchor for both schedules
		if opts.Rate > 0 {
			sched, err := netsim.NewSchedule(opts.Process, opts.Rate, window, opts.Seed+1)
			if err != nil {
				return err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				sched.RunAndWait(ctx, start, func(i int, scheduled time.Time) {
					it := stack.Interceptors[i%len(stack.Interceptors)]
					conn, err := tls.DialWithDialer(dialer, "tcp", it.Addr().String(), clientCfg)
					if err != nil {
						if record {
							hs.err()
						}
						return
					}
					conn.Close()
					if record {
						hs.ok(time.Since(scheduled))
					}
				})
			}()
		}
		if opts.StatusRate > 0 {
			sched, err := netsim.NewSchedule(opts.Process, opts.StatusRate, window, opts.Seed+2)
			if err != nil {
				return err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				sched.RunAndWait(ctx, start, func(i int, scheduled time.Time) {
					agent := stack.Agents[i%len(stack.Agents)]
					_, _, err := agent.StatusEncoded(caID, probes[i%len(probes)])
					if err != nil {
						if record {
							st.err()
						}
						return
					}
					if record {
						st.ok(time.Since(scheduled))
					}
				})
			}()
		}
		wg.Wait()
		return nil
	}

	if opts.Warmup > 0 {
		log("warmup: %v", opts.Warmup)
		if err := runTier(opts.Warmup, false, nil, nil); err != nil {
			return nil, err
		}
	}

	// Steady state: snapshot control-plane counters, profile the window.
	hsRec := newLatencyRecorder(int(opts.Rate*opts.Duration.Seconds()) + 16)
	stRec := newLatencyRecorder(int(opts.StatusRate*opts.Duration.Seconds()) + 16)
	pullsBefore := stack.DP.Stats().Pulls
	regionBefore, popBefore := stack.EdgeStatsByTier()

	if opts.CPUProfile != "" {
		f, err := os.Create(opts.CPUProfile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return nil, err
		}
	}
	log("steady state: %v at %g handshakes/s + %g status/s (%v arrivals)",
		opts.Duration, opts.Rate, opts.StatusRate, opts.Process)
	steadyStart := time.Now()
	if err := runTier(opts.Duration, true, hsRec, stRec); err != nil {
		if opts.CPUProfile != "" {
			pprof.StopCPUProfile()
		}
		return nil, err
	}
	steadyWindow := time.Since(steadyStart)
	if opts.CPUProfile != "" {
		pprof.StopCPUProfile()
		log("cpu profile: %s", opts.CPUProfile)
	}
	if opts.MemProfile != "" {
		f, err := os.Create(opts.MemProfile)
		if err != nil {
			return nil, err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
		log("heap profile: %s", opts.MemProfile)
	}

	pullsAfter := stack.DP.Stats().Pulls
	regionAfter, popAfter := stack.EdgeStatsByTier()

	// Quiesce background load before the allocation samplers.
	close(churnStop)
	churnWG.Wait()
	stack.StopFetchers()

	rep := &Report{
		Process:     opts.Process.String(),
		Duration:    opts.Duration,
		OriginPulls: pullsAfter - pullsBefore,
		AllocsPerOp: map[string]float64{},
	}
	if steadyWindow > 0 {
		rep.OriginPullsPerSec = float64(rep.OriginPulls) / steadyWindow.Seconds()
	}
	hitRate := func(hits, misses int) float64 {
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	}
	rep.RegionHitRate = hitRate(regionAfter.Hits-regionBefore.Hits, regionAfter.Misses-regionBefore.Misses)
	rep.PoPHitRate = hitRate(popAfter.Hits-popBefore.Hits, popAfter.Misses-popBefore.Misses)
	rep.CollapsedPulls = popAfter.CollapsedPulls - popBefore.CollapsedPulls +
		regionAfter.CollapsedPulls - regionBefore.CollapsedPulls
	churnMu.Lock()
	rep.ChurnedKeys = churned
	rep.Refreshes = refreshes
	churnMu.Unlock()
	if opts.Rate > 0 {
		rep.Handshake = hsRec.summarize(opts.Rate, steadyWindow)
	}
	if opts.StatusRate > 0 {
		rep.StatusTier = stRec.summarize(opts.StatusRate, steadyWindow)
	}

	// Per-tier allocs/op, sampled on the quiesced stack. The miss
	// sampler is the status-encode hot path end to end: prove + encode +
	// cache fill on a never-seen serial.
	sampleAgent := stack.Writers[0]
	if len(stack.Readers) > 0 {
		sampleAgent = stack.Readers[0]
	}
	missGen := serial.NewGenerator(uint64(opts.Seed)+0x315513, loadDist)
	missProbes := missGen.NextN(opts.AllocRuns + 2)
	missIdx := 0
	rep.AllocsPerOp["ra-status-miss"] = allocsPerRun(opts.AllocRuns, func() {
		if _, _, err := sampleAgent.StatusEncoded(caID, missProbes[missIdx]); err != nil {
			panic(fmt.Sprintf("loadgen alloc sampler: %v", err))
		}
		missIdx++
	})
	hit := missProbes[len(missProbes)-1]
	if _, _, err := sampleAgent.StatusEncoded(caID, hit); err != nil {
		return nil, err
	}
	rep.AllocsPerOp["ra-status-hit"] = allocsPerRun(opts.AllocRuns, func() {
		if _, _, err := sampleAgent.StatusEncoded(caID, hit); err != nil {
			panic(fmt.Sprintf("loadgen alloc sampler: %v", err))
		}
	})
	popEdge := stack.pops[0].edge
	rep.AllocsPerOp["cdn-edge-root"] = allocsPerRun(opts.AllocRuns, func() {
		if _, err := popEdge.LatestRoot(caID); err != nil {
			panic(fmt.Sprintf("loadgen alloc sampler: %v", err))
		}
	})

	return rep, nil
}

// allocsPerRun is testing.AllocsPerRun without importing testing into a
// shipping binary: mean heap allocations across runs of f, single-proc.
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up once outside the measured window
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}
