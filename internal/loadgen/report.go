package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Record is one aggregate result in the shape tools/benchjson ingests
// (the same JSON field names as its Benchmark type), so a loadgen run
// can be piped into the BENCH_<pr>.json trajectory alongside `go test
// -bench` lines.
type Record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Records flattens the report into benchjson aggregate records.
func (r *Report) Records() []Record {
	var recs []Record
	if r.Handshake.Count > 0 || r.Handshake.Errors > 0 {
		recs = append(recs, Record{
			Name:       "LoadgenHandshake/" + r.Process,
			Iterations: int64(r.Handshake.Count),
			Metrics: map[string]float64{
				"offered-qps":  r.Handshake.Offered,
				"achieved-qps": r.Handshake.Achieved,
				"p50-ms":       ms(r.Handshake.P50),
				"p99-ms":       ms(r.Handshake.P99),
				"p999-ms":      ms(r.Handshake.P999),
				"max-ms":       ms(r.Handshake.Max),
				"errors":       float64(r.Handshake.Errors),
			},
		})
	}
	if r.StatusTier.Count > 0 || r.StatusTier.Errors > 0 {
		recs = append(recs, Record{
			Name:       "LoadgenStatus/" + r.Process,
			Iterations: int64(r.StatusTier.Count),
			Metrics: map[string]float64{
				"offered-qps":  r.StatusTier.Offered,
				"achieved-qps": r.StatusTier.Achieved,
				"p50-us":       us(r.StatusTier.P50),
				"p99-us":       us(r.StatusTier.P99),
				"p999-us":      us(r.StatusTier.P999),
				"max-us":       us(r.StatusTier.Max),
				"errors":       float64(r.StatusTier.Errors),
			},
		})
	}
	recs = append(recs, Record{
		Name:       "LoadgenControlPlane",
		Iterations: 1,
		Metrics: map[string]float64{
			"origin-pulls/sec": r.OriginPullsPerSec,
			"origin-pulls":     float64(r.OriginPulls),
			"region-hit-rate":  r.RegionHitRate,
			"pop-hit-rate":     r.PoPHitRate,
			"collapsed-pulls":  float64(r.CollapsedPulls),
			"churned-keys":     float64(r.ChurnedKeys),
			"refreshes":        float64(r.Refreshes),
		},
	})
	tiers := make([]string, 0, len(r.AllocsPerOp))
	for tier := range r.AllocsPerOp {
		tiers = append(tiers, tier)
	}
	sort.Strings(tiers)
	for _, tier := range tiers {
		recs = append(recs, Record{
			Name:       "LoadgenAllocs/" + tier,
			Iterations: 1,
			Metrics:    map[string]float64{"allocs/op": r.AllocsPerOp[tier]},
		})
	}
	return recs
}

// WriteJSONLines emits one benchjson-compatible JSON record per line.
func (r *Report) WriteJSONLines(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range r.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary prints the human-readable run summary.
func (r *Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %s arrivals over %v steady state\n", r.Process, r.Duration)
	if r.Handshake.Count > 0 || r.Handshake.Errors > 0 {
		h := r.Handshake
		fmt.Fprintf(w, "  handshakes   offered %.1f/s achieved %.1f/s (%d ok, %d err)\n",
			h.Offered, h.Achieved, h.Count, h.Errors)
		fmt.Fprintf(w, "               p50 %v  p99 %v  p999 %v  max %v\n", h.P50, h.P99, h.P999, h.Max)
	}
	if r.StatusTier.Count > 0 || r.StatusTier.Errors > 0 {
		s := r.StatusTier
		fmt.Fprintf(w, "  status tier  offered %.0f/s achieved %.0f/s (%d ok, %d err)\n",
			s.Offered, s.Achieved, s.Count, s.Errors)
		fmt.Fprintf(w, "               p50 %v  p99 %v  p999 %v  max %v\n", s.P50, s.P99, s.P999, s.Max)
	}
	fmt.Fprintf(w, "  control      origin %.2f pulls/s (%d total), hit rate region %.1f%% pop %.1f%%, collapsed %d\n",
		r.OriginPullsPerSec, r.OriginPulls, 100*r.RegionHitRate, 100*r.PoPHitRate, r.CollapsedPulls)
	fmt.Fprintf(w, "  churn        %d keys across %d refreshes\n", r.ChurnedKeys, r.Refreshes)
	tiers := make([]string, 0, len(r.AllocsPerOp))
	for tier := range r.AllocsPerOp {
		tiers = append(tiers, tier)
	}
	sort.Strings(tiers)
	for _, tier := range tiers {
		fmt.Fprintf(w, "  allocs/op    %-16s %.1f\n", tier, r.AllocsPerOp[tier])
	}
}
