package loadgen

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"time"

	"ritm/internal/serial"
)

// sitePKI is the upstream site's real-x509 identity: an issuing CA whose
// CommonName doubles as the RITM CA identifier (how the interceptor maps
// a bumped chain back to a dictionary), and a leaf for the benchmark host
// whose x509 serial is the dictionary serial the status check resolves.
type sitePKI struct {
	leaf tls.Certificate // served by the upstream TLS echo
	pool *x509.CertPool  // trust anchor for dialing the upstream directly
	sn   serial.Number   // the leaf's serial as a dictionary serial
}

// newSitePKI issues a fresh CA + leaf. rawSN must stay clear of the
// serial ranges the churn driver revokes, or the harness would measure
// certificate_revoked refusals instead of handshakes.
func newSitePKI(caID, host string, rawSN int64) (*sitePKI, error) {
	caKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	caTmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: caID},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	caDER, err := x509.CreateCertificate(rand.Reader, caTmpl, caTmpl, &caKey.PublicKey, caKey)
	if err != nil {
		return nil, err
	}
	caCert, err := x509.ParseCertificate(caDER)
	if err != nil {
		return nil, err
	}
	leafKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	leafTmpl := &x509.Certificate{
		SerialNumber: big.NewInt(rawSN),
		Subject:      pkix.Name{CommonName: host},
		DNSNames:     []string{host},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(12 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	leafDER, err := x509.CreateCertificate(rand.Reader, leafTmpl, caCert, &leafKey.PublicKey, caKey)
	if err != nil {
		return nil, err
	}
	parsed, err := x509.ParseCertificate(leafDER)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(caCert)
	sn, err := serial.New(big.NewInt(rawSN).Bytes())
	if err != nil {
		return nil, fmt.Errorf("loadgen: leaf serial: %w", err)
	}
	return &sitePKI{
		leaf: tls.Certificate{Certificate: [][]byte{leafDER}, PrivateKey: leafKey, Leaf: parsed},
		pool: pool,
		sn:   sn,
	}, nil
}
