package cdn

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"

	"ritm/internal/dictionary"
)

// Multi-origin sharding: one DistributionPoint per shard instead of one
// for the world. A consistent-hash ring maps CA ids to shards, so every
// component that routes by CA id — regional edges, RA fetchers, the CAs
// themselves — computes the same assignment from nothing but (shard
// count, CA id). Each shard is a failover list of candidate origins
// (leader first, WAL-shipping followers after); ShardedOrigin routes
// pulls along the ring and demotes dead or behind candidates, which is
// what turns follower replication into availability.

// ErrNoOrigin reports that every candidate origin of the shard
// responsible for a CA is down or demoted.
var ErrNoOrigin = errors.New("cdn: no live origin for shard")

// ringVnodes is the number of virtual nodes per shard on the ring. 64
// keeps the max/mean shard imbalance under ~1.3 for realistic CA counts
// while the full ring still fits in a few KB.
const ringVnodes = 64

// Ring is a consistent-hash ring mapping CA ids to origin shards. It is
// deterministic across processes — every edge, RA, and operator tool
// computes the same CA→shard assignment from the shard count alone — and
// stable under growth: adding one shard moves ~1/(n+1) of the CAs,
// leaving every other shard's dictionaries (and its followers' replicated
// state) untouched.
type Ring struct {
	shards int
	points []uint64 // sorted vnode positions
	owner  []int    // owner[i] = shard owning points[i]
}

// NewRing builds the ring for n shards.
func NewRing(n int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("cdn: ring needs ≥1 shard (got %d)", n)
	}
	r := &Ring{
		shards: n,
		points: make([]uint64, 0, n*ringVnodes),
		owner:  make([]int, 0, n*ringVnodes),
	}
	type vnode struct {
		pos   uint64
		shard int
	}
	vnodes := make([]vnode, 0, n*ringVnodes)
	for s := 0; s < n; s++ {
		for v := 0; v < ringVnodes; v++ {
			vnodes = append(vnodes, vnode{pos: ringHash(fmt.Sprintf("shard/%d#%d", s, v)), shard: s})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool { return vnodes[i].pos < vnodes[j].pos })
	for _, vn := range vnodes {
		r.points = append(r.points, vn.pos)
		r.owner = append(r.owner, vn.shard)
	}
	return r, nil
}

// ringHash positions a key on the ring (FNV-1a: deterministic across
// processes and Go versions, unlike maphash). Raw FNV avalanches poorly
// on short keys that differ only in trailing digits — exactly what vnode
// labels and real CA-id families look like — leaving correlated clusters
// on the ring, so the sum is pushed through a splitmix64 finalizer.
func ringHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return r.shards }

// ShardFor returns the shard responsible for ca: the owner of the first
// vnode at or clockwise of the CA's position.
func (r *Ring) ShardFor(ca dictionary.CAID) int {
	pos := ringHash(string(ca))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= pos })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.owner[i]
}

// ShardedOriginOptions tunes failover behavior.
type ShardedOriginOptions struct {
	// Cooldown is how long a demoted candidate stays skipped before it is
	// probed again (0 = 5s). Demotion happens on transport errors and on
	// ErrAhead (a candidate behind the caller's history); typed
	// ErrUnknownCA answers are authoritative and never demote.
	Cooldown time.Duration
	// Now is the failover clock (nil = time.Now); scenario tests inject
	// virtual time.
	Now func() time.Time
}

// DefaultFailoverCooldown is the default demotion window.
const DefaultFailoverCooldown = 5 * time.Second

// shardCandidate is the failover state of one candidate origin.
type shardCandidate struct {
	origin    Origin
	downUntil atomic.Int64 // Unix nanos; 0 = live
}

// shardState is one shard's candidate list plus its routing state.
type shardState struct {
	candidates []*shardCandidate
	preferred  atomic.Int32 // index currently served first
	pulls      atomic.Int64
	failovers  atomic.Int64
}

// ShardedOrigin implements Origin over a fleet of origin shards: a pull
// for a CA routes along the ring to the responsible shard and walks that
// shard's candidate list — leader first, followers after — demoting
// candidates that are dead (transport error) or behind the caller
// (ErrAhead) for a cooldown. A successful candidate becomes the shard's
// preferred target, so after a leader crash the fleet converges on the
// promoted follower and stays there instead of re-probing the corpse on
// every pull.
//
// Failover semantics feed the existing recovery machinery rather than
// replacing it: when every live candidate answers ErrAhead (the caller's
// history is longer than anything the shard still has — the leader died
// with unreplicated records), ErrAhead is returned and the RA's
// ErrAhead→Resync path adopts the promoted follower's shorter verified
// history. Typed ErrUnknownCA answers pass through immediately: the shard
// is authoritative for its CAs, and not carrying one is an answer, not an
// outage.
type ShardedOrigin struct {
	ring     *Ring
	shards   []*shardState
	cooldown time.Duration
	now      func() time.Time
}

// NewShardedOrigin builds a sharded origin over one candidate list per
// shard (each list ordered by preference: leader first). The ring is
// derived from len(shards).
func NewShardedOrigin(shards [][]Origin, opts ShardedOriginOptions) (*ShardedOrigin, error) {
	ring, err := NewRing(len(shards))
	if err != nil {
		return nil, err
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = DefaultFailoverCooldown
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	so := &ShardedOrigin{ring: ring, cooldown: opts.Cooldown, now: opts.Now}
	for i, candidates := range shards {
		if len(candidates) == 0 {
			return nil, fmt.Errorf("cdn: shard %d has no candidate origins", i)
		}
		st := &shardState{}
		for _, o := range candidates {
			if o == nil {
				return nil, fmt.Errorf("cdn: shard %d has a nil candidate origin", i)
			}
			st.candidates = append(st.candidates, &shardCandidate{origin: o})
		}
		so.shards = append(so.shards, st)
	}
	return so, nil
}

// NewFailoverOrigin is a single-shard ShardedOrigin: a plain ordered
// failover list with no ring routing. RAs use it as their multi-origin
// source list.
func NewFailoverOrigin(candidates []Origin, opts ShardedOriginOptions) (*ShardedOrigin, error) {
	return NewShardedOrigin([][]Origin{candidates}, opts)
}

// Ring returns the CA→shard ring (shared; read-only).
func (so *ShardedOrigin) Ring() *Ring { return so.ring }

// ShardFor returns the shard responsible for ca.
func (so *ShardedOrigin) ShardFor(ca dictionary.CAID) int { return so.ring.ShardFor(ca) }

// route walks the shard's candidates from the preferred one, calling fn
// on each live candidate until one answers.
func (so *ShardedOrigin) route(shard int, fn func(Origin) error) error {
	st := so.shards[shard]
	n := len(st.candidates)
	start := int(st.preferred.Load())
	if start < 0 || start >= n {
		start = 0
	}
	nowNanos := so.now().UnixNano()
	var firstErr error
	sawAhead := false
	tried := 0
	for k := 0; k < n; k++ {
		i := (start + k) % n
		c := st.candidates[i]
		if until := c.downUntil.Load(); until != 0 && nowNanos < until {
			continue // demoted; probe again after the cooldown
		}
		tried++
		err := fn(c.origin)
		switch {
		case err == nil:
			c.downUntil.Store(0)
			if i != start {
				st.preferred.Store(int32(i))
				st.failovers.Add(1)
			}
			return nil
		case errors.Is(err, ErrUnknownCA):
			// Authoritative: the shard does not carry this CA. Failing over
			// would turn a correct answer into n copies of it.
			return err
		case errors.Is(err, ErrAhead):
			// This candidate's history is shorter than the caller's. Prefer
			// a candidate that can still serve; only if ALL of them are
			// behind does ErrAhead surface (feeding the caller's Resync).
			sawAhead = true
			c.downUntil.Store(nowNanos + int64(so.cooldown))
		default:
			c.downUntil.Store(nowNanos + int64(so.cooldown))
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if sawAhead {
		// Every live candidate is behind the caller: surface the typed
		// sentinel so ErrAhead→Resync can adopt the surviving history.
		// Clear the demotions it caused — the candidates are alive, and the
		// recovery pull that follows must reach them.
		for _, c := range st.candidates {
			c.downUntil.Store(0)
		}
		if firstErr == nil || !errors.Is(firstErr, ErrAhead) {
			firstErr = fmt.Errorf("%w: every candidate of shard %d is behind", ErrAhead, shard)
		}
		return firstErr
	}
	if tried == 0 {
		return fmt.Errorf("%w %d: all %d candidates demoted", ErrNoOrigin, shard, n)
	}
	return firstErr
}

// Pull implements Origin.
func (so *ShardedOrigin) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	shard := so.ring.ShardFor(ca)
	so.shards[shard].pulls.Add(1)
	var resp *PullResponse
	err := so.route(shard, func(o Origin) error {
		var err error
		resp, err = o.Pull(ca, from)
		return err
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// LatestRoot implements Origin.
func (so *ShardedOrigin) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	shard := so.ring.ShardFor(ca)
	var root *dictionary.SignedRoot
	err := so.route(shard, func(o Origin) error {
		var err error
		root, err = o.LatestRoot(ca)
		return err
	})
	if err != nil {
		return nil, err
	}
	return root, nil
}

// CAs implements Origin: the sorted union over every shard (asking each
// shard's first live candidate). A shard with no live candidate is
// skipped — a partial listing beats an outage for discovery.
func (so *ShardedOrigin) CAs() ([]dictionary.CAID, error) {
	seen := make(map[dictionary.CAID]bool)
	for shard := range so.shards {
		var cas []dictionary.CAID
		err := so.route(shard, func(o Origin) error {
			var err error
			cas, err = o.CAs()
			return err
		})
		if err != nil {
			continue
		}
		for _, ca := range cas {
			seen[ca] = true
		}
	}
	out := make([]dictionary.CAID, 0, len(seen))
	for ca := range seen {
		out = append(out, ca)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

var _ Origin = (*ShardedOrigin)(nil)

// ShardOriginStats is one shard's routing counters.
type ShardOriginStats struct {
	// Pulls counts pulls routed to the shard (successful or not).
	Pulls int
	// Failovers counts preferred-candidate switches.
	Failovers int
	// Preferred is the index of the candidate currently served first.
	Preferred int
}

// ShardedOriginStats is the per-shard roll-up.
type ShardedOriginStats struct {
	PerShard []ShardOriginStats
}

// Stats returns a copy of the routing counters.
func (so *ShardedOrigin) Stats() ShardedOriginStats {
	st := ShardedOriginStats{PerShard: make([]ShardOriginStats, len(so.shards))}
	for i, s := range so.shards {
		st.PerShard[i] = ShardOriginStats{
			Pulls:     int(s.pulls.Load()),
			Failovers: int(s.failovers.Load()),
			Preferred: int(s.preferred.Load()),
		}
	}
	return st
}

// NewShardedTopology builds the regions × PoPs edge hierarchy over a
// sharded origin fleet: the ring (derived from len(shards)) routes each
// edge miss to the responsible shard's live candidate. It is the
// multi-origin analogue of NewTopology(origin, cfg).
func NewShardedTopology(shards [][]Origin, opts ShardedOriginOptions, cfg TopologyConfig) (*Topology, *ShardedOrigin, error) {
	so, err := NewShardedOrigin(shards, opts)
	if err != nil {
		return nil, nil, err
	}
	t, err := NewTopology(so, cfg)
	if err != nil {
		return nil, nil, err
	}
	return t, so, nil
}
