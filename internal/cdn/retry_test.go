package cdn

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// Retry suite for HTTPClient: transient transport failures are retried
// with bounded jittered backoff; typed protocol answers are authoritative
// and must not be retried (an unknown CA does not become known by asking
// three times, and retrying ErrAhead would just hammer a behind origin).

func TestHTTPClientRetriesTransientFailures(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 5)
	real := Handler(tc.dp)
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if requests.Add(1) <= 2 {
			http.Error(w, "bad gateway", http.StatusBadGateway)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer srv.Close()

	client := &HTTPClient{BaseURL: srv.URL, RetryBackoff: time.Millisecond}
	resp, err := client.Pull("CA1", 0)
	if err != nil {
		t.Fatalf("pull through transient 502s: %v", err)
	}
	if len(resp.Issuance.Serials) != 5 {
		t.Fatalf("got %d serials, want 5", len(resp.Issuance.Serials))
	}
	if got := requests.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + success)", got)
	}
}

func TestHTTPClientRetryBudgetExhausted(t *testing.T) {
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		http.Error(w, "unavailable", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	client := &HTTPClient{BaseURL: srv.URL, MaxAttempts: 2, RetryBackoff: time.Millisecond}
	if _, err := client.Pull("CA1", 0); err == nil {
		t.Fatal("pull through persistent 503s succeeded")
	}
	if got := requests.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want exactly MaxAttempts=2", got)
	}
}

func TestHTTPClientDoesNotRetryTypedErrors(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 5)
	real := Handler(tc.dp)
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		real.ServeHTTP(w, r)
	}))
	defer srv.Close()
	client := &HTTPClient{BaseURL: srv.URL, RetryBackoff: time.Millisecond}

	// Unknown CA: one request, typed sentinel through.
	if _, err := client.Pull("GhostCA", 0); !errors.Is(err, ErrUnknownCA) {
		t.Fatalf("err = %v, want ErrUnknownCA", err)
	}
	if got := requests.Load(); got != 1 {
		t.Fatalf("unknown-CA pull cost %d requests, want 1", got)
	}

	// Ahead-of-origin: same — the RA's Resync owns this, not the retry loop.
	requests.Store(0)
	if _, err := client.Pull("CA1", 999); !errors.Is(err, ErrAhead) {
		t.Fatalf("err = %v, want ErrAhead", err)
	}
	if got := requests.Load(); got != 1 {
		t.Fatalf("ahead pull cost %d requests, want 1", got)
	}
}

func TestHTTPClientRetriesConnectionRefused(t *testing.T) {
	// A dead-then-alive server: bind a listener, kill it, and point the
	// client at the corpse — the retry loop must give up cleanly after
	// MaxAttempts rather than hang or panic.
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close()
	client := &HTTPClient{
		BaseURL:      srv.URL,
		Client:       &http.Client{Timeout: time.Second},
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
	}
	if _, err := client.Pull("CA1", 0); err == nil {
		t.Fatal("pull against dead server succeeded")
	}
}
