package cdn

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"ritm/internal/dictionary"
)

// HTTP transport for the dissemination network, the "simple HTTP(S)-based
// API" of §VI. Endpoints:
//
//	GET /v1/cas                  → newline-separated CA identifiers
//	GET /v1/pull?ca=X&from=N     → binary PullResponse
//	GET /v1/root?ca=X            → binary SignedRoot
//
// Payloads use the deterministic wire encoding; HTTP is only the carrier,
// so any real CDN (which caches opaque bodies by URL) can serve them. The
// cache key (ca, from) appears entirely in the URL, matching EdgeServer's
// cache keying.

// Handler adapts an Origin to the HTTP API. Serve it on an edge server or
// on the distribution point itself.
func Handler(origin Origin) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cas", func(w http.ResponseWriter, r *http.Request) {
		cas, err := origin.CAs()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		var sb strings.Builder
		for _, ca := range cas {
			sb.WriteString(string(ca))
			sb.WriteByte('\n')
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, sb.String())
	})
	mux.HandleFunc("GET /v1/pull", func(w http.ResponseWriter, r *http.Request) {
		ca := dictionary.CAID(r.URL.Query().Get("ca"))
		from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		if ca == "" || err != nil {
			http.Error(w, "cdn: pull requires ca and numeric from", http.StatusBadRequest)
			return
		}
		resp, err := origin.Pull(ca, from)
		if err != nil {
			http.Error(w, err.Error(), statusFor(err))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(resp.Encoded())
	})
	mux.HandleFunc("GET /v1/root", func(w http.ResponseWriter, r *http.Request) {
		ca := dictionary.CAID(r.URL.Query().Get("ca"))
		if ca == "" {
			http.Error(w, "cdn: root requires ca", http.StatusBadRequest)
			return
		}
		root, err := origin.LatestRoot(ca)
		if err != nil {
			http.Error(w, err.Error(), statusFor(err))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(root.Encode())
	})
	return mux
}

func statusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case strings.Contains(err.Error(), ErrUnknownCA.Error()):
		return http.StatusNotFound
	case strings.Contains(err.Error(), ErrAhead.Error()):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// HTTPClient is an Origin backed by the HTTP API; RAs use it to pull from a
// remote edge server.
type HTTPClient struct {
	// BaseURL is the edge server's root, e.g. "http://edge1.example:8080".
	BaseURL string
	// Client is the HTTP client to use (nil = http.DefaultClient).
	Client *http.Client
}

var _ Origin = (*HTTPClient)(nil)

func (h *HTTPClient) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

func (h *HTTPClient) get(path string) ([]byte, error) {
	resp, err := h.client().Get(h.BaseURL + path)
	if err != nil {
		return nil, fmt.Errorf("cdn http: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<28))
	if err != nil {
		return nil, fmt.Errorf("cdn http: read body: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, nil
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s", ErrUnknownCA, strings.TrimSpace(string(body)))
	case http.StatusConflict:
		return nil, fmt.Errorf("%w: %s", ErrAhead, strings.TrimSpace(string(body)))
	default:
		return nil, fmt.Errorf("cdn http: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
}

// Pull implements Origin. The CA id is query-escaped: shard identifiers
// ("ca/exp-123") and ids containing '&', '+', '#', or spaces must survive
// the URL round trip unchanged, since the (ca, from) pair is the CDN cache
// key.
func (h *HTTPClient) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	q := url.Values{
		"ca":   {string(ca)},
		"from": {strconv.FormatUint(from, 10)},
	}
	body, err := h.get("/v1/pull?" + q.Encode())
	if err != nil {
		return nil, err
	}
	return DecodePullResponse(body)
}

// LatestRoot implements Origin.
func (h *HTTPClient) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	q := url.Values{"ca": {string(ca)}}
	body, err := h.get("/v1/root?" + q.Encode())
	if err != nil {
		return nil, err
	}
	return dictionary.DecodeSignedRoot(body)
}

// CAs implements Origin.
func (h *HTTPClient) CAs() ([]dictionary.CAID, error) {
	body, err := h.get("/v1/cas")
	if err != nil {
		return nil, err
	}
	var out []dictionary.CAID
	for _, line := range strings.Split(string(body), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			out = append(out, dictionary.CAID(line))
		}
	}
	return out, nil
}
