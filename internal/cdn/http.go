package cdn

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
)

// HTTP transport for the dissemination network, the "simple HTTP(S)-based
// API" of §VI. Endpoints:
//
//	GET /v1/cas                  → newline-separated CA identifiers
//	GET /v1/pull?ca=X&from=N     → binary PullResponse
//	GET /v1/root?ca=X            → binary SignedRoot
//
// Payloads use the deterministic wire encoding; HTTP is only the carrier,
// so any real CDN (which caches opaque bodies by URL) can serve them. The
// cache key (ca, from) appears entirely in the URL, matching EdgeServer's
// cache keying, and the cache-contract headers make a third-party CDN
// behave exactly like an EdgeServer tier:
//
//	Cache-Control: max-age=<ttl>   freshness lifetime, from the edge TTL
//	Age: <seconds>                 time already spent in the edge cache
//	ETag / If-None-Match           strong validator on /v1/root (the
//	                               signed-root hash), 304 on match
//	Last-Modified / If-Modified-Since  weak-validator fallback on /v1/root
//	                               (the root's signing time) for caches
//	                               that strip ETags; If-None-Match wins
//	                               when both are present (RFC 9110)
//	X-RITM-Error: unknown-ca|ahead typed sentinel carried out of band so
//	                               clients never sniff error strings
//
// maxBody bounds response bodies read by HTTPClient. A response larger
// than this is an explicit error, never a silent truncation: a truncated
// PullResponse would fail decoding with a misleading "malformed wire"
// error (or worse, decode cleanly if the cut falls on a field boundary).
const maxBody = 1 << 28

// bodyLimit is maxBody as a variable so the overflow test can exercise
// the cap without streaming 256 MB.
var bodyLimit = maxBody

// Error-code header values; the wire form of the typed sentinels.
const (
	errCodeUnknownCA     = "unknown-ca"
	errCodeAhead         = "ahead"
	errCodeNoReplication = "no-replication"
)

// errorHeader is the out-of-band error channel: HTTP status codes are too
// coarse to round-trip typed sentinels (a middlebox 404 is not an
// unknown-CA answer), so the handler names the sentinel explicitly and the
// client reconstructs from the name.
const errorHeader = "X-RITM-Error"

// statusFor maps dissemination errors to HTTP status codes by sentinel
// identity (errors.Is), never by message content.
func statusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrUnknownCA):
		return http.StatusNotFound
	case errors.Is(err, ErrAhead):
		return http.StatusConflict
	case errors.Is(err, ErrNoReplication):
		return http.StatusNotImplemented
	default:
		return http.StatusInternalServerError
	}
}

// errCode returns the X-RITM-Error value for err ("" for untyped errors).
func errCode(err error) string {
	switch {
	case errors.Is(err, ErrUnknownCA):
		return errCodeUnknownCA
	case errors.Is(err, ErrAhead):
		return errCodeAhead
	case errors.Is(err, ErrNoReplication):
		return errCodeNoReplication
	default:
		return ""
	}
}

// sentinelFor is errCode's inverse: the typed sentinel named by an
// X-RITM-Error value (nil for unknown names).
func sentinelFor(code string) error {
	switch code {
	case errCodeUnknownCA:
		return ErrUnknownCA
	case errCodeAhead:
		return ErrAhead
	case errCodeNoReplication:
		return ErrNoReplication
	default:
		return nil
	}
}

// writeError reports err with its mapped status code and, for typed
// sentinels, the X-RITM-Error header.
func writeError(w http.ResponseWriter, err error) {
	if code := errCode(err); code != "" {
		w.Header().Set(errorHeader, code)
	}
	http.Error(w, err.Error(), statusFor(err))
}

// rootETag is the strong validator for /v1/root: the hash of the full
// signed-root encoding (root hash, count, anchor, timestamp, signature),
// quoted per RFC 9110. Byte-identical roots — and only those — share it.
func rootETag(encoded []byte) string {
	return `"` + cryptoutil.HashBytes(encoded).String() + `"`
}

// etagMatches reports whether an If-None-Match header value matches etag
// (a list of quoted validators, or the wildcard). It scans the list
// manually — same semantics as splitting on commas and trimming space per
// candidate — because it runs per conditional request on the root path and
// must not allocate.
func etagMatches(header, etag string) bool {
	if header == "*" {
		return true
	}
	for len(header) > 0 {
		candidate := header
		if i := strings.IndexByte(header, ','); i >= 0 {
			candidate, header = header[:i], header[i+1:]
		} else {
			header = ""
		}
		for len(candidate) > 0 && (candidate[0] == ' ' || candidate[0] == '\t') {
			candidate = candidate[1:]
		}
		for len(candidate) > 0 && (candidate[len(candidate)-1] == ' ' || candidate[len(candidate)-1] == '\t') {
			candidate = candidate[:len(candidate)-1]
		}
		if candidate == etag {
			return true
		}
	}
	return false
}

// queryParam extracts one query parameter without materializing the whole
// url.Values map; the returned value shares rawQuery's backing unless it
// needed unescaping. Semantics match url.ParseQuery for the keys the API
// uses ('&'-separated pairs, '='-cut, percent/plus unescaping).
func queryParam(rawQuery, key string) string {
	for len(rawQuery) > 0 {
		pair := rawQuery
		if i := strings.IndexByte(rawQuery, '&'); i >= 0 {
			pair, rawQuery = rawQuery[:i], rawQuery[i+1:]
		} else {
			rawQuery = ""
		}
		k, v, _ := strings.Cut(pair, "=")
		if strings.IndexByte(k, '%') >= 0 || strings.IndexByte(k, '+') >= 0 {
			dec, err := url.QueryUnescape(k)
			if err != nil {
				continue
			}
			k = dec
		}
		if k != key {
			continue
		}
		if strings.IndexByte(v, '%') < 0 && strings.IndexByte(v, '+') < 0 {
			return v
		}
		dec, err := url.QueryUnescape(v)
		if err != nil {
			return ""
		}
		return dec
	}
	return ""
}

// rootRep memoizes everything /v1/root derives from one signed root: the
// encoding, both representation validators, and the formatted signing
// time. Roots rotate once per ∆ while the path is polled by every
// downstream tier, so the derivation runs once per version instead of per
// request — the steady-state (revalidating) request allocates nothing
// here.
//
// The memo is keyed on *SignedRoot pointer identity, which is stable for
// exactly one dictionary version at every origin type: a DistributionPoint
// returns the replica's adopted root pointer (replaced only by a verified
// update; freshness refreshes republish the same root), an EdgeServer
// passes its upstream's pointer through, and HTTPClient returns its cached
// decode on 304 — so the stability propagates tier by tier.
type rootRep struct {
	root         *dictionary.SignedRoot
	encoded      []byte
	etag         string
	gzipEtag     string
	lastModified string
	signedAt     time.Time
	// Pre-built single-element header values, assigned directly into the
	// response header map under their canonical keys. Header.Set would
	// build a fresh []string per call — three allocations per request on a
	// path pinned to at most five (TestRootConditionalAllocsPinned).
	etagVal         []string
	gzipEtagVal     []string
	lastModifiedVal []string
}

// rootCacheControl is the shared Cache-Control value for /v1/root
// responses (see the handler comment for why no-cache).
var rootCacheControl = []string{"no-cache"}

// rootMemo caches the latest rootRep per CA. Reads vastly outnumber the
// once-per-∆ rotation, so a RWMutex-guarded map (string-keyed lookups
// don't allocate) fits better than sync.Map (whose Load boxes the key).
type rootMemo struct {
	mu   sync.RWMutex
	byCA map[dictionary.CAID]*rootRep
}

func (m *rootMemo) rep(ca dictionary.CAID, root *dictionary.SignedRoot) *rootRep {
	m.mu.RLock()
	e := m.byCA[ca]
	m.mu.RUnlock()
	if e != nil && e.root == root {
		return e
	}
	encoded := root.Encode()
	etag := rootETag(encoded)
	signedAt := time.Unix(root.Time, 0).UTC()
	e = &rootRep{
		root:         root,
		encoded:      encoded,
		etag:         etag,
		gzipEtag:     gzipETagVariant(etag),
		lastModified: signedAt.Format(http.TimeFormat),
		signedAt:     signedAt,
	}
	e.etagVal = []string{e.etag}
	e.gzipEtagVal = []string{e.gzipEtag}
	e.lastModifiedVal = []string{e.lastModified}
	m.mu.Lock()
	m.byCA[ca] = e
	m.mu.Unlock()
	return e
}

// HandlerOptions configures the HTTP adapter.
type HandlerOptions struct {
	// Now is the clock used by the If-Modified-Since guard (a signing
	// second is "elapsed" relative to this clock); nil = time.Now.
	// Deployments whose dissemination tier runs on a virtual or tightly
	// synced clock pass it here; with the default wall clock, an edge
	// running behind the CA only costs full 200 bodies (the fallback
	// stays quiet), never a stale 304.
	Now func() time.Time
	// Gzip enables opt-in response compression for clients advertising
	// Accept-Encoding: gzip. Off by default: large pull suffixes are the
	// target (a mass-revocation catch-up body is highly compressible
	// framing around serials), and deployments that terminate compression
	// in their CDN should leave it off here. Responses on compressible
	// endpoints carry Vary: Accept-Encoding whenever Gzip is on — even
	// when served identity — so shared caches never serve a gzipped body
	// to a client that cannot decode it, and compressed representations
	// get a per-encoding ETag variant ("<hash>-gzip") per RFC 9110 §8.8.3
	// (a strong validator names one representation, encoding included).
	Gzip bool
	// GzipMinSize is the smallest body worth compressing (0 = 1 KiB).
	// Small bodies — roots, empty suffixes — cost more in CPU and headers
	// than the bytes saved.
	GzipMinSize int
}

// Handler adapts an Origin to the HTTP API. Serve it on an edge server or
// on the distribution point itself. When the origin reports cache metadata
// (MetaOrigin — every EdgeServer does), pull responses carry Cache-Control
// and Age headers derived from the edge TTL, so any HTTP cache in front
// expires entries exactly when the edge would.
func Handler(origin Origin) http.Handler {
	return NewHandler(origin, HandlerOptions{})
}

// HandlerWithClock is Handler with an injectable clock; see
// HandlerOptions.Now.
func HandlerWithClock(origin Origin, now func() time.Time) http.Handler {
	return NewHandler(origin, HandlerOptions{Now: now})
}

// NewHandler is Handler with full configuration.
func NewHandler(origin Origin, opts HandlerOptions) http.Handler {
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	gz := gzipConfig{enabled: opts.Gzip, minSize: opts.GzipMinSize}
	if gz.minSize <= 0 {
		gz.minSize = 1024
	}
	meta, _ := origin.(MetaOrigin)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cas", func(w http.ResponseWriter, r *http.Request) {
		cas, err := origin.CAs()
		if err != nil {
			writeError(w, err)
			return
		}
		var sb strings.Builder
		for _, ca := range cas {
			sb.WriteString(string(ca))
			sb.WriteByte('\n')
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, sb.String())
	})
	mux.HandleFunc("GET /v1/pull", func(w http.ResponseWriter, r *http.Request) {
		ca := dictionary.CAID(queryParam(r.URL.RawQuery, "ca"))
		from, err := strconv.ParseUint(queryParam(r.URL.RawQuery, "from"), 10, 64)
		if ca == "" || err != nil {
			http.Error(w, "cdn: pull requires ca and numeric from", http.StatusBadRequest)
			return
		}
		var resp *PullResponse
		if meta != nil {
			var pm PullMeta
			resp, pm, err = meta.PullWithMeta(ca, from)
			if err == nil {
				setCacheHeaders(w, pm)
			} else {
				setNegativeCacheHeader(w, err, pm.NegativeTTL)
			}
		} else {
			resp, err = origin.Pull(ca, from)
		}
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		gz.write(w, r, resp.Encoded())
	})
	memo := &rootMemo{byCA: make(map[dictionary.CAID]*rootRep)}
	mux.HandleFunc("GET /v1/root", func(w http.ResponseWriter, r *http.Request) {
		ca := dictionary.CAID(queryParam(r.URL.RawQuery, "ca"))
		if ca == "" {
			http.Error(w, "cdn: root requires ca", http.StatusBadRequest)
			return
		}
		root, err := origin.LatestRoot(ca)
		if err != nil {
			if meta != nil {
				setNegativeCacheHeader(w, err, meta.NegativeTTL())
			}
			writeError(w, err)
			return
		}
		rep := memo.rep(ca, root)
		// A compressed representation is a different representation: it
		// gets its own strong validator (RFC 9110 §8.8.3), and a cached
		// validator for either representation revalidates the same root —
		// both variants are derived from the same signed bytes.
		willGzip := gz.wants(r, len(rep.encoded))
		h := w.Header()
		if gz.enabled {
			h.Add("Vary", "Accept-Encoding")
		}
		// Memoized single-element values under canonical keys: equivalent
		// to Header.Set but without the per-call []string, keeping the
		// conditional-request path allocation-free in the handler.
		if willGzip {
			h["Etag"] = rep.gzipEtagVal
		} else {
			h["Etag"] = rep.etagVal
		}
		// Last-Modified (the root's signing time) is the weak-validator
		// fallback for caches that strip ETags; its one-second granularity
		// means a root re-signed within the same second revalidates as
		// unmodified, so the strong ETag stays authoritative whenever both
		// are present.
		h["Last-Modified"] = rep.lastModifiedVal
		// no-cache forbids front CDNs from heuristically caching roots —
		// they may only revalidate against the validators, which is exactly
		// what HTTPClient does. RITM edges honor the same default (an
		// EdgeServer forwards every root request upstream unless its
		// operator opts into SetRootTTL's bounded staleness).
		h["Cache-Control"] = rootCacheControl
		if inm := r.Header.Get("If-None-Match"); inm != "" {
			// RFC 9110 §13.1.3: when If-None-Match is present,
			// If-Modified-Since MUST be ignored. Either encoding's
			// validator revalidates the root — both name the same signed
			// bytes.
			if etagMatches(inm, rep.etag) || etagMatches(inm, rep.gzipEtag) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		} else if ims := r.Header.Get("If-Modified-Since"); ims != "" {
			// The date is only a usable validator once its second has fully
			// elapsed: while the signing second is still current the CA may
			// re-sign without the date moving (the weak-validator caveat of
			// RFC 9110 §8.8.2.2), so serve the full body until then. The
			// residual blind spot — two DIFFERENT roots signed within one
			// already-elapsed second — is inherent to date granularity;
			// consistency-checking monitors must revalidate with ETags or
			// unconditional fetches, never the fallback validator alone.
			if since, err := http.ParseTime(ims); err == nil && !rep.signedAt.After(since) &&
				now().Unix() > root.Time {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if willGzip {
			gz.compress(w, rep.encoded)
		} else {
			w.Write(rep.encoded)
		}
	})
	replicator, _ := origin.(Replicator)
	mux.HandleFunc("GET /v1/replicate", func(w http.ResponseWriter, r *http.Request) {
		ca := dictionary.CAID(queryParam(r.URL.RawQuery, "ca"))
		fromLSN, err := strconv.ParseUint(queryParam(r.URL.RawQuery, "from_lsn"), 10, 64)
		if ca == "" || err != nil {
			http.Error(w, "cdn: replicate requires ca and numeric from_lsn", http.StatusBadRequest)
			return
		}
		if replicator == nil {
			writeError(w, fmt.Errorf("%w (origin %T)", ErrNoReplication, origin))
			return
		}
		resp, err := replicator.Replicate(ca, fromLSN)
		if err != nil {
			writeError(w, err)
			return
		}
		// Replication is point-to-point leader→follower state transfer; a
		// cached response would hand a follower yesterday's log position.
		w.Header().Set("Cache-Control", "no-store")
		w.Header().Set("Content-Type", "application/octet-stream")
		gz.write(w, r, resp.Encode())
	})
	return mux
}

// gzipConfig implements the handler's opt-in compression policy.
type gzipConfig struct {
	enabled bool
	minSize int
}

// wants reports whether this request+body should be compressed.
func (g gzipConfig) wants(r *http.Request, size int) bool {
	return g.enabled && size >= g.minSize && acceptsGzip(r.Header.Get("Accept-Encoding"))
}

// write serves body on a compressible endpoint: Vary whenever compression
// is enabled (the representation depends on Accept-Encoding even when
// this response is identity), gzip when the client accepts it and the
// body is large enough to pay off.
func (g gzipConfig) write(w http.ResponseWriter, r *http.Request, body []byte) {
	if g.enabled {
		w.Header().Add("Vary", "Accept-Encoding")
	}
	if g.wants(r, len(body)) {
		g.compress(w, body)
		return
	}
	w.Write(body)
}

// compress writes body gzipped with the Content-Encoding header.
func (g gzipConfig) compress(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Encoding", "gzip")
	w.Header().Del("Content-Length")
	zw := gzip.NewWriter(w)
	zw.Write(body) //nolint:errcheck // error surfaces on Close, and the connection is the only failure mode
	zw.Close()     //nolint:errcheck // ditto: nothing useful to do mid-response
}

// acceptsGzip reports whether an Accept-Encoding header value admits
// gzip: the token present and not disabled with q=0.
func acceptsGzip(header string) bool {
	for _, part := range strings.Split(header, ",") {
		token, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if tok := strings.TrimSpace(token); tok != "gzip" && tok != "*" {
			continue
		}
		q := strings.TrimSpace(params)
		if strings.HasPrefix(q, "q=") {
			if v, err := strconv.ParseFloat(q[2:], 64); err == nil && v == 0 {
				return false
			}
		}
		return true
	}
	return false
}

// gzipETagVariant derives the strong validator of the gzip representation
// from the identity representation's quoted ETag.
func gzipETagVariant(etag string) string {
	if inner, ok := strings.CutSuffix(etag, `"`); ok {
		return inner + `-gzip"`
	}
	return etag + "-gzip"
}

// setCacheHeaders translates an edge's cache disposition into the HTTP
// cache contract: max-age is the edge TTL (the entry's total freshness
// lifetime) and Age is how much of it is already spent, so a downstream
// cache holds the entry for exactly the remaining TTL — never past the
// staleness bound the client-side 2∆ policy assumes.
func setCacheHeaders(w http.ResponseWriter, pm PullMeta) {
	if pm.TTL <= 0 {
		// Uncached upstream: forbid downstream caching too, or a front CDN
		// would add staleness the deployment chose to not have.
		w.Header().Set("Cache-Control", "no-store")
		return
	}
	// max-age floors and Age ceils: both roundings shrink the remaining
	// downstream window (max-age − Age), so a front cache can only expire
	// the entry EARLIER than the edge would, never later.
	w.Header().Set("Cache-Control", fmt.Sprintf("max-age=%d", int(pm.TTL/time.Second)))
	w.Header().Set("Age", strconv.Itoa(int((pm.Age+time.Second-1)/time.Second)))
}

// setNegativeCacheHeader exports the negative TTL on an unknown-CA error
// so a front CDN absorbs the storm for the same window the edge would,
// instead of forwarding every 404 to us.
func setNegativeCacheHeader(w http.ResponseWriter, err error, negTTL time.Duration) {
	if negTTL > 0 && errors.Is(err, ErrUnknownCA) {
		w.Header().Set("Cache-Control", fmt.Sprintf("max-age=%d", int(negTTL/time.Second)))
	}
}

// HTTPClient is an Origin backed by the HTTP API; RAs use it to pull from a
// remote edge server. Root fetches are conditional: the client remembers
// the last root (with its ETag and Last-Modified) per CA and sends
// If-None-Match — or, when an intermediary stripped the ETag,
// If-Modified-Since — so an unchanged root costs a 304 with no body; the
// polling-heavy monitor workload stops re-downloading identical signed
// roots every cycle even through ETag-hostile caches.
type HTTPClient struct {
	// BaseURL is the edge server's root, e.g. "http://edge1.example:8080".
	BaseURL string
	// Client is the HTTP client to use (nil = http.DefaultClient).
	Client *http.Client
	// MaxAttempts bounds the total tries per request when the failure is
	// transient — a transport-level error (connection reset, refused) or a
	// gateway-class 5xx without a typed error header. 0 means
	// DefaultMaxAttempts; 1 disables retrying. Typed protocol answers
	// (unknown CA, ahead, no replication) and client-side caps (body
	// overflow) are authoritative and never retried.
	MaxAttempts int
	// RetryBackoff is the base of the jittered exponential backoff between
	// attempts (0 = DefaultRetryBackoff): attempt k sleeps base·2ᵏ scaled
	// by a random factor in [0.5, 1.5), so a fleet of RAs whose shared
	// edge hiccups does not re-stampede it in lockstep.
	RetryBackoff time.Duration

	mu    sync.Mutex
	roots map[dictionary.CAID]*cachedRoot
}

// DefaultMaxAttempts is the default total tries per request (one initial
// attempt plus two retries).
const DefaultMaxAttempts = 3

// DefaultRetryBackoff is the default backoff base between attempts.
const DefaultRetryBackoff = 50 * time.Millisecond

// cachedRoot is the client's validator cache for one CA: the last root
// the server sent (decoded once, returned again on every 304) and the
// validators it sent it under (either may be empty when an intermediary
// strips headers), plus the memoized request path.
//
// Returning the SAME *SignedRoot on revalidation is load-bearing beyond
// saving the decode: the /v1/root handler memoizes its validators per
// root pointer (rootMemo), so a PoP tier whose upstream client answers
// 304s with a stable pointer serves its own downstream allocation-free.
type cachedRoot struct {
	url          string // memoized "/v1/root?ca=..." path
	etag         string
	lastModified string
	root         *dictionary.SignedRoot
}

var _ Origin = (*HTTPClient)(nil)

// defaultHTTPClient backs every HTTPClient that does not bring its own
// http.Client. http.DefaultClient's transport keeps only
// http.DefaultMaxIdleConnsPerHost (2) idle connections per host — far too
// few for the dissemination fan-in, where a whole RA fleet multiplexes
// concurrent pulls against ONE edge host: every request past the second
// opens a fresh TCP connection only to close it moments later. The shared
// transport below clones the default (keeping its dialer keep-alives and
// proxy/timeout settings) and raises the idle pool so the steady-state
// pull load runs over warm, reused connections.
var defaultHTTPClient = &http.Client{Transport: newDefaultTransport()}

func newDefaultTransport() *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 64
	return t
}

func (h *HTTPClient) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return defaultHTTPClient
}

// httpResult is one response, decoded enough to map errors and validators.
type httpResult struct {
	status       int
	etag         string
	lastModified string
	body         []byte
}

// get performs one GET with bounded retry on transient failures.
// ifNoneMatch / ifModifiedSince, when non-empty, are sent as the
// corresponding conditional headers. Bodies larger than maxBody are an
// explicit error. Only failures that a retry can plausibly fix — the
// transport erroring before a response, a read cut mid-body, a
// gateway-class 5xx carrying no typed error header — are retried; every
// typed protocol answer passes through untouched on the first attempt.
func (h *HTTPClient) get(path, ifNoneMatch, ifModifiedSince string) (*httpResult, error) {
	attempts := h.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	backoff := h.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	var res *httpResult
	var retryable bool
	var err error
	for attempt := 0; ; attempt++ {
		res, retryable, err = h.getOnce(path, ifNoneMatch, ifModifiedSince)
		if err == nil || !retryable || attempt+1 >= attempts {
			return res, err
		}
		// Jittered exponential backoff: base·2ᵏ scaled into [0.5, 1.5).
		d := backoff << attempt
		time.Sleep(d/2 + time.Duration(rand.Int64N(int64(d))))
	}
}

// getOnce performs one attempt; retryable reports whether the failure is
// transient (worth another attempt) rather than authoritative.
func (h *HTTPClient) getOnce(path, ifNoneMatch, ifModifiedSince string) (*httpResult, bool, error) {
	req, err := http.NewRequest(http.MethodGet, h.BaseURL+path, nil)
	if err != nil {
		return nil, false, fmt.Errorf("cdn http: %w", err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	if ifModifiedSince != "" {
		req.Header.Set("If-Modified-Since", ifModifiedSince)
	}
	resp, err := h.client().Do(req)
	if err != nil {
		return nil, true, fmt.Errorf("cdn http: %w", err)
	}
	defer resp.Body.Close()
	// Read one byte past the cap: len(body) > bodyLimit distinguishes
	// "too large" from "exactly at the cap". The seed truncated silently
	// here and handed DecodePullResponse a cut-off buffer.
	body, err := io.ReadAll(io.LimitReader(resp.Body, int64(bodyLimit)+1))
	if err != nil {
		// A connection cut mid-body is as transient as one cut before the
		// response; the next attempt re-requests the whole body.
		return nil, true, fmt.Errorf("cdn http: read body: %w", err)
	}
	if len(body) > bodyLimit {
		// Client-side cap: deterministic, retrying would re-download the
		// same oversized body.
		return nil, false, fmt.Errorf("cdn http: response body exceeds %d bytes", bodyLimit)
	}
	res := &httpResult{
		status:       resp.StatusCode,
		etag:         resp.Header.Get("ETag"),
		lastModified: resp.Header.Get("Last-Modified"),
		body:         body,
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNotModified:
		return res, false, nil
	default:
		// Typed sentinel by name first (transport-proof), status-code
		// fallback for servers predating the header.
		detail := strings.TrimSpace(string(body))
		if sentinel := sentinelFor(resp.Header.Get(errorHeader)); sentinel != nil {
			return nil, false, fmt.Errorf("%w: %s", sentinel, detail)
		}
		switch resp.StatusCode {
		case http.StatusNotFound:
			return nil, false, fmt.Errorf("%w: %s", ErrUnknownCA, detail)
		case http.StatusConflict:
			return nil, false, fmt.Errorf("%w: %s", ErrAhead, detail)
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			// Gateway-class failures with no typed header are the LB/proxy
			// between us and the origin hiccuping, not an answer.
			return nil, true, fmt.Errorf("cdn http: status %d: %s", resp.StatusCode, detail)
		default:
			return nil, false, fmt.Errorf("cdn http: status %d: %s", resp.StatusCode, detail)
		}
	}
}

// Pull implements Origin. The CA id is query-escaped: shard identifiers
// ("ca/exp-123") and ids containing '&', '+', '#', or spaces must survive
// the URL round trip unchanged, since the (ca, from) pair is the CDN cache
// key.
func (h *HTTPClient) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	q := url.Values{
		"ca":   {string(ca)},
		"from": {strconv.FormatUint(from, 10)},
	}
	res, err := h.get("/v1/pull?"+q.Encode(), "", "")
	if err != nil {
		return nil, err
	}
	return DecodePullResponse(res.body)
}

// LatestRoot implements Origin. The fetch is conditional when a previous
// root for ca is cached: If-None-Match when an ETag survived the transport,
// If-Modified-Since otherwise (the fallback for caches that strip ETags).
// On 304 the cached decode is returned as-is — the same *SignedRoot a
// full fetch of the unchanged root would describe, without body or decode.
func (h *HTTPClient) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	h.mu.Lock()
	cached := h.roots[ca]
	h.mu.Unlock()
	var inm, ims, path string
	if cached != nil {
		inm = cached.etag
		if inm == "" {
			// No strong validator survived; fall back to the weak one. Never
			// send both: a server honoring RFC 9110 ignores If-Modified-Since
			// when If-None-Match is present anyway.
			ims = cached.lastModified
		}
		path = cached.url
	} else {
		path = "/v1/root?" + url.Values{"ca": {string(ca)}}.Encode()
	}
	res, err := h.get(path, inm, ims)
	if err != nil {
		return nil, err
	}
	if res.status == http.StatusNotModified {
		if cached == nil {
			// A 304 to an unconditional request is a server bug; surface it.
			return nil, fmt.Errorf("cdn http: 304 for %s without a cached root", ca)
		}
		return cached.root, nil
	}
	root, err := dictionary.DecodeSignedRoot(res.body)
	if err != nil {
		return nil, err
	}
	if res.etag != "" || res.lastModified != "" {
		h.mu.Lock()
		if h.roots == nil {
			h.roots = make(map[dictionary.CAID]*cachedRoot)
		}
		h.roots[ca] = &cachedRoot{url: path, etag: res.etag, lastModified: res.lastModified, root: root}
		h.mu.Unlock()
	}
	return root, nil
}

// Replicate implements Replicator over the HTTP transport: a follower
// origin points it at the leader's base URL and tails the per-CA WAL
// through `/v1/replicate?ca=...&from_lsn=...`.
func (h *HTTPClient) Replicate(ca dictionary.CAID, fromLSN uint64) (*ReplicationResponse, error) {
	q := url.Values{
		"ca":       {string(ca)},
		"from_lsn": {strconv.FormatUint(fromLSN, 10)},
	}
	res, err := h.get("/v1/replicate?"+q.Encode(), "", "")
	if err != nil {
		return nil, err
	}
	return DecodeReplicationResponse(res.body)
}

var _ Replicator = (*HTTPClient)(nil)

// CAs implements Origin.
func (h *HTTPClient) CAs() ([]dictionary.CAID, error) {
	res, err := h.get("/v1/cas", "", "")
	if err != nil {
		return nil, err
	}
	var out []dictionary.CAID
	for _, line := range strings.Split(string(res.body), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			out = append(out, dictionary.CAID(line))
		}
	}
	return out, nil
}
