package cdn

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// testClock is a controllable virtual clock.
type testClock struct{ t time.Time }

func newTestClock() *testClock {
	return &testClock{t: time.Unix(1_400_000_000, 0)}
}

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// testCA bundles an authority with a registered distribution point.
type testCA struct {
	clock *testClock
	auth  *dictionary.Authority
	dp    *DistributionPoint
	gen   *serial.Generator
}

func newTestCA(t *testing.T, id dictionary.CAID) *testCA {
	t.Helper()
	clock := newTestClock()
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     id,
		Signer: signer,
		Delta:  10 * time.Second,
	}, clock.now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	dp := NewDistributionPoint(clock.now)
	if err := dp.RegisterCA(id, signer.Public()); err != nil {
		t.Fatal(err)
	}
	return &testCA{clock: clock, auth: auth, dp: dp, gen: serial.NewGenerator(1, nil)}
}

// revoke issues count revocations and publishes them.
func (tc *testCA) revoke(t *testing.T, count int) []serial.Number {
	t.Helper()
	serials := tc.gen.NextN(count)
	msg, err := tc.auth.Insert(serials, tc.clock.now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.dp.PublishIssuance(msg); err != nil {
		t.Fatal(err)
	}
	return serials
}

func (tc *testCA) refresh(t *testing.T) {
	t.Helper()
	st, err := tc.auth.Statement(tc.clock.now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.dp.PublishFreshness(st); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionPointPullFromZero(t *testing.T) {
	tc := newTestCA(t, "CA1")
	serials := tc.revoke(t, 5)

	resp, err := tc.dp.Pull("CA1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Issuance == nil {
		t.Fatal("no issuance in pull response")
	}
	if got := len(resp.Issuance.Serials); got != 5 {
		t.Fatalf("pull returned %d serials, want 5", got)
	}
	for i, s := range serials {
		if !resp.Issuance.Serials[i].Equal(s) {
			t.Errorf("serial %d mismatch", i)
		}
	}
	if resp.Issuance.Root.N != 5 {
		t.Errorf("root.N = %d, want 5", resp.Issuance.Root.N)
	}
	if resp.Freshness == nil {
		t.Error("no freshness statement in pull response")
	}
}

func TestDistributionPointSuffixPull(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 3)
	tc.revoke(t, 4)

	resp, err := tc.dp.Pull("CA1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.Issuance.Serials); got != 4 {
		t.Fatalf("suffix pull returned %d serials, want 4", got)
	}
	if resp.Issuance.Root.N != 7 {
		t.Errorf("root.N = %d, want 7", resp.Issuance.Root.N)
	}

	// A replica holding the first batch applies the suffix cleanly.
	replica := dictionary.NewReplica("CA1", tc.auth.PublicKey())
	first, err := tc.dp.Pull("CA1", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Apply the full pull, then verify a later suffix extends it.
	if err := replica.Update(first.Issuance); err != nil {
		t.Fatal(err)
	}
	tc.revoke(t, 2)
	suffix, err := tc.dp.Pull("CA1", replica.Count())
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.Update(suffix.Issuance); err != nil {
		t.Fatalf("suffix update: %v", err)
	}
	if replica.Count() != 9 {
		t.Errorf("replica count = %d, want 9", replica.Count())
	}
}

func TestDistributionPointRejectsBadMessages(t *testing.T) {
	tc := newTestCA(t, "CA1")

	if _, err := tc.dp.Pull("CA2", 0); !errors.Is(err, ErrUnknownCA) {
		t.Errorf("pull unknown CA: err = %v, want ErrUnknownCA", err)
	}
	if _, err := tc.dp.Pull("CA1", 10); !errors.Is(err, ErrAhead) {
		t.Errorf("pull ahead: err = %v, want ErrAhead", err)
	}

	// An issuance message signed by a different key is rejected at ingest.
	evil, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	evilAuth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     "CA1",
		Signer: evil,
		Delta:  10 * time.Second,
	}, tc.clock.now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	msg, err := evilAuth.Insert(serial.NewGenerator(9, nil).NextN(1), tc.clock.now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.dp.PublishIssuance(msg); err == nil {
		t.Error("forged issuance message accepted by distribution point")
	}
}

func TestFreshnessIngestAndServe(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 1)

	tc.clock.advance(10 * time.Second) // one period later
	tc.refresh(t)

	resp, err := tc.dp.Pull("CA1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Freshness == nil {
		t.Fatal("no freshness after refresh")
	}
	// The served statement must verify for period 1 against the anchor.
	root := resp.Issuance.Root
	if err := cryptoutil.VerifyChainValue(root.Anchor, resp.Freshness.Value, 1); err != nil {
		t.Errorf("served freshness does not verify: %v", err)
	}
}

func TestEdgeServerCaching(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 2)

	edge := NewEdgeServer(tc.dp, 30*time.Second, tc.clock.now)

	if _, err := edge.Pull("CA1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := edge.Pull("CA1", 0); err != nil {
		t.Fatal(err)
	}
	st := edge.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss and 1 hit", st)
	}

	// After the TTL the entry expires and the origin is contacted again.
	tc.clock.advance(31 * time.Second)
	if _, err := edge.Pull("CA1", 0); err != nil {
		t.Fatal(err)
	}
	if st := edge.Stats(); st.Misses != 2 {
		t.Errorf("misses after TTL = %d, want 2", st.Misses)
	}
}

func TestEdgeServerTTLZeroNeverCaches(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 1)
	edge := NewEdgeServer(tc.dp, 0, tc.clock.now)
	for i := 0; i < 3; i++ {
		if _, err := edge.Pull("CA1", 0); err != nil {
			t.Fatal(err)
		}
	}
	if st := edge.Stats(); st.Hits != 0 || st.Misses != 3 {
		t.Errorf("TTL=0 stats = %+v, want 0 hits / 3 misses", st)
	}
}

func TestEdgeServerStaleCacheToleratedByFreshnessWindow(t *testing.T) {
	// A cached response served within the TTL carries a freshness statement
	// one period old; the client policy (2∆) must still accept it.
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 1)
	edge := NewEdgeServer(tc.dp, 10*time.Second, tc.clock.now)

	if _, err := edge.Pull("CA1", 0); err != nil {
		t.Fatal(err)
	}
	tc.clock.advance(9 * time.Second) // within TTL; still period 0
	resp, err := edge.Pull("CA1", 0)
	if err != nil {
		t.Fatal(err)
	}
	root := resp.Issuance.Root
	p := root.Period(tc.clock.now().Unix())
	okNow := cryptoutil.VerifyChainValue(root.Anchor, resp.Freshness.Value, p) == nil
	okPrev := p > 0 && cryptoutil.VerifyChainValue(root.Anchor, resp.Freshness.Value, p-1) == nil
	if !okNow && !okPrev {
		t.Error("cached freshness statement outside the 2∆ window")
	}
}

func TestPullResponseRoundTrip(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 3)
	resp, err := tc.dp.Pull("CA1", 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePullResponse(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Issuance == nil || len(got.Issuance.Serials) != 3 {
		t.Fatalf("round trip lost serials: %+v", got.Issuance)
	}
	if !got.Issuance.Root.Equal(resp.Issuance.Root) {
		t.Error("round trip changed signed root")
	}
	if got.Freshness == nil || got.Freshness.Value != resp.Freshness.Value {
		t.Error("round trip changed freshness")
	}
}

func TestPullResponseDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodePullResponse([]byte{1, 2, 3}); err == nil {
		t.Error("garbage decoded as pull response")
	}
	if _, err := DecodePullResponse(nil); err == nil {
		t.Error("empty buffer decoded as pull response")
	}
}

func TestHTTPTransport(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 4)

	srv := httptest.NewServer(Handler(tc.dp))
	defer srv.Close()
	client := &HTTPClient{BaseURL: srv.URL}

	cas, err := client.CAs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cas) != 1 || cas[0] != "CA1" {
		t.Errorf("CAs = %v", cas)
	}

	resp, err := client.Pull("CA1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Issuance == nil || len(resp.Issuance.Serials) != 4 {
		t.Fatalf("HTTP pull lost serials: %+v", resp.Issuance)
	}

	root, err := client.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if root.N != 4 {
		t.Errorf("root.N = %d, want 4", root.N)
	}
	if err := root.VerifySignature(tc.auth.PublicKey()); err != nil {
		t.Errorf("root signature after HTTP transport: %v", err)
	}

	// Error mapping.
	if _, err := client.Pull("CA9", 0); !errors.Is(err, ErrUnknownCA) {
		t.Errorf("unknown CA over HTTP: %v", err)
	}
	if _, err := client.Pull("CA1", 99); !errors.Is(err, ErrAhead) {
		t.Errorf("ahead pull over HTTP: %v", err)
	}
}

// TestHTTPTransportHostileCAIDs round-trips CA identifiers that would
// corrupt a naively concatenated query string: expiry-shard ids (the
// "<ca>/exp-<unixtime>" convention of §VIII) and ids containing '&', '+',
// '#', '=', '?', and spaces. The (ca, from) pair is the CDN cache key, so
// any lossy encoding would silently merge or split cache entries.
func TestHTTPTransportHostileCAIDs(t *testing.T) {
	ids := []dictionary.CAID{
		"Acme CA/exp-1700000000",
		"ca&from=0#frag",
		"a+b c?d=e",
	}
	for _, id := range ids {
		t.Run(string(id), func(t *testing.T) {
			tc := newTestCA(t, id)
			tc.revoke(t, 3)
			srv := httptest.NewServer(Handler(tc.dp))
			defer srv.Close()
			client := &HTTPClient{BaseURL: srv.URL}

			cas, err := client.CAs()
			if err != nil {
				t.Fatal(err)
			}
			if len(cas) != 1 || cas[0] != id {
				t.Fatalf("CAs() = %v, want [%s]", cas, id)
			}
			resp, err := client.Pull(id, 0)
			if err != nil {
				t.Fatalf("pull: %v", err)
			}
			if resp.Issuance == nil || len(resp.Issuance.Serials) != 3 {
				t.Fatalf("pull through HTTP lost serials: %+v", resp.Issuance)
			}
			if resp.Issuance.Root.CA != id {
				t.Errorf("root CA = %q, want %q", resp.Issuance.Root.CA, id)
			}
			root, err := client.LatestRoot(id)
			if err != nil {
				t.Fatalf("latest root: %v", err)
			}
			if root.N != 3 || root.CA != id {
				t.Errorf("root = (ca=%q, n=%d), want (%q, 3)", root.CA, root.N, id)
			}
			// A suffix pull keys a different cache entry and still resolves.
			suffix, err := client.Pull(id, 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(suffix.Issuance.Serials) != 1 {
				t.Errorf("suffix pull returned %d serials, want 1", len(suffix.Issuance.Serials))
			}
		})
	}
}

func TestEndToEndReplicaSyncThroughEdge(t *testing.T) {
	// CA → distribution point → edge → replica, with incremental updates
	// and a freshness refresh, exercising the full dissemination path.
	tc := newTestCA(t, "CA1")
	edge := NewEdgeServer(tc.dp, 0, tc.clock.now)
	replica := dictionary.NewReplica("CA1", tc.auth.PublicKey())

	sync := func() {
		t.Helper()
		resp, err := edge.Pull("CA1", replica.Count())
		if err != nil {
			t.Fatal(err)
		}
		if resp.Issuance != nil {
			if err := replica.Update(resp.Issuance); err != nil {
				t.Fatal(err)
			}
		}
		if resp.Freshness != nil {
			if err := replica.ApplyFreshness(resp.Freshness, tc.clock.now().Unix()); err != nil {
				t.Fatal(err)
			}
		}
	}

	tc.revoke(t, 3)
	sync()
	if replica.Count() != 3 {
		t.Fatalf("after first sync: count = %d", replica.Count())
	}

	tc.clock.advance(10 * time.Second)
	tc.refresh(t)
	tc.revoke(t, 2)
	sync()
	if replica.Count() != 5 {
		t.Fatalf("after second sync: count = %d", replica.Count())
	}

	// The replica proves absence for an unrevoked serial and the status
	// checks out under the CA key at the current time.
	other := serial.NewGenerator(42, nil).Next()
	status, err := replica.Prove(other)
	if err != nil {
		t.Fatal(err)
	}
	res, err := status.Check(other, tc.auth.PublicKey(), tc.clock.now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	if res != dictionary.CheckValid {
		t.Errorf("check = %v, want CheckValid", res)
	}
}
