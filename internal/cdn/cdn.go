// Package cdn implements RITM's dissemination network (§III
// "Dissemination"): a distribution point (the origin, fed by CAs) and edge
// servers that replicate its content with TTL caches, pulled by Revocation
// Agents every ∆.
//
// The communication paradigm is pull, as in production CDNs: RAs pull from
// edge servers, edge servers pull from the distribution point, and the
// origin never pushes. Because every message is either signed (issuance
// messages) or hash-chain-authenticated (freshness statements), no element
// of the network is trusted: a compromised edge server can at worst serve
// stale data, which the 2∆ freshness policy converts into a connection
// interruption rather than an accepted revoked certificate (§V).
//
// Two transports are provided: direct in-process calls (the Origin
// interface) and an HTTP API (Handler / HTTPClient) mirroring the paper's
// "simple HTTP(S)-based API" (§VI).
package cdn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ritm/internal/dictionary"
	"ritm/internal/wire"
)

// Errors returned by dissemination operations.
var (
	// ErrUnknownCA reports a pull for a dictionary the origin does not carry.
	ErrUnknownCA = errors.New("cdn: unknown CA")
	// ErrAhead reports a pull whose from-count exceeds the origin's count;
	// the puller's view is from a different (possibly equivocating) history.
	ErrAhead = errors.New("cdn: requested count ahead of origin")
)

// PullResponse is what one pull for one dictionary returns: the issuance
// message covering every revocation the puller is missing (nil when it is
// current and no root rotation happened), and the current freshness
// statement. This realizes both the regular ∆ pull and the
// desynchronization-recovery protocol of §III with a single request shape:
// the puller always states the count n it has, the origin always answers
// with the suffix after n.
type PullResponse struct {
	// Issuance carries serials (puller's n, origin's n] with the latest
	// signed root. It is nil when the puller is current and the stored root
	// is the one the puller necessarily already has (same n, no rotation is
	// distinguishable, so the root is always included when n differs OR the
	// origin rotated; to keep the protocol stateless the origin includes the
	// root whenever it has one and the puller is behind or rotation may have
	// happened — in practice: always, unless the origin itself is empty).
	Issuance *dictionary.IssuanceMessage
	// Freshness is the current freshness statement (nil before the CA's
	// first publication).
	Freshness *dictionary.FreshnessStatement
}

// Encode serializes the response for the HTTP transport.
func (pr *PullResponse) Encode() []byte {
	e := wire.NewEncoder(512)
	if pr.Issuance != nil {
		e.Bool(true)
		e.BytesField(pr.Issuance.Encode())
	} else {
		e.Bool(false)
	}
	if pr.Freshness != nil {
		e.Bool(true)
		e.BytesField(pr.Freshness.Encode())
	} else {
		e.Bool(false)
	}
	return e.Bytes()
}

// DecodePullResponse parses a response encoded by Encode.
func DecodePullResponse(buf []byte) (*PullResponse, error) {
	d := wire.NewDecoder(buf)
	var pr PullResponse
	if d.Bool() {
		msg, err := dictionary.DecodeIssuanceMessage(d.BytesField())
		if err != nil {
			return nil, fmt.Errorf("decode pull response: %w", err)
		}
		pr.Issuance = msg
	}
	if d.Bool() {
		st, err := dictionary.DecodeFreshnessStatement(d.BytesField())
		if err != nil {
			return nil, fmt.Errorf("decode pull response: %w", err)
		}
		pr.Freshness = st
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode pull response: %w", err)
	}
	return &pr, nil
}

// Size returns the encoded size in bytes; the bandwidth experiments (Fig 7)
// sum it per pull.
func (pr *PullResponse) Size() int { return len(pr.Encode()) }

// Origin is the pull API spoken throughout the dissemination network: RAs
// pull from edge servers, edge servers pull from the distribution point,
// and monitors pull signed roots for consistency checking. Implementations:
// DistributionPoint, EdgeServer, HTTPClient.
type Origin interface {
	// Pull returns everything the caller (holding from revocations of ca's
	// dictionary) is missing, plus the current freshness statement.
	Pull(ca dictionary.CAID, from uint64) (*PullResponse, error)
	// LatestRoot returns the newest signed root for ca (nil error with nil
	// root never occurs: unknown CAs return ErrUnknownCA).
	LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error)
	// CAs lists the dictionaries available, sorted.
	CAs() ([]dictionary.CAID, error)
}

// dictState is the distribution point's record of one CA's dictionary: the
// full issuance log (to serve any suffix), the latest signed root, and the
// latest freshness statement. The log is verified by replaying it through a
// Replica, so a distribution point never propagates a message whose root
// does not match its content.
type dictState struct {
	replica   *dictionary.Replica
	freshness *dictionary.FreshnessStatement
}

// DistributionPoint is the origin of the dissemination network. CAs publish
// to it (it implements the ca.Publisher interface) and edge servers pull
// from it. It is safe for concurrent use.
type DistributionPoint struct {
	now func() time.Time

	mu    sync.RWMutex
	dicts map[dictionary.CAID]*dictState
	stats Stats
}

// NewDistributionPoint creates an empty origin. now is the clock used to
// validate freshness statements on ingest (nil = time.Now).
func NewDistributionPoint(now func() time.Time) *DistributionPoint {
	if now == nil {
		now = time.Now
	}
	return &DistributionPoint{
		now:   now,
		dicts: make(map[dictionary.CAID]*dictState),
	}
}

// RegisterCA announces a CA to the distribution point, providing the trust
// anchor used to verify everything the CA publishes. This models the
// CA-bootstrapping manifest of §VIII.
func (dp *DistributionPoint) RegisterCA(ca dictionary.CAID, pub []byte) error {
	if ca == "" {
		return fmt.Errorf("cdn: empty CA id")
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if _, dup := dp.dicts[ca]; dup {
		return fmt.Errorf("cdn: CA %s already registered", ca)
	}
	dp.dicts[ca] = &dictState{replica: dictionary.NewReplica(ca, pub)}
	return nil
}

// PublishIssuance ingests a CA's revocation issuance message: the
// distribution point verifies it against its own replica (so that a
// corrupted or equivocating message is rejected at the origin) and stores
// it for pulls. Implements ca.Publisher.
func (dp *DistributionPoint) PublishIssuance(msg *dictionary.IssuanceMessage) error {
	if msg == nil || msg.Root == nil {
		return fmt.Errorf("cdn: nil issuance message")
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	st, ok := dp.dicts[msg.Root.CA]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCA, msg.Root.CA)
	}
	if err := st.replica.Update(msg); err != nil {
		return fmt.Errorf("cdn: ingest issuance for %s: %w", msg.Root.CA, err)
	}
	// A new signed root restarts the freshness chain; its anchor is the
	// period-0 statement.
	st.freshness = &dictionary.FreshnessStatement{CA: msg.Root.CA, Value: msg.Root.Anchor}
	dp.stats.IssuancesIngested++
	return nil
}

// PublishFreshness ingests a per-∆ freshness statement. Implements
// ca.Publisher.
func (dp *DistributionPoint) PublishFreshness(st *dictionary.FreshnessStatement) error {
	if st == nil {
		return fmt.Errorf("cdn: nil freshness statement")
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	ds, ok := dp.dicts[st.CA]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCA, st.CA)
	}
	if err := ds.replica.ApplyFreshness(st, dp.now().Unix()); err != nil {
		return fmt.Errorf("cdn: ingest freshness for %s: %w", st.CA, err)
	}
	ds.freshness = st
	dp.stats.FreshnessIngested++
	return nil
}

var _ Origin = (*DistributionPoint)(nil)

// Pull implements Origin.
func (dp *DistributionPoint) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	dp.mu.Lock()
	st, ok := dp.dicts[ca]
	if ok {
		dp.stats.Pulls++
	}
	dp.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCA, ca)
	}

	root := st.replica.Root()
	have := st.replica.Count()
	if from > have {
		return nil, fmt.Errorf("%w: from=%d, origin has %d", ErrAhead, from, have)
	}
	resp := &PullResponse{Freshness: dp.freshnessOf(ca)}
	if root == nil {
		// The CA has published nothing yet.
		return resp, nil
	}
	suffix, err := st.replica.LogSuffix(from, have)
	if err != nil {
		return nil, fmt.Errorf("cdn: pull %s: %w", ca, err)
	}
	// Always include the latest root: a puller that is current still needs
	// it to detect rotation, and it makes the response self-contained.
	resp.Issuance = &dictionary.IssuanceMessage{Serials: suffix, Root: root}
	return resp, nil
}

func (dp *DistributionPoint) freshnessOf(ca dictionary.CAID) *dictionary.FreshnessStatement {
	dp.mu.RLock()
	defer dp.mu.RUnlock()
	st, ok := dp.dicts[ca]
	if !ok || st.freshness == nil {
		return nil
	}
	cp := *st.freshness
	return &cp
}

// LatestRoot implements Origin.
func (dp *DistributionPoint) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	dp.mu.RLock()
	st, ok := dp.dicts[ca]
	dp.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCA, ca)
	}
	root := st.replica.Root()
	if root == nil {
		return nil, fmt.Errorf("cdn: %s has not published a root yet", ca)
	}
	return root, nil
}

// CAs implements Origin.
func (dp *DistributionPoint) CAs() ([]dictionary.CAID, error) {
	dp.mu.RLock()
	defer dp.mu.RUnlock()
	out := make([]dictionary.CAID, 0, len(dp.dicts))
	for ca := range dp.dicts {
		out = append(out, ca)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Stats counts distribution-point activity; experiments read it to report
// origin load.
type Stats struct {
	IssuancesIngested int
	FreshnessIngested int
	Pulls             int
}

// Stats returns a copy of the origin's counters.
func (dp *DistributionPoint) Stats() Stats {
	dp.mu.RLock()
	defer dp.mu.RUnlock()
	return dp.stats
}
