// Package cdn implements RITM's dissemination network (§III
// "Dissemination"): a distribution point (the origin, fed by CAs) and edge
// servers that replicate its content with TTL caches, pulled by Revocation
// Agents every ∆.
//
// The communication paradigm is pull, as in production CDNs: RAs pull from
// edge servers, edge servers pull from the distribution point, and the
// origin never pushes. Because every message is either signed (issuance
// messages) or hash-chain-authenticated (freshness statements), no element
// of the network is trusted: a compromised edge server can at worst serve
// stale data, which the 2∆ freshness policy converts into a connection
// interruption rather than an accepted revoked certificate (§V).
//
// Two transports are provided: direct in-process calls (the Origin
// interface) and an HTTP API (Handler / HTTPClient) mirroring the paper's
// "simple HTTP(S)-based API" (§VI).
package cdn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ritm/internal/dictionary"
	"ritm/internal/wire"
)

// Errors returned by dissemination operations.
var (
	// ErrUnknownCA reports a pull for a dictionary the origin does not carry.
	ErrUnknownCA = errors.New("cdn: unknown CA")
	// ErrAhead reports a pull whose from-count exceeds the origin's count;
	// the puller's view is from a different (possibly equivocating) history.
	ErrAhead = errors.New("cdn: requested count ahead of origin")
)

// PullResponse is what one pull for one dictionary returns: the issuance
// message covering every revocation the puller is missing (nil when it is
// current and no root rotation happened), and the current freshness
// statement. This realizes both the regular ∆ pull and the
// desynchronization-recovery protocol of §III with a single request shape:
// the puller always states the count n it has, the origin always answers
// with the suffix after n.
//
// A response is immutable once constructed: edge servers cache it and hand
// the same instance to every puller at the same count, and the wire
// encoding is memoized (Encoded) so that the HTTP handler and the edge's
// byte accounting serialize it once, not once per reader.
type PullResponse struct {
	// Issuance carries serials (puller's n, origin's n] with the latest
	// signed root. It is nil when the puller is current and the stored root
	// is the one the puller necessarily already has (same n, no rotation is
	// distinguishable, so the root is always included when n differs OR the
	// origin rotated; to keep the protocol stateless the origin includes the
	// root whenever it has one and the puller is behind or rotation may have
	// happened — in practice: always, unless the origin itself is empty).
	Issuance *dictionary.IssuanceMessage
	// Freshness is the current freshness statement (nil before the CA's
	// first publication).
	Freshness *dictionary.FreshnessStatement

	encOnce sync.Once
	enc     []byte
}

// Encoded returns the wire encoding of the response, computed once and
// shared by every caller: the HTTP handler writes it, the edge server's
// byte accounting measures it, and a cached response is encoded exactly
// once no matter how many RAs pull it. The returned bytes are shared and
// must be treated as immutable.
func (pr *PullResponse) Encoded() []byte {
	pr.encOnce.Do(func() {
		e := wire.NewEncoder(512)
		if pr.Issuance != nil {
			e.Bool(true)
			e.BytesField(pr.Issuance.Encode())
		} else {
			e.Bool(false)
		}
		if pr.Freshness != nil {
			e.Bool(true)
			e.BytesField(pr.Freshness.Encode())
		} else {
			e.Bool(false)
		}
		pr.enc = e.Bytes()
	})
	return pr.enc
}

// Encode serializes the response for the HTTP transport. It returns the
// same memoized (shared, immutable) buffer as Encoded.
func (pr *PullResponse) Encode() []byte { return pr.Encoded() }

// DecodePullResponse parses a response encoded by Encode.
func DecodePullResponse(buf []byte) (*PullResponse, error) {
	d := wire.NewDecoder(buf)
	var pr PullResponse
	if d.Bool() {
		msg, err := dictionary.DecodeIssuanceMessage(d.BytesField())
		if err != nil {
			return nil, fmt.Errorf("decode pull response: %w", err)
		}
		pr.Issuance = msg
	}
	if d.Bool() {
		st, err := dictionary.DecodeFreshnessStatement(d.BytesField())
		if err != nil {
			return nil, fmt.Errorf("decode pull response: %w", err)
		}
		pr.Freshness = st
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode pull response: %w", err)
	}
	// Seed the memoized encoding with (a copy of) the bytes just parsed:
	// decoding is deterministic, so re-encoding would reproduce them, and
	// a decoded response that is re-served (an edge running the HTTP client
	// against its upstream) must not pay a second serialization.
	pr.encOnce.Do(func() { pr.enc = append([]byte(nil), buf...) })
	return &pr, nil
}

// Size returns the encoded size in bytes; the bandwidth experiments (Fig 7)
// sum it per pull. It shares Encoded's memoization.
func (pr *PullResponse) Size() int { return len(pr.Encoded()) }

// Origin is the pull API spoken throughout the dissemination network: RAs
// pull from edge servers, edge servers pull from the distribution point,
// and monitors pull signed roots for consistency checking. Implementations:
// DistributionPoint, EdgeServer, HTTPClient.
type Origin interface {
	// Pull returns everything the caller (holding from revocations of ca's
	// dictionary) is missing, plus the current freshness statement.
	Pull(ca dictionary.CAID, from uint64) (*PullResponse, error)
	// LatestRoot returns the newest signed root for ca (nil error with nil
	// root never occurs: unknown CAs return ErrUnknownCA).
	LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error)
	// CAs lists the dictionaries available, sorted.
	CAs() ([]dictionary.CAID, error)
}

// DistributionPoint is the origin of the dissemination network. CAs publish
// to it (it implements the ca.Publisher interface) and edge servers pull
// from it. Each CA's record is a dictionary.Replica: the full issuance log
// (to serve any suffix), the latest signed root, and the latest freshness
// statement, all carried by the replica's immutable snapshots — and every
// ingested message is verified by replaying it through the replica, so a
// distribution point never propagates a message whose root does not match
// its content.
//
// It is safe for concurrent use; the read path (Pull, LatestRoot) takes
// only a brief read lock on the CA map — counters are atomics and
// per-dictionary state is read through the replica's lock-free snapshots,
// so pulls from a whole RA fleet never serialize behind one mutex.
type DistributionPoint struct {
	now func() time.Time

	mu    sync.RWMutex // guards dicts (registration vs lookup)
	dicts map[dictionary.CAID]*dictionary.Replica

	stats distCounters
}

// distCounters is the lock-free backing store for Stats.
type distCounters struct {
	issuancesIngested atomic.Int64
	freshnessIngested atomic.Int64
	pulls             atomic.Int64
}

// NewDistributionPoint creates an empty origin. now is the clock used to
// validate freshness statements on ingest (nil = time.Now).
func NewDistributionPoint(now func() time.Time) *DistributionPoint {
	if now == nil {
		now = time.Now
	}
	return &DistributionPoint{
		now:   now,
		dicts: make(map[dictionary.CAID]*dictionary.Replica),
	}
}

// RegisterCA announces a CA to the distribution point, providing the trust
// anchor used to verify everything the CA publishes. This models the
// CA-bootstrapping manifest of §VIII. The verifying replica uses the
// default sorted layout; CAs signing forest-layout dictionaries register
// with RegisterCAWithLayout.
func (dp *DistributionPoint) RegisterCA(ca dictionary.CAID, pub []byte) error {
	return dp.RegisterCAWithLayout(ca, pub, dictionary.LayoutSorted)
}

// RegisterCAWithLayout announces a CA whose dictionary uses the given
// commitment layout. The distribution point verifies every ingested message
// by replaying it through its own replica, and roots are layout-specific,
// so the layout here must match the CA's — the pull/sync wire protocol
// itself stays layout-agnostic (issuance logs are just serials).
func (dp *DistributionPoint) RegisterCAWithLayout(ca dictionary.CAID, pub []byte, layout dictionary.LayoutKind) error {
	if ca == "" {
		return fmt.Errorf("cdn: empty CA id")
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if _, dup := dp.dicts[ca]; dup {
		return fmt.Errorf("cdn: CA %s already registered", ca)
	}
	dp.dicts[ca] = dictionary.NewReplicaWithLayout(ca, pub, layout)
	return nil
}

// PublishIssuance ingests a CA's revocation issuance message: the
// distribution point verifies it against its own replica (so that a
// corrupted or equivocating message is rejected at the origin) and stores
// it for pulls. Implements ca.Publisher.
func (dp *DistributionPoint) PublishIssuance(msg *dictionary.IssuanceMessage) error {
	if msg == nil || msg.Root == nil {
		return fmt.Errorf("cdn: nil issuance message")
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	r, ok := dp.dicts[msg.Root.CA]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCA, msg.Root.CA)
	}
	if err := r.Update(msg); err != nil {
		return fmt.Errorf("cdn: ingest issuance for %s: %w", msg.Root.CA, err)
	}
	// A new signed root restarts the freshness chain; the replica's
	// snapshot now carries its anchor as the period-0 statement.
	dp.stats.issuancesIngested.Add(1)
	return nil
}

// PublishFreshness ingests a per-∆ freshness statement. Implements
// ca.Publisher.
func (dp *DistributionPoint) PublishFreshness(st *dictionary.FreshnessStatement) error {
	if st == nil {
		return fmt.Errorf("cdn: nil freshness statement")
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	r, ok := dp.dicts[st.CA]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCA, st.CA)
	}
	if err := r.ApplyFreshness(st, dp.now().Unix()); err != nil {
		return fmt.Errorf("cdn: ingest freshness for %s: %w", st.CA, err)
	}
	dp.stats.freshnessIngested.Add(1)
	return nil
}

var _ Origin = (*DistributionPoint)(nil)

// Pull implements Origin. It is the fleet's hot path: after a read-locked
// map lookup everything is atomics and snapshot reads, so concurrent
// pullers never serialize on the distribution point (the seed took the
// exclusive write lock here just to bump a counter).
func (dp *DistributionPoint) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	dp.mu.RLock()
	r, ok := dp.dicts[ca]
	dp.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCA, ca)
	}
	dp.stats.pulls.Add(1)

	// One snapshot for root, count, suffix, AND freshness: reading them
	// from separate loads can tear across a concurrent publish — a suffix
	// extending past its signed root, or a freshness statement from a
	// rotated chain paired with the old root. Either torn response would be
	// rejected by every RA and cached by the edge for a full TTL.
	snap := r.Snapshot()
	root := snap.Root()
	have := snap.Count()
	if from > have {
		return nil, fmt.Errorf("%w: from=%d, origin has %d", ErrAhead, from, have)
	}
	resp := &PullResponse{}
	if root == nil {
		// The CA has published nothing yet.
		return resp, nil
	}
	resp.Freshness = &dictionary.FreshnessStatement{CA: ca, Value: snap.Freshness()}
	suffix, err := snap.LogSuffix(from, have)
	if err != nil {
		return nil, fmt.Errorf("cdn: pull %s: %w", ca, err)
	}
	// Always include the latest root: a puller that is current still needs
	// it to detect rotation, and it makes the response self-contained.
	resp.Issuance = &dictionary.IssuanceMessage{Serials: suffix, Root: root}
	return resp, nil
}

// LatestRoot implements Origin.
func (dp *DistributionPoint) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	dp.mu.RLock()
	r, ok := dp.dicts[ca]
	dp.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCA, ca)
	}
	root := r.Root()
	if root == nil {
		return nil, fmt.Errorf("cdn: %s has not published a root yet", ca)
	}
	return root, nil
}

// CAs implements Origin.
func (dp *DistributionPoint) CAs() ([]dictionary.CAID, error) {
	dp.mu.RLock()
	defer dp.mu.RUnlock()
	out := make([]dictionary.CAID, 0, len(dp.dicts))
	for ca := range dp.dicts {
		out = append(out, ca)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Stats counts distribution-point activity; experiments read it to report
// origin load.
type Stats struct {
	IssuancesIngested int
	FreshnessIngested int
	Pulls             int
}

// Stats returns a copy of the origin's counters. Each counter is read
// atomically; the copy is not a single consistent cut across counters,
// which no caller needs.
func (dp *DistributionPoint) Stats() Stats {
	return Stats{
		IssuancesIngested: int(dp.stats.issuancesIngested.Load()),
		FreshnessIngested: int(dp.stats.freshnessIngested.Load()),
		Pulls:             int(dp.stats.pulls.Load()),
	}
}
