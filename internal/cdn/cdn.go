// Package cdn implements RITM's dissemination network (§III
// "Dissemination"): a distribution point (the origin, fed by CAs) and edge
// servers that replicate its content with TTL caches, pulled by Revocation
// Agents every ∆.
//
// The communication paradigm is pull, as in production CDNs: RAs pull from
// edge servers, edge servers pull from the distribution point, and the
// origin never pushes. Because every message is either signed (issuance
// messages) or hash-chain-authenticated (freshness statements), no element
// of the network is trusted: a compromised edge server can at worst serve
// stale data, which the 2∆ freshness policy converts into a connection
// interruption rather than an accepted revoked certificate (§V).
//
// Two transports are provided: direct in-process calls (the Origin
// interface) and an HTTP API (Handler / HTTPClient) mirroring the paper's
// "simple HTTP(S)-based API" (§VI).
package cdn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ritm/internal/dictionary"
	"ritm/internal/storage"
	"ritm/internal/wire"
)

// Errors returned by dissemination operations.
var (
	// ErrUnknownCA reports a pull for a dictionary the origin does not carry.
	ErrUnknownCA = errors.New("cdn: unknown CA")
	// ErrAhead reports a pull whose from-count exceeds the origin's count;
	// the puller's view is from a different (possibly equivocating) history.
	ErrAhead = errors.New("cdn: requested count ahead of origin")
)

// PullResponse is what one pull for one dictionary returns: the issuance
// message covering every revocation the puller is missing (nil when it is
// current and no root rotation happened), and the current freshness
// statement. This realizes both the regular ∆ pull and the
// desynchronization-recovery protocol of §III with a single request shape:
// the puller always states the count n it has, the origin always answers
// with the suffix after n.
//
// A response is immutable once constructed: edge servers cache it and hand
// the same instance to every puller at the same count, and the wire
// encoding is memoized (Encoded) so that the HTTP handler and the edge's
// byte accounting serialize it once, not once per reader.
type PullResponse struct {
	// Issuance carries serials (puller's n, origin's n] with the latest
	// signed root. It is nil when the puller is current and the stored root
	// is the one the puller necessarily already has (same n, no rotation is
	// distinguishable, so the root is always included when n differs OR the
	// origin rotated; to keep the protocol stateless the origin includes the
	// root whenever it has one and the puller is behind or rotation may have
	// happened — in practice: always, unless the origin itself is empty).
	Issuance *dictionary.IssuanceMessage
	// Freshness is the current freshness statement (nil before the CA's
	// first publication).
	Freshness *dictionary.FreshnessStatement
	// Bounds lists the cumulative counts, strictly between the puller's
	// from and the signed count, at which the suffix's original insertion
	// batches ended. A puller replaying the suffix in these sub-batches
	// reproduces the origin's commitment structure exactly — which the
	// forest layout's root depends on (bucket splits chunk whatever the
	// bucket holds at that moment, so batch boundaries are part of the
	// structure). The bounds are an unsigned hint: the replica's commit
	// rule is still the signed-root match, so corrupt bounds can only
	// cause a rejection, never an accepted forgery.
	Bounds []uint64

	encOnce sync.Once
	enc     []byte
}

// Encoded returns the wire encoding of the response, computed once and
// shared by every caller: the HTTP handler writes it, the edge server's
// byte accounting measures it, and a cached response is encoded exactly
// once no matter how many RAs pull it. The returned bytes are shared and
// must be treated as immutable.
func (pr *PullResponse) Encoded() []byte {
	pr.encOnce.Do(func() {
		e := wire.NewEncoder(512)
		if pr.Issuance != nil {
			e.Bool(true)
			e.BytesField(pr.Issuance.Encode())
		} else {
			e.Bool(false)
		}
		if pr.Freshness != nil {
			e.Bool(true)
			e.BytesField(pr.Freshness.Encode())
		} else {
			e.Bool(false)
		}
		// Bounds are ascending; delta encoding keeps them to a few bytes
		// each regardless of dictionary size.
		e.Uvarint(uint64(len(pr.Bounds)))
		prev := uint64(0)
		for _, b := range pr.Bounds {
			e.Uvarint(b - prev)
			prev = b
		}
		pr.enc = e.Bytes()
	})
	return pr.enc
}

// Encode serializes the response for the HTTP transport. It returns the
// same memoized (shared, immutable) buffer as Encoded.
func (pr *PullResponse) Encode() []byte { return pr.Encoded() }

// DecodePullResponse parses a response encoded by Encode, taking ownership
// of buf: the decoded issuance serials alias it (zero-copy decode) and the
// memoized encoding retains it, so the caller must not modify buf after
// the call. Every production caller hands over a freshly read HTTP body.
func DecodePullResponse(buf []byte) (*PullResponse, error) {
	d := wire.NewDecoder(buf)
	var pr PullResponse
	if d.Bool() {
		msg, err := dictionary.DecodeIssuanceMessageView(d.BytesField())
		if err != nil {
			return nil, fmt.Errorf("decode pull response: %w", err)
		}
		pr.Issuance = msg
	}
	if d.Bool() {
		st, err := dictionary.DecodeFreshnessStatement(d.BytesField())
		if err != nil {
			return nil, fmt.Errorf("decode pull response: %w", err)
		}
		pr.Freshness = st
	}
	// The bounds count is mandatory (0 when the suffix spans one batch).
	// Making it optional-by-presence would let a body truncated at the
	// field boundary decode cleanly — exactly the silent-truncation class
	// PR 3 closed and TestHTTPClientTruncatedBody pins. The cost is that
	// pull bodies are not cross-version compatible with pre-bounds nodes
	// (in either direction — the old decoder rejects trailing bytes too);
	// origin and pullers upgrade together, as the layout flag already
	// requires for forest deployments.
	nBounds := d.Uvarint()
	if d.Err() != nil {
		return nil, fmt.Errorf("decode pull response: %w", d.Err())
	}
	const maxBounds = 1 << 24 // one bound per batch; sanity cap
	if nBounds > maxBounds {
		return nil, fmt.Errorf("decode pull response: %d batch bounds exceed limit", nBounds)
	}
	prev := uint64(0)
	for i := uint64(0); i < nBounds; i++ {
		prev += d.Uvarint()
		pr.Bounds = append(pr.Bounds, prev)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode pull response: %w", err)
	}
	// Seed the memoized encoding with the bytes just parsed: decoding is
	// deterministic, so re-encoding would reproduce them, and a decoded
	// response that is re-served (an edge running the HTTP client against
	// its upstream) must not pay a second serialization. The buffer is ours
	// (ownership contract above), so no defensive copy either — the body of
	// a churn pull is decoded, retained, and re-served with zero copies of
	// the serial bytes.
	pr.encOnce.Do(func() { pr.enc = buf })
	return &pr, nil
}

// Size returns the encoded size in bytes; the bandwidth experiments (Fig 7)
// sum it per pull. It shares Encoded's memoization.
func (pr *PullResponse) Size() int { return len(pr.Encoded()) }

// Origin is the pull API spoken throughout the dissemination network: RAs
// pull from edge servers, edge servers pull from the distribution point,
// and monitors pull signed roots for consistency checking. Implementations:
// DistributionPoint, EdgeServer, HTTPClient.
type Origin interface {
	// Pull returns everything the caller (holding from revocations of ca's
	// dictionary) is missing, plus the current freshness statement.
	Pull(ca dictionary.CAID, from uint64) (*PullResponse, error)
	// LatestRoot returns the newest signed root for ca (nil error with nil
	// root never occurs: unknown CAs return ErrUnknownCA).
	LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error)
	// CAs lists the dictionaries available, sorted.
	CAs() ([]dictionary.CAID, error)
}

// DistributionPoint is the origin of the dissemination network. CAs publish
// to it (it implements the ca.Publisher interface) and edge servers pull
// from it. Each CA's record is a dictionary.Replica: the full issuance log
// (to serve any suffix), the latest signed root, and the latest freshness
// statement, all carried by the replica's immutable snapshots — and every
// ingested message is verified by replaying it through the replica, so a
// distribution point never propagates a message whose root does not match
// its content.
//
// It is safe for concurrent use; the read path (Pull, LatestRoot) takes
// only a brief read lock on the CA map — counters are atomics and
// per-dictionary state is read through the replica's lock-free snapshots,
// so pulls from a whole RA fleet never serialize behind one mutex.
type DistributionPoint struct {
	now func() time.Time

	mu    sync.RWMutex // guards dicts (registration vs lookup) and logs
	dicts map[dictionary.CAID]*dictionary.Replica

	// Durable state tier (nil backend = in-memory only). Every verified
	// ingest is WAL-appended; every ckptEvery records the dictionary is
	// checkpointed. A reopened distribution point recovers each CA's
	// replica — including the exact signed root bytes, so /v1/root ETags
	// are stable across the restart and edges' conditional requests keep
	// returning 304. This is the §VII availability story: the origin comes
	// back from a crash without losing its update log, instead of forcing
	// every RA through the ErrAhead → full-resync path.
	backend   storage.Backend
	ckptEvery int
	logs      map[dictionary.CAID]*dpLog

	stats distCounters
}

// dpLog pairs a CA's durable log with its records-since-checkpoint count.
// Its mutex serializes (replica update, WAL append) per CA as one unit, so
// WAL order always matches apply order — without holding the
// registration lock across disk writes (PR 2 took the exclusive mutex off
// the Pull path; an fsync under dp.mu would put a disk stall back on it).
type dpLog struct {
	mu       sync.Mutex
	log      storage.Log
	appended int
}

// DefaultCheckpointEvery is the default number of WAL records between
// checkpoints for a storage-backed distribution point.
const DefaultCheckpointEvery = 64

// distCounters is the lock-free backing store for Stats.
type distCounters struct {
	issuancesIngested atomic.Int64
	freshnessIngested atomic.Int64
	pulls             atomic.Int64
}

// NewDistributionPoint creates an empty origin. now is the clock used to
// validate freshness statements on ingest (nil = time.Now).
func NewDistributionPoint(now func() time.Time) *DistributionPoint {
	return NewDistributionPointWithStorage(now, nil, 0)
}

// NewDistributionPointWithStorage creates an origin whose per-CA state is
// persisted to backend (nil = in-memory only, identical to
// NewDistributionPoint) and recovered on RegisterCA, with a checkpoint
// every checkpointEvery WAL records (0 = DefaultCheckpointEvery).
func NewDistributionPointWithStorage(now func() time.Time, backend storage.Backend, checkpointEvery int) *DistributionPoint {
	if now == nil {
		now = time.Now
	}
	if checkpointEvery <= 0 {
		checkpointEvery = DefaultCheckpointEvery
	}
	return &DistributionPoint{
		now:       now,
		dicts:     make(map[dictionary.CAID]*dictionary.Replica),
		backend:   backend,
		ckptEvery: checkpointEvery,
		logs:      make(map[dictionary.CAID]*dpLog),
	}
}

// RegisterCA announces a CA to the distribution point, providing the trust
// anchor used to verify everything the CA publishes. This models the
// CA-bootstrapping manifest of §VIII. The verifying replica uses the
// default sorted layout; CAs signing forest-layout dictionaries register
// with RegisterCAWithLayout.
func (dp *DistributionPoint) RegisterCA(ca dictionary.CAID, pub []byte) error {
	return dp.RegisterCAWithLayout(ca, pub, dictionary.LayoutSorted)
}

// RegisterCAWithLayout announces a CA whose dictionary uses the given
// commitment layout. The distribution point verifies every ingested message
// by replaying it through its own replica, and roots are layout-specific,
// so the layout here must match the CA's — the pull/sync wire protocol
// itself stays layout-agnostic (issuance logs are just serials).
func (dp *DistributionPoint) RegisterCAWithLayout(ca dictionary.CAID, pub []byte, layout dictionary.LayoutKind) error {
	if ca == "" {
		return fmt.Errorf("cdn: empty CA id")
	}
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if _, dup := dp.dicts[ca]; dup {
		return fmt.Errorf("cdn: CA %s already registered", ca)
	}
	replica := dictionary.NewReplicaWithLayout(ca, pub, layout)
	if dp.backend != nil {
		lg, err := dp.backend.Open(string(ca))
		if err != nil {
			return fmt.Errorf("cdn: open durable log for %s: %w", ca, err)
		}
		// Recovery re-verifies the persisted log against the trust anchor
		// and reinstalls the exact signed-root bytes — including the
		// signature, so the root (and its HTTP ETag) is bit-identical
		// across the restart.
		if replica, err = dictionary.RecoverReplicaLog(lg, ca, pub, layout, dp.now().Unix()); err != nil {
			lg.Close()
			return fmt.Errorf("cdn: reopen %s: %w", ca, err)
		}
		dp.logs[ca] = &dpLog{log: lg}
	}
	dp.dicts[ca] = replica
	return nil
}

// persistIngest WAL-appends a verified, state-changing ingest and
// checkpoints when the cadence is due. Caller holds dl.mu.
func (dp *DistributionPoint) persistIngest(dl *dpLog, ca dictionary.CAID, r *dictionary.Replica, msg *dictionary.IssuanceMessage, bounds []uint64) error {
	rec := dictionary.UpdateRecord{Msg: msg, Bounds: bounds}
	if err := dl.log.Append(rec.Encode()); err != nil {
		return fmt.Errorf("cdn: persist ingest for %s: %w", ca, err)
	}
	dl.appended++
	if dl.appended < dp.ckptEvery {
		return nil
	}
	if err := dl.log.Checkpoint(r.PersistentStateV2()); err != nil {
		return fmt.Errorf("cdn: checkpoint %s: %w", ca, err)
	}
	dl.appended = 0
	return nil
}

// Close releases the distribution point's durable logs (if any). Reads
// keep working from memory; further ingests must not follow.
func (dp *DistributionPoint) Close() error {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	var firstErr error
	for ca, dl := range dp.logs {
		dl.mu.Lock() // wait out any in-flight ingest on this CA
		err := dl.log.Close()
		dl.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		delete(dp.logs, ca)
	}
	return firstErr
}

// PublishIssuance ingests a CA's revocation issuance message: the
// distribution point verifies it against its own replica (so that a
// corrupted or equivocating message is rejected at the origin) and stores
// it for pulls. Implements ca.Publisher.
func (dp *DistributionPoint) PublishIssuance(msg *dictionary.IssuanceMessage) error {
	return dp.PublishIssuanceBounded(msg, nil)
}

// PublishIssuanceBounded is PublishIssuance for a message coalescing
// several insertion batches, with the batch bounds to replay it under
// (see dictionary.Replica.UpdateWithBounds). Operators use it to re-feed
// a distribution point that fell behind its CA — for example after a
// crash window in which the CA's write-ahead log committed a batch the
// origin never saw.
func (dp *DistributionPoint) PublishIssuanceBounded(msg *dictionary.IssuanceMessage, bounds []uint64) error {
	if msg == nil || msg.Root == nil {
		return fmt.Errorf("cdn: nil issuance message")
	}
	dp.mu.RLock()
	r, ok := dp.dicts[msg.Root.CA]
	dl := dp.logs[msg.Root.CA]
	dp.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCA, msg.Root.CA)
	}
	// Serialize (verify-update, WAL append) per CA so the log order always
	// matches the apply order; disk I/O happens outside dp.mu, so pulls
	// (and other CAs' ingests) never stall behind an fsync.
	if dl != nil {
		dl.mu.Lock()
		defer dl.mu.Unlock()
	}
	gen := r.Snapshot().Generation()
	if err := r.UpdateWithBounds(msg, bounds); err != nil {
		return fmt.Errorf("cdn: ingest issuance for %s: %w", msg.Root.CA, err)
	}
	// WAL the ingest when it changed state (a re-delivered identical root
	// is a verified no-op and must not grow the log).
	if dl != nil && r.Snapshot().Generation() != gen {
		if err := dp.persistIngest(dl, msg.Root.CA, r, msg, bounds); err != nil {
			return err
		}
	}
	// A new signed root restarts the freshness chain; the replica's
	// snapshot now carries its anchor as the period-0 statement.
	dp.stats.issuancesIngested.Add(1)
	return nil
}

// PublishFreshness ingests a per-∆ freshness statement. Implements
// ca.Publisher. On a storage-backed origin a state-advancing statement is
// WAL-appended as a freshness record: the WAL doubles as the replication
// log, and without the record a follower origin (or a restarted leader)
// would regress to the signed root's anchor until the next statement.
// Freshness records do not advance the checkpoint cadence — they are
// tiny, idempotent on replay, and checkpointing O(dictionary) state once
// per period with no revocation traffic would be pure churn.
func (dp *DistributionPoint) PublishFreshness(st *dictionary.FreshnessStatement) error {
	if st == nil {
		return fmt.Errorf("cdn: nil freshness statement")
	}
	dp.mu.RLock()
	r, ok := dp.dicts[st.CA]
	dl := dp.logs[st.CA]
	dp.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCA, st.CA)
	}
	if dl != nil {
		dl.mu.Lock()
		defer dl.mu.Unlock()
	}
	gen := r.Snapshot().Generation()
	if err := r.ApplyFreshness(st, dp.now().Unix()); err != nil {
		return fmt.Errorf("cdn: ingest freshness for %s: %w", st.CA, err)
	}
	if dl != nil && r.Snapshot().Generation() != gen {
		rec := dictionary.FreshnessRecord{Value: st.Value}
		if err := dl.log.Append(rec.Encode()); err != nil {
			return fmt.Errorf("cdn: persist freshness for %s: %w", st.CA, err)
		}
	}
	dp.stats.freshnessIngested.Add(1)
	return nil
}

var _ Origin = (*DistributionPoint)(nil)

// Pull implements Origin. It is the fleet's hot path: after a read-locked
// map lookup everything is atomics and snapshot reads, so concurrent
// pullers never serialize on the distribution point (the seed took the
// exclusive write lock here just to bump a counter).
func (dp *DistributionPoint) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	dp.mu.RLock()
	r, ok := dp.dicts[ca]
	dp.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCA, ca)
	}
	dp.stats.pulls.Add(1)

	// One snapshot for root, count, suffix, AND freshness: reading them
	// from separate loads can tear across a concurrent publish — a suffix
	// extending past its signed root, or a freshness statement from a
	// rotated chain paired with the old root. Either torn response would be
	// rejected by every RA and cached by the edge for a full TTL.
	snap := r.Snapshot()
	root := snap.Root()
	have := snap.Count()
	if from > have {
		return nil, fmt.Errorf("%w: from=%d, origin has %d", ErrAhead, from, have)
	}
	resp := &PullResponse{}
	if root == nil {
		// The CA has published nothing yet.
		return resp, nil
	}
	resp.Freshness = &dictionary.FreshnessStatement{CA: ca, Value: snap.Freshness()}
	suffix, err := snap.LogSuffix(from, have)
	if err != nil {
		return nil, fmt.Errorf("cdn: pull %s: %w", ca, err)
	}
	// Always include the latest root: a puller that is current still needs
	// it to detect rotation, and it makes the response self-contained.
	resp.Issuance = &dictionary.IssuanceMessage{Serials: suffix, Root: root}
	// Interior batch bounds let the puller replay the suffix under the
	// origin's batch structure (forest roots depend on it).
	resp.Bounds = snap.BatchBounds(from, have)
	return resp, nil
}

// LatestRoot implements Origin.
func (dp *DistributionPoint) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	dp.mu.RLock()
	r, ok := dp.dicts[ca]
	dp.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCA, ca)
	}
	root := r.Root()
	if root == nil {
		return nil, fmt.Errorf("cdn: %s has not published a root yet", ca)
	}
	return root, nil
}

// CAs implements Origin.
func (dp *DistributionPoint) CAs() ([]dictionary.CAID, error) {
	dp.mu.RLock()
	defer dp.mu.RUnlock()
	out := make([]dictionary.CAID, 0, len(dp.dicts))
	for ca := range dp.dicts {
		out = append(out, ca)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Stats counts distribution-point activity; experiments read it to report
// origin load.
type Stats struct {
	IssuancesIngested int
	FreshnessIngested int
	Pulls             int
}

// Stats returns a copy of the origin's counters. Each counter is read
// atomically; the copy is not a single consistent cut across counters,
// which no caller needs.
func (dp *DistributionPoint) Stats() Stats {
	return Stats{
		IssuancesIngested: int(dp.stats.issuancesIngested.Load()),
		FreshnessIngested: int(dp.stats.freshnessIngested.Load()),
		Pulls:             int(dp.stats.pulls.Load()),
	}
}
