package cdn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ritm/internal/dictionary"
	"ritm/internal/netsim"
)

// Scenario suite for the two-tier hierarchy (regions × PoPs): these tests
// prove the fan-out arithmetic the "millions of users" story rests on —
// per (ca, from) key the origin sees at most one pull per REGIONAL edge,
// no matter how many PoPs or RAs sit below — and that the contract
// survives unknown-CA storms, injected latency, partitions, and
// regional-edge restarts.

// countingOrigin counts upstream pulls, total and per CA.
type countingOrigin struct {
	Origin
	pulls atomic.Int64
	mu    sync.Mutex
	byCA  map[dictionary.CAID]int
}

func newCountingOrigin(o Origin) *countingOrigin {
	return &countingOrigin{Origin: o, byCA: make(map[dictionary.CAID]int)}
}

func (c *countingOrigin) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	c.pulls.Add(1)
	c.mu.Lock()
	c.byCA[ca]++
	c.mu.Unlock()
	return c.Origin.Pull(ca, from)
}

func (c *countingOrigin) caPulls(ca dictionary.CAID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byCA[ca]
}

// delayOrigin injects wall-clock latency on every pull — the netsim
// region profile scaled down so the suite stays fast while preserving the
// ordering (far regions slower than near ones).
type delayOrigin struct {
	Origin
	delay time.Duration
}

func (d *delayOrigin) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	time.Sleep(d.delay)
	return d.Origin.Pull(ca, from)
}

// partitionOrigin fails every pull while partitioned.
type partitionOrigin struct {
	Origin
	partitioned atomic.Bool
}

var errPartitioned = errors.New("link partitioned")

func (p *partitionOrigin) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	if p.partitioned.Load() {
		return nil, errPartitioned
	}
	return p.Origin.Pull(ca, from)
}

func (p *partitionOrigin) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	if p.partitioned.Load() {
		return nil, errPartitioned
	}
	return p.Origin.LatestRoot(ca)
}

// simRA is a minimal revocation agent for fan-out accounting: it tracks
// the from-offset it would pull at and advances it from served roots,
// which is all the cache arithmetic depends on.
type simRA struct {
	pop  Origin
	from uint64
}

func (s *simRA) sync(ca dictionary.CAID) error {
	resp, err := s.pop.Pull(ca, s.from)
	if err != nil {
		return err
	}
	if resp.Issuance != nil && resp.Issuance.Root != nil {
		s.from = resp.Issuance.Root.N
	}
	return nil
}

// hierarchyEnv is R regions × P PoPs × N RAs per PoP over one virtual-
// clock origin.
type hierarchyEnv struct {
	tc     *testCA
	origin *countingOrigin
	topo   *Topology
	ras    []*simRA // region-major: ras[((r*P)+p)*N + i]
	perPoP int
}

func newHierarchy(t *testing.T, regions, popsPerRegion, rasPerPoP int, cfg TopologyConfig) *hierarchyEnv {
	t.Helper()
	tc := newTestCA(t, "CA1")
	origin := newCountingOrigin(tc.dp)
	cfg.Regions = regions
	cfg.PoPsPerRegion = popsPerRegion
	if cfg.Now == nil {
		cfg.Now = tc.clock.now
	}
	topo, err := NewTopology(origin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := &hierarchyEnv{tc: tc, origin: origin, topo: topo, perPoP: rasPerPoP}
	for r := 0; r < regions; r++ {
		for p := 0; p < popsPerRegion; p++ {
			for i := 0; i < rasPerPoP; i++ {
				env.ras = append(env.ras, &simRA{pop: topo.PoP(r, p)})
			}
		}
	}
	return env
}

// cycle publishes one batch, advances the clock by delta, and syncs every
// RA concurrently — one ∆ boundary of the whole deployment.
func (e *hierarchyEnv) cycle(t *testing.T, revocations int, delta time.Duration) {
	t.Helper()
	if revocations > 0 {
		e.tc.revoke(t, revocations)
	}
	e.tc.clock.advance(delta)
	errs := make([]error, len(e.ras))
	var wg sync.WaitGroup
	for i, ra := range e.ras {
		wg.Add(1)
		go func(i int, ra *simRA) {
			defer wg.Done()
			errs[i] = ra.sync("CA1")
		}(i, ra)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("RA %d: %v", i, err)
		}
	}
}

// TestHierarchyFanOutContract is the core arithmetic: R regions × P PoPs
// × N RAs advancing in lockstep must cost the origin at most one pull per
// (ca, from) per REGIONAL edge — origin load O(R), independent of P and
// N — with tier hit rates matching the (N−1)/N and (P−1)/P floors.
func TestHierarchyFanOutContract(t *testing.T) {
	const (
		regions = 2
		pops    = 3
		ras     = 4 // per PoP → 24 fleet-wide
		cycles  = 15
	)
	env := newHierarchy(t, regions, pops, ras, TopologyConfig{
		RegionalTTL: 30 * time.Second,
		PoPTTL:      30 * time.Second,
	})
	for i := 0; i < cycles; i++ {
		env.cycle(t, 20, 10*time.Second)
	}

	// The fleet advanced through `cycles` distinct (ca, from) keys; each
	// key may reach the origin once per regional edge.
	if got, want := int(env.origin.pulls.Load()), regions*cycles; got > want {
		t.Errorf("origin saw %d pulls for %d keys × %d regions, want ≤ %d (fan-out leaked)",
			got, cycles, regions, want)
	}

	st := env.topo.Stats()
	popTotal := st.PoP.Hits + st.PoP.Misses + st.PoP.CollapsedPulls
	if want := regions * pops * ras * cycles; popTotal != want {
		t.Fatalf("PoP tier served %d pulls, want %d", popTotal, want)
	}
	// Each PoP misses ≤ once per key: everything else is a hit or joins
	// the in-flight fetch.
	if st.PoP.Misses > regions*pops*cycles {
		t.Errorf("PoP misses = %d, want ≤ %d (one per PoP per key)", st.PoP.Misses, regions*pops*cycles)
	}
	if hr, floor := HitRate(st.PoP), float64(ras-1)/float64(ras)-0.01; hr < floor {
		t.Errorf("PoP-tier hit rate = %.3f, want ≥ %.3f", hr, floor)
	}
	// The regional tier only sees PoP misses; of those, one per key per
	// region goes through.
	regTotal := st.Regional.Hits + st.Regional.Misses + st.Regional.CollapsedPulls
	if regTotal != st.PoP.Misses {
		t.Errorf("regional tier served %d pulls, PoP tier missed %d — tiers disagree", regTotal, st.PoP.Misses)
	}
	if st.Regional.Misses > regions*cycles {
		t.Errorf("regional misses = %d, want ≤ %d", st.Regional.Misses, regions*cycles)
	}
	// Per-region roll-up covers the fleet: each region's PoP tier served
	// its P×N share.
	for r, rs := range st.PerRegion {
		if total := rs.PoP.Hits + rs.PoP.Misses + rs.PoP.CollapsedPulls; total != pops*ras*cycles {
			t.Errorf("region %d PoP tier served %d, want %d", r, total, pops*ras*cycles)
		}
	}
	// Every RA converged on the same final count.
	want := uint64(cycles * 20)
	for i, ra := range env.ras {
		if ra.from != want {
			t.Errorf("RA %d at count %d, want %d", i, ra.from, want)
		}
	}
}

// TestHierarchyFanOutIndependentOfRACount doubles the fleet behind the
// same topology shape and asserts origin load does not move: the claim is
// O(regions), not "small-ish".
func TestHierarchyFanOutIndependentOfRACount(t *testing.T) {
	const (
		regions = 2
		pops    = 2
		cycles  = 8
	)
	originPulls := func(rasPerPoP int) int {
		env := newHierarchy(t, regions, pops, rasPerPoP, TopologyConfig{
			RegionalTTL: 30 * time.Second,
			PoPTTL:      30 * time.Second,
		})
		for i := 0; i < cycles; i++ {
			env.cycle(t, 10, 10*time.Second)
		}
		return int(env.origin.pulls.Load())
	}
	small, large := originPulls(2), originPulls(16)
	if small > regions*cycles || large > regions*cycles {
		t.Errorf("origin pulls small=%d large=%d, want both ≤ %d", small, large, regions*cycles)
	}
	if large > small {
		t.Errorf("origin pulls grew with RA count: %d RAs/PoP → %d pulls, %d RAs/PoP → %d pulls",
			2, small, 16, large)
	}
}

// TestHierarchyNegativeCacheBoundsUnknownCAStorm: a fleet misconfigured
// to poll a CA the origin does not carry must cost the origin at most one
// unknown-CA lookup per regional edge per negative TTL — bounded by the
// TTL clock, not the fleet's request rate.
func TestHierarchyNegativeCacheBoundsUnknownCAStorm(t *testing.T) {
	const (
		regions = 2
		pops    = 3
		negTTL  = 30 * time.Second
	)
	env := newHierarchy(t, regions, pops, 0, TopologyConfig{
		RegionalTTL: 10 * time.Second,
		PoPTTL:      10 * time.Second,
		NegativeTTL: negTTL,
	})
	const ghost = dictionary.CAID("GhostCA")

	storm := func(requestsPerPoP int) {
		t.Helper()
		for r := 0; r < regions; r++ {
			for p := 0; p < pops; p++ {
				for i := 0; i < requestsPerPoP; i++ {
					if _, err := env.topo.PoP(r, p).Pull(ghost, 0); !errors.Is(err, ErrUnknownCA) {
						t.Fatalf("storm pull: err = %v, want ErrUnknownCA", err)
					}
				}
			}
		}
	}

	// Window 1: 50 requests per PoP (300 fleet-wide). The first request
	// per region walks through to the origin; everyone after is answered
	// from a tier's negative cache.
	storm(50)
	window1 := env.origin.caPulls(ghost)
	if window1 > regions {
		t.Errorf("origin saw %d unknown-CA lookups in one window, want ≤ %d (one per regional edge)",
			window1, regions)
	}

	// Still inside the TTL: another 50/PoP costs the origin nothing.
	env.tc.clock.advance(negTTL / 2)
	storm(50)
	if got := env.origin.caPulls(ghost); got != window1 {
		t.Errorf("origin lookups grew within the negative TTL: %d → %d", window1, got)
	}

	// Window 2 (TTL expired): one more bounded batch — lookups scale with
	// elapsed windows, not with the 900 requests issued so far.
	env.tc.clock.advance(negTTL)
	storm(50)
	if got := env.origin.caPulls(ghost); got > 2*regions {
		t.Errorf("origin saw %d unknown-CA lookups over 2 windows, want ≤ %d", got, 2*regions)
	}

	st := env.topo.Stats()
	if st.PoP.NegativeHits == 0 || st.Regional.NegativeHits == 0 {
		t.Errorf("negative hits: pop=%d regional=%d, want both > 0", st.PoP.NegativeHits, st.Regional.NegativeHits)
	}
	// The storm must not be misread as upstream failure: negative hits
	// are their own ledger line.
	if total := st.PoP.NegativeHits + st.PoP.Errors; total != regions*pops*150 {
		t.Errorf("PoP tier accounted %d of %d storm requests", total, regions*pops*150)
	}

	// The CA comes online: once the negative TTL lapses the hierarchy
	// forgets the misconfiguration on its own.
	if err := env.tc.dp.RegisterCA(ghost, env.tc.auth.PublicKey()); err != nil {
		t.Fatal(err)
	}
	env.tc.clock.advance(negTTL + time.Second)
	if _, err := env.topo.PoP(0, 0).Pull(ghost, 0); err != nil {
		t.Errorf("pull after CA registration and TTL expiry: %v", err)
	}
}

// TestHierarchyInjectedLatency wires netsim's region profiles into the
// topology links (scaled down 100×) and stampedes every key: slow links
// must change only wall-clock time, never the fan-out arithmetic — the
// singleflight window just stays open longer.
func TestHierarchyInjectedLatency(t *testing.T) {
	const (
		regions = 2
		pops    = 2
		ras     = 8
		cycles  = 5
	)
	profiles := netsim.Regions()
	if len(profiles) < regions {
		t.Fatalf("netsim models %d regions, need ≥ %d", len(profiles), regions)
	}
	env := newHierarchy(t, regions, pops, ras, TopologyConfig{
		RegionalTTL: 30 * time.Second,
		PoPTTL:      30 * time.Second,
		Wrap: func(tier Tier, region, pop int, up Origin) Origin {
			p := profiles[region]
			switch tier {
			case TierRegional:
				return &delayOrigin{Origin: up, delay: p.OriginRTT / 100}
			default:
				return &delayOrigin{Origin: up, delay: p.EdgeRTT / 100}
			}
		},
	})
	for i := 0; i < cycles; i++ {
		env.cycle(t, 10, 10*time.Second)
	}
	if got, want := int(env.origin.pulls.Load()), regions*cycles; got > want {
		t.Errorf("origin saw %d pulls under latency, want ≤ %d", got, want)
	}
	st := env.topo.Stats()
	// With 8 RAs stampeding each PoP over a slow link, collapsed pulls are
	// the mechanism that holds the contract — they must appear.
	if st.PoP.CollapsedPulls == 0 {
		t.Error("no singleflight collapses under injected latency — stampede reached the upstream")
	}
	want := uint64(cycles * 10)
	for i, ra := range env.ras {
		if ra.from != want {
			t.Errorf("RA %d at count %d, want %d", i, ra.from, want)
		}
	}
}

// TestHierarchyPartitionedRegionServesStale: severing one region's
// regional→origin link must leave that region serving cached entries
// (within TTL) while the other region proceeds, and heal cleanly.
func TestHierarchyPartitionedRegionServesStale(t *testing.T) {
	const (
		regions = 2
		pops    = 2
		ras     = 3
	)
	links := make([]*partitionOrigin, regions)
	env := newHierarchy(t, regions, pops, ras, TopologyConfig{
		RegionalTTL: 60 * time.Second,
		PoPTTL:      30 * time.Second,
		Wrap: func(tier Tier, region, pop int, up Origin) Origin {
			if tier == TierRegional {
				links[region] = &partitionOrigin{Origin: up}
				return links[region]
			}
			return up
		},
	})
	env.cycle(t, 10, 10*time.Second) // key (CA1, 0): fleet advances to 10
	env.cycle(t, 0, 10*time.Second)  // key (CA1, 10): the fleet's CURRENT key, now cached tier-wide

	// Partition region 0 from the origin.
	links[0].partitioned.Store(true)

	// Re-pulls at the current count inside the PoP TTL are absorbed
	// locally: the partition is invisible — this is the §V staleness
	// story, a severed CDN tier degrades to bounded-stale service, which
	// the client-side 2∆ policy turns into interruption only after TWO
	// missed periods.
	for i, ra := range env.ras {
		if err := ra.sync("CA1"); err != nil {
			t.Fatalf("RA %d during partition (cached key): %v", i, err)
		}
	}

	// Every cached copy of the current key ages out (past the regional
	// TTL); new revocations appear. Region 0's RAs now fail through to
	// the severed link, region 1 proceeds to the new count. (Errors are
	// expected in region 0 — assert the split, not uniform success.)
	env.tc.revoke(t, 10)
	env.tc.clock.advance(61 * time.Second)
	perRegion := pops * ras // RAs per region, region-major layout
	for i, ra := range env.ras {
		err := ra.sync("CA1")
		inBroken := i < perRegion
		if inBroken && err == nil {
			t.Errorf("RA %d in partitioned region synced through a severed link", i)
		}
		if !inBroken && err != nil {
			t.Errorf("RA %d in healthy region failed: %v", i, err)
		}
	}
	for i, ra := range env.ras[perRegion:] {
		if ra.from != 20 {
			t.Errorf("healthy-region RA %d at count %d, want 20", i, ra.from)
		}
	}

	// Heal: the next sync round converges everyone, no operator action.
	links[0].partitioned.Store(false)
	env.cycle(t, 0, time.Second)
	for i, ra := range env.ras {
		if ra.from != 20 {
			t.Errorf("RA %d at count %d after heal, want 20", i, ra.from)
		}
	}
}

// TestHierarchyRegionalRestartRecovery: wiping a regional edge's cache
// (process restart) must cost the origin at most one extra pull per live
// key from that region — the PoP tier keeps absorbing its share, and the
// other region is untouched.
func TestHierarchyRegionalRestartRecovery(t *testing.T) {
	const (
		regions = 2
		pops    = 3
		ras     = 4
	)
	env := newHierarchy(t, regions, pops, ras, TopologyConfig{
		RegionalTTL: 40 * time.Second,
		PoPTTL:      20 * time.Second,
	})
	env.cycle(t, 10, 10*time.Second) // key (CA1, 0): fleet advances to 10
	env.cycle(t, 0, 10*time.Second)  // key (CA1, 10) cached tier-wide
	baseline := int(env.origin.pulls.Load())

	env.topo.RestartRegional(0)

	// Within the PoP TTL the restart is invisible: PoPs serve from their
	// own caches and the cold regional is never consulted.
	for i, ra := range env.ras {
		if err := ra.sync("CA1"); err != nil {
			t.Fatalf("RA %d right after restart: %v", i, err)
		}
	}
	if got := int(env.origin.pulls.Load()); got != baseline {
		t.Errorf("origin pulls %d → %d while PoP caches were warm", baseline, got)
	}

	// PoP entries expire; the fleet re-pulls the live key. Region 0's
	// PoPs miss into the cold regional, which re-warms with ONE origin
	// pull; region 1's regional still holds the key and absorbs its own.
	env.tc.clock.advance(21 * time.Second)
	for i, ra := range env.ras {
		if err := ra.sync("CA1"); err != nil {
			t.Fatalf("RA %d after PoP expiry: %v", i, err)
		}
	}
	if got := int(env.origin.pulls.Load()); got > baseline+1 {
		t.Errorf("regional restart cost %d origin pulls, want ≤ 1", got-baseline)
	}

	// Life goes on: the next ∆ boundary (spaced past the regional TTL so
	// every pre-restart entry is gone) obeys the steady-state bound.
	before := int(env.origin.pulls.Load())
	env.cycle(t, 10, 41*time.Second)
	if got := int(env.origin.pulls.Load()) - before; got > regions {
		t.Errorf("post-restart cycle cost %d origin pulls, want ≤ %d", got, regions)
	}
	want := uint64(20)
	for i, ra := range env.ras {
		if ra.from != want {
			t.Errorf("RA %d at count %d, want %d", i, ra.from, want)
		}
	}
}

// TestTopologyValidation exercises construction errors and the Wrap
// callback's contract (tier names, index ranges, upstream identity).
func TestTopologyValidation(t *testing.T) {
	tc := newTestCA(t, "CA1")
	if _, err := NewTopology(nil, TopologyConfig{Regions: 1, PoPsPerRegion: 1}); err == nil {
		t.Error("nil origin accepted")
	}
	for _, bad := range []TopologyConfig{
		{Regions: 0, PoPsPerRegion: 2},
		{Regions: 2, PoPsPerRegion: 0},
		{Regions: -1, PoPsPerRegion: -1},
	} {
		if _, err := NewTopology(tc.dp, bad); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}

	type wrapCall struct {
		tier        Tier
		region, pop int
	}
	var calls []wrapCall
	topo, err := NewTopology(tc.dp, TopologyConfig{
		Regions:       2,
		PoPsPerRegion: 2,
		PoPTTL:        time.Minute,
		RegionalTTL:   time.Minute,
		Now:           tc.clock.now,
		Wrap: func(tier Tier, region, pop int, up Origin) Origin {
			calls = append(calls, wrapCall{tier, region, pop})
			if tier == TierRegional && up != Origin(tc.dp) {
				t.Errorf("regional wrap upstream is not the origin")
			}
			return up
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []wrapCall{
		{TierRegional, 0, -1}, {TierPoP, 0, 0}, {TierPoP, 0, 1},
		{TierRegional, 1, -1}, {TierPoP, 1, 0}, {TierPoP, 1, 1},
	}
	if fmt.Sprint(calls) != fmt.Sprint(want) {
		t.Errorf("wrap calls = %v, want %v", calls, want)
	}
	if topo.Regions() != 2 || topo.PoPsPerRegion() != 2 {
		t.Errorf("shape = %d×%d, want 2×2", topo.Regions(), topo.PoPsPerRegion())
	}
	if TierRegional.String() != "regional" || TierPoP.String() != "pop" {
		t.Errorf("tier names = %q/%q", TierRegional.String(), TierPoP.String())
	}
}

// TestTopologyStatsRollup cross-checks the roll-up against the individual
// edges it summarizes.
func TestTopologyStatsRollup(t *testing.T) {
	env := newHierarchy(t, 2, 2, 3, TopologyConfig{
		RegionalTTL: time.Minute,
		PoPTTL:      time.Minute,
	})
	for i := 0; i < 4; i++ {
		env.cycle(t, 5, 10*time.Second)
	}
	st := env.topo.Stats()
	var popSum, regSum EdgeStats
	for r := 0; r < env.topo.Regions(); r++ {
		regSum = regSum.add(env.topo.Regional(r).Stats())
		var regionPoPs EdgeStats
		for p := 0; p < env.topo.PoPsPerRegion(); p++ {
			regionPoPs = regionPoPs.add(env.topo.PoP(r, p).Stats())
		}
		popSum = popSum.add(regionPoPs)
		if st.PerRegion[r].PoP != regionPoPs {
			t.Errorf("region %d PoP roll-up = %+v, edges say %+v", r, st.PerRegion[r].PoP, regionPoPs)
		}
	}
	if st.PoP != popSum {
		t.Errorf("PoP tier roll-up = %+v, edges say %+v", st.PoP, popSum)
	}
	if st.Regional != regSum {
		t.Errorf("regional tier roll-up = %+v, edges say %+v", st.Regional, regSum)
	}
	if HitRate(EdgeStats{}) != 0 {
		t.Error("HitRate of zero traffic must be 0, not NaN")
	}
}
