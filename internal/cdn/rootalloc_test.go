package cdn

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// discardResponseWriter reuses one header map and drops the body, so the
// measurement below counts the handler's allocations, not recorder
// bookkeeping.
type discardResponseWriter struct {
	h    http.Header
	code int
}

func (w *discardResponseWriter) Header() http.Header         { return w.h }
func (w *discardResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *discardResponseWriter) WriteHeader(code int)        { w.code = code }

// TestRootConditionalAllocsPinned pins the allocation-free root
// revalidation path: a conditional GET /v1/root that ends in 304 — the
// steady state for every downstream tier polling between rotations — must
// cost at most 5 allocs/op at the handler level, on both the If-None-Match
// and the If-Modified-Since branch. The budget covers mux routing; the
// handler itself contributes nothing (validators, header values, and the
// signing time are memoized per root version in rootRep, and query/ETag
// parsing never allocates).
func TestRootConditionalAllocsPinned(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 3)
	// The date validator only counts once its second has fully elapsed.
	tc.clock.advance(2 * time.Second)
	h := NewHandler(tc.dp, HandlerOptions{Now: tc.clock.now})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/root?ca=CA1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("unconditional GET: %d", rec.Code)
	}
	etag := rec.Header().Get("ETag")
	lastMod := rec.Header().Get("Last-Modified")
	if etag == "" || lastMod == "" {
		t.Fatalf("missing validators: etag=%q last-modified=%q", etag, lastMod)
	}

	branches := []struct {
		name, header, value string
	}{
		{"IfNoneMatch", "If-None-Match", etag},
		{"IfModifiedSince", "If-Modified-Since", lastMod},
	}
	for _, br := range branches {
		t.Run(br.name, func(t *testing.T) {
			req := httptest.NewRequest("GET", "/v1/root?ca=CA1", nil)
			req.Header.Set(br.header, br.value)
			w := &discardResponseWriter{h: make(http.Header, 8)}
			h.ServeHTTP(w, req)
			if w.code != http.StatusNotModified {
				t.Fatalf("conditional GET with %s: %d, want 304", br.header, w.code)
			}
			if allocs := testing.AllocsPerRun(500, func() {
				w.code = 0
				h.ServeHTTP(w, req)
			}); allocs > 5 {
				t.Errorf("304 via %s allocs/op = %.1f, want ≤ 5", br.header, allocs)
			}
			if w.code != http.StatusNotModified {
				t.Fatalf("measured requests stopped returning 304 (%d)", w.code)
			}
		})
	}
}
