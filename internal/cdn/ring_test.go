package cdn

import (
	"fmt"
	"testing"

	"ritm/internal/dictionary"
)

func TestRingDeterministicAcrossInstances(t *testing.T) {
	// Every edge, RA, and CA must compute the same CA→shard map from the
	// shard count alone — two independently built rings must agree on
	// every id.
	a, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		ca := dictionary.CAID(fmt.Sprintf("CA-%04d", i))
		if a.ShardFor(ca) != b.ShardFor(ca) {
			t.Fatalf("rings disagree on %s: %d vs %d", ca, a.ShardFor(ca), b.ShardFor(ca))
		}
	}
}

func TestRingBalance(t *testing.T) {
	const shards, cas = 4, 4000
	ring, err := NewRing(shards)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for i := 0; i < cas; i++ {
		s := ring.ShardFor(dictionary.CAID(fmt.Sprintf("CA-%05d", i)))
		if s < 0 || s >= shards {
			t.Fatalf("ShardFor out of range: %d", s)
		}
		counts[s]++
	}
	// 64 vnodes/shard keeps max/mean imbalance modest; assert a loose
	// bound so the test pins "balanced", not a hash accident.
	mean := cas / shards
	for s, n := range counts {
		if n < mean/2 || n > mean*2 {
			t.Errorf("shard %d owns %d of %d CAs (mean %d) — ring is unbalanced", s, n, cas, mean)
		}
	}
}

func TestRingStableUnderGrowth(t *testing.T) {
	// Consistent hashing's point: adding a shard moves ~1/(n+1) of the
	// CAs, everything else stays put (followers keep their replicated
	// state).
	small, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	large, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	const cas = 2000
	moved := 0
	for i := 0; i < cas; i++ {
		ca := dictionary.CAID(fmt.Sprintf("CA-%05d", i))
		if small.ShardFor(ca) != large.ShardFor(ca) {
			moved++
		}
	}
	// Expected ~1/5 = 400; a naive mod-N hash would move ~4/5 = 1600.
	if moved > cas/2 {
		t.Errorf("adding one shard moved %d of %d CAs — not consistent hashing", moved, cas)
	}
	if moved == 0 {
		t.Error("adding a shard moved nothing — ring ignores shard count")
	}
}

func TestRingValidation(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewRing(n); err == nil {
			t.Errorf("NewRing(%d) accepted", n)
		}
	}
	one, err := NewRing(1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Shards() != 1 || one.ShardFor("anything") != 0 {
		t.Error("single-shard ring must route everything to shard 0")
	}
}
