package cdn

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ritm/internal/ca"
	"ritm/internal/serial"
)

// gzipEnv is a distribution point with a large enough history that pull
// bodies clear the compression threshold, served with Gzip enabled.
func gzipEnv(t *testing.T, opts HandlerOptions) (*httptest.Server, *ca.CA) {
	t.Helper()
	dp := NewDistributionPoint(nil)
	authority, err := ca.New(ca.Config{ID: "CA1", Delta: 10 * time.Second, Publisher: dp})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.RegisterCA("CA1", authority.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := authority.PublishRoot(); err != nil {
		t.Fatal(err)
	}
	gen := serial.NewGenerator(0x6219, nil)
	for i := 0; i < 4; i++ {
		if _, err := authority.Revoke(gen.NextN(100)...); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewHandler(dp, opts))
	t.Cleanup(srv.Close)
	return srv, authority
}

// rawGet fetches path with an explicit Accept-Encoding (disabling the
// transport's transparent decompression) and returns the raw response.
func rawGet(t *testing.T, url, acceptEncoding string, extra http.Header) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acceptEncoding != "" {
		req.Header.Set("Accept-Encoding", acceptEncoding)
	}
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	tr := &http.Transport{DisableCompression: true}
	defer tr.CloseIdleConnections()
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestGzipPullRoundTrip(t *testing.T) {
	srv, _ := gzipEnv(t, HandlerOptions{Gzip: true})

	// 1. The wire really is compressed for a gzip-accepting client, with
	// the Vary contract for shared caches.
	resp := rawGet(t, srv.URL+"/v1/pull?ca=CA1&from=0", "gzip", nil)
	defer resp.Body.Close()
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", ce)
	}
	if vary := resp.Header.Get("Vary"); vary != "Accept-Encoding" {
		t.Fatalf("Vary = %q, want Accept-Encoding", vary)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}

	// 2. An identity client gets the same bytes uncompressed — and still
	// the Vary header, so a shared cache keys the two apart.
	resp2 := rawGet(t, srv.URL+"/v1/pull?ca=CA1&from=0", "identity", nil)
	defer resp2.Body.Close()
	if ce := resp2.Header.Get("Content-Encoding"); ce != "" {
		t.Fatalf("identity client got Content-Encoding %q", ce)
	}
	if vary := resp2.Header.Get("Vary"); vary != "Accept-Encoding" {
		t.Fatalf("identity Vary = %q, want Accept-Encoding", vary)
	}
	identity, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compressed, identity) {
		t.Fatal("gzip and identity representations decode to different bytes")
	}

	// 3. The HTTP client round-trips transparently (Go's transport
	// advertises gzip and decompresses): the decoded response is intact.
	client := &HTTPClient{BaseURL: srv.URL}
	pr, err := client.Pull("CA1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Issuance == nil || len(pr.Issuance.Serials) != 400 || pr.Issuance.Root.N != 400 {
		t.Fatalf("pull through gzip: %d serials", len(pr.Issuance.Serials))
	}
	// Interior split points only: the final count rides on the signed root.
	if len(pr.Bounds) != 3 {
		t.Fatalf("pull through gzip: %d bounds, want 3", len(pr.Bounds))
	}
}

func TestGzipOffByDefault(t *testing.T) {
	srv, _ := gzipEnv(t, HandlerOptions{})
	resp := rawGet(t, srv.URL+"/v1/pull?ca=CA1&from=0", "gzip", nil)
	defer resp.Body.Close()
	if ce := resp.Header.Get("Content-Encoding"); ce != "" {
		t.Fatalf("compression off by default, got Content-Encoding %q", ce)
	}
	if vary := resp.Header.Get("Vary"); vary != "" {
		t.Fatalf("Vary = %q with compression off", vary)
	}
}

func TestGzipSkipsSmallBodies(t *testing.T) {
	srv, _ := gzipEnv(t, HandlerOptions{Gzip: true})
	// A current puller's suffix is a few dozen bytes: far below the
	// threshold, served identity even to a gzip-accepting client.
	resp := rawGet(t, srv.URL+"/v1/pull?ca=CA1&from=400", "gzip", nil)
	defer resp.Body.Close()
	if ce := resp.Header.Get("Content-Encoding"); ce != "" {
		t.Fatalf("small body compressed: Content-Encoding %q", ce)
	}
	if vary := resp.Header.Get("Vary"); vary != "Accept-Encoding" {
		t.Fatalf("small-body Vary = %q: the representation still depends on Accept-Encoding", vary)
	}
	// q=0 disables gzip even for large bodies.
	resp2 := rawGet(t, srv.URL+"/v1/pull?ca=CA1&from=0", "gzip;q=0", nil)
	defer resp2.Body.Close()
	if ce := resp2.Header.Get("Content-Encoding"); ce != "" {
		t.Fatalf("gzip;q=0 still compressed: %q", ce)
	}
}

// TestGzipRootPerEncodingETag forces roots over the threshold (GzipMinSize
// 1) to pin the per-encoding validator story: the gzip representation
// carries a "-gzip" ETag variant, and conditional requests revalidate with
// either variant.
func TestGzipRootPerEncodingETag(t *testing.T) {
	srv, _ := gzipEnv(t, HandlerOptions{Gzip: true, GzipMinSize: 1})

	resp := rawGet(t, srv.URL+"/v1/root?ca=CA1", "gzip", nil)
	resp.Body.Close()
	gzETag := resp.Header.Get("ETag")
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatal("root not compressed at GzipMinSize=1")
	}
	if !bytes.HasSuffix([]byte(gzETag), []byte(`-gzip"`)) {
		t.Fatalf("gzip representation ETag = %q, want -gzip variant", gzETag)
	}

	resp2 := rawGet(t, srv.URL+"/v1/root?ca=CA1", "identity", nil)
	resp2.Body.Close()
	idETag := resp2.Header.Get("ETag")
	if idETag == gzETag {
		t.Fatal("identity and gzip representations share a strong ETag")
	}

	// Revalidation works with either representation's validator, from
	// either kind of client.
	for _, tc := range []struct{ inm, ae string }{
		{gzETag, "gzip"}, {idETag, "gzip"}, {gzETag, "identity"}, {idETag, "identity"},
	} {
		resp3 := rawGet(t, srv.URL+"/v1/root?ca=CA1", tc.ae, http.Header{"If-None-Match": {tc.inm}})
		resp3.Body.Close()
		if resp3.StatusCode != http.StatusNotModified {
			t.Errorf("INM %q with Accept-Encoding %q: status %d, want 304", tc.inm, tc.ae, resp3.StatusCode)
		}
	}

	// The HTTPClient's validator cache keeps working through compression:
	// two LatestRoot calls return byte-identical roots (the second via a
	// 304 on the variant validator).
	client := &HTTPClient{BaseURL: srv.URL}
	r1, err := client.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := client.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatal("conditional re-fetch through gzip returned a different root")
	}
}
