package cdn

import (
	"fmt"
	"sync"
	"time"

	"ritm/internal/dictionary"
)

// EdgeServer replicates an upstream Origin (the distribution point, or
// another edge in a hierarchy) with a pull-through TTL cache, the dominant
// CDN communication paradigm (§II "Content-Delivery Network"). A TTL of
// zero disables caching entirely, which is the worst-case configuration the
// paper measures in Fig 5 ("the content needs to be fetched from the origin
// server for every request").
//
// The cache key is (CA, from): two RAs at the same count receive the same
// bytes, which is what makes CDN dissemination scale with the number of
// RAs. Entries expire after the TTL, bounding staleness; the client-side 2∆
// policy tolerates exactly one period of such staleness (§V).
type EdgeServer struct {
	upstream Origin
	ttl      time.Duration
	now      func() time.Time

	mu    sync.Mutex
	cache map[edgeKey]*edgeEntry
	stats EdgeStats
}

type edgeKey struct {
	ca   dictionary.CAID
	from uint64
}

type edgeEntry struct {
	resp    *PullResponse
	fetched time.Time
}

// NewEdgeServer creates an edge server caching upstream responses for ttl.
// A zero ttl disables caching. now is the cache clock (nil = time.Now).
func NewEdgeServer(upstream Origin, ttl time.Duration, now func() time.Time) *EdgeServer {
	if now == nil {
		now = time.Now
	}
	return &EdgeServer{
		upstream: upstream,
		ttl:      ttl,
		now:      now,
		cache:    make(map[edgeKey]*edgeEntry),
	}
}

var _ Origin = (*EdgeServer)(nil)

// Pull implements Origin with pull-through caching.
func (e *EdgeServer) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	key := edgeKey{ca: ca, from: from}
	now := e.now()

	if e.ttl > 0 {
		e.mu.Lock()
		if ent, ok := e.cache[key]; ok && now.Sub(ent.fetched) < e.ttl {
			e.stats.Hits++
			e.stats.BytesServed += int64(ent.resp.Size())
			resp := ent.resp
			e.mu.Unlock()
			return resp, nil
		}
		e.mu.Unlock()
	}

	resp, err := e.upstream.Pull(ca, from)
	if err != nil {
		return nil, fmt.Errorf("edge pull: %w", err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Misses++
	e.stats.BytesServed += int64(resp.Size())
	e.stats.BytesFetched += int64(resp.Size())
	if e.ttl > 0 {
		e.cache[key] = &edgeEntry{resp: resp, fetched: now}
	}
	return resp, nil
}

// LatestRoot implements Origin; roots are never cached so that consistency
// checking always observes the origin's current view (stale roots would
// produce false equivocation alarms).
func (e *EdgeServer) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	return e.upstream.LatestRoot(ca)
}

// CAs implements Origin.
func (e *EdgeServer) CAs() ([]dictionary.CAID, error) { return e.upstream.CAs() }

// Flush drops every cached entry (operator action, or tests moving virtual
// time backwards).
func (e *EdgeServer) Flush() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = make(map[edgeKey]*edgeEntry)
}

// EdgeStats counts edge-server activity.
type EdgeStats struct {
	Hits         int
	Misses       int
	BytesServed  int64 // toward RAs
	BytesFetched int64 // from upstream
}

// Stats returns a copy of the edge's counters.
func (e *EdgeServer) Stats() EdgeStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}
