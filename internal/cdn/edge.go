package cdn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ritm/internal/dictionary"
)

// PullMeta describes the cache disposition of a served pull response: the
// serving cache's TTL (zero when the server does not cache) and how long
// the entry has been sitting in that cache (zero on a miss). The HTTP
// layer derives the Cache-Control: max-age and Age headers from it, so a
// real CDN in front of an edge inherits the edge's freshness contract
// instead of heuristic caching.
type PullMeta struct {
	TTL time.Duration
	Age time.Duration
	// NegativeTTL is the serving cache's negative TTL (0 = negative
	// caching disabled). On an ErrUnknownCA response the HTTP layer
	// exports it as the error's max-age, so a front CDN absorbs an
	// unknown-CA storm for the same window the edge itself would.
	NegativeTTL time.Duration
}

// MetaOrigin is an Origin that reports cache metadata with each pull;
// EdgeServer implements it, and the HTTP handler upgrades to it when
// available.
type MetaOrigin interface {
	Origin
	PullWithMeta(ca dictionary.CAID, from uint64) (*PullResponse, PullMeta, error)
	// NegativeTTL reports the serving cache's unknown-CA negative TTL
	// (0 = disabled); the HTTP layer exports it on error responses of
	// endpoints that have no per-pull metadata (LatestRoot).
	NegativeTTL() time.Duration
}

// defaultEdgeMaxEntries bounds the edge cache when the operator does not
// choose a limit. One entry per (CA, from) pair is live at a time per RA
// cohort, so even large multi-shard fleets stay far below this.
const defaultEdgeMaxEntries = 4096

// EdgeServer replicates an upstream Origin (the distribution point, or
// another edge in a hierarchy) with a pull-through TTL cache, the dominant
// CDN communication paradigm (§II "Content-Delivery Network"). A TTL of
// zero disables caching entirely, which is the worst-case configuration the
// paper measures in Fig 5 ("the content needs to be fetched from the origin
// server for every request").
//
// The cache key is (CA, from): two RAs at the same count receive the same
// bytes, which is what makes CDN dissemination scale with the number of
// RAs. Entries expire after the TTL, bounding staleness; the client-side 2∆
// policy tolerates exactly one period of such staleness (§V).
//
// The cache is bounded: a sweep (amortized over pulls, at most once per
// TTL unless the entry cap is exceeded) drops entries past their TTL and
// entries at stale from-offsets — once the fleet advances to a higher
// count for a CA, the superseded keys can never be pulled again by an
// up-to-date RA, so keeping them would leak memory proportional to
// revocation history × pull cadence. Concurrent misses for the same key
// are collapsed into one upstream fetch (singleflight), so an origin sees
// at most one pull per (CA, from) per TTL no matter how many RAs stampede.
//
// An optional negative cache (SetNegativeTTL) remembers ErrUnknownCA per
// CA: a misconfigured RA fleet polling a dictionary the origin does not
// carry costs the upstream at most one lookup per negative TTL instead of
// one per request. Negative entries have their own sweep cadence (the
// negative TTL, not the positive one) and never shadow a successful fetch:
// the first pull that succeeds deletes the entry.
type EdgeServer struct {
	upstream Origin
	ttl      time.Duration
	now      func() time.Time

	mu           sync.Mutex
	cache        map[edgeKey]*edgeEntry
	inflight     map[edgeKey]*edgeCall
	latest       map[dictionary.CAID]uint64    // highest live from per CA (clamped by origin count)
	negative     map[dictionary.CAID]time.Time // ErrUnknownCA entries: CA → expiry
	negTTL       time.Duration
	rootTTL      time.Duration
	roots        map[dictionary.CAID]*rootEntry
	rootFlight   map[dictionary.CAID]*rootCall
	lastSweep    time.Time
	lastNegSweep time.Time
	maxEntries   int
	stats        EdgeStats
}

// rootEntry is one cached signed root (SetRootTTL opt-in).
type rootEntry struct {
	root    *dictionary.SignedRoot
	fetched time.Time
}

// rootCall is one in-flight upstream root refresh; concurrent requests for
// the same CA park on done and share the result.
type rootCall struct {
	done chan struct{}
	root *dictionary.SignedRoot
	err  error
}

type edgeKey struct {
	ca   dictionary.CAID
	from uint64
}

type edgeEntry struct {
	resp    *PullResponse
	fetched time.Time
}

// edgeCall is one in-flight upstream fetch; concurrent pulls for the same
// key park on done and share the result instead of stampeding the origin.
type edgeCall struct {
	done chan struct{}
	resp *PullResponse
	err  error
}

// NewEdgeServer creates an edge server caching upstream responses for ttl.
// A zero ttl disables caching. now is the cache clock (nil = time.Now).
func NewEdgeServer(upstream Origin, ttl time.Duration, now func() time.Time) *EdgeServer {
	if now == nil {
		now = time.Now
	}
	return &EdgeServer{
		upstream:   upstream,
		ttl:        ttl,
		now:        now,
		cache:      make(map[edgeKey]*edgeEntry),
		inflight:   make(map[edgeKey]*edgeCall),
		latest:     make(map[dictionary.CAID]uint64),
		negative:   make(map[dictionary.CAID]time.Time),
		roots:      make(map[dictionary.CAID]*rootEntry),
		rootFlight: make(map[dictionary.CAID]*rootCall),
		maxEntries: defaultEdgeMaxEntries,
	}
}

// SetRootTTL enables bounded-staleness caching of signed roots for d (0,
// the default, keeps the PR 3 behavior: every root request revalidates
// against the upstream). With it on, a root request inside the window is
// answered from the cache with zero upstream traffic and zero allocation —
// the root tier stops converting per-PoP request rate into origin load.
//
// Semantics: the served root may lag the origin by at most d. The paper's
// client-side freshness policy tolerates 2∆ of dissemination lag (§V), so
// any d well under ∆ is invisible to verifiers; choose d like ∆/4. The
// trade-off is observational, not cryptographic: equivocation monitors
// comparing roots across vantage points must see the origin's current
// view, so deployments running monitors through their edges keep the
// default 0 (or point monitors at the origin) — a stale-but-genuine root
// would otherwise raise false alarms. Concurrent refreshes for one CA are
// collapsed into a single upstream fetch.
func (e *EdgeServer) SetRootTTL(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if d < 0 {
		d = 0
	}
	e.rootTTL = d
	if d == 0 {
		e.roots = make(map[dictionary.CAID]*rootEntry)
	}
}

// SetNegativeTTL enables negative caching of ErrUnknownCA for d (0, the
// default, disables it). While a negative entry is live every pull or root
// request for that CA is answered locally with ErrUnknownCA — the upstream
// sees at most one unknown-CA lookup per d per edge, so a misconfigured
// fleet cannot convert its request rate into origin load. Choose d like a
// DNS negative TTL: long enough to absorb a storm, short enough that a
// freshly registered CA is picked up promptly.
func (e *EdgeServer) SetNegativeTTL(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if d < 0 {
		d = 0
	}
	e.negTTL = d
	if d == 0 {
		e.negative = make(map[dictionary.CAID]time.Time)
	}
}

// SetMaxEntries bounds the cache to n entries (0 restores the default).
// When the cap is exceeded a sweep runs immediately and, if expiry and
// stale-offset eviction are not enough, the oldest entries are dropped.
func (e *EdgeServer) SetMaxEntries(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n <= 0 {
		n = defaultEdgeMaxEntries
	}
	e.maxEntries = n
	if len(e.cache) > e.maxEntries {
		e.sweepLocked(e.now())
	}
}

var _ Origin = (*EdgeServer)(nil)
var _ MetaOrigin = (*EdgeServer)(nil)

// Pull implements Origin with pull-through caching and singleflight miss
// collapsing.
func (e *EdgeServer) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	resp, _, err := e.PullWithMeta(ca, from)
	return resp, err
}

// PullWithMeta implements MetaOrigin: Pull plus the cache disposition of
// the response (the edge's TTL and the entry's age), which the HTTP layer
// turns into Cache-Control: max-age and Age headers.
func (e *EdgeServer) PullWithMeta(ca dictionary.CAID, from uint64) (*PullResponse, PullMeta, error) {
	meta := PullMeta{TTL: e.ttl}
	if e.ttl <= 0 {
		// Caching disabled (the Fig 5 worst case): every request reaches
		// the origin, including concurrent ones — that is the point of the
		// configuration, so no singleflight either. The negative cache is a
		// separate, explicit opt-in and still applies: an unknown-CA storm
		// is operator misconfiguration, not a workload to measure.
		e.mu.Lock()
		meta.NegativeTTL = e.negTTL
		if e.negativeHitLocked(ca, e.now()) {
			e.stats.NegativeHits++
			e.mu.Unlock()
			return nil, meta, negativeErr(ca)
		}
		e.mu.Unlock()
		resp, err := e.upstream.Pull(ca, from)
		if err != nil {
			e.mu.Lock()
			e.stats.Errors++
			e.recordUnknownCALocked(ca, e.now(), err)
			e.mu.Unlock()
			return nil, meta, fmt.Errorf("edge pull: %w", err)
		}
		size := int64(resp.Size())
		e.mu.Lock()
		e.stats.Misses++
		e.stats.BytesServed += size
		e.stats.BytesFetched += size
		e.mu.Unlock()
		return resp, meta, nil
	}

	key := edgeKey{ca: ca, from: from}
	now := e.now()

	e.mu.Lock()
	meta.NegativeTTL = e.negTTL
	e.maybeSweepLocked(now)
	// Positive entries win over negative ones: a live cached response is
	// proof the CA's dictionary exists and is fresher than whatever
	// failure recorded the negative entry (e.g. a LatestRoot against an
	// origin mid-restart). Serving ErrUnknownCA while holding the CA's
	// data would break the "never shadow a successful fetch" contract.
	if ent, ok := e.cache[key]; ok && now.Sub(ent.fetched) < e.ttl {
		e.stats.Hits++
		e.stats.BytesServed += int64(ent.resp.Size())
		resp := ent.resp
		meta.Age = now.Sub(ent.fetched)
		e.mu.Unlock()
		return resp, meta, nil
	}
	if e.negativeHitLocked(ca, now) {
		e.stats.NegativeHits++
		e.mu.Unlock()
		return nil, meta, negativeErr(ca)
	}
	if call, ok := e.inflight[key]; ok {
		// Someone else is already fetching this key: park and share.
		e.mu.Unlock()
		<-call.done
		if call.err != nil {
			e.mu.Lock()
			e.stats.Errors++
			e.mu.Unlock()
			return nil, meta, call.err
		}
		e.mu.Lock()
		e.stats.CollapsedPulls++
		e.stats.BytesServed += int64(call.resp.Size())
		e.mu.Unlock()
		return call.resp, meta, nil
	}
	call := &edgeCall{done: make(chan struct{})}
	e.inflight[key] = call
	e.mu.Unlock()

	resp, err := e.upstream.Pull(ca, from)
	var size int64
	if err != nil {
		call.err = fmt.Errorf("edge pull: %w", err)
	} else {
		call.resp = resp
		// Serialize (memoize) outside the lock: a large suffix takes
		// milliseconds to encode and must not block concurrent hits.
		size = int64(resp.Size())
	}

	e.mu.Lock()
	delete(e.inflight, key)
	if err != nil {
		e.stats.Errors++
		e.recordUnknownCALocked(ca, now, err)
	} else {
		delete(e.negative, ca)
		e.stats.Misses++
		e.stats.BytesServed += size
		e.stats.BytesFetched += size
		// Stamp with the post-fetch clock: dating the entry before the
		// upstream round trip would shorten its effective TTL by the
		// fetch latency.
		e.cache[key] = &edgeEntry{resp: resp, fetched: e.now()}
		if from > e.latest[ca] {
			e.latest[ca] = from
		}
		// The served root's count bounds what the origin can answer: after
		// an origin regression (restart with a shorter history — the
		// scenario ra.Resync recovers from) a monotone high-water mark
		// would keep sweeping the fleet's new, lower-from entries forever.
		// Clamp it so post-regression keys are live again; the dead
		// higher-from entries age out by TTL.
		originN := from
		if resp.Issuance != nil && resp.Issuance.Root != nil {
			originN = resp.Issuance.Root.N
		}
		if e.latest[ca] > originN {
			e.latest[ca] = originN
		}
		if len(e.cache) > e.maxEntries {
			e.sweepLocked(now)
		}
	}
	e.mu.Unlock()
	close(call.done)

	if err != nil {
		return nil, meta, call.err
	}
	return resp, meta, nil
}

// negativeErr is the error served from the negative cache. It wraps
// ErrUnknownCA so errors.Is-based callers (and the HTTP error mapping)
// treat it exactly like an origin miss.
func negativeErr(ca dictionary.CAID) error {
	return fmt.Errorf("edge: %w: %s (negative cache)", ErrUnknownCA, ca)
}

// negativeHitLocked reports whether a live negative entry covers ca.
// Expired entries found on the way are dropped. Caller holds mu.
func (e *EdgeServer) negativeHitLocked(ca dictionary.CAID, now time.Time) bool {
	if e.negTTL <= 0 {
		return false
	}
	e.maybeSweepNegativeLocked(now)
	until, ok := e.negative[ca]
	if !ok {
		return false
	}
	if !now.Before(until) {
		delete(e.negative, ca)
		return false
	}
	return true
}

// recordUnknownCALocked caches an upstream ErrUnknownCA for the negative
// TTL; other errors are not cached (a flaky upstream must be retried, not
// remembered). The map is bounded by the same cap as the positive cache:
// a flood of attacker-minted unique CA ids must not grow memory without
// limit, and caching a never-repeated id has no value anyway — at the
// cap, new ids are simply not remembered (existing entries keep
// absorbing their storms) until the sweep frees room. Caller holds mu.
func (e *EdgeServer) recordUnknownCALocked(ca dictionary.CAID, now time.Time, err error) {
	if e.negTTL <= 0 || !errors.Is(err, ErrUnknownCA) {
		return
	}
	if _, exists := e.negative[ca]; !exists && len(e.negative) >= e.maxEntries {
		e.lastNegSweep = time.Time{} // force the sweep to run now
		e.maybeSweepNegativeLocked(now)
		if len(e.negative) >= e.maxEntries {
			return
		}
	}
	e.negative[ca] = now.Add(e.negTTL)
}

// maybeSweepNegativeLocked drops expired negative entries, at most once
// per negative TTL — the negative cache's own cadence, independent of the
// positive sweep (the TTLs usually differ). Caller holds mu.
func (e *EdgeServer) maybeSweepNegativeLocked(now time.Time) {
	if e.negTTL <= 0 || now.Sub(e.lastNegSweep) < e.negTTL {
		return
	}
	e.lastNegSweep = now
	for ca, until := range e.negative {
		if !now.Before(until) {
			delete(e.negative, ca)
			e.stats.NegativeEvictions++
		}
	}
}

// maybeSweepLocked runs an eviction sweep when one is due: at most once
// per TTL in the steady state, immediately when the entry cap is blown.
// Caller holds mu.
func (e *EdgeServer) maybeSweepLocked(now time.Time) {
	if now.Sub(e.lastSweep) < e.ttl && len(e.cache) <= e.maxEntries {
		return
	}
	e.sweepLocked(now)
}

// sweepLocked drops expired entries and entries at stale from-offsets
// (superseded by a higher cached from for the same CA — the fleet has
// advanced, so those keys are dead). If the cache is still over the cap,
// the oldest entries go too — down to 90% of the cap, so a workload whose
// live keys exceed the cap pays the O(n log n) age sort once per ~cap/10
// inserts instead of on every miss. Stale-offset bookkeeping for CAs with
// no remaining entries (rotated-out expiry shards) is pruned so the edge
// holds no per-CA state for dictionaries it no longer serves. Caller
// holds mu.
func (e *EdgeServer) sweepLocked(now time.Time) {
	e.lastSweep = now
	for k, ent := range e.cache {
		if now.Sub(ent.fetched) >= e.ttl || k.from < e.latest[k.ca] {
			delete(e.cache, k)
			e.stats.Evictions++
		}
	}
	if over := len(e.cache) - (e.maxEntries - e.maxEntries/10); over > 0 && len(e.cache) > e.maxEntries {
		type aged struct {
			key     edgeKey
			fetched time.Time
		}
		entries := make([]aged, 0, len(e.cache))
		for k, ent := range e.cache {
			entries = append(entries, aged{k, ent.fetched})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].fetched.Before(entries[j].fetched) })
		for _, a := range entries[:over] {
			delete(e.cache, a.key)
			e.stats.Evictions++
		}
	}
	live := make(map[dictionary.CAID]struct{}, len(e.latest))
	for k := range e.cache {
		live[k.ca] = struct{}{}
	}
	for ca := range e.latest {
		if _, ok := live[ca]; !ok {
			delete(e.latest, ca)
		}
	}
}

// LatestRoot implements Origin. By default roots are not positively cached,
// so consistency checking always observes the origin's current view (stale
// roots would produce false equivocation alarms); SetRootTTL opts in to a
// bounded-staleness cache for deployments that keep monitors off the edge
// path. The negative cache always applies: an unknown CA stays unknown for
// the negative TTL regardless of which endpoint asks, and there is no
// staleness to mis-serve.
func (e *EdgeServer) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	now := e.now()
	e.mu.Lock()
	if e.negativeHitLocked(ca, now) {
		e.stats.NegativeHits++
		e.mu.Unlock()
		return nil, negativeErr(ca)
	}
	if e.rootTTL <= 0 {
		e.mu.Unlock()
		root, err := e.upstream.LatestRoot(ca)
		if err != nil {
			e.mu.Lock()
			e.recordUnknownCALocked(ca, e.now(), err)
			e.mu.Unlock()
			return nil, err
		}
		return root, nil
	}
	// TTL'd root path. The hit branch — the steady state — allocates
	// nothing: clock read, map lookup, pointer return. Returning the SAME
	// *SignedRoot for the whole window also keeps the HTTP handler's
	// per-pointer validator memo hot (see rootRep).
	if ent := e.roots[ca]; ent != nil && now.Sub(ent.fetched) < e.rootTTL {
		e.mu.Unlock()
		return ent.root, nil
	}
	if call := e.rootFlight[ca]; call != nil {
		e.mu.Unlock()
		<-call.done
		return call.root, call.err
	}
	call := &rootCall{done: make(chan struct{})}
	e.rootFlight[ca] = call
	e.mu.Unlock()
	root, err := e.upstream.LatestRoot(ca)
	e.mu.Lock()
	delete(e.rootFlight, ca)
	if err != nil {
		e.recordUnknownCALocked(ca, e.now(), err)
	} else {
		e.roots[ca] = &rootEntry{root: root, fetched: e.now()}
	}
	e.mu.Unlock()
	call.root, call.err = root, err
	close(call.done)
	return root, err
}

// CAs implements Origin.
func (e *EdgeServer) CAs() ([]dictionary.CAID, error) { return e.upstream.CAs() }

// Flush drops every cached entry, positive and negative (operator action,
// a restart in the scenario tests, or tests moving virtual time
// backwards). In-flight fetches complete and repopulate the cache.
func (e *EdgeServer) Flush() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = make(map[edgeKey]*edgeEntry)
	e.latest = make(map[dictionary.CAID]uint64)
	e.negative = make(map[dictionary.CAID]time.Time)
	e.roots = make(map[dictionary.CAID]*rootEntry)
}

// TTL returns the edge's positive cache TTL.
func (e *EdgeServer) TTL() time.Duration { return e.ttl }

// NegativeTTL implements MetaOrigin.
func (e *EdgeServer) NegativeTTL() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.negTTL
}

// EdgeStats counts edge-server activity.
type EdgeStats struct {
	Hits   int
	Misses int
	// CollapsedPulls counts pulls served by joining another puller's
	// in-flight upstream fetch for the same (CA, from) — requests the
	// origin never saw. A fleet syncing in lockstep shows up here.
	CollapsedPulls int
	// Evictions counts cache entries dropped by sweeps (TTL expiry, stale
	// from-offsets, or the entry cap).
	Evictions int
	// Errors counts pulls that returned an upstream error to their caller
	// (leader fetches, parked waiters sharing a failed fetch, and uncached
	// pulls alike) — without it, hit-rate metrics read 100%-healthy during
	// an upstream outage in which zero requests succeed. Requests answered
	// from the negative cache count as NegativeHits, not Errors: the
	// upstream was deliberately not consulted.
	Errors int
	// NegativeHits counts requests answered with ErrUnknownCA from the
	// negative cache — unknown-CA traffic the upstream never saw.
	NegativeHits int
	// NegativeEvictions counts negative entries dropped by their sweep.
	NegativeEvictions int
	// NegativeEntries is the number of live negative entries at the time
	// Stats was called.
	NegativeEntries int
	// Entries is the number of live cache entries at the time Stats was
	// called; eviction tests assert it stays O(live keys).
	Entries      int
	BytesServed  int64 // toward RAs
	BytesFetched int64 // from upstream
}

// add returns per-field sums of two stat snapshots; topology roll-ups use
// it to report a whole tier as one ledger.
func (s EdgeStats) add(o EdgeStats) EdgeStats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.CollapsedPulls += o.CollapsedPulls
	s.Evictions += o.Evictions
	s.Errors += o.Errors
	s.NegativeHits += o.NegativeHits
	s.NegativeEvictions += o.NegativeEvictions
	s.NegativeEntries += o.NegativeEntries
	s.Entries += o.Entries
	s.BytesServed += o.BytesServed
	s.BytesFetched += o.BytesFetched
	return s
}

// Stats returns a copy of the edge's counters.
func (e *EdgeServer) Stats() EdgeStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Entries = len(e.cache)
	st.NegativeEntries = len(e.negative)
	return st
}
