package cdn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ritm/internal/dictionary"
)

// TestEdgeEvictionBounded drives an edge through 120 ∆ cycles of an
// advancing fleet (one revocation + one pull at the new count per cycle)
// and asserts the cache stays O(live keys): without eviction the cache
// would hold one entry per historical count forever — the memory leak of
// the seed implementation.
func TestEdgeEvictionBounded(t *testing.T) {
	tc := newTestCA(t, "CA1")
	edge := NewEdgeServer(tc.dp, 30*time.Second, tc.clock.now)

	var from uint64
	const cycles = 120
	for i := 0; i < cycles; i++ {
		tc.revoke(t, 1)
		tc.clock.advance(10 * time.Second)
		resp, err := edge.Pull("CA1", from)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Issuance == nil {
			t.Fatalf("cycle %d: no issuance", i)
		}
		from = resp.Issuance.Root.N
	}

	st := edge.Stats()
	if st.Entries > 8 {
		t.Errorf("cache holds %d entries after %d cycles, want O(live keys) (≤8)", st.Entries, cycles)
	}
	if st.Entries+st.Evictions != st.Misses {
		t.Errorf("entries (%d) + evictions (%d) != inserts (%d): entries leaked",
			st.Entries, st.Evictions, st.Misses)
	}
	if st.Evictions < cycles-10 {
		t.Errorf("evictions = %d, want ≈%d (every superseded from evicted)", st.Evictions, cycles)
	}
}

// TestEdgeMaxEntriesCap fills an edge with more distinct live keys than
// the configured cap (one key per CA, so TTL and stale-offset sweeps
// cannot reclaim anything) and asserts the oldest entries are dropped.
func TestEdgeMaxEntriesCap(t *testing.T) {
	clock := newTestClock()
	dp := NewDistributionPoint(clock.now)
	const cas = 20
	ids := make([]dictionary.CAID, cas)
	for i := range ids {
		tc := newTestCA(t, dictionary.CAID([]byte{'C', 'A', byte('A' + i)}))
		ids[i] = dictionary.CAID([]byte{'C', 'A', byte('A' + i)})
		if err := dp.RegisterCA(ids[i], tc.auth.PublicKey()); err != nil {
			t.Fatal(err)
		}
		msg, err := tc.auth.Insert(tc.gen.NextN(1), clock.now().Unix())
		if err != nil {
			t.Fatal(err)
		}
		if err := dp.PublishIssuance(msg); err != nil {
			t.Fatal(err)
		}
	}

	edge := NewEdgeServer(dp, time.Hour, clock.now)
	edge.SetMaxEntries(8)
	for _, id := range ids {
		if _, err := edge.Pull(id, 0); err != nil {
			t.Fatal(err)
		}
		clock.advance(time.Second) // distinct ages for deterministic oldest-first drops
	}
	st := edge.Stats()
	if st.Entries > 8 {
		t.Errorf("cache holds %d entries, cap is 8", st.Entries)
	}
	if st.Evictions < cas-8 {
		t.Errorf("evictions = %d, want ≥%d (%d inserts, cap 8)", st.Evictions, cas-8, cas)
	}
	// The newest key must have survived the oldest-first cap eviction.
	if _, err := edge.Pull(ids[cas-1], 0); err != nil {
		t.Fatal(err)
	}
	if after := edge.Stats(); after.Hits != st.Hits+1 {
		t.Error("newest entry was evicted before older ones")
	}
}

// gatedOrigin blocks every Pull until released, counting upstream calls —
// the stampede scenario: many RAs miss the same key at the same instant.
type gatedOrigin struct {
	Origin
	release chan struct{}
	calls   atomic.Int64
}

func (g *gatedOrigin) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	g.calls.Add(1)
	<-g.release
	return g.Origin.Pull(ca, from)
}

// TestEdgeSingleflightCollapse stampedes one edge key with 16 concurrent
// pulls and asserts the origin is contacted exactly once; everyone else is
// served by joining the in-flight fetch or from the freshly filled cache.
// Run under -race: the singleflight bookkeeping is the point.
func TestEdgeSingleflightCollapse(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 5)
	gate := &gatedOrigin{Origin: tc.dp, release: make(chan struct{})}
	edge := NewEdgeServer(gate, time.Hour, tc.clock.now)

	const pullers = 16
	var started, wg sync.WaitGroup
	errs := make([]error, pullers)
	resps := make([]*PullResponse, pullers)
	started.Add(pullers)
	wg.Add(pullers)
	for i := 0; i < pullers; i++ {
		go func(i int) {
			defer wg.Done()
			started.Done()
			resps[i], errs[i] = edge.Pull("CA1", 0)
		}(i)
	}
	started.Wait()
	time.Sleep(100 * time.Millisecond) // let the pullers pile onto the in-flight call
	close(gate.release)
	wg.Wait()

	for i := 0; i < pullers; i++ {
		if errs[i] != nil {
			t.Fatalf("puller %d: %v", i, errs[i])
		}
		if got := len(resps[i].Issuance.Serials); got != 5 {
			t.Fatalf("puller %d got %d serials, want 5", i, got)
		}
	}
	if calls := gate.calls.Load(); calls != 1 {
		t.Errorf("origin saw %d pulls, want 1 (stampede not collapsed)", calls)
	}
	st := edge.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.CollapsedPulls != pullers-1 {
		t.Errorf("hits (%d) + collapsed (%d) = %d, want %d",
			st.Hits, st.CollapsedPulls, st.Hits+st.CollapsedPulls, pullers-1)
	}
	if st.CollapsedPulls == 0 {
		t.Error("no pulls collapsed onto the in-flight fetch")
	}
}

// TestEdgeSingleflightErrorNotCached verifies a failed collapsed fetch
// propagates the error to every waiter and is not cached: the next pull
// retries the upstream.
func TestEdgeSingleflightErrorNotCached(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 1)
	flaky := &flakyOrigin{Origin: tc.dp}
	edge := NewEdgeServer(flaky, time.Hour, tc.clock.now)

	flaky.broken.Store(true)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = edge.Pull("CA1", 0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("puller %d succeeded through a broken upstream", i)
		}
	}
	// Every failed pull is visible in the stats — outage health must not
	// read as 100% hit rate.
	if st := edge.Stats(); st.Errors != 4 {
		t.Errorf("errors = %d, want 4", st.Errors)
	}
	flaky.broken.Store(false)
	resp, err := edge.Pull("CA1", 0)
	if err != nil {
		t.Fatalf("pull after upstream recovery: %v", err)
	}
	if len(resp.Issuance.Serials) != 1 {
		t.Errorf("recovered pull returned %d serials, want 1", len(resp.Issuance.Serials))
	}
}

// swapOrigin lets a test replace the edge's upstream mid-flight,
// simulating an origin restart behind a long-lived edge.
type swapOrigin struct {
	mu sync.Mutex
	o  Origin
}

func (s *swapOrigin) set(o Origin) { s.mu.Lock(); s.o = o; s.mu.Unlock() }
func (s *swapOrigin) get() Origin  { s.mu.Lock(); defer s.mu.Unlock(); return s.o }

func (s *swapOrigin) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	return s.get().Pull(ca, from)
}
func (s *swapOrigin) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	return s.get().LatestRoot(ca)
}
func (s *swapOrigin) CAs() ([]dictionary.CAID, error) { return s.get().CAs() }

// TestEdgeStaleFromClampAfterOriginRegression: an origin restart with a
// shorter history must not leave the edge's stale-from high-water mark
// pointing at the old count — that would make every sweep evict the
// fleet's new, lower-from entries forever. The clamp derives the live
// bound from the served root's count.
func TestEdgeStaleFromClampAfterOriginRegression(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 5)

	up := &swapOrigin{o: tc.dp}
	const ttl = 30 * time.Second
	edge := NewEdgeServer(up, ttl, tc.clock.now)
	if _, err := edge.Pull("CA1", 5); err != nil { // latest[CA1] = 5
		t.Fatal(err)
	}

	// Restart: a fresh, empty distribution point — the fleet Resyncs to
	// count 0 and pulls (CA1, 0) from now on.
	dp2 := NewDistributionPoint(tc.clock.now)
	if err := dp2.RegisterCA("CA1", tc.auth.PublicKey()); err != nil {
		t.Fatal(err)
	}
	up.set(dp2)

	tc.clock.advance(ttl - time.Second)
	if _, err := edge.Pull("CA1", 0); err != nil { // cached fresh, clamps latest → 0
		t.Fatal(err)
	}
	// Past the TTL boundary the next pull sweeps: the dead (CA1, 5) entry
	// expires, but the 2s-old (CA1, 0) entry must survive — without the
	// clamp it is evicted as stale (0 < 5) and every post-regression pull
	// re-fetches from the origin until an operator Flush.
	tc.clock.advance(2 * time.Second)
	before := edge.Stats()
	if _, err := edge.Pull("CA1", 0); err != nil {
		t.Fatal(err)
	}
	after := edge.Stats()
	if after.Hits != before.Hits+1 {
		t.Errorf("post-regression (CA1, 0) entry was swept as stale: hits %d → %d (stats %+v)",
			before.Hits, after.Hits, after)
	}
	if after.Evictions < 1 {
		t.Errorf("dead pre-regression entry not evicted: %+v", after)
	}
}

// TestPullResponseEncodedMemoized asserts the response's wire encoding is
// computed once and shared: the seed re-serialized on every Encode call —
// twice per edge miss just for byte accounting, once more in the HTTP
// handler.
func TestPullResponseEncodedMemoized(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 3)
	resp, err := tc.dp.Pull("CA1", 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := resp.Encoded(), resp.Encoded()
	if len(a) == 0 {
		t.Fatal("empty encoding")
	}
	if &a[0] != &b[0] {
		t.Error("Encoded re-serialized instead of returning the memoized buffer")
	}
	if c := resp.Encode(); &c[0] != &a[0] {
		t.Error("Encode did not share the memoized buffer")
	}
	if resp.Size() != len(a) {
		t.Errorf("Size = %d, want %d", resp.Size(), len(a))
	}

	// A decoded response is seeded with the parsed bytes.
	decoded, err := DecodePullResponse(a)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := decoded.Encoded(), decoded.Encoded()
	if &d1[0] != &d2[0] {
		t.Error("decoded response re-serialized instead of reusing the parsed buffer")
	}
	if string(d1) != string(a) {
		t.Error("decoded response's seeded encoding differs from the original")
	}
}

// TestDistributionPointParallelPull hammers the origin's read path from
// many goroutines while a publisher ingests, exercising the atomic
// counters and the atomic freshness pointer under -race (the seed
// serialized every pull behind the exclusive write lock).
func TestDistributionPointParallelPull(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 10)

	const (
		pullers  = 8
		perPull  = 200
		refreshN = 20
	)
	var wg sync.WaitGroup
	for i := 0; i < pullers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perPull; j++ {
				resp, err := tc.dp.Pull("CA1", 0)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.Issuance == nil {
					t.Error("pull lost issuance")
					return
				}
			}
		}()
	}
	// Concurrent ingest: freshness refreshes race the pulls. (Not
	// tc.refresh: t.Fatal must not run off the test goroutine.)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < refreshN; j++ {
			st, err := tc.auth.Statement(tc.clock.now().Unix())
			if err != nil {
				t.Error(err)
				return
			}
			if err := tc.dp.PublishFreshness(st); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if got := tc.dp.Stats().Pulls; got != pullers*perPull {
		t.Errorf("pull counter = %d, want %d", got, pullers*perPull)
	}
}

// TestEdgeNegativeCacheDisabledByDefault: without SetNegativeTTL every
// unknown-CA pull reaches the upstream — negative caching is an explicit
// operator choice, not a surprise.
func TestEdgeNegativeCacheDisabledByDefault(t *testing.T) {
	tc := newTestCA(t, "CA1")
	counting := newCountingOrigin(tc.dp)
	edge := NewEdgeServer(counting, time.Minute, tc.clock.now)
	for i := 0; i < 5; i++ {
		if _, err := edge.Pull("CA9", 0); err == nil {
			t.Fatal("unknown CA pull succeeded")
		}
	}
	if got := counting.caPulls("CA9"); got != 5 {
		t.Errorf("upstream saw %d unknown-CA pulls, want 5 (negative caching not opted into)", got)
	}
	if st := edge.Stats(); st.NegativeHits != 0 || st.NegativeEntries != 0 {
		t.Errorf("negative stats populated while disabled: %+v", st)
	}
}

// TestEdgeNegativeCacheBoundsUpstreamLookups: with a negative TTL, an
// unknown-CA request storm costs the upstream one lookup per TTL window —
// across Pull and LatestRoot alike — and the entry clears the moment the
// CA exists.
func TestEdgeNegativeCacheBoundsUpstreamLookups(t *testing.T) {
	const negTTL = 30 * time.Second
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 1)
	counting := newCountingOrigin(tc.dp)
	edge := NewEdgeServer(counting, time.Minute, tc.clock.now)
	edge.SetNegativeTTL(negTTL)

	for i := 0; i < 40; i++ {
		if _, err := edge.Pull("CA9", uint64(i)); !errors.Is(err, ErrUnknownCA) {
			t.Fatalf("pull %d: err = %v, want ErrUnknownCA", i, err)
		}
	}
	// LatestRoot shares the entry: no extra upstream lookup.
	if _, err := edge.LatestRoot("CA9"); !errors.Is(err, ErrUnknownCA) {
		t.Fatal("LatestRoot bypassed the negative cache")
	}
	if got := counting.caPulls("CA9"); got != 1 {
		t.Errorf("upstream saw %d unknown-CA pulls in one window, want 1", got)
	}
	st := edge.Stats()
	if st.NegativeHits != 40 { // 39 pulls + 1 root
		t.Errorf("NegativeHits = %d, want 40", st.NegativeHits)
	}
	if st.Errors != 1 {
		t.Errorf("Errors = %d, want 1 (negative hits are not upstream errors)", st.Errors)
	}
	if st.NegativeEntries != 1 {
		t.Errorf("NegativeEntries = %d, want 1", st.NegativeEntries)
	}

	// Next window: exactly one more upstream lookup.
	tc.clock.advance(negTTL + time.Second)
	if _, err := edge.Pull("CA9", 0); !errors.Is(err, ErrUnknownCA) {
		t.Fatal("unknown CA became known spontaneously")
	}
	if got := counting.caPulls("CA9"); got != 2 {
		t.Errorf("upstream saw %d unknown-CA pulls over 2 windows, want 2", got)
	}

	// The CA comes online; once the negative entry expires the edge
	// serves it (and the success clears any bookkeeping).
	if err := tc.dp.RegisterCA("CA9", tc.auth.PublicKey()); err != nil {
		t.Fatal(err)
	}
	tc.clock.advance(negTTL + time.Second)
	if _, err := edge.Pull("CA9", 0); err != nil {
		t.Errorf("pull after registration: %v", err)
	}
	if st := edge.Stats(); st.NegativeEntries != 0 {
		t.Errorf("NegativeEntries = %d after successful fetch, want 0", st.NegativeEntries)
	}
}

// TestEdgeNegativeCacheOwnSweep: expired negative entries are dropped by
// the negative sweep (its own cadence), not only overwritten on re-miss.
func TestEdgeNegativeCacheOwnSweep(t *testing.T) {
	const negTTL = 20 * time.Second
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 1)
	edge := NewEdgeServer(tc.dp, time.Hour, tc.clock.now)
	edge.SetNegativeTTL(negTTL)

	for _, ghost := range []dictionary.CAID{"G1", "G2", "G3"} {
		if _, err := edge.Pull(ghost, 0); !errors.Is(err, ErrUnknownCA) {
			t.Fatalf("pull %s: unexpected err %v", ghost, err)
		}
	}
	if st := edge.Stats(); st.NegativeEntries != 3 {
		t.Fatalf("NegativeEntries = %d, want 3", st.NegativeEntries)
	}
	// Past the negative TTL, any pull triggers the sweep — including one
	// for a known CA that never touches the negative entries itself.
	tc.clock.advance(negTTL + time.Second)
	if _, err := edge.Pull("CA1", 0); err != nil {
		t.Fatal(err)
	}
	st := edge.Stats()
	if st.NegativeEntries != 0 {
		t.Errorf("NegativeEntries = %d after sweep, want 0", st.NegativeEntries)
	}
	if st.NegativeEvictions != 3 {
		t.Errorf("NegativeEvictions = %d, want 3", st.NegativeEvictions)
	}
}

// TestEdgeNegativeCacheUncachedEdge: the Fig 5 worst-case edge (TTL=0,
// positive caching off) still honors an explicit negative TTL — the two
// caches are independent policies.
func TestEdgeNegativeCacheUncachedEdge(t *testing.T) {
	tc := newTestCA(t, "CA1")
	counting := newCountingOrigin(tc.dp)
	edge := NewEdgeServer(counting, 0, tc.clock.now)
	edge.SetNegativeTTL(time.Minute)
	for i := 0; i < 10; i++ {
		if _, err := edge.Pull("CA9", 0); !errors.Is(err, ErrUnknownCA) {
			t.Fatalf("pull %d: err = %v", i, err)
		}
	}
	if got := counting.caPulls("CA9"); got != 1 {
		t.Errorf("TTL=0 edge forwarded %d unknown-CA pulls, want 1", got)
	}
}

// TestEdgeNegativeCacheFlakyErrorNotCached: only ErrUnknownCA is negative-
// cached; transient upstream failures must be retried, never remembered.
func TestEdgeNegativeCacheFlakyErrorNotCached(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 2)
	broken := &brokenOrigin{}
	edge := NewEdgeServer(&fallbackOrigin{first: broken, then: tc.dp}, time.Minute, tc.clock.now)
	edge.SetNegativeTTL(time.Minute)

	if _, err := edge.Pull("CA1", 0); err == nil {
		t.Fatal("pull through broken upstream succeeded")
	}
	// The 500-class failure was not negative-cached: the immediate retry
	// reaches the (healed) upstream.
	resp, err := edge.Pull("CA1", 0)
	if err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if len(resp.Issuance.Serials) != 2 {
		t.Errorf("retry served %d serials, want 2", len(resp.Issuance.Serials))
	}
}

// brokenOrigin fails every call with an untyped error.
type brokenOrigin struct{}

func (brokenOrigin) Pull(dictionary.CAID, uint64) (*PullResponse, error) {
	return nil, errUpstreamDown
}
func (brokenOrigin) LatestRoot(dictionary.CAID) (*dictionary.SignedRoot, error) {
	return nil, errUpstreamDown
}
func (brokenOrigin) CAs() ([]dictionary.CAID, error) { return nil, errUpstreamDown }

var errUpstreamDown = fmt.Errorf("upstream down")

// fallbackOrigin serves the first call from `first`, everything after
// from `then` — a one-shot transient failure.
type fallbackOrigin struct {
	mu    sync.Mutex
	used  bool
	first Origin
	then  Origin
}

func (f *fallbackOrigin) pick() Origin {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.used {
		f.used = true
		return f.first
	}
	return f.then
}

func (f *fallbackOrigin) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	return f.pick().Pull(ca, from)
}
func (f *fallbackOrigin) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	return f.pick().LatestRoot(ca)
}
func (f *fallbackOrigin) CAs() ([]dictionary.CAID, error) { return f.pick().CAs() }

// TestEdgeStaleFromClampRepeatedRegressions extends the PR 2 clamp
// coverage: two successive origin regressions (restart, partial re-feed,
// restart again) must each re-open the post-regression keyspace — a
// clamp that only works once would strand the fleet on the second
// incident.
func TestEdgeStaleFromClampRepeatedRegressions(t *testing.T) {
	tc := newTestCA(t, "CA1")
	now := tc.clock.now().Unix()
	msgA, err := tc.auth.Insert(tc.gen.NextN(5), now) // covers (0, 5]
	if err != nil {
		t.Fatal(err)
	}
	msgB, err := tc.auth.Insert(tc.gen.NextN(3), now) // covers (5, 8]
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.dp.PublishIssuance(msgA); err != nil {
		t.Fatal(err)
	}
	if err := tc.dp.PublishIssuance(msgB); err != nil {
		t.Fatal(err)
	}

	up := &swapOrigin{o: tc.dp}
	const ttl = 30 * time.Second
	edge := NewEdgeServer(up, ttl, tc.clock.now)
	if _, err := edge.Pull("CA1", 8); err != nil { // latest[CA1] = 8
		t.Fatal(err)
	}

	// restart replaces the origin with one re-fed only the given prefix.
	restart := func(msgs ...*dictionary.IssuanceMessage) {
		t.Helper()
		dp := NewDistributionPoint(tc.clock.now)
		if err := dp.RegisterCA("CA1", tc.auth.PublicKey()); err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			if err := dp.PublishIssuance(m); err != nil {
				t.Fatal(err)
			}
		}
		up.set(dp)
	}

	// assertLiveAfterSweep pulls key (CA1, from) twice across a sweep
	// boundary and requires the second to be a cache hit — the clamp must
	// have re-opened the post-regression keyspace.
	assertLiveAfterSweep := func(phase string, from uint64) {
		t.Helper()
		tc.clock.advance(ttl + time.Second) // expire pre-regression entries
		if _, err := edge.Pull("CA1", from); err != nil {
			t.Fatal(err)
		}
		tc.clock.advance(time.Second)
		before := edge.Stats()
		if _, err := edge.Pull("CA1", from); err != nil {
			t.Fatal(err)
		}
		if after := edge.Stats(); after.Hits != before.Hits+1 {
			t.Errorf("%s: (CA1, %d) swept as stale (%+v)", phase, from, after)
		}
	}

	// First regression: origin re-fed only msgA (count 5); the fleet
	// resyncs to 5 and pulls (CA1, 5).
	restart(msgA)
	assertLiveAfterSweep("first regression", 5)

	// Second regression before anyone caught up: origin restarts EMPTY.
	// A clamp that only handled one regression would sweep (CA1, 0)
	// against the stale latest=5 mark forever.
	restart()
	assertLiveAfterSweep("second regression", 0)
}

// TestEdgeNegativeEntryDoesNotShadowPositiveCache: a negative entry
// recorded by a failed root lookup (origin mid-restart) must not shadow
// live cached pull responses — positive entries win; the negative entry
// only governs keys the edge has nothing for.
func TestEdgeNegativeEntryDoesNotShadowPositiveCache(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 3)
	up := &swapOrigin{o: tc.dp}
	const ttl = time.Minute
	edge := NewEdgeServer(up, ttl, tc.clock.now)
	edge.SetNegativeTTL(30 * time.Second)

	if _, err := edge.Pull("CA1", 0); err != nil { // warm (CA1, 0)
		t.Fatal(err)
	}

	// Origin restarts empty and unregistered: a root lookup records a
	// negative entry for CA1.
	dp2 := NewDistributionPoint(tc.clock.now)
	up.set(dp2)
	if _, err := edge.LatestRoot("CA1"); !errors.Is(err, ErrUnknownCA) {
		t.Fatalf("root against restarted origin: %v", err)
	}
	if st := edge.Stats(); st.NegativeEntries != 1 {
		t.Fatalf("NegativeEntries = %d, want 1", st.NegativeEntries)
	}

	// The live (CA1, 0) entry still serves.
	resp, err := edge.Pull("CA1", 0)
	if err != nil {
		t.Fatalf("cached pull shadowed by negative entry: %v", err)
	}
	if len(resp.Issuance.Serials) != 3 {
		t.Errorf("shadow-check pull served %d serials, want 3", len(resp.Issuance.Serials))
	}
	// A key the edge has NO data for is governed by the negative entry.
	if _, err := edge.Pull("CA1", 1); !errors.Is(err, ErrUnknownCA) {
		t.Errorf("uncached key bypassed the negative entry: %v", err)
	}
}

// TestEdgeNegativeCacheBounded: the negative map shares the positive
// cache's entry cap — a flood of attacker-minted unique CA ids must not
// grow memory without limit (and caching a never-repeated id has no
// value, so refusing new inserts at the cap loses nothing).
func TestEdgeNegativeCacheBounded(t *testing.T) {
	tc := newTestCA(t, "CA1")
	edge := NewEdgeServer(tc.dp, time.Minute, tc.clock.now)
	edge.SetMaxEntries(8)
	edge.SetNegativeTTL(30 * time.Second)

	for i := 0; i < 100; i++ {
		ghost := dictionary.CAID(fmt.Sprintf("ghost-%d", i))
		if _, err := edge.Pull(ghost, 0); !errors.Is(err, ErrUnknownCA) {
			t.Fatalf("pull %d: err = %v", i, err)
		}
	}
	if st := edge.Stats(); st.NegativeEntries > 8 {
		t.Errorf("NegativeEntries = %d after 100 unique unknown CAs, cap is 8", st.NegativeEntries)
	}
	// Entries already in the map keep absorbing their own storms.
	before := edge.Stats().NegativeHits
	if _, err := edge.Pull("ghost-0", 0); !errors.Is(err, ErrUnknownCA) {
		t.Fatal("cached ghost forgot its entry")
	}
	if after := edge.Stats().NegativeHits; after != before+1 {
		t.Errorf("NegativeHits %d → %d: capped map stopped serving live entries", before, after)
	}
	// Once the window lapses, room frees up and new ids are remembered
	// again.
	tc.clock.advance(31 * time.Second)
	if _, err := edge.Pull("fresh-ghost", 0); !errors.Is(err, ErrUnknownCA) {
		t.Fatal(err)
	}
	if _, err := edge.Pull("fresh-ghost", 0); !errors.Is(err, ErrUnknownCA) {
		t.Fatal(err)
	}
	if st := edge.Stats(); st.NegativeEntries == 0 || st.NegativeEntries > 8 {
		t.Errorf("NegativeEntries = %d after sweep + re-insert, want within (0, 8]", st.NegativeEntries)
	}
}
