package cdn

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ritm/internal/dictionary"
)

// TestEdgeEvictionBounded drives an edge through 120 ∆ cycles of an
// advancing fleet (one revocation + one pull at the new count per cycle)
// and asserts the cache stays O(live keys): without eviction the cache
// would hold one entry per historical count forever — the memory leak of
// the seed implementation.
func TestEdgeEvictionBounded(t *testing.T) {
	tc := newTestCA(t, "CA1")
	edge := NewEdgeServer(tc.dp, 30*time.Second, tc.clock.now)

	var from uint64
	const cycles = 120
	for i := 0; i < cycles; i++ {
		tc.revoke(t, 1)
		tc.clock.advance(10 * time.Second)
		resp, err := edge.Pull("CA1", from)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Issuance == nil {
			t.Fatalf("cycle %d: no issuance", i)
		}
		from = resp.Issuance.Root.N
	}

	st := edge.Stats()
	if st.Entries > 8 {
		t.Errorf("cache holds %d entries after %d cycles, want O(live keys) (≤8)", st.Entries, cycles)
	}
	if st.Entries+st.Evictions != st.Misses {
		t.Errorf("entries (%d) + evictions (%d) != inserts (%d): entries leaked",
			st.Entries, st.Evictions, st.Misses)
	}
	if st.Evictions < cycles-10 {
		t.Errorf("evictions = %d, want ≈%d (every superseded from evicted)", st.Evictions, cycles)
	}
}

// TestEdgeMaxEntriesCap fills an edge with more distinct live keys than
// the configured cap (one key per CA, so TTL and stale-offset sweeps
// cannot reclaim anything) and asserts the oldest entries are dropped.
func TestEdgeMaxEntriesCap(t *testing.T) {
	clock := newTestClock()
	dp := NewDistributionPoint(clock.now)
	const cas = 20
	ids := make([]dictionary.CAID, cas)
	for i := range ids {
		tc := newTestCA(t, dictionary.CAID([]byte{'C', 'A', byte('A' + i)}))
		ids[i] = dictionary.CAID([]byte{'C', 'A', byte('A' + i)})
		if err := dp.RegisterCA(ids[i], tc.auth.PublicKey()); err != nil {
			t.Fatal(err)
		}
		msg, err := tc.auth.Insert(tc.gen.NextN(1), clock.now().Unix())
		if err != nil {
			t.Fatal(err)
		}
		if err := dp.PublishIssuance(msg); err != nil {
			t.Fatal(err)
		}
	}

	edge := NewEdgeServer(dp, time.Hour, clock.now)
	edge.SetMaxEntries(8)
	for _, id := range ids {
		if _, err := edge.Pull(id, 0); err != nil {
			t.Fatal(err)
		}
		clock.advance(time.Second) // distinct ages for deterministic oldest-first drops
	}
	st := edge.Stats()
	if st.Entries > 8 {
		t.Errorf("cache holds %d entries, cap is 8", st.Entries)
	}
	if st.Evictions < cas-8 {
		t.Errorf("evictions = %d, want ≥%d (%d inserts, cap 8)", st.Evictions, cas-8, cas)
	}
	// The newest key must have survived the oldest-first cap eviction.
	if _, err := edge.Pull(ids[cas-1], 0); err != nil {
		t.Fatal(err)
	}
	if after := edge.Stats(); after.Hits != st.Hits+1 {
		t.Error("newest entry was evicted before older ones")
	}
}

// gatedOrigin blocks every Pull until released, counting upstream calls —
// the stampede scenario: many RAs miss the same key at the same instant.
type gatedOrigin struct {
	Origin
	release chan struct{}
	calls   atomic.Int64
}

func (g *gatedOrigin) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	g.calls.Add(1)
	<-g.release
	return g.Origin.Pull(ca, from)
}

// TestEdgeSingleflightCollapse stampedes one edge key with 16 concurrent
// pulls and asserts the origin is contacted exactly once; everyone else is
// served by joining the in-flight fetch or from the freshly filled cache.
// Run under -race: the singleflight bookkeeping is the point.
func TestEdgeSingleflightCollapse(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 5)
	gate := &gatedOrigin{Origin: tc.dp, release: make(chan struct{})}
	edge := NewEdgeServer(gate, time.Hour, tc.clock.now)

	const pullers = 16
	var started, wg sync.WaitGroup
	errs := make([]error, pullers)
	resps := make([]*PullResponse, pullers)
	started.Add(pullers)
	wg.Add(pullers)
	for i := 0; i < pullers; i++ {
		go func(i int) {
			defer wg.Done()
			started.Done()
			resps[i], errs[i] = edge.Pull("CA1", 0)
		}(i)
	}
	started.Wait()
	time.Sleep(100 * time.Millisecond) // let the pullers pile onto the in-flight call
	close(gate.release)
	wg.Wait()

	for i := 0; i < pullers; i++ {
		if errs[i] != nil {
			t.Fatalf("puller %d: %v", i, errs[i])
		}
		if got := len(resps[i].Issuance.Serials); got != 5 {
			t.Fatalf("puller %d got %d serials, want 5", i, got)
		}
	}
	if calls := gate.calls.Load(); calls != 1 {
		t.Errorf("origin saw %d pulls, want 1 (stampede not collapsed)", calls)
	}
	st := edge.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.CollapsedPulls != pullers-1 {
		t.Errorf("hits (%d) + collapsed (%d) = %d, want %d",
			st.Hits, st.CollapsedPulls, st.Hits+st.CollapsedPulls, pullers-1)
	}
	if st.CollapsedPulls == 0 {
		t.Error("no pulls collapsed onto the in-flight fetch")
	}
}

// TestEdgeSingleflightErrorNotCached verifies a failed collapsed fetch
// propagates the error to every waiter and is not cached: the next pull
// retries the upstream.
func TestEdgeSingleflightErrorNotCached(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 1)
	flaky := &flakyOrigin{Origin: tc.dp}
	edge := NewEdgeServer(flaky, time.Hour, tc.clock.now)

	flaky.broken.Store(true)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = edge.Pull("CA1", 0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("puller %d succeeded through a broken upstream", i)
		}
	}
	// Every failed pull is visible in the stats — outage health must not
	// read as 100% hit rate.
	if st := edge.Stats(); st.Errors != 4 {
		t.Errorf("errors = %d, want 4", st.Errors)
	}
	flaky.broken.Store(false)
	resp, err := edge.Pull("CA1", 0)
	if err != nil {
		t.Fatalf("pull after upstream recovery: %v", err)
	}
	if len(resp.Issuance.Serials) != 1 {
		t.Errorf("recovered pull returned %d serials, want 1", len(resp.Issuance.Serials))
	}
}

// swapOrigin lets a test replace the edge's upstream mid-flight,
// simulating an origin restart behind a long-lived edge.
type swapOrigin struct {
	mu sync.Mutex
	o  Origin
}

func (s *swapOrigin) set(o Origin) { s.mu.Lock(); s.o = o; s.mu.Unlock() }
func (s *swapOrigin) get() Origin  { s.mu.Lock(); defer s.mu.Unlock(); return s.o }

func (s *swapOrigin) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	return s.get().Pull(ca, from)
}
func (s *swapOrigin) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	return s.get().LatestRoot(ca)
}
func (s *swapOrigin) CAs() ([]dictionary.CAID, error) { return s.get().CAs() }

// TestEdgeStaleFromClampAfterOriginRegression: an origin restart with a
// shorter history must not leave the edge's stale-from high-water mark
// pointing at the old count — that would make every sweep evict the
// fleet's new, lower-from entries forever. The clamp derives the live
// bound from the served root's count.
func TestEdgeStaleFromClampAfterOriginRegression(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 5)

	up := &swapOrigin{o: tc.dp}
	const ttl = 30 * time.Second
	edge := NewEdgeServer(up, ttl, tc.clock.now)
	if _, err := edge.Pull("CA1", 5); err != nil { // latest[CA1] = 5
		t.Fatal(err)
	}

	// Restart: a fresh, empty distribution point — the fleet Resyncs to
	// count 0 and pulls (CA1, 0) from now on.
	dp2 := NewDistributionPoint(tc.clock.now)
	if err := dp2.RegisterCA("CA1", tc.auth.PublicKey()); err != nil {
		t.Fatal(err)
	}
	up.set(dp2)

	tc.clock.advance(ttl - time.Second)
	if _, err := edge.Pull("CA1", 0); err != nil { // cached fresh, clamps latest → 0
		t.Fatal(err)
	}
	// Past the TTL boundary the next pull sweeps: the dead (CA1, 5) entry
	// expires, but the 2s-old (CA1, 0) entry must survive — without the
	// clamp it is evicted as stale (0 < 5) and every post-regression pull
	// re-fetches from the origin until an operator Flush.
	tc.clock.advance(2 * time.Second)
	before := edge.Stats()
	if _, err := edge.Pull("CA1", 0); err != nil {
		t.Fatal(err)
	}
	after := edge.Stats()
	if after.Hits != before.Hits+1 {
		t.Errorf("post-regression (CA1, 0) entry was swept as stale: hits %d → %d (stats %+v)",
			before.Hits, after.Hits, after)
	}
	if after.Evictions < 1 {
		t.Errorf("dead pre-regression entry not evicted: %+v", after)
	}
}

// TestPullResponseEncodedMemoized asserts the response's wire encoding is
// computed once and shared: the seed re-serialized on every Encode call —
// twice per edge miss just for byte accounting, once more in the HTTP
// handler.
func TestPullResponseEncodedMemoized(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 3)
	resp, err := tc.dp.Pull("CA1", 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := resp.Encoded(), resp.Encoded()
	if len(a) == 0 {
		t.Fatal("empty encoding")
	}
	if &a[0] != &b[0] {
		t.Error("Encoded re-serialized instead of returning the memoized buffer")
	}
	if c := resp.Encode(); &c[0] != &a[0] {
		t.Error("Encode did not share the memoized buffer")
	}
	if resp.Size() != len(a) {
		t.Errorf("Size = %d, want %d", resp.Size(), len(a))
	}

	// A decoded response is seeded with the parsed bytes.
	decoded, err := DecodePullResponse(a)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := decoded.Encoded(), decoded.Encoded()
	if &d1[0] != &d2[0] {
		t.Error("decoded response re-serialized instead of reusing the parsed buffer")
	}
	if string(d1) != string(a) {
		t.Error("decoded response's seeded encoding differs from the original")
	}
}

// TestDistributionPointParallelPull hammers the origin's read path from
// many goroutines while a publisher ingests, exercising the atomic
// counters and the atomic freshness pointer under -race (the seed
// serialized every pull behind the exclusive write lock).
func TestDistributionPointParallelPull(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 10)

	const (
		pullers  = 8
		perPull  = 200
		refreshN = 20
	)
	var wg sync.WaitGroup
	for i := 0; i < pullers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perPull; j++ {
				resp, err := tc.dp.Pull("CA1", 0)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.Issuance == nil {
					t.Error("pull lost issuance")
					return
				}
			}
		}()
	}
	// Concurrent ingest: freshness refreshes race the pulls. (Not
	// tc.refresh: t.Fatal must not run off the test goroutine.)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < refreshN; j++ {
			st, err := tc.auth.Statement(tc.clock.now().Unix())
			if err != nil {
				t.Error(err)
				return
			}
			if err := tc.dp.PublishFreshness(st); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if got := tc.dp.Stats().Pulls; got != pullers*perPull {
		t.Errorf("pull counter = %d, want %d", got, pullers*perPull)
	}
}
