package cdn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ritm/internal/dictionary"
	"ritm/internal/storage"
)

// WAL-shipping replication: PR 5's durable log is already a replication
// log — CRC-framed, LSN-stamped records of exactly the signed messages
// that cross trust boundaries — so a follower origin replicates the
// leader by tailing that log over `/v1/replicate?ca=...&from_lsn=...`
// and applying each frame through the same verification the recovery
// path uses. The leader is NOT trusted: every update record must carry a
// CA-signed root that matches the locally rebuilt dictionary, so a
// compromised or split-brain leader's frames are rejected, not mirrored.
// A follower that has verified the leader's history serves byte-identical
// signed roots — and therefore byte-identical /v1/root ETags — which is
// what lets edges keep revalidating with 304s across a promotion.

// ErrNoReplication reports a replication request against an origin (or a
// CA) without a tailable durable log. Origins opt into serving
// replication by being storage-backed with a storage.Tailer log — both
// built-in backends qualify.
var ErrNoReplication = errors.New("cdn: origin does not serve replication")

// ErrReplicationDiverged reports a leader whose history cannot be
// reconciled with the follower's verified state: a regressed LSN
// sequence, a gap in the shipped frames, or a snapshot/frame that fails
// signed-root verification. The follower keeps its own state; operators
// (or the follower's next bootstrap cycle) decide what to do with the
// divergent leader.
var ErrReplicationDiverged = errors.New("cdn: leader history diverges from follower state")

// ReplicationResponse is the answer to one replication request: the
// leader's log position plus everything after the requested LSN. Frames
// are the leader's WAL records in the exact storage frame encoding; the
// snapshot is present only when the requested position predates the
// leader's checkpoint (the WAL alone cannot bridge the gap — covered
// records were truncated).
type ReplicationResponse struct {
	// CheckpointLSN is the LSN the leader's newest checkpoint covers
	// (0 = none).
	CheckpointLSN uint64
	// LastLSN is the leader's highest committed LSN (0 = empty log). A
	// follower already at LastLSN is caught up.
	LastLSN uint64
	// Snapshot is the leader's checkpoint state (a dictionary
	// PersistentState), shipped only for bootstrap/catch-up; nil otherwise.
	Snapshot []byte
	// Frames are the WAL records with LSN > max(from, CheckpointLSN).
	Frames []storage.Frame
}

// Encode serializes the response: a fixed header (checkpoint LSN, last
// LSN, snapshot length + snapshot) followed by the raw storage frames.
func (rr *ReplicationResponse) Encode() []byte {
	buf := make([]byte, 0, 20+len(rr.Snapshot)+64)
	buf = binary.BigEndian.AppendUint64(buf, rr.CheckpointLSN)
	buf = binary.BigEndian.AppendUint64(buf, rr.LastLSN)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rr.Snapshot)))
	buf = append(buf, rr.Snapshot...)
	return storage.EncodeFrames(buf, rr.Frames)
}

// DecodeReplicationResponse parses a response encoded by Encode. Frame
// decoding is strict (length and CRC validated); a truncated or corrupted
// body is an error, never a silently shorter history.
func DecodeReplicationResponse(buf []byte) (*ReplicationResponse, error) {
	if len(buf) < 20 {
		return nil, fmt.Errorf("cdn: replication response of %d bytes is truncated", len(buf))
	}
	rr := &ReplicationResponse{
		CheckpointLSN: binary.BigEndian.Uint64(buf[:8]),
		LastLSN:       binary.BigEndian.Uint64(buf[8:16]),
	}
	snapLen := binary.BigEndian.Uint32(buf[16:20])
	rest := buf[20:]
	if snapLen > 0 {
		if uint64(len(rest)) < uint64(snapLen) {
			return nil, fmt.Errorf("cdn: replication snapshot truncated (%d of %d bytes)", len(rest), snapLen)
		}
		rr.Snapshot = append([]byte(nil), rest[:snapLen]...)
		rest = rest[snapLen:]
	}
	frames, err := storage.DecodeFrames(rest)
	if err != nil {
		return nil, fmt.Errorf("cdn: replication frames: %w", err)
	}
	rr.Frames = frames
	return rr, nil
}

// Replicator is the replication-source API: DistributionPoint (a
// storage-backed one) and HTTPClient implement it; ShardedOrigin does not
// — replication is per-origin, pulls are per-fleet.
type Replicator interface {
	Replicate(ca dictionary.CAID, fromLSN uint64) (*ReplicationResponse, error)
}

// Replicate implements Replicator: it serves the suffix of ca's durable
// log after fromLSN, straight from the storage tier's tail API. The
// response carries history, not authority — every record re-verifies
// against the CA's trust anchor on the follower.
func (dp *DistributionPoint) Replicate(ca dictionary.CAID, fromLSN uint64) (*ReplicationResponse, error) {
	dp.mu.RLock()
	_, ok := dp.dicts[ca]
	dl := dp.logs[ca]
	dp.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownCA, ca)
	}
	if dl == nil {
		return nil, fmt.Errorf("%w (%s: no durable log)", ErrNoReplication, ca)
	}
	dl.mu.Lock()
	defer dl.mu.Unlock()
	tailer, ok := dl.log.(storage.Tailer)
	if !ok {
		return nil, fmt.Errorf("%w (%s: log backend cannot tail)", ErrNoReplication, ca)
	}
	res, err := tailer.Tail(fromLSN)
	if err != nil {
		return nil, fmt.Errorf("cdn: replicate %s: %w", ca, err)
	}
	return &ReplicationResponse{
		CheckpointLSN: res.CheckpointLSN,
		LastLSN:       res.LastLSN,
		Snapshot:      res.Checkpoint,
		Frames:        res.Frames,
	}, nil
}

// ApplyReplicated applies one leader WAL payload (an update or freshness
// record) to ca's local replica with full verification — the same
// acceptance rule as a message fresh off the network — and, when it
// advanced the state and this origin is storage-backed, persists the
// exact payload bytes to the local log. The follower's WAL therefore
// mirrors the leader's record stream (under local LSNs), so the
// follower's own recovery — and its own downstream followers — replay
// the same verified history.
func (dp *DistributionPoint) ApplyReplicated(ca dictionary.CAID, payload []byte) error {
	dp.mu.RLock()
	r, ok := dp.dicts[ca]
	dl := dp.logs[ca]
	dp.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCA, ca)
	}
	if dl != nil {
		dl.mu.Lock()
		defer dl.mu.Unlock()
	}
	gen := r.Snapshot().Generation()
	if err := dictionary.ApplyLogRecord(r, payload, dp.now().Unix()); err != nil {
		return fmt.Errorf("%w: %v", ErrReplicationDiverged, err)
	}
	if dl == nil || r.Snapshot().Generation() == gen {
		return nil
	}
	if err := dl.log.Append(payload); err != nil {
		return fmt.Errorf("cdn: persist replicated record for %s: %w", ca, err)
	}
	if dictionary.IsFreshnessRecord(payload) {
		return nil // tiny, idempotent; no checkpoint cadence
	}
	dl.appended++
	if dl.appended < dp.ckptEvery {
		return nil
	}
	if err := dl.log.Checkpoint(r.PersistentStateV2()); err != nil {
		return fmt.Errorf("cdn: checkpoint %s: %w", ca, err)
	}
	dl.appended = 0
	return nil
}

// AdoptReplicatedState bootstraps ca's replica from a leader checkpoint
// snapshot. The snapshot is rebuilt through the anchor-verifying restore
// path (RestoreReplica replays the log and accepts it only if the rebuilt
// root matches the CA-signed root), then guarded against the two leader
// failure modes a signature cannot catch: count regression (the "leader"
// has less verified history than we do — adopting would un-revoke
// certificates) and log divergence (same-key equivocation: the genuine CA
// key signing two histories; detectable exactly because we still hold
// ours). On success the restored replica replaces the current one and is
// checkpointed locally.
func (dp *DistributionPoint) AdoptReplicatedState(ca dictionary.CAID, state []byte) error {
	st, err := dictionary.DecodePersistentState(state)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrReplicationDiverged, err)
	}
	dp.mu.RLock()
	r, ok := dp.dicts[ca]
	dp.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownCA, ca)
	}
	if st.Layout != r.Layout() {
		return fmt.Errorf("%w: leader snapshot layout %v, local replica %v", ErrReplicationDiverged, st.Layout, r.Layout())
	}
	// The slow part — full anchor-verified replay — runs lock-free; the
	// trust anchor and layout are immutable per registration.
	restored, err := dictionary.RestoreReplica(ca, r.PublicKey(), st, dp.now().Unix())
	if err != nil {
		return fmt.Errorf("%w: %v", ErrReplicationDiverged, err)
	}
	// The swap takes the write lock (ordered with registration and Close;
	// lock order dp.mu → dl.mu matches Close), but the lock is dropped
	// before the checkpoint's disk I/O so pulls of other CAs never stall
	// behind a bootstrap.
	dp.mu.Lock()
	cur2, ok := dp.dicts[ca]
	if !ok {
		dp.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownCA, ca)
	}
	dl := dp.logs[ca]
	if dl != nil {
		dl.mu.Lock()
	}
	cur := cur2.Snapshot()
	if refused := func() error {
		if restored.Count() < cur.Count() {
			return fmt.Errorf("%w: leader snapshot has %d revocations, follower verified %d", ErrReplicationDiverged, restored.Count(), cur.Count())
		}
		curLog := cur.Log()
		newLog := restored.Snapshot().Log()
		for i := range curLog {
			if !curLog[i].Equal(newLog[i]) {
				return fmt.Errorf("%w: issuance logs disagree at revocation %d (same-key equivocation?)", ErrReplicationDiverged, i)
			}
		}
		return nil
	}(); refused != nil {
		if dl != nil {
			dl.mu.Unlock()
		}
		dp.mu.Unlock()
		return refused
	}
	dp.dicts[ca] = restored
	dp.mu.Unlock()
	if dl != nil {
		err := dl.log.Checkpoint(restored.PersistentStateV2())
		if err == nil {
			dl.appended = 0
		}
		dl.mu.Unlock()
		if err != nil {
			return fmt.Errorf("cdn: checkpoint adopted state for %s: %w", ca, err)
		}
	}
	return nil
}

// Follower tails a leader's per-CA WAL into a local DistributionPoint.
// One Follower serves one (local origin, leader) pair; its sync cycle
// asks the leader for everything after the last applied leader LSN and
// applies it with full verification. Positions are in-memory only: a
// restarted follower re-tails from 0 and converges through the
// overlap-tolerant apply path (covered records verify as no-ops), at the
// cost of one bootstrap-sized response.
//
// The local origin remains a fully capable DistributionPoint throughout:
// it serves pulls (edges can read from followers), serves its own
// /v1/replicate (followers chain), and on promotion simply keeps serving
// — same replica, same signed-root bytes, same ETags — while the CA
// re-attaches via PublishIssuance.
type Follower struct {
	dp     *DistributionPoint
	source Replicator

	mu  sync.Mutex
	pos map[dictionary.CAID]uint64 // last applied leader LSN
	top map[dictionary.CAID]uint64 // leader's LastLSN from the latest response

	stats followerCounters
}

// followerCounters is the lock-free backing store for FollowerStats.
type followerCounters struct {
	syncs     atomic.Int64
	frames    atomic.Int64
	snapshots atomic.Int64
	rejected  atomic.Int64
	resets    atomic.Int64
	errors    atomic.Int64
}

// FollowerStats counts replication activity.
type FollowerStats struct {
	// Syncs counts completed sync attempts (successful or not).
	Syncs int
	// FramesApplied counts leader WAL frames verified and applied.
	FramesApplied int
	// SnapshotsAdopted counts checkpoint bootstraps.
	SnapshotsAdopted int
	// Rejected counts frames or snapshots refused by verification — a
	// nonzero value under a supposedly honest leader is an alarm.
	Rejected int
	// Resets counts position resets after a leader whose LSN sequence
	// regressed or gapped (leader re-recovery, or a different leader).
	Resets int
	// Errors counts failed sync attempts.
	Errors int
}

// NewFollower builds a follower applying source's history into dp. The
// distribution point must already have the followed CAs registered (the
// trust anchors come from registration, never from the leader).
func NewFollower(dp *DistributionPoint, source Replicator) *Follower {
	return &Follower{
		dp:     dp,
		source: source,
		pos:    make(map[dictionary.CAID]uint64),
		top:    make(map[dictionary.CAID]uint64),
	}
}

// Position returns the last applied leader LSN for ca.
func (f *Follower) Position(ca dictionary.CAID) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pos[ca]
}

// Lag returns how many leader records for ca are committed but not yet
// applied here, as of the latest sync.
func (f *Follower) Lag(ca dictionary.CAID) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.top[ca] <= f.pos[ca] {
		return 0
	}
	return f.top[ca] - f.pos[ca]
}

// Stats returns a copy of the follower's counters.
func (f *Follower) Stats() FollowerStats {
	return FollowerStats{
		Syncs:            int(f.stats.syncs.Load()),
		FramesApplied:    int(f.stats.frames.Load()),
		SnapshotsAdopted: int(f.stats.snapshots.Load()),
		Rejected:         int(f.stats.rejected.Load()),
		Resets:           int(f.stats.resets.Load()),
		Errors:           int(f.stats.errors.Load()),
	}
}

// SyncCA replicates one CA: fetch the leader's suffix after our position,
// adopt the snapshot if one was needed, then apply the frames in order.
func (f *Follower) SyncCA(ca dictionary.CAID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.syncs.Add(1)
	err := f.syncCALocked(ca)
	if err != nil {
		f.stats.errors.Add(1)
	}
	return err
}

func (f *Follower) syncCALocked(ca dictionary.CAID) error {
	from := f.pos[ca]
	resp, err := f.source.Replicate(ca, from)
	if err != nil {
		return fmt.Errorf("cdn: follower sync %s: %w", ca, err)
	}
	f.top[ca] = resp.LastLSN
	if resp.LastLSN < from {
		// The leader's log ends before our position: a leader that lost
		// acknowledged records to a crash (its recovery renumbered), or a
		// different self-proclaimed leader entirely. Reset so the next
		// cycle re-tails from 0 — verification decides what survives; a
		// divergent history still gets rejected record by record.
		f.pos[ca] = 0
		f.stats.resets.Add(1)
		return fmt.Errorf("%w: leader log ends at LSN %d, follower applied %d (%s)", ErrReplicationDiverged, resp.LastLSN, from, ca)
	}
	pos := from
	if resp.Snapshot != nil {
		if err := f.dp.AdoptReplicatedState(ca, resp.Snapshot); err != nil {
			f.stats.rejected.Add(1)
			return err
		}
		f.stats.snapshots.Add(1)
		pos = resp.CheckpointLSN
		f.pos[ca] = pos
	}
	for _, fr := range resp.Frames {
		if fr.LSN <= pos {
			continue
		}
		if fr.LSN != pos+1 {
			f.pos[ca] = 0
			f.stats.resets.Add(1)
			return fmt.Errorf("%w: frame gap %d → %d (%s)", ErrReplicationDiverged, pos, fr.LSN, ca)
		}
		if err := f.dp.ApplyReplicated(ca, fr.Payload); err != nil {
			f.stats.rejected.Add(1)
			return err
		}
		pos = fr.LSN
		f.pos[ca] = pos
		f.stats.frames.Add(1)
	}
	return nil
}

// SyncOnce replicates every CA registered on the local origin. Per-CA
// errors are isolated — one CA's divergence or transport failure does not
// stop the others — and joined into the returned error.
func (f *Follower) SyncOnce() error {
	cas, err := f.dp.CAs()
	if err != nil {
		return err
	}
	var errs []error
	for _, ca := range cas {
		if err := f.SyncCA(ca); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// FollowerLoop is a running background replication loop.
type FollowerLoop struct {
	stop chan struct{}
	done chan struct{}
}

// Start launches a background loop calling SyncOnce every interval.
// Choose interval well inside ∆ (∆/4 is a good default): replication lag
// directly bounds how much acknowledged history a leader crash can lose.
// onError (optional) observes per-cycle errors.
func (f *Follower) Start(interval time.Duration, onError func(error)) *FollowerLoop {
	if interval <= 0 {
		interval = time.Second
	}
	loop := &FollowerLoop{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(loop.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			if err := f.SyncOnce(); err != nil && onError != nil {
				onError(err)
			}
			select {
			case <-loop.stop:
				return
			case <-ticker.C:
			}
		}
	}()
	return loop
}

// Shutdown stops the loop and waits for the in-flight cycle to finish.
func (l *FollowerLoop) Shutdown() {
	close(l.stop)
	<-l.done
}
