package cdn

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ritm/internal/dictionary"
)

// Failure-injection tests: the dissemination network must degrade into
// clean errors — never panics, hangs, or silently wrong data — when the
// transport misbehaves. The client-side 2∆ policy converts persistent
// dissemination failure into connection interruption, so "fail loudly and
// recover on the next pull" is the required behavior.

func TestHTTPClientAgainstBrokenServer(t *testing.T) {
	tests := []struct {
		name    string
		handler http.HandlerFunc
	}{
		{"internal error", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		}},
		{"garbage body", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte{0xde, 0xad, 0xbe, 0xef})
		}},
		{"empty body", func(w http.ResponseWriter, r *http.Request) {}},
		{"html error page", func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("<html>captive portal</html>"))
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			srv := httptest.NewServer(tt.handler)
			defer srv.Close()
			client := &HTTPClient{BaseURL: srv.URL}
			if _, err := client.Pull("CA1", 0); err == nil {
				t.Error("broken pull succeeded")
			}
			if _, err := client.LatestRoot("CA1"); err == nil {
				t.Error("broken root fetch succeeded")
			}
		})
	}
}

func TestHTTPClientAgainstDeadServer(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // connection refused from here on
	client := &HTTPClient{BaseURL: srv.URL, Client: &http.Client{Timeout: time.Second}}
	if _, err := client.Pull("CA1", 0); err == nil {
		t.Error("pull against dead server succeeded")
	}
	if _, err := client.CAs(); err == nil {
		t.Error("CAs against dead server succeeded")
	}
}

// flakyOrigin fails every pull until healed.
type flakyOrigin struct {
	Origin
	broken atomic.Bool
}

func (f *flakyOrigin) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	if f.broken.Load() {
		return nil, ErrUnknownCA
	}
	return f.Origin.Pull(ca, from)
}

func TestEdgeServerFlakyUpstreamRecovery(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 3)
	flaky := &flakyOrigin{Origin: tc.dp}
	edge := NewEdgeServer(flaky, 0, tc.clock.now)

	flaky.broken.Store(true)
	if _, err := edge.Pull("CA1", 0); err == nil {
		t.Fatal("pull through broken upstream succeeded")
	}
	// The failure is not cached: once the upstream heals, pulls work.
	flaky.broken.Store(false)
	resp, err := edge.Pull("CA1", 0)
	if err != nil {
		t.Fatalf("pull after recovery: %v", err)
	}
	if len(resp.Issuance.Serials) != 3 {
		t.Errorf("recovered pull returned %d serials", len(resp.Issuance.Serials))
	}
}

func TestDistributionPointReplayedStaleMessageRejected(t *testing.T) {
	// A network-level replay of an OLD issuance message (lower n) must not
	// regress the distribution point's state.
	tc := newTestCA(t, "CA1")
	first := tc.gen.NextN(2)
	msg1, err := tc.auth.Insert(first, tc.clock.now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.dp.PublishIssuance(msg1); err != nil {
		t.Fatal(err)
	}
	msg2, err := tc.auth.Insert(tc.gen.NextN(2), tc.clock.now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.dp.PublishIssuance(msg2); err != nil {
		t.Fatal(err)
	}

	// Replay the first message: count no longer extends the replica.
	if err := tc.dp.PublishIssuance(msg1); err == nil {
		t.Error("replayed stale issuance accepted")
	}
	root, err := tc.dp.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if root.N != 4 {
		t.Errorf("state regressed to n=%d", root.N)
	}
}
