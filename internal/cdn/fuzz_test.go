package cdn

import (
	"bytes"
	"testing"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// FuzzDecodePullResponse hardens the wire decoder against the bodies a
// broken transport can produce: truncations at every depth (the overflow
// guard's sibling failure mode), bit flips, and length-field lies. The
// seed corpus covers every branch shape of the encoding — full response,
// issuance-only, freshness-only, empty — plus classic malformations.
func FuzzDecodePullResponse(f *testing.F) {
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		f.Fatal(err)
	}
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     "FuzzCA",
		Signer: signer,
		Delta:  10 * time.Second,
	}, 1_400_000_000)
	if err != nil {
		f.Fatal(err)
	}
	msg, err := auth.Insert(serial.NewGenerator(7, nil).NextN(3), 1_400_000_000)
	if err != nil {
		f.Fatal(err)
	}
	full := (&PullResponse{
		Issuance:  msg,
		Freshness: &dictionary.FreshnessStatement{CA: "FuzzCA", Value: cryptoutil.HashBytes([]byte("v"))},
	}).Encoded()

	f.Add(full) // well-formed, both fields
	f.Add((&PullResponse{Issuance: msg}).Encoded())
	f.Add((&PullResponse{Freshness: &dictionary.FreshnessStatement{CA: "FuzzCA"}}).Encoded())
	f.Add((&PullResponse{}).Encoded())          // both flags false
	f.Add([]byte{})                             // empty body
	f.Add(full[:1])                             // flag only
	f.Add(full[:len(full)/2])                   // mid-field truncation
	f.Add(full[:len(full)-1])                   // one byte short
	f.Add(append(append([]byte{}, full...), 0)) // trailing garbage
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})       // garbage
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0xff})    // length-field lie

	f.Fuzz(func(t *testing.T, data []byte) {
		pr, err := DecodePullResponse(data)
		if err != nil {
			return // rejection is always acceptable; panics/hangs are the bug
		}
		// Accepted input: the memoized encoding must be the exact bytes
		// parsed (decode seeds the memo), and re-decoding them must agree.
		if !bytes.Equal(pr.Encoded(), data) {
			t.Fatalf("accepted input re-encodes differently:\n in: %x\nout: %x", data, pr.Encoded())
		}
		again, err := DecodePullResponse(pr.Encoded())
		if err != nil {
			t.Fatalf("accepted encoding failed second decode: %v", err)
		}
		if (again.Issuance == nil) != (pr.Issuance == nil) || (again.Freshness == nil) != (pr.Freshness == nil) {
			t.Fatal("second decode changed field presence")
		}
	})
}
