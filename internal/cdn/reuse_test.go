package cdn

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDefaultClientReusesConnections pins the keep-alive behavior of the
// default (no explicit http.Client) HTTPClient path. The regression this
// guards: falling back to http.DefaultClient caps the idle pool at 2
// connections per host, so a fleet's concurrent pulls against one edge
// host churned TCP connections — a burst of 8 parallel requests followed
// by another burst re-dialed most of them. With the shared tuned
// transport, every connection opened by the first burst is reusable by
// the second.
func TestDefaultClientReusesConnections(t *testing.T) {
	var conns atomic.Int64
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("CA1\n"))
	}))
	srv.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	client := &HTTPClient{BaseURL: srv.URL} // nil Client: the shared default transport
	const parallel = 8

	burst := func() {
		var wg sync.WaitGroup
		for i := 0; i < parallel; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := client.CAs(); err != nil {
					t.Errorf("CAs: %v", err)
				}
			}()
		}
		wg.Wait()
	}

	burst()
	after1 := conns.Load()
	if after1 > parallel {
		t.Fatalf("first burst of %d requests opened %d connections", parallel, after1)
	}
	// Let the final bodies be returned to the idle pool before re-bursting.
	time.Sleep(100 * time.Millisecond)
	burst()
	if after2 := conns.Load(); after2 != after1 {
		t.Errorf("second burst opened %d new connections (total %d); the idle pool should have satisfied all %d",
			after2-after1, after2, parallel)
	}
}
