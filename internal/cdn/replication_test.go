package cdn

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/storage"
)

// Replication suite: a follower origin tails the leader's WAL over the
// Replicator API and must (a) converge to byte-identical signed roots,
// (b) bootstrap through checkpoints, and (c) reject compromised or
// split-brain leaders — wrong key AND same-key equivocation.

// replLeader is a storage-backed origin fed by an in-process authority.
type replLeader struct {
	clock  *testClock
	signer *cryptoutil.Signer
	auth   *dictionary.Authority
	dp     *DistributionPoint
	gen    *serial.Generator
}

func newReplLeader(t *testing.T, id dictionary.CAID, signer *cryptoutil.Signer, serialSeed uint64, ckptEvery int) *replLeader {
	t.Helper()
	clock := newTestClock()
	if signer == nil {
		var err error
		if signer, err = cryptoutil.NewSigner(nil); err != nil {
			t.Fatal(err)
		}
	}
	auth, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:     id,
		Signer: signer,
		Delta:  10 * time.Second,
	}, clock.now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	dp := NewDistributionPointWithStorage(clock.now, storage.NewMemory(), ckptEvery)
	if err := dp.RegisterCA(id, signer.Public()); err != nil {
		t.Fatal(err)
	}
	return &replLeader{clock: clock, signer: signer, auth: auth, dp: dp, gen: serial.NewGenerator(serialSeed, nil)}
}

func (l *replLeader) revoke(t *testing.T, count int) []serial.Number {
	t.Helper()
	serials := l.gen.NextN(count)
	msg, err := l.auth.Insert(serials, l.clock.now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.dp.PublishIssuance(msg); err != nil {
		t.Fatal(err)
	}
	return serials
}

func (l *replLeader) refresh(t *testing.T) {
	t.Helper()
	st, err := l.auth.Statement(l.clock.now().Unix())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.dp.PublishFreshness(st); err != nil {
		t.Fatal(err)
	}
}

// newFollowerDP builds an empty storage-backed origin trusting the same
// CA key (the anchor comes from registration, never from the leader).
func newFollowerDP(t *testing.T, id dictionary.CAID, pub []byte, clock *testClock, ckptEvery int) *DistributionPoint {
	t.Helper()
	dp := NewDistributionPointWithStorage(clock.now, storage.NewMemory(), ckptEvery)
	if err := dp.RegisterCA(id, pub); err != nil {
		t.Fatal(err)
	}
	return dp
}

func TestFollowerReplicatesLeader(t *testing.T) {
	leader := newReplLeader(t, "CA1", nil, 0x1001, 0)
	leader.revoke(t, 20)
	leader.revoke(t, 15)
	leader.refresh(t)

	fdp := newFollowerDP(t, "CA1", leader.signer.Public(), leader.clock, 0)
	f := NewFollower(fdp, leader.dp)
	if err := f.SyncCA("CA1"); err != nil {
		t.Fatal(err)
	}

	want, err := leader.dp.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fdp.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("follower's signed root differs from the leader's")
	}
	if got.N != 35 {
		t.Fatalf("follower at count %d, want 35", got.N)
	}
	// The freshness statement replicated too (it travels in the WAL).
	pr, err := fdp.Pull("CA1", 35)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Freshness == nil {
		t.Fatal("freshness statement did not replicate")
	}
	st := f.Stats()
	if st.FramesApplied == 0 || st.Rejected != 0 || st.Resets != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if f.Lag("CA1") != 0 {
		t.Fatalf("lag = %d after full sync", f.Lag("CA1"))
	}

	// Incremental: only the new frames ship on the next cycle.
	applied := st.FramesApplied
	leader.revoke(t, 5)
	if err := f.SyncCA("CA1"); err != nil {
		t.Fatal(err)
	}
	st = f.Stats()
	if st.FramesApplied != applied+1 {
		t.Fatalf("incremental sync applied %d frames, want 1", st.FramesApplied-applied)
	}
	root, _ := fdp.LatestRoot("CA1")
	if root.N != 40 {
		t.Fatalf("follower at %d after incremental sync, want 40", root.N)
	}
}

// TestFollowerPromotionKeepsETag pins the contract failover rests on: a
// synced follower serves byte-identical /v1/root responses, so an edge
// revalidating with the dead leader's ETag gets 304 from the promoted
// follower.
func TestFollowerPromotionKeepsETag(t *testing.T) {
	leader := newReplLeader(t, "CA1", nil, 0x1002, 0)
	leader.revoke(t, 30)
	fdp := newFollowerDP(t, "CA1", leader.signer.Public(), leader.clock, 0)
	if err := NewFollower(fdp, leader.dp).SyncCA("CA1"); err != nil {
		t.Fatal(err)
	}

	leaderSrv := httptest.NewServer(Handler(leader.dp))
	resp, err := http.Get(leaderSrv.URL + "/v1/root?ca=CA1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	leaderSrv.Close() // leader dies
	if etag == "" {
		t.Fatal("no ETag from leader")
	}

	followerSrv := httptest.NewServer(Handler(fdp))
	defer followerSrv.Close()
	req, _ := http.NewRequest(http.MethodGet, followerSrv.URL+"/v1/root?ca=CA1", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation against promoted follower: status %d, want 304", resp2.StatusCode)
	}
}

func TestFollowerCheckpointBootstrap(t *testing.T) {
	// checkpoint-every-1 leader: by the time the follower arrives, the
	// early WAL records are truncated and only a snapshot can bridge.
	leader := newReplLeader(t, "CA1", nil, 0x1003, 1)
	for i := 0; i < 4; i++ {
		leader.revoke(t, 10)
	}
	fdp := newFollowerDP(t, "CA1", leader.signer.Public(), leader.clock, 0)
	f := NewFollower(fdp, leader.dp)
	if err := f.SyncCA("CA1"); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.SnapshotsAdopted != 1 {
		t.Fatalf("snapshots adopted = %d, want 1", st.SnapshotsAdopted)
	}
	root, err := fdp.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if root.N != 40 {
		t.Fatalf("bootstrapped follower at %d, want 40", root.N)
	}
	want, _ := leader.dp.LatestRoot("CA1")
	if !root.Equal(want) {
		t.Fatal("bootstrapped root differs from leader")
	}
}

func TestReplicationSplitBrainWrongKey(t *testing.T) {
	honest := newReplLeader(t, "CA1", nil, 0x2001, 0)
	honest.revoke(t, 10)
	fdp := newFollowerDP(t, "CA1", honest.signer.Public(), honest.clock, 0)
	if err := NewFollower(fdp, honest.dp).SyncCA("CA1"); err != nil {
		t.Fatal(err)
	}

	// An impostor claims the same CA id with its own key. Its frames are
	// structurally valid WAL records — only signature verification against
	// the registered anchor can tell them apart.
	impostor := newReplLeader(t, "CA1", nil, 0x2002, 0)
	impostor.revoke(t, 25)

	f := NewFollower(fdp, impostor.dp)
	err := f.SyncCA("CA1")
	if !errors.Is(err, ErrReplicationDiverged) {
		t.Fatalf("impostor sync err = %v, want ErrReplicationDiverged", err)
	}
	if f.Stats().Rejected == 0 {
		t.Fatal("impostor records were not counted as rejected")
	}
	root, _ := fdp.LatestRoot("CA1")
	if root.N != 10 {
		t.Fatalf("follower state moved to %d under an impostor leader", root.N)
	}
}

func TestReplicationSplitBrainSameKey(t *testing.T) {
	// The harder case: the genuine CA key signs two divergent histories (a
	// compromised key, or a partitioned CA equivocating). Signatures
	// verify on both sides; what catches it is the follower still holding
	// its own verified history.
	var seed [32]byte
	copy(seed[:], []byte("split-brain-seed-0123456789abcdef"))
	signerA := cryptoutil.NewSignerFromSeed(seed)
	signerB := cryptoutil.NewSignerFromSeed(seed)

	branchA := newReplLeader(t, "CA1", signerA, 0x3001, 0)
	branchA.revoke(t, 10)
	fdp := newFollowerDP(t, "CA1", signerA.Public(), branchA.clock, 0)
	if err := NewFollower(fdp, branchA.dp).SyncCA("CA1"); err != nil {
		t.Fatal(err)
	}

	// Branch B: same key, same id, different revocations — via frames.
	branchB := newReplLeader(t, "CA1", signerB, 0x3002, 0)
	branchB.revoke(t, 10)
	fB := NewFollower(fdp, branchB.dp)
	if err := fB.SyncCA("CA1"); !errors.Is(err, ErrReplicationDiverged) {
		t.Fatalf("divergent-frames sync err = %v, want ErrReplicationDiverged", err)
	}

	// Branch C: same divergence shipped as a checkpoint snapshot — caught
	// by the issuance-log prefix comparison in AdoptReplicatedState.
	branchC := newReplLeader(t, "CA1", cryptoutil.NewSignerFromSeed(seed), 0x3003, 1)
	for i := 0; i < 3; i++ {
		branchC.revoke(t, 10)
	}
	fC := NewFollower(fdp, branchC.dp)
	if err := fC.SyncCA("CA1"); !errors.Is(err, ErrReplicationDiverged) {
		t.Fatalf("divergent-snapshot sync err = %v, want ErrReplicationDiverged", err)
	}
	if fC.Stats().Rejected == 0 {
		t.Fatal("divergent snapshot was not counted as rejected")
	}

	// The follower's own verified history survived every attempt.
	root, _ := fdp.LatestRoot("CA1")
	if root.N != 10 {
		t.Fatalf("follower at %d after split-brain attempts, want 10", root.N)
	}
	wantRoot, _ := branchA.dp.LatestRoot("CA1")
	if !root.Equal(wantRoot) {
		t.Fatal("follower root no longer matches its verified branch")
	}
}

func TestReplicateWithoutStorage(t *testing.T) {
	// A memory-only (no backend) origin has no WAL to ship.
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 3)
	if _, err := tc.dp.Replicate("CA1", 0); !errors.Is(err, ErrNoReplication) {
		t.Fatalf("err = %v, want ErrNoReplication", err)
	}
	if _, err := tc.dp.Replicate("GhostCA", 0); !errors.Is(err, ErrUnknownCA) {
		t.Fatalf("unknown CA err = %v, want ErrUnknownCA", err)
	}
}

// TestReplicationHTTPRoundTrip drives the full wire path: leader behind
// the HTTP handler, follower syncing through HTTPClient.Replicate.
func TestReplicationHTTPRoundTrip(t *testing.T) {
	leader := newReplLeader(t, "CA1", nil, 0x4001, 0)
	leader.revoke(t, 12)
	srv := httptest.NewServer(Handler(leader.dp))
	defer srv.Close()
	client := &HTTPClient{BaseURL: srv.URL}

	resp, err := client.Replicate("CA1", 0)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := leader.dp.Replicate("CA1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.LastLSN != direct.LastLSN || len(resp.Frames) != len(direct.Frames) {
		t.Fatalf("HTTP tail (last=%d, %d frames) differs from direct (last=%d, %d frames)",
			resp.LastLSN, len(resp.Frames), direct.LastLSN, len(direct.Frames))
	}

	fdp := newFollowerDP(t, "CA1", leader.signer.Public(), leader.clock, 0)
	f := NewFollower(fdp, client)
	if err := f.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	root, err := fdp.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if root.N != 12 {
		t.Fatalf("HTTP-synced follower at %d, want 12", root.N)
	}

	// Typed sentinels survive the wire.
	if _, err := client.Replicate("GhostCA", 0); !errors.Is(err, ErrUnknownCA) {
		t.Fatalf("unknown CA over HTTP: err = %v, want ErrUnknownCA", err)
	}
	memOnly := newTestCA(t, "CA2")
	srv2 := httptest.NewServer(Handler(memOnly.dp))
	defer srv2.Close()
	if _, err := (&HTTPClient{BaseURL: srv2.URL}).Replicate("CA2", 0); !errors.Is(err, ErrNoReplication) {
		t.Fatalf("no-storage origin over HTTP: err = %v, want ErrNoReplication", err)
	}
}
