package cdn

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ritm/internal/dictionary"
)

// TestStatusForMapping is the server-side half of the error contract:
// every sentinel (bare, wrapped once, wrapped repeatedly — as the edge
// chain does) maps to its status code by identity, and messages that
// merely MENTION a sentinel's text do not.
func TestStatusForMapping(t *testing.T) {
	tests := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, http.StatusOK},
		{"unknown ca", ErrUnknownCA, http.StatusNotFound},
		{"unknown ca wrapped", fmt.Errorf("%w: CA9", ErrUnknownCA), http.StatusNotFound},
		{"unknown ca double-wrapped", fmt.Errorf("edge pull: %w", fmt.Errorf("%w: CA9", ErrUnknownCA)), http.StatusNotFound},
		{"ahead", ErrAhead, http.StatusConflict},
		{"ahead wrapped", fmt.Errorf("edge pull: %w", ErrAhead), http.StatusConflict},
		{"untyped", errors.New("disk on fire"), http.StatusInternalServerError},
		// The seed's strings.Contains mapping would have classified these
		// two as 404/409; the typed mapping must not.
		{"mentions unknown text", errors.New("log: saw cdn: unknown CA once"), http.StatusInternalServerError},
		{"mentions ahead text", errors.New("note: cdn: requested count ahead of origin"), http.StatusInternalServerError},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := statusFor(tt.err); got != tt.want {
				t.Errorf("statusFor(%v) = %d, want %d", tt.err, got, tt.want)
			}
		})
	}
}

// TestErrorHeaderRoundTrip is the client-side half: for every (status,
// X-RITM-Error) combination a server can emit, the client reconstructs
// exactly the right sentinel — the header wins over the status code, and
// unknown header values fall back to the status mapping.
func TestErrorHeaderRoundTrip(t *testing.T) {
	tests := []struct {
		name   string
		status int
		header string // X-RITM-Error value ("" = absent)
		want   error  // sentinel errors.Is target (nil = untyped error expected)
	}{
		{"header unknown-ca", http.StatusNotFound, "unknown-ca", ErrUnknownCA},
		{"header ahead", http.StatusConflict, "ahead", ErrAhead},
		// A proxy rewrote the status but the header survives: typed
		// mapping is transport-proof.
		{"header beats status", http.StatusBadGateway, "unknown-ca", ErrUnknownCA},
		{"header ahead beats 404", http.StatusNotFound, "ahead", ErrAhead},
		// Legacy server: status-code fallback.
		{"bare 404", http.StatusNotFound, "", ErrUnknownCA},
		{"bare 409", http.StatusConflict, "", ErrAhead},
		// Unknown header value: fall back to the status code.
		{"unknown header value", http.StatusNotFound, "gibberish", ErrUnknownCA},
		{"untyped 500", http.StatusInternalServerError, "", nil},
		{"untyped 502", http.StatusBadGateway, "gibberish", nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if tt.header != "" {
					w.Header().Set(errorHeader, tt.header)
				}
				http.Error(w, "detail text", tt.status)
			}))
			defer srv.Close()
			client := &HTTPClient{BaseURL: srv.URL}
			_, err := client.Pull("CA1", 0)
			if err == nil {
				t.Fatal("error response decoded as success")
			}
			if tt.want != nil {
				if !errors.Is(err, tt.want) {
					t.Errorf("err = %v, want errors.Is(%v)", err, tt.want)
				}
			} else {
				if errors.Is(err, ErrUnknownCA) || errors.Is(err, ErrAhead) {
					t.Errorf("untyped response mapped to a sentinel: %v", err)
				}
			}
		})
	}
}

// TestHandlerEmitsErrorHeader asserts the server names the sentinel out
// of band on real error paths, including through an edge tier.
func TestHandlerEmitsErrorHeader(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 2)
	for _, origin := range map[string]Origin{
		"distribution point": tc.dp,
		"edge":               NewEdgeServer(tc.dp, time.Minute, tc.clock.now),
	} {
		srv := httptest.NewServer(Handler(origin))
		defer srv.Close()

		resp, err := http.Get(srv.URL + "/v1/pull?ca=CA9&from=0")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(errorHeader); got != errCodeUnknownCA {
			t.Errorf("unknown-CA pull: %s = %q, want %q", errorHeader, got, errCodeUnknownCA)
		}
		resp, err = http.Get(srv.URL + "/v1/pull?ca=CA1&from=99")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(errorHeader); got != errCodeAhead {
			t.Errorf("ahead pull: %s = %q, want %q", errorHeader, got, errCodeAhead)
		}
		resp, err = http.Get(srv.URL + "/v1/root?ca=CA9")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(errorHeader); got != errCodeUnknownCA {
			t.Errorf("unknown-CA root: %s = %q, want %q", errorHeader, got, errCodeUnknownCA)
		}
	}
}

// TestHTTPCacheHeaders: a pull served by an edge carries Cache-Control:
// max-age equal to the edge TTL and an Age that grows with the entry, so
// a front CDN expires the bytes exactly when the edge would.
func TestHTTPCacheHeaders(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 2)
	const ttl = 30 * time.Second
	edge := NewEdgeServer(tc.dp, ttl, tc.clock.now)
	srv := httptest.NewServer(Handler(edge))
	defer srv.Close()

	get := func() *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/pull?ca=CA1&from=0")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Miss: full lifetime ahead, zero age.
	resp := get()
	if got := resp.Header.Get("Cache-Control"); got != "max-age=30" {
		t.Errorf("miss Cache-Control = %q, want max-age=30", got)
	}
	if got := resp.Header.Get("Age"); got != "0" {
		t.Errorf("miss Age = %q, want 0", got)
	}

	// Hit 12 virtual seconds later: same lifetime, aged entry.
	tc.clock.advance(12 * time.Second)
	resp = get()
	if got := resp.Header.Get("Cache-Control"); got != "max-age=30" {
		t.Errorf("hit Cache-Control = %q, want max-age=30", got)
	}
	if got := resp.Header.Get("Age"); got != "12" {
		t.Errorf("hit Age = %q, want 12", got)
	}

	// Fractional ages round UP: the downstream window (max-age − Age)
	// must never exceed the entry's true remaining TTL.
	tc.clock.advance(500 * time.Millisecond)
	resp = get()
	if got := resp.Header.Get("Age"); got != "13" {
		t.Errorf("fractional-age Age = %q, want 13 (ceiled)", got)
	}

	// An uncached origin must forbid downstream caching rather than let a
	// front CDN invent a TTL the deployment disabled.
	uncached := httptest.NewServer(Handler(NewEdgeServer(tc.dp, 0, tc.clock.now)))
	defer uncached.Close()
	resp2, err := http.Get(uncached.URL + "/v1/pull?ca=CA1&from=0")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("Cache-Control"); got != "no-store" {
		t.Errorf("TTL=0 Cache-Control = %q, want no-store", got)
	}

	// The distribution point itself (no cache metadata) sets no cache
	// headers: it makes no freshness promise for others to inherit.
	direct := httptest.NewServer(Handler(tc.dp))
	defer direct.Close()
	resp3, err := http.Get(direct.URL + "/v1/pull?ca=CA1&from=0")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("Cache-Control"); got != "" {
		t.Errorf("origin Cache-Control = %q, want unset", got)
	}
}

// TestRootConditionalRequests: /v1/root serves a strong ETag; a matching
// If-None-Match returns 304 with no body; the HTTPClient's re-fetch after
// a 304 yields a byte-identical root; and a root rotation (new content)
// changes the ETag and re-downloads.
func TestRootConditionalRequests(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 3)
	srv := httptest.NewServer(Handler(tc.dp))
	defer srv.Close()

	// Raw HTTP level: ETag + 304 with empty body.
	resp, err := http.Get(srv.URL + "/v1/root?ca=CA1")
	if err != nil {
		t.Fatal(err)
	}
	firstBody, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" || etag[0] != '"' {
		t.Fatalf("ETag = %q, want a quoted strong validator", etag)
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/root?ca=CA1", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	notModifiedBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional re-fetch: status %d, want 304", resp.StatusCode)
	}
	if len(notModifiedBody) != 0 {
		t.Errorf("304 carried %d body bytes", len(notModifiedBody))
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}

	// A stale validator (or a list containing only stale ones) re-sends.
	req.Header.Set("If-None-Match", `"deadbeef", "cafebabe"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("mismatched If-None-Match: status %d, want 200", resp.StatusCode)
	}
	// A list containing the current validator (and the wildcard) matches.
	for _, inm := range []string{`"deadbeef", ` + etag, "*"} {
		req.Header.Set("If-None-Match", inm)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", inm, resp.StatusCode)
		}
	}

	// Client level: the second LatestRoot goes conditional and the served
	// root is byte-identical to the first.
	client := &HTTPClient{BaseURL: srv.URL}
	root1, err := client.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	root2, err := client.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if string(root1.Encode()) != string(root2.Encode()) {
		t.Error("re-fetched root is not byte-identical to the cached one")
	}
	if string(root2.Encode()) != string(firstBody) {
		t.Error("root after 304 differs from the originally served bytes")
	}

	// The dictionary advances: new root, new ETag, full re-download —
	// the validator must never serve a stale root as fresh.
	tc.revoke(t, 2)
	root3, err := client.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if root3.N != 5 {
		t.Errorf("root after advance: N = %d, want 5", root3.N)
	}
	if root3.Equal(root1) {
		t.Error("client kept serving the superseded root")
	}
	// And the new root is now the cached validator.
	root4, err := client.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if !root4.Equal(root3) {
		t.Error("post-rotation conditional fetch diverged")
	}
}

// TestRootLastModifiedFallback is the table-driven contract for the
// weak-validator fallback on /v1/root: Last-Modified is the root's signing
// time, If-Modified-Since alone revalidates to 304, and If-None-Match —
// when present — takes precedence per RFC 9110 §13.1.3.
func TestRootLastModifiedFallback(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 3)
	srv := httptest.NewServer(Handler(tc.dp))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/root?ca=CA1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lm := resp.Header.Get("Last-Modified")
	etag := resp.Header.Get("ETag")
	if lm == "" {
		t.Fatal("no Last-Modified on /v1/root")
	}
	signedAt, err := http.ParseTime(lm)
	if err != nil {
		t.Fatalf("unparsable Last-Modified %q: %v", lm, err)
	}
	root, err := tc.dp.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if got := time.Unix(root.Time, 0).UTC(); !got.Equal(signedAt) {
		t.Errorf("Last-Modified = %v, want signing time %v", signedAt, got)
	}

	for _, tt := range []struct {
		name       string
		inm, ims   string
		wantStatus int
	}{
		{"ims exact match", "", lm, http.StatusNotModified},
		{"ims after signing", "", signedAt.Add(time.Hour).Format(http.TimeFormat), http.StatusNotModified},
		{"ims before signing", "", signedAt.Add(-time.Hour).Format(http.TimeFormat), http.StatusOK},
		{"ims unparsable", "", "half past never", http.StatusOK},
		{"inm match wins over stale ims", etag, signedAt.Add(-time.Hour).Format(http.TimeFormat), http.StatusNotModified},
		{"inm mismatch ignores fresh ims", `"deadbeef"`, lm, http.StatusOK},
	} {
		t.Run(tt.name, func(t *testing.T) {
			req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/root?ca=CA1", nil)
			if tt.inm != "" {
				req.Header.Set("If-None-Match", tt.inm)
			}
			if tt.ims != "" {
				req.Header.Set("If-Modified-Since", tt.ims)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tt.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tt.wantStatus)
			}
			if resp.StatusCode == http.StatusNotModified && len(body) != 0 {
				t.Errorf("304 carried %d body bytes", len(body))
			}
			// Both validators ride along on every response, including 304s,
			// so downstream caches can refresh whichever they kept.
			if got := resp.Header.Get("Last-Modified"); got != lm {
				t.Errorf("Last-Modified = %q, want %q", got, lm)
			}
		})
	}
}

// fixedRootOrigin serves one canned signed root; the open-second test
// needs a root whose signing time is the wall clock's present/future,
// which the virtual-clock fixtures cannot produce.
type fixedRootOrigin struct{ root *dictionary.SignedRoot }

func (o fixedRootOrigin) Pull(dictionary.CAID, uint64) (*PullResponse, error) {
	return nil, ErrUnknownCA
}
func (o fixedRootOrigin) LatestRoot(dictionary.CAID) (*dictionary.SignedRoot, error) {
	return o.root, nil
}
func (o fixedRootOrigin) CAs() ([]dictionary.CAID, error) {
	return []dictionary.CAID{o.root.CA}, nil
}

// TestRootIMSIgnoredWhileSigningSecondOpen: a Last-Modified date is not a
// usable validator until its second has elapsed (the CA may re-sign within
// it without the date moving), so an If-Modified-Since match against a
// just-signed root must still return the full body.
func TestRootIMSIgnoredWhileSigningSecondOpen(t *testing.T) {
	for _, tt := range []struct {
		name       string
		signedAt   int64
		wantStatus int
	}{
		{"signing second still open", time.Now().Unix() + 3, http.StatusOK},
		{"signing second elapsed", time.Now().Unix() - 10, http.StatusNotModified},
	} {
		t.Run(tt.name, func(t *testing.T) {
			root := &dictionary.SignedRoot{CA: "CA1", N: 1, Time: tt.signedAt, DeltaSecs: 10}
			srv := httptest.NewServer(Handler(fixedRootOrigin{root: root}))
			defer srv.Close()
			req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/root?ca=CA1", nil)
			req.Header.Set("If-Modified-Since", time.Unix(tt.signedAt, 0).UTC().Format(http.TimeFormat))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tt.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tt.wantStatus)
			}
		})
	}
}

// etagStripper models a cache/middlebox that drops ETag headers (a
// documented real-CDN behavior the Last-Modified fallback exists for).
type etagStripper struct {
	http.ResponseWriter
	wroteHeader bool
}

func (w *etagStripper) WriteHeader(code int) {
	if !w.wroteHeader {
		w.Header().Del("ETag")
		w.wroteHeader = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *etagStripper) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// TestRootConditionalThroughETagStrippingCache: with ETags stripped in
// transit, the HTTPClient falls back to If-Modified-Since and still gets
// 304s with byte-identical roots — and still re-downloads after a genuine
// rotation.
func TestRootConditionalThroughETagStrippingCache(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 2)
	inner := Handler(tc.dp)
	var mu sync.Mutex
	var sawIMS, sawINM bool
	var notModified int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		sawIMS = sawIMS || r.Header.Get("If-Modified-Since") != ""
		sawINM = sawINM || r.Header.Get("If-None-Match") != ""
		mu.Unlock()
		rec := httptest.NewRecorder()
		inner.ServeHTTP(&etagStripper{ResponseWriter: rec}, r)
		mu.Lock()
		if rec.Code == http.StatusNotModified {
			notModified++
		}
		mu.Unlock()
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
	}))
	defer srv.Close()

	client := &HTTPClient{BaseURL: srv.URL}
	root1, err := client.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	root2, err := client.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	ims, inm, nm := sawIMS, sawINM, notModified
	mu.Unlock()
	if inm {
		t.Error("client sent If-None-Match despite the stripped ETag")
	}
	if !ims {
		t.Error("client never fell back to If-Modified-Since")
	}
	if nm != 1 {
		t.Errorf("server produced %d 304s, want 1", nm)
	}
	if string(root1.Encode()) != string(root2.Encode()) {
		t.Error("root after IMS 304 is not byte-identical")
	}

	// A rotation in a later second re-downloads: Last-Modified moves
	// forward, the stale date no longer matches.
	tc.clock.advance(2 * time.Second)
	tc.revoke(t, 2)
	root3, err := client.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if root3.N != 4 {
		t.Errorf("post-rotation root N = %d, want 4", root3.N)
	}
	if root3.Equal(root1) {
		t.Error("client kept the superseded root through the IMS fallback")
	}
}

// TestRootConditionalThroughEdgeChain: the conditional-request contract
// survives an EdgeServer between client and origin (edges forward roots
// uncached, so the validator is always the origin's current one).
func TestRootConditionalThroughEdgeChain(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 1)
	edge := NewEdgeServer(tc.dp, time.Minute, tc.clock.now)
	srv := httptest.NewServer(Handler(edge))
	defer srv.Close()
	client := &HTTPClient{BaseURL: srv.URL}
	r1, err := client.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := client.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) || string(r1.Encode()) != string(r2.Encode()) {
		t.Error("root changed across conditional re-fetch through an edge")
	}
}

// TestHTTPClientBodyOverflow: a response body larger than the wire cap is
// an explicit error — the seed silently truncated at the LimitReader cap
// and handed the decoder a cut-off buffer.
func TestHTTPClientBodyOverflow(t *testing.T) {
	// Shrink the cap for the test: the detection logic is identical at
	// 64 KiB and 256 MiB, and the latter means streaming 256 MiB per run.
	defer func(orig int) { bodyLimit = orig }(bodyLimit)
	bodyLimit = 1 << 16

	oversized := make([]byte, bodyLimit+1)
	exact := make([]byte, bodyLimit)
	var serve []byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", strconv.Itoa(len(serve)))
		w.Write(serve)
	}))
	defer srv.Close()
	client := &HTTPClient{BaseURL: srv.URL}

	serve = oversized
	_, err := client.Pull("CA1", 0)
	if err == nil {
		t.Fatal("oversized body decoded as a pull response")
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("overflow error = %v, want an explicit size error", err)
	}
	if _, err := client.LatestRoot("CA1"); err == nil ||
		!strings.Contains(err.Error(), "exceeds") {
		t.Errorf("root overflow error = %v, want an explicit size error", err)
	}

	// Exactly at the cap is NOT an overflow: it reaches the decoder (and
	// fails there as garbage, not as a size error).
	serve = exact
	if _, err := client.Pull("CA1", 0); err == nil {
		t.Error("64 KiB of zeros decoded as a pull response")
	} else if strings.Contains(err.Error(), "exceeds") {
		t.Errorf("at-cap body misreported as overflow: %v", err)
	}
}

// TestHTTPClientTruncatedBody: a body cut mid-encoding (a dying proxy, a
// partial cache fill) must fail decoding loudly in both Pull and
// LatestRoot.
func TestHTTPClientTruncatedBody(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 50)
	resp, err := tc.dp.Pull("CA1", 0)
	if err != nil {
		t.Fatal(err)
	}
	full := resp.Encoded()
	root, err := tc.dp.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	fullRoot := root.Encode()

	for _, cut := range []int{1, len(full) / 2, len(full) - 1} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write(full[:cut])
		}))
		client := &HTTPClient{BaseURL: srv.URL}
		if _, err := client.Pull("CA1", 0); err == nil {
			t.Errorf("pull body truncated at %d/%d decoded cleanly", cut, len(full))
		}
		srv.Close()
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(fullRoot[:len(fullRoot)-3])
	}))
	defer srv.Close()
	client := &HTTPClient{BaseURL: srv.URL}
	if _, err := client.LatestRoot("CA1"); err == nil {
		t.Error("truncated root decoded cleanly")
	}
}

// TestHTTPNegativeCacheEndToEnd: the negative cache speaks HTTP too — an
// edge serving over the transport answers an unknown-CA storm locally,
// and the client still sees the typed sentinel.
func TestHTTPNegativeCacheEndToEnd(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 1)
	edge := NewEdgeServer(tc.dp, time.Minute, tc.clock.now)
	edge.SetNegativeTTL(30 * time.Second)
	srv := httptest.NewServer(Handler(edge))
	defer srv.Close()
	client := &HTTPClient{BaseURL: srv.URL}

	before := tc.dp.Stats().Pulls
	for i := 0; i < 20; i++ {
		if _, err := client.Pull("CA9", 0); !errors.Is(err, ErrUnknownCA) {
			t.Fatalf("pull %d: err = %v, want ErrUnknownCA", i, err)
		}
	}
	if got := tc.dp.Stats().Pulls - before; got > 1 {
		t.Errorf("origin saw %d unknown-CA pulls through HTTP, want ≤ 1", got)
	}
	if st := edge.Stats(); st.NegativeHits < 19 {
		t.Errorf("NegativeHits = %d, want ≥ 19", st.NegativeHits)
	}
}

// TestRootCacheControlNoCache: signed roots must never be positively
// cached by a front CDN (stale roots → false equivocation alarms); the
// handler forbids it explicitly while still allowing ETag revalidation.
func TestRootCacheControlNoCache(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 1)
	srv := httptest.NewServer(Handler(tc.dp))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/root?ca=CA1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Cache-Control"); got != "no-cache" {
		t.Errorf("/v1/root Cache-Control = %q, want no-cache", got)
	}
}

// TestHTTPNegativeErrorExportsTTL: an edge-served unknown-CA error
// carries the negative TTL as max-age, so a front CDN absorbs the storm
// for the same window the edge would.
func TestHTTPNegativeErrorExportsTTL(t *testing.T) {
	tc := newTestCA(t, "CA1")
	edge := NewEdgeServer(tc.dp, time.Minute, tc.clock.now)
	edge.SetNegativeTTL(30 * time.Second)
	srv := httptest.NewServer(Handler(edge))
	defer srv.Close()

	for i := 0; i < 2; i++ { // miss, then negative hit: both export it
		resp, err := http.Get(srv.URL + "/v1/pull?ca=CA9&from=0")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("Cache-Control"); got != "max-age=30" {
			t.Errorf("request %d: unknown-CA Cache-Control = %q, want max-age=30", i, got)
		}
	}
	// /v1/root for an unknown CA exports the same window: the edge
	// negative-caches both endpoints, so the front CDN must too.
	resp, err := http.Get(srv.URL + "/v1/root?ca=CA9")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Cache-Control"); got != "max-age=30" {
		t.Errorf("unknown-CA root Cache-Control = %q, want max-age=30", got)
	}

	// With negative caching off, errors carry no freshness promise.
	bare := httptest.NewServer(Handler(NewEdgeServer(tc.dp, time.Minute, tc.clock.now)))
	defer bare.Close()
	resp, err = http.Get(bare.URL + "/v1/pull?ca=CA9&from=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Cache-Control"); got != "" {
		t.Errorf("negative-caching-off Cache-Control = %q, want unset", got)
	}
}
