package cdn

import (
	"sync"
	"testing"
	"time"

	"ritm/internal/dictionary"
)

// rootCountingOrigin wraps an Origin and counts LatestRoot calls.
type rootCountingOrigin struct {
	Origin
	mu    sync.Mutex
	roots int
}

func (c *rootCountingOrigin) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	c.mu.Lock()
	c.roots++
	c.mu.Unlock()
	return c.Origin.LatestRoot(ca)
}

func (c *rootCountingOrigin) rootCalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roots
}

// TestEdgeRootTTLCache covers the opt-in bounded-staleness root cache: off
// by default (every request revalidates upstream — the equivocation-monitor
// invariant), pointer-stable hits inside the window, revalidation after
// expiry picking up a rotated root, and Flush dropping the cache.
func TestEdgeRootTTLCache(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 3)
	up := &rootCountingOrigin{Origin: tc.dp}
	edge := NewEdgeServer(up, time.Minute, tc.clock.now)

	// Default: no positive caching, each call hits the upstream.
	for i := 0; i < 3; i++ {
		if _, err := edge.LatestRoot("CA1"); err != nil {
			t.Fatal(err)
		}
	}
	if got := up.rootCalls(); got != 3 {
		t.Fatalf("without a TTL every request must revalidate: %d upstream calls, want 3", got)
	}

	edge.SetRootTTL(time.Second)
	first, err := edge.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	base := up.rootCalls()
	for i := 0; i < 5; i++ {
		got, err := edge.LatestRoot("CA1")
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatal("cached root must be pointer-stable within the TTL window")
		}
	}
	if got := up.rootCalls(); got != base {
		t.Fatalf("cache hits reached the upstream: %d calls, want %d", got, base)
	}

	// Rotate the root and expire the window: the next request revalidates
	// and serves the new version.
	tc.revoke(t, 2)
	tc.clock.advance(2 * time.Second)
	got, err := edge.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if got == first || got.N != 5 {
		t.Fatalf("expired window served a stale root (N=%d, want 5)", got.N)
	}
	if up.rootCalls() != base+1 {
		t.Fatalf("expiry must revalidate exactly once: %d calls, want %d", up.rootCalls(), base+1)
	}

	// Flush drops the cache even inside the window.
	edge.Flush()
	if _, err := edge.LatestRoot("CA1"); err != nil {
		t.Fatal(err)
	}
	if up.rootCalls() != base+2 {
		t.Fatalf("flush must force revalidation: %d calls, want %d", up.rootCalls(), base+2)
	}

	// Setting the TTL back to zero restores revalidate-always.
	edge.SetRootTTL(0)
	before := up.rootCalls()
	for i := 0; i < 2; i++ {
		if _, err := edge.LatestRoot("CA1"); err != nil {
			t.Fatal(err)
		}
	}
	if up.rootCalls() != before+2 {
		t.Fatalf("TTL 0 must disable the cache: %d calls, want %d", up.rootCalls(), before+2)
	}
}
