package cdn

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ritm/internal/dictionary"
)

// ShardedOrigin suite: ring routing, candidate failover, demotion
// cooldowns, and the ErrAhead escape hatch that feeds the RA's Resync.

// scriptedOrigin answers pulls with a fixed error (nil = delegate).
type scriptedOrigin struct {
	Origin
	err   error
	pulls int
}

func (s *scriptedOrigin) Pull(ca dictionary.CAID, from uint64) (*PullResponse, error) {
	s.pulls++
	if s.err != nil {
		return nil, s.err
	}
	return s.Origin.Pull(ca, from)
}

func (s *scriptedOrigin) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	if s.err != nil {
		return nil, s.err
	}
	return s.Origin.LatestRoot(ca)
}

func TestShardedOriginRoutesByRing(t *testing.T) {
	const shards = 3
	// Every shard's origin carries every CA, so a routing mistake would
	// still succeed — the pull counters are what pin the routing.
	tc := newTestCA(t, "CA-primary")
	counters := make([]*countingOrigin, shards)
	lists := make([][]Origin, shards)
	for i := range lists {
		counters[i] = newCountingOrigin(tc.dp)
		lists[i] = []Origin{counters[i]}
	}
	so, err := NewShardedOrigin(lists, ShardedOriginOptions{Now: tc.clock.now})
	if err != nil {
		t.Fatal(err)
	}
	cas := make([]dictionary.CAID, 40)
	for i := range cas {
		cas[i] = dictionary.CAID(fmt.Sprintf("CA-%03d", i))
		if err := tc.dp.RegisterCA(cas[i], tc.auth.PublicKey()); err != nil {
			t.Fatal(err)
		}
	}
	for _, ca := range cas {
		if _, err := so.Pull(ca, 0); err != nil {
			t.Fatalf("pull %s: %v", ca, err)
		}
	}
	for _, ca := range cas {
		want := so.ShardFor(ca)
		for s := range counters {
			got := counters[s].caPulls(ca)
			if s == want && got != 1 {
				t.Errorf("%s: responsible shard %d saw %d pulls, want 1", ca, s, got)
			}
			if s != want && got != 0 {
				t.Errorf("%s: shard %d saw %d pulls, ring says shard %d", ca, s, got, want)
			}
		}
	}
	st := so.Stats()
	total := 0
	for _, s := range st.PerShard {
		total += s.Pulls
	}
	if total != len(cas) {
		t.Errorf("stats count %d pulls, want %d", total, len(cas))
	}
}

func TestFailoverOriginDeadLeader(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 5)
	dead := &scriptedOrigin{Origin: tc.dp, err: errors.New("connection refused")}
	live := &scriptedOrigin{Origin: tc.dp}
	so, err := NewFailoverOrigin([]Origin{dead, live}, ShardedOriginOptions{Now: tc.clock.now})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := so.Pull("CA1", 0)
	if err != nil || resp.Issuance == nil {
		t.Fatalf("failover pull: %v", err)
	}
	if dead.pulls != 1 || live.pulls != 1 {
		t.Fatalf("pulls: dead=%d live=%d, want 1/1", dead.pulls, live.pulls)
	}
	st := so.Stats()
	if st.PerShard[0].Failovers != 1 || st.PerShard[0].Preferred != 1 {
		t.Fatalf("stats = %+v, want failover to candidate 1", st.PerShard[0])
	}

	// Converged: later pulls go straight to the promoted candidate; the
	// demoted corpse is not re-probed inside the cooldown.
	if _, err := so.Pull("CA1", 0); err != nil {
		t.Fatal(err)
	}
	if dead.pulls != 1 {
		t.Fatalf("dead candidate re-probed inside cooldown (%d pulls)", dead.pulls)
	}

	// After the cooldown the dead candidate becomes probeable again, but
	// only when the preferred one fails — no gratuitous probing.
	tc.clock.advance(DefaultFailoverCooldown + time.Second)
	if _, err := so.Pull("CA1", 0); err != nil {
		t.Fatal(err)
	}
	if dead.pulls != 1 {
		t.Fatalf("healthy steady state probed the demoted candidate")
	}

	// The leader heals; the preferred candidate dies: traffic walks back.
	dead.err = nil
	live.err = errors.New("connection refused")
	if _, err := so.Pull("CA1", 0); err != nil {
		t.Fatalf("fail-back pull: %v", err)
	}
	if so.Stats().PerShard[0].Preferred != 0 {
		t.Fatal("did not fail back to the healed candidate")
	}
}

func TestShardedOriginUnknownCAIsAuthoritative(t *testing.T) {
	tc := newTestCA(t, "CA1")
	first := &scriptedOrigin{Origin: tc.dp}
	second := &scriptedOrigin{Origin: tc.dp}
	so, err := NewFailoverOrigin([]Origin{first, second}, ShardedOriginOptions{Now: tc.clock.now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := so.Pull("GhostCA", 0); !errors.Is(err, ErrUnknownCA) {
		t.Fatalf("err = %v, want ErrUnknownCA", err)
	}
	// The typed answer is final: no failover, no demotion.
	if second.pulls != 0 {
		t.Fatal("unknown-CA answer triggered failover")
	}
	if _, err := so.Pull("CA1", 0); err != nil {
		t.Fatalf("candidate was demoted by an unknown-CA answer: %v", err)
	}
}

func TestShardedOriginAllAheadFeedsResync(t *testing.T) {
	tc := newTestCA(t, "CA1")
	tc.revoke(t, 5)
	a := &scriptedOrigin{Origin: tc.dp}
	b := &scriptedOrigin{Origin: tc.dp}
	so, err := NewFailoverOrigin([]Origin{a, b}, ShardedOriginOptions{Now: tc.clock.now})
	if err != nil {
		t.Fatal(err)
	}
	// A caller ahead of every candidate (its leader died with unreplicated
	// records): the typed ErrAhead must surface so Resync can adopt the
	// surviving history — and the candidates must NOT stay demoted, or the
	// recovery pull that follows would find an empty shard.
	if _, err := so.Pull("CA1", 999); !errors.Is(err, ErrAhead) {
		t.Fatalf("err = %v, want ErrAhead", err)
	}
	if _, err := so.Pull("CA1", 0); err != nil {
		t.Fatalf("recovery pull after all-ahead: %v", err)
	}
}

func TestShardedOriginAllDead(t *testing.T) {
	tc := newTestCA(t, "CA1")
	boom := errors.New("boom")
	a := &scriptedOrigin{Origin: tc.dp, err: boom}
	b := &scriptedOrigin{Origin: tc.dp, err: boom}
	so, err := NewFailoverOrigin([]Origin{a, b}, ShardedOriginOptions{Now: tc.clock.now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := so.Pull("CA1", 0); !errors.Is(err, boom) {
		t.Fatalf("first all-dead pull err = %v, want the candidate error", err)
	}
	// Both demoted now: the shard reports no live origin until cooldown.
	if _, err := so.Pull("CA1", 0); !errors.Is(err, ErrNoOrigin) {
		t.Fatalf("demoted-shard pull err = %v, want ErrNoOrigin", err)
	}
	tc.clock.advance(DefaultFailoverCooldown + time.Second)
	a.err = nil
	if _, err := so.Pull("CA1", 0); err != nil {
		t.Fatalf("post-cooldown heal: %v", err)
	}
}

func TestShardedOriginValidation(t *testing.T) {
	if _, err := NewShardedOrigin(nil, ShardedOriginOptions{}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewShardedOrigin([][]Origin{{}}, ShardedOriginOptions{}); err == nil {
		t.Error("empty candidate list accepted")
	}
	if _, err := NewShardedOrigin([][]Origin{{nil}}, ShardedOriginOptions{}); err == nil {
		t.Error("nil candidate accepted")
	}
}

// TestShardedHierarchyLoadIndependence extends the hierarchy fan-out
// contract to the sharded fleet: with S shards behind the edge tiers and
// 10× the CA count, each shard's origin load stays O(its own CAs ×
// regions) — one shard's traffic never lands on another's origin, so
// shards scale capacity horizontally.
func TestShardedHierarchyLoadIndependence(t *testing.T) {
	const (
		shards  = 2
		regions = 2
		pops    = 2
		cycles  = 6
	)
	for _, caCount := range []int{4, 40} { // 10× growth
		t.Run(fmt.Sprintf("%dCAs", caCount), func(t *testing.T) {
			tc := newTestCA(t, "CA-000")
			cas := make([]dictionary.CAID, caCount)
			cas[0] = "CA-000"
			for i := 1; i < caCount; i++ {
				cas[i] = dictionary.CAID(fmt.Sprintf("CA-%03d", i))
				if err := tc.dp.RegisterCA(cas[i], tc.auth.PublicKey()); err != nil {
					t.Fatal(err)
				}
			}
			counters := make([]*countingOrigin, shards)
			lists := make([][]Origin, shards)
			for s := range lists {
				counters[s] = newCountingOrigin(tc.dp)
				lists[s] = []Origin{counters[s]}
			}
			topo, so, err := NewShardedTopology(lists, ShardedOriginOptions{Now: tc.clock.now}, TopologyConfig{
				Regions:       regions,
				PoPsPerRegion: pops,
				RegionalTTL:   30 * time.Second,
				PoPTTL:        30 * time.Second,
				Now:           tc.clock.now,
			})
			if err != nil {
				t.Fatal(err)
			}
			perShardCAs := make([]int, shards)
			for _, ca := range cas {
				perShardCAs[so.ShardFor(ca)]++
			}
			// One simRA per PoP polling every CA.
			ras := make([]*simRA, 0, regions*pops*caCount)
			for r := 0; r < regions; r++ {
				for p := 0; p < pops; p++ {
					for range cas {
						ras = append(ras, &simRA{pop: topo.PoP(r, p)})
					}
				}
			}
			for cycle := 0; cycle < cycles; cycle++ {
				tc.clock.advance(31 * time.Second)
				for i, ra := range ras {
					if err := ra.sync(cas[i%caCount]); err != nil {
						t.Fatalf("RA %d: %v", i, err)
					}
				}
			}
			// Each shard's origin saw at most (its CAs × regions × cycles)
			// pulls: load scales with the shard's own slice of the CA
			// space, not the fleet total.
			for s, c := range counters {
				bound := perShardCAs[s] * regions * cycles
				if got := int(c.pulls.Load()); got > bound {
					t.Errorf("shard %d origin saw %d pulls for %d CAs, want ≤ %d",
						s, got, perShardCAs[s], bound)
				}
				// And no cross-shard leakage: every CA this origin served
				// must belong to this shard.
				for _, ca := range cas {
					if so.ShardFor(ca) != s && c.caPulls(ca) > 0 {
						t.Errorf("shard %d served %s, which the ring assigns to shard %d",
							s, ca, so.ShardFor(ca))
					}
				}
			}
		})
	}
}
