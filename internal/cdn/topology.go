package cdn

import (
	"fmt"
	"time"
)

// Topology wires the two-tier edge hierarchy of a production CDN: PoPs
// (the edges RAs actually talk to) pull from regional edges, regional
// edges pull from the origin. The fan-out arithmetic is the point (§VI,
// "any CDN that caches opaque bodies by URL"): per (ca, from) key, N RAs
// cost their PoP one miss, P PoPs cost their regional edge one miss, and
// R regional edges cost the origin at most R pulls — origin load is
// O(regions), independent of both the PoP count and the RA count. That is
// the arithmetic that lets one distribution point serve planet-scale RA
// fleets ("millions of users") at CA-side cost that does not grow with
// deployment size.
//
//	RA ─┐
//	RA ─┼─ PoP ─┐
//	RA ─┘       ├─ regional edge ─┐
//	   … P PoPs ┘                 ├─ origin (distribution point)
//	            … R regions ──────┘
type Topology struct {
	origin    Origin
	regionals []*EdgeServer
	pops      [][]*EdgeServer
}

// Tier names one level of the hierarchy, used by the Wrap hook.
type Tier int

const (
	// TierRegional is the regional-edge tier (pulls from the origin).
	TierRegional Tier = iota
	// TierPoP is the PoP tier (pulls from a regional edge).
	TierPoP
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierRegional:
		return "regional"
	case TierPoP:
		return "pop"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// TopologyConfig shapes a Topology.
type TopologyConfig struct {
	// Regions is the number of regional edges (≥ 1).
	Regions int
	// PoPsPerRegion is the number of PoP edges under each regional (≥ 1).
	PoPsPerRegion int
	// RegionalTTL is the regional tier's cache TTL. Regional edges sit
	// close to the origin, so their TTL bounds fleet-wide staleness;
	// choose ≤ ∆ so entries die before the next count is published.
	RegionalTTL time.Duration
	// PoPTTL is the PoP tier's cache TTL (usually ≤ RegionalTTL: total
	// staleness through the hierarchy is the sum of the tier TTLs, and
	// the client 2∆ policy bounds what is tolerable).
	PoPTTL time.Duration
	// NegativeTTL, when positive, enables ErrUnknownCA negative caching
	// at every edge of both tiers.
	NegativeTTL time.Duration
	// Now is the cache clock for every edge (nil = time.Now); scenario
	// tests inject virtual time.
	Now func() time.Time
	// Wrap, when non-nil, wraps the upstream each edge pulls from — the
	// hook scenario tests use to inject per-link latency, partitions, or
	// byte counters without re-wiring the hierarchy. For TierRegional the
	// pop index is -1 and upstream is the origin; for TierPoP upstream is
	// the region's regional edge. Returning upstream unchanged is valid.
	Wrap func(tier Tier, region, pop int, upstream Origin) Origin
}

// NewTopology builds the hierarchy over origin.
func NewTopology(origin Origin, cfg TopologyConfig) (*Topology, error) {
	if origin == nil {
		return nil, fmt.Errorf("cdn: topology requires an origin")
	}
	if cfg.Regions < 1 || cfg.PoPsPerRegion < 1 {
		return nil, fmt.Errorf("cdn: topology needs ≥1 region and ≥1 PoP per region (got %d×%d)",
			cfg.Regions, cfg.PoPsPerRegion)
	}
	wrap := cfg.Wrap
	if wrap == nil {
		wrap = func(_ Tier, _, _ int, up Origin) Origin { return up }
	}
	t := &Topology{
		origin:    origin,
		regionals: make([]*EdgeServer, cfg.Regions),
		pops:      make([][]*EdgeServer, cfg.Regions),
	}
	for r := 0; r < cfg.Regions; r++ {
		regional := NewEdgeServer(wrap(TierRegional, r, -1, origin), cfg.RegionalTTL, cfg.Now)
		if cfg.NegativeTTL > 0 {
			regional.SetNegativeTTL(cfg.NegativeTTL)
		}
		t.regionals[r] = regional
		t.pops[r] = make([]*EdgeServer, cfg.PoPsPerRegion)
		for p := 0; p < cfg.PoPsPerRegion; p++ {
			pop := NewEdgeServer(wrap(TierPoP, r, p, regional), cfg.PoPTTL, cfg.Now)
			if cfg.NegativeTTL > 0 {
				pop.SetNegativeTTL(cfg.NegativeTTL)
			}
			t.pops[r][p] = pop
		}
	}
	return t, nil
}

// Regions returns the number of regional edges.
func (t *Topology) Regions() int { return len(t.regionals) }

// PoPsPerRegion returns the number of PoPs under each regional edge.
func (t *Topology) PoPsPerRegion() int { return len(t.pops[0]) }

// Regional returns region r's regional edge.
func (t *Topology) Regional(r int) *EdgeServer { return t.regionals[r] }

// PoP returns PoP p of region r — the Origin an RA in that location pulls
// from.
func (t *Topology) PoP(r, p int) *EdgeServer { return t.pops[r][p] }

// RestartRegional models a regional-edge restart: the cache (positive and
// negative) is wiped, as a redeployed or rebooted edge process would be.
// Downstream PoPs keep their own cached entries and re-warm the regional
// on their next miss; the scenario suite asserts the origin absorbs at
// most one extra pull per live key for it.
func (t *Topology) RestartRegional(r int) { t.regionals[r].Flush() }

// RestartPoP models a PoP restart (cache wiped, wiring intact).
func (t *Topology) RestartPoP(r, p int) { t.pops[r][p].Flush() }

// TopologyStats is the per-tier roll-up of every edge's counters.
type TopologyStats struct {
	// PoP sums the counters of all Regions × PoPsPerRegion PoP edges —
	// the tier RAs talk to, so PoP.Hits/(total pulls) is the fleet-facing
	// hit rate.
	PoP EdgeStats
	// Regional sums the counters of all regional edges. Regional.Misses
	// (plus collapsed-pull leakage) is what the origin actually sees.
	Regional EdgeStats
	// PerRegion holds, for each region, the sum of that region's PoP
	// counters followed by its regional counters — the per-region ledger
	// operators alarm on (one cold region hides inside fleet-wide sums).
	PerRegion []RegionStats
}

// RegionStats is one region's slice of the roll-up.
type RegionStats struct {
	PoP      EdgeStats
	Regional EdgeStats
}

// Stats rolls up every edge's counters per tier and per region. Each
// edge's snapshot is internally consistent; the roll-up is not one atomic
// cut across edges, which no load metric needs.
func (t *Topology) Stats() TopologyStats {
	ts := TopologyStats{PerRegion: make([]RegionStats, len(t.regionals))}
	for r, regional := range t.regionals {
		rs := RegionStats{Regional: regional.Stats()}
		for _, pop := range t.pops[r] {
			rs.PoP = rs.PoP.add(pop.Stats())
		}
		ts.PerRegion[r] = rs
		ts.PoP = ts.PoP.add(rs.PoP)
		ts.Regional = ts.Regional.add(rs.Regional)
	}
	return ts
}

// HitRate reduces a stats snapshot to served-without-upstream fraction:
// hits and collapsed pulls over all successful pulls. Zero traffic reads
// as zero, not NaN.
func HitRate(s EdgeStats) float64 {
	total := s.Hits + s.Misses + s.CollapsedPulls
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.CollapsedPulls) / float64(total)
}
