package cdn

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ritm/internal/ca"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/storage"
)

// newDurableOrigin builds a CA feeding a storage-backed distribution
// point with some history, and returns both plus the generator.
func newDurableOrigin(t *testing.T, backend storage.Backend, layout dictionary.LayoutKind) (*ca.CA, *DistributionPoint, *serial.Generator) {
	t.Helper()
	dp := NewDistributionPointWithStorage(nil, backend, 0)
	authority, err := ca.New(ca.Config{ID: "CA1", Delta: 10 * time.Second, Publisher: dp, Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.RegisterCAWithLayout("CA1", authority.PublicKey(), layout); err != nil {
		t.Fatal(err)
	}
	if err := authority.PublishRoot(); err != nil {
		t.Fatal(err)
	}
	gen := serial.NewGenerator(0x0E7A6, nil)
	for i := 0; i < 6; i++ {
		if _, err := authority.Revoke(gen.NextN(50)...); err != nil {
			t.Fatal(err)
		}
	}
	return authority, dp, gen
}

// TestDistributionPointReopenKeepsETag is the §VII availability
// acceptance: an origin killed and reopened over its durable log serves
// the exact signed-root bytes it crashed with, so an edge's conditional
// request (If-None-Match with the pre-crash ETag) still gets 304 — the
// restart is invisible to the HTTP cache hierarchy.
func TestDistributionPointReopenKeepsETag(t *testing.T) {
	for _, layout := range []dictionary.LayoutKind{dictionary.LayoutSorted, dictionary.LayoutForest} {
		t.Run(layout.String(), func(t *testing.T) {
			backend := storage.NewMemory()
			authority, dp1, _ := newDurableOrigin(t, backend, layout)

			srv1 := httptest.NewServer(Handler(dp1))
			resp, err := http.Get(srv1.URL + "/v1/root?ca=CA1")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			etag := resp.Header.Get("ETag")
			srv1.Close()
			if etag == "" {
				t.Fatal("no ETag on /v1/root")
			}

			// Crash + reopen: a brand-new distribution point over the same
			// durable state. The CA process is NOT involved — the origin
			// recovers alone, which is the availability story (CDNs keep
			// serving through CA outages).
			if err := dp1.Close(); err != nil {
				t.Fatal(err)
			}
			dp2 := NewDistributionPointWithStorage(nil, backend, 0)
			if err := dp2.RegisterCAWithLayout("CA1", authority.PublicKey(), layout); err != nil {
				t.Fatalf("reopen: %v", err)
			}
			srv2 := httptest.NewServer(Handler(dp2))
			defer srv2.Close()

			req, err := http.NewRequest(http.MethodGet, srv2.URL+"/v1/root?ca=CA1", nil)
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("If-None-Match", etag)
			resp2, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp2.Body.Close()
			if resp2.StatusCode != http.StatusNotModified {
				t.Fatalf("conditional fetch across origin restart: status %d, want 304", resp2.StatusCode)
			}
			if got := resp2.Header.Get("ETag"); got != etag {
				t.Fatalf("ETag changed across restart: %q → %q", etag, got)
			}

			// And pulls resume exactly where the crashed origin stood: a
			// puller at the pre-crash count gets an empty suffix, not
			// ErrAhead.
			pr, err := dp2.Pull("CA1", 300)
			if err != nil {
				t.Fatal(err)
			}
			if pr.Issuance == nil || len(pr.Issuance.Serials) != 0 || pr.Issuance.Root.N != 300 {
				t.Fatalf("reopened origin suffix: %+v", pr.Issuance)
			}
		})
	}
}

// TestDistributionPointReopenColdSyncForest: a cold replica syncing the
// entire history from a reopened forest origin must converge — the pull
// carries the recorded batch bounds, so the coalesced catch-up replays
// the origin's exact bucketization.
func TestDistributionPointReopenColdSyncForest(t *testing.T) {
	backend := storage.NewMemory()
	authority, dp1, _ := newDurableOrigin(t, backend, dictionary.LayoutForest)
	if err := dp1.Close(); err != nil {
		t.Fatal(err)
	}
	dp2 := NewDistributionPointWithStorage(nil, backend, 0)
	if err := dp2.RegisterCAWithLayout("CA1", authority.PublicKey(), dictionary.LayoutForest); err != nil {
		t.Fatal(err)
	}
	pr, err := dp2.Pull("CA1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Bounds) == 0 {
		t.Fatal("reopened origin serves no batch bounds")
	}
	replica := dictionary.NewReplicaWithLayout("CA1", authority.PublicKey(), dictionary.LayoutForest)
	if err := replica.UpdateWithBounds(pr.Issuance, pr.Bounds); err != nil {
		t.Fatalf("cold sync from reopened forest origin: %v", err)
	}
	if replica.Count() != 300 {
		t.Fatalf("count = %d, want 300", replica.Count())
	}
}

// TestDistributionPointFileBackendRoundTrip runs the reopen path over the
// real file backend (CRC framing, rename-install, WAL scan) rather than
// the in-memory test double.
func TestDistributionPointFileBackendRoundTrip(t *testing.T) {
	backend := storage.NewFileBackend(t.TempDir(), true)
	authority, dp1, gen := newDurableOrigin(t, backend, dictionary.LayoutForest)
	want, err := dp1.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if err := dp1.Close(); err != nil {
		t.Fatal(err)
	}

	dp2 := NewDistributionPointWithStorage(nil, backend, 0)
	if err := dp2.RegisterCAWithLayout("CA1", authority.PublicKey(), dictionary.LayoutForest); err != nil {
		t.Fatalf("reopen from files: %v", err)
	}
	defer dp2.Close()
	got, err := dp2.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("file-backed reopen lost the signed root")
	}
	// The reopened origin keeps ingesting (same CA, continued history).
	authority.SetPublisher(dp2)
	if _, err := authority.Revoke(gen.NextN(10)...); err != nil {
		t.Fatalf("ingest after reopen: %v", err)
	}
	root, err := dp2.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if root.N != 310 {
		t.Fatalf("post-reopen root covers %d, want 310", root.N)
	}
}
