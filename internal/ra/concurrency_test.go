package ra

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// TestProveDuringSync hammers the store's status path from many goroutines
// while the fetcher applies issuance batches, under -race. Every returned
// status must verify against some recently-valid root: its proof checks
// out, its root signature checks out, its freshness is within the client's
// 2∆ policy, and its revocation count is at least the count the reader
// knew to be applied before it asked (no torn or stale-beyond-current
// reads). Revocations, once synced, must never disappear from served
// statuses.
func TestProveDuringSync(t *testing.T) {
	env := newEnv(t, time.Hour) // one period spans the whole test
	pub := env.ca.PublicKey()
	now := time.Now().Unix()

	const (
		numBatches = 40
		batchSize  = 25
		numReaders = 8
	)
	gen := serial.NewGenerator(0xC0FFEE, nil)
	batches := make([][]serial.Number, numBatches)
	for i := range batches {
		batches[i] = gen.NextN(batchSize)
	}
	absent := gen.NextN(128)

	var applied atomic.Int64 // revocations the RA has definitely synced
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i, batch := range batches {
			if _, err := env.ca.Revoke(batch...); err != nil {
				t.Errorf("revoke batch %d: %v", i, err)
				return
			}
			if err := env.ra.SyncOnce(); err != nil {
				t.Errorf("sync batch %d: %v", i, err)
				return
			}
			applied.Store(int64((i + 1) * batchSize))
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < numReaders; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 99))
			for done := false; !done; {
				select {
				case <-writerDone:
					done = true // one final round, then exit
				default:
				}
				before := applied.Load()
				var sn serial.Number
				wantRevoked := false
				if syncedBatches := int(before) / batchSize; syncedBatches > 0 && rng.IntN(2) == 0 {
					// A serial from a batch that was fully synced before
					// this iteration began: it must prove revoked.
					b := rng.IntN(syncedBatches)
					sn = batches[b][rng.IntN(batchSize)]
					wantRevoked = true
				} else {
					sn = absent[rng.IntN(len(absent))]
				}

				var st *dictionary.Status
				var err error
				if rng.IntN(4) == 0 {
					st, err = env.ra.Store().Prove("CA1", sn) // uncached path
				} else {
					st, _, err = env.ra.Store().Status("CA1", sn)
				}
				if err != nil {
					t.Errorf("status for %v: %v", sn, err)
					return
				}
				res, err := st.Check(sn, pub, now)
				if err != nil {
					t.Errorf("returned status does not verify: %v", err)
					return
				}
				if wantRevoked && res != dictionary.CheckRevoked {
					t.Errorf("synced revocation of %v not reflected (root n=%d, knew n>=%d)", sn, st.Root.N, before)
					return
				}
				if !wantRevoked && res != dictionary.CheckValid {
					t.Errorf("never-revoked %v reported revoked", sn)
					return
				}
				if st.Root.N < uint64(before) {
					t.Errorf("stale root: n=%d but %d revocations were already applied", st.Root.N, before)
					return
				}
			}
		}(uint64(r + 1))
	}
	wg.Wait()
	<-writerDone

	final, _, err := env.ra.Store().Status("CA1", batches[numBatches-1][0])
	if err != nil {
		t.Fatal(err)
	}
	if final.Root.N != numBatches*batchSize {
		t.Fatalf("final root covers %d revocations, want %d", final.Root.N, numBatches*batchSize)
	}
}

// TestStatusCacheInvalidationOnSwap pins the cache-correctness contract: a
// hit is only served at the generation of the replica's current snapshot,
// so after a sync the very next Status reflects the new root — no status
// is ever served whose root is not the current verified one (the
// "current or immediately-previous" bound comes only from benign races
// between load and serve, not from the cache).
func TestStatusCacheInvalidationOnSwap(t *testing.T) {
	env := newEnv(t, time.Hour)
	store := env.ra.Store()
	gen := serial.NewGenerator(0xFACADE, nil)
	victim := gen.Next()

	st0, enc0, err := store.Status("CA1", victim)
	if err != nil {
		t.Fatal(err)
	}
	if st0.Proof.Kind == dictionary.ProofPresence {
		t.Fatal("victim should start absent")
	}
	stats := store.CacheStats()
	if stats.Hits != 0 || stats.Misses != 1 {
		t.Fatalf("cold lookup: hits=%d misses=%d, want 0/1", stats.Hits, stats.Misses)
	}

	// Repeat: identical bytes from the cache, no recomputation.
	st1, enc1, err := store.Status("CA1", victim)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st0 || &enc1[0] != &enc0[0] {
		t.Error("hot lookup did not serve the memoized status")
	}
	if stats = store.CacheStats(); stats.Hits != 1 {
		t.Fatalf("hot lookup: hits=%d, want 1", stats.Hits)
	}

	// Revoke the victim and sync: the snapshot generation moves, the cached
	// entry must be ignored, and the new status must prove presence.
	if _, err := env.ca.Revoke(victim); err != nil {
		t.Fatal(err)
	}
	if err := env.ra.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	st2, _, err := store.Status("CA1", victim)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Proof.Kind != dictionary.ProofPresence {
		t.Fatalf("post-swap status kind = %v, want presence", st2.Proof.Kind)
	}
	if st2.Root.N != st0.Root.N+1 {
		t.Fatalf("post-swap root n = %d, want %d", st2.Root.N, st0.Root.N+1)
	}
	if stats = store.CacheStats(); stats.Misses != 2 {
		t.Fatalf("post-swap lookup should miss: misses=%d, want 2", stats.Misses)
	}

	// And the re-cached presence status is served on the next hit.
	st3, _, err := store.Status("CA1", victim)
	if err != nil {
		t.Fatal(err)
	}
	if st3 != st2 {
		t.Error("post-swap status was not re-cached")
	}
}

// TestRemoveExpiredShards covers the §VIII storage-reclamation path: only
// expiry shards whose bucket has fully passed are dropped, their cached
// statuses with them; unsharded dictionaries are never touched.
func TestRemoveExpiredShards(t *testing.T) {
	const width = 1000 * time.Second
	shardRoot := func(t *testing.T, base string, bucket int64) *cert.Certificate {
		t.Helper()
		key, err := cryptoutil.NewSigner(nil)
		if err != nil {
			t.Fatal(err)
		}
		id := dictionary.CAID(fmt.Sprintf("%s/exp-%d", base, bucket))
		c, err := cert.Issue(id, key, cert.Template{
			SerialNumber: serial.FromUint64(1),
			Subject:      string(id),
			NotBefore:    0,
			NotAfter:     1 << 40,
			PublicKey:    key.Public(),
			IsCA:         true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	plainRoot := func(t *testing.T, id string) *cert.Certificate {
		t.Helper()
		key, err := cryptoutil.NewSigner(nil)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cert.Issue(dictionary.CAID(id), key, cert.Template{
			SerialNumber: serial.FromUint64(1),
			Subject:      id,
			NotBefore:    0,
			NotAfter:     1 << 40,
			PublicKey:    key.Public(),
			IsCA:         true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	expired := shardRoot(t, "CA1", 1000)   // bucket [1000, 2000): gone at 2500
	live := shardRoot(t, "CA1", 2000)      // bucket [2000, 3000): live at 2500
	unsharded := plainRoot(t, "LegacyCA")  // never pruned
	trap := plainRoot(t, "CA9/exp-oops-1") // malformed suffix: not a shard

	store, err := NewStore(expired, live, unsharded, trap)
	if err != nil {
		t.Fatal(err)
	}
	removed := store.RemoveExpired(2500, width)
	if len(removed) != 1 || removed[0] != expired.Issuer {
		t.Fatalf("RemoveExpired = %v, want [%s]", removed, expired.Issuer)
	}
	if _, err := store.Replica(expired.Issuer); !errors.Is(err, ErrNoDictionary) {
		t.Errorf("expired shard still replicated: %v", err)
	}
	for _, keep := range []dictionary.CAID{live.Issuer, unsharded.Issuer, trap.Issuer} {
		if _, err := store.Replica(keep); err != nil {
			t.Errorf("replica %s should survive: %v", keep, err)
		}
	}
	// Zero width disables pruning entirely.
	if removed := store.RemoveExpired(1<<40, 0); removed != nil {
		t.Errorf("width 0 pruned %v", removed)
	}
}
