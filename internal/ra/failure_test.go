package ra

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ritm/internal/cdn"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/tlssim"
)

// Failure-injection tests for the RA: dissemination outages, poisoned
// messages, and unreachable upstreams must surface as errors and never
// corrupt replicated state or wedge the data path.

// outageOrigin simulates a dissemination outage.
type outageOrigin struct {
	cdn.Origin
	down atomic.Bool
}

var errOutage = errors.New("dissemination outage")

func (o *outageOrigin) Pull(ca dictionary.CAID, from uint64) (*cdn.PullResponse, error) {
	if o.down.Load() {
		return nil, errOutage
	}
	return o.Origin.Pull(ca, from)
}

func TestSyncSurvivesOutage(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	outage := &outageOrigin{Origin: e.edge}
	e.ra.origin = outage

	if _, err := e.ca.Revoke(serial.NewGenerator(1, nil).NextN(2)...); err != nil {
		t.Fatal(err)
	}
	outage.down.Store(true)
	if err := e.ra.SyncOnce(); !errors.Is(err, errOutage) {
		t.Fatalf("outage not surfaced: %v", err)
	}
	replica, err := e.ra.Store().Replica("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if replica.Count() != 0 {
		t.Fatalf("state mutated during outage: n=%d", replica.Count())
	}
	// Recovery: the next pull catches up completely.
	outage.down.Store(false)
	if err := e.ra.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if replica.Count() != 2 {
		t.Fatalf("post-outage count = %d, want 2", replica.Count())
	}
}

// poisonOrigin swaps the serials inside issuance messages, keeping the
// (now non-matching) signed root — a corrupting CDN.
type poisonOrigin struct {
	cdn.Origin
}

func (p *poisonOrigin) Pull(ca dictionary.CAID, from uint64) (*cdn.PullResponse, error) {
	resp, err := p.Origin.Pull(ca, from)
	if err != nil || resp.Issuance == nil || len(resp.Issuance.Serials) == 0 {
		return resp, err
	}
	poisoned := *resp.Issuance
	poisoned.Serials = serial.NewGenerator(0xBAD, nil).NextN(len(resp.Issuance.Serials))
	return &cdn.PullResponse{Issuance: &poisoned, Freshness: resp.Freshness}, nil
}

func TestSyncRejectsPoisonedIssuance(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	e.ra.origin = &poisonOrigin{Origin: e.edge}

	if _, err := e.ca.Revoke(serial.NewGenerator(2, nil).NextN(3)...); err != nil {
		t.Fatal(err)
	}
	err := e.ra.SyncOnce()
	if err == nil {
		t.Fatal("poisoned issuance accepted")
	}
	if !errors.Is(err, dictionary.ErrRootMismatch) {
		t.Errorf("err = %v, want ErrRootMismatch (the §V attack signal)", err)
	}
	replica, rerr := e.ra.Store().Replica("CA1")
	if rerr != nil {
		t.Fatal(rerr)
	}
	if replica.Count() != 0 {
		t.Fatalf("poisoned serials committed: n=%d", replica.Count())
	}
}

func TestProxyUnreachableUpstream(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	// Reserve an address and close it: dialing it must fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	proxy, err := e.ra.NewProxy("127.0.0.1:0", dead)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	var proxyErr atomic.Value
	proxy.SetOnError(func(err error) { proxyErr.Store(err) })

	conn, err := net.Dial("tcp", proxy.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The proxy closes our connection once the upstream dial fails.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection to dead upstream delivered data")
	}
}

func TestProxySurvivesMidHandshakePeerDisappearance(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	serverAddr := startServer(t, &tlssim.Config{Chain: e.chain, Key: e.key})
	proxy, err := e.ra.NewProxy("127.0.0.1:0", serverAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// A client that sends half a ClientHello record and vanishes.
	raw, err := net.Dial("tcp", proxy.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{22, 3, 3, 0x40, 0x00, 0x01, 0x02}) //nolint:errcheck // partial record
	raw.Close()

	// The proxy must remain fully functional for the next client.
	conn, err := tlssim.Dial("tcp", proxy.Addr().String(), &tlssim.Config{
		Pool:        e.pool,
		ServerName:  "example.com",
		RequestRITM: true,
	})
	if err != nil {
		t.Fatalf("proxy wedged after abandoned connection: %v", err)
	}
	conn.Close()
	// Teardown runs asynchronously after the close; wait for the table to
	// drain rather than racing it.
	deadline := time.Now().Add(5 * time.Second)
	for e.ra.Table().Len() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := e.ra.Table().Len(); n != 0 {
		t.Errorf("connection table leaked %d entries", n)
	}
}
