// Package ra implements RITM's Revocation Agent (§III, §VI): the network
// middlebox that replicates every CA's authenticated dictionary from the
// dissemination network, performs deep-packet inspection of TLS-sim traffic
// on a client-server path, and injects fresh revocation statuses into
// supported connections.
//
// The package is organized around four pieces:
//
//   - Store: one dictionary.Replica per CA, plus the trust anchors used to
//     verify what the dissemination network delivers;
//   - Fetcher: the pull loop contacting an edge server every ∆ (§III
//     "Dissemination"), with desynchronization recovery;
//   - Table: the per-connection DPI state of Eq (4);
//   - Proxy: a TCP middlebox that splices revocation-status records into
//     the TLS-sim stream (RA-to-client communication method 1/3 of §VIII).
package ra

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ritm/internal/cert"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/storage"
)

// Errors returned by RA operations.
var (
	// ErrNoDictionary reports a status request for a CA the RA does not
	// replicate (the RA then cannot support the connection).
	ErrNoDictionary = errors.New("ra: no dictionary for CA")
)

// Store holds the RA's copies of all CA dictionaries ("every RA stores
// copies of all the dictionaries", §III) together with the trust anchors
// used to verify them, and the per-∆ status cache the data path serves
// from.
//
// The store is RCU-structured for the RA's read-dominated workload: the
// CA→replica map, the sorted CA list, and the trust pool live in one
// immutable storeView behind an atomic pointer. Readers (Prove, Status,
// Replica, CAs, LatestRoot — every handshake-path operation) load the
// pointer and never take a lock; the rare writers (AddCA, Remove,
// RemoveExpired) build the next view under a mutex and swap it in. Each
// replica in turn publishes lock-free snapshots, so a status is produced
// without acquiring any lock anywhere on the path.
type Store struct {
	view   atomic.Pointer[storeView]
	wmu    sync.Mutex // serializes view writers
	cache  *statusCache
	layout dictionary.LayoutKind // commitment layout for every replica

	// sharedMode marks a read-only store: dictionaries are served from
	// another process's durable logs via storage.Mapper (see shared.go)
	// instead of owned replicas. mapper is non-nil iff sharedMode.
	sharedMode bool
	mapper     storage.Mapper

	// Durable state tier (nil backend = purely in-memory, the default).
	// Verified updates are WAL-appended per CA; every ckptEvery records
	// the replica's state is checkpointed and the WAL reset, bounding both
	// replay time and WAL growth. AddCA warm-starts each replica from its
	// log, so a restarted RA resumes at its persisted count and the
	// fetcher pulls only the missed suffix — O(missed ∆) instead of the
	// full-dictionary resync a cold start pays.
	backend   storage.Backend
	ckptEvery int
	now       func() time.Time
	pmu       sync.Mutex // guards logs and their append counters
	logs      map[dictionary.CAID]*caLog
}

// caLog pairs a CA's durable log with its records-since-checkpoint count.
// Its mutex serializes (replica update, WAL append) per CA as one unit,
// so concurrent syncs can never write WAL records out of apply order —
// an inverted pair would replay as a gap and fail recovery loudly.
type caLog struct {
	mu       sync.Mutex
	log      storage.Log
	appended int
}

// DefaultCheckpointEvery is the default number of WAL records between
// checkpoint snapshots. Checkpoints cost O(dictionary) while appends cost
// O(batch); once per 64 batches keeps the amortized overhead per sync
// cycle small while bounding crash-recovery replay to 64 records.
const DefaultCheckpointEvery = 64

// StoreOptions configures a Store beyond its trust anchors.
type StoreOptions struct {
	// Layout is the commitment layout for every replica (see
	// NewStoreWithLayout for the matching contract).
	Layout dictionary.LayoutKind
	// Storage, when non-nil, persists every replica to the backend and
	// warm-starts replicas from it on AddCA.
	Storage storage.Backend
	// CheckpointEvery is the number of WAL records between checkpoints
	// (0 = DefaultCheckpointEvery).
	CheckpointEvery int
	// SharedData turns the store into a read-only co-located reader:
	// instead of owning replicas and writing to Storage, it maps the
	// checkpoints another process's store writes there (one writer, N
	// readers against one data directory) and serves statuses from the
	// mapping. Requires Storage to implement storage.Mapper (both
	// built-in backends do). Refresh — normally driven by the RA's sync
	// loop — picks up the writer's installs.
	SharedData bool
	// Now is the clock used when re-validating persisted freshness on
	// warm start (nil = time.Now).
	Now func() time.Time
}

// storeView is one immutable configuration of the store. All fields —
// including the pool — are replaced wholesale, never mutated, once the
// view is published. Exactly one of replicas/shared is populated per CA:
// owned dictionaries live in replicas, shared-mode readers in shared.
type storeView struct {
	replicas map[dictionary.CAID]*dictionary.Replica
	shared   map[dictionary.CAID]*sharedDict
	cas      []dictionary.CAID // sorted
	pool     *cert.Pool
}

// NewStore creates an empty store trusting the given root certificates; a
// replica (with the default sorted layout) is created per root.
func NewStore(roots ...*cert.Certificate) (*Store, error) {
	return NewStoreWithLayout(dictionary.LayoutSorted, roots...)
}

// NewStoreWithLayout creates a store whose replicas use the given
// commitment layout. The layout must match what the replicated CAs sign
// with (roots are layout-specific; a mismatch rejects every update with
// ErrRootMismatch), so it is a deployment-wide setting, not per-CA.
func NewStoreWithLayout(layout dictionary.LayoutKind, roots ...*cert.Certificate) (*Store, error) {
	return NewStoreWithOptions(StoreOptions{Layout: layout}, roots...)
}

// NewStoreWithOptions creates a store with full configuration, including
// the optional durable state tier.
func NewStoreWithOptions(opts StoreOptions, roots ...*cert.Certificate) (*Store, error) {
	pool, err := cert.NewPool()
	if err != nil {
		return nil, err
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Store{
		cache:     newStatusCache(),
		layout:    opts.Layout,
		backend:   opts.Storage,
		ckptEvery: opts.CheckpointEvery,
		now:       opts.Now,
		logs:      make(map[dictionary.CAID]*caLog),
	}
	if opts.SharedData {
		mapper, ok := opts.Storage.(storage.Mapper)
		if !ok {
			return nil, fmt.Errorf("ra: SharedData requires a storage backend implementing storage.Mapper (got %T)", opts.Storage)
		}
		s.sharedMode = true
		s.mapper = mapper
		s.backend = nil // readers never open the logs for writing
	}
	s.view.Store(&storeView{
		replicas: map[dictionary.CAID]*dictionary.Replica{},
		shared:   map[dictionary.CAID]*sharedDict{},
		pool:     pool,
	})
	for _, r := range roots {
		if err := s.AddCA(r); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// clone copies the view's map and CA list so a writer can mutate them
// before publishing. The pool is cloned too: published views must never
// observe later AddRoot calls.
func (v *storeView) clone() *storeView {
	next := &storeView{
		replicas: make(map[dictionary.CAID]*dictionary.Replica, len(v.replicas)+1),
		shared:   make(map[dictionary.CAID]*sharedDict, len(v.shared)+1),
		pool:     v.pool.Clone(),
	}
	for ca, r := range v.replicas {
		next.replicas[ca] = r
	}
	for ca, d := range v.shared {
		next.shared[ca] = d
	}
	return next
}

// rebuildCAs recomputes the sorted CA list; caller publishes next.
func (v *storeView) rebuildCAs() {
	v.cas = make([]dictionary.CAID, 0, len(v.replicas)+len(v.shared))
	for ca := range v.replicas {
		v.cas = append(v.cas, ca)
	}
	for ca := range v.shared {
		v.cas = append(v.cas, ca)
	}
	sort.Slice(v.cas, func(i, j int) bool { return v.cas[i] < v.cas[j] })
}

// AddCA starts replicating one more CA's dictionary, trusting the given
// self-signed root certificate (the bootstrapping manifest of §VIII).
// With a storage backend configured, the replica warm-starts from its
// durable log: the persisted checkpoint is restored (re-verified against
// this trust anchor) and the WAL replayed, so the replica resumes at the
// count it crashed with.
func (s *Store) AddCA(root *cert.Certificate) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	cur := s.view.Load()
	_, dupR := cur.replicas[root.Issuer]
	_, dupS := cur.shared[root.Issuer]
	if dupR || dupS {
		// Same trust anchor, dictionary already live: only the pool changes.
		next := cur.clone()
		if err := next.pool.AddRoot(root); err != nil {
			return fmt.Errorf("ra: add CA: %w", err)
		}
		next.rebuildCAs()
		s.view.Store(next)
		return nil
	}
	if s.sharedMode {
		d, err := newSharedDict(root.Issuer, root.PublicKey, s.layout, s.mapper, s.now)
		if err != nil {
			return err
		}
		next := cur.clone()
		if err := next.pool.AddRoot(root); err != nil {
			d.close()
			return fmt.Errorf("ra: add CA: %w", err)
		}
		next.shared[root.Issuer] = d
		next.rebuildCAs()
		s.view.Store(next)
		return nil
	}
	replica, lg, err := s.openReplica(root)
	if err != nil {
		return err
	}
	next := cur.clone()
	if err := next.pool.AddRoot(root); err != nil {
		if lg != nil {
			lg.Close()
		}
		return fmt.Errorf("ra: add CA: %w", err)
	}
	next.replicas[root.Issuer] = replica
	next.rebuildCAs()
	if lg != nil {
		s.pmu.Lock()
		s.logs[root.Issuer] = &caLog{log: lg}
		s.pmu.Unlock()
	}
	s.view.Store(next)
	return nil
}

// openReplica builds the replica for a trust anchor: fresh when no
// backend (or no durable state) exists, recovered otherwise. Recovery
// fails loudly on anything unverifiable — a corrupt store must not
// silently degrade to a cold start, because the operator would read the
// ensuing full resync as normal.
func (s *Store) openReplica(root *cert.Certificate) (*dictionary.Replica, storage.Log, error) {
	ca := root.Issuer
	if s.backend == nil {
		return dictionary.NewReplicaWithLayout(ca, root.PublicKey, s.layout), nil, nil
	}
	lg, err := s.backend.Open(string(ca))
	if err != nil {
		return nil, nil, fmt.Errorf("ra: open durable log for %s: %w", ca, err)
	}
	replica, err := dictionary.RecoverReplicaLog(lg, ca, root.PublicKey, s.layout, s.now().Unix())
	if err != nil {
		lg.Close()
		return nil, nil, fmt.Errorf("ra: warm-start %s: %w", ca, err)
	}
	return replica, lg, nil
}

// applyUpdate applies a verified issuance message to the CA's replica
// and, when it changed state and a backend is configured, WAL-appends it
// (checkpointing on cadence) — the update and the append are one unit
// under the CA's log mutex, so the WAL order always matches the apply
// order even under concurrent SyncOnce calls. Persistence failures are
// returned so the sync loop can surface them; the in-memory replica
// already advanced, so nothing is lost until the process dies — the next
// successful checkpoint covers the gap.
func (s *Store) applyUpdate(ca dictionary.CAID, replica *dictionary.Replica, msg *dictionary.IssuanceMessage, bounds []uint64) error {
	var cl *caLog
	if s.backend != nil {
		s.pmu.Lock()
		cl = s.logs[ca]
		s.pmu.Unlock()
	}
	if cl != nil {
		cl.mu.Lock()
		defer cl.mu.Unlock()
	}
	gen := replica.Snapshot().Generation()
	if err := replica.UpdateWithBounds(msg, bounds); err != nil {
		return err
	}
	if cl == nil || replica.Snapshot().Generation() == gen {
		// No backend, a removed CA, or a verified no-op (re-delivered
		// root): nothing to persist.
		return nil
	}
	rec := dictionary.UpdateRecord{Msg: msg, Bounds: bounds}
	if err := cl.log.Append(rec.Encode()); err != nil {
		return fmt.Errorf("ra: persist update for %s: %w", ca, err)
	}
	cl.appended++
	if cl.appended < s.ckptEvery {
		return nil
	}
	return s.checkpointLocked(ca, cl)
}

// checkpointLocked snapshots the CA's replica into its log, in the
// offset-indexed v2 format: the next warm start maps it instead of
// replaying it, and co-located shared-data readers serve straight from
// the mapping. Caller holds cl.mu.
func (s *Store) checkpointLocked(ca dictionary.CAID, cl *caLog) error {
	r, ok := s.view.Load().replicas[ca]
	if !ok {
		return nil
	}
	if err := cl.log.Checkpoint(r.PersistentStateV2()); err != nil {
		return fmt.Errorf("ra: checkpoint %s: %w", ca, err)
	}
	cl.appended = 0
	return nil
}

// applyFreshness applies a verified freshness statement to the CA's
// replica and, when it advanced the replica's state and a backend is
// configured, WAL-appends a freshness record. The record is what keeps
// co-located shared-data readers fresh between checkpoints: without it a
// reader mapping (checkpoint + WAL) would regress to the signed root's
// anchor until the writer's next update batch.
func (s *Store) applyFreshness(ca dictionary.CAID, replica *dictionary.Replica, stmt *dictionary.FreshnessStatement, now int64) error {
	var cl *caLog
	if s.backend != nil {
		s.pmu.Lock()
		cl = s.logs[ca]
		s.pmu.Unlock()
	}
	if cl != nil {
		cl.mu.Lock()
		defer cl.mu.Unlock()
	}
	gen := replica.Snapshot().Generation()
	if err := replica.ApplyFreshness(stmt, now); err != nil {
		return err
	}
	if cl == nil || replica.Snapshot().Generation() == gen {
		return nil
	}
	rec := dictionary.FreshnessRecord{Value: stmt.Value}
	if err := cl.log.Append(rec.Encode()); err != nil {
		return fmt.Errorf("ra: persist freshness for %s: %w", ca, err)
	}
	// Freshness records do not advance the checkpoint cadence counter:
	// they are tiny, idempotent on replay, and a checkpoint triggered by
	// them alone would rewrite O(dictionary) state once per period even
	// with no revocation traffic.
	return nil
}

// Close releases the store's durable state: each CA whose log absorbed
// WAL records since its last checkpoint is checkpointed one final time —
// a clean shutdown leaves a map-ready v2 snapshot, so the next start (and
// every co-located reader) maps instead of replaying — then the logs are
// closed. In shared mode the retained mappings are released instead. The
// store must not be mutated afterwards; reads keep working from memory.
func (s *Store) Close() error {
	var firstErr error
	if s.sharedMode {
		for _, d := range s.view.Load().shared {
			if err := d.close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	s.pmu.Lock()
	defer s.pmu.Unlock()
	for ca, cl := range s.logs {
		cl.mu.Lock() // wait out any in-flight persisted update
		var err error
		if cl.appended > 0 {
			err = s.checkpointLocked(ca, cl)
		}
		if cerr := cl.log.Close(); cerr != nil && err == nil {
			err = cerr
		}
		cl.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		delete(s.logs, ca)
	}
	return firstErr
}

// Remove stops replicating a dictionary, frees its replica, and purges its
// cached statuses. With expiry-sharded dictionaries (§VIII "Ever-growing
// dictionaries"), RAs call it — normally through RemoveExpired — for
// shards whose certificates have all expired, reclaiming the storage. The
// trust anchor stays in the pool: removal is about storage, not trust.
func (s *Store) Remove(ca dictionary.CAID) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	cur := s.view.Load()
	if d, ok := cur.shared[ca]; ok {
		next := cur.clone()
		delete(next.shared, ca)
		next.rebuildCAs()
		s.view.Store(next)
		s.cache.purgeCA(ca)
		d.close() //nolint:errcheck // release the mappings; the files belong to the writer
		return
	}
	if _, ok := cur.replicas[ca]; !ok {
		return
	}
	next := cur.clone()
	delete(next.replicas, ca)
	next.rebuildCAs()
	s.view.Store(next)
	s.cache.purgeCA(ca)
	// Reclaim the durable state too: removal is the §VIII storage-reclaim
	// path, and a shard that expired will never be pulled again.
	s.pmu.Lock()
	cl := s.logs[ca]
	delete(s.logs, ca)
	s.pmu.Unlock()
	if cl != nil {
		cl.mu.Lock()     // wait out any in-flight persisted update
		cl.log.Destroy() //nolint:errcheck // reclaim is best-effort; the shard is already gone from memory
		cl.mu.Unlock()
	}
}

// RemoveExpired walks the replicated dictionaries and removes every
// expiry shard (an identifier produced by dictionary.ShardIDFor) whose
// bucket — of the given width — ended at or before now: every certificate
// such a shard covers has expired, so its revocation status is moot and
// the replica's storage is reclaimed (§VIII "Ever-growing dictionaries").
// Dictionaries without the shard suffix are never touched. It returns the
// removed shard identifiers.
//
// Caveat: shards are recognized purely by the "<ca>/exp-<unixtime>"
// identifier convention, so that suffix namespace is reserved — an
// unsharded CA whose identifier happens to end in "/exp-<integer>" would
// be pruned as if it were a shard. Deployments that cannot guarantee the
// convention must call Remove per shard themselves instead.
func (s *Store) RemoveExpired(now int64, width time.Duration) []dictionary.CAID {
	w := int64(width / time.Second)
	if w <= 0 {
		return nil
	}
	var removed []dictionary.CAID
	for _, ca := range s.CAs() {
		_, bucketStart, ok := dictionary.ParseShardID(ca)
		if !ok || bucketStart+w > now {
			continue
		}
		s.Remove(ca)
		removed = append(removed, ca)
	}
	return removed
}

// ReplaceReplica atomically substitutes the replica for ca with r and
// purges the CA's cached statuses. It is the commit step of
// desynchronization recovery (ra.RA.Resync): the replacement is built and
// fully synchronized off to the side, then swapped in, so the data path
// never observes a half-rebuilt dictionary. It fails if ca is not
// currently replicated or r mirrors a different CA.
func (s *Store) ReplaceReplica(ca dictionary.CAID, r *dictionary.Replica) error {
	if r == nil || r.CA() != ca {
		return fmt.Errorf("ra: replace replica: replacement does not mirror %s", ca)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	cur := s.view.Load()
	if _, ok := cur.replicas[ca]; !ok {
		return fmt.Errorf("%w: %s", ErrNoDictionary, ca)
	}
	next := cur.clone()
	next.replicas[ca] = r
	next.rebuildCAs()
	s.view.Store(next)
	s.cache.purgeCA(ca)
	// A replaced replica's history diverges from whatever the WAL holds
	// (that is the point of a resync); checkpoint the new state now so a
	// crash never replays old-history records onto it.
	s.pmu.Lock()
	cl := s.logs[ca]
	s.pmu.Unlock()
	if cl != nil {
		cl.mu.Lock()
		err := s.checkpointLocked(ca, cl)
		cl.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Layout returns the commitment layout the store's replicas use.
func (s *Store) Layout() dictionary.LayoutKind { return s.layout }

// Replica returns the replica for ca. Shared-mode dictionaries have no
// replica — they are read-only views of another process's state — so
// requesting one is an error distinct from an unknown CA.
func (s *Store) Replica(ca dictionary.CAID) (*dictionary.Replica, error) {
	v := s.view.Load()
	r, ok := v.replicas[ca]
	if !ok {
		if _, shared := v.shared[ca]; shared {
			return nil, fmt.Errorf("ra: %s is served from a shared mapping (read-only)", ca)
		}
		return nil, fmt.Errorf("%w: %s", ErrNoDictionary, ca)
	}
	return r, nil
}

// sharedFor returns the shared-mode reader for ca, if any.
func (s *Store) sharedFor(ca dictionary.CAID) (*sharedDict, bool) {
	d, ok := s.view.Load().shared[ca]
	return d, ok
}

// Refresh polls every shared dictionary's stamp and re-maps the ones
// whose writer installed new state, publishing fresh snapshot
// generations. A no-op (and nil) outside shared mode. The RA's sync loop
// calls it on the same cadence it would have pulled from an origin.
func (s *Store) Refresh() error {
	var firstErr error
	for _, d := range s.view.Load().shared {
		if err := d.refresh(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// CAs lists the replicated CAs, sorted. The returned slice is shared and
// must not be modified.
func (s *Store) CAs() []dictionary.CAID {
	return s.view.Load().cas
}

// Pool returns the trust anchor pool (shared, read-only use).
func (s *Store) Pool() *cert.Pool {
	return s.view.Load().pool
}

// CAKey returns the trusted public key for ca.
func (s *Store) CAKey(ca dictionary.CAID) (ed25519.PublicKey, bool) {
	return s.view.Load().pool.CAKey(ca)
}

// Prove produces the revocation status for (ca, sn) from the RA's replica
// (Fig 2, prove; Fig 3 step 4), bypassing the status cache — each call
// constructs a fresh proof. The data path uses Status instead.
func (s *Store) Prove(ca dictionary.CAID, sn serial.Number) (*dictionary.Status, error) {
	if d, ok := s.sharedFor(ca); ok {
		ss := d.load()
		if ss == nil {
			return nil, fmt.Errorf("ra: shared dictionary %s has no state yet", ca)
		}
		st, err := ss.snap.Prove(sn)
		if err != nil {
			return nil, fmt.Errorf("ra: prove %v against %s: %w", sn, ca, err)
		}
		return st, nil
	}
	r, err := s.Replica(ca)
	if err != nil {
		return nil, err
	}
	st, err := r.Prove(sn)
	if err != nil {
		return nil, fmt.Errorf("ra: prove %v against %s: %w", sn, ca, err)
	}
	return st, nil
}

// Status produces the revocation status for (ca, sn) with its wire
// encoding, memoized per snapshot generation: while the replica's signed
// root and freshness statement are unchanged (a whole ∆ window), repeated
// requests for the same serial are served from the sharded cache as one
// map read. The returned Status has Subject set to sn and is shared —
// callers must treat it, and the encoded bytes, as immutable.
func (s *Store) Status(ca dictionary.CAID, sn serial.Number) (*dictionary.Status, []byte, error) {
	v := s.view.Load()
	var (
		source cacheSource
		gen    uint64
		prove  func(serial.Number) (*dictionary.Status, error)
	)
	if d, ok := v.shared[ca]; ok {
		ss := d.load()
		if ss == nil {
			return nil, nil, fmt.Errorf("ra: shared dictionary %s has no state yet", ca)
		}
		// gen and snapshot are published together, so the cached entry's
		// generation always labels the snapshot it was computed from.
		source, gen, prove = d, ss.gen, ss.snap.Prove
	} else if r, ok := v.replicas[ca]; ok {
		snap := r.Snapshot()
		source, gen, prove = r, snap.Generation(), snap.Prove
	} else {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoDictionary, ca)
	}
	key := cacheKeyFor(ca, sn)
	if e, ok := s.cache.get(key, source, gen); ok {
		return e.status, e.encoded, nil
	}
	st, err := prove(sn)
	if err != nil {
		return nil, nil, fmt.Errorf("ra: prove %v against %s: %w", sn, ca, err)
	}
	st.Subject = sn
	e := &cacheEntry{source: source, gen: gen, status: st, encoded: st.Encode()}
	s.cache.put(key, e)
	// A concurrent Remove may have purged this CA between our view load
	// and the put, in which case the entry just stored aliases a removed
	// dictionary: unservable (the source check in get fails) but pinning
	// the dead dictionary's arrays until it is evicted. Re-check the
	// current view and purge again if we raced; one of the two purges
	// necessarily observes the entry.
	cur := s.view.Load()
	if curR, ok := cur.replicas[ca]; ok {
		if cacheSource(curR) != source {
			s.cache.purgeCA(ca)
		}
	} else if curD, ok := cur.shared[ca]; ok {
		if cacheSource(curD) != source {
			s.cache.purgeCA(ca)
		}
	} else {
		s.cache.purgeCA(ca)
	}
	return e.status, e.encoded, nil
}

// CacheStats reports the status cache's hit/miss counters.
func (s *Store) CacheStats() CacheStats { return s.cache.stats() }

// SnapshotSwaps sums the snapshot generations across all replicas: the
// total number of atomic snapshot publications (updates + freshness
// refreshes) the store has absorbed. Benchmarks report it next to the
// cache hit rate, since every swap invalidates the affected CA's cached
// statuses.
func (s *Store) SnapshotSwaps() uint64 {
	var total uint64
	v := s.view.Load()
	for _, r := range v.replicas {
		total += r.Snapshot().Generation()
	}
	for _, d := range v.shared {
		total += d.CurrentGeneration()
	}
	return total
}

// LatestRoot returns the newest verified signed root for ca. It satisfies
// the monitor package's RootSource, letting RAs participate in consistency
// checking (§III "Consistency Checking").
func (s *Store) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	if d, ok := s.sharedFor(ca); ok {
		if ss := d.load(); ss != nil && ss.snap.Root() != nil {
			return ss.snap.Root(), nil
		}
		return nil, fmt.Errorf("ra: shared dictionary %s has no signed root yet", ca)
	}
	r, err := s.Replica(ca)
	if err != nil {
		return nil, err
	}
	root := r.Root()
	if root == nil {
		return nil, fmt.Errorf("ra: replica of %s has no signed root yet", ca)
	}
	return root, nil
}

// MappedBytes sums the sizes of the currently mapped shared checkpoints:
// bytes served via the page cache — shared across co-located readers —
// rather than process-private heap. Zero outside shared mode.
func (s *Store) MappedBytes() int {
	total := 0
	for _, d := range s.view.Load().shared {
		total += d.mappedBytes()
	}
	return total
}

// SerializedSize sums the canonical serialized sizes of all replicas
// (§VII-D storage overhead).
func (s *Store) SerializedSize() int {
	total := 0
	for _, r := range s.view.Load().replicas {
		total += r.SerializedSize()
	}
	return total
}

// MemoryFootprint sums the estimated resident sizes of all replicas.
func (s *Store) MemoryFootprint() int {
	total := 0
	for _, r := range s.view.Load().replicas {
		total += r.MemoryFootprint()
	}
	return total
}
