// Package ra implements RITM's Revocation Agent (§III, §VI): the network
// middlebox that replicates every CA's authenticated dictionary from the
// dissemination network, performs deep-packet inspection of TLS-sim traffic
// on a client-server path, and injects fresh revocation statuses into
// supported connections.
//
// The package is organized around four pieces:
//
//   - Store: one dictionary.Replica per CA, plus the trust anchors used to
//     verify what the dissemination network delivers;
//   - Fetcher: the pull loop contacting an edge server every ∆ (§III
//     "Dissemination"), with desynchronization recovery;
//   - Table: the per-connection DPI state of Eq (4);
//   - Proxy: a TCP middlebox that splices revocation-status records into
//     the TLS-sim stream (RA-to-client communication method 1/3 of §VIII).
package ra

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"sync"

	"ritm/internal/cert"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// Errors returned by RA operations.
var (
	// ErrNoDictionary reports a status request for a CA the RA does not
	// replicate (the RA then cannot support the connection).
	ErrNoDictionary = errors.New("ra: no dictionary for CA")
)

// Store holds the RA's copies of all CA dictionaries ("every RA stores
// copies of all the dictionaries", §III) together with the trust anchors
// used to verify them. It is safe for concurrent use: the fetcher updates
// replicas while DPI handlers prove against them.
type Store struct {
	mu       sync.RWMutex
	replicas map[dictionary.CAID]*dictionary.Replica
	pool     *cert.Pool
}

// NewStore creates an empty store trusting the given root certificates; a
// replica is created per root.
func NewStore(roots ...*cert.Certificate) (*Store, error) {
	pool, err := cert.NewPool()
	if err != nil {
		return nil, err
	}
	s := &Store{
		replicas: make(map[dictionary.CAID]*dictionary.Replica, len(roots)),
		pool:     pool,
	}
	for _, r := range roots {
		if err := s.AddCA(r); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// AddCA starts replicating one more CA's dictionary, trusting the given
// self-signed root certificate (the bootstrapping manifest of §VIII).
func (s *Store) AddCA(root *cert.Certificate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.pool.AddRoot(root); err != nil {
		return fmt.Errorf("ra: add CA: %w", err)
	}
	if _, dup := s.replicas[root.Issuer]; !dup {
		s.replicas[root.Issuer] = dictionary.NewReplica(root.Issuer, root.PublicKey)
	}
	return nil
}

// Remove stops replicating a dictionary and frees its replica. With
// expiry-sharded dictionaries (§VIII "Ever-growing dictionaries"), RAs
// call it for shards whose certificates have all expired, reclaiming the
// storage. The trust anchor stays in the pool: removal is about storage,
// not trust.
func (s *Store) Remove(ca dictionary.CAID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.replicas, ca)
}

// Replica returns the replica for ca.
func (s *Store) Replica(ca dictionary.CAID) (*dictionary.Replica, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.replicas[ca]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoDictionary, ca)
	}
	return r, nil
}

// CAs lists the replicated CAs, sorted.
func (s *Store) CAs() []dictionary.CAID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]dictionary.CAID, 0, len(s.replicas))
	for ca := range s.replicas {
		out = append(out, ca)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Pool returns the trust anchor pool (shared, read-only use).
func (s *Store) Pool() *cert.Pool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pool
}

// CAKey returns the trusted public key for ca.
func (s *Store) CAKey(ca dictionary.CAID) (ed25519.PublicKey, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pool.CAKey(ca)
}

// Prove produces the revocation status for (ca, sn) from the RA's replica
// (Fig 2, prove; Fig 3 step 4).
func (s *Store) Prove(ca dictionary.CAID, sn serial.Number) (*dictionary.Status, error) {
	r, err := s.Replica(ca)
	if err != nil {
		return nil, err
	}
	st, err := r.Prove(sn)
	if err != nil {
		return nil, fmt.Errorf("ra: prove %v against %s: %w", sn, ca, err)
	}
	return st, nil
}

// LatestRoot returns the newest verified signed root for ca. It satisfies
// the monitor package's RootSource, letting RAs participate in consistency
// checking (§III "Consistency Checking").
func (s *Store) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	r, err := s.Replica(ca)
	if err != nil {
		return nil, err
	}
	root := r.Root()
	if root == nil {
		return nil, fmt.Errorf("ra: replica of %s has no signed root yet", ca)
	}
	return root, nil
}

// SerializedSize sums the canonical serialized sizes of all replicas
// (§VII-D storage overhead).
func (s *Store) SerializedSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, r := range s.replicas {
		total += r.SerializedSize()
	}
	return total
}

// MemoryFootprint sums the estimated resident sizes of all replicas.
func (s *Store) MemoryFootprint() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, r := range s.replicas {
		total += r.MemoryFootprint()
	}
	return total
}
