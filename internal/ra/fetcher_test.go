package ra

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ritm/internal/ca"
	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// TestFetcherSyncsImmediately asserts the first sync does not wait for the
// first tick: the seed fetcher slept a full interval before pulling, so a
// freshly started RA served ErrDesynchronized statuses for up to ∆.
func TestFetcherSyncsImmediately(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	if _, err := e.ca.Revoke(serial.NewGenerator(3, nil).NextN(2)...); err != nil {
		t.Fatal(err)
	}
	// Interval of an hour: only the immediate first sync can catch up.
	f := e.ra.StartFetcherWith(FetcherOptions{Interval: time.Hour})
	defer f.Shutdown()
	waitFor(t, 2*time.Second, func() bool {
		r, err := e.ra.Store().Replica("CA1")
		return err == nil && r.Count() == 2
	}, "immediate first sync")
	if st := f.Stats(); st.Syncs < 1 {
		t.Errorf("syncs = %d, want ≥1", st.Syncs)
	}
}

// TestFetcherJitterStillSyncs runs a jittered fetcher and asserts syncing
// proceeds (jitter delays pulls within a cycle, it must not lose them).
func TestFetcherJitterStillSyncs(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	if _, err := e.ca.Revoke(serial.NewGenerator(4, nil).NextN(3)...); err != nil {
		t.Fatal(err)
	}
	f := e.ra.StartFetcherWith(FetcherOptions{Interval: 30 * time.Millisecond, Jitter: 10 * time.Millisecond})
	defer f.Shutdown()
	waitFor(t, 2*time.Second, func() bool {
		r, err := e.ra.Store().Replica("CA1")
		return err == nil && r.Count() == 3
	}, "jittered sync")
}

// TestSyncOnceSurfacesErrAhead asserts the plain sync path still reports
// the origin regression instead of recovering silently: recovery is the
// fetcher's (opt-out) policy, not SyncOnce semantics.
func TestSyncOnceSurfacesErrAhead(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	if _, err := e.ca.Revoke(serial.NewGenerator(5, nil).NextN(2)...); err != nil {
		t.Fatal(err)
	}
	if err := e.ra.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	// "Restart" the origin: a fresh, entirely empty distribution point —
	// fewer revocations than the RA already holds.
	dp2 := cdn.NewDistributionPoint(nil)
	if err := dp2.RegisterCA("CA1", e.ca.PublicKey()); err != nil {
		t.Fatal(err)
	}
	e.ra.origin = dp2
	if err := e.ra.SyncOnce(); !errors.Is(err, cdn.ErrAhead) {
		t.Fatalf("sync against restarted origin: err = %v, want ErrAhead", err)
	}

	// Resync against the still-rootless origin must refuse to trade a
	// verifiable dictionary for an empty one (the trigger is unsigned; an
	// origin mid-restart re-publishes seconds later).
	if err := e.ra.Resync("CA1"); err == nil {
		t.Fatal("Resync adopted a rootless origin")
	}
	if r, _ := e.ra.Store().Replica("CA1"); r.Count() != 2 {
		t.Errorf("replica wiped by refused resync: count = %d, want 2", r.Count())
	}
}

// TestFetcherRecoversFromOriginRestart is the §III desynchronization story
// in the direction the seed could not handle: the origin restarts with a
// shorter (but CA-signed) history, every pull returns ErrAhead forever,
// and the fetcher must re-resolve from origin state instead of erroring
// until the heat death of the deployment.
func TestFetcherRecoversFromOriginRestart(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	gen := serial.NewGenerator(6, nil)
	msg1, err := e.ca.Revoke(gen.NextN(2)...)
	if err != nil {
		t.Fatal(err)
	}
	msg2, err := e.ca.Revoke(gen.NextN(3)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ra.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if r, _ := e.ra.Store().Replica("CA1"); r.Count() != 5 {
		t.Fatalf("pre-restart count = %d, want 5", r.Count())
	}

	// Origin restart: dp2 was re-fed only the first issuance message.
	dp2 := cdn.NewDistributionPoint(nil)
	if err := dp2.RegisterCA("CA1", e.ca.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := dp2.PublishIssuance(msg1); err != nil {
		t.Fatal(err)
	}
	e.ra.origin = dp2

	f := e.ra.StartFetcherWith(FetcherOptions{Interval: 20 * time.Millisecond})
	defer f.Shutdown()

	// Recovery: the replica re-resolves to the origin's (shorter) state.
	waitFor(t, 2*time.Second, func() bool {
		r, err := e.ra.Store().Replica("CA1")
		return err == nil && r.Count() == 2
	}, "ErrAhead recovery")
	if st := f.Stats(); st.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥1", st.Recoveries)
	}

	// The recovered replica still proves statuses (same trust anchor).
	if _, err := e.ra.Status("CA1", serial.NewGenerator(99, nil).Next()); err != nil {
		t.Errorf("status after recovery: %v", err)
	}

	// The origin catches back up; the fetcher follows without further
	// recovery gymnastics.
	if err := dp2.PublishIssuance(msg2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		r, err := e.ra.Store().Replica("CA1")
		return err == nil && r.Count() == 5
	}, "post-recovery catch-up")
}

// TestFetcherDisableRecovery asserts the opt-out: with recovery disabled
// the ErrAhead surfaces through OnError on every cycle and the replica is
// left untouched.
func TestFetcherDisableRecovery(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	if _, err := e.ca.Revoke(serial.NewGenerator(8, nil).NextN(2)...); err != nil {
		t.Fatal(err)
	}
	if err := e.ra.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	dp2 := cdn.NewDistributionPoint(nil)
	if err := dp2.RegisterCA("CA1", e.ca.PublicKey()); err != nil {
		t.Fatal(err)
	}
	e.ra.origin = dp2

	errs := make(chan error, 64)
	f := e.ra.StartFetcherWith(FetcherOptions{
		Interval:        20 * time.Millisecond,
		DisableRecovery: true,
		OnError: func(err error) {
			select {
			case errs <- err:
			default: // the test stops draining after the first error
			}
		},
	})
	defer f.Shutdown()

	select {
	case err := <-errs:
		if !errors.Is(err, cdn.ErrAhead) {
			t.Fatalf("surfaced error = %v, want ErrAhead", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ErrAhead never surfaced with recovery disabled")
	}
	if r, _ := e.ra.Store().Replica("CA1"); r.Count() != 2 {
		t.Errorf("replica mutated with recovery disabled: count = %d, want 2", r.Count())
	}
	if st := f.Stats(); st.Recoveries != 0 {
		t.Errorf("recoveries = %d, want 0", st.Recoveries)
	}
}

// TestFetcherShardExpiry wires the §VIII "ever-growing dictionaries"
// story end to end: an RA replicating an expiry shard whose bucket lies
// in the past drops it on the fetcher's expiry sweep, while unsharded
// dictionaries are untouched.
func TestFetcherShardExpiry(t *testing.T) {
	const width = time.Hour
	now := time.Now()
	// A shard bucket that ended two hours ago: everything it covers has
	// expired.
	bucket := (now.Add(-3*width).Unix() / 3600) * 3600
	shardID := dictionary.CAID(fmt.Sprintf("ShardCA/exp-%d", bucket))

	dp := cdn.NewDistributionPoint(nil)
	newCA := func(id dictionary.CAID) *ca.CA {
		t.Helper()
		authority, err := ca.New(ca.Config{ID: id, Delta: 10 * time.Second, Publisher: dp})
		if err != nil {
			t.Fatal(err)
		}
		if err := dp.RegisterCA(id, authority.PublicKey()); err != nil {
			t.Fatal(err)
		}
		if err := authority.PublishRoot(); err != nil {
			t.Fatal(err)
		}
		return authority
	}
	shardCA := newCA(shardID)
	liveCA := newCA("LiveCA")

	agent, err := New(Config{
		Roots:  []*cert.Certificate{shardCA.RootCertificate(), liveCA.RootCertificate()},
		Origin: dp,
		Delta:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(agent.Store().CAs()); got != 2 {
		t.Fatalf("replicating %d dictionaries, want 2", got)
	}

	f := agent.StartFetcherWith(FetcherOptions{Interval: 20 * time.Millisecond, ShardExpiry: width})
	defer f.Shutdown()
	waitFor(t, 2*time.Second, func() bool {
		cas := agent.Store().CAs()
		return len(cas) == 1 && cas[0] == "LiveCA"
	}, "expired shard removal")
	if st := f.Stats(); st.ShardsExpired != 1 {
		t.Errorf("shards expired = %d, want 1", st.ShardsExpired)
	}
}

// hotSwapOrigin lets a test replace the upstream while a fetcher is
// live — an origin restart under a running RA.
type hotSwapOrigin struct {
	mu sync.Mutex
	o  cdn.Origin
}

func (s *hotSwapOrigin) set(o cdn.Origin) { s.mu.Lock(); s.o = o; s.mu.Unlock() }
func (s *hotSwapOrigin) get() cdn.Origin  { s.mu.Lock(); defer s.mu.Unlock(); return s.o }

func (s *hotSwapOrigin) Pull(ca dictionary.CAID, from uint64) (*cdn.PullResponse, error) {
	return s.get().Pull(ca, from)
}
func (s *hotSwapOrigin) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	return s.get().LatestRoot(ca)
}
func (s *hotSwapOrigin) CAs() ([]dictionary.CAID, error) { return s.get().CAs() }

// TestFetcherRepeatedOriginRestarts hammers the recovery path the PR 2
// surface shipped thin: THREE successive origin restarts, each with a
// progressively re-fed (CA-signed) history, must each trigger exactly the
// ErrAhead → Resync arc — counted in FetcherStats — and leave the RA
// converged on whatever the current origin holds. Run under -race: the
// fetcher loop races the origin swaps by design.
func TestFetcherRepeatedOriginRestarts(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	swap := &hotSwapOrigin{o: e.ra.origin}
	e.ra.origin = swap
	gen := serial.NewGenerator(11, nil)
	// Three issuance messages: restart k is re-fed only the first k.
	msgs := make([]*dictionary.IssuanceMessage, 3)
	for i := range msgs {
		var err error
		if msgs[i], err = e.ca.Revoke(gen.NextN(2)...); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.ra.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if r, _ := e.ra.Store().Replica("CA1"); r.Count() != 6 {
		t.Fatalf("pre-restart count = %d, want 6", r.Count())
	}

	f := e.ra.StartFetcherWith(FetcherOptions{Interval: 20 * time.Millisecond})
	defer f.Shutdown()

	for restarts := 1; restarts <= 3; restarts++ {
		fed := restarts - 1 // 0, 1, 2 messages → counts 0, 2, 4: always behind the RA
		dp := cdn.NewDistributionPoint(nil)
		if err := dp.RegisterCA("CA1", e.ca.PublicKey()); err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs[:fed] {
			if err := dp.PublishIssuance(m); err != nil {
				t.Fatal(err)
			}
		}
		swap.set(dp)

		if fed == 0 {
			// A rootless origin is refused (never trade a verifiable
			// dictionary for nothing): recoveries tick, the replica stays.
			prev := f.Stats().Recoveries
			waitFor(t, 2*time.Second, func() bool {
				return f.Stats().Recoveries > prev
			}, "refused-resync attempt")
			if r, _ := e.ra.Store().Replica("CA1"); r.Count() != 6 {
				t.Fatalf("restart %d: replica wiped by refused resync (count %d)", restarts, r.Count())
			}
			// Re-feed one message so the fetcher can actually adopt it.
			if err := dp.PublishIssuance(msgs[0]); err != nil {
				t.Fatal(err)
			}
			fed = 1
		}
		want := uint64(2 * fed)
		waitFor(t, 2*time.Second, func() bool {
			r, err := e.ra.Store().Replica("CA1")
			return err == nil && r.Count() == want
		}, "recovery to restarted origin's count")

		// Catch the origin back up for the next round: the RA follows
		// forward syncs without further recoveries.
		for _, m := range msgs[fed:] {
			if err := dp.PublishIssuance(m); err != nil {
				t.Fatal(err)
			}
		}
		waitFor(t, 2*time.Second, func() bool {
			r, err := e.ra.Store().Replica("CA1")
			return err == nil && r.Count() == 6
		}, "post-recovery catch-up")
	}

	st := f.Stats()
	if st.Recoveries < 3 {
		t.Errorf("recoveries = %d over 3 restarts, want ≥ 3", st.Recoveries)
	}
	// Statuses still verify after the whole ordeal (same trust anchor
	// throughout).
	if _, err := e.ra.Status("CA1", serial.NewGenerator(123, nil).Next()); err != nil {
		t.Errorf("status after 3 restart recoveries: %v", err)
	}
}
