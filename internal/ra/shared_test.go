package ra

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"ritm/internal/cert"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/storage"
)

// Shared replica store scenario tests: one writer RA owns the durable
// logs; reader RAs (Config.SharedData) serve the same statuses off a
// read-only mapping of the writer's checkpoints, refreshing when the
// writer's stamp moves.

// newSharedPair builds a writer RA (pulling from env.dp, checkpointing
// every batch so readers see v2 state immediately) and a reader RA
// mapping the same backend.
func newSharedPair(t *testing.T, env *persistEnv, layout dictionary.LayoutKind, backend storage.Backend) (writer, reader *RA) {
	t.Helper()
	writer, err := New(Config{
		Roots:           []*cert.Certificate{env.ca.RootCertificate()},
		Origin:          env.dp,
		Delta:           10 * time.Second,
		Layout:          layout,
		Storage:         backend,
		CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := writer.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	reader, err = New(Config{
		Roots:      []*cert.Certificate{env.ca.RootCertificate()},
		Delta:      10 * time.Second,
		Layout:     layout,
		Storage:    backend,
		SharedData: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		reader.Store().Close()
		writer.Store().Close()
	})
	return writer, reader
}

// TestSharedReaderServesWriterState: a reader RA pointed at the writer's
// data directory serves byte-identical statuses for revoked and absent
// serials, off a real file mapping, without any origin access.
func TestSharedReaderServesWriterState(t *testing.T) {
	for _, layout := range []dictionary.LayoutKind{dictionary.LayoutSorted, dictionary.LayoutForest} {
		t.Run(layout.String(), func(t *testing.T) {
			env := newPersistEnv(t, layout, nil, 12, 25)
			backend := storage.NewFileBackend(t.TempDir(), false)
			writer, reader := newSharedPair(t, env, layout, backend)

			probes := append(serial.NewGenerator(0xD15C, nil).NextN(300), // revoked prefix
				serial.NewGenerator(0xAB5E, nil).NextN(20)...) // absent
			for _, sn := range probes {
				ws, err := writer.Status("CA1", sn)
				if err != nil {
					t.Fatal(err)
				}
				rs, err := reader.Status("CA1", sn)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ws.Encode(), rs.Encode()) {
					t.Fatalf("writer and reader statuses differ for %v", sn)
				}
				if _, err := rs.Check(sn, env.ca.PublicKey(), time.Now().Unix()); err != nil {
					t.Fatalf("reader status does not verify: %v", err)
				}
			}

			// The reader serves off an actual checkpoint mapping, and its
			// dictionaries are not exposed as mutable replicas.
			if got := reader.Store().MappedBytes(); got == 0 {
				t.Error("reader reports no mapped bytes; expected a live checkpoint mapping")
			}
			if _, err := reader.Store().Replica("CA1"); err == nil ||
				!strings.Contains(err.Error(), "shared mapping") {
				t.Errorf("Replica on a shared CA = %v, want shared-mapping error", err)
			}

			// Cache interplay: a repeated lookup is a hit keyed on the
			// shared dictionary's generation.
			before := reader.Store().CacheStats()
			if _, err := reader.Status("CA1", probes[0]); err != nil {
				t.Fatal(err)
			}
			if after := reader.Store().CacheStats(); after.Hits <= before.Hits {
				t.Error("repeated shared-path Status did not hit the cache")
			}
		})
	}
}

// TestSharedReaderTracksWriter: the reader picks up both kinds of writer
// progress — new revocations (checkpoint install, stamp moves) and a
// freshness refresh (WAL-appended FreshnessRecord, no checkpoint) — on
// its next sync, bumping its generation so cached statuses invalidate.
func TestSharedReaderTracksWriter(t *testing.T) {
	env := newPersistEnv(t, dictionary.LayoutForest, nil, 8, 25)
	backend := storage.NewFileBackend(t.TempDir(), false)
	writer, reader := newSharedPair(t, env, dictionary.LayoutForest, backend)

	d, ok := reader.Store().sharedFor("CA1")
	if !ok {
		t.Fatal("reader has no shared dictionary for CA1")
	}
	gen0 := d.CurrentGeneration()
	if count := d.load().snap.Count(); count != 200 {
		t.Fatalf("initial shared count = %d, want 200", count)
	}

	// Writer absorbs new revocations and checkpoints them.
	env.revoke(t, 2, 25)
	if err := writer.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if err := reader.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if count := d.load().snap.Count(); count != 250 {
		t.Fatalf("shared count after writer advance = %d, want 250", count)
	}
	gen1 := d.CurrentGeneration()
	if gen1 <= gen0 {
		t.Fatalf("generation did not advance on remap: %d → %d", gen0, gen1)
	}

	// A freshness-only refresh reaches the reader through the WAL record
	// the writer appends (no new checkpoint involved).
	if err := env.ca.PublishRefresh(); err != nil {
		t.Fatal(err)
	}
	if err := writer.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	wr, err := writer.Store().Replica("CA1")
	if err != nil {
		t.Fatal(err)
	}
	want := wr.Snapshot().Freshness()
	if err := reader.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	rs, err := reader.Status("CA1", serial.NewGenerator(0x90AD, nil).Next())
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Freshness.Equal(want) {
		t.Error("reader did not adopt the writer's refreshed freshness value")
	}

	// An unchanged stamp must be a no-op refresh: same generation.
	genBefore := d.CurrentGeneration()
	if err := reader.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if got := d.CurrentGeneration(); got != genBefore {
		t.Errorf("refresh with unchanged stamp bumped generation %d → %d", genBefore, got)
	}
}

// TestSharedReaderHeapFallbackFromV1: a writer that last checkpointed in
// the v1 format (pre-upgrade binary) is still readable — the reader
// rebuilds on the heap from a private copy instead of mapping — and the
// reader upgrades to zero-copy serving as soon as the writer installs a
// v2 checkpoint.
func TestSharedReaderHeapFallbackFromV1(t *testing.T) {
	env := newPersistEnv(t, dictionary.LayoutSorted, nil, 6, 20)
	backend := storage.NewFileBackend(t.TempDir(), false)

	// Seed the directory the way an old writer would have: a v1
	// checkpoint, no WAL suffix.
	replica := dictionary.NewReplica("CA1", env.ca.PublicKey())
	resp, err := env.dp.Pull("CA1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.UpdateWithBounds(resp.Issuance, resp.Bounds); err != nil {
		t.Fatal(err)
	}
	lg, err := backend.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint(replica.PersistentState().Encode()); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	reader, err := New(Config{
		Roots:      []*cert.Certificate{env.ca.RootCertificate()},
		Delta:      10 * time.Second,
		Layout:     dictionary.LayoutSorted,
		Storage:    backend,
		SharedData: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Store().Close()

	sn := serial.NewGenerator(0xD15C, nil).Next()
	st, err := reader.Status("CA1", sn)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := st.Check(sn, env.ca.PublicKey(), time.Now().Unix()); err != nil || res != dictionary.CheckRevoked {
		t.Fatalf("v1-fallback status: res=%v err=%v, want revoked", res, err)
	}
	if got := reader.Store().MappedBytes(); got != 0 {
		t.Errorf("v1 fallback reports %d mapped bytes, want 0 (heap rebuild)", got)
	}

	// A (new-binary) writer opens the same directory — recovery rewrites
	// the checkpoint as v2 — and the reader flips to mapped serving.
	writer, err := New(Config{
		Roots:           []*cert.Certificate{env.ca.RootCertificate()},
		Origin:          env.dp,
		Delta:           10 * time.Second,
		Layout:          dictionary.LayoutSorted,
		Storage:         backend,
		CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Store().Close()
	env.revoke(t, 1, 20)
	if err := writer.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if err := reader.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if got := reader.Store().MappedBytes(); got == 0 {
		t.Error("reader did not upgrade to mapped serving after the writer's v2 checkpoint")
	}
	ws, err := writer.Status("CA1", sn)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := reader.Status("CA1", sn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ws.Encode(), rs.Encode()) {
		t.Error("post-upgrade statuses diverge between writer and reader")
	}
}

// TestSharedConcurrentRemap is the -race half of the remap-window
// coverage: reader goroutines hammer Status (mapped proofs alias the
// checkpoint bytes) while the writer keeps absorbing revocations and
// installing checkpoints and another goroutine refreshes the reader.
// Every status served at any point during the churn must verify.
func TestSharedConcurrentRemap(t *testing.T) {
	env := newPersistEnv(t, dictionary.LayoutForest, nil, 8, 25)
	backend := storage.NewFileBackend(t.TempDir(), false)
	writer, reader := newSharedPair(t, env, dictionary.LayoutForest, backend)

	revoked := serial.NewGenerator(0xD15C, nil).NextN(200)
	absent := serial.NewGenerator(0xFA11, nil).NextN(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer churn: revoke, pull, checkpoint — each cycle installs a new
	// checkpoint (CheckpointEvery=1) under the reader's feet.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			env.revoke(t, 1, 10)
			if err := writer.SyncOnce(); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()

	// Reader refresh loop: remap as fast as stamps move.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := reader.SyncOnce(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Serving loops: proofs must stay valid across every remap.
	pub := env.ca.PublicKey()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := revoked[(i*7+g)%len(revoked)]
				if i%3 == 0 {
					sn = absent[(i+g)%len(absent)]
				}
				i++
				st, err := reader.Status("CA1", sn)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if _, err := st.Check(sn, pub, time.Now().Unix()); err != nil {
					t.Errorf("goroutine %d: served status does not verify: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
