package ra

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// Config configures a Revocation Agent.
type Config struct {
	// Roots are the trusted CA certificates whose dictionaries the RA
	// replicates.
	Roots []*cert.Certificate
	// Origin is the dissemination endpoint the RA pulls from (normally an
	// edge server; cdn.HTTPClient for a remote one).
	Origin cdn.Origin
	// Delta is the pull interval ∆. Zero selects 10 seconds, the smallest
	// value the paper analyzes.
	Delta time.Duration
	// ChainProofs enables the §VIII "Certificate chains" extension: the RA
	// injects one revocation status per certificate of the server chain
	// (for every issuer it replicates) instead of the leaf's status only.
	ChainProofs bool
	// Now is the clock (nil = time.Now); experiments inject virtual time.
	Now func() time.Time
}

// RA is a Revocation Agent. It is safe for concurrent use: the data path
// (proxy goroutines, one per connection direction) shares no locks — the
// status cache and the resumption table are sharded, the dictionary store
// is read through atomic snapshots, and the activity counters are
// atomics.
type RA struct {
	store       *Store
	origin      cdn.Origin
	delta       time.Duration
	chainProofs bool
	now         func() time.Time
	table       *Table
	sessions    *sessionTable // resumption cache: session ID / ticket → identities
	stats       proxyCounters
}

// connIdentity is what the RA must remember about a TLS session to support
// abbreviated handshakes, where no certificate crosses the wire: the CA
// (dictionary selector) and serial number of the server certificate.
type connIdentity struct {
	ca dictionary.CAID
	sn serial.Number
}

// New creates a Revocation Agent.
func New(cfg Config) (*RA, error) {
	if cfg.Origin == nil {
		return nil, fmt.Errorf("ra: config missing dissemination origin")
	}
	if cfg.Delta == 0 {
		cfg.Delta = 10 * time.Second
	}
	if cfg.Delta < time.Second {
		return nil, fmt.Errorf("ra: ∆ = %v, must be at least one second", cfg.Delta)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	store, err := NewStore(cfg.Roots...)
	if err != nil {
		return nil, err
	}
	return &RA{
		store:       store,
		origin:      cfg.Origin,
		delta:       cfg.Delta,
		chainProofs: cfg.ChainProofs,
		now:         cfg.Now,
		table:       NewTable(),
		sessions:    newSessionTable(),
	}, nil
}

// Store exposes the RA's dictionary store.
func (ra *RA) Store() *Store { return ra.store }

// Table exposes the RA's DPI connection table.
func (ra *RA) Table() *Table { return ra.table }

// Delta returns the RA's pull interval.
func (ra *RA) Delta() time.Duration { return ra.delta }

// SyncOnce performs one pull cycle over every replicated CA: it requests
// the suffix after its local count, applies the issuance message and the
// freshness statement, and returns the first error encountered (after
// attempting all CAs). The request shape makes desynchronization recovery
// automatic: a lagging replica simply receives a longer suffix (§III).
func (ra *RA) SyncOnce() error {
	var firstErr error
	for _, ca := range ra.store.CAs() {
		if err := ra.syncCA(ca); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (ra *RA) syncCA(ca dictionary.CAID) error {
	replica, err := ra.store.Replica(ca)
	if err != nil {
		return err
	}
	resp, err := ra.origin.Pull(ca, replica.Count())
	if err != nil {
		return fmt.Errorf("ra: pull %s: %w", ca, err)
	}
	if resp.Issuance != nil {
		if err := replica.Update(resp.Issuance); err != nil {
			// A root mismatch here is an attack signal, not a transient
			// failure: the network delivered a message whose signed root does
			// not match its own content (§V).
			return fmt.Errorf("ra: update %s: %w", ca, err)
		}
	}
	if resp.Freshness != nil {
		if err := replica.ApplyFreshness(resp.Freshness, ra.now().Unix()); err != nil &&
			!errors.Is(err, dictionary.ErrStale) {
			return fmt.Errorf("ra: freshness %s: %w", ca, err)
		}
	}
	return nil
}

// Status produces the revocation status for (ca, sn) from the RA's
// replica, served from the per-∆ status cache when the dictionary
// snapshot is unchanged. The status carries sn as its subject so that
// clients receiving several chain statuses can route each to the right
// certificate (§VIII). The result is shared with other callers and must
// be treated as immutable.
func (ra *RA) Status(ca dictionary.CAID, sn serial.Number) (*dictionary.Status, error) {
	st, _, err := ra.store.Status(ca, sn)
	return st, err
}

// StatusEncoded is Status plus the memoized wire encoding — the proxy's
// injection path, which writes the encoding straight into the TLS-sim
// stream without re-serializing. The bytes are shared; do not modify.
func (ra *RA) StatusEncoded(ca dictionary.CAID, sn serial.Number) (*dictionary.Status, []byte, error) {
	return ra.store.Status(ca, sn)
}

// rememberSession records the identities behind a resumption handle
// (session ID or ticket bytes), observed in plaintext during a full
// handshake, so that abbreviated handshakes can still be supported (§III
// "RITM supports two mechanisms of TLS resumption"). With chain proofs
// enabled the whole chain's identities are remembered.
func (ra *RA) rememberSession(handle []byte, ids []connIdentity) {
	ra.sessions.remember(handle, ids)
}

// lookupSession resolves a resumption handle to certificate identities.
func (ra *RA) lookupSession(handle []byte) ([]connIdentity, bool) {
	return ra.sessions.lookup(handle)
}

// Fetcher is the RA's background pull loop.
type Fetcher struct {
	stop chan struct{}
	done chan struct{}
}

// StartFetcher launches the pull loop, contacting the origin every ∆.
// Errors go to onErr (may be nil).
func (ra *RA) StartFetcher(onErr func(error)) *Fetcher {
	return ra.StartFetcherEvery(ra.delta, onErr)
}

// StartFetcherEvery launches the pull loop at a custom interval. Pulling
// more often than ∆ satisfies the protocol ("at least every ∆", §III) and
// tightens the freshness of injected statuses, which matters for small ∆
// where the publish → pull → piggyback pipeline can otherwise accumulate
// close to the client's full 2∆ tolerance.
func (ra *RA) StartFetcherEvery(interval time.Duration, onErr func(error)) *Fetcher {
	f := &Fetcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(f.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := ra.SyncOnce(); err != nil && onErr != nil {
					onErr(err)
				}
			case <-f.stop:
				return
			}
		}
	}()
	return f
}

// Shutdown stops the fetcher and waits for it to exit.
func (f *Fetcher) Shutdown() {
	close(f.stop)
	<-f.done
}

// ProxyStats counts the RA's data-path activity (§VII-D throughput).
type ProxyStats struct {
	// ConnectionsTotal counts accepted connections.
	ConnectionsTotal int64
	// ConnectionsSupported counts RITM-supported TLS connections.
	ConnectionsSupported int64
	// RecordsInspected counts TLS records classified by DPI.
	RecordsInspected int64
	// NonTLSConnections counts connections handled as transparent byte pipes.
	NonTLSConnections int64
	// StatusesInjected counts revocation-status records added to streams.
	StatusesInjected int64
	// StatusesForwarded counts upstream-RA statuses forwarded unchanged
	// (the multiple-RA rule of §VIII).
	StatusesForwarded int64
	// StatusesReplaced counts upstream-RA statuses replaced by fresher ones.
	StatusesReplaced int64
}

// proxyCounters is the lock-free backing store for ProxyStats. The seed
// kept these under the RA's global mutex, which put a lock acquisition on
// every inspected record; per-counter atomics cost one uncontended
// instruction instead.
type proxyCounters struct {
	connectionsTotal     atomic.Int64
	connectionsSupported atomic.Int64
	recordsInspected     atomic.Int64
	nonTLSConnections    atomic.Int64
	statusesInjected     atomic.Int64
	statusesForwarded    atomic.Int64
	statusesReplaced     atomic.Int64
}

// Stats returns a copy of the RA's data-path counters. Each counter is
// read atomically; the copy is not a single consistent cut across
// counters, which no caller needs.
func (ra *RA) Stats() ProxyStats {
	return ProxyStats{
		ConnectionsTotal:     ra.stats.connectionsTotal.Load(),
		ConnectionsSupported: ra.stats.connectionsSupported.Load(),
		RecordsInspected:     ra.stats.recordsInspected.Load(),
		NonTLSConnections:    ra.stats.nonTLSConnections.Load(),
		StatusesInjected:     ra.stats.statusesInjected.Load(),
		StatusesForwarded:    ra.stats.statusesForwarded.Load(),
		StatusesReplaced:     ra.stats.statusesReplaced.Load(),
	}
}

// CacheStats reports the RA's status-cache effectiveness.
func (ra *RA) CacheStats() CacheStats { return ra.store.CacheStats() }
