package ra

import (
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/storage"
)

// Config configures a Revocation Agent.
type Config struct {
	// Roots are the trusted CA certificates whose dictionaries the RA
	// replicates.
	Roots []*cert.Certificate
	// Origin is the dissemination endpoint the RA pulls from (normally an
	// edge server; cdn.HTTPClient for a remote one).
	Origin cdn.Origin
	// Origins, when non-empty, is the RA's multi-origin source list: an
	// ordered set of failover candidates (preferred first — e.g. the
	// nearest edge, then a follower origin, then a remote region). The RA
	// wraps them in a cdn failover origin that demotes dead or behind
	// candidates and converges on whichever one answers; combined with
	// the ErrAhead→Resync machinery this is what survives a leader crash
	// plus follower promotion without operator action. When Origin is
	// also set it becomes the first candidate.
	Origins []cdn.Origin
	// FailoverCooldown is how long a demoted candidate from Origins stays
	// skipped before being probed again (0 = cdn.DefaultFailoverCooldown).
	FailoverCooldown time.Duration
	// Delta is the pull interval ∆. Zero selects 10 seconds, the smallest
	// value the paper analyzes.
	Delta time.Duration
	// ChainProofs enables the §VIII "Certificate chains" extension: the RA
	// injects one revocation status per certificate of the server chain
	// (for every issuer it replicates) instead of the leaf's status only.
	ChainProofs bool
	// Layout selects the dictionary commitment layout for every replica
	// (zero value: LayoutSorted). It MUST match the layout the replicated
	// CAs sign with — roots are layout-specific, and a mismatched replica
	// rejects every update with ErrRootMismatch.
	Layout dictionary.LayoutKind
	// Storage, when non-nil, persists every replica (WAL of verified
	// update batches + periodic checkpoints) and warm-starts them on
	// construction: a restarted RA resumes at its persisted count and the
	// first pull fetches only the missed suffix, instead of re-downloading
	// the whole dictionary. Nil (the default) keeps the RA purely
	// in-memory.
	Storage storage.Backend
	// CheckpointEvery is the number of persisted update batches between
	// checkpoint snapshots (0 = ra.DefaultCheckpointEvery). Smaller values
	// bound recovery replay tighter; larger values amortize the
	// O(dictionary) checkpoint write over more syncs.
	CheckpointEvery int
	// SharedData runs the RA as a read-only co-located reader: instead of
	// pulling from an origin and owning replicas, it maps the checkpoints
	// a writer RA (same Storage directory, normal configuration) installs
	// and serves statuses from the mapping — one writer process pays the
	// heap and the sync traffic, every additional RA on the machine costs
	// only shared page-cache residency. Requires Storage (implementing
	// storage.Mapper); Origin becomes optional and is ignored. The sync
	// loop (SyncOnce / the fetcher) polls the writer's stamp instead of
	// pulling.
	SharedData bool
	// Now is the clock (nil = time.Now); experiments inject virtual time.
	Now func() time.Time
}

// RA is a Revocation Agent. It is safe for concurrent use: the data path
// (proxy goroutines, one per connection direction) shares no locks — the
// status cache and the resumption table are sharded, the dictionary store
// is read through atomic snapshots, and the activity counters are
// atomics.
type RA struct {
	store       *Store
	origin      cdn.Origin
	delta       time.Duration
	chainProofs bool
	now         func() time.Time
	table       *Table
	sessions    *sessionTable // resumption cache: session ID / ticket → identities
	stats       proxyCounters
}

// connIdentity is what the RA must remember about a TLS session to support
// abbreviated handshakes, where no certificate crosses the wire: the CA
// (dictionary selector) and serial number of the server certificate.
type connIdentity struct {
	ca dictionary.CAID
	sn serial.Number
}

// New creates a Revocation Agent.
func New(cfg Config) (*RA, error) {
	if len(cfg.Origins) > 0 {
		candidates := cfg.Origins
		if cfg.Origin != nil {
			candidates = append([]cdn.Origin{cfg.Origin}, candidates...)
		}
		failover, err := cdn.NewFailoverOrigin(candidates, cdn.ShardedOriginOptions{
			Cooldown: cfg.FailoverCooldown,
			Now:      cfg.Now,
		})
		if err != nil {
			return nil, fmt.Errorf("ra: %w", err)
		}
		cfg.Origin = failover
	}
	if cfg.Origin == nil && !cfg.SharedData {
		return nil, fmt.Errorf("ra: config missing dissemination origin")
	}
	if cfg.Delta == 0 {
		cfg.Delta = 10 * time.Second
	}
	if cfg.Delta < time.Second {
		return nil, fmt.Errorf("ra: ∆ = %v, must be at least one second", cfg.Delta)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	store, err := NewStoreWithOptions(StoreOptions{
		Layout:          cfg.Layout,
		Storage:         cfg.Storage,
		CheckpointEvery: cfg.CheckpointEvery,
		SharedData:      cfg.SharedData,
		Now:             cfg.Now,
	}, cfg.Roots...)
	if err != nil {
		return nil, err
	}
	return &RA{
		store:       store,
		origin:      cfg.Origin,
		delta:       cfg.Delta,
		chainProofs: cfg.ChainProofs,
		now:         cfg.Now,
		table:       NewTable(),
		sessions:    newSessionTable(),
	}, nil
}

// Store exposes the RA's dictionary store.
func (ra *RA) Store() *Store { return ra.store }

// Table exposes the RA's DPI connection table.
func (ra *RA) Table() *Table { return ra.table }

// Delta returns the RA's pull interval.
func (ra *RA) Delta() time.Duration { return ra.delta }

// SyncOnce performs one pull cycle over every replicated CA: it requests
// the suffix after its local count, applies the issuance message and the
// freshness statement, and returns the first error encountered (after
// attempting all CAs). The request shape makes desynchronization recovery
// automatic: a lagging replica simply receives a longer suffix (§III).
func (ra *RA) SyncOnce() error {
	var firstErr error
	for _, ca := range ra.store.CAs() {
		if err := ra.syncCA(ca); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (ra *RA) syncCA(ca dictionary.CAID) error {
	// Shared-mode dictionaries sync against the writer's durable state,
	// not the network: one stamp poll, a re-map when the writer moved.
	if d, ok := ra.store.sharedFor(ca); ok {
		return d.refresh()
	}
	replica, err := ra.store.Replica(ca)
	if err != nil {
		return err
	}
	resp, err := ra.origin.Pull(ca, replica.Count())
	if err != nil {
		return fmt.Errorf("ra: pull %s: %w", ca, err)
	}
	if resp.Issuance != nil {
		// The bounds replay a coalesced catch-up suffix under the origin's
		// batch structure (forest-layout roots depend on it); applyUpdate
		// also WALs the verified update when a storage backend is
		// configured. An update error is an attack signal, not a transient
		// failure: the network delivered a message whose signed root does
		// not match its own content (§V).
		if err := ra.store.applyUpdate(ca, replica, resp.Issuance, resp.Bounds); err != nil {
			return fmt.Errorf("ra: update %s: %w", ca, err)
		}
	}
	if resp.Freshness != nil {
		// applyFreshness WAL-appends the adopted statement so co-located
		// shared-data readers stay fresh between checkpoints.
		if err := ra.store.applyFreshness(ca, replica, resp.Freshness, ra.now().Unix()); err != nil &&
			!errors.Is(err, dictionary.ErrStale) {
			return fmt.Errorf("ra: freshness %s: %w", ca, err)
		}
	}
	return nil
}

// Status produces the revocation status for (ca, sn) from the RA's
// replica, served from the per-∆ status cache when the dictionary
// snapshot is unchanged. The status carries sn as its subject so that
// clients receiving several chain statuses can route each to the right
// certificate (§VIII). The result is shared with other callers and must
// be treated as immutable.
func (ra *RA) Status(ca dictionary.CAID, sn serial.Number) (*dictionary.Status, error) {
	st, _, err := ra.store.Status(ca, sn)
	return st, err
}

// StatusEncoded is Status plus the memoized wire encoding — the proxy's
// injection path, which writes the encoding straight into the TLS-sim
// stream without re-serializing. The bytes are shared; do not modify.
func (ra *RA) StatusEncoded(ca dictionary.CAID, sn serial.Number) (*dictionary.Status, []byte, error) {
	return ra.store.Status(ca, sn)
}

// rememberSession records the identities behind a resumption handle
// (session ID or ticket bytes), observed in plaintext during a full
// handshake, so that abbreviated handshakes can still be supported (§III
// "RITM supports two mechanisms of TLS resumption"). With chain proofs
// enabled the whole chain's identities are remembered.
func (ra *RA) rememberSession(handle []byte, ids []connIdentity) {
	ra.sessions.remember(handle, ids)
}

// lookupSession resolves a resumption handle to certificate identities.
func (ra *RA) lookupSession(handle []byte) ([]connIdentity, bool) {
	return ra.sessions.lookup(handle)
}

// Resync rebuilds the replica of ca from the origin's current state: a
// fresh replica (same CA, same trust anchor) is synchronized from count 0
// off to the side and, only once it verifies, swapped into the store
// atomically. This is the recovery path for cdn.ErrAhead — the origin
// holds fewer revocations than we do, typically because it was restarted
// and re-fed a shorter (but still CA-signed) history; without recovery
// every subsequent pull errors forever.
//
// Security: the replacement accepts only messages whose signed root
// verifies against the same trust anchor as before, so a malicious origin
// cannot use this path to inject state it could not also have served to a
// freshly booted RA. What it can do is serve an older-but-valid view; the
// client-side 2∆ freshness policy converts that staleness into connection
// interruption, exactly as for any stale dissemination (§V).
//
// The swap only happens when the rebuilt history is genuinely shorter
// than the current one; a rebuild at least as long means the origin
// caught back up (normal sync resumes next cycle) or an edge cache served
// a stale pre-restart response, and is reported as an error instead of
// swapped.
func (ra *RA) Resync(ca dictionary.CAID) error {
	old, err := ra.store.Replica(ca)
	if err != nil {
		return err
	}
	// The replacement inherits the old replica's trust anchor AND layout:
	// a rebuild that silently fell back to the default layout could never
	// match the origin's signed roots again.
	fresh := dictionary.NewReplicaWithLayout(ca, old.PublicKey(), old.Layout())
	resp, err := ra.origin.Pull(ca, 0)
	if err != nil {
		return fmt.Errorf("ra: resync %s: %w", ca, err)
	}
	if resp.Issuance != nil {
		if err := fresh.UpdateWithBounds(resp.Issuance, resp.Bounds); err != nil {
			return fmt.Errorf("ra: resync %s: %w", ca, err)
		}
	}
	if resp.Freshness != nil {
		if err := fresh.ApplyFreshness(resp.Freshness, ra.now().Unix()); err != nil &&
			!errors.Is(err, dictionary.ErrStale) {
			return fmt.Errorf("ra: resync %s: %w", ca, err)
		}
	}
	// Never trade a verifiable dictionary for a rootless one: an origin
	// that was restarted but not yet re-fed by its CA answers (ca, 0) with
	// an empty response, and the trigger (ErrAhead + empty body) is
	// entirely unsigned — swapping would let a malicious edge wipe RA
	// state on demand, and even an honest race would turn every status
	// into ErrDesynchronized seconds before the CA re-publishes. Keep the
	// old replica (its statuses stay verifiable within the client's 2∆
	// tolerance) and retry next cycle.
	if fresh.Root() == nil {
		return fmt.Errorf("ra: resync %s: origin has no published root yet; keeping current replica", ca)
	}
	// Resync exists to adopt a SHORTER origin history. Receiving one at
	// least as long as ours means either the origin already caught back up
	// (the normal suffix pull will succeed next cycle) or an edge cache
	// served a stale pre-restart (ca, 0) response — swapping that in would
	// reinstate the exact state that produced ErrAhead and livelock the
	// recovery (purging the status cache every cycle) until the entry
	// expires. Either way: don't swap, report, retry next cycle.
	if fresh.Count() >= old.Count() {
		return fmt.Errorf("ra: resync %s: origin returned %d revocations, not behind our %d (stale edge cache or origin recovered); deferring",
			ca, fresh.Count(), old.Count())
	}
	return ra.store.ReplaceReplica(ca, fresh)
}

// FetcherOptions configures the RA's background pull loop. The zero value
// is a production-reasonable fetcher: sync every ∆ starting immediately,
// recover from origin restarts, no jitter, no shard expiry.
type FetcherOptions struct {
	// Interval is the pull cadence (0 = the RA's ∆). Pulling more often
	// than ∆ satisfies the protocol ("at least every ∆", §III) and
	// tightens the freshness of injected statuses.
	Interval time.Duration
	// Jitter, when positive, delays each CA's pull within a cycle by a
	// uniformly random duration in [0, Jitter). A fleet of RAs started
	// together otherwise pulls every dictionary at the same instants,
	// turning every ∆ boundary into a synchronized stampede; jitter smears
	// the load across the interval. CAs sync concurrently within a cycle,
	// so the per-CA draw is clamped to Interval (not Interval/n): the
	// cycle's worst-case length is one interval — the "at least every ∆"
	// contract (§III) degrades to at most one skipped tick, never
	// unbounded drift, no matter how many shard dictionaries the RA
	// replicates. Pair jitter with Interval ≤ ∆/2 for strict compliance.
	Jitter time.Duration
	// OnError receives sync errors (nil = dropped). Recovery from
	// cdn.ErrAhead happens before OnError is consulted; only errors that
	// survive recovery are reported. CAs sync concurrently, so OnError
	// must be safe for concurrent use.
	OnError func(error)
	// ShardExpiry, when positive, runs Store.RemoveExpired with this
	// bucket width after every sync cycle, dropping expiry shards whose
	// certificates have all expired (§VIII "Ever-growing dictionaries").
	// Use the same width the CAs shard with (dictionary.ShardConfig.Width).
	ShardExpiry time.Duration
	// DisableRecovery turns off the automatic Resync on cdn.ErrAhead;
	// such errors then surface through OnError on every cycle, which is
	// only useful for deployments that treat an origin regression as an
	// incident requiring operator action.
	DisableRecovery bool
}

// fetcherSeq distinguishes jitter seeds of fetchers started in the same
// nanosecond (a fleet booted in one process).
var fetcherSeq atomic.Int64

// Fetcher is the RA's background pull loop.
type Fetcher struct {
	stop chan struct{}
	done chan struct{}

	stats fetcherCounters
}

// fetcherCounters is the backing store for FetcherStats: lock-free
// totals plus a small mutex-guarded map for the per-CA consecutive
// failure streaks (touched once per CA per cycle, so the lock is cold).
type fetcherCounters struct {
	syncs         atomic.Int64
	errors        atomic.Int64
	recoveries    atomic.Int64
	shardsExpired atomic.Int64

	mu          sync.Mutex
	consecutive map[dictionary.CAID]int64
}

// caFailed records a failed sync for ca, returning the streak length.
func (c *fetcherCounters) caFailed(ca dictionary.CAID) int64 {
	c.errors.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.consecutive == nil {
		c.consecutive = make(map[dictionary.CAID]int64)
	}
	c.consecutive[ca]++
	return c.consecutive[ca]
}

// caSynced resets ca's failure streak after a successful sync.
func (c *fetcherCounters) caSynced(ca dictionary.CAID) {
	c.mu.Lock()
	delete(c.consecutive, ca)
	c.mu.Unlock()
}

// FetcherStats counts fetcher-lifecycle activity.
type FetcherStats struct {
	// Syncs counts completed sync cycles (all CAs attempted).
	Syncs int64
	// Errors counts per-CA sync failures that survived recovery.
	Errors int64
	// Recoveries counts automatic Resync attempts triggered by
	// cdn.ErrAhead.
	Recoveries int64
	// ShardsExpired counts expiry shards dropped by the ShardExpiry sweep.
	ShardsExpired int64
	// ConsecutiveFailures maps each currently-failing CA to its streak of
	// consecutive failed syncs. A CA that syncs successfully is removed,
	// so the map holds only CAs that are behind right now — the signal an
	// operator alerts on (one unhealthy origin shard must not hide behind
	// the healthy ones in an aggregate counter).
	ConsecutiveFailures map[dictionary.CAID]int64
}

// Stats returns a copy of the fetcher's counters.
func (f *Fetcher) Stats() FetcherStats {
	st := FetcherStats{
		Syncs:         f.stats.syncs.Load(),
		Errors:        f.stats.errors.Load(),
		Recoveries:    f.stats.recoveries.Load(),
		ShardsExpired: f.stats.shardsExpired.Load(),
	}
	f.stats.mu.Lock()
	if len(f.stats.consecutive) > 0 {
		st.ConsecutiveFailures = make(map[dictionary.CAID]int64, len(f.stats.consecutive))
		for ca, n := range f.stats.consecutive {
			st.ConsecutiveFailures[ca] = n
		}
	}
	f.stats.mu.Unlock()
	return st
}

// StartFetcher launches the pull loop, contacting the origin every ∆.
// Errors go to onErr (may be nil).
func (ra *RA) StartFetcher(onErr func(error)) *Fetcher {
	return ra.StartFetcherWith(FetcherOptions{OnError: onErr})
}

// StartFetcherEvery launches the pull loop at a custom interval.
func (ra *RA) StartFetcherEvery(interval time.Duration, onErr func(error)) *Fetcher {
	return ra.StartFetcherWith(FetcherOptions{Interval: interval, OnError: onErr})
}

// StartFetcherWith launches the pull loop with full lifecycle control. The
// first sync runs immediately (a freshly started RA must not serve
// ErrDesynchronized statuses for a whole interval waiting for the first
// tick), then every Interval.
func (ra *RA) StartFetcherWith(opts FetcherOptions) *Fetcher {
	interval := opts.Interval
	if interval <= 0 {
		interval = ra.delta
	}
	f := &Fetcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(f.done)
		// Jitter source: per-fetcher, so a fleet sharing one binary still
		// draws independent offsets.
		rng := mrand.New(mrand.NewSource(time.Now().UnixNano() + fetcherSeq.Add(1)<<32))
		ra.syncCycle(f, opts, interval, rng)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				ra.syncCycle(f, opts, interval, rng)
			case <-f.stop:
				return
			}
		}
	}()
	return f
}

// syncCycle runs one fetcher cycle: every CA pulled concurrently (with
// optional per-CA jitter), ErrAhead recovery, then the shard-expiry
// sweep. CAs sync in independent goroutines so one CA's slow or failed
// pull — a hung origin shard, a long Resync — cannot delay the other
// CAs' freshness within the same tick; the errors of each are isolated
// and counted per CA (see FetcherStats.ConsecutiveFailures).
func (ra *RA) syncCycle(f *Fetcher, opts FetcherOptions, interval time.Duration, rng *mrand.Rand) {
	cas := ra.store.CAs()
	jitter := opts.Jitter
	if jitter > interval {
		// Clamp so the cycle's worst-case length stays within one interval
		// (see FetcherOptions.Jitter).
		jitter = interval
	}
	var wg sync.WaitGroup
	for _, ca := range cas {
		// Draw the jitter here: rng is not goroutine-safe, and the draws
		// must stay on the loop goroutine anyway for determinism of the
		// seed sequence.
		var delay time.Duration
		if jitter > 0 {
			delay = time.Duration(rng.Int63n(int64(jitter)))
		}
		wg.Add(1)
		go func(ca dictionary.CAID, delay time.Duration) {
			defer wg.Done()
			if delay > 0 {
				timer := time.NewTimer(delay)
				select {
				case <-timer.C:
				case <-f.stop:
					timer.Stop()
					return
				}
			}
			err := ra.syncCA(ca)
			if err != nil && errors.Is(err, cdn.ErrAhead) && !opts.DisableRecovery {
				f.stats.recoveries.Add(1)
				err = ra.Resync(ca)
			}
			if err != nil {
				f.stats.caFailed(ca)
				if opts.OnError != nil {
					opts.OnError(err)
				}
				return
			}
			f.stats.caSynced(ca)
		}(ca, delay)
	}
	wg.Wait()
	f.stats.syncs.Add(1)
	if opts.ShardExpiry > 0 {
		removed := ra.store.RemoveExpired(ra.now().Unix(), opts.ShardExpiry)
		f.stats.shardsExpired.Add(int64(len(removed)))
	}
}

// Shutdown stops the fetcher and waits for it to exit.
func (f *Fetcher) Shutdown() {
	close(f.stop)
	<-f.done
}

// ProxyStats counts the RA's data-path activity (§VII-D throughput).
type ProxyStats struct {
	// ConnectionsTotal counts accepted connections.
	ConnectionsTotal int64
	// ConnectionsSupported counts RITM-supported TLS connections.
	ConnectionsSupported int64
	// RecordsInspected counts TLS records classified by DPI.
	RecordsInspected int64
	// NonTLSConnections counts connections handled as transparent byte pipes.
	NonTLSConnections int64
	// StatusesInjected counts revocation-status records added to streams.
	StatusesInjected int64
	// StatusesForwarded counts upstream-RA statuses forwarded unchanged
	// (the multiple-RA rule of §VIII).
	StatusesForwarded int64
	// StatusesReplaced counts upstream-RA statuses replaced by fresher ones.
	StatusesReplaced int64
	// SpliceErrors counts non-benign data-path errors absorbed while
	// splicing proxied bytes (e.g. a peer reset mid-stream). The seed's
	// proxy swallowed these entirely; they now also reach SetOnError.
	SpliceErrors int64
	// ConnectionsBumped counts real-TLS connections terminated by the
	// RA's interceptor (ra.RA.NewInterceptor) after a clean status check.
	ConnectionsBumped int64
	// ConnectionsRefused counts real-TLS connections the interceptor
	// refused because the upstream leaf is revoked in the dictionary.
	ConnectionsRefused int64
}

// proxyCounters is the lock-free backing store for ProxyStats. The seed
// kept these under the RA's global mutex, which put a lock acquisition on
// every inspected record; per-counter atomics cost one uncontended
// instruction instead.
type proxyCounters struct {
	connectionsTotal     atomic.Int64
	connectionsSupported atomic.Int64
	recordsInspected     atomic.Int64
	nonTLSConnections    atomic.Int64
	statusesInjected     atomic.Int64
	statusesForwarded    atomic.Int64
	statusesReplaced     atomic.Int64
	spliceErrors         atomic.Int64
	connectionsBumped    atomic.Int64
	connectionsRefused   atomic.Int64
}

// Stats returns a copy of the RA's data-path counters. Each counter is
// read atomically; the copy is not a single consistent cut across
// counters, which no caller needs.
func (ra *RA) Stats() ProxyStats {
	return ProxyStats{
		ConnectionsTotal:     ra.stats.connectionsTotal.Load(),
		ConnectionsSupported: ra.stats.connectionsSupported.Load(),
		RecordsInspected:     ra.stats.recordsInspected.Load(),
		NonTLSConnections:    ra.stats.nonTLSConnections.Load(),
		StatusesInjected:     ra.stats.statusesInjected.Load(),
		StatusesForwarded:    ra.stats.statusesForwarded.Load(),
		StatusesReplaced:     ra.stats.statusesReplaced.Load(),
		SpliceErrors:         ra.stats.spliceErrors.Load(),
		ConnectionsBumped:    ra.stats.connectionsBumped.Load(),
		ConnectionsRefused:   ra.stats.connectionsRefused.Load(),
	}
}

// CacheStats reports the RA's status-cache effectiveness.
func (ra *RA) CacheStats() CacheStats { return ra.store.CacheStats() }
