package ra

import (
	"fmt"

	"ritm/internal/cert"
	"ritm/internal/tlssim"
)

// Deep-packet-inspection primitives (§VI). These are the two operations
// Table III of the paper measures on the RA side besides proof
// construction: classifying traffic as TLS ("TLS detection") and extracting
// the server certificate chain from a ServerHello flight ("Certificates
// parsing").

// RecordHeaderLen is the number of bytes DetectRecord needs.
const RecordHeaderLen = 5

// DetectRecord classifies the first bytes of a stream as a TLS-sim record
// header. It returns the content type, the payload length, and whether the
// bytes form a plausible record. This is the per-packet check every RA
// performs on all traffic; non-TLS traffic fails it and is forwarded
// untouched (§VI: "RAs act as transparent middleboxes").
func DetectRecord(hdr []byte) (tlssim.ContentType, int, bool) {
	if len(hdr) < RecordHeaderLen {
		return 0, 0, false
	}
	ct := tlssim.ContentType(hdr[0])
	switch ct {
	case tlssim.ContentAlert, tlssim.ContentHandshake,
		tlssim.ContentApplicationData, tlssim.ContentRITMStatus:
	default:
		return 0, 0, false
	}
	if hdr[1] != 0x03 || hdr[2] != 0x03 {
		return 0, 0, false
	}
	n := int(hdr[3])<<8 | int(hdr[4])
	if n > tlssim.MaxRecordPayload {
		return 0, 0, false
	}
	return ct, n, true
}

// ParseHandshakeRecord parses a handshake record payload into its message.
func ParseHandshakeRecord(payload []byte) (tlssim.Handshake, error) {
	return tlssim.ParseHandshake(payload)
}

// ParseCertificates extracts the server certificate chain from a
// Certificate handshake message body. The RA uses the leaf's issuer to
// select the dictionary and its serial number as the lookup key (Fig 3
// step 4).
func ParseCertificates(body []byte) (cert.Chain, error) {
	msg, err := tlssim.ParseCertificateMsg(body)
	if err != nil {
		return nil, fmt.Errorf("ra: parse certificates: %w", err)
	}
	return msg.Chain, nil
}
