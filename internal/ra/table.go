package ra

import (
	"fmt"
	"sync"

	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// Stage is the DPI view of a TLS connection's progress, the stage field of
// Eq (4).
type Stage int

// Connection stages, in protocol order.
const (
	// StageClientHello: the RITM extension was seen; awaiting ServerHello.
	StageClientHello Stage = iota + 1
	// StageServerHello: ServerHello seen; awaiting certificate (full
	// handshake) or Finished (abbreviated).
	StageServerHello
	// StageEstablished: the server's Finished was seen; periodic status
	// refresh applies (§III step 6).
	StageEstablished
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageClientHello:
		return "ClientHello"
	case StageServerHello:
		return "ServerHello"
	case StageEstablished:
		return "established"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// FourTuple identifies a connection: source/destination IP and port, the
// sIP/sPort/dIP/dPort of Eq (4). Addresses are kept as strings (the
// net.Addr representation) because the table only needs equality.
type FourTuple struct {
	SrcIP   string
	SrcPort string
	DstIP   string
	DstPort string
}

// String formats the tuple for logs.
func (ft FourTuple) String() string {
	return fmt.Sprintf("%s:%s→%s:%s", ft.SrcIP, ft.SrcPort, ft.DstIP, ft.DstPort)
}

// StateSnapshot is one consistent view of a connection's Eq (4) state:
//
//	sIP, dIP, sPort, dPort, lastStatus, stage, CA, SN
//
// LastStatus is the Unix time the last revocation status was sent to the
// client (0 until the first one); CA selects the dictionary; SN is the
// server certificate's serial number.
type StateSnapshot struct {
	Tuple      FourTuple
	LastStatus int64
	Stage      Stage
	CA         dictionary.CAID
	SN         serial.Number
}

// ConnState is the live Eq (4) state an RA keeps per supported connection.
// The proxy's data-path goroutines mutate it; observers read it through
// Snapshot.
type ConnState struct {
	tuple FourTuple

	mu         sync.Mutex
	lastStatus int64
	stage      Stage
	ca         dictionary.CAID
	sn         serial.Number
}

// Tuple returns the connection's four-tuple (immutable).
func (cs *ConnState) Tuple() FourTuple { return cs.tuple }

// Snapshot returns a consistent copy of the state.
func (cs *ConnState) Snapshot() StateSnapshot {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return StateSnapshot{
		Tuple:      cs.tuple,
		LastStatus: cs.lastStatus,
		Stage:      cs.stage,
		CA:         cs.ca,
		SN:         cs.sn,
	}
}

// setStage advances the handshake stage.
func (cs *ConnState) setStage(s Stage) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.stage = s
}

// setIdentity records the certificate identity once known (Fig 3 step 4).
func (cs *ConnState) setIdentity(ca dictionary.CAID, sn serial.Number) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.ca = ca
	cs.sn = sn
}

// identity returns the recorded CA and serial ("" CA until known).
func (cs *ConnState) identity() (dictionary.CAID, serial.Number) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.ca, cs.sn
}

// markStatus records that a status was delivered at Unix time now.
func (cs *ConnState) markStatus(now int64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.lastStatus = now
}

// needsStatus reports whether a fresh status is due: the connection is
// established, identified, and ∆ has passed since lastStatus (§III step 6:
// time() − lastStatus ≥ ∆).
func (cs *ConnState) needsStatus(now, deltaSecs int64) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.stage == StageEstablished && cs.ca != "" &&
		now-cs.lastStatus >= deltaSecs
}

// Table is the RA's DPI connection table, mapping four-tuples to states.
// It is safe for concurrent use.
type Table struct {
	mu    sync.RWMutex
	conns map[FourTuple]*ConnState
}

// NewTable creates an empty connection table.
func NewTable() *Table {
	return &Table{conns: make(map[FourTuple]*ConnState)}
}

// Create inserts the initial state for a new supported connection (Fig 3:
// stage=ClientHello, lastStatus=0, CA=∅, SN=∅). It replaces any stale entry
// for the same tuple (a previous connection on reused ports).
func (t *Table) Create(tuple FourTuple) *ConnState {
	cs := &ConnState{tuple: tuple, stage: StageClientHello}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.conns[tuple] = cs
	return cs
}

// Lookup returns the state for a tuple.
func (t *Table) Lookup(tuple FourTuple) (*ConnState, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cs, ok := t.conns[tuple]
	return cs, ok
}

// Remove drops a connection's state (connection finished or timed out,
// §III: "the RA removes the corresponding state").
func (t *Table) Remove(tuple FourTuple) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.conns, tuple)
}

// Len returns the number of tracked connections.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.conns)
}

// Snapshots returns a consistent copy of every tracked connection's state.
func (t *Table) Snapshots() []StateSnapshot {
	t.mu.RLock()
	states := make([]*ConnState, 0, len(t.conns))
	for _, cs := range t.conns {
		states = append(states, cs)
	}
	t.mu.RUnlock()
	out := make([]StateSnapshot, len(states))
	for i, cs := range states {
		out[i] = cs.Snapshot()
	}
	return out
}
