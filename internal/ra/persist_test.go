package ra

import (
	"sync/atomic"
	"testing"
	"time"

	"ritm/internal/ca"
	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/storage"
)

// Warm-start and durable-origin scenario tests: the restart stories PR 2/3
// could only resolve through ErrAhead → full Resync (re-downloading the
// whole dictionary) now resolve as plain suffix catch-up when the durable
// state tier is configured.

// countingOrigin measures the origin traffic a puller causes.
type countingOrigin struct {
	cdn.Origin
	pulls atomic.Int64
	bytes atomic.Int64
}

func (c *countingOrigin) Pull(caID dictionary.CAID, from uint64) (*cdn.PullResponse, error) {
	resp, err := c.Origin.Pull(caID, from)
	c.pulls.Add(1)
	if err == nil {
		c.bytes.Add(int64(resp.Size()))
	}
	return resp, err
}

// persistEnv is a CA → DP deployment with revocation history, for restart
// tests. batches controls how many ∆ cycles of revocations exist.
type persistEnv struct {
	ca  *ca.CA
	dp  *cdn.DistributionPoint
	gen *serial.Generator
}

func newPersistEnv(t *testing.T, layout dictionary.LayoutKind, dpBackend storage.Backend, batches, batchSize int) *persistEnv {
	t.Helper()
	dp := cdn.NewDistributionPointWithStorage(nil, dpBackend, 0)
	authority, err := ca.New(ca.Config{ID: "CA1", Delta: 10 * time.Second, Publisher: dp, Layout: layout})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.RegisterCAWithLayout("CA1", authority.PublicKey(), layout); err != nil {
		t.Fatal(err)
	}
	if err := authority.PublishRoot(); err != nil {
		t.Fatal(err)
	}
	e := &persistEnv{ca: authority, dp: dp, gen: serial.NewGenerator(0xD15C, nil)}
	e.revoke(t, batches, batchSize)
	return e
}

func (e *persistEnv) revoke(t *testing.T, batches, batchSize int) {
	t.Helper()
	for i := 0; i < batches; i++ {
		if _, err := e.ca.Revoke(e.gen.NextN(batchSize)...); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRAWarmStartSuffixCatchup is the converted restart scenario: an RA
// that restarts with a durable store resumes at its persisted count and
// fetches only the suffix it missed — measurably less origin traffic than
// the cold start's full-dictionary pull. Run for both layouts; the forest
// case crosses bucket splits while the RA is down, exercising the batch-
// bounds replay.
func TestRAWarmStartSuffixCatchup(t *testing.T) {
	for _, layout := range []dictionary.LayoutKind{dictionary.LayoutSorted, dictionary.LayoutForest} {
		t.Run(layout.String(), func(t *testing.T) {
			env := newPersistEnv(t, layout, nil, 40, 25) // 1000 revocations pre-crash
			backend := storage.NewMemory()

			agent1, err := New(Config{
				Roots:   []*cert.Certificate{env.ca.RootCertificate()},
				Origin:  env.dp,
				Delta:   10 * time.Second,
				Layout:  layout,
				Storage: backend,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := agent1.SyncOnce(); err != nil {
				t.Fatal(err)
			}
			r1, err := agent1.Store().Replica("CA1")
			if err != nil {
				t.Fatal(err)
			}
			if r1.Count() != 1000 {
				t.Fatalf("pre-crash count = %d, want 1000", r1.Count())
			}
			// "Crash" the RA; the CA keeps revoking while it is down —
			// across bucket splits for the forest layout.
			if err := agent1.Store().Close(); err != nil {
				t.Fatal(err)
			}
			env.revoke(t, 4, 25)

			// Warm restart: the replica resumes at the persisted count
			// before any network traffic.
			warmOrigin := &countingOrigin{Origin: env.dp}
			agent2, err := New(Config{
				Roots:   []*cert.Certificate{env.ca.RootCertificate()},
				Origin:  warmOrigin,
				Delta:   10 * time.Second,
				Layout:  layout,
				Storage: backend,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer agent2.Store().Close()
			r2, err := agent2.Store().Replica("CA1")
			if err != nil {
				t.Fatal(err)
			}
			if r2.Count() != 1000 {
				t.Fatalf("warm-started count = %d before sync, want 1000", r2.Count())
			}
			if err := agent2.SyncOnce(); err != nil {
				t.Fatal(err)
			}
			if r2, _ = agent2.Store().Replica("CA1"); r2.Count() != 1100 {
				t.Fatalf("post-sync count = %d, want 1100", r2.Count())
			}

			// Cold start for comparison: same origin state, no storage.
			coldOrigin := &countingOrigin{Origin: env.dp}
			agent3, err := New(Config{
				Roots:  []*cert.Certificate{env.ca.RootCertificate()},
				Origin: coldOrigin,
				Delta:  10 * time.Second,
				Layout: layout,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := agent3.SyncOnce(); err != nil {
				t.Fatal(err)
			}

			warm, cold := warmOrigin.bytes.Load(), coldOrigin.bytes.Load()
			t.Logf("catch-up bytes: warm %d, cold %d", warm, cold)
			if warm*4 >= cold {
				t.Errorf("warm start pulled %d bytes vs cold %d: suffix catch-up should be far cheaper", warm, cold)
			}

			// Warm-started statuses verify against the trust anchor.
			st, err := agent2.Status("CA1", env.gen.Next())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Check(st.Subject, env.ca.PublicKey(), time.Now().Unix()); err != nil {
				t.Errorf("warm-started status does not verify: %v", err)
			}
		})
	}
}

// TestDurableOriginRestartNoResync converts the origin-restart scenario:
// with the distribution point persisting its state, a crash and reopen
// loses nothing, so a running RA sees no ErrAhead, triggers no recovery,
// and keeps syncing plain suffixes. (Contrast TestFetcherRecoversFromOriginRestart,
// which covers the storage-less origin that MUST be recovered from.)
func TestDurableOriginRestartNoResync(t *testing.T) {
	for _, layout := range []dictionary.LayoutKind{dictionary.LayoutSorted, dictionary.LayoutForest} {
		t.Run(layout.String(), func(t *testing.T) {
			backend := storage.NewMemory()
			env := newPersistEnv(t, layout, backend, 10, 30)

			swap := &hotSwapOrigin{o: env.dp}
			agent, err := New(Config{
				Roots:  []*cert.Certificate{env.ca.RootCertificate()},
				Origin: swap,
				Delta:  10 * time.Second,
				Layout: layout,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := agent.SyncOnce(); err != nil {
				t.Fatal(err)
			}
			r, _ := agent.Store().Replica("CA1")
			if r.Count() != 300 {
				t.Fatalf("pre-restart count = %d, want 300", r.Count())
			}

			// Origin crash: the process dies, the durable state survives. A
			// reopened distribution point recovers every dictionary from the
			// backend — nothing is "re-fed" by the CA.
			if err := env.dp.Close(); err != nil {
				t.Fatal(err)
			}
			dp2 := cdn.NewDistributionPointWithStorage(nil, backend, 0)
			if err := dp2.RegisterCAWithLayout("CA1", env.ca.PublicKey(), layout); err != nil {
				t.Fatalf("reopen origin: %v", err)
			}
			swap.set(dp2)

			f := agent.StartFetcherWith(FetcherOptions{Interval: 20 * time.Millisecond})
			defer f.Shutdown()

			// The RA keeps syncing across the restart: new revocations flow
			// (published to the recovered origin), and at no point does the
			// fetcher need the ErrAhead → Resync arc.
			env.ca.SetPublisher(dp2)
			if _, err := env.ca.Revoke(env.gen.NextN(5)...); err != nil {
				t.Fatal(err)
			}
			waitFor(t, 2*time.Second, func() bool {
				r, err := agent.Store().Replica("CA1")
				return err == nil && r.Count() == 305
			}, "suffix sync across durable origin restart")
			if st := f.Stats(); st.Recoveries != 0 {
				t.Errorf("recoveries = %d across a durable origin restart, want 0", st.Recoveries)
			}
		})
	}
}

// TestStoreRemoveDestroysDurableState: dropping an expired shard reclaims
// its disk too — a later warm start must not resurrect it.
func TestStoreRemoveDestroysDurableState(t *testing.T) {
	backend := storage.NewMemory()
	env := newPersistEnv(t, dictionary.LayoutSorted, nil, 2, 5)
	agent, err := New(Config{
		Roots:   []*cert.Certificate{env.ca.RootCertificate()},
		Origin:  env.dp,
		Delta:   10 * time.Second,
		Storage: backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	agent.Store().Remove("CA1")

	lg, err := backend.Open("CA1")
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	ckpt, wal, err := lg.Load()
	if err != nil {
		t.Fatal(err)
	}
	if ckpt != nil || len(wal) != 0 {
		t.Errorf("removed CA left durable state behind: ckpt=%v wal=%d", ckpt != nil, len(wal))
	}
}

// TestWarmStartLayoutMismatchFailsLoudly: restarting with a different
// -layout (or forest bucket cap) than the store was persisted with is an
// operator error, not something to silently repair by re-syncing.
func TestWarmStartLayoutMismatchFailsLoudly(t *testing.T) {
	backend := storage.NewMemory()
	env := newPersistEnv(t, dictionary.LayoutForest, nil, 2, 10)
	agent, err := New(Config{
		Roots:           []*cert.Certificate{env.ca.RootCertificate()},
		Origin:          env.dp,
		Delta:           10 * time.Second,
		Layout:          dictionary.LayoutForest,
		Storage:         backend,
		CheckpointEvery: 1, // ensure a checkpoint exists: the descriptor check anchors there
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	agent.Store().Close()

	if _, err := New(Config{
		Roots:   []*cert.Certificate{env.ca.RootCertificate()},
		Origin:  env.dp,
		Delta:   10 * time.Second,
		Layout:  dictionary.LayoutForestWithCap(64),
		Storage: backend,
	}); err == nil {
		t.Fatal("warm start under a different bucket capacity did not fail")
	}
}
