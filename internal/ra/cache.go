package ra

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// statusCache memoizes encoded revocation statuses per (CA, serial) for as
// long as the source snapshot's generation is unchanged — which, per the
// paper's freshness model, is a whole ∆ window: proof, signed root, and
// freshness statement are all functions of the replica's current snapshot.
// Under a Zipf-like serial popularity distribution (a few certificates
// carry most of the traffic), this turns almost every handshake-path
// Status call into a single sharded map read instead of an O(log n) proof
// construction plus encoding.
//
// Invalidation is by generation comparison, not by sweeping: an entry is
// served only when its generation equals the generation of the replica's
// current snapshot, so a status whose root has been superseded is never
// served — at worst a status computed from the snapshot that was current
// when the lookup began is returned, which is exactly the guarantee an
// uncached Prove gives too.
//
// Capacity is enforced per entry, not per shard reset: a full shard evicts
// one cold entry per insert using a second-chance (CLOCK-approximated LRU)
// policy — each hit sets the entry's access bit with no write lock, and the
// eviction scan clears bits until it finds an unreferenced victim. Large
// working sets therefore degrade to targeted evictions of the coldest keys
// instead of the seed's wholesale shard reset, which threw away the hot set
// alongside the cold one on every overflow.
type statusCache struct {
	seed     maphash.Seed
	shardCap int // entries per shard; cacheShardCap outside tests
	shards   [cacheShardCount]cacheShard
}

// cacheShardCount spreads the hot path over independent locks. 64 shards
// keep contention negligible up to a few hundred data-path goroutines.
const cacheShardCount = 64

// cacheShardCap bounds each shard. 4096 × 64 shards ≈ 256 k live statuses,
// plenty above any realistic per-∆ working set. Per-instance (shardCap)
// so the eviction tests can exercise overflow without 256k inserts.
const cacheShardCap = 4096

// evictScanLimit bounds one eviction scan. Map iteration starts at a
// pseudo-random position, so the scan samples the shard; if every sampled
// entry was recently hit, the last one is evicted anyway — the bound keeps
// the put path O(1) even when the whole shard is hot.
const evictScanLimit = 16

// cacheShard counts its own hits and misses: a single global counter pair
// would put one contended cache line back onto the very path the sharding
// de-serializes, while the shard's own line is already touched by its
// RWMutex.
type cacheShard struct {
	mu        sync.RWMutex
	m         map[cacheKey]*cacheEntry
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheKey struct {
	ca dictionary.CAID
	sn string // canonical serial bytes
}

// cacheSource identifies the dictionary instance a cached status was
// computed from and exposes its current generation for staleness checks.
// *dictionary.Replica implements it for owned dictionaries; *sharedDict
// implements it for read-only mapped ones.
type cacheSource interface {
	CurrentGeneration() uint64
}

// cacheEntry is an immutable memoized status: the Status struct and its
// encoding are shared across goroutines and must never be mutated. The
// entry records which dictionary instance produced it, not just the
// generation: generations restart at zero when a CA is removed and
// re-added (Remove purges the cache, but an in-flight Status may put an
// old-instance entry back afterwards), so a generation match alone could
// eventually alias a dead dictionary's status.
type cacheEntry struct {
	source  cacheSource
	gen     uint64
	status  *dictionary.Status
	encoded []byte
	// touched is the second-chance access bit: set on every hit (under the
	// read lock only — an atomic store, not a list move), cleared by the
	// eviction scan. An entry is evicted only after surviving untouched
	// from one scan encounter to the next.
	touched atomic.Bool
}

func newStatusCache() *statusCache {
	return &statusCache{seed: maphash.MakeSeed(), shardCap: cacheShardCap}
}

func (c *statusCache) shardFor(key cacheKey) *cacheShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(string(key.ca))
	h.WriteByte(0)
	h.WriteString(key.sn)
	return &c.shards[h.Sum64()%cacheShardCount]
}

// get returns the entry for key if it matches the dictionary instance and
// generation, counting hit/miss and marking the entry recently used.
func (c *statusCache) get(key cacheKey, src cacheSource, gen uint64) (*cacheEntry, bool) {
	sh := c.shardFor(key)
	sh.mu.RLock()
	e := sh.m[key]
	sh.mu.RUnlock()
	if e != nil && e.source == src && e.gen == gen {
		e.touched.Store(true)
		sh.hits.Add(1)
		return e, true
	}
	sh.misses.Add(1)
	return nil, false
}

// put stores an entry, evicting one cold entry when the shard is full.
func (c *statusCache) put(key cacheKey, e *cacheEntry) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[cacheKey]*cacheEntry)
	} else if _, replacing := sh.m[key]; !replacing && len(sh.m) >= c.shardCap {
		sh.evictOneLocked()
	}
	sh.m[key] = e
	sh.mu.Unlock()
}

// evictOneLocked removes one entry, preferring stale or cold ones: a stale
// entry (its source already published a newer generation) goes first; an
// entry whose access bit is clear goes next; a scan full of hot entries
// clears their bits (second chance) and falls back to the last sampled.
// Caller holds the write lock.
func (sh *cacheShard) evictOneLocked() {
	var fallback cacheKey
	scanned := 0
	for k, e := range sh.m {
		scanned++
		if e.gen != e.source.CurrentGeneration() {
			delete(sh.m, k) // stale: unservable, keep nothing of it
			sh.evictions.Add(1)
			return
		}
		if !e.touched.Swap(false) {
			delete(sh.m, k)
			sh.evictions.Add(1)
			return
		}
		fallback = k
		if scanned >= evictScanLimit {
			break
		}
	}
	delete(sh.m, fallback)
	sh.evictions.Add(1)
}

// purgeCA drops every entry of one CA, used when a dictionary (for
// example an expired shard) is removed from the store.
func (c *statusCache) purgeCA(ca dictionary.CAID) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			if k.ca == ca {
				delete(sh.m, k)
			}
		}
		sh.mu.Unlock()
	}
}

// entries returns the live entry count across shards (stats/tests).
func (c *statusCache) entries() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		total += len(sh.m)
		sh.mu.RUnlock()
	}
	return total
}

// CacheStats reports the status cache's effectiveness; benchmarks surface
// HitRate and the snapshot-swap count so the hot-path trajectory is
// trackable across PRs.
type CacheStats struct {
	// Hits counts lookups served from the cache.
	Hits int64
	// Misses counts lookups that recomputed a proof (cold key or stale
	// generation).
	Misses int64
	// Evictions counts per-entry removals made to admit new entries into a
	// full shard (the second-chance policy; stale entries go first).
	Evictions int64
	// Entries is the current number of live cached statuses.
	Entries int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (c *statusCache) stats() CacheStats {
	var out CacheStats
	for i := range c.shards {
		sh := &c.shards[i]
		out.Hits += sh.hits.Load()
		out.Misses += sh.misses.Load()
		out.Evictions += sh.evictions.Load()
	}
	out.Entries = c.entries()
	return out
}

func cacheKeyFor(ca dictionary.CAID, sn serial.Number) cacheKey {
	return cacheKey{ca: ca, sn: string(sn.Raw())}
}
