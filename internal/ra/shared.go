package ra

import (
	"crypto/ed25519"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/storage"
)

// This file is the reader half of the shared replica store: N co-located
// RA processes point at ONE writer's data directory. The writer is a
// normal RA (Storage configured, fetcher running) that pulls from the
// dissemination network, verifies, WAL-appends, and checkpoints; readers
// (StoreOptions.SharedData) never open the logs for writing — they map
// the current checkpoint (physical pages shared across processes via
// mmap), overlay the WAL suffix as a small heap delta, and poll a cheap
// stamp to learn when the writer moved. The paper's RA is an untrusted
// prover (§V), so a reader trusts its mapping no more than the writer
// trusted the network: every signed root is re-verified on map, and
// corruption can only cost availability, never forge a status.

// servingSnapshot is the per-generation read contract the shared path
// serves statuses from. Both dictionary.MappedSnapshot (v2 checkpoints,
// zero-copy) and dictionary.Snapshot (the heap fallback for a writer
// that has not rewritten its checkpoint as v2 yet) satisfy it.
type servingSnapshot interface {
	Prove(sn serial.Number) (*dictionary.Status, error)
	Root() *dictionary.SignedRoot
	Count() uint64
}

// sharedState is one published (snapshot, generation) pair. Publishing
// them together keeps the status cache sound: a cached entry's
// generation always labels the snapshot it was actually computed from.
type sharedState struct {
	snap servingSnapshot
	gen  uint64
}

// retainedMappings bounds how many superseded checkpoint mappings a
// sharedDict keeps alive before closing the oldest. A mapping must
// outlive every Prove that started against it; Proves are microseconds
// and refreshes are seconds apart, so a four-generation grace is beyond
// conservative.
const retainedMappings = 4

// sharedDict serves one CA's dictionary from another process's durable
// log, read-only. It is the shared-mode analog of a replica: the store
// routes Status/Prove/LatestRoot through it, and the sync loop calls
// refresh instead of pulling from an origin.
type sharedDict struct {
	ca     dictionary.CAID
	pub    ed25519.PublicKey
	layout dictionary.LayoutKind
	mapper storage.Mapper
	name   string
	now    func() time.Time

	state atomic.Pointer[sharedState]

	mu        sync.Mutex // serializes refresh and close
	stamp     storage.Stamp
	haveStamp bool
	closed    bool
	current   *storage.MappedCheckpoint   // mapping backing state's snapshot (nil for heap fallback)
	retired   []*storage.MappedCheckpoint // superseded mappings, grace-period before close
}

// newSharedDict builds the reader for one CA and performs the initial
// map, so a freshly added CA serves immediately when the writer already
// has state.
func newSharedDict(ca dictionary.CAID, pub ed25519.PublicKey, layout dictionary.LayoutKind, mapper storage.Mapper, now func() time.Time) (*sharedDict, error) {
	d := &sharedDict{ca: ca, pub: pub, layout: layout, mapper: mapper, name: string(ca), now: now}
	if err := d.refresh(); err != nil {
		return nil, err
	}
	return d, nil
}

// CurrentGeneration implements cacheSource.
func (d *sharedDict) CurrentGeneration() uint64 {
	if st := d.state.Load(); st != nil {
		return st.gen
	}
	return 0
}

// load returns the current (snapshot, generation), or nil before the
// writer has published anything.
func (d *sharedDict) load() *sharedState { return d.state.Load() }

// refresh re-maps the writer's durable state if its stamp moved,
// publishing a new snapshot generation. It is cheap when nothing changed
// (two stats on the file backend) and safe to call concurrently.
func (d *sharedDict) refresh() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("ra: shared dictionary %s is closed", d.ca)
	}
	stamp, err := d.mapper.MapStamp(d.name)
	if err != nil {
		return fmt.Errorf("ra: stamp shared %s: %w", d.ca, err)
	}
	if d.haveStamp && stamp == d.stamp {
		return nil
	}
	mc, err := d.mapper.Map(d.name)
	if err != nil {
		return fmt.Errorf("ra: map shared %s: %w", d.ca, err)
	}
	gen := d.CurrentGeneration() + 1
	now := d.now().Unix()

	var snap servingSnapshot
	keepMapping := false
	if mc.State != nil && dictionary.IsStateV2(mc.State) {
		ms, err := dictionary.NewMappedSnapshot(d.ca, d.pub, d.layout, mc.State, mc.WAL, now, gen)
		if err != nil {
			mc.Close()
			return fmt.Errorf("ra: open shared %s: %w", d.ca, err)
		}
		snap, keepMapping = ms, true
	} else {
		// v1 checkpoint (writer not restarted since the v2 upgrade), or no
		// checkpoint at all yet: rebuild on the heap from a private copy.
		// The copy lets the mapping close immediately — heap restore may
		// retain decoded sub-slices — and costs one allocation on a path
		// that disappears as soon as the writer checkpoints in v2.
		state := append([]byte(nil), mc.State...)
		wal := mc.WAL
		mc.Close()
		replica, err := dictionary.RecoverReplicaLog(readonlyLog{state: state, wal: wal}, d.ca, d.pub, d.layout, now)
		if err != nil {
			return fmt.Errorf("ra: open shared %s: %w", d.ca, err)
		}
		snap = replica.Snapshot()
	}

	if keepMapping {
		if d.current != nil {
			d.retired = append(d.retired, d.current)
		}
		d.current = mc
		for len(d.retired) > retainedMappings {
			d.retired[0].Close()
			d.retired = d.retired[1:]
		}
	} else if d.current != nil {
		d.retired = append(d.retired, d.current)
		d.current = nil
	}
	d.state.Store(&sharedState{snap: snap, gen: gen})
	d.stamp, d.haveStamp = mc.Stamp, true
	return nil
}

// mappedBytes reports the size of the currently mapped checkpoint (0 for
// the heap fallback); benchmarks use it to attribute file-backed
// residency separately from heap.
func (d *sharedDict) mappedBytes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.current == nil {
		return 0
	}
	return len(d.current.State)
}

// close releases every retained mapping. Proves in flight at close are
// the caller's problem, as with Store.Close and the durable logs.
func (d *sharedDict) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var firstErr error
	for _, mc := range d.retired {
		if err := mc.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	d.retired = nil
	if d.current != nil {
		if err := d.current.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		d.current = nil
	}
	return firstErr
}

// readonlyLog adapts an already-read (checkpoint, WAL) pair to the
// storage.Log interface so RecoverReplicaLog can rebuild from it. The
// mutating methods succeed as no-ops: recovery's v1→v2 checkpoint
// rewrite is discarded — the files belong to the writer process, and the
// reader's rebuilt state is equivalent either way.
type readonlyLog struct {
	state []byte
	wal   [][]byte
}

func (l readonlyLog) Load() ([]byte, [][]byte, error) { return l.state, l.wal, nil }
func (l readonlyLog) Append([]byte) error             { return nil }
func (l readonlyLog) Checkpoint([]byte) error         { return nil }
func (l readonlyLog) Close() error                    { return nil }
func (l readonlyLog) Destroy() error                  { return nil }
