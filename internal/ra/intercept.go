package ra

import (
	"ritm/internal/interception"
)

// NewInterceptor starts a real-TLS intercepting data plane on listenAddr,
// backed by this RA's dictionary store: every bumped handshake drives
// Store.Status — the same lock-free fast path the tlssim proxy uses — and
// revoked upstream leaves are refused with a certificate_revoked alert
// before any application byte flows.
//
// cfg.Status is overwritten with the RA's store; cfg.OnSession is chained
// (the RA's data-path counters are updated first, then the caller's
// callback runs). Everything else in cfg passes through, so deployments
// control the minting root, bypass list, upstream target, and error sink.
func (ra *RA) NewInterceptor(listenAddr string, cfg interception.Config) (*interception.Interceptor, error) {
	cfg.Status = ra.store
	user := cfg.OnSession
	cfg.OnSession = func(s *interception.Session) {
		ra.stats.connectionsTotal.Add(1)
		switch {
		case s.NonTLS:
			ra.stats.nonTLSConnections.Add(1)
		case s.Revoked:
			ra.stats.connectionsRefused.Add(1)
		case !s.Bypassed:
			ra.stats.connectionsBumped.Add(1)
			ra.stats.connectionsSupported.Add(1)
			if s.StatusErr == nil {
				// The status rode the bump decision and its metadata is on
				// the session: the real-TLS analogue of an injected record.
				ra.stats.statusesInjected.Add(1)
			}
		}
		if user != nil {
			user(s)
		}
	}
	return interception.Listen(listenAddr, cfg)
}
