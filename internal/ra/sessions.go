package ra

import (
	"hash/maphash"
	"sync"
)

// sessionTable is the RA's resumption cache: session ID / ticket bytes →
// the certificate identities observed in plaintext during the full
// handshake, so that abbreviated handshakes (where no certificate crosses
// the wire) can still be supported (§III "RITM supports two mechanisms of
// TLS resumption").
//
// The table is sharded: every proxied full handshake writes one entry and
// every resumption reads one, so a single global mutex (the seed's design)
// serializes the whole data path at high connection rates. 64
// independently locked shards keep the table contention-free alongside
// the status cache.
type sessionTable struct {
	seed   maphash.Seed
	shards [sessionShardCount]sessionShard
}

const sessionShardCount = 64

// sessionShardCap bounds each shard's memory; a full shard is reset
// wholesale and old entries simply miss (the client then falls back to a
// full handshake's certificate flight). 64 × 1024 matches the seed's
// 1<<16 global bound.
const sessionShardCap = 1024

type sessionShard struct {
	mu sync.Mutex
	m  map[string][]connIdentity
}

func newSessionTable() *sessionTable {
	return &sessionTable{seed: maphash.MakeSeed()}
}

func (t *sessionTable) shardFor(handle string) *sessionShard {
	return &t.shards[maphash.String(t.seed, handle)%sessionShardCount]
}

// remember records the identities behind a resumption handle.
func (t *sessionTable) remember(handle []byte, ids []connIdentity) {
	if len(handle) == 0 || len(ids) == 0 || ids[0].ca == "" {
		return
	}
	key := string(handle)
	sh := t.shardFor(key)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string][]connIdentity)
	} else if len(sh.m) >= sessionShardCap {
		sh.m = make(map[string][]connIdentity)
	}
	sh.m[key] = ids
	sh.mu.Unlock()
}

// lookup resolves a resumption handle to certificate identities.
func (t *sessionTable) lookup(handle []byte) ([]connIdentity, bool) {
	if len(handle) == 0 {
		return nil, false
	}
	key := string(handle)
	sh := t.shardFor(key)
	sh.mu.Lock()
	ids, ok := sh.m[key]
	sh.mu.Unlock()
	return ids, ok
}
