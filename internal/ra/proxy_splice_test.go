package ra

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// TestProxySpliceErrorSurfaced regresses the raw-pipe error handling: an
// upstream that resets mid-stream (half-close followed by RST while the
// client keeps writing) must surface through SetOnError and the
// SpliceErrors counter instead of being swallowed — the seed dropped both
// copy errors on the floor.
func TestProxySpliceErrorSurfaced(t *testing.T) {
	e := newEnv(t, time.Hour)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		tc := c.(*net.TCPConn)
		// Wait for the first byte so the abort happens mid-stream, then
		// send an RST (SetLinger(0) + Close) instead of a clean FIN.
		buf := make([]byte, 1)
		tc.Read(buf)    //nolint:errcheck // any outcome proceeds to the reset
		tc.SetLinger(0) //nolint:errcheck // best effort
		tc.Close()
	}()

	proxy, err := e.ra.NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	errCh := make(chan error, 16)
	proxy.SetOnError(func(err error) {
		select {
		case errCh <- err:
		default:
		}
	})

	conn, err := net.Dial("tcp", proxy.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A non-TLS first byte routes the connection down the raw pipe path.
	payload := bytes.Repeat([]byte{'x'}, 4096)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := conn.Write(payload); err != nil {
			break // the RST propagated back through the proxy
		}
		time.Sleep(2 * time.Millisecond)
	}

	for time.Now().Before(deadline) {
		if e.ra.Stats().SpliceErrors > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := e.ra.Stats().SpliceErrors; got == 0 {
		t.Fatal("SpliceErrors = 0 after a mid-stream reset")
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("nil error delivered to SetOnError")
		}
	default:
		t.Fatal("no error delivered to SetOnError")
	}
}
