package ra

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ritm/internal/ca"
	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/storage"
)

// Multi-origin suite: per-CA fault isolation inside one fetch cycle, the
// Config.Origins failover wiring, and the leader-crash → follower-promotion
// scenario the HA design exists for.

// newPublishedCA registers a CA on dp and publishes its root + first
// freshness statement so RAs can sync before the first revocation.
func newPublishedCA(t *testing.T, dp *cdn.DistributionPoint, id dictionary.CAID) *ca.CA {
	t.Helper()
	authority, err := ca.New(ca.Config{ID: id, Delta: 10 * time.Second, Publisher: dp})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.RegisterCA(id, authority.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := authority.PublishRoot(); err != nil {
		t.Fatal(err)
	}
	if err := authority.PublishRefresh(); err != nil {
		t.Fatal(err)
	}
	return authority
}

// gateOrigin blocks pulls for one CA on a channel; every other CA passes
// straight through. It simulates one hung origin shard in a fleet.
type gateOrigin struct {
	inner   cdn.Origin
	slow    dictionary.CAID
	gate    chan struct{} // closed to release the slow shard
	entered chan struct{} // closed once the slow pull is in flight
	once    sync.Once
}

func (g *gateOrigin) Pull(ca dictionary.CAID, from uint64) (*cdn.PullResponse, error) {
	if ca == g.slow {
		g.once.Do(func() { close(g.entered) })
		<-g.gate
	}
	return g.inner.Pull(ca, from)
}
func (g *gateOrigin) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	return g.inner.LatestRoot(ca)
}
func (g *gateOrigin) CAs() ([]dictionary.CAID, error) { return g.inner.CAs() }

// TestFetcherShardIsolationHungOrigin pins the per-CA isolation contract:
// one CA's origin shard hanging mid-pull must not delay the other CAs in
// the same tick. The seed fetcher synced CAs sequentially, so one hung
// shard froze the whole RA for the cycle.
func TestFetcherShardIsolationHungOrigin(t *testing.T) {
	dp := cdn.NewDistributionPoint(nil)
	fastCA := newPublishedCA(t, dp, "FastCA")
	slowCA := newPublishedCA(t, dp, "SlowCA")
	gate := &gateOrigin{
		inner:   dp,
		slow:    "SlowCA",
		gate:    make(chan struct{}),
		entered: make(chan struct{}),
	}
	agent, err := New(Config{
		Roots:  []*cert.Certificate{fastCA.RootCertificate(), slowCA.RootCertificate()},
		Origin: gate,
		Delta:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fastCA.Revoke(serial.NewGenerator(21, nil).NextN(3)...); err != nil {
		t.Fatal(err)
	}

	f := agent.StartFetcherWith(FetcherOptions{Interval: 20 * time.Millisecond})
	var release sync.Once
	defer f.Shutdown()
	defer release.Do(func() { close(gate.gate) }) // Shutdown joins the cycle; unblock it first

	// The slow shard is hung in flight...
	select {
	case <-gate.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("slow CA pull never started")
	}
	// ...and the fast CA still syncs within the same (uncompleted) cycle.
	waitFor(t, 2*time.Second, func() bool {
		r, err := agent.Store().Replica("FastCA")
		return err == nil && r.Count() == 3
	}, "fast CA sync while slow shard is hung")
	if st := f.Stats(); st.Syncs != 0 {
		t.Errorf("syncs = %d while a pull is hung, want 0 (cycle must still be open)", st.Syncs)
	}

	release.Do(func() { close(gate.gate) })
	waitFor(t, 2*time.Second, func() bool {
		return f.Stats().Syncs >= 1
	}, "cycle completion after release")
}

// caFaultOrigin fails pulls for one CA while broken; everything else is
// served from the inner origin.
type caFaultOrigin struct {
	inner  cdn.Origin
	bad    dictionary.CAID
	broken atomic.Bool
}

func (o *caFaultOrigin) Pull(ca dictionary.CAID, from uint64) (*cdn.PullResponse, error) {
	if ca == o.bad && o.broken.Load() {
		return nil, fmt.Errorf("origin shard for %s is down", ca)
	}
	return o.inner.Pull(ca, from)
}
func (o *caFaultOrigin) LatestRoot(ca dictionary.CAID) (*dictionary.SignedRoot, error) {
	if ca == o.bad && o.broken.Load() {
		return nil, fmt.Errorf("origin shard for %s is down", ca)
	}
	return o.inner.LatestRoot(ca)
}
func (o *caFaultOrigin) CAs() ([]dictionary.CAID, error) { return o.inner.CAs() }

// TestFetcherShardFailureIsolationStats asserts a persistently failing CA
// (a) does not block the healthy CA's sync and (b) is visible in
// Stats().ConsecutiveFailures — per-CA, streak-counted, and cleared the
// moment the shard heals.
func TestFetcherShardFailureIsolationStats(t *testing.T) {
	dp := cdn.NewDistributionPoint(nil)
	goodCA := newPublishedCA(t, dp, "GoodCA")
	badCA := newPublishedCA(t, dp, "BadCA")
	fault := &caFaultOrigin{inner: dp, bad: "BadCA"}
	fault.broken.Store(true)
	agent, err := New(Config{
		Roots:  []*cert.Certificate{goodCA.RootCertificate(), badCA.RootCertificate()},
		Origin: fault,
		Delta:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := goodCA.Revoke(serial.NewGenerator(22, nil).NextN(2)...); err != nil {
		t.Fatal(err)
	}

	f := agent.StartFetcherWith(FetcherOptions{Interval: 20 * time.Millisecond})
	defer f.Shutdown()

	waitFor(t, 2*time.Second, func() bool {
		r, err := agent.Store().Replica("GoodCA")
		st := f.Stats()
		return err == nil && r.Count() == 2 && st.ConsecutiveFailures["BadCA"] >= 2
	}, "healthy CA sync + failure streak on the broken one")
	st := f.Stats()
	if _, ok := st.ConsecutiveFailures["GoodCA"]; ok {
		t.Errorf("healthy CA appears in ConsecutiveFailures: %v", st.ConsecutiveFailures)
	}
	if st.Errors < 2 {
		t.Errorf("errors = %d, want ≥2", st.Errors)
	}

	// The shard heals: the streak entry must disappear (the map holds only
	// currently-failing CAs).
	fault.broken.Store(false)
	waitFor(t, 2*time.Second, func() bool {
		return len(f.Stats().ConsecutiveFailures) == 0
	}, "failure streak cleared after heal")
}

// deadOrigin refuses everything — a crashed candidate.
type deadOrigin struct{}

func (deadOrigin) Pull(dictionary.CAID, uint64) (*cdn.PullResponse, error) {
	return nil, errors.New("connection refused")
}
func (deadOrigin) LatestRoot(dictionary.CAID) (*dictionary.SignedRoot, error) {
	return nil, errors.New("connection refused")
}
func (deadOrigin) CAs() ([]dictionary.CAID, error) {
	return nil, errors.New("connection refused")
}

// TestRAConfigOriginsFailover wires Config.Origins end to end: the RA
// built with a dead preferred candidate and a live second one syncs
// through the failover wrapper without the caller doing anything.
func TestRAConfigOriginsFailover(t *testing.T) {
	dp := cdn.NewDistributionPoint(nil)
	authority := newPublishedCA(t, dp, "CA1")
	if _, err := authority.Revoke(serial.NewGenerator(23, nil).NextN(4)...); err != nil {
		t.Fatal(err)
	}

	agent, err := New(Config{
		Roots:            []*cert.Certificate{authority.RootCertificate()},
		Origins:          []cdn.Origin{deadOrigin{}, dp},
		FailoverCooldown: time.Minute,
		Delta:            10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.SyncOnce(); err != nil {
		t.Fatalf("sync through dead preferred candidate: %v", err)
	}
	r, err := agent.Store().Replica("CA1")
	if err != nil || r.Count() != 4 {
		t.Fatalf("replica count = %v (err %v), want 4", r.Count(), err)
	}

	// Origin + Origins compose: Origin becomes the first candidate.
	agent2, err := New(Config{
		Roots:            []*cert.Certificate{authority.RootCertificate()},
		Origin:           deadOrigin{},
		Origins:          []cdn.Origin{dp},
		FailoverCooldown: time.Minute,
		Delta:            10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agent2.SyncOnce(); err != nil {
		t.Fatalf("sync with Origin as dead first candidate: %v", err)
	}
}

// TestLeaderCrashFollowerFailover is the acceptance scenario: a leader
// origin crashes with unreplicated records; the RA fails over to the
// WAL-shipped follower, resyncs onto its (shorter, signed) history, and
// every revocation the follower acknowledged stays provable. The CA then
// replays the missed batch to the promoted follower and the RA converges
// back to the full history — nothing is lost, no operator action beyond
// the replay.
func TestLeaderCrashFollowerFailover(t *testing.T) {
	const delta = 10 * time.Second

	// Leader: storage-backed origin (the replication stream needs a WAL).
	leaderDP := cdn.NewDistributionPointWithStorage(nil, storage.NewMemory(), 0)
	defer leaderDP.Close()
	authority := newPublishedCA(t, leaderDP, "CA1")
	leaderSrv := httptest.NewServer(cdn.Handler(leaderDP))
	defer leaderSrv.Close()

	// Follower: same trust anchor, fed over /v1/replicate.
	followerDP := cdn.NewDistributionPointWithStorage(nil, storage.NewMemory(), 0)
	defer followerDP.Close()
	if err := followerDP.RegisterCA("CA1", authority.PublicKey()); err != nil {
		t.Fatal(err)
	}
	follower := cdn.NewFollower(followerDP, &cdn.HTTPClient{BaseURL: leaderSrv.URL, MaxAttempts: 1})
	followerSrv := httptest.NewServer(cdn.Handler(followerDP))
	defer followerSrv.Close()

	agent, err := New(Config{
		Roots: []*cert.Certificate{authority.RootCertificate()},
		Origins: []cdn.Origin{
			&cdn.HTTPClient{BaseURL: leaderSrv.URL, MaxAttempts: 1},
			&cdn.HTTPClient{BaseURL: followerSrv.URL, MaxAttempts: 1},
		},
		FailoverCooldown: 50 * time.Millisecond,
		Delta:            delta,
	})
	if err != nil {
		t.Fatal(err)
	}

	gen := serial.NewGenerator(24, nil)
	revoked := func(t *testing.T, sn serial.Number, when string) {
		t.Helper()
		st, err := agent.Status("CA1", sn)
		if err != nil {
			t.Fatalf("status %s: %v", when, err)
		}
		ok, err := st.Proof.Verify(sn, st.Root.Root, st.Root.N)
		if err != nil || !ok {
			t.Fatalf("proof %s: revoked=%v err=%v", when, ok, err)
		}
	}

	// Batch 1 is acknowledged: revoked, replicated to the follower, synced
	// by the RA.
	batch1 := gen.NextN(10)
	if _, err := authority.Revoke(batch1...); err != nil {
		t.Fatal(err)
	}
	if err := authority.PublishRefresh(); err != nil {
		t.Fatal(err)
	}
	if err := follower.SyncOnce(); err != nil {
		t.Fatalf("follower replication: %v", err)
	}
	if lag := follower.Lag("CA1"); lag != 0 {
		t.Fatalf("follower lag = %d, want 0", lag)
	}
	if err := agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	revoked(t, batch1[0], "before crash")

	// Batch 2 lands on the leader and reaches the RA, but the leader dies
	// before the follower's next replication tick: mid-batch crash.
	batch2Msg, err := authority.Revoke(gen.NextN(5)...)
	if err != nil {
		t.Fatal(err)
	}
	batch2 := batch2Msg.Serials
	if err := authority.PublishRefresh(); err != nil {
		t.Fatal(err)
	}
	if err := agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if r, _ := agent.Store().Replica("CA1"); r.Count() != 15 {
		t.Fatalf("pre-crash replica count = %d, want 15", r.Count())
	}
	leaderSrv.Close()

	// The fetcher drives the whole recovery: transport error on the leader
	// → failover → follower answers ErrAhead (it never saw batch 2) →
	// Resync adopts the follower's shorter signed history.
	f := agent.StartFetcherWith(FetcherOptions{Interval: 20 * time.Millisecond})
	defer f.Shutdown()
	waitFor(t, 5*time.Second, func() bool {
		r, err := agent.Store().Replica("CA1")
		return err == nil && r.Count() == 10
	}, "resync onto the promoted follower")
	if st := f.Stats(); st.Recoveries < 1 {
		t.Errorf("recoveries = %d, want ≥1", st.Recoveries)
	}
	// Every acknowledged revocation survived the promotion.
	for _, sn := range batch1 {
		revoked(t, sn, "after failover")
	}

	// Promotion runbook: the CA re-points at the survivor and replays the
	// signed batch the dead leader never shipped. The follower verifies it
	// against the same trust anchor, so this is an ordinary publish.
	authority.SetPublisher(followerDP)
	if err := followerDP.PublishIssuance(batch2Msg); err != nil {
		t.Fatalf("replay missed batch to promoted follower: %v", err)
	}
	if err := authority.PublishRefresh(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		r, err := agent.Store().Replica("CA1")
		return err == nil && r.Count() == 15
	}, "convergence after batch replay")
	revoked(t, batch2[0], "after replay")
}
