package ra

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ritm/internal/ca"
	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/tlssim"
)

// env is a complete miniature deployment: CA → distribution point → edge →
// RA, plus a TLS-sim server behind the RA's proxy.
type env struct {
	ca    *ca.CA
	dp    *cdn.DistributionPoint
	edge  *cdn.EdgeServer
	ra    *RA
	pool  *cert.Pool
	chain cert.Chain
	key   *cryptoutil.Signer
}

func newEnv(t *testing.T, delta time.Duration) *env {
	t.Helper()
	dp := cdn.NewDistributionPoint(nil)
	authority, err := ca.New(ca.Config{ID: "CA1", Delta: delta, Publisher: dp})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.RegisterCA("CA1", authority.PublicKey()); err != nil {
		t.Fatal(err)
	}
	edge := cdn.NewEdgeServer(dp, 0, nil)
	agent, err := New(Config{
		Roots:  []*cert.Certificate{authority.RootCertificate()},
		Origin: edge,
		Delta:  delta,
	})
	if err != nil {
		t.Fatal(err)
	}

	serverKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := authority.IssueServerCertificate("example.com", serverKey.Public())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cert.NewPool(authority.RootCertificate())
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrap: publish the empty dictionary's root and freshness so the
	// RA can sync before the first revocation.
	if err := authority.PublishRoot(); err != nil {
		t.Fatal(err)
	}
	if err := authority.PublishRefresh(); err != nil {
		t.Fatal(err)
	}
	if err := agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	return &env{
		ca:    authority,
		dp:    dp,
		edge:  edge,
		ra:    agent,
		pool:  pool,
		chain: cert.Chain{leaf},
		key:   serverKey,
	}
}

// startServer runs a TLS-sim server that writes payload bursts on demand.
// Each accepted connection echoes application data.
func startServer(t *testing.T, cfg *tlssim.Config) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn := tlssim.Server(raw, cfg)
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					n, err := conn.Read(buf)
					if err != nil {
						return
					}
					if _, err := conn.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		wg.Wait()
	})
	return ln.Addr()
}

// collectStatuses returns a tlssim OnStatus handler that stores decoded
// statuses.
type statusCollector struct {
	mu       sync.Mutex
	statuses []*dictionary.Status
	states   []tlssim.ConnectionState
}

func (sc *statusCollector) handle(raw []byte, st *tlssim.ConnectionState) error {
	status, err := dictionary.DecodeStatus(raw)
	if err != nil {
		return err
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.statuses = append(sc.statuses, status)
	sc.states = append(sc.states, *st)
	return nil
}

func (sc *statusCollector) count() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.statuses)
}

func (sc *statusCollector) last() (*dictionary.Status, tlssim.ConnectionState) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if len(sc.statuses) == 0 {
		return nil, tlssim.ConnectionState{}
	}
	return sc.statuses[len(sc.statuses)-1], sc.states[len(sc.states)-1]
}

func TestDetectRecord(t *testing.T) {
	tests := []struct {
		name string
		hdr  []byte
		want bool
	}{
		{"handshake", []byte{22, 3, 3, 0, 10}, true},
		{"appdata", []byte{23, 3, 3, 1, 0}, true},
		{"ritm-status", []byte{100, 3, 3, 0, 50}, true},
		{"alert", []byte{21, 3, 3, 0, 2}, true},
		{"http", []byte("GET /"), false},
		{"bad version", []byte{22, 9, 9, 0, 10}, false},
		{"bad type", []byte{99, 3, 3, 0, 10}, false},
		{"short", []byte{22, 3}, false},
		{"oversized", []byte{22, 3, 3, 0xFF, 0xFF}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, got := DetectRecord(tt.hdr); got != tt.want {
				t.Errorf("DetectRecord(%v) = %v, want %v", tt.hdr, got, tt.want)
			}
		})
	}
}

func TestTableLifecycle(t *testing.T) {
	tbl := NewTable()
	tuple := FourTuple{SrcIP: "12.34.56.78", SrcPort: "9012", DstIP: "98.76.54.32", DstPort: "443"}
	cs := tbl.Create(tuple)

	snap := cs.Snapshot()
	if snap.Stage != StageClientHello || snap.CA != "" || snap.LastStatus != 0 {
		t.Errorf("initial state = %+v, want Eq (4) zero state", snap)
	}
	if _, ok := tbl.Lookup(tuple); !ok {
		t.Fatal("created state not found")
	}

	cs.setStage(StageEstablished)
	cs.setIdentity("CA1", serial.FromUint64(0x73E10A5))
	cs.markStatus(1000)
	if !cs.needsStatus(1011, 10) {
		t.Error("needsStatus = false after ∆ elapsed")
	}
	if cs.needsStatus(1005, 10) {
		t.Error("needsStatus = true before ∆ elapsed")
	}

	if got := len(tbl.Snapshots()); got != 1 {
		t.Errorf("Snapshots len = %d", got)
	}
	tbl.Remove(tuple)
	if tbl.Len() != 0 {
		t.Error("state not removed")
	}
}

func TestSyncAndDesyncRecovery(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	gen := serial.NewGenerator(7, nil)

	if _, err := e.ca.Revoke(gen.NextN(3)...); err != nil {
		t.Fatal(err)
	}
	if err := e.ra.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	replica, err := e.ra.Store().Replica("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if replica.Count() != 3 {
		t.Fatalf("count after sync = %d, want 3", replica.Count())
	}

	// Miss two batches (the RA was "offline"), then recover in one pull.
	if _, err := e.ca.Revoke(gen.NextN(2)...); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ca.Revoke(gen.NextN(4)...); err != nil {
		t.Fatal(err)
	}
	if err := e.ra.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if replica.Count() != 9 {
		t.Fatalf("count after recovery = %d, want 9", replica.Count())
	}
}

func TestProxyInjectsStatusOnFullHandshake(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	serverAddr := startServer(t, &tlssim.Config{Chain: e.chain, Key: e.key})
	proxy, err := e.ra.NewProxy("127.0.0.1:0", serverAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	sc := &statusCollector{}
	conn, err := tlssim.Dial("tcp", proxy.Addr().String(), &tlssim.Config{
		Pool:        e.pool,
		ServerName:  "example.com",
		RequestRITM: true,
		OnStatus:    sc.handle,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if sc.count() == 0 {
		t.Fatal("no status injected during handshake")
	}
	status, state := sc.last()
	pub, _ := e.pool.CAKey("CA1")
	res, err := status.Check(state.ServerSerial, pub, time.Now().Unix())
	if err != nil {
		t.Fatalf("injected status does not verify: %v", err)
	}
	if res != dictionary.CheckValid {
		t.Errorf("check = %v, want CheckValid", res)
	}

	// Application data still flows through the proxy.
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("echo through proxy: %q, %v", buf[:n], err)
	}

	if st := e.ra.Stats(); st.StatusesInjected == 0 || st.ConnectionsSupported == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProxyRevokedCertificateDelivered(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	// Revoke the server's certificate and let the RA learn it.
	if _, err := e.ca.Revoke(e.chain.Leaf().SerialNumber); err != nil {
		t.Fatal(err)
	}
	if err := e.ra.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	serverAddr := startServer(t, &tlssim.Config{Chain: e.chain, Key: e.key})
	proxy, err := e.ra.NewProxy("127.0.0.1:0", serverAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	sc := &statusCollector{}
	conn, err := tlssim.Dial("tcp", proxy.Addr().String(), &tlssim.Config{
		Pool:        e.pool,
		ServerName:  "example.com",
		RequestRITM: true,
		OnStatus:    sc.handle,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	status, state := sc.last()
	if status == nil {
		t.Fatal("no status delivered for revoked certificate")
	}
	pub, _ := e.pool.CAKey("CA1")
	res, err := status.Check(state.ServerSerial, pub, time.Now().Unix())
	if err != nil {
		t.Fatalf("presence status does not verify: %v", err)
	}
	if res != dictionary.CheckRevoked {
		t.Errorf("check = %v, want CheckRevoked", res)
	}
}

func TestProxyTransparentForNonRITMClients(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	serverAddr := startServer(t, &tlssim.Config{Chain: e.chain, Key: e.key})
	proxy, err := e.ra.NewProxy("127.0.0.1:0", serverAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	sc := &statusCollector{}
	conn, err := tlssim.Dial("tcp", proxy.Addr().String(), &tlssim.Config{
		Pool:       e.pool,
		ServerName: "example.com",
		OnStatus:   sc.handle, // would record any stray status
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if n, err := conn.Read(buf); err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("echo: %q, %v", buf[:n], err)
	}
	if sc.count() != 0 {
		t.Error("status injected into a non-RITM connection")
	}
	if st := e.ra.Stats(); st.ConnectionsSupported != 0 {
		t.Errorf("non-RITM connection counted as supported: %+v", st)
	}
}

func TestProxyNonTLSPassthrough(t *testing.T) {
	e := newEnv(t, 10*time.Second)

	// A raw line-echo server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				r := bufio.NewReader(c)
				line, err := r.ReadString('\n')
				if err != nil {
					return
				}
				c.Write([]byte(line)) //nolint:errcheck // test echo
			}()
		}
	}()

	proxy, err := e.ra.NewProxy("127.0.0.1:0", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	conn, err := net.Dial("tcp", proxy.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("PING\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "PING\n" {
		t.Fatalf("raw echo: %q, %v", buf[:n], err)
	}
	if st := e.ra.Stats(); st.NonTLSConnections != 1 {
		t.Errorf("NonTLSConnections = %d, want 1", st.NonTLSConnections)
	}
}

func TestProxyPeriodicStatusRefresh(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	// Shrink the RA's notion of ∆ to one second so the refresh fires fast.
	e.ra.delta = time.Second

	serverAddr := startServer(t, &tlssim.Config{Chain: e.chain, Key: e.key})
	proxy, err := e.ra.NewProxy("127.0.0.1:0", serverAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	sc := &statusCollector{}
	conn, err := tlssim.Dial("tcp", proxy.Addr().String(), &tlssim.Config{
		Pool:        e.pool,
		ServerName:  "example.com",
		RequestRITM: true,
		OnStatus:    sc.handle,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	first := sc.count()
	if first == 0 {
		t.Fatal("no handshake status")
	}

	// After ∆ passes, the next server→client record carries a fresh status.
	time.Sleep(1100 * time.Millisecond)
	if _, err := conn.Write([]byte("tick")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if sc.count() <= first {
		t.Errorf("no refreshed status after ∆: %d then %d", first, sc.count())
	}
}

func TestProxySessionResumptionStatus(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	serverCfg := &tlssim.Config{Chain: e.chain, Key: e.key}
	serverAddr := startServer(t, serverCfg)
	proxy, err := e.ra.NewProxy("127.0.0.1:0", serverAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	cache := tlssim.NewClientSessionCache()
	dial := func(sc *statusCollector) *tlssim.Conn {
		t.Helper()
		conn, err := tlssim.Dial("tcp", proxy.Addr().String(), &tlssim.Config{
			Pool:         e.pool,
			ServerName:   "example.com",
			RequestRITM:  true,
			OnStatus:     sc.handle,
			SessionCache: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}

	sc1 := &statusCollector{}
	c1 := dial(sc1)
	c1.Close()
	if sc1.count() == 0 {
		t.Fatal("no status on full handshake")
	}

	sc2 := &statusCollector{}
	c2 := dial(sc2)
	defer c2.Close()
	if !c2.ConnectionState().Resumed {
		t.Fatal("second connection did not resume")
	}
	if sc2.count() == 0 {
		t.Fatal("no status on resumed handshake (session cache miss at RA)")
	}
	status, _ := sc2.last()
	pub, _ := e.pool.CAKey("CA1")
	res, err := status.Check(e.chain.Leaf().SerialNumber, pub, time.Now().Unix())
	if err != nil || res != dictionary.CheckValid {
		t.Errorf("resumed status check = %v, %v", res, err)
	}
}

func TestMultipleRAsReplaceOrForward(t *testing.T) {
	e := newEnv(t, 10*time.Second)

	// A second, independent RA (closer to the client) whose replica is more
	// recent than the first RA's.
	outer, err := New(Config{
		Roots:  []*cert.Certificate{e.ca.RootCertificate()},
		Origin: e.edge,
		Delta:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := outer.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	// Advance the dictionary; only the outer RA learns about it.
	if _, err := e.ca.Revoke(serial.NewGenerator(50, nil).NextN(2)...); err != nil {
		t.Fatal(err)
	}
	if err := outer.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	serverAddr := startServer(t, &tlssim.Config{Chain: e.chain, Key: e.key})
	inner, err := e.ra.NewProxy("127.0.0.1:0", serverAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	outerProxy, err := outer.NewProxy("127.0.0.1:0", inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer outerProxy.Close()

	sc := &statusCollector{}
	conn, err := tlssim.Dial("tcp", outerProxy.Addr().String(), &tlssim.Config{
		Pool:        e.pool,
		ServerName:  "example.com",
		RequestRITM: true,
		OnStatus:    sc.handle,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if sc.count() == 0 {
		t.Fatal("no status through chained RAs")
	}
	status, _ := sc.last()
	if status.Root.N != 2 {
		t.Errorf("client saw root with N=%d, want the outer RA's N=2", status.Root.N)
	}
	if st := outer.Stats(); st.StatusesReplaced == 0 {
		t.Errorf("outer RA stats = %+v, expected a replacement", st)
	}
}

func TestStatusForCAWithoutDictionary(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	if _, err := e.ra.Status("CA9", serial.FromUint64(1)); !errors.Is(err, ErrNoDictionary) {
		t.Errorf("err = %v, want ErrNoDictionary", err)
	}
}

func TestStoreRemoveFreesReplica(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	if _, err := e.ra.Store().Replica("CA1"); err != nil {
		t.Fatal(err)
	}
	e.ra.Store().Remove("CA1")
	if _, err := e.ra.Store().Replica("CA1"); !errors.Is(err, ErrNoDictionary) {
		t.Errorf("removed dictionary still served: %v", err)
	}
	// The trust anchor survives removal: the CA can be re-added.
	if _, ok := e.ra.Store().CAKey("CA1"); !ok {
		t.Error("trust anchor dropped with the replica")
	}
}

func TestFetcherLifecycle(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	e.ra.delta = time.Second
	var mu sync.Mutex
	var errs []error
	f := e.ra.StartFetcher(func(err error) {
		mu.Lock()
		defer mu.Unlock()
		errs = append(errs, err)
	})

	if _, err := e.ca.Revoke(serial.NewGenerator(3, nil).NextN(1)...); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1500 * time.Millisecond)
	f.Shutdown()

	replica, err := e.ra.Store().Replica("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if replica.Count() != 1 {
		t.Errorf("fetcher did not sync: count = %d", replica.Count())
	}
	mu.Lock()
	defer mu.Unlock()
	for _, err := range errs {
		t.Errorf("fetcher error: %v", err)
	}
}
