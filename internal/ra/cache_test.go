package ra

import (
	"fmt"
	"testing"

	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
)

// smallStatusCache returns a cache with a tiny per-shard capacity so
// overflow is reachable without 256k inserts; the knob is per instance,
// never shared state.
func smallStatusCache(shardCap int) *statusCache {
	c := newStatusCache()
	c.shardCap = shardCap
	return c
}

func testReplica(t *testing.T) *dictionary.Replica {
	t.Helper()
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	return dictionary.NewReplica("CacheCA", signer.Public())
}

func entryFor(r *dictionary.Replica, gen uint64) *cacheEntry {
	return &cacheEntry{source: r, gen: gen, encoded: []byte{1}}
}

func keyOf(i int) cacheKey {
	return cacheKey{ca: "CacheCA", sn: fmt.Sprintf("sn-%d", i)}
}

// TestStatusCacheEvictionBounded floods the cache far past its capacity:
// the entry count must stay bounded per shard and every admission beyond
// capacity must be a single-entry eviction, not a shard reset.
func TestStatusCacheEvictionBounded(t *testing.T) {
	const shardCap = 4
	c := smallStatusCache(shardCap)
	r := testReplica(t)
	const inserts = 64 * shardCap * 4
	for i := 0; i < inserts; i++ {
		c.put(keyOf(i), entryFor(r, 0))
	}
	st := c.stats()
	if max := cacheShardCount * shardCap; st.Entries > max {
		t.Errorf("entries = %d, want ≤ %d", st.Entries, max)
	}
	if st.Entries < shardCap { // the load spreads over 64 shards
		t.Errorf("entries = %d, implausibly low", st.Entries)
	}
	if want := int64(inserts - cacheShardCount*shardCap); st.Evictions < want {
		t.Errorf("evictions = %d, want ≥ %d", st.Evictions, want)
	}
}

// TestStatusCacheHotEntrySurvivesEviction is the thrashing regression the
// whole-shard reset had: a continuously hit entry must survive arbitrarily
// many cold insertions, because every hit re-arms its second-chance bit.
func TestStatusCacheHotEntrySurvivesEviction(t *testing.T) {
	c := smallStatusCache(4)
	r := testReplica(t)
	gen := r.Snapshot().Generation()
	hot := keyOf(1_000_000)
	c.put(hot, entryFor(r, gen))
	for i := 0; i < 2000; i++ {
		c.put(keyOf(i), entryFor(r, gen))
		if _, ok := c.get(hot, r, gen); !ok {
			t.Fatalf("hot entry evicted after %d cold inserts", i+1)
		}
	}
	if c.stats().Evictions == 0 {
		t.Fatal("no evictions happened; the test exercised nothing")
	}
}

// TestStatusCacheEvictsStaleFirst: an entry whose generation the replica
// has already superseded is unservable dead weight, so the eviction scan
// removes it before touching any live entry.
func TestStatusCacheEvictsStaleFirst(t *testing.T) {
	const shardCap = 4
	c := smallStatusCache(shardCap)
	r := testReplica(t)
	gen := r.Snapshot().Generation()

	// Collect cap+2 keys that hash to one shard so the overflow is local.
	shard := c.shardFor(keyOf(0))
	keys := []cacheKey{keyOf(0)}
	for i := 1; len(keys) < shardCap+2; i++ {
		if c.shardFor(keyOf(i)) == shard {
			keys = append(keys, keyOf(i))
		}
	}

	stale := keys[0]
	c.put(stale, entryFor(r, gen+99)) // generation the replica never published
	live := keys[1 : shardCap+1]
	for _, k := range live[:len(live)-1] {
		c.put(k, entryFor(r, gen))
		c.get(k, r, gen) // arm the access bit
	}
	// The shard is now full; this admission must evict, and must pick the
	// stale entry regardless of scan order.
	c.put(live[len(live)-1], entryFor(r, gen))
	shard.mu.RLock()
	_, staleAlive := shard.m[stale]
	liveCount := 0
	for _, k := range live {
		if _, ok := shard.m[k]; ok {
			liveCount++
		}
	}
	shard.mu.RUnlock()
	if staleAlive {
		t.Error("stale entry survived an eviction")
	}
	if liveCount != len(live) {
		t.Errorf("live entries = %d, want %d", liveCount, len(live))
	}
	if got := c.stats().Evictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}
