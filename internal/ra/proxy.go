package ra

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"ritm/internal/cert"
	"ritm/internal/dictionary"
	"ritm/internal/tlssim"
)

// Proxy is the RA's data path: a TCP middlebox between clients and one
// upstream (a server, a load balancer, or the next RA). It realizes both
// deployment models of §IV — run it at a data-center ingress point (close
// to the servers) or on a client network's gateway (close to the clients).
//
// The proxy re-frames the TLS-sim record stream: every record is read,
// classified (DPI), and re-emitted, which lets the RA splice
// ContentRITMStatus records into the server→client direction without the
// TCP sequence-number surgery a packet-level middlebox would need. This is
// the in-stream delivery of §VIII (methods 1/3): the status travels on the
// client's existing connection and port, so NATs are no obstacle.
//
// Traffic that does not look like TLS is forwarded verbatim in both
// directions ("RAs are completely non-invasive for non-supported clients
// and protocols other than TLS", §VII-F).
type Proxy struct {
	ra   *RA
	ln   net.Listener
	dial func() (net.Conn, error)

	// onErr holds the callback installed by SetOnError; read by handler
	// goroutines, so it is atomic rather than a bare field (the seed's
	// exported field was a data race waiting for its first -race run).
	onErr atomic.Pointer[func(error)]

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewProxy starts an RA proxy listening on listenAddr and forwarding every
// connection to target. The returned proxy is already accepting.
func (ra *RA) NewProxy(listenAddr, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("ra: listen %s: %w", listenAddr, err)
	}
	p := &Proxy{
		ra:    ra,
		ln:    ln,
		dial:  func() (net.Conn, error) { return net.Dial("tcp", target) },
		conns: make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening address (clients connect here).
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

// SetOnError installs a callback receiving per-connection data-path errors
// that the proxy absorbs (it never stops serving because one connection
// misbehaved). Safe to call at any time, including while serving; nil
// uninstalls.
func (p *Proxy) SetOnError(fn func(error)) {
	if fn == nil {
		p.onErr.Store(nil)
		return
	}
	p.onErr.Store(&fn)
}

// reportError delivers err to the installed callback, if any.
func (p *Proxy) reportError(err error) {
	if fn := p.onErr.Load(); fn != nil {
		(*fn)(err)
	}
}

// Close stops accepting, closes every active connection, and waits for all
// handlers to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !p.track(conn) {
			conn.Close()
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer p.untrack(conn)
			if err := p.handle(conn); err != nil {
				p.reportError(err)
			}
		}()
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	c.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.conns, c)
}

// handle runs one proxied connection to completion.
func (p *Proxy) handle(client net.Conn) error {
	p.ra.stats.connectionsTotal.Add(1)

	server, err := p.dial()
	if err != nil {
		return fmt.Errorf("ra proxy: dial upstream: %w", err)
	}
	if !p.track(server) {
		server.Close()
		return nil
	}
	defer p.untrack(server)

	clientBuf := bufio.NewReader(client)

	// DPI first pass: does this even look like TLS? Non-TLS connections are
	// forwarded as opaque byte pipes.
	hdr, err := clientBuf.Peek(RecordHeaderLen)
	if err != nil || !isRecord(hdr) {
		p.ra.stats.nonTLSConnections.Add(1)
		return p.pipeRaw(client, clientBuf, server)
	}

	sess := &proxySession{
		ra:     p.ra,
		tuple:  tupleOf(client),
		client: client,
		server: server,
	}
	defer sess.teardown()

	errCh := make(chan error, 1)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		errCh <- sess.clientToServer(clientBuf)
	}()
	s2cErr := sess.serverToClient(bufio.NewReader(server))
	// Unblock the other pump: its source or sink is about to go away.
	client.Close()
	server.Close()
	c2sErr := <-errCh
	if s2cErr != nil && !isClosedConn(s2cErr) {
		p.ra.stats.spliceErrors.Add(1)
		return s2cErr
	}
	if c2sErr != nil && !isClosedConn(c2sErr) {
		p.ra.stats.spliceErrors.Add(1)
		return c2sErr
	}
	return nil
}

func isRecord(hdr []byte) bool {
	_, _, ok := DetectRecord(hdr)
	return ok
}

func isClosedConn(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, io.ErrClosedPipe)
}

// pipeRaw forwards bytes in both directions without interpretation. Splice
// errors are not swallowed: a peer resetting mid-stream (or writing into a
// half-closed socket) surfaces through SetOnError and the SpliceErrors
// counter — the seed dropped both copy errors on the floor, so a flaky
// upstream was indistinguishable from a quiet one.
func (p *Proxy) pipeRaw(client net.Conn, clientBuf *bufio.Reader, server net.Conn) error {
	done := make(chan struct{})
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(done)
		if _, err := io.Copy(server, clientBuf); err != nil && !isClosedConn(err) {
			p.spliceError(fmt.Errorf("ra proxy: client→server splice: %w", err))
		}
		closeWrite(server)
	}()
	if _, err := io.Copy(client, server); err != nil && !isClosedConn(err) {
		p.spliceError(fmt.Errorf("ra proxy: server→client splice: %w", err))
	}
	closeWrite(client)
	<-done
	return nil
}

// spliceError counts and reports one non-benign splice error.
func (p *Proxy) spliceError(err error) {
	p.ra.stats.spliceErrors.Add(1)
	p.reportError(err)
}

type closeWriter interface{ CloseWrite() error }

func closeWrite(c net.Conn) {
	if cw, ok := c.(closeWriter); ok {
		cw.CloseWrite() //nolint:errcheck // half-close is advisory
	}
}

func tupleOf(client net.Conn) FourTuple {
	srcIP, srcPort := splitAddr(client.RemoteAddr())
	dstIP, dstPort := splitAddr(client.LocalAddr())
	return FourTuple{SrcIP: srcIP, SrcPort: srcPort, DstIP: dstIP, DstPort: dstPort}
}

func splitAddr(a net.Addr) (ip, port string) {
	if a == nil {
		return "", ""
	}
	host, p, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String(), ""
	}
	return host, p
}

// proxySession is the per-connection DPI state machine (Fig 3).
type proxySession struct {
	ra     *RA
	tuple  FourTuple
	client net.Conn
	server net.Conn

	mu    sync.Mutex
	state *ConnState // nil until a RITM ClientHello is seen
	// idents are the chain identities statuses are injected for: the leaf
	// first, then (with the §VIII chain-proof extension) every CA
	// certificate of the chain.
	idents []connIdentity
	// clientTicket is the resumption ticket offered in the ClientHello,
	// used to recover the certificate identity on abbreviated handshakes.
	clientTicket []byte
	// pendingSessionID is the session ID the server offered in a full
	// handshake; once the certificate identity is known it is remembered
	// for future resumptions.
	pendingSessionID []byte
}

// setIdents records the identities to serve statuses for; the first one is
// the connection's Eq (4) identity.
func (s *proxySession) setIdents(st *ConnState, ids []connIdentity) {
	if len(ids) == 0 {
		return
	}
	s.mu.Lock()
	s.idents = ids
	s.mu.Unlock()
	st.setIdentity(ids[0].ca, ids[0].sn)
}

// statusIdents returns the identities to inject statuses for, falling back
// to the Eq (4) leaf identity.
func (s *proxySession) statusIdents(st *ConnState) []connIdentity {
	s.mu.Lock()
	ids := s.idents
	s.mu.Unlock()
	if len(ids) > 0 {
		return ids
	}
	if ca, sn := st.identity(); ca != "" {
		return []connIdentity{{ca: ca, sn: sn}}
	}
	return nil
}

func (s *proxySession) teardown() {
	s.mu.Lock()
	st := s.state
	s.mu.Unlock()
	if st != nil {
		s.ra.table.Remove(s.tuple)
	}
}

// clientToServer inspects the upstream direction: it watches for the RITM
// ClientHello extension (Fig 3 step 2) and forwards everything.
func (s *proxySession) clientToServer(src *bufio.Reader) error {
	for {
		rec, err := tlssim.ReadRecord(src)
		if err != nil {
			closeWrite(s.server)
			return err
		}
		s.ra.stats.recordsInspected.Add(1)
		if rec.Type == tlssim.ContentHandshake {
			if msg, err := ParseHandshakeRecord(rec.Payload); err == nil && msg.Type == tlssim.TypeClientHello {
				s.onClientHello(msg.Body)
			}
		}
		if err := tlssim.WriteRecord(s.server, rec); err != nil {
			return err
		}
	}
}

func (s *proxySession) onClientHello(body []byte) {
	ch, err := tlssim.ParseClientHello(body)
	if err != nil {
		return
	}
	if !ch.SupportsRITM() {
		return // not a supported connection; stay transparent
	}
	st := s.ra.table.Create(s.tuple)
	s.mu.Lock()
	s.state = st
	if ticket, ok := ch.SessionTicket(); ok {
		s.clientTicket = append([]byte(nil), ticket...)
	} else if len(ch.SessionID) > 0 {
		// Session-ID resumption: the offered ID doubles as the handle.
		s.clientTicket = append([]byte(nil), ch.SessionID...)
	}
	s.mu.Unlock()
	s.ra.stats.connectionsSupported.Add(1)
}

// serverToClient is the injection path: it tracks the handshake stage,
// resolves the certificate identity, and splices revocation-status records
// into the stream (Fig 3 steps 4 and 6).
func (s *proxySession) serverToClient(src *bufio.Reader) error {
	for {
		rec, err := tlssim.ReadRecord(src)
		if err != nil {
			closeWrite(s.client)
			return err
		}
		s.ra.stats.recordsInspected.Add(1)

		st := s.currentState()
		if st == nil {
			// Unsupported connection: forward untouched.
			if err := tlssim.WriteRecord(s.client, rec); err != nil {
				return err
			}
			continue
		}

		switch rec.Type {
		case tlssim.ContentHandshake:
			if err := s.forwardHandshake(st, rec); err != nil {
				return err
			}
		case tlssim.ContentRITMStatus:
			if err := s.forwardUpstreamStatus(st, rec); err != nil {
				return err
			}
		case tlssim.ContentApplicationData:
			// §III step 6: piggyback a fresh status on the first
			// server→client record after ∆ elapsed.
			now := s.ra.now().Unix()
			if st.needsStatus(now, int64(s.ra.delta.Seconds())) {
				if s.injectStatuses(st) {
					st.markStatus(now)
				}
			}
			if err := tlssim.WriteRecord(s.client, rec); err != nil {
				return err
			}
		default:
			if err := tlssim.WriteRecord(s.client, rec); err != nil {
				return err
			}
		}
	}
}

func (s *proxySession) currentState() *ConnState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// forwardHandshake advances the Fig 3 state machine for one server→client
// handshake message and injects the first revocation status as soon as the
// certificate identity is known (step 4).
func (s *proxySession) forwardHandshake(st *ConnState, rec tlssim.Record) error {
	msg, err := ParseHandshakeRecord(rec.Payload)
	if err != nil {
		// Unparsable handshake data: forward and stop interpreting.
		return tlssim.WriteRecord(s.client, rec)
	}
	switch msg.Type {
	case tlssim.TypeServerHello:
		return s.onServerHello(st, rec, msg.Body)

	case tlssim.TypeCertificate:
		chain, err := ParseCertificates(msg.Body)
		if err != nil || chain.Leaf() == nil {
			return tlssim.WriteRecord(s.client, rec)
		}
		ids := s.identsForChain(chain)
		s.setIdents(st, ids)
		s.mu.Lock()
		if len(s.pendingSessionID) > 0 {
			s.ra.rememberSession(s.pendingSessionID, ids)
		}
		s.mu.Unlock()
		if err := tlssim.WriteRecord(s.client, rec); err != nil {
			return err
		}
		// Step 4: append the revocation status(es) to the certificate
		// flight — one per chain element with the §VIII extension.
		if s.injectStatuses(st) {
			st.markStatus(s.ra.now().Unix())
		}
		return nil

	case tlssim.TypeNewSessionTicket:
		if nst, err := tlssim.ParseNewSessionTicket(msg.Body); err == nil {
			s.ra.rememberSession(nst.Ticket, s.statusIdents(st))
		}
		return tlssim.WriteRecord(s.client, rec)

	case tlssim.TypeFinished:
		// Step 6: the server accepted the connection.
		st.setStage(StageEstablished)
		return tlssim.WriteRecord(s.client, rec)

	default:
		return tlssim.WriteRecord(s.client, rec)
	}
}

func (s *proxySession) onServerHello(st *ConnState, rec tlssim.Record, body []byte) error {
	st.setStage(StageServerHello)
	sh, err := tlssim.ParseServerHello(body)
	if err != nil {
		return tlssim.WriteRecord(s.client, rec)
	}
	if !sh.Resumed {
		// Full handshake: remember the offered session ID so that a later
		// resumption can be supported without a certificate on the wire.
		s.mu.Lock()
		s.pendingSessionID = append([]byte(nil), sh.SessionID...)
		s.mu.Unlock()
		return tlssim.WriteRecord(s.client, rec)
	}
	// Abbreviated handshake: recover the identities from the resumption
	// handle the client offered (§III, TLS resumption support).
	s.mu.Lock()
	handle := s.clientTicket
	s.mu.Unlock()
	if ids, ok := s.ra.lookupSession(handle); ok {
		s.setIdents(st, ids)
	}
	if err := tlssim.WriteRecord(s.client, rec); err != nil {
		return err
	}
	if ca, _ := st.identity(); ca != "" {
		if s.injectStatuses(st) {
			st.markStatus(s.ra.now().Unix())
		}
	}
	return nil
}

// identsForChain selects the identities to serve statuses for: the leaf
// always; with chain proofs, additionally every CA certificate except
// self-signed roots (a root cannot meaningfully prove its own absence from
// its own dictionary — revoking it requires the PKISN-style mechanism the
// paper cites).
func (s *proxySession) identsForChain(chain cert.Chain) []connIdentity {
	leaf := chain.Leaf()
	ids := []connIdentity{{ca: leaf.Issuer, sn: leaf.SerialNumber}}
	if !s.ra.chainProofs {
		return ids
	}
	for _, c := range chain[1:] {
		if c.Subject == string(c.Issuer) {
			continue // self-signed root
		}
		ids = append(ids, connIdentity{ca: c.Issuer, sn: c.SerialNumber})
	}
	return ids
}

// injectStatuses obtains the revocation status for every identity of the
// connection (the leaf, plus the chain's CA certificates when the §VIII
// extension is on) — from the per-∆ status cache on the overwhelmingly
// common repeated-certificate path — and splices the memoized encodings
// into the client-bound stream. It reports whether at least one status was
// written; failures (unknown CA, replica not yet synchronized) leave the
// stream untouched for that identity and the client's policy in charge.
func (s *proxySession) injectStatuses(st *ConnState) bool {
	wrote := false
	for _, id := range s.statusIdents(st) {
		_, encoded, err := s.ra.StatusEncoded(id.ca, id.sn)
		if err != nil {
			continue
		}
		rec := tlssim.Record{Type: tlssim.ContentRITMStatus, Payload: encoded}
		if err := tlssim.WriteRecord(s.client, rec); err != nil {
			return wrote
		}
		s.ra.stats.statusesInjected.Add(1)
		wrote = true
	}
	return wrote
}

// forwardUpstreamStatus applies the multiple-RA rule of §VIII: an RA adds a
// status only when missing and replaces one only if its own dictionary view
// is more recent; otherwise the upstream status passes through unchanged.
// The comparison is per identity: with chain proofs, an upstream status
// about the intermediate is only ever compared with (and replaced by) this
// RA's view of the same certificate — never the leaf's.
func (s *proxySession) forwardUpstreamStatus(st *ConnState, rec tlssim.Record) error {
	theirs, err := dictionary.DecodeStatus(rec.Payload)
	if err != nil {
		return tlssim.WriteRecord(s.client, rec)
	}
	id, ok := s.matchIdentity(st, theirs)
	if !ok {
		return tlssim.WriteRecord(s.client, rec)
	}
	ours, oursEncoded, ourErr := s.ra.StatusEncoded(id.ca, id.sn)
	if ourErr == nil && newerRoot(ours.Root, theirs.Root) {
		out := tlssim.Record{Type: tlssim.ContentRITMStatus, Payload: oursEncoded}
		if err := tlssim.WriteRecord(s.client, out); err != nil {
			return err
		}
		s.ra.stats.statusesReplaced.Add(1)
	} else {
		if err := tlssim.WriteRecord(s.client, rec); err != nil {
			return err
		}
		s.ra.stats.statusesForwarded.Add(1)
	}
	st.markStatus(s.ra.now().Unix())
	return nil
}

// matchIdentity resolves which of the connection's identities an upstream
// status concerns: the subject-and-CA match among the chain identities, or
// the leaf for subject-less statuses from the leaf's issuer.
func (s *proxySession) matchIdentity(st *ConnState, theirs *dictionary.Status) (connIdentity, bool) {
	ids := s.statusIdents(st)
	if len(ids) == 0 || theirs.Root == nil {
		return connIdentity{}, false
	}
	if theirs.Subject.IsZero() {
		if ids[0].ca == theirs.Root.CA {
			return ids[0], true
		}
		return connIdentity{}, false
	}
	for _, id := range ids {
		if id.ca == theirs.Root.CA && id.sn.Equal(theirs.Subject) {
			return id, true
		}
	}
	return connIdentity{}, false
}

// newerRoot reports whether a commits to a strictly more recent dictionary
// version than b.
func newerRoot(a, b *dictionary.SignedRoot) bool {
	if a == nil || b == nil {
		return a != nil && b == nil
	}
	if a.N != b.N {
		return a.N > b.N
	}
	return a.Time > b.Time
}
