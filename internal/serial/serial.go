// Package serial implements certificate serial numbers as used by RITM's
// authenticated dictionaries.
//
// Per RFC 5280 (and footnote 1 of the paper), a serial number is a positive
// integer assigned uniquely per CA and represented by at most 20 bytes. The
// dictionary sorts its leaves by serial number, so this package defines the
// canonical byte representation (minimal big-endian) and the total order
// used for sorting and for absence proofs.
package serial

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand/v2"
	"slices"
)

// MaxLen is the maximum serial length in bytes (RFC 5280 §4.1.2.2).
const MaxLen = 20

// Errors returned by this package.
var (
	// ErrEmpty reports a zero-length serial.
	ErrEmpty = errors.New("serial: empty serial number")
	// ErrTooLong reports a serial longer than MaxLen bytes.
	ErrTooLong = errors.New("serial: longer than 20 bytes")
	// ErrNotMinimal reports a serial with a redundant leading zero byte.
	ErrNotMinimal = errors.New("serial: non-minimal encoding (leading zero)")
)

// Number is a certificate serial number in canonical form: a non-empty
// minimal big-endian byte string of at most MaxLen bytes. The zero value is
// not a valid Number; construct values with New, FromUint64, or Parse.
type Number struct {
	b []byte
}

// New validates b and returns it as a Number. The bytes are copied.
func New(b []byte) (Number, error) {
	if err := validate(b); err != nil {
		return Number{}, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return Number{b: out}, nil
}

// View validates b and returns it as a Number ALIASING b — no copy. The
// caller guarantees b is never modified for the Number's lifetime; it is
// the zero-copy decode path, where serials alias a pull body that outlives
// the apply.
func View(b []byte) (Number, error) {
	if err := validate(b); err != nil {
		return Number{}, err
	}
	return Number{b: b}, nil
}

func validate(b []byte) error {
	switch {
	case len(b) == 0:
		return ErrEmpty
	case len(b) > MaxLen:
		return fmt.Errorf("%w: %d bytes", ErrTooLong, len(b))
	case len(b) > 1 && b[0] == 0:
		return ErrNotMinimal
	}
	return nil
}

// FromUint64 returns the Number for a small integer. FromUint64(0) yields
// the one-byte serial 0x00, the smallest valid serial.
func FromUint64(v uint64) Number {
	if v == 0 {
		return Number{b: []byte{0}}
	}
	var buf [8]byte
	n := 0
	for shift := 56; shift >= 0; shift -= 8 {
		byteVal := byte(v >> shift)
		if n == 0 && byteVal == 0 {
			continue
		}
		buf[n] = byteVal
		n++
	}
	out := make([]byte, n)
	copy(out, buf[:n])
	return Number{b: out}
}

// Parse decodes a hex string (as printed by String) into a Number.
func Parse(s string) (Number, error) {
	b, err := hex.DecodeString(s)
	if err != nil {
		return Number{}, fmt.Errorf("serial: parse %q: %w", s, err)
	}
	return New(b)
}

// IsZero reports whether n is the invalid zero value (no bytes).
func (n Number) IsZero() bool { return len(n.b) == 0 }

// Len returns the length of the canonical encoding in bytes.
func (n Number) Len() int { return len(n.b) }

// Bytes returns a copy of the canonical big-endian encoding.
func (n Number) Bytes() []byte {
	out := make([]byte, len(n.b))
	copy(out, n.b)
	return out
}

// Raw returns the canonical encoding without copying. Callers must not
// modify the result; it is used on hot paths (leaf hashing).
func (n Number) Raw() []byte { return n.b }

// String returns the lowercase hex encoding.
func (n Number) String() string { return hex.EncodeToString(n.b) }

// Compare returns -1, 0, or +1 as n is numerically less than, equal to, or
// greater than other. Because encodings are minimal big-endian, numeric
// order equals (length, bytes) lexicographic order; this is the order the
// dictionary sorts leaves by.
func (n Number) Compare(other Number) int {
	if d := len(n.b) - len(other.b); d != 0 {
		if d < 0 {
			return -1
		}
		return 1
	}
	return bytes.Compare(n.b, other.b)
}

// Equal reports whether two serials are identical.
func (n Number) Equal(other Number) bool { return n.Compare(other) == 0 }

// SizeDistribution describes how serial lengths are drawn by Generator.
// Weights need not sum to one; they are normalized. The paper's dataset has
// a 3-byte mode covering 32 % of all revocations (§VII-A).
type SizeDistribution []SizeWeight

// SizeWeight pairs a serial length in bytes with its relative weight.
type SizeWeight struct {
	Bytes  int
	Weight float64
}

// PaperSizeDistribution returns the serial-size distribution reported in
// §VII-A: mode at 3 bytes (32 %), with the remaining mass spread over the
// other common lengths observed in CRLs (small integers and 16–20-byte
// randomized serials).
func PaperSizeDistribution() SizeDistribution {
	return SizeDistribution{
		{Bytes: 1, Weight: 0.04},
		{Bytes: 2, Weight: 0.10},
		{Bytes: 3, Weight: 0.32},
		{Bytes: 4, Weight: 0.16},
		{Bytes: 8, Weight: 0.10},
		{Bytes: 16, Weight: 0.15},
		{Bytes: 19, Weight: 0.05},
		{Bytes: 20, Weight: 0.08},
	}
}

// MeanBytes returns the expected serial length under the distribution.
func (d SizeDistribution) MeanBytes() float64 {
	var total, acc float64
	for _, sw := range d {
		total += sw.Weight
		acc += sw.Weight * float64(sw.Bytes)
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

// Generator produces unique serial numbers with a configurable size
// distribution, deterministically from a seed. Each generator models one
// CA's serial space: serials are unique per generator.
type Generator struct {
	rng    *rand.Rand
	dist   SizeDistribution
	cum    []float64
	total  float64
	issued map[string]struct{}
}

// NewGenerator returns a deterministic generator. If dist is nil the
// paper's distribution is used.
func NewGenerator(seed uint64, dist SizeDistribution) *Generator {
	if dist == nil {
		dist = PaperSizeDistribution()
	}
	g := &Generator{
		rng:    rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		dist:   dist,
		cum:    make([]float64, len(dist)),
		issued: make(map[string]struct{}),
	}
	var acc float64
	for i, sw := range dist {
		acc += sw.Weight
		g.cum[i] = acc
	}
	g.total = acc
	return g
}

// Next returns a fresh serial number not returned before by this generator.
func (g *Generator) Next() Number {
	for {
		n := g.candidate()
		key := string(n.b)
		if _, dup := g.issued[key]; dup {
			continue
		}
		g.issued[key] = struct{}{}
		return n
	}
}

// NextN returns count fresh serial numbers.
func (g *Generator) NextN(count int) []Number {
	out := make([]Number, count)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func (g *Generator) candidate() Number {
	x := g.rng.Float64() * g.total
	size := g.dist[len(g.dist)-1].Bytes
	for i, c := range g.cum {
		if x < c {
			size = g.dist[i].Bytes
			break
		}
	}
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(g.rng.UintN(256))
	}
	// Enforce the minimal encoding: no leading zero unless single byte.
	if size > 1 && b[0] == 0 {
		b[0] = byte(1 + g.rng.UintN(255))
	}
	return Number{b: b}
}

// Sort sorts serials in place in the dictionary's canonical order.
func Sort(serials []Number) {
	slices.SortFunc(serials, Number.Compare)
}
