package serial

import (
	"bytes"
	"errors"
	"math"
	"slices"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		in      []byte
		wantErr error
	}{
		{name: "single zero byte ok", in: []byte{0}},
		{name: "one byte", in: []byte{0x7f}},
		{name: "twenty bytes", in: bytes.Repeat([]byte{1}, 20)},
		{name: "empty", in: nil, wantErr: ErrEmpty},
		{name: "too long", in: bytes.Repeat([]byte{1}, 21), wantErr: ErrTooLong},
		{name: "leading zero", in: []byte{0, 1}, wantErr: ErrNotMinimal},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n, err := New(tt.in)
			if tt.wantErr != nil {
				if !errors.Is(err, tt.wantErr) {
					t.Fatalf("New() err = %v, want %v", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("New() err = %v", err)
			}
			if !bytes.Equal(n.Bytes(), tt.in) {
				t.Errorf("Bytes() = %v, want %v", n.Bytes(), tt.in)
			}
		})
	}
}

func TestNewCopiesInput(t *testing.T) {
	in := []byte{1, 2, 3}
	n, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = 99
	if !bytes.Equal(n.Bytes(), []byte{1, 2, 3}) {
		t.Error("New did not copy its input")
	}
}

func TestFromUint64(t *testing.T) {
	tests := []struct {
		in   uint64
		want []byte
	}{
		{0, []byte{0}},
		{1, []byte{1}},
		{255, []byte{255}},
		{256, []byte{1, 0}},
		{0x73E10A5, []byte{0x07, 0x3E, 0x10, 0xA5}},
		{math.MaxUint64, bytes.Repeat([]byte{0xff}, 8)},
	}
	for _, tt := range tests {
		if got := FromUint64(tt.in).Bytes(); !bytes.Equal(got, tt.want) {
			t.Errorf("FromUint64(%d) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	n := FromUint64(0x73E10A5)
	got, err := Parse(n.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(n) {
		t.Errorf("Parse(String()) = %v, want %v", got, n)
	}
	if _, err := Parse("zz"); err == nil {
		t.Error("Parse of non-hex succeeded")
	}
}

func TestCompareMatchesNumericOrder(t *testing.T) {
	values := []uint64{0, 1, 2, 255, 256, 257, 65535, 65536, 1 << 40, math.MaxUint64}
	for i, a := range values {
		for j, b := range values {
			want := 0
			switch {
			case a < b:
				want = -1
			case a > b:
				want = 1
			}
			if got := FromUint64(a).Compare(FromUint64(b)); got != want {
				t.Errorf("Compare(%d, %d) = %d, want %d (idx %d,%d)", a, b, got, want, i, j)
			}
		}
	}
}

func TestSort(t *testing.T) {
	got := []Number{FromUint64(300), FromUint64(2), FromUint64(70000), FromUint64(1)}
	Sort(got)
	want := []uint64{1, 2, 300, 70000}
	for i, w := range want {
		if !got[i].Equal(FromUint64(w)) {
			t.Errorf("Sort[%d] = %v, want %d", i, got[i], w)
		}
	}
}

func TestGeneratorUniqueness(t *testing.T) {
	g := NewGenerator(1, nil)
	const n = 5000
	seen := make(map[string]struct{}, n)
	for i := 0; i < n; i++ {
		s := g.Next()
		key := string(s.Raw())
		if _, dup := seen[key]; dup {
			t.Fatalf("duplicate serial %v at draw %d", s, i)
		}
		seen[key] = struct{}{}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(42, nil).NextN(100)
	b := NewGenerator(42, nil).NextN(100)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := NewGenerator(43, nil).NextN(100)
	same := 0
	for i := range a {
		if a[i].Equal(c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical sequences")
	}
}

func TestGeneratorSizeDistribution(t *testing.T) {
	g := NewGenerator(7, nil)
	const n = 20000
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		counts[g.Next().Len()]++
	}
	// The paper reports a 3-byte mode covering 32 % of revocations. Allow a
	// generous tolerance; this checks the distribution, not the RNG.
	frac3 := float64(counts[3]) / n
	if frac3 < 0.28 || frac3 > 0.36 {
		t.Errorf("3-byte fraction = %.3f, want ≈0.32", frac3)
	}
	for size := range counts {
		if size < 1 || size > MaxLen {
			t.Errorf("generated serial of invalid size %d", size)
		}
	}
}

func TestPaperDistributionMean(t *testing.T) {
	mean := PaperSizeDistribution().MeanBytes()
	if mean < 4 || mean > 10 {
		t.Errorf("mean serial size = %.2f bytes, outside plausible range", mean)
	}
	var empty SizeDistribution
	if got := empty.MeanBytes(); got != 0 {
		t.Errorf("empty distribution mean = %v, want 0", got)
	}
}

// Property: all generated serials are valid canonical encodings.
func TestQuickGeneratedSerialsCanonical(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewGenerator(seed, nil)
		for i := 0; i < 50; i++ {
			s := g.Next()
			if _, err := New(s.Raw()); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is a total order consistent with Sort.
func TestQuickCompareTotalOrder(t *testing.T) {
	f := func(a, b, c uint64) bool {
		na, nb, nc := FromUint64(a), FromUint64(b), FromUint64(c)
		// Antisymmetry.
		if na.Compare(nb) != -nb.Compare(na) {
			return false
		}
		// Transitivity via sorting three elements.
		s := []Number{na, nb, nc}
		Sort(s)
		return !slices.IsSortedFunc(s, Number.Compare) == false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
