package interception

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"sync"
)

// BypassList is the set of hosts the interceptor never bumps: matching
// connections are spliced verbatim, so the client sees the upstream's real
// certificate (pinned apps, mutual-TLS endpoints, anything the deployment
// must not terminate). Matching is ASCII case-insensitive.
//
// Entry forms:
//
//	example.com      exact host
//	.example.com     example.com and every subdomain
//	*.example.com    same as .example.com
//
// Safe for concurrent use; Add may race with matching (a reload while
// serving).
type BypassList struct {
	mu       sync.RWMutex
	exact    map[string]struct{}
	suffixes []string // each begins with '.', matches itself minus the dot too
}

// NewBypassList builds a list from the given entries.
func NewBypassList(entries ...string) *BypassList {
	b := &BypassList{exact: make(map[string]struct{})}
	for _, e := range entries {
		b.Add(e)
	}
	return b
}

// Add inserts one entry (see the entry forms above). Empty strings are
// ignored.
func (b *BypassList) Add(entry string) {
	entry = strings.ToLower(strings.TrimSpace(entry))
	entry = strings.TrimPrefix(entry, "*")
	if entry == "" || entry == "." {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if strings.HasPrefix(entry, ".") {
		b.suffixes = append(b.suffixes, entry)
		return
	}
	b.exact[entry] = struct{}{}
}

// Len reports the number of entries.
func (b *BypassList) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.exact) + len(b.suffixes)
}

// Match reports whether host hits the list.
func (b *BypassList) Match(host string) bool {
	return b.MatchBytes([]byte(host))
}

// MatchBytes is Match on a raw SNI slice without allocating: the lookup key
// is lowercased in a stack buffer and map-indexed via the compiler's
// string(b) lookup optimization. It sits on the per-ClientHello path.
func (b *BypassList) MatchBytes(host []byte) bool {
	if len(host) == 0 {
		return false
	}
	var stack [256]byte
	var lower []byte
	if len(host) <= len(stack) {
		lower = stack[:len(host)]
	} else {
		lower = make([]byte, len(host))
	}
	for i, c := range host {
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		lower[i] = c
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if _, ok := b.exact[string(lower)]; ok {
		return true
	}
	for _, suf := range b.suffixes {
		// ".example.com" matches "example.com" itself and "a.example.com".
		if len(lower) == len(suf)-1 && string(lower) == suf[1:] {
			return true
		}
		if len(lower) > len(suf) && string(lower[len(lower)-len(suf):]) == suf {
			return true
		}
	}
	return false
}

// LoadBypassFile reads a bypass list from path: one entry per line, blank
// lines and #-comments ignored. This is the `ritm-ra -bypass-file` format.
func LoadBypassFile(path string) (*BypassList, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("interception: bypass file: %w", err)
	}
	defer f.Close()
	b := NewBypassList()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		b.Add(line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("interception: bypass file %s: %w", path, err)
	}
	return b, nil
}
