package interception

import (
	"bytes"
	"testing"
)

// FuzzRecordHeader: the TLS-vs-not classifier must never panic, and an
// accepted header must be a handshake record with an in-bounds payload.
func FuzzRecordHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{22})
	f.Add([]byte{22, 3, 1, 0, 5})
	f.Add([]byte{22, 3, 3, 0x40, 0x00})
	f.Add([]byte{22, 3, 4, 0xff, 0xff})
	f.Add([]byte{21, 3, 3, 0, 2})
	f.Add([]byte("GET / HTTP/1.1\r\n"))
	f.Add([]byte{0x80, 0x2e, 0x01}) // SSLv2-style hello
	f.Fuzz(func(t *testing.T, data []byte) {
		version, length, ok := ParseRecordHeader(data)
		if !ok {
			if version != 0 || length != 0 {
				t.Fatalf("rejected header leaked values (%#x, %d)", version, length)
			}
			return
		}
		if len(data) < RecordHeaderLen {
			t.Fatal("accepted a short header")
		}
		if data[0] != recordTypeHandshake {
			t.Fatalf("accepted record type %d", data[0])
		}
		if length <= 0 || length > MaxRecordPayload {
			t.Fatalf("accepted out-of-bounds payload length %d", length)
		}
	})
}

// FuzzClientHelloSNI: the zero-alloc parser must never panic and never
// over-read — every slice it returns is bounded by (and aliases) the
// input.
func FuzzClientHelloSNI(f *testing.F) {
	valid := buildHelloMsg([]byte{1, 2, 3},
		rawExt(0x0a0a, []byte{0, 1, 0x0a, 0x0a}), // GREASE
		sniExt(sniEntry(sniTypeHostName, []byte("fuzz.example.com"))),
	)
	f.Add(valid)
	f.Add(buildHelloMsg(nil))                                                  // no extensions
	f.Add(buildHelloMsg(nil, sniExt(sniEntry(sniTypeHostName, nil))))          // empty SNI
	f.Add(buildHelloMsg(nil, sniExt()))                                        // empty name list
	f.Add(buildHelloMsg(nil, rawExt(extensionServerName, []byte{0xff, 0xff}))) // lying list length
	f.Add(valid[:len(valid)/2])                                                // truncated mid-message
	f.Add(valid[:5])                                                           // truncated in fixed fields
	oversized := bytes.Clone(valid)
	oversized[len(oversized)-20] = 0xff // corrupt an interior length field
	f.Add(oversized)
	f.Add([]byte{handshakeClientHello, 0xff, 0xff, 0xff}) // 16MB declared body
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ch, err := ParseClientHello(data)
		if err != nil {
			return
		}
		if len(ch.ServerName) > len(data) || len(ch.SessionID) > len(data) {
			t.Fatal("returned slice longer than the input")
		}
		if len(ch.ServerName) > 0 && !aliases(data, ch.ServerName) {
			t.Fatal("ServerName does not alias the input")
		}
		if len(ch.SessionID) > 0 && !aliases(data, ch.SessionID) {
			t.Fatal("SessionID does not alias the input")
		}
	})
}

// aliases reports whether sub's backing array lies inside buf.
func aliases(buf, sub []byte) bool {
	if len(buf) == 0 || len(sub) == 0 {
		return false
	}
	for i := 0; i+len(sub) <= len(buf); i++ {
		if &buf[i] == &sub[0] {
			return true
		}
	}
	return false
}
