package interception

import (
	"bytes"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeUpstream builds an upstream-leaf stand-in: MintTemplate and CertFor
// only read identity fields, so no signature is needed.
func fakeUpstream(sn int64, names ...string) *x509.Certificate {
	return &x509.Certificate{
		SerialNumber: big.NewInt(sn),
		Subject:      pkix.Name{CommonName: "upstream.test"},
		DNSNames:     names,
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(6 * time.Hour),
	}
}

func newTestRoot(t *testing.T, cn string) *MintingRoot {
	t.Helper()
	root, err := NewMintingRoot(cn, KeyECDSA)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestMintTemplateGolden pins the deterministic derivation: same inputs →
// identical serial/SAN/validity; any input change → a different serial.
func TestMintTemplateGolden(t *testing.T) {
	root := newTestRoot(t, "Golden Root")
	up := fakeUpstream(0xbeef, "b.test", "a.test", "www.test", "a.test")
	up.IPAddresses = []net.IP{net.ParseIP("192.0.2.7")}

	a := MintTemplate(root, "www.test", up)
	b := MintTemplate(root, "www.test", up)
	if a.SerialNumber.Cmp(b.SerialNumber) != 0 {
		t.Fatal("serial derivation is not deterministic")
	}
	if !a.NotBefore.Equal(b.NotBefore) || !a.NotAfter.Equal(b.NotAfter) {
		t.Fatal("validity derivation is not deterministic")
	}
	if !reflect.DeepEqual(a.DNSNames, b.DNSNames) {
		t.Fatal("SAN derivation is not deterministic")
	}

	// Shape: 16-byte serial with the top bit cleared, host-first then
	// sorted deduplicated upstream names, upstream IPs preserved.
	if a.SerialNumber.BitLen() > 127 || a.SerialNumber.Sign() <= 0 {
		t.Fatalf("serial out of shape: %v (%d bits)", a.SerialNumber, a.SerialNumber.BitLen())
	}
	wantSANs := []string{"www.test", "a.test", "b.test"}
	if !reflect.DeepEqual(a.DNSNames, wantSANs) {
		t.Fatalf("DNSNames = %v, want %v", a.DNSNames, wantSANs)
	}
	if len(a.IPAddresses) != 1 || !a.IPAddresses[0].Equal(net.ParseIP("192.0.2.7")) {
		t.Fatalf("IPAddresses = %v", a.IPAddresses)
	}

	// Validity clamps into the root's window.
	farOut := fakeUpstream(1, "far.test")
	farOut.NotAfter = root.Certificate().NotAfter.Add(365 * 24 * time.Hour)
	farOut.NotBefore = root.Certificate().NotBefore.Add(-time.Hour)
	clamped := MintTemplate(root, "far.test", farOut)
	if !clamped.NotAfter.Equal(root.Certificate().NotAfter) {
		t.Fatal("NotAfter not clamped to the root's")
	}
	if !clamped.NotBefore.Equal(root.Certificate().NotBefore) {
		t.Fatal("NotBefore not clamped to the root's")
	}

	// Every derivation input perturbs the serial.
	if MintTemplate(root, "other.test", up).SerialNumber.Cmp(a.SerialNumber) == 0 {
		t.Fatal("host change did not change the serial")
	}
	renewed := fakeUpstream(0xbeef, "b.test", "a.test", "www.test")
	renewed.NotAfter = up.NotAfter.Add(time.Hour)
	if MintTemplate(root, "www.test", renewed).SerialNumber.Cmp(a.SerialNumber) == 0 {
		t.Fatal("upstream renewal did not change the serial")
	}
	otherRoot := newTestRoot(t, "Golden Root") // same CN, fresh key ⇒ new digest
	if MintTemplate(otherRoot, "www.test", up).SerialNumber.Cmp(a.SerialNumber) == 0 {
		t.Fatal("root change did not change the serial")
	}
}

// TestMintCacheHitIdenticalDER: a cache hit returns byte-identical DER
// (the satellite's determinism requirement — ECDSA signatures are
// randomized, so identical DER can only come from the cache).
func TestMintCacheHitIdenticalDER(t *testing.T) {
	root := newTestRoot(t, "Cache Root")
	m := NewMinter(root, 0)
	up := fakeUpstream(42, "hit.test")

	c1, err := m.CertFor("hit.test", up)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.CertFor("hit.test", up)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Certificate[0], c2.Certificate[0]) {
		t.Fatal("cache hit returned different DER")
	}
	if hits, misses := m.CacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("CacheStats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}

	// The minted chain verifies against the root.
	pool := x509.NewCertPool()
	pool.AddCert(root.Certificate())
	if _, err := c1.Leaf.Verify(x509.VerifyOptions{Roots: pool, DNSName: "hit.test"}); err != nil {
		t.Fatalf("minted chain does not verify: %v", err)
	}

	// A renewed upstream certificate re-mints.
	renewed := fakeUpstream(43, "hit.test")
	c3, err := m.CertFor("hit.test", renewed)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c3.Certificate[0], c1.Certificate[0]) {
		t.Fatal("renewed upstream served the stale minted leaf")
	}
}

// TestMintCacheEviction: the LRU cap evicts the oldest entry.
func TestMintCacheEviction(t *testing.T) {
	root := newTestRoot(t, "LRU Root")
	m := NewMinter(root, 2)
	for _, h := range []string{"a.test", "b.test", "c.test", "a.test"} {
		if _, err := m.CertFor(h, fakeUpstream(7, h)); err != nil {
			t.Fatal(err)
		}
	}
	// a.test was evicted by c.test, so its second mint is a miss.
	if hits, misses := m.CacheStats(); hits != 0 || misses != 4 {
		t.Fatalf("CacheStats = (%d hits, %d misses), want (0, 4)", hits, misses)
	}
}

// TestSetRootInvalidatesCache: root rotation clears the cache and re-mints
// under the new root.
func TestSetRootInvalidatesCache(t *testing.T) {
	root1 := newTestRoot(t, "Rotation Root 1")
	root2 := newTestRoot(t, "Rotation Root 2")
	m := NewMinter(root1, 0)
	up := fakeUpstream(9, "rot.test")

	c1, err := m.CertFor("rot.test", up)
	if err != nil {
		t.Fatal(err)
	}
	m.SetRoot(root2)
	c2, err := m.CertFor("rot.test", up)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c1.Certificate[0], c2.Certificate[0]) {
		t.Fatal("rotation served a leaf minted under the old root")
	}
	pool2 := x509.NewCertPool()
	pool2.AddCert(root2.Certificate())
	if _, err := c2.Leaf.Verify(x509.VerifyOptions{Roots: pool2, DNSName: "rot.test"}); err != nil {
		t.Fatalf("post-rotation leaf does not chain to the new root: %v", err)
	}
	pool1 := x509.NewCertPool()
	pool1.AddCert(root1.Certificate())
	if _, err := c2.Leaf.Verify(x509.VerifyOptions{Roots: pool1, DNSName: "rot.test"}); err == nil {
		t.Fatal("post-rotation leaf still chains to the old root")
	}
	if _, misses := m.CacheStats(); misses != 2 {
		t.Fatalf("misses = %d, want 2 (rotation must not hit)", misses)
	}
}

// TestMintSingleflight: concurrent misses for one key coalesce into a
// single mint, and everyone gets the same DER.
func TestMintSingleflight(t *testing.T) {
	root := newTestRoot(t, "Flight Root")
	m := NewMinter(root, 0)
	up := fakeUpstream(11, "flight.test")

	const n = 16
	var wg sync.WaitGroup
	ders := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := m.CertFor("flight.test", up)
			if err != nil {
				t.Error(err)
				return
			}
			ders[i] = c.Certificate[0]
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(ders[i], ders[0]) {
			t.Fatal("coalesced callers saw different DER")
		}
	}
	if _, misses := m.CacheStats(); misses != 1 {
		t.Fatalf("misses = %d, want 1 (singleflight)", misses)
	}
}

// TestLoadOrCreateMintingRoot: a created root round-trips through its PEM
// file.
func TestLoadOrCreateMintingRoot(t *testing.T) {
	for _, alg := range []KeyAlg{KeyECDSA, KeyRSA} {
		path := filepath.Join(t.TempDir(), "bump-root.pem")
		created, err := LoadOrCreateMintingRoot(path, "Persisted Root", alg)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadOrCreateMintingRoot(path, "ignored-on-load", alg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(created.DER(), loaded.DER()) {
			t.Fatal("reloaded root certificate differs")
		}
		// The reloaded root must still mint working chains.
		m := NewMinter(loaded, 0)
		c, err := m.CertFor("persist.test", fakeUpstream(3, "persist.test"))
		if err != nil {
			t.Fatal(err)
		}
		pool := x509.NewCertPool()
		pool.AddCert(loaded.Certificate())
		if _, err := c.Leaf.Verify(x509.VerifyOptions{Roots: pool, DNSName: "persist.test"}); err != nil {
			t.Fatalf("alg %v: reloaded root mints broken chains: %v", alg, err)
		}
	}
}
