package interception

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// --- ClientHello wire builders (tests + fuzz seed corpus) ---

// sniEntry encodes one server_name list entry.
func sniEntry(nameType byte, name []byte) []byte {
	out := []byte{nameType, byte(len(name) >> 8), byte(len(name))}
	return append(out, name...)
}

// sniExt encodes a server_name extension from pre-encoded list entries.
func sniExt(entries ...[]byte) []byte {
	var list []byte
	for _, e := range entries {
		list = append(list, e...)
	}
	body := []byte{byte(len(list) >> 8), byte(len(list))}
	body = append(body, list...)
	return rawExt(extensionServerName, body)
}

// rawExt encodes one extension: type, length, body.
func rawExt(typ uint16, body []byte) []byte {
	out := []byte{byte(typ >> 8), byte(typ), byte(len(body) >> 8), byte(len(body))}
	return append(out, body...)
}

// buildHelloMsg assembles a ClientHello handshake message (type byte + u24
// length + body) with the given session ID and pre-encoded extensions.
func buildHelloMsg(sessionID []byte, exts ...[]byte) []byte {
	body := []byte{0x03, 0x03}                // legacy_version TLS 1.2
	body = append(body, make([]byte, 32)...)  // random
	body = append(body, byte(len(sessionID))) // session_id
	body = append(body, sessionID...)
	body = append(body, 0x00, 0x04, 0x13, 0x01, 0x0a, 0x0a) // ciphers: TLS_AES_128_GCM + GREASE
	body = append(body, 0x01, 0x00)                         // compression: null
	var extBlock []byte
	for _, e := range exts {
		extBlock = append(extBlock, e...)
	}
	body = append(body, byte(len(extBlock)>>8), byte(len(extBlock)))
	body = append(body, extBlock...)
	msg := []byte{handshakeClientHello, byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))}
	return append(msg, body...)
}

// wrapRecords fragments msg into handshake records of at most frag payload
// bytes each, producing the wire form readClientHelloMessage consumes.
func wrapRecords(msg []byte, frag int) []byte {
	var out []byte
	for len(msg) > 0 {
		n := frag
		if n > len(msg) {
			n = len(msg)
		}
		out = append(out, recordTypeHandshake, 0x03, 0x01, byte(n>>8), byte(n))
		out = append(out, msg[:n]...)
		msg = msg[n:]
	}
	return out
}

func TestParseRecordHeader(t *testing.T) {
	cases := []struct {
		name string
		hdr  []byte
		ok   bool
		len  int
	}{
		{"handshake tls1.0", []byte{22, 3, 1, 0, 5}, true, 5},
		{"handshake tls1.2", []byte{22, 3, 3, 1, 0}, true, 256},
		{"max payload", []byte{22, 3, 3, 0x40, 0x00}, true, MaxRecordPayload},
		{"alert record", []byte{21, 3, 3, 0, 2}, false, 0},
		{"http", []byte("GET /"), false, 0},
		{"bad major version", []byte{22, 4, 0, 0, 5}, false, 0},
		{"bad minor version", []byte{22, 3, 5, 0, 5}, false, 0},
		{"zero length", []byte{22, 3, 3, 0, 0}, false, 0},
		{"oversized payload", []byte{22, 3, 3, 0x40, 0x01}, false, 0},
		{"short input", []byte{22, 3, 3, 0}, false, 0},
		{"empty", nil, false, 0},
	}
	for _, tc := range cases {
		_, length, ok := ParseRecordHeader(tc.hdr)
		if ok != tc.ok || length != tc.len {
			t.Errorf("%s: ParseRecordHeader = (len %d, ok %v), want (len %d, ok %v)",
				tc.name, length, ok, tc.len, tc.ok)
		}
	}
}

func TestParseClientHelloSNI(t *testing.T) {
	host := []byte("www.Example.COM")
	msg := buildHelloMsg([]byte{1, 2, 3},
		rawExt(0x0a0a, []byte{0, 1, 0x0a, 0x0a}), // GREASE extension first
		sniExt(sniEntry(sniTypeHostName, host)),
	)
	ch, err := ParseClientHello(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ch.ServerName, host) {
		t.Fatalf("ServerName = %q, want %q", ch.ServerName, host)
	}
	if !bytes.Equal(ch.SessionID, []byte{1, 2, 3}) {
		t.Fatalf("SessionID = %v", ch.SessionID)
	}
	if ch.Version != 0x0303 {
		t.Fatalf("Version = %#x", ch.Version)
	}
	// The returned name aliases the input: zero-copy is part of the
	// contract.
	idx := bytes.Index(msg, host)
	if &ch.ServerName[0] != &msg[idx] {
		t.Fatal("ServerName does not alias the input buffer")
	}
}

func TestParseClientHelloEdgeCases(t *testing.T) {
	if _, err := ParseClientHello(buildHelloMsg(nil)); err != nil {
		t.Fatalf("no extensions: %v", err)
	}
	ch, err := ParseClientHello(buildHelloMsg(nil, sniExt(sniEntry(sniTypeHostName, nil))))
	if err != nil {
		t.Fatalf("empty SNI: %v", err)
	}
	if ch.ServerName == nil || len(ch.ServerName) != 0 {
		t.Fatalf("empty SNI: ServerName = %v, want present-but-empty", ch.ServerName)
	}
	// A non-hostname entry before the hostname is skipped.
	ch, err = ParseClientHello(buildHelloMsg(nil, sniExt(
		sniEntry(7, []byte("ignored")), sniEntry(sniTypeHostName, []byte("real.test")))))
	if err != nil || string(ch.ServerName) != "real.test" {
		t.Fatalf("mixed entries: ServerName = %q, err = %v", ch.ServerName, err)
	}

	if _, err := ParseClientHello([]byte{2, 0, 0, 0}); !errors.Is(err, ErrNotClientHello) {
		t.Fatalf("ServerHello type: err = %v", err)
	}
	msg := buildHelloMsg(nil, sniExt(sniEntry(sniTypeHostName, []byte("x.test"))))
	if _, err := ParseClientHello(msg[:len(msg)-3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: err = %v", err)
	}
	if _, err := ParseClientHello(append(msg, 0xff)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("trailing byte: err = %v", err)
	}
	// Extension declaring more bytes than exist.
	bad := buildHelloMsg(nil, rawExt(extensionServerName, nil))
	bad[len(bad)-1] = 0xff // extension length now overruns the message
	bad[len(bad)-2] = 0xff
	if _, err := ParseClientHello(bad); err == nil {
		t.Fatal("oversized extension length accepted")
	}
}

// byteConn replays a fixed byte stream as a net.Conn.
type byteConn struct {
	net.Conn // panics on use of anything not overridden
	r        *bytes.Reader
}

func (c *byteConn) Read(p []byte) (int, error)      { return c.r.Read(p) }
func (c *byteConn) SetReadDeadline(time.Time) error { return nil }

func TestReadClientHelloMessageFragmented(t *testing.T) {
	msg := buildHelloMsg(nil, sniExt(sniEntry(sniTypeHostName, []byte("frag.test"))))
	for _, frag := range []int{1, 7, 64, len(msg)} {
		wire := wrapRecords(msg, frag)
		pk := newPeeker(&byteConn{r: bytes.NewReader(wire)})
		raw, got, err := readClientHelloMessage(pk)
		if err != nil {
			t.Fatalf("frag %d: %v", frag, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("frag %d: assembled message differs", frag)
		}
		if !bytes.Equal(raw, wire) {
			t.Fatalf("frag %d: raw bytes differ from the wire form", frag)
		}
	}
}

// TestZeroAllocFastPath pins the zero-allocation property of the
// per-connection sniff: header classification, ClientHello parsing, and
// bypass matching allocate nothing.
func TestZeroAllocFastPath(t *testing.T) {
	msg := buildHelloMsg([]byte{9, 9}, sniExt(sniEntry(sniTypeHostName, []byte("alloc.example.com"))))
	hdr := []byte{22, 3, 3, 0, 100}
	bl := NewBypassList("alloc.example.com", ".cdn.example.net")
	sni := []byte("alloc.example.com")

	if n := testing.AllocsPerRun(200, func() {
		if _, _, ok := ParseRecordHeader(hdr); !ok {
			t.Fatal("header rejected")
		}
		if _, err := ParseClientHello(msg); err != nil {
			t.Fatal(err)
		}
		if !bl.MatchBytes(sni) {
			t.Fatal("bypass miss")
		}
	}); n != 0 {
		t.Fatalf("fast path allocates %.1f times per run, want 0", n)
	}
}
