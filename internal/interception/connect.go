package interception

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
)

// HTTP CONNECT entry (§IV's explicit-proxy deployment): browsers configured
// with the RA as their HTTPS proxy open the connection with
//
//	CONNECT host:port HTTP/1.1
//
// followed by headers and a blank line; the TLS exchange runs inside the
// established tunnel. The interceptor answers 200 and re-runs the bump
// decision on the tunnel bytes, so CONNECT and transparent traffic get the
// identical treatment past the preamble.

// maxConnectPreamble bounds the CONNECT request line + headers.
const maxConnectPreamble = 8 << 10

// looksLikeConnect reports whether the first bytes could start an HTTP
// CONNECT request. Only CONNECT is recognized: plain HTTP through the
// interceptor is just non-TLS traffic and splices verbatim.
func looksLikeConnect(prefix []byte) bool {
	return len(prefix) >= 5 && bytes.Equal(prefix[:5], []byte("CONNE"))
}

// readConnect consumes the CONNECT preamble from the peeker, answers 200,
// and returns the requested host and host:port. The peeker's buffer is
// advanced past the preamble; tunnel bytes stay buffered.
func readConnect(p *peeker, client net.Conn) (host, hostport string, err error) {
	var end int
	for {
		buf := p.buffered()
		if i := bytes.Index(buf, []byte("\r\n\r\n")); i >= 0 {
			end = i + 4
			break
		}
		if len(buf) > maxConnectPreamble {
			return "", "", errors.New("request preamble exceeds 8 KiB")
		}
		if _, err := p.peek(len(buf) + 1); err != nil {
			return "", "", fmt.Errorf("reading request: %w", err)
		}
	}
	preamble := string(p.buffered()[:end])
	p.discard(end)

	line, _, _ := strings.Cut(preamble, "\r\n")
	parts := strings.Fields(line)
	if len(parts) < 3 || parts[0] != "CONNECT" {
		return "", "", fmt.Errorf("malformed request line %q", line)
	}
	hostport = parts[1]
	host, _, err = net.SplitHostPort(hostport)
	if err != nil {
		// CONNECT targets default to :443 when the port is omitted.
		host = hostport
		hostport = net.JoinHostPort(hostport, "443")
	}
	if host == "" {
		return "", "", fmt.Errorf("empty host in %q", parts[1])
	}
	if _, err := client.Write([]byte("HTTP/1.1 200 Connection Established\r\n\r\n")); err != nil {
		return "", "", fmt.Errorf("writing 200: %w", err)
	}
	return host, hostport, nil
}
