package interception

import (
	"errors"
	"io"
	"net"
	"sync"
)

// splice copies bytes between a and b in both directions until both
// directions finish, half-closing each sink when its source drains. Benign
// termination (EOF, our own teardown closing the conns) is silent;
// anything else — a peer reset mid-splice, a write into a half-closed
// socket — goes to onErr, because a middlebox that drops those on the
// floor turns every downstream incident into "the RA ate my bytes"
// (exactly the ra.Proxy bug PR 8 fixed).
//
// When both ends are raw *net.TCPConn (the bypass and non-TLS paths),
// io.Copy short-circuits into the kernel (splice/sendfile): the verbatim
// path moves no byte through user space.
func splice(a, b net.Conn, onErr func(error)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pipeHalf(b, a, onErr)
	}()
	pipeHalf(a, b, onErr)
	wg.Wait()
}

// pipeHalf copies src → dst, then half-closes dst.
func pipeHalf(dst, src net.Conn, onErr func(error)) {
	_, err := io.Copy(dst, src)
	if err != nil && !isBenignSpliceError(err) && onErr != nil {
		onErr(err)
	}
	halfClose(dst)
}

type closeWriter interface{ CloseWrite() error }

// halfClose propagates end-of-stream: CloseWrite on conns that support it
// (TCP FIN, TLS close_notify), full Close otherwise.
func halfClose(c net.Conn) {
	if cw, ok := c.(closeWriter); ok {
		cw.CloseWrite() //nolint:errcheck // advisory; the peer may be gone
		return
	}
	c.Close() //nolint:errcheck // advisory
}

// isBenignSpliceError reports errors that are normal connection teardown
// rather than data loss.
func isBenignSpliceError(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, io.ErrClosedPipe)
}
