package interception

import (
	"errors"
	"fmt"
	"io"
	"net"
)

// Zero-allocation TLS record and ClientHello parsing. This is the per-first-
// packet check every accepted connection pays, TLS or not, so it never
// allocates: every returned slice aliases the input buffer, and every read
// goes through a bounds-checked cursor that can neither panic nor over-read
// (FuzzClientHelloSNI / FuzzRecordHeader pin both properties).

// Wire constants (RFC 8446 §5.1, §4.1.2).
const (
	// RecordHeaderLen is the TLS record header size.
	RecordHeaderLen = 5
	// MaxRecordPayload is the largest plaintext record payload (2^14).
	MaxRecordPayload = 1 << 14
	// MaxClientHelloLen bounds the assembled ClientHello handshake message
	// (which may span records — post-quantum key shares already do). The
	// handshake length field is 24-bit; anything above this bound is
	// hostile or broken, and the parser refuses to buffer it.
	MaxClientHelloLen = 1 << 16

	recordTypeAlert      = 21
	recordTypeHandshake  = 22
	handshakeClientHello = 1

	extensionServerName = 0
	sniTypeHostName     = 0
)

// Parse errors. All are wrapped with context; match with errors.Is.
var (
	// ErrNotClientHello reports a handshake message of a different type.
	ErrNotClientHello = errors.New("interception: not a ClientHello")
	// ErrTruncated reports input ending inside a length-prefixed field.
	ErrTruncated = errors.New("interception: truncated ClientHello")
)

// ParseRecordHeader classifies 5 bytes as a TLS handshake record header,
// returning the protocol version and payload length. Only handshake records
// with a plausible version and a non-empty, in-bounds payload pass: this is
// the TLS-vs-not decision, so anything else (HTTP, SSH, garbage) fails and
// is spliced verbatim.
func ParseRecordHeader(hdr []byte) (version uint16, length int, ok bool) {
	if len(hdr) < RecordHeaderLen {
		return 0, 0, false
	}
	if hdr[0] != recordTypeHandshake {
		return 0, 0, false
	}
	// Major version 3, minor 0–4: SSL 3.0 through the TLS 1.3 legacy
	// record version. Real ClientHellos use 0x0301 or 0x0303.
	if hdr[1] != 0x03 || hdr[2] > 0x04 {
		return 0, 0, false
	}
	length = int(hdr[3])<<8 | int(hdr[4])
	if length == 0 || length > MaxRecordPayload {
		return 0, 0, false
	}
	return uint16(hdr[1])<<8 | uint16(hdr[2]), length, true
}

// cursor is a bounds-checked reader over a byte slice. A read past the end
// sets fail and yields zero values; it never panics and never reads outside
// b. Sub-cursors (vector fields) are bounded by their declared length.
type cursor struct {
	b    []byte
	off  int
	fail bool
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

func (c *cursor) u8() uint8 {
	if c.fail || c.remaining() < 1 {
		c.fail = true
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u16() uint16 {
	if c.fail || c.remaining() < 2 {
		c.fail = true
		return 0
	}
	v := uint16(c.b[c.off])<<8 | uint16(c.b[c.off+1])
	c.off += 2
	return v
}

func (c *cursor) u24() int {
	if c.fail || c.remaining() < 3 {
		c.fail = true
		return 0
	}
	v := int(c.b[c.off])<<16 | int(c.b[c.off+1])<<8 | int(c.b[c.off+2])
	c.off += 3
	return v
}

// take returns the next n bytes as a sub-slice of the input (no copy).
func (c *cursor) take(n int) []byte {
	if c.fail || n < 0 || c.remaining() < n {
		c.fail = true
		return nil
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v
}

func (c *cursor) skip(n int) { c.take(n) }

// sub returns a cursor over the next n bytes.
func (c *cursor) sub(n int) cursor {
	return cursor{b: c.take(n)}
}

// ClientHello is the subset of a parsed ClientHello the interceptor acts
// on. All slice fields alias the parsed buffer: callers must copy anything
// they keep past the buffer's lifetime.
type ClientHello struct {
	// Version is the legacy_version field.
	Version uint16
	// SessionID is the legacy session ID (empty for most TLS 1.3 hellos).
	SessionID []byte
	// ServerName is the first host_name entry of the server_name
	// extension; nil when the extension is absent, empty when present but
	// empty (hostile input the bump path treats as no-SNI).
	ServerName []byte
}

// ParseClientHello parses a complete ClientHello handshake message
// (starting at the handshake type byte). GREASE values in cipher suites and
// extensions are skipped like any other unknown value (RFC 8701: they MUST
// be ignored). Trailing bytes after the declared handshake length are
// rejected — on a live connection they would belong to the next message,
// and this parser is handed exactly one message.
func ParseClientHello(msg []byte) (ClientHello, error) {
	var ch ClientHello
	c := cursor{b: msg}
	if t := c.u8(); c.fail || t != handshakeClientHello {
		return ch, ErrNotClientHello
	}
	bodyLen := c.u24()
	if c.fail || bodyLen != c.remaining() {
		return ch, fmt.Errorf("%w: body length %d, have %d", ErrTruncated, bodyLen, c.remaining())
	}
	body := c.sub(bodyLen)

	ch.Version = body.u16()
	body.skip(32) // random
	ch.SessionID = body.take(int(body.u8()))
	body.skip(int(body.u16())) // cipher suites (GREASE values skipped with the rest)
	body.skip(int(body.u8()))  // compression methods
	if body.fail {
		return ch, fmt.Errorf("%w: fixed fields", ErrTruncated)
	}
	if body.remaining() == 0 {
		return ch, nil // no extensions: legal (ancient) ClientHello
	}
	exts := body.sub(int(body.u16()))
	if body.fail {
		return ch, fmt.Errorf("%w: extensions block", ErrTruncated)
	}
	for exts.remaining() > 0 {
		extType := exts.u16()
		ext := exts.sub(int(exts.u16()))
		if exts.fail {
			return ch, fmt.Errorf("%w: extension header", ErrTruncated)
		}
		if extType != extensionServerName || ch.ServerName != nil {
			continue // unknown/GREASE extensions skipped; first SNI wins
		}
		names := ext.sub(int(ext.u16()))
		for names.remaining() > 0 {
			nameType := names.u8()
			name := names.take(int(names.u16()))
			if names.fail {
				return ch, fmt.Errorf("%w: server_name entry", ErrTruncated)
			}
			if nameType == sniTypeHostName {
				if name == nil {
					name = []byte{}
				}
				ch.ServerName = name
				break
			}
		}
		if ext.fail {
			return ch, fmt.Errorf("%w: server_name extension", ErrTruncated)
		}
	}
	return ch, nil
}

// peeker buffers everything it reads from a conn so the bytes can be
// replayed — to the upstream on a splice, or to crypto/tls on a bump. It is
// the "buffered first packet" of the redwood design: nothing is consumed
// destructively before the bump decision.
type peeker struct {
	conn net.Conn
	buf  []byte
}

func newPeeker(c net.Conn) *peeker { return &peeker{conn: c} }

// peek ensures at least n bytes are buffered and returns the first n.
// On error it returns whatever was buffered (possibly short) and the error.
func (p *peeker) peek(n int) ([]byte, error) {
	for len(p.buf) < n {
		chunk := make([]byte, 4096)
		m, err := p.conn.Read(chunk)
		p.buf = append(p.buf, chunk[:m]...)
		if err != nil {
			return p.buf, err
		}
	}
	return p.buf[:n], nil
}

// buffered returns everything read so far.
func (p *peeker) buffered() []byte { return p.buf }

// discard drops the first n buffered bytes (after a consumed preamble, e.g.
// the CONNECT request, the remainder belongs to the tunnel).
func (p *peeker) discard(n int) {
	if n >= len(p.buf) {
		p.buf = nil
		return
	}
	p.buf = p.buf[n:]
}

// readClientHelloMessage assembles the full ClientHello handshake message
// from one or more handshake records. It returns the raw wire bytes
// consumed (for replay) and the assembled message. The assembly allocates
// (one buffer for the message); the parsing above does not.
func readClientHelloMessage(p *peeker) (raw, msg []byte, err error) {
	off := 0
	var assembled []byte
	need := -1 // unknown until the first record yields the handshake header
	for {
		hdr, err := p.peek(off + RecordHeaderLen)
		if err != nil {
			return p.buffered(), nil, fmt.Errorf("%w: record header: %v", ErrTruncated, err)
		}
		_, recLen, ok := ParseRecordHeader(hdr[off:])
		if !ok {
			return p.buffered(), nil, fmt.Errorf("%w: interleaved non-handshake record", ErrNotClientHello)
		}
		full, err := p.peek(off + RecordHeaderLen + recLen)
		if err != nil {
			return p.buffered(), nil, fmt.Errorf("%w: record body: %v", ErrTruncated, err)
		}
		assembled = append(assembled, full[off+RecordHeaderLen:off+RecordHeaderLen+recLen]...)
		off += RecordHeaderLen + recLen
		if need < 0 {
			if len(assembled) < 4 {
				continue // pathological 1–3 byte first record; keep reading
			}
			if assembled[0] != handshakeClientHello {
				return p.buffered(), nil, ErrNotClientHello
			}
			bodyLen := int(assembled[1])<<16 | int(assembled[2])<<8 | int(assembled[3])
			need = 4 + bodyLen
			if need > MaxClientHelloLen {
				return p.buffered(), nil, fmt.Errorf("%w: declared length %d", ErrNotClientHello, bodyLen)
			}
		}
		if len(assembled) >= need {
			return p.buf[:off], assembled[:need], nil
		}
	}
}

// replayConn replays buffered bytes before delegating to the wrapped conn:
// crypto/tls reads the exact ClientHello the peeker consumed, then the live
// stream.
type replayConn struct {
	net.Conn
	pending []byte
}

func newReplayConn(c net.Conn, pending []byte) net.Conn {
	return &replayConn{Conn: c, pending: pending}
}

func (r *replayConn) Read(p []byte) (int, error) {
	if len(r.pending) > 0 {
		n := copy(p, r.pending)
		r.pending = r.pending[n:]
		return n, nil
	}
	return r.Conn.Read(p)
}

// alertCertificateRevoked is the TLS alert the interceptor refuses revoked
// upstreams with (RFC 8446 §6.2: certificate_revoked(44)). Sent in
// plaintext before any server handshake byte, which is legal at that point
// in the exchange; Go clients surface it as "remote error: tls: revoked
// certificate".
const alertCertificateRevoked = 44

// writeAlert writes a fatal TLS alert record.
func writeAlert(w io.Writer, desc byte) error {
	_, err := w.Write([]byte{recordTypeAlert, 0x03, 0x03, 0x00, 0x02, 2 /* fatal */, desc})
	return err
}
