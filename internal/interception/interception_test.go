// End-to-end scenario suite for the real-TLS intercepting data plane: a
// live CA → distribution point → RA deployment on one side, a real
// crypto/tls upstream on the other, and the interceptor bumping genuine
// handshakes in between. External test package: internal/ra imports
// internal/interception, so these tests must sit outside the package to
// use the RA's NewInterceptor wiring.
package interception_test

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"io"
	"math/big"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ritm/internal/ca"
	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/interception"
	"ritm/internal/ra"
	"ritm/internal/serial"
)

const (
	testCAID = "CA1"
	testHost = "example.com"
)

// upstreamPKI is a real-x509 issuing CA whose subject CN doubles as the
// RITM CA identifier, so leaves it issues map onto the dictionary.
type upstreamPKI struct {
	caCert *x509.Certificate
	caKey  *ecdsa.PrivateKey
	pool   *x509.CertPool
}

func newUpstreamPKI(t *testing.T, caID string) *upstreamPKI {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: caID},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	caCert, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(caCert)
	return &upstreamPKI{caCert: caCert, caKey: key, pool: pool}
}

// issue mints a server leaf for host with the given serial; sn is the
// leaf's dictionary identity (issuer CN + minimal big-endian serial).
func (p *upstreamPKI) issue(t *testing.T, host string, rawSN int64) (tls.Certificate, serial.Number) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(rawSN),
		Subject:      pkix.Name{CommonName: host},
		DNSNames:     []string{host},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(12 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, p.caCert, &key.PublicKey, p.caKey)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := serial.New(big.NewInt(rawSN).Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}, sn
}

// sessionLog records every Session the interceptor emits.
type sessionLog struct {
	mu  sync.Mutex
	all []interception.Session
}

func (l *sessionLog) add(s *interception.Session) {
	l.mu.Lock()
	l.all = append(l.all, *s)
	l.mu.Unlock()
}

// wait polls until a recorded session satisfies pred.
func (l *sessionLog) wait(t *testing.T, what string, pred func(interception.Session) bool) interception.Session {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		for _, s := range l.all {
			if pred(s) {
				l.mu.Unlock()
				return s
			}
		}
		l.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("no session matching %q within deadline", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// env is a complete miniature deployment: RITM CA → distribution point →
// edge → RA on the control plane, a real crypto/tls echo server upstream,
// and the RA's interceptor between the test's clients and that upstream.
type env struct {
	authority    *ca.CA
	agent        *ra.RA
	pki          *upstreamPKI
	leafSN       serial.Number
	leafDER      []byte
	upstreamAddr string
	minter       *interception.Minter
	mintPool     *x509.CertPool
	it           *interception.Interceptor
	sessions     *sessionLog
}

func newEnv(t *testing.T, mutate func(*interception.Config)) *env {
	t.Helper()
	dp := cdn.NewDistributionPoint(nil)
	authority, err := ca.New(ca.Config{ID: testCAID, Delta: time.Hour, Publisher: dp})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.RegisterCA(testCAID, authority.PublicKey()); err != nil {
		t.Fatal(err)
	}
	agent, err := ra.New(ra.Config{
		Roots:  []*cert.Certificate{authority.RootCertificate()},
		Origin: cdn.NewEdgeServer(dp, 0, nil),
		Delta:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := authority.PublishRoot(); err != nil {
		t.Fatal(err)
	}
	if err := authority.PublishRefresh(); err != nil {
		t.Fatal(err)
	}
	if err := agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	pki := newUpstreamPKI(t, testCAID)
	leafCert, leafSN := pki.issue(t, testHost, 0x2345)
	upstreamAddr := startTLSEcho(t, leafCert)

	mintRoot, err := interception.NewMintingRoot("RITM Test Bump Root", interception.KeyECDSA)
	if err != nil {
		t.Fatal(err)
	}
	minter := interception.NewMinter(mintRoot, 0)
	mintPool := x509.NewCertPool()
	mintPool.AddCert(mintRoot.Certificate())

	sessions := &sessionLog{}
	cfg := interception.Config{
		Minter:    minter,
		Target:    upstreamAddr,
		OnSession: sessions.add,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	it, err := agent.NewInterceptor("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { it.Close() })

	return &env{
		authority:    authority,
		agent:        agent,
		pki:          pki,
		leafSN:       leafSN,
		leafDER:      leafCert.Certificate[0],
		upstreamAddr: upstreamAddr,
		minter:       minter,
		mintPool:     mintPool,
		it:           it,
		sessions:     sessions,
	}
}

// startTLSEcho runs a real crypto/tls echo server presenting leaf.
func startTLSEcho(t *testing.T, leaf tls.Certificate) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	cfg := &tls.Config{Certificates: []tls.Certificate{leaf}}
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				conn := tls.Server(raw, cfg)
				defer conn.Close()
				io.Copy(conn, conn) //nolint:errcheck // echo until either side closes
			}()
		}
	}()
	return ln.Addr().String()
}

// startRawUpstream runs handler on every accepted raw connection.
func startRawUpstream(t *testing.T, handler func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go handler(conn)
		}
	}()
	return ln.Addr().String()
}

// dialBumped completes a client handshake through the interceptor,
// trusting the minting root (the bump path).
func (e *env) dialBumped(t *testing.T) (*tls.Conn, error) {
	t.Helper()
	conn, err := tls.Dial("tcp", e.it.Addr().String(), &tls.Config{
		ServerName: testHost,
		RootCAs:    e.mintPool,
	})
	return conn, err
}

// echoRoundTrip writes msg and expects it echoed back.
func echoRoundTrip(t *testing.T, conn io.ReadWriter, msg string) {
	t.Helper()
	if _, err := conn.Write([]byte(msg)); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatalf("read echo: %v", err)
	}
	if string(buf) != msg {
		t.Fatalf("echo mismatch: got %q want %q", buf, msg)
	}
}

// TestInterceptE2ERevocationFlip is the acceptance-criteria scenario: a
// real crypto/tls handshake is bumped against a live RA store, an injected
// revocation leaves the established session untouched, and the next
// handshake is refused with a certificate_revoked alert.
func TestInterceptE2ERevocationFlip(t *testing.T) {
	e := newEnv(t, nil)

	conn, err := e.dialBumped(t)
	if err != nil {
		t.Fatalf("bumped handshake: %v", err)
	}
	defer conn.Close()

	// The client must see a leaf minted under the bump root, not the
	// upstream's genuine certificate.
	state := conn.ConnectionState()
	if len(state.PeerCertificates) == 0 {
		t.Fatal("no peer certificates")
	}
	if got := state.PeerCertificates[0].Issuer.CommonName; got != "RITM Test Bump Root" {
		t.Fatalf("peer leaf issuer = %q, want the bump root", got)
	}
	if bytes.Equal(state.PeerCertificates[0].Raw, e.leafDER) {
		t.Fatal("client saw the upstream's genuine leaf on the bump path")
	}
	echoRoundTrip(t, conn, "through the bump")

	sess := e.sessions.wait(t, "bumped session", func(s interception.Session) bool {
		return !s.Bypassed && !s.NonTLS && !s.Revoked && s.Host == testHost
	})
	if sess.CA != testCAID {
		t.Fatalf("session CA = %q, want %q", sess.CA, testCAID)
	}
	if !sess.Serial.Equal(e.leafSN) {
		t.Fatalf("session serial = %v, want %v", sess.Serial, e.leafSN)
	}
	if sess.StatusErr != nil {
		t.Fatalf("status lookup failed: %v", sess.StatusErr)
	}

	// Revoke the upstream leaf mid-session and propagate through the
	// dissemination network to the RA replica.
	if _, err := e.authority.Revoke(e.leafSN); err != nil {
		t.Fatal(err)
	}
	if err := e.authority.PublishRefresh(); err != nil {
		t.Fatal(err)
	}
	if err := e.agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	// The established session keeps flowing: revocation gates handshakes,
	// not spliced bytes.
	echoRoundTrip(t, conn, "still up after revocation")

	// The next handshake is refused.
	refused, err := e.dialBumped(t)
	if err == nil {
		refused.Close()
		t.Fatal("handshake succeeded for a revoked upstream leaf")
	}
	if !strings.Contains(err.Error(), "revoked") {
		t.Fatalf("refusal error = %v, want a revoked-certificate alert", err)
	}
	rs := e.sessions.wait(t, "refused session", func(s interception.Session) bool { return s.Revoked })
	if rs.CA != testCAID || !rs.Serial.Equal(e.leafSN) {
		t.Fatalf("refused session identity = (%q, %v), want (%q, %v)", rs.CA, rs.Serial, testCAID, e.leafSN)
	}
	if got := e.it.Stats().Refused; got < 1 {
		t.Fatalf("Stats().Refused = %d, want >= 1", got)
	}
	if got := e.agent.Stats().ConnectionsRefused; got < 1 {
		t.Fatalf("RA Stats().ConnectionsRefused = %d, want >= 1", got)
	}
}

// TestBypassGenuineCertificate: a bypass-list hit must splice verbatim —
// the client completes a handshake with the genuine upstream, sees the
// genuine leaf, and the bump root never appears.
func TestBypassGenuineCertificate(t *testing.T) {
	e := newEnv(t, func(cfg *interception.Config) {
		cfg.Bypass = interception.NewBypassList(testHost)
	})

	conn, err := tls.Dial("tcp", e.it.Addr().String(), &tls.Config{
		ServerName: testHost,
		RootCAs:    e.pki.pool, // trusts the genuine upstream CA, not the bump root
	})
	if err != nil {
		t.Fatalf("bypassed handshake: %v", err)
	}
	defer conn.Close()
	if !bytes.Equal(conn.ConnectionState().PeerCertificates[0].Raw, e.leafDER) {
		t.Fatal("bypassed client did not see the genuine upstream leaf")
	}
	echoRoundTrip(t, conn, "verbatim")

	sess := e.sessions.wait(t, "bypassed session", func(s interception.Session) bool { return s.Bypassed })
	if sess.Host != testHost {
		t.Fatalf("bypassed session host = %q, want %q", sess.Host, testHost)
	}
	if got := e.it.Stats().Bumped; got != 0 {
		t.Fatalf("Stats().Bumped = %d on a bypass-only run", got)
	}
}

// captureClientHello records the exact first-flight ClientHello bytes a
// real crypto/tls client would send for host.
func captureClientHello(t *testing.T, host string) []byte {
	t.Helper()
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go tls.Client(c1, &tls.Config{ServerName: host, InsecureSkipVerify: true}).Handshake() //nolint:errcheck // aborted by pipe close
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(c2, hdr); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, int(hdr[3])<<8|int(hdr[4]))
	if _, err := io.ReadFull(c2, payload); err != nil {
		t.Fatal(err)
	}
	return append(hdr, payload...)
}

// TestBypassVerbatimTranscript pins the strongest bypass property: the
// upstream receives byte-for-byte what the client sent (peeked ClientHello
// included), and the client receives byte-for-byte what the upstream
// wrote.
func TestBypassVerbatimTranscript(t *testing.T) {
	var (
		mu  sync.Mutex
		got []byte
	)
	reply := []byte("verbatim-reply-bytes")
	recorder := startRawUpstream(t, func(c net.Conn) {
		defer c.Close()
		b, _ := io.ReadAll(c)
		mu.Lock()
		got = b
		mu.Unlock()
		c.Write(reply) //nolint:errcheck // test upstream
	})
	e := newEnv(t, func(cfg *interception.Config) {
		cfg.Bypass = interception.NewBypassList(testHost)
		cfg.Target = recorder
	})

	sent := captureClientHello(t, testHost)
	sent = append(sent, []byte("pipelined-after-hello")...)

	conn, err := net.Dial("tcp", e.it.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(sent); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite() //nolint:errcheck // signal EOF to the splice
	back, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, reply) {
		t.Fatalf("client received %q, want %q", back, reply)
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(got, sent) {
		t.Fatalf("upstream transcript differs: got %d bytes, sent %d bytes", len(got), len(sent))
	}
}

// TestNonTLSPassThrough: traffic that does not look like TLS is spliced
// untouched in both directions.
func TestNonTLSPassThrough(t *testing.T) {
	echo := startRawUpstream(t, func(c net.Conn) {
		defer c.Close()
		io.Copy(c, c) //nolint:errcheck // echo until EOF
	})
	e := newEnv(t, func(cfg *interception.Config) { cfg.Target = echo })

	conn, err := net.Dial("tcp", e.it.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("GET / HTTP/1.0\r\n\r\n")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite() //nolint:errcheck // signal EOF to the splice
	back, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, msg) {
		t.Fatalf("pass-through echo = %q, want %q", back, msg)
	}
	e.sessions.wait(t, "non-TLS session", func(s interception.Session) bool { return s.NonTLS })
	if got := e.it.Stats().NonTLS; got != 1 {
		t.Fatalf("Stats().NonTLS = %d, want 1", got)
	}
}

// TestSessionResumption: once the upstream leg resumes (abbreviated
// handshake, no Certificate message on the wire), the bump decision still
// carries the correct dictionary identity — served from the interceptor's
// identity cache.
func TestSessionResumption(t *testing.T) {
	e := newEnv(t, nil)

	deadline := time.Now().Add(10 * time.Second)
	for attempt := 0; ; attempt++ {
		conn, err := e.dialBumped(t)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		// Exchange data so the splice pumps the upstream leg's
		// post-handshake NewSessionTicket messages into the session cache.
		echoRoundTrip(t, conn, "prime the ticket cache")
		conn.Close()

		var resumed *interception.Session
		e.sessions.mu.Lock()
		for i := range e.sessions.all {
			if e.sessions.all[i].Resumed {
				resumed = &e.sessions.all[i]
			}
		}
		e.sessions.mu.Unlock()
		if resumed != nil {
			if !resumed.IdentityFromCache {
				t.Fatal("resumed bump did not use the identity cache")
			}
			if resumed.CA != testCAID || !resumed.Serial.Equal(e.leafSN) {
				t.Fatalf("resumed identity = (%q, %v), want (%q, %v)", resumed.CA, resumed.Serial, testCAID, e.leafSN)
			}
			if resumed.StatusErr != nil {
				t.Fatalf("resumed status lookup failed: %v", resumed.StatusErr)
			}
			if e.it.Stats().Resumptions < 1 {
				t.Fatal("Stats().Resumptions = 0 after a resumed bump")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no resumed upstream handshake after %d attempts", attempt+1)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestConnectEntry: HTTP CONNECT entry reaches the same bump path, and the
// interceptor dials the address the client asked for.
func TestConnectEntry(t *testing.T) {
	var (
		mu     sync.Mutex
		dialed []string
	)
	var upstreamAddr string
	e := newEnv(t, func(cfg *interception.Config) {
		upstreamAddr = cfg.Target
		cfg.Target = "" // CONNECT-only deployment
		cfg.DialUpstream = func(addr string) (net.Conn, error) {
			mu.Lock()
			dialed = append(dialed, addr)
			mu.Unlock()
			return net.Dial("tcp", upstreamAddr)
		}
	})

	raw, err := net.Dial("tcp", e.it.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("CONNECT " + testHost + ":443 HTTP/1.1\r\nHost: " + testHost + ":443\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	status := make([]byte, len("HTTP/1.1 200 Connection Established\r\n\r\n"))
	if _, err := io.ReadFull(raw, status); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(status), " 200 ") {
		t.Fatalf("CONNECT response = %q", status)
	}

	conn := tls.Client(raw, &tls.Config{ServerName: testHost, RootCAs: e.mintPool})
	if err := conn.Handshake(); err != nil {
		t.Fatalf("bump over CONNECT: %v", err)
	}
	echoRoundTrip(t, conn, "tunnelled")

	sess := e.sessions.wait(t, "CONNECT session", func(s interception.Session) bool { return s.ConnectEntry })
	if sess.Host != testHost {
		t.Fatalf("CONNECT session host = %q, want %q", sess.Host, testHost)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dialed) == 0 || dialed[0] != testHost+":443" {
		t.Fatalf("interceptor dialed %v, want [%s:443]", dialed, testHost+":443")
	}
	if e.it.Stats().ConnectRequests < 1 {
		t.Fatal("Stats().ConnectRequests = 0 after a CONNECT entry")
	}
}

// TestStatusErrorDoesNotRefuse: an upstream leaf from a CA the RA does not
// replicate still bumps — the status lookup failure is surfaced on the
// session, and policy stays with the client, exactly as when no RA is on
// path.
func TestStatusErrorDoesNotRefuse(t *testing.T) {
	foreign := newUpstreamPKI(t, "UnknownCA")
	leafCert, _ := foreign.issue(t, testHost, 0x7777)
	addr := startTLSEcho(t, leafCert)
	e := newEnv(t, func(cfg *interception.Config) { cfg.Target = addr })

	conn, err := e.dialBumped(t)
	if err != nil {
		t.Fatalf("bump with unknown CA: %v", err)
	}
	defer conn.Close()
	echoRoundTrip(t, conn, "no status, still served")

	sess := e.sessions.wait(t, "status-error session", func(s interception.Session) bool {
		return !s.Bypassed && !s.NonTLS && s.Host == testHost
	})
	if sess.StatusErr == nil {
		t.Fatal("expected a status lookup error for an unreplicated CA")
	}
	if sess.Revoked {
		t.Fatal("status error must not refuse the connection")
	}
}
