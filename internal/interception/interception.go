// Package interception is the RA's real-TLS data plane: a crypto/tls
// terminating middlebox ("SSLBump" in squid/redwood terms) that puts the
// RITM revocation check on handshakes a real browser can complete, instead
// of the tlssim wire format the rest of the repository simulates with.
//
// For every accepted connection the interceptor peeks the first packet with
// its own bounds-checked record/ClientHello parser (clienthello.go) and
// decides:
//
//   - not TLS            → splice verbatim, peeked bytes replayed first
//     ("RAs are completely non-invasive for non-supported clients and
//     protocols other than TLS", §VII-F);
//   - bypassed SNI       → splice verbatim, same replay;
//   - otherwise          → bump: dial the upstream over real TLS, map its
//     leaf certificate to a (CA, serial) dictionary identity, drive
//     ra.Store.Status — the lock-free fast path every simulated handshake
//     already uses — and refuse revoked upstreams with a fatal
//     certificate_revoked alert before a single application byte flows.
//     Valid upstreams get a leaf minted under the local bump root
//     (mint.go) and the two TLS sessions are spliced.
//
// Both deployment entries of §IV are handled on one listener: transparent
// (the first bytes are a TLS record) and explicit HTTP CONNECT (the first
// bytes are an HTTP request line; connect.go).
//
// The interceptor never forges revocation statuses: it can only refuse or
// forward, and everything it serves to clients is minted under its own
// local root, which clients must have explicitly installed.
package interception

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// StatusSource produces revocation statuses for dictionary identities.
// *ra.Store implements it; the interceptor consults it on every bumped
// handshake (the "status-injected bump" the benchmarks measure).
type StatusSource interface {
	Status(ca dictionary.CAID, sn serial.Number) (*dictionary.Status, []byte, error)
}

// Config configures an Interceptor.
type Config struct {
	// Status is the revocation-status source (required): normally the RA's
	// dictionary store.
	Status StatusSource
	// Minter mints per-site leaves under the local bump root (required).
	Minter *Minter
	// Bypass, when non-nil, lists hosts that are never bumped: matching
	// connections are spliced verbatim (SSLBump bypass list).
	Bypass *BypassList
	// Target is the upstream address for transparent entry. CONNECT entry
	// dials the address the client requested instead. Empty is allowed for
	// CONNECT-only deployments; transparent connections are then refused.
	Target string
	// DialUpstream overrides the upstream TCP dial (tests inject failures
	// and in-process upstreams). Nil = net.Dial("tcp", addr).
	DialUpstream func(addr string) (net.Conn, error)
	// UpstreamTLS is the client-side TLS configuration for the bump's
	// upstream leg. Nil uses InsecureSkipVerify, the redwood default for a
	// middlebox that cannot know every deployment's trust store: chain
	// validation remains the end client's job against the minted chain, and
	// revocation — this system's contribution — is checked against the
	// RITM dictionary regardless. A session cache is installed either way
	// so repeat upstreams resume.
	UpstreamTLS *tls.Config
	// OnSession, when non-nil, receives the metadata of every connection
	// whose bump decision was reached: bumped (client handshake done),
	// bypassed, refused, or non-TLS. Connections that error out before a
	// decision (upstream unreachable, handshake failure) go to OnError
	// only.
	OnSession func(*Session)
	// OnError receives data-path errors the interceptor absorbs. Nil drops
	// them. Must be safe for concurrent use.
	OnError func(error)
	// HandshakeTimeout bounds the time from accept to bump decision
	// (ClientHello read + upstream dial + status check). 0 = 10s.
	HandshakeTimeout time.Duration
	// IdentityCacheCap bounds the host → upstream-identity cache used to
	// support resumed upstream handshakes (0 = 4096).
	IdentityCacheCap int
}

// Session is the per-connection outcome the interceptor exposes: what the
// bump decision was and, for bumped connections, the revocation-status
// metadata that backed it.
type Session struct {
	// Host is the SNI (or CONNECT target host) the decision was made for.
	Host string
	// ConnectEntry marks connections that arrived via HTTP CONNECT.
	ConnectEntry bool
	// NonTLS marks connections spliced because they did not look like TLS.
	NonTLS bool
	// Bypassed marks connections spliced because of a bypass-list hit (or
	// a ClientHello without SNI, which cannot be bumped meaningfully).
	Bypassed bool
	// Revoked marks connections refused with a certificate_revoked alert.
	Revoked bool
	// Resumed marks bumps whose upstream handshake was abbreviated (no
	// Certificate message crossed the upstream wire).
	Resumed bool
	// IdentityFromCache marks bumps whose (CA, serial) identity came from
	// the interceptor's identity cache rather than a certificate parsed
	// off the wire.
	IdentityFromCache bool
	// CA and Serial are the dictionary identity of the upstream leaf.
	CA     dictionary.CAID
	Serial serial.Number
	// StatusRootN is the dictionary version (signed root N) the status was
	// proved against; zero when no status was obtained.
	StatusRootN uint64
	// StatusErr records a failed status lookup (unknown CA, replica not
	// yet synchronized). The bump proceeded without revocation metadata —
	// the client's policy stays in charge, exactly as when no RA is on
	// path.
	StatusErr error
}

// RefusedError is the typed error recorded when a connection is refused
// because the upstream leaf is revoked in the RITM dictionary.
type RefusedError struct {
	Host   string
	CA     dictionary.CAID
	Serial serial.Number
}

func (e *RefusedError) Error() string {
	return fmt.Sprintf("interception: %s: upstream leaf %v revoked by %s; connection refused", e.Host, e.Serial, e.CA)
}

// Stats counts the interceptor's data-path activity.
type Stats struct {
	// Connections counts accepted connections.
	Connections int64
	// Bumped counts completed TLS bumps (client handshake finished).
	Bumped int64
	// Refused counts connections refused with a certificate_revoked alert.
	Refused int64
	// Bypassed counts verbatim splices due to bypass-list hits or missing SNI.
	Bypassed int64
	// NonTLS counts verbatim splices of traffic that did not look like TLS.
	NonTLS int64
	// ConnectRequests counts HTTP CONNECT entries.
	ConnectRequests int64
	// Resumptions counts bumps whose upstream handshake resumed.
	Resumptions int64
	// SpliceErrors counts non-benign errors surfaced while splicing.
	SpliceErrors int64
	// MintCacheHits / MintCacheMisses are the minter's LRU counters.
	MintCacheHits   int64
	MintCacheMisses int64
}

type interceptCounters struct {
	connections     atomic.Int64
	bumped          atomic.Int64
	refused         atomic.Int64
	bypassed        atomic.Int64
	nonTLS          atomic.Int64
	connectRequests atomic.Int64
	resumptions     atomic.Int64
	spliceErrors    atomic.Int64
}

// upstreamIdentity is what the interceptor remembers per host so that a
// resumed upstream handshake — no Certificate message on the wire — can
// still be mapped to a dictionary identity and a mintable leaf.
type upstreamIdentity struct {
	ca   dictionary.CAID
	sn   serial.Number
	leaf *x509.Certificate
}

// Interceptor is the real-TLS bump middlebox. Safe for concurrent use; one
// goroutine per connection direction, no shared locks on the splice path.
type Interceptor struct {
	cfg      Config
	ln       net.Listener
	upstream *tls.Config // template for the upstream leg, session cache installed

	idmu    sync.RWMutex
	idcache map[string]upstreamIdentity

	stats interceptCounters

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// DefaultHandshakeTimeout bounds accept-to-bump-decision when the Config
// leaves HandshakeTimeout zero.
const DefaultHandshakeTimeout = 10 * time.Second

const defaultIdentityCacheCap = 4096

// Listen starts an interceptor on addr. The returned interceptor is
// already accepting.
func Listen(addr string, cfg Config) (*Interceptor, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("interception: listen %s: %w", addr, err)
	}
	it, err := NewWithListener(ln, cfg)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return it, nil
}

// NewWithListener starts an interceptor on an existing listener (tests use
// in-memory listeners).
func NewWithListener(ln net.Listener, cfg Config) (*Interceptor, error) {
	if cfg.Status == nil {
		return nil, errors.New("interception: config missing Status source")
	}
	if cfg.Minter == nil {
		return nil, errors.New("interception: config missing Minter")
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if cfg.IdentityCacheCap <= 0 {
		cfg.IdentityCacheCap = defaultIdentityCacheCap
	}
	if cfg.DialUpstream == nil {
		cfg.DialUpstream = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	var upstream *tls.Config
	if cfg.UpstreamTLS != nil {
		upstream = cfg.UpstreamTLS.Clone()
	} else {
		upstream = &tls.Config{InsecureSkipVerify: true} //nolint:gosec // see Config.UpstreamTLS
	}
	if upstream.ClientSessionCache == nil {
		upstream.ClientSessionCache = tls.NewLRUClientSessionCache(0)
	}
	it := &Interceptor{
		cfg:      cfg,
		ln:       ln,
		upstream: upstream,
		idcache:  make(map[string]upstreamIdentity),
		conns:    make(map[net.Conn]struct{}),
	}
	it.wg.Add(1)
	go it.acceptLoop()
	return it, nil
}

// Addr returns the interceptor's listening address.
func (it *Interceptor) Addr() net.Addr { return it.ln.Addr() }

// Stats returns a copy of the interceptor's counters.
func (it *Interceptor) Stats() Stats {
	hits, misses := it.cfg.Minter.CacheStats()
	return Stats{
		Connections:     it.stats.connections.Load(),
		Bumped:          it.stats.bumped.Load(),
		Refused:         it.stats.refused.Load(),
		Bypassed:        it.stats.bypassed.Load(),
		NonTLS:          it.stats.nonTLS.Load(),
		ConnectRequests: it.stats.connectRequests.Load(),
		Resumptions:     it.stats.resumptions.Load(),
		SpliceErrors:    it.stats.spliceErrors.Load(),
		MintCacheHits:   int64(hits),
		MintCacheMisses: int64(misses),
	}
}

// Close stops accepting, closes active connections, and waits for all
// handlers to exit.
func (it *Interceptor) Close() error {
	it.mu.Lock()
	if it.closed {
		it.mu.Unlock()
		it.wg.Wait()
		return nil
	}
	it.closed = true
	err := it.ln.Close()
	for c := range it.conns {
		c.Close()
	}
	it.mu.Unlock()
	it.wg.Wait()
	return err
}

func (it *Interceptor) acceptLoop() {
	defer it.wg.Done()
	for {
		conn, err := it.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !it.track(conn) {
			conn.Close()
			return
		}
		it.wg.Add(1)
		go func() {
			defer it.wg.Done()
			defer it.untrack(conn)
			if err := it.handle(conn); err != nil {
				it.reportError(err)
			}
		}()
	}
}

func (it *Interceptor) track(c net.Conn) bool {
	it.mu.Lock()
	defer it.mu.Unlock()
	if it.closed {
		return false
	}
	it.conns[c] = struct{}{}
	return true
}

func (it *Interceptor) untrack(c net.Conn) {
	c.Close()
	it.mu.Lock()
	defer it.mu.Unlock()
	delete(it.conns, c)
}

func (it *Interceptor) reportError(err error) {
	if err == nil {
		return
	}
	if fn := it.cfg.OnError; fn != nil {
		fn(err)
	}
}

func (it *Interceptor) emitSession(s *Session) {
	if fn := it.cfg.OnSession; fn != nil {
		fn(s)
	}
}

// spliceError counts and reports one non-benign splice error.
func (it *Interceptor) spliceError(err error) {
	it.stats.spliceErrors.Add(1)
	it.reportError(err)
}

// handle runs one accepted connection to completion.
func (it *Interceptor) handle(client net.Conn) error {
	it.stats.connections.Add(1)
	deadline := time.Now().Add(it.cfg.HandshakeTimeout)
	client.SetReadDeadline(deadline) //nolint:errcheck // best effort; cleared before splicing

	sess := &Session{}
	target := it.cfg.Target

	// Entry sniff: a TLS record, an HTTP CONNECT preamble, or neither.
	pk := newPeeker(client)
	hdr, err := pk.peek(RecordHeaderLen)
	if err != nil {
		// Shorter-than-5-byte connections (or aborts) are still spliced:
		// whatever arrived is forwarded verbatim so the middlebox stays
		// invisible to protocols it does not understand.
		if len(hdr) == 0 {
			return nil
		}
		sess.NonTLS = true
		return it.spliceVerbatim(sess, client, pk.buffered(), target, deadline)
	}
	if looksLikeConnect(hdr) {
		host, hostport, cerr := readConnect(pk, client)
		if cerr != nil {
			return fmt.Errorf("interception: CONNECT entry: %w", cerr)
		}
		it.stats.connectRequests.Add(1)
		sess.ConnectEntry = true
		sess.Host = host
		target = hostport
		// The sniff restarts on the tunnel bytes; readConnect already
		// discarded the preamble, and anything the client pipelined after
		// it is still buffered.
		hdr, err = pk.peek(RecordHeaderLen)
		if err != nil {
			sess.NonTLS = true
			return it.spliceVerbatim(sess, client, pk.buffered(), target, deadline)
		}
	}

	if _, _, ok := ParseRecordHeader(hdr); !ok {
		sess.NonTLS = true
		return it.spliceVerbatim(sess, client, pk.buffered(), target, deadline)
	}

	_, hello, err := readClientHelloMessage(pk)
	if err != nil {
		// TLS-looking traffic we could not assemble a ClientHello from:
		// forward verbatim, the endpoints will sort it out.
		sess.NonTLS = true
		return it.spliceVerbatim(sess, client, pk.buffered(), target, deadline)
	}
	// Replay the peeker's whole buffer, not just the hello records: a read
	// can land hello + pipelined bytes in one chunk, and dropping the tail
	// would corrupt the stream.
	ch, err := ParseClientHello(hello)
	if err != nil || len(ch.ServerName) == 0 {
		// No SNI: nothing to mint a believable leaf for. Splice.
		sess.Bypassed = true
		return it.spliceVerbatim(sess, client, pk.buffered(), target, deadline)
	}
	host := string(ch.ServerName)
	if sess.Host == "" {
		sess.Host = host
	}
	if it.cfg.Bypass != nil && it.cfg.Bypass.MatchBytes(ch.ServerName) {
		sess.Bypassed = true
		return it.spliceVerbatim(sess, client, pk.buffered(), target, deadline)
	}
	return it.bump(sess, client, pk.buffered(), host, target, deadline)
}

// spliceVerbatim forwards the connection untouched: the peeked bytes are
// replayed to the upstream first, then both directions are copied on the
// raw TCP conns (io.Copy splices in-kernel on Linux when both ends are
// *net.TCPConn).
func (it *Interceptor) spliceVerbatim(sess *Session, client net.Conn, peeked []byte, target string, deadline time.Time) error {
	if sess.NonTLS {
		it.stats.nonTLS.Add(1)
	} else {
		it.stats.bypassed.Add(1)
	}
	it.emitSession(sess)
	if target == "" {
		return errors.New("interception: transparent connection with no Target configured")
	}
	upstream, err := it.dialRaw(target, deadline)
	if err != nil {
		return err
	}
	defer it.untrack(upstream)
	if len(peeked) > 0 {
		if _, err := upstream.Write(peeked); err != nil {
			return fmt.Errorf("interception: replay peeked bytes: %w", err)
		}
	}
	client.SetReadDeadline(time.Time{}) //nolint:errcheck // splice runs unbounded
	upstream.SetDeadline(time.Time{})   //nolint:errcheck // splice runs unbounded
	splice(client, upstream, it.spliceError)
	return nil
}

// dialRaw dials the upstream TCP leg and tracks the conn for Close.
func (it *Interceptor) dialRaw(addr string, deadline time.Time) (net.Conn, error) {
	upstream, err := it.cfg.DialUpstream(addr)
	if err != nil {
		return nil, fmt.Errorf("interception: dial upstream %s: %w", addr, err)
	}
	if !it.track(upstream) {
		upstream.Close()
		return nil, net.ErrClosed
	}
	upstream.SetDeadline(deadline) //nolint:errcheck // cleared before splicing
	return upstream, nil
}

// bump terminates the client's TLS with a minted leaf after checking the
// upstream's revocation status against the RITM dictionary.
func (it *Interceptor) bump(sess *Session, client net.Conn, rawHello []byte, host, target string, deadline time.Time) error {
	if target == "" {
		return errors.New("interception: transparent connection with no Target configured")
	}
	rawUp, err := it.dialRaw(target, deadline)
	if err != nil {
		return err
	}
	defer it.untrack(rawUp)

	upCfg := it.upstream.Clone()
	upCfg.ServerName = host
	upstream := tls.Client(rawUp, upCfg)
	if err := upstream.Handshake(); err != nil {
		return fmt.Errorf("interception: upstream handshake %s: %w", host, err)
	}
	cs := upstream.ConnectionState()
	sess.Resumed = cs.DidResume
	if cs.DidResume {
		it.stats.resumptions.Add(1)
	}

	// Resolve the upstream's dictionary identity: from the wire when a
	// certificate crossed it, from the identity cache on abbreviated
	// handshakes (the §III resumption support, on real TLS).
	id, fromCache, err := it.resolveIdentity(host, &cs)
	if err != nil {
		return fmt.Errorf("interception: %s: %w", host, err)
	}
	sess.IdentityFromCache = fromCache
	sess.CA, sess.Serial = id.ca, id.sn

	// The bump decision: ra.Store.Status on a real handshake.
	st, _, serr := it.cfg.Status.Status(id.ca, id.sn)
	switch {
	case serr != nil:
		// Unknown CA or unsynchronized replica: bump without status
		// metadata, the client's policy stays in charge (§VII-F).
		sess.StatusErr = serr
	case st.Proof != nil && st.Proof.Kind == dictionary.ProofPresence:
		// Revoked: refuse before any application byte flows.
		sess.Revoked = true
		if st.Root != nil {
			sess.StatusRootN = st.Root.N
		}
		it.stats.refused.Add(1)
		it.emitSession(sess)
		writeAlert(client, alertCertificateRevoked) //nolint:errcheck // refusal is best-effort
		return &RefusedError{Host: host, CA: id.ca, Serial: id.sn}
	default:
		if st.Root != nil {
			sess.StatusRootN = st.Root.N
		}
	}

	minted, err := it.cfg.Minter.CertFor(host, id.leaf)
	if err != nil {
		return fmt.Errorf("interception: mint for %s: %w", host, err)
	}
	down := tls.Server(newReplayConn(client, rawHello), &tls.Config{
		MinVersion: tls.VersionTLS12,
		GetCertificate: func(*tls.ClientHelloInfo) (*tls.Certificate, error) {
			return minted, nil
		},
	})
	if err := down.Handshake(); err != nil {
		return fmt.Errorf("interception: client handshake %s: %w", host, err)
	}
	it.stats.bumped.Add(1)
	it.emitSession(sess)

	client.SetReadDeadline(time.Time{}) //nolint:errcheck // splice runs unbounded
	rawUp.SetDeadline(time.Time{})      //nolint:errcheck // splice runs unbounded
	splice(down, upstream, it.spliceError)
	return nil
}

// resolveIdentity maps the upstream handshake to a dictionary identity,
// caching per host so resumed handshakes keep working.
func (it *Interceptor) resolveIdentity(host string, cs *tls.ConnectionState) (upstreamIdentity, bool, error) {
	// Prefer the cache on abbreviated handshakes: no Certificate message
	// crossed the wire, so the cached identity is the honest provenance
	// even when the TLS stack restored the peer chain from its own cache.
	if cs.DidResume {
		it.idmu.RLock()
		id, ok := it.idcache[host]
		it.idmu.RUnlock()
		if ok {
			return id, true, nil
		}
	}
	if len(cs.PeerCertificates) > 0 {
		leaf := cs.PeerCertificates[0]
		ca, sn, err := IdentityFromX509(leaf)
		if err != nil {
			return upstreamIdentity{}, false, err
		}
		id := upstreamIdentity{ca: ca, sn: sn, leaf: leaf}
		it.idmu.Lock()
		if len(it.idcache) >= it.cfg.IdentityCacheCap {
			for k := range it.idcache { // cap guard; eviction order does not matter
				delete(it.idcache, k)
				break
			}
		}
		it.idcache[host] = id
		it.idmu.Unlock()
		return id, cs.DidResume, nil
	}
	return upstreamIdentity{}, false, errors.New("upstream presented no certificate and no cached identity")
}

// IdentityFromX509 maps a real X.509 leaf to its RITM dictionary identity:
// the issuing CA's common name selects the dictionary, the RFC 5280 serial
// (minimal big-endian, exactly the dictionary's canonical form) is the key.
func IdentityFromX509(leaf *x509.Certificate) (dictionary.CAID, serial.Number, error) {
	ca := dictionary.CAID(leaf.Issuer.CommonName)
	if ca == "" {
		return "", serial.Number{}, errors.New("interception: upstream leaf has no issuer common name")
	}
	if leaf.SerialNumber == nil || leaf.SerialNumber.Sign() < 0 {
		return "", serial.Number{}, errors.New("interception: upstream leaf has no usable serial")
	}
	b := leaf.SerialNumber.Bytes() // minimal big-endian; empty for zero
	if len(b) == 0 {
		b = []byte{0}
	}
	sn, err := serial.New(b)
	if err != nil {
		return "", serial.Number{}, fmt.Errorf("interception: upstream serial: %w", err)
	}
	return ca, sn, nil
}

// SerialFromBig converts a math/big serial (as x509 templates carry) to the
// dictionary's canonical form; the inverse direction of IdentityFromX509,
// used by tests and deployments registering real certificates with a CA.
func SerialFromBig(v *big.Int) (serial.Number, error) {
	if v == nil || v.Sign() < 0 {
		return serial.Number{}, errors.New("interception: negative or nil serial")
	}
	b := v.Bytes()
	if len(b) == 0 {
		b = []byte{0}
	}
	return serial.New(b)
}
