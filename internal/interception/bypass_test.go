package interception

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBypassListForms(t *testing.T) {
	b := NewBypassList("Example.com", ".suffix.net", "*.wild.org", "  spaced.io  ", "", ".")
	cases := []struct {
		host string
		want bool
	}{
		{"example.com", true},
		{"EXAMPLE.COM", true},
		{"www.example.com", false}, // exact entries do not match subdomains
		{"suffix.net", true},       // '.'-entries match the bare domain…
		{"a.suffix.net", true},     // …and every subdomain
		{"deep.a.suffix.net", true},
		{"notsuffix.net", false}, // no partial-label matches
		{"wild.org", true},       // '*.x' normalizes to '.x'
		{"cdn.wild.org", true},
		{"spaced.io", true},
		{"", false},
		{"unrelated.test", false},
	}
	for _, tc := range cases {
		if got := b.Match(tc.host); got != tc.want {
			t.Errorf("Match(%q) = %v, want %v", tc.host, got, tc.want)
		}
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (empty entries dropped)", b.Len())
	}
}

func TestLoadBypassFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bypass.txt")
	content := "# full-line comment\n\nbank.example   # pinned app\n.intra.corp\n*.mtls.example\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBypassFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, host := range []string{"bank.example", "intra.corp", "x.intra.corp", "a.mtls.example"} {
		if !b.Match(host) {
			t.Errorf("Match(%q) = false after load", host)
		}
	}
	if b.Match("comment") || b.Match("pinned") {
		t.Fatal("comment text leaked into the list")
	}
	if _, err := LoadBypassFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file did not error")
	}
}
