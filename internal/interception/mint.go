package interception

import (
	"container/list"
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/binary"
	"encoding/hex"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Certificate minting: the interceptor presents clients a leaf for the
// intercepted site, signed by a local root the client has explicitly
// installed. The minted leaf's identity fields (serial, SANs, validity) are
// derived deterministically from the upstream leaf, so a site keeps the
// same minted identity until its real certificate changes — and so the
// derivation is testable byte-for-byte (golden tests).

// KeyAlg selects the minting root's key algorithm.
type KeyAlg int

// Supported root key algorithms. The per-site leaf key is always ECDSA
// P-256: leaves are minted on demand and EC keygen is ~3 orders of
// magnitude cheaper than RSA.
const (
	// KeyECDSA uses an ECDSA P-256 root key (default).
	KeyECDSA KeyAlg = iota
	// KeyRSA uses an RSA 2048 root key, for clients that cannot chain to
	// an EC root.
	KeyRSA
)

// MintingRoot is the local CA the interceptor mints under: a self-signed
// root certificate, its private key, and the shared per-site leaf key.
type MintingRoot struct {
	cert    *x509.Certificate
	certDER []byte
	key     crypto.Signer
	leafKey crypto.Signer
	// id is a digest of the root certificate; it prefixes every mint-cache
	// key, so rotating the root implicitly invalidates all cached mints.
	id [8]byte
}

// NewMintingRoot generates a fresh self-signed minting root valid for ten
// years.
func NewMintingRoot(commonName string, alg KeyAlg) (*MintingRoot, error) {
	var (
		key crypto.Signer
		err error
	)
	switch alg {
	case KeyECDSA:
		key, err = ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	case KeyRSA:
		key, err = rsa.GenerateKey(rand.Reader, 2048)
	default:
		return nil, fmt.Errorf("interception: unknown key algorithm %d", alg)
	}
	if err != nil {
		return nil, fmt.Errorf("interception: generate root key: %w", err)
	}
	serialLimit := new(big.Int).Lsh(big.NewInt(1), 128)
	sn, err := rand.Int(rand.Reader, serialLimit)
	if err != nil {
		return nil, fmt.Errorf("interception: root serial: %w", err)
	}
	now := time.Now()
	tmpl := &x509.Certificate{
		SerialNumber:          sn,
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{"RITM interception"}},
		NotBefore:             now.Add(-time.Hour),
		NotAfter:              now.AddDate(10, 0, 0),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
		MaxPathLen:            0,
		MaxPathLenZero:        true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, key.Public(), key)
	if err != nil {
		return nil, fmt.Errorf("interception: self-sign root: %w", err)
	}
	return newMintingRootFrom(der, key)
}

func newMintingRootFrom(der []byte, key crypto.Signer) (*MintingRoot, error) {
	parsed, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("interception: parse root: %w", err)
	}
	leafKey, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("interception: generate leaf key: %w", err)
	}
	r := &MintingRoot{cert: parsed, certDER: der, key: key, leafKey: leafKey}
	sum := sha256.Sum256(der)
	copy(r.id[:], sum[:])
	return r, nil
}

// Certificate returns the root certificate clients must install.
func (r *MintingRoot) Certificate() *x509.Certificate { return r.cert }

// DER returns the root certificate's DER encoding (serve it at a
// /cert.der-style install endpoint).
func (r *MintingRoot) DER() []byte { return r.certDER }

// CertPEM returns the root certificate as PEM, for trust-store install.
func (r *MintingRoot) CertPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: r.certDER})
}

// LoadOrCreateMintingRoot loads a minting root from a PEM file holding a
// CERTIFICATE and a PRIVATE KEY block, generating (alg-keyed) and writing
// one if the file does not exist. This is what `ritm-ra -bump-root` points
// at: the root survives restarts, so clients install it once.
func LoadOrCreateMintingRoot(path, commonName string, alg KeyAlg) (*MintingRoot, error) {
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		return parseRootPEM(data)
	case errors.Is(err, os.ErrNotExist):
		root, err := NewMintingRoot(commonName, alg)
		if err != nil {
			return nil, err
		}
		keyDER, err := x509.MarshalPKCS8PrivateKey(root.key)
		if err != nil {
			return nil, fmt.Errorf("interception: marshal root key: %w", err)
		}
		out := append(root.CertPEM(), pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: keyDER})...)
		if err := os.WriteFile(path, out, 0o600); err != nil {
			return nil, fmt.Errorf("interception: write %s: %w", path, err)
		}
		return root, nil
	default:
		return nil, fmt.Errorf("interception: read %s: %w", path, err)
	}
}

func parseRootPEM(data []byte) (*MintingRoot, error) {
	var certDER []byte
	var key crypto.Signer
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			break
		}
		switch block.Type {
		case "CERTIFICATE":
			certDER = block.Bytes
		case "PRIVATE KEY":
			k, err := x509.ParsePKCS8PrivateKey(block.Bytes)
			if err != nil {
				return nil, fmt.Errorf("interception: parse root key: %w", err)
			}
			signer, ok := k.(crypto.Signer)
			if !ok {
				return nil, fmt.Errorf("interception: root key %T cannot sign", k)
			}
			key = signer
		case "EC PRIVATE KEY":
			k, err := x509.ParseECPrivateKey(block.Bytes)
			if err != nil {
				return nil, fmt.Errorf("interception: parse EC root key: %w", err)
			}
			key = k
		case "RSA PRIVATE KEY":
			k, err := x509.ParsePKCS1PrivateKey(block.Bytes)
			if err != nil {
				return nil, fmt.Errorf("interception: parse RSA root key: %w", err)
			}
			key = k
		}
	}
	if certDER == nil || key == nil {
		return nil, errors.New("interception: bump-root PEM must hold a CERTIFICATE and a PRIVATE KEY block")
	}
	return newMintingRootFrom(certDER, key)
}

// DefaultMintCacheCap bounds the minted-leaf LRU when the Minter is built
// with cap 0.
const DefaultMintCacheCap = 1024

// Minter mints per-site leaves under a MintingRoot, memoized in an LRU
// keyed by (root, host, upstream identity) with singleflight so N
// concurrent first hits on one site mint exactly once.
type Minter struct {
	mu    sync.Mutex
	root  *MintingRoot
	cap   int
	lru   *list.List // of *mintEntry, front = most recent
	cache map[string]*list.Element
	calls map[string]*mintCall

	hits   atomic.Uint64
	misses atomic.Uint64
}

type mintEntry struct {
	key  string
	cert *tls.Certificate
}

type mintCall struct {
	done chan struct{}
	cert *tls.Certificate
	err  error
}

// NewMinter creates a minter over root with an LRU of cacheCap minted
// leaves (0 = DefaultMintCacheCap).
func NewMinter(root *MintingRoot, cacheCap int) *Minter {
	if cacheCap <= 0 {
		cacheCap = DefaultMintCacheCap
	}
	return &Minter{
		root:  root,
		cap:   cacheCap,
		lru:   list.New(),
		cache: make(map[string]*list.Element),
		calls: make(map[string]*mintCall),
	}
}

// Root returns the current minting root.
func (m *Minter) Root() *MintingRoot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.root
}

// SetRoot rotates the minting root: every cached mint is dropped (their
// keys embed the old root's digest, so they could never be served again
// anyway) and subsequent mints chain to the new root.
func (m *Minter) SetRoot(root *MintingRoot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.root = root
	m.lru.Init()
	m.cache = make(map[string]*list.Element)
}

// CacheStats returns the mint cache's hit and miss counts.
func (m *Minter) CacheStats() (hits, misses uint64) {
	return m.hits.Load(), m.misses.Load()
}

// cacheKey identifies one mintable leaf: root epoch, host, and the fields
// of the upstream leaf the mint derives from — a renewed upstream
// certificate (new serial or validity) re-mints.
func cacheKey(root *MintingRoot, host string, upstream *x509.Certificate) string {
	return hex.EncodeToString(root.id[:]) + "|" + host + "|" +
		upstream.SerialNumber.Text(16) + "|" + upstream.NotAfter.UTC().Format(time.RFC3339)
}

// CertFor returns the minted leaf for host, derived from the upstream
// leaf. Cache hits return the identical *tls.Certificate (and therefore
// byte-identical DER); concurrent misses for one key coalesce into a
// single mint.
func (m *Minter) CertFor(host string, upstream *x509.Certificate) (*tls.Certificate, error) {
	if upstream == nil {
		return nil, errors.New("interception: mint: nil upstream leaf")
	}
	m.mu.Lock()
	root := m.root
	key := cacheKey(root, host, upstream)
	if el, ok := m.cache[key]; ok {
		m.lru.MoveToFront(el)
		m.mu.Unlock()
		m.hits.Add(1)
		return el.Value.(*mintEntry).cert, nil
	}
	if c, ok := m.calls[key]; ok {
		m.mu.Unlock()
		<-c.done
		// Coalesced callers count as hits: one mint served them all.
		m.hits.Add(1)
		return c.cert, c.err
	}
	c := &mintCall{done: make(chan struct{})}
	m.calls[key] = c
	m.mu.Unlock()
	m.misses.Add(1)

	c.cert, c.err = mintLeaf(root, host, upstream)
	close(c.done)

	m.mu.Lock()
	delete(m.calls, key)
	if c.err == nil && m.root == root { // a concurrent SetRoot wins
		el := m.lru.PushFront(&mintEntry{key: key, cert: c.cert})
		m.cache[key] = el
		if m.lru.Len() > m.cap {
			oldest := m.lru.Back()
			m.lru.Remove(oldest)
			delete(m.cache, oldest.Value.(*mintEntry).key)
		}
	}
	m.mu.Unlock()
	return c.cert, c.err
}

// MintTemplate derives the minted leaf's identity fields from the upstream
// leaf — exported so the golden tests pin the derivation itself, not just
// its output:
//
//   - serial: SHA-256 over (root digest ‖ host ‖ upstream serial ‖
//     upstream NotAfter), truncated to 16 bytes, top bit cleared — unique
//     per (root, site, upstream cert) and stable until any of them change;
//   - SANs: host plus the upstream's DNS names and IPs, deduplicated and
//     sorted (host first);
//   - validity: the upstream's window clamped into the root's (a client
//     must never see a minted leaf outliving either).
func MintTemplate(root *MintingRoot, host string, upstream *x509.Certificate) *x509.Certificate {
	h := sha256.New()
	h.Write(root.id[:])
	h.Write([]byte(host))
	h.Write(upstream.SerialNumber.Bytes())
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(upstream.NotAfter.Unix()))
	h.Write(ts[:])
	digest := h.Sum(nil)[:16]
	digest[0] &= 0x7f
	sn := new(big.Int).SetBytes(digest)
	if sn.Sign() == 0 {
		sn.SetInt64(1)
	}

	dns := []string{}
	if host != "" && net.ParseIP(host) == nil {
		dns = append(dns, host)
	}
	rest := append([]string(nil), upstream.DNSNames...)
	sort.Strings(rest)
	prev := ""
	for _, n := range rest {
		if n == prev || (len(dns) > 0 && n == dns[0]) {
			continue // duplicate within the sorted names, or the host again
		}
		dns = append(dns, n)
		prev = n
	}
	ips := append([]net.IP(nil), upstream.IPAddresses...)
	if ip := net.ParseIP(host); ip != nil {
		ips = append(ips, ip)
	}

	notBefore := upstream.NotBefore
	if notBefore.Before(root.cert.NotBefore) {
		notBefore = root.cert.NotBefore
	}
	notAfter := upstream.NotAfter
	if notAfter.After(root.cert.NotAfter) {
		notAfter = root.cert.NotAfter
	}

	cn := host
	if cn == "" {
		cn = upstream.Subject.CommonName
	}
	return &x509.Certificate{
		SerialNumber: sn,
		Subject:      pkix.Name{CommonName: cn},
		DNSNames:     dns,
		IPAddresses:  ips,
		NotBefore:    notBefore,
		NotAfter:     notAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
}

// mintLeaf signs the derived template under the root.
func mintLeaf(root *MintingRoot, host string, upstream *x509.Certificate) (*tls.Certificate, error) {
	tmpl := MintTemplate(root, host, upstream)
	der, err := x509.CreateCertificate(rand.Reader, tmpl, root.cert, root.leafKey.Public(), root.key)
	if err != nil {
		return nil, fmt.Errorf("interception: sign minted leaf for %s: %w", host, err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("interception: re-parse minted leaf: %w", err)
	}
	return &tls.Certificate{
		Certificate: [][]byte{der, root.certDER},
		PrivateKey:  root.leafKey,
		Leaf:        leaf,
	}, nil
}
