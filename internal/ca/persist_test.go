package ca

import (
	"sync"
	"testing"
	"time"

	"ritm/internal/cdn"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/storage"
)

// TestCAWarmStartExactRoot: a CA restarted over its durable log resumes
// with the exact signed root and freshness chain it crashed with — the
// dissemination tier sees no regression at all (re-publishing the root is
// a verified no-op, statements continue seamlessly).
func TestCAWarmStartExactRoot(t *testing.T) {
	caBackend := storage.NewMemory()
	dpBackend := storage.NewMemory()
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	layout := dictionary.LayoutForestWithCap(64)

	dp1 := cdn.NewDistributionPointWithStorage(nil, dpBackend, 0)
	cfg := Config{ID: "CA1", Delta: 10 * time.Second, Signer: signer, Storage: caBackend,
		Layout: layout, Publisher: dp1}
	ca1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dp1.RegisterCAWithLayout("CA1", ca1.PublicKey(), layout); err != nil {
		t.Fatal(err)
	}
	if err := ca1.PublishRoot(); err != nil {
		t.Fatal(err)
	}
	gen := serial.NewGenerator(3, nil)
	for i := 0; i < 5; i++ {
		if _, err := ca1.Revoke(gen.NextN(40)...); err != nil {
			t.Fatal(err)
		}
	}
	wantRoot := ca1.Authority().SignedRoot()
	now := time.Now().Unix()
	wantStmt, err := ca1.Authority().Statement(now + 15)
	if err != nil {
		t.Fatal(err)
	}
	// Crash the whole origin process: CA and distribution point together,
	// as ritm-ca runs them.
	if err := ca1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dp1.Close(); err != nil {
		t.Fatal(err)
	}

	dp2 := cdn.NewDistributionPointWithStorage(nil, dpBackend, 0)
	cfg.Publisher = dp2
	ca2, err := New(cfg)
	if err != nil {
		t.Fatalf("warm start: %v", err)
	}
	defer ca2.Close()
	if err := dp2.RegisterCAWithLayout("CA1", ca2.PublicKey(), layout); err != nil {
		t.Fatal(err)
	}
	if got := ca2.Authority().SignedRoot(); !got.Equal(wantRoot) {
		t.Fatal("restarted CA signs a different root")
	}
	gotStmt, err := ca2.Authority().Statement(now + 15)
	if err != nil {
		t.Fatal(err)
	}
	if !gotStmt.Value.Equal(wantStmt.Value) {
		t.Fatal("restarted CA produces different freshness statements")
	}
	// The boot-time root publication is a verified no-op against the
	// recovered distribution point (it already holds that exact root), and
	// new revocations continue the same history seamlessly.
	if err := ca2.PublishRoot(); err != nil {
		t.Fatal(err)
	}
	if _, err := ca2.Revoke(gen.NextN(3)...); err != nil {
		t.Fatalf("post-restart revoke: %v", err)
	}
	root, err := dp2.LatestRoot("CA1")
	if err != nil {
		t.Fatal(err)
	}
	if root.N != 203 {
		t.Fatalf("origin root covers %d revocations, want 203", root.N)
	}
}

// TestCAWarmStartWrongKeyFailsLoudly: restoring under a different signing
// key than the persisted history was signed with must fail, not silently
// fork the CA's identity.
func TestCAWarmStartWrongKeyFailsLoudly(t *testing.T) {
	backend := storage.NewMemory()
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	ca1, err := New(Config{ID: "CA1", Delta: 10 * time.Second, Signer: signer, Storage: backend})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca1.Revoke(serial.NewGenerator(1, nil).NextN(5)...); err != nil {
		t.Fatal(err)
	}
	ca1.Close()

	other, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{ID: "CA1", Delta: 10 * time.Second, Signer: other, Storage: backend}); err == nil {
		t.Fatal("warm start under a different signing key did not fail")
	}
}

// TestCAConcurrentRevokePersistsInOrder hammers Revoke from many
// goroutines against a durable CA: the WAL must record batches in
// insertion order, each paired with its own chain seed — any interleaving
// would make the store unrecoverable, which the restart at the end would
// catch. Run under -race.
func TestCAConcurrentRevokePersistsInOrder(t *testing.T) {
	backend := storage.NewMemory()
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{ID: "CA1", Delta: 10 * time.Second, Signer: signer, Storage: backend, CheckpointEvery: 5}
	ca1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			gen := serial.NewGenerator(seed, nil)
			for i := 0; i < perWorker; i++ {
				if _, err := ca1.Revoke(gen.NextN(3)...); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(100 + w))
	}
	wg.Wait()
	want := ca1.Authority().SignedRoot()
	ca1.Close()

	ca2, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery after concurrent revocations: %v", err)
	}
	defer ca2.Close()
	if got := ca2.Authority().Count(); got != workers*perWorker*3 {
		t.Fatalf("recovered count = %d, want %d", got, workers*perWorker*3)
	}
	if !ca2.Authority().SignedRoot().Equal(want) {
		t.Fatal("recovered root differs after concurrent revocations")
	}
}

// TestCAWarmStartAcrossCheckpoints drives enough batches through a tight
// checkpoint cadence that recovery exercises checkpoint + WAL-suffix
// replay rather than a WAL-only path.
func TestCAWarmStartAcrossCheckpoints(t *testing.T) {
	backend := storage.NewMemory()
	signer, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{ID: "CA1", Delta: 10 * time.Second, Signer: signer, Storage: backend, CheckpointEvery: 3}
	ca1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := serial.NewGenerator(9, nil)
	for i := 0; i < 10; i++ { // 3 checkpoints + 1 trailing WAL record
		if _, err := ca1.Revoke(gen.NextN(7)...); err != nil {
			t.Fatal(err)
		}
	}
	want := ca1.Authority().SignedRoot()
	ca1.Close()

	ca2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ca2.Close()
	if got := ca2.Authority().SignedRoot(); !got.Equal(want) {
		t.Fatal("restart across checkpoints lost state")
	}
	if ca2.Authority().Count() != 70 {
		t.Fatalf("count = %d, want 70", ca2.Authority().Count())
	}
}
