package ca

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// capturePublisher records everything a CA publishes.
type capturePublisher struct {
	mu        sync.Mutex
	issuances []*dictionary.IssuanceMessage
	freshness []*dictionary.FreshnessStatement
	failWith  error
}

func (p *capturePublisher) PublishIssuance(msg *dictionary.IssuanceMessage) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failWith != nil {
		return p.failWith
	}
	p.issuances = append(p.issuances, msg)
	return nil
}

func (p *capturePublisher) PublishFreshness(st *dictionary.FreshnessStatement) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failWith != nil {
		return p.failWith
	}
	p.freshness = append(p.freshness, st)
	return nil
}

func (p *capturePublisher) counts() (int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.issuances), len(p.freshness)
}

func newTestCA(t *testing.T, pub Publisher) *CA {
	t.Helper()
	c, err := New(Config{ID: "TestCA", Delta: 10 * time.Second, Publisher: pub})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("CA without ID accepted")
	}
	// Defaults are applied.
	c, err := New(Config{ID: "X"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Delta() != 10*time.Second {
		t.Errorf("default ∆ = %v", c.Delta())
	}
}

func TestRootCertificateSelfSigned(t *testing.T) {
	c := newTestCA(t, nil)
	root := c.RootCertificate()
	if !root.IsCA {
		t.Error("root is not a CA certificate")
	}
	if err := root.CheckSignature(root.PublicKey); err != nil {
		t.Errorf("root not self-signed: %v", err)
	}
	if root.Delta() != 10*time.Second {
		t.Errorf("root ∆ = %v (the §VIII local-∆ field)", root.Delta())
	}
}

func TestIssueServerCertificate(t *testing.T) {
	c := newTestCA(t, nil)
	key := c.PublicKey() // any 32-byte key works as a subject key
	crt, err := c.IssueServerCertificate("site.example", key)
	if err != nil {
		t.Fatal(err)
	}
	if crt.Subject != "site.example" || crt.IsCA {
		t.Errorf("issued certificate: %+v", crt)
	}
	if err := crt.CheckSignature(c.PublicKey()); err != nil {
		t.Errorf("issued certificate signature: %v", err)
	}
	// Serials are unique across issuance.
	crt2, err := c.IssueServerCertificate("other.example", key)
	if err != nil {
		t.Fatal(err)
	}
	if crt.SerialNumber.Equal(crt2.SerialNumber) {
		t.Error("duplicate serial issued")
	}
}

func TestRevokePublishesAndMarks(t *testing.T) {
	pub := &capturePublisher{}
	c := newTestCA(t, pub)
	crt, err := c.IssueServerCertificate("site.example", c.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if c.IsRevoked(crt.SerialNumber) {
		t.Fatal("fresh certificate already revoked")
	}
	msg, err := c.RevokeCertificate(crt)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsRevoked(crt.SerialNumber) {
		t.Error("revocation not recorded")
	}
	if msg.Root.N != 1 || len(msg.Serials) != 1 {
		t.Errorf("issuance message: n=%d, %d serials", msg.Root.N, len(msg.Serials))
	}
	if ni, _ := pub.counts(); ni != 1 {
		t.Errorf("issuances published = %d", ni)
	}

	// Double revocation fails and publisher errors surface.
	if _, err := c.Revoke(crt.SerialNumber); err == nil {
		t.Error("double revocation accepted")
	}
	pub.failWith = errors.New("cdn down")
	if _, err := c.Revoke(serial.FromUint64(42)); err == nil {
		t.Error("publisher failure swallowed")
	}
}

func TestPublishRefreshEmitsFreshness(t *testing.T) {
	pub := &capturePublisher{}
	c := newTestCA(t, pub)
	if err := c.PublishRoot(); err != nil {
		t.Fatal(err)
	}
	if err := c.PublishRefresh(); err != nil {
		t.Fatal(err)
	}
	ni, nf := pub.counts()
	if ni != 1 || nf != 1 {
		t.Errorf("published %d issuances, %d freshness; want 1 and 1", ni, nf)
	}
}

func TestRefresherLoop(t *testing.T) {
	pub := &capturePublisher{}
	c, err := New(Config{ID: "TestCA", Delta: time.Second, Publisher: pub})
	if err != nil {
		t.Fatal(err)
	}
	r := c.StartRefresherEvery(100*time.Millisecond, func(err error) { t.Errorf("refresh: %v", err) })
	time.Sleep(350 * time.Millisecond)
	r.Shutdown()
	if _, nf := pub.counts(); nf < 2 {
		t.Errorf("refresher published %d statements, want ≥ 2", nf)
	}
}

func TestRefreshRotatesExhaustedChain(t *testing.T) {
	clock := time.Unix(1_400_000_000, 0)
	now := func() time.Time { return clock }
	pub := &capturePublisher{}
	c, err := New(Config{
		ID:          "TestCA",
		Delta:       time.Second,
		ChainLength: 4,
		Publisher:   pub,
		Now:         now,
	})
	if err != nil {
		t.Fatal(err)
	}
	oldRoot := c.Authority().SignedRoot()

	// Step past the chain's end: refresh must publish a rotated root.
	clock = clock.Add(10 * time.Second)
	if err := c.PublishRefresh(); err != nil {
		t.Fatal(err)
	}
	newRoot := c.Authority().SignedRoot()
	if newRoot.Equal(oldRoot) {
		t.Error("exhausted chain did not rotate the root")
	}
	if ni, nf := pub.counts(); ni != 1 || nf != 1 {
		t.Errorf("rotation published %d issuances, %d freshness", ni, nf)
	}
}

func TestForkSharesIdentityDivergesContent(t *testing.T) {
	c := newTestCA(t, nil)
	fork, err := c.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if fork.ID() != c.ID() {
		t.Error("fork changed identity")
	}
	gen := serial.NewGenerator(1, nil)
	if _, err := c.Revoke(gen.Next()); err != nil {
		t.Fatal(err)
	}
	if _, err := fork.Revoke(gen.Next()); err != nil {
		t.Fatal(err)
	}
	a, b := c.Authority().SignedRoot(), fork.Authority().SignedRoot()
	if a.N != b.N {
		t.Fatalf("sizes diverged: %d vs %d", a.N, b.N)
	}
	if a.Root.Equal(b.Root) {
		t.Error("fork produced identical dictionaries for different serials")
	}
	// Both roots verify under the same key — the equivocation signature.
	if err := a.VerifySignature(c.PublicKey()); err != nil {
		t.Error(err)
	}
	if err := b.VerifySignature(c.PublicKey()); err != nil {
		t.Error(err)
	}
}
