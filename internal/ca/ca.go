// Package ca implements RITM's certification authority: it issues
// certificates, maintains the CA's authenticated revocation dictionary, and
// feeds the dissemination network with revocation issuance messages and
// per-∆ freshness statements (§III).
//
// The package also provides a deliberately misbehaving CA (Fork) that
// equivocates between two dictionary views, used by the consistency-checking
// tests and the equivocation example to demonstrate §V's detection
// guarantees.
package ca

import (
	"crypto/ed25519"
	"fmt"
	"io"
	"sync"
	"time"

	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// Publisher is the CA's interface to the dissemination network's
// distribution point. Implementations: cdn.DistributionPoint (in-process),
// an HTTP client for a remote distribution point, or test fakes.
type Publisher interface {
	// PublishIssuance disseminates new revocations with their signed root.
	PublishIssuance(msg *dictionary.IssuanceMessage) error
	// PublishFreshness disseminates a per-∆ freshness statement.
	PublishFreshness(st *dictionary.FreshnessStatement) error
}

// Config configures a CA.
type Config struct {
	// ID is the CA identity used in certificates and dictionary roots.
	ID dictionary.CAID
	// Delta is the dissemination interval ∆.
	Delta time.Duration
	// CertValidity bounds issued certificates' lifetime. Zero selects one
	// year, within the CA/B Forum's 39-month ceiling (§VIII).
	CertValidity time.Duration
	// ChainLength is the freshness-chain length m (0 = default).
	ChainLength int
	// Layout selects the dictionary commitment structure (zero value:
	// LayoutSorted). Every replica — RAs and the distribution point's
	// verifying copy — must be configured with the same layout.
	Layout dictionary.LayoutKind
	// Signer is the CA key; nil generates a fresh one from Rand.
	Signer *cryptoutil.Signer
	// Rand sources randomness (nil = crypto/rand).
	Rand io.Reader
	// Now is the clock (nil = time.Now); experiments inject virtual time.
	Now func() time.Time
	// Publisher receives dissemination messages; nil means the CA operates
	// standalone (tests) and publishing is a no-op.
	Publisher Publisher
	// SerialSizes controls generated serial sizes (nil = paper distribution).
	SerialSizes serial.SizeDistribution
	// SerialSeed seeds the serial generator for reproducible workloads.
	SerialSeed uint64
}

// CA is a certification authority. It is safe for concurrent use.
type CA struct {
	id        dictionary.CAID
	signer    *cryptoutil.Signer
	delta     time.Duration
	validity  time.Duration
	now       func() time.Time
	publisher Publisher
	authority *dictionary.Authority
	root      *cert.Certificate

	mu      sync.Mutex
	serials *serial.Generator
	issued  map[string]*cert.Certificate // by canonical serial bytes
}

// New creates a CA with a self-signed root certificate and an empty,
// signed dictionary.
func New(cfg Config) (*CA, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("ca: missing ID")
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 10 * time.Second
	}
	if cfg.CertValidity <= 0 {
		cfg.CertValidity = 365 * 24 * time.Hour
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	signer := cfg.Signer
	if signer == nil {
		var err error
		if signer, err = cryptoutil.NewSigner(cfg.Rand); err != nil {
			return nil, fmt.Errorf("ca %s: %w", cfg.ID, err)
		}
	}
	nowUnix := cfg.Now().Unix()
	authority, err := dictionary.NewAuthority(dictionary.AuthorityConfig{
		CA:          cfg.ID,
		Signer:      signer,
		Delta:       cfg.Delta,
		ChainLength: cfg.ChainLength,
		Layout:      cfg.Layout,
		Rand:        cfg.Rand,
	}, nowUnix)
	if err != nil {
		return nil, fmt.Errorf("ca %s: %w", cfg.ID, err)
	}
	// The root certificate outlives every certificate it signs.
	rootCert, err := cert.SelfSigned(cfg.ID, signer, nowUnix,
		nowUnix+int64((cfg.CertValidity*10)/time.Second), uint32(cfg.Delta/time.Second))
	if err != nil {
		return nil, fmt.Errorf("ca %s: %w", cfg.ID, err)
	}
	return &CA{
		id:        cfg.ID,
		signer:    signer,
		delta:     cfg.Delta,
		validity:  cfg.CertValidity,
		now:       cfg.Now,
		publisher: cfg.Publisher,
		authority: authority,
		root:      rootCert,
		serials:   serial.NewGenerator(cfg.SerialSeed, cfg.SerialSizes),
		issued:    make(map[string]*cert.Certificate),
	}, nil
}

// ID returns the CA identifier.
func (c *CA) ID() dictionary.CAID { return c.id }

// RootCertificate returns the self-signed root certificate; clients and RAs
// add it to their trust pools.
func (c *CA) RootCertificate() *cert.Certificate { return c.root }

// PublicKey returns the CA's verification key.
func (c *CA) PublicKey() ed25519.PublicKey { return c.signer.Public() }

// Delta returns the CA's dissemination interval ∆.
func (c *CA) Delta() time.Duration { return c.delta }

// Layout returns the dictionary's commitment layout.
func (c *CA) Layout() dictionary.LayoutKind { return c.authority.Layout() }

// Authority exposes the CA's dictionary (read-mostly uses: roots, proofs).
func (c *CA) Authority() *dictionary.Authority { return c.authority }

// IssueServerCertificate issues a certificate binding subject to pub, with
// a fresh serial number from the CA's serial space.
func (c *CA) IssueServerCertificate(subject string, pub ed25519.PublicKey) (*cert.Certificate, error) {
	c.mu.Lock()
	sn := c.serials.Next()
	c.mu.Unlock()
	nowUnix := c.now().Unix()
	crt, err := cert.Issue(c.id, c.signer, cert.Template{
		SerialNumber: sn,
		Subject:      subject,
		NotBefore:    nowUnix,
		NotAfter:     nowUnix + int64(c.validity/time.Second),
		PublicKey:    pub,
	})
	if err != nil {
		return nil, fmt.Errorf("ca %s: issue %s: %w", c.id, subject, err)
	}
	c.mu.Lock()
	c.issued[string(sn.Raw())] = crt
	c.mu.Unlock()
	return crt, nil
}

// PublishRoot publishes the CA's current signed root as a root-only
// issuance message. A CA calls it once after registering with the
// distribution point, so that the (possibly still empty) dictionary has a
// verifiable root before the first revocation — the bootstrapping manifest
// flow of §VIII.
func (c *CA) PublishRoot() error {
	if c.publisher == nil {
		return nil
	}
	msg := &dictionary.IssuanceMessage{Root: c.authority.SignedRoot()}
	if err := c.publisher.PublishIssuance(msg); err != nil {
		return fmt.Errorf("ca %s: publish root: %w", c.id, err)
	}
	return nil
}

// IssueCACertificate issues an intermediate CA certificate binding subject
// to pub, with CA capability and the subordinate's dissemination interval
// recorded in the certificate (§VIII "Local ∆ parameter"). Like any issued
// certificate, it is revocable through this CA's dictionary — which the
// chain-proof extension (§VIII "Certificate chains") checks on every
// connection.
func (c *CA) IssueCACertificate(subject string, pub ed25519.PublicKey, delta time.Duration) (*cert.Certificate, error) {
	c.mu.Lock()
	sn := c.serials.Next()
	c.mu.Unlock()
	nowUnix := c.now().Unix()
	crt, err := cert.Issue(c.id, c.signer, cert.Template{
		SerialNumber: sn,
		Subject:      subject,
		NotBefore:    nowUnix,
		NotAfter:     nowUnix + int64((c.validity*10)/time.Second),
		PublicKey:    pub,
		IsCA:         true,
		DeltaSecs:    uint32(delta / time.Second),
	})
	if err != nil {
		return nil, fmt.Errorf("ca %s: issue CA cert %s: %w", c.id, subject, err)
	}
	c.mu.Lock()
	c.issued[string(sn.Raw())] = crt
	c.mu.Unlock()
	return crt, nil
}

// Revoke revokes the given serials as one batch: it inserts them into the
// dictionary (Fig 2, insert) and publishes the issuance message.
func (c *CA) Revoke(serials ...serial.Number) (*dictionary.IssuanceMessage, error) {
	msg, err := c.authority.Insert(serials, c.now().Unix())
	if err != nil {
		return nil, fmt.Errorf("ca %s: revoke: %w", c.id, err)
	}
	if c.publisher != nil {
		if err := c.publisher.PublishIssuance(msg); err != nil {
			return msg, fmt.Errorf("ca %s: publish issuance: %w", c.id, err)
		}
	}
	return msg, nil
}

// RevokeCertificate revokes an issued certificate.
func (c *CA) RevokeCertificate(crt *cert.Certificate) (*dictionary.IssuanceMessage, error) {
	return c.Revoke(crt.SerialNumber)
}

// IsRevoked reports whether the CA has revoked the serial.
func (c *CA) IsRevoked(sn serial.Number) bool { return c.authority.Revoked(sn) }

// PublishRefresh runs one refresh cycle (Fig 2, refresh): it publishes the
// current freshness statement, or — when the chain is exhausted — a new
// signed root as a root-only issuance message. CAs call it at least every ∆
// (Tab I rows two and three).
func (c *CA) PublishRefresh() error {
	ref, err := c.authority.Refresh(c.now().Unix())
	if err != nil {
		return fmt.Errorf("ca %s: refresh: %w", c.id, err)
	}
	if c.publisher == nil {
		return nil
	}
	if ref.NewRoot != nil {
		msg := &dictionary.IssuanceMessage{Root: ref.NewRoot}
		if err := c.publisher.PublishIssuance(msg); err != nil {
			return fmt.Errorf("ca %s: publish rotated root: %w", c.id, err)
		}
	}
	if err := c.publisher.PublishFreshness(ref.Statement); err != nil {
		return fmt.Errorf("ca %s: publish freshness: %w", c.id, err)
	}
	return nil
}

// Refresher runs PublishRefresh every ∆ until Shutdown is called. Errors
// are delivered to onErr (may be nil).
type Refresher struct {
	stop chan struct{}
	done chan struct{}
}

// StartRefresher launches the periodic refresh loop (§III: "CAs are still
// obliged to keep their dictionaries fresh"), publishing once per ∆.
func (c *CA) StartRefresher(onErr func(error)) *Refresher {
	return c.StartRefresherEvery(c.delta, onErr)
}

// StartRefresherEvery launches the refresh loop at a custom interval.
// Publishing more often than ∆ is always safe (statements are idempotent
// per period) and shrinks the staleness the dissemination pipeline adds on
// top of the publish/pull skew; intervals above ∆ violate the protocol.
func (c *CA) StartRefresherEvery(interval time.Duration, onErr func(error)) *Refresher {
	r := &Refresher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := c.PublishRefresh(); err != nil && onErr != nil {
					onErr(err)
				}
			case <-r.stop:
				return
			}
		}
	}()
	return r
}

// Shutdown stops the refresher and waits for it to exit.
func (r *Refresher) Shutdown() {
	close(r.stop)
	<-r.done
}

// Fork creates a second, diverging view of this CA: same identity and key,
// independent dictionary. An honest CA never does this; the returned CA
// models the misbehaving CA of §V, which shows one dictionary to part of
// the system and another to the rest. Detection of this behaviour is
// exercised by internal/monitor and the equivocation example.
func (c *CA) Fork() (*CA, error) {
	fork, err := New(Config{
		ID:           c.id,
		Delta:        c.delta,
		CertValidity: c.validity,
		Signer:       c.signer,
		Now:          c.now,
		Layout:       c.authority.Layout(),
	})
	if err != nil {
		return nil, fmt.Errorf("ca %s: fork: %w", c.id, err)
	}
	return fork, nil
}
