// Package ca implements RITM's certification authority: it issues
// certificates, maintains the CA's authenticated revocation dictionary, and
// feeds the dissemination network with revocation issuance messages and
// per-∆ freshness statements (§III).
//
// The package also provides a deliberately misbehaving CA (Fork) that
// equivocates between two dictionary views, used by the consistency-checking
// tests and the equivocation example to demonstrate §V's detection
// guarantees.
package ca

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"

	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/storage"
)

// Publisher is the CA's interface to the dissemination network's
// distribution point. Implementations: cdn.DistributionPoint (in-process),
// an HTTP client for a remote distribution point, or test fakes.
type Publisher interface {
	// PublishIssuance disseminates new revocations with their signed root.
	PublishIssuance(msg *dictionary.IssuanceMessage) error
	// PublishFreshness disseminates a per-∆ freshness statement.
	PublishFreshness(st *dictionary.FreshnessStatement) error
}

// Config configures a CA.
type Config struct {
	// ID is the CA identity used in certificates and dictionary roots.
	ID dictionary.CAID
	// Delta is the dissemination interval ∆.
	Delta time.Duration
	// CertValidity bounds issued certificates' lifetime. Zero selects one
	// year, within the CA/B Forum's 39-month ceiling (§VIII).
	CertValidity time.Duration
	// ChainLength is the freshness-chain length m (0 = default).
	ChainLength int
	// Layout selects the dictionary commitment structure (zero value:
	// LayoutSorted). Every replica — RAs and the distribution point's
	// verifying copy — must be configured with the same layout.
	Layout dictionary.LayoutKind
	// Signer is the CA key; nil generates a fresh one from Rand.
	Signer *cryptoutil.Signer
	// Rand sources randomness (nil = crypto/rand).
	Rand io.Reader
	// Now is the clock (nil = time.Now); experiments inject virtual time.
	Now func() time.Time
	// Publisher receives dissemination messages; nil means the CA operates
	// standalone (tests) and publishing is a no-op.
	Publisher Publisher
	// SerialSizes controls generated serial sizes (nil = paper distribution).
	SerialSizes serial.SizeDistribution
	// SerialSeed seeds the serial generator for reproducible workloads.
	// When the CA warm-starts from Storage and SerialSeed is zero, a fresh
	// random seed is drawn instead: replaying the boot-time deterministic
	// sequence would re-issue serials already handed out before the crash.
	// (Issued-but-unrevoked serials are not part of the dictionary state,
	// so exact issuance continuity requires either a caller-managed seed
	// or an external issuance registry — out of scope here.)
	SerialSeed uint64
	// Storage, when non-nil, persists the CA's dictionary — a WAL of
	// signed update batches with the freshness-chain seed behind each,
	// plus periodic checkpoints — and warm-starts from it: a restarted CA
	// resumes with the exact tree, chain, and signed root it crashed
	// with, so already-disseminated roots and statuses stay valid and the
	// dissemination tier sees no regression (no ErrAhead, no resync).
	// Restoring requires the same Signer; supply the persisted key.
	Storage storage.Backend
	// CheckpointEvery is the number of WAL records between checkpoint
	// snapshots (0 = 64).
	CheckpointEvery int
}

// CA is a certification authority. It is safe for concurrent use.
type CA struct {
	id        dictionary.CAID
	signer    *cryptoutil.Signer
	delta     time.Duration
	validity  time.Duration
	now       func() time.Time
	publisher Publisher
	authority *dictionary.Authority
	root      *cert.Certificate

	mu      sync.Mutex
	serials *serial.Generator
	issued  map[string]*cert.Certificate // by canonical serial bytes

	pmu       sync.Mutex // guards the durable log
	log       storage.Log
	ckptEvery int
	appended  int
}

// New creates a CA with a self-signed root certificate and an empty,
// signed dictionary.
func New(cfg Config) (*CA, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("ca: missing ID")
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 10 * time.Second
	}
	if cfg.CertValidity <= 0 {
		cfg.CertValidity = 365 * 24 * time.Hour
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	signer := cfg.Signer
	if signer == nil {
		var err error
		if signer, err = cryptoutil.NewSigner(cfg.Rand); err != nil {
			return nil, fmt.Errorf("ca %s: %w", cfg.ID, err)
		}
	}
	nowUnix := cfg.Now().Unix()
	authorityCfg := dictionary.AuthorityConfig{
		CA:          cfg.ID,
		Signer:      signer,
		Delta:       cfg.Delta,
		ChainLength: cfg.ChainLength,
		Layout:      cfg.Layout,
		Rand:        cfg.Rand,
	}

	var (
		authority *dictionary.Authority
		lg        storage.Log
		restored  bool
		err       error
	)
	if cfg.Storage != nil {
		if lg, err = cfg.Storage.Open(string(cfg.ID)); err != nil {
			return nil, fmt.Errorf("ca %s: %w", cfg.ID, err)
		}
		if authority, restored, err = recoverAuthority(authorityCfg, lg); err != nil {
			lg.Close()
			return nil, fmt.Errorf("ca %s: %w", cfg.ID, err)
		}
	}
	if authority == nil {
		if authority, err = dictionary.NewAuthority(authorityCfg, nowUnix); err != nil {
			if lg != nil {
				lg.Close()
			}
			return nil, fmt.Errorf("ca %s: %w", cfg.ID, err)
		}
		if lg != nil {
			// Anchor the fresh history: with an initial checkpoint on disk,
			// every later recovery has a verified state to replay onto, and
			// "WAL without checkpoint" becomes an unambiguous corruption
			// signal rather than a valid cold-start shape.
			if err := lg.Checkpoint(authority.PersistentStateV2()); err != nil {
				lg.Close()
				return nil, fmt.Errorf("ca %s: %w", cfg.ID, err)
			}
		}
	}
	serialSeed := cfg.SerialSeed
	if restored && serialSeed == 0 {
		// Replaying the boot-deterministic serial sequence would re-issue
		// pre-crash serials; draw boot entropy instead (see Config.SerialSeed).
		rng := cfg.Rand
		if rng == nil {
			rng = rand.Reader
		}
		var b [8]byte
		if _, err := io.ReadFull(rng, b[:]); err != nil {
			lg.Close()
			return nil, fmt.Errorf("ca %s: serial seed: %w", cfg.ID, err)
		}
		serialSeed = binary.BigEndian.Uint64(b[:])
	}
	// The root certificate outlives every certificate it signs.
	rootCert, err := cert.SelfSigned(cfg.ID, signer, nowUnix,
		nowUnix+int64((cfg.CertValidity*10)/time.Second), uint32(cfg.Delta/time.Second))
	if err != nil {
		if lg != nil {
			lg.Close()
		}
		return nil, fmt.Errorf("ca %s: %w", cfg.ID, err)
	}
	ckptEvery := cfg.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = 64
	}
	return &CA{
		id:        cfg.ID,
		signer:    signer,
		delta:     cfg.Delta,
		validity:  cfg.CertValidity,
		now:       cfg.Now,
		publisher: cfg.Publisher,
		authority: authority,
		root:      rootCert,
		serials:   serial.NewGenerator(serialSeed, cfg.SerialSizes),
		issued:    make(map[string]*cert.Certificate),
		log:       lg,
		ckptEvery: ckptEvery,
	}, nil
}

// recoverAuthority rebuilds the authority from a durable log, or reports
// (nil, false, nil) when the log is genuinely fresh. Every recovered
// artifact is re-verified (signature under the configured signer, rebuilt
// root against the signed root, chain seed against the signed anchor); a
// mismatch — including an operator supplying a different signing key than
// the persisted history was signed with — fails loudly.
func recoverAuthority(cfg dictionary.AuthorityConfig, lg storage.Log) (*dictionary.Authority, bool, error) {
	ckpt, wal, err := lg.Load()
	if err != nil {
		return nil, false, err
	}
	if ckpt == nil {
		if len(wal) > 0 {
			// New stores are anchored by an initial checkpoint before any
			// record is appended, so this shape only arises from damage.
			return nil, false, fmt.Errorf("durable log has %d WAL records but no checkpoint", len(wal))
		}
		return nil, false, nil
	}
	st, err := dictionary.DecodePersistentState(ckpt)
	if err != nil {
		return nil, false, err
	}
	records := make([]*dictionary.UpdateRecord, len(wal))
	for i, raw := range wal {
		if records[i], err = dictionary.DecodeUpdateRecord(raw); err != nil {
			return nil, false, fmt.Errorf("WAL record %d: %w", i, err)
		}
	}
	a, err := dictionary.RestoreAuthority(cfg, st, records)
	if err != nil {
		return nil, false, err
	}
	return a, true, nil
}

// persistUpdateLocked WAL-appends one signed update (an insert batch or a
// rotated root) together with the chain seed behind it, checkpointing on
// cadence. It runs BEFORE the update is published: write-ahead means a
// message the dissemination network has seen can always be recovered.
//
// Caller holds pmu and acquired it BEFORE the authority mutation that
// produced msg: pmu is what serializes (mutate, read seed, append) as one
// unit, so concurrent revocations can neither reorder WAL records against
// the insertion order nor pair a record with a later batch's chain seed —
// either corruption would verify-fail the whole store at the next
// restart.
func (c *CA) persistUpdateLocked(msg *dictionary.IssuanceMessage) error {
	if c.log == nil {
		return nil
	}
	seed := c.authority.ChainSeed()
	rec := dictionary.UpdateRecord{Msg: msg, Seed: &seed}
	if err := c.log.Append(rec.Encode()); err != nil {
		return fmt.Errorf("ca %s: persist update: %w", c.id, err)
	}
	c.appended++
	if c.appended < c.ckptEvery {
		return nil
	}
	if err := c.log.Checkpoint(c.authority.PersistentStateV2()); err != nil {
		return fmt.Errorf("ca %s: checkpoint: %w", c.id, err)
	}
	c.appended = 0
	return nil
}

// Close releases the CA's durable log (if any). A clean shutdown with
// records appended since the last cadence checkpoint writes one final
// checkpoint first, so the next start maps state instead of replaying a
// WAL tail (and shared-data readers of this directory get the v2 format
// immediately).
func (c *CA) Close() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.log == nil {
		return nil
	}
	var firstErr error
	if c.appended > 0 {
		if err := c.log.Checkpoint(c.authority.PersistentStateV2()); err != nil {
			firstErr = fmt.Errorf("ca %s: final checkpoint: %w", c.id, err)
		} else {
			c.appended = 0
		}
	}
	if err := c.log.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	c.log = nil
	return firstErr
}

// ID returns the CA identifier.
func (c *CA) ID() dictionary.CAID { return c.id }

// SetPublisher re-points the CA at a (possibly reopened) distribution
// point. Restart drills use it: the dissemination endpoint that crashed
// and recovered is a new value, but the CA's own state is unaffected.
// Not safe to call concurrently with Revoke or PublishRefresh.
func (c *CA) SetPublisher(p Publisher) { c.publisher = p }

// RootCertificate returns the self-signed root certificate; clients and RAs
// add it to their trust pools.
func (c *CA) RootCertificate() *cert.Certificate { return c.root }

// PublicKey returns the CA's verification key.
func (c *CA) PublicKey() ed25519.PublicKey { return c.signer.Public() }

// Delta returns the CA's dissemination interval ∆.
func (c *CA) Delta() time.Duration { return c.delta }

// Layout returns the dictionary's commitment layout.
func (c *CA) Layout() dictionary.LayoutKind { return c.authority.Layout() }

// Authority exposes the CA's dictionary (read-mostly uses: roots, proofs).
func (c *CA) Authority() *dictionary.Authority { return c.authority }

// IssueServerCertificate issues a certificate binding subject to pub, with
// a fresh serial number from the CA's serial space.
func (c *CA) IssueServerCertificate(subject string, pub ed25519.PublicKey) (*cert.Certificate, error) {
	c.mu.Lock()
	sn := c.serials.Next()
	c.mu.Unlock()
	nowUnix := c.now().Unix()
	crt, err := cert.Issue(c.id, c.signer, cert.Template{
		SerialNumber: sn,
		Subject:      subject,
		NotBefore:    nowUnix,
		NotAfter:     nowUnix + int64(c.validity/time.Second),
		PublicKey:    pub,
	})
	if err != nil {
		return nil, fmt.Errorf("ca %s: issue %s: %w", c.id, subject, err)
	}
	c.mu.Lock()
	c.issued[string(sn.Raw())] = crt
	c.mu.Unlock()
	return crt, nil
}

// PublishRoot publishes the CA's current signed root as a root-only
// issuance message. A CA calls it once after registering with the
// distribution point, so that the (possibly still empty) dictionary has a
// verifiable root before the first revocation — the bootstrapping manifest
// flow of §VIII.
func (c *CA) PublishRoot() error {
	if c.publisher == nil {
		return nil
	}
	msg := &dictionary.IssuanceMessage{Root: c.authority.SignedRoot()}
	if err := c.publisher.PublishIssuance(msg); err != nil {
		return fmt.Errorf("ca %s: publish root: %w", c.id, err)
	}
	return nil
}

// IssueCACertificate issues an intermediate CA certificate binding subject
// to pub, with CA capability and the subordinate's dissemination interval
// recorded in the certificate (§VIII "Local ∆ parameter"). Like any issued
// certificate, it is revocable through this CA's dictionary — which the
// chain-proof extension (§VIII "Certificate chains") checks on every
// connection.
func (c *CA) IssueCACertificate(subject string, pub ed25519.PublicKey, delta time.Duration) (*cert.Certificate, error) {
	c.mu.Lock()
	sn := c.serials.Next()
	c.mu.Unlock()
	nowUnix := c.now().Unix()
	crt, err := cert.Issue(c.id, c.signer, cert.Template{
		SerialNumber: sn,
		Subject:      subject,
		NotBefore:    nowUnix,
		NotAfter:     nowUnix + int64((c.validity*10)/time.Second),
		PublicKey:    pub,
		IsCA:         true,
		DeltaSecs:    uint32(delta / time.Second),
	})
	if err != nil {
		return nil, fmt.Errorf("ca %s: issue CA cert %s: %w", c.id, subject, err)
	}
	c.mu.Lock()
	c.issued[string(sn.Raw())] = crt
	c.mu.Unlock()
	return crt, nil
}

// Revoke revokes the given serials as one batch: it inserts them into the
// dictionary (Fig 2, insert), makes the batch durable (when a storage
// backend is configured — write-ahead, so nothing the network sees can be
// lost by a crash), and publishes the issuance message.
func (c *CA) Revoke(serials ...serial.Number) (*dictionary.IssuanceMessage, error) {
	// pmu spans insert + WAL append so concurrent revocations persist in
	// insertion order with their own chain seeds (see persistUpdateLocked).
	c.pmu.Lock()
	msg, err := c.authority.Insert(serials, c.now().Unix())
	if err != nil {
		c.pmu.Unlock()
		return nil, fmt.Errorf("ca %s: revoke: %w", c.id, err)
	}
	err = c.persistUpdateLocked(msg)
	c.pmu.Unlock()
	if err != nil {
		// In memory the revocation took effect; on disk it did not. Surface
		// it without publishing: disseminating state that a restart would
		// roll back is how an origin ends up behind its own RAs.
		return msg, err
	}
	if c.publisher != nil {
		if err := c.publisher.PublishIssuance(msg); err != nil {
			return msg, fmt.Errorf("ca %s: publish issuance: %w", c.id, err)
		}
	}
	return msg, nil
}

// RevokeCertificate revokes an issued certificate.
func (c *CA) RevokeCertificate(crt *cert.Certificate) (*dictionary.IssuanceMessage, error) {
	return c.Revoke(crt.SerialNumber)
}

// IsRevoked reports whether the CA has revoked the serial.
func (c *CA) IsRevoked(sn serial.Number) bool { return c.authority.Revoked(sn) }

// PublishRefresh runs one refresh cycle (Fig 2, refresh): it publishes the
// current freshness statement, or — when the chain is exhausted — a new
// signed root as a root-only issuance message. CAs call it at least every ∆
// (Tab I rows two and three).
func (c *CA) PublishRefresh() error {
	c.pmu.Lock()
	ref, err := c.authority.Refresh(c.now().Unix())
	if err != nil {
		c.pmu.Unlock()
		return fmt.Errorf("ca %s: refresh: %w", c.id, err)
	}
	if ref.NewRoot != nil {
		// Chain exhaustion rotated the root: the new chain's seed exists
		// nowhere but memory until this record lands.
		if err := c.persistUpdateLocked(&dictionary.IssuanceMessage{Root: ref.NewRoot}); err != nil {
			c.pmu.Unlock()
			return err
		}
	}
	c.pmu.Unlock()
	if c.publisher == nil {
		return nil
	}
	if ref.NewRoot != nil {
		msg := &dictionary.IssuanceMessage{Root: ref.NewRoot}
		if err := c.publisher.PublishIssuance(msg); err != nil {
			return fmt.Errorf("ca %s: publish rotated root: %w", c.id, err)
		}
	}
	if err := c.publisher.PublishFreshness(ref.Statement); err != nil {
		return fmt.Errorf("ca %s: publish freshness: %w", c.id, err)
	}
	return nil
}

// Refresher runs PublishRefresh every ∆ until Shutdown is called. Errors
// are delivered to onErr (may be nil).
type Refresher struct {
	stop chan struct{}
	done chan struct{}
}

// StartRefresher launches the periodic refresh loop (§III: "CAs are still
// obliged to keep their dictionaries fresh"), publishing once per ∆.
func (c *CA) StartRefresher(onErr func(error)) *Refresher {
	return c.StartRefresherEvery(c.delta, onErr)
}

// StartRefresherEvery launches the refresh loop at a custom interval.
// Publishing more often than ∆ is always safe (statements are idempotent
// per period) and shrinks the staleness the dissemination pipeline adds on
// top of the publish/pull skew; intervals above ∆ violate the protocol.
func (c *CA) StartRefresherEvery(interval time.Duration, onErr func(error)) *Refresher {
	r := &Refresher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if err := c.PublishRefresh(); err != nil && onErr != nil {
					onErr(err)
				}
			case <-r.stop:
				return
			}
		}
	}()
	return r
}

// Shutdown stops the refresher and waits for it to exit.
func (r *Refresher) Shutdown() {
	close(r.stop)
	<-r.done
}

// Fork creates a second, diverging view of this CA: same identity and key,
// independent dictionary. An honest CA never does this; the returned CA
// models the misbehaving CA of §V, which shows one dictionary to part of
// the system and another to the rest. Detection of this behaviour is
// exercised by internal/monitor and the equivocation example.
func (c *CA) Fork() (*CA, error) {
	fork, err := New(Config{
		ID:           c.id,
		Delta:        c.delta,
		CertValidity: c.validity,
		Signer:       c.signer,
		Now:          c.now,
		Layout:       c.authority.Layout(),
	})
	if err != nil {
		return nil, fmt.Errorf("ca %s: fork: %w", c.id, err)
	}
	return fork, nil
}
