package netsim

import (
	"testing"
	"time"
)

func TestNetworkHas80VantagePoints(t *testing.T) {
	n := NewNetwork(1)
	if n.Nodes() != VantagePoints {
		t.Fatalf("nodes = %d, want %d", n.Nodes(), VantagePoints)
	}
	regions := map[string]int{}
	for i := 0; i < n.Nodes(); i++ {
		regions[n.Region(i)]++
	}
	// PlanetLab was NA/EU-heavy.
	if regions["North America"] < regions["East Asia"] {
		t.Error("vantage distribution not NA-heavy")
	}
	if len(regions) < 5 {
		t.Errorf("only %d regions represented", len(regions))
	}
}

func TestDownloadTimeDeterministic(t *testing.T) {
	n := NewNetwork(42)
	a, err := n.DownloadTime(3, 7, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.DownloadTime(3, 7, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same (node, trial) produced %v and %v", a, b)
	}
	c, err := n.DownloadTime(3, 8, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different trials produced identical samples")
	}
	if _, err := n.DownloadTime(99, 0, 1); err == nil {
		t.Error("out-of-range vantage point accepted")
	}
}

func TestDownloadTimeMonotoneInSize(t *testing.T) {
	n := NewNetwork(1)
	small, err := n.DownloadTime(0, 0, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	large, err := n.DownloadTime(0, 0, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Errorf("5 MB (%v) not slower than 1 KB (%v)", large, small)
	}
}

func TestFig5Property90PercentUnderOneSecond(t *testing.T) {
	// The headline claim of §VII-B: even the largest message (60 k
	// revocations, ≈ 0.5 MB) downloads in under a second for 90 % of the
	// vantage points, with caching disabled.
	n := NewNetwork(1)
	const largestMessageBytes = 550_000
	samples := n.Sample(largestMessageBytes, 10)
	if len(samples) != 800 {
		t.Fatalf("sample count = %d, want 800 (80 nodes × 10 trials)", len(samples))
	}
	p90 := Quantile(samples, 0.90)
	if p90 >= time.Second {
		t.Errorf("p90 = %v, want < 1 s", p90)
	}
	// And the CDF is ordered by size: the empty message is faster at the
	// median than the largest one.
	empty := n.Sample(200, 10)
	if Quantile(empty, 0.5) >= Quantile(samples, 0.5) {
		t.Error("median download not ordered by message size")
	}
}

func TestQuantileAndCDF(t *testing.T) {
	samples := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Quantile(samples, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(samples, 1); got != 10 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(samples, 0.5); got != 5 || got != samples[4] {
		t.Errorf("median = %v", got)
	}

	cdf := CDF(samples, 5)
	if len(cdf) != 5 {
		t.Fatalf("CDF points = %d", len(cdf))
	}
	if cdf[4].Fraction != 1.0 || cdf[4].Time != 10 {
		t.Errorf("last CDF point = %+v", cdf[4])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Time < cdf[i-1].Time || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Errorf("CDF not monotone at %d", i)
		}
	}
	if CDF(nil, 5) != nil {
		t.Error("empty CDF not nil")
	}
}

func TestHierarchyDownloadTimeOrdering(t *testing.T) {
	n := NewNetwork(42)
	const bytes = 12 * 1024
	for node := 0; node < n.Nodes(); node += 7 {
		for trial := 0; trial < 5; trial++ {
			popHit, err := n.HierarchyDownloadTime(node, trial, bytes, true, true)
			if err != nil {
				t.Fatal(err)
			}
			regionalHit, err := n.HierarchyDownloadTime(node, trial, bytes, false, true)
			if err != nil {
				t.Fatal(err)
			}
			miss, err := n.HierarchyDownloadTime(node, trial, bytes, false, false)
			if err != nil {
				t.Fatal(err)
			}
			// Deeper misses strictly cost more: each tier adds a round
			// trip and a store-and-forward transfer.
			if !(popHit < regionalHit && regionalHit < miss) {
				t.Fatalf("node %d trial %d: popHit=%v regionalHit=%v miss=%v — not increasing",
					node, trial, popHit, regionalHit, miss)
			}
			// Determinism: the same (node, trial) reproduces its sample.
			again, err := n.HierarchyDownloadTime(node, trial, bytes, false, false)
			if err != nil {
				t.Fatal(err)
			}
			if again != miss {
				t.Fatalf("node %d trial %d: non-deterministic sample", node, trial)
			}
		}
	}
	if _, err := n.HierarchyDownloadTime(n.Nodes(), 0, bytes, true, true); err == nil {
		t.Error("out-of-range vantage point accepted")
	}
}

func TestHierarchySampleHitRateMonotone(t *testing.T) {
	n := NewNetwork(7)
	const bytes = 12 * 1024
	allMiss := n.HierarchySample(bytes, 10, 0, 0)
	allPopHit := n.HierarchySample(bytes, 10, 1, 0)
	if len(allMiss) != n.Nodes()*10 || len(allPopHit) != len(allMiss) {
		t.Fatalf("sample sizes %d/%d, want %d", len(allMiss), len(allPopHit), n.Nodes()*10)
	}
	// A fleet that always hits its PoP is faster at every quantile than
	// one that always walks to the origin.
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if hit, miss := Quantile(allPopHit, q), Quantile(allMiss, q); hit >= miss {
			t.Errorf("q%.2f: all-hit %v ≥ all-miss %v", q, hit, miss)
		}
	}
	// Determinism across calls.
	again := n.HierarchySample(bytes, 10, 0, 0)
	for i := range again {
		if again[i] != allMiss[i] {
			t.Fatal("HierarchySample is not deterministic")
		}
	}
}

func TestRegionsAccessor(t *testing.T) {
	regions := Regions()
	if len(regions) == 0 {
		t.Fatal("no regions")
	}
	total := 0
	for _, r := range regions {
		if r.Name == "" || r.EdgeRTT <= 0 || r.OriginRTT <= 0 || r.Bandwidth <= 0 {
			t.Errorf("malformed region %+v", r)
		}
		if r.EdgeRTT >= r.OriginRTT {
			t.Errorf("region %s: edge RTT %v ≥ origin RTT %v (edges must be nearer)", r.Name, r.EdgeRTT, r.OriginRTT)
		}
		total += r.Nodes
	}
	if total != VantagePoints {
		t.Errorf("region nodes sum to %d, want %d", total, VantagePoints)
	}
}
