// Package netsim is the analytic network model replacing the paper's
// PlanetLab + Amazon CloudFront measurement testbed (§VII-B, Fig 5). The
// original experiment downloaded revocation messages of five sizes from 80
// PlanetLab nodes with edge caching disabled (TTL=0), so every request
// paid the full path: client → edge server → origin.
//
// The simulator reproduces that path analytically: each vantage point
// belongs to a region with characteristic client-edge RTT, edge-origin
// RTT, and bandwidth distributions (PlanetLab nodes are well-connected
// university hosts, concentrated in North America and Europe). A download
// costs connection setup to the edge, a cache-miss fetch from the origin,
// and store-and-forward transfer time on both legs, with seeded lognormal
// jitter per trial. No wall-clock sleeping is involved, so the full CDF
// regenerates in microseconds.
package netsim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"
)

// VantagePoints is the number of measurement nodes (80 PlanetLab hosts).
const VantagePoints = 80

// profile describes one region's network characteristics.
type profile struct {
	name string
	// nodes is how many of the 80 vantage points sit in this region
	// (PlanetLab's distribution was NA/EU-heavy).
	nodes int
	// edgeRTT is the median client→edge round trip (CDNs place edges near
	// clients, so this is small everywhere).
	edgeRTT time.Duration
	// originRTT is the median edge→origin round trip (the origin is a
	// single distribution point, so distance shows up here).
	originRTT time.Duration
	// bandwidth is the median bottleneck bandwidth in bits/s.
	bandwidth float64
}

// profiles partitions the 80 nodes. Counts sum to VantagePoints.
var profiles = []profile{
	{name: "North America", nodes: 34, edgeRTT: 8 * time.Millisecond, originRTT: 40 * time.Millisecond, bandwidth: 80e6},
	{name: "Europe", nodes: 28, edgeRTT: 10 * time.Millisecond, originRTT: 100 * time.Millisecond, bandwidth: 60e6},
	{name: "East Asia", nodes: 8, edgeRTT: 18 * time.Millisecond, originRTT: 170 * time.Millisecond, bandwidth: 40e6},
	{name: "South America", nodes: 4, edgeRTT: 25 * time.Millisecond, originRTT: 150 * time.Millisecond, bandwidth: 20e6},
	{name: "Oceania", nodes: 3, edgeRTT: 20 * time.Millisecond, originRTT: 190 * time.Millisecond, bandwidth: 30e6},
	{name: "Japan", nodes: 3, edgeRTT: 12 * time.Millisecond, originRTT: 160 * time.Millisecond, bandwidth: 70e6},
}

// Network is the seeded analytic model.
type Network struct {
	seed   uint64
	byNode []profile // len VantagePoints
}

// NewNetwork builds the model deterministically from seed.
func NewNetwork(seed uint64) *Network {
	byNode := make([]profile, 0, VantagePoints)
	for _, p := range profiles {
		for i := 0; i < p.nodes; i++ {
			byNode = append(byNode, p)
		}
	}
	return &Network{seed: seed, byNode: byNode}
}

// Nodes returns the number of vantage points.
func (n *Network) Nodes() int { return len(n.byNode) }

// Region returns the region name of a vantage point.
func (n *Network) Region(node int) string { return n.byNode[node].name }

// lognormal draws a multiplicative jitter factor with the given sigma:
// median 1, right-skewed — the canonical shape of wide-area latency noise.
func lognormal(rng *rand.Rand, sigma float64) float64 {
	return math.Exp(rng.NormFloat64() * sigma)
}

// DownloadTime models one TTL=0 download of size bytes by the given
// vantage point: TCP+request to the edge (2 RTT), the edge's cache-miss
// fetch from the origin (2 RTT + transfer), and the edge→client transfer.
// The (node, trial) pair seeds the jitter, so repeated calls reproduce the
// same sample.
func (n *Network) DownloadTime(node, trial, bytes int) (time.Duration, error) {
	if node < 0 || node >= len(n.byNode) {
		return 0, fmt.Errorf("netsim: vantage point %d of %d", node, len(n.byNode))
	}
	p := n.byNode[node]
	rng := rand.New(rand.NewPCG(n.seed, uint64(node)<<32|uint64(trial)))

	edgeRTT := time.Duration(float64(p.edgeRTT) * lognormal(rng, 0.25))
	originRTT := time.Duration(float64(p.originRTT) * lognormal(rng, 0.25))
	bw := p.bandwidth * lognormal(rng, 0.35)
	transfer := time.Duration(float64(bytes) * 8 / bw * float64(time.Second))

	// Client→edge: TCP handshake + HTTP request/response = 2 RTT.
	// Edge→origin (TTL=0 miss): another connection + fetch = 2 RTT.
	// Transfer is paid on both legs (store-and-forward at the edge).
	total := 2*edgeRTT + 2*originRTT + 2*transfer
	return total, nil
}

// RegionInfo describes one region's network profile; scenario harnesses
// read it to inject realistic per-link latencies into wired hierarchies.
type RegionInfo struct {
	Name string
	// Nodes is the region's share of the VantagePoints.
	Nodes int
	// EdgeRTT is the median client→PoP round trip.
	EdgeRTT time.Duration
	// OriginRTT is the median edge→origin round trip.
	OriginRTT time.Duration
	// Bandwidth is the median bottleneck bandwidth in bits/s.
	Bandwidth float64
}

// Regions lists the model's region profiles in declaration order.
func Regions() []RegionInfo {
	out := make([]RegionInfo, len(profiles))
	for i, p := range profiles {
		out[i] = RegionInfo{Name: p.name, Nodes: p.nodes, EdgeRTT: p.edgeRTT, OriginRTT: p.originRTT, Bandwidth: p.bandwidth}
	}
	return out
}

// hierarchySeedSalt decorrelates the hierarchy jitter stream from
// DownloadTime's: the same (node, trial) must not reuse the TTL=0 draw.
const hierarchySeedSalt = 0x484945524152 // "HIERAR"

// HierarchyDownloadTime models one download of size bytes through the
// two-tier hierarchy (client → PoP → regional edge → origin) as a
// function of where the request was answered. A PoP hit costs the
// client→PoP leg only; a PoP miss adds the PoP→regional leg (the regional
// edge shares the region, so its RTT is a fraction of the origin's); a
// regional miss adds the full edge→origin leg. Transfer time is paid
// store-and-forward on every leg traversed, as in DownloadTime. The
// (node, trial) pair seeds the jitter, so repeated calls reproduce the
// same sample. Note the full-miss path costs MORE than DownloadTime's
// flat TTL=0 path: it adds the PoP→regional hop and a third
// store-and-forward transfer leg (and the two models draw decorrelated
// jitter, so no per-sample relation holds) — the hierarchy pays for its
// fan-out with a deeper worst case and wins on the hit-rate-weighted
// distribution, not on the tail of a single cold miss.
func (n *Network) HierarchyDownloadTime(node, trial, bytes int, popHit, regionalHit bool) (time.Duration, error) {
	if node < 0 || node >= len(n.byNode) {
		return 0, fmt.Errorf("netsim: vantage point %d of %d", node, len(n.byNode))
	}
	p := n.byNode[node]
	rng := rand.New(rand.NewPCG(n.seed^hierarchySeedSalt, uint64(node)<<32|uint64(trial)))

	popRTT := time.Duration(float64(p.edgeRTT) * lognormal(rng, 0.25))
	// Regional edges sit inside the region, between the PoPs and the
	// origin: model their RTT as a third of the origin's.
	regionalRTT := time.Duration(float64(p.originRTT) / 3 * lognormal(rng, 0.25))
	originRTT := time.Duration(float64(p.originRTT) * lognormal(rng, 0.25))
	bw := p.bandwidth * lognormal(rng, 0.35)
	transfer := time.Duration(float64(bytes) * 8 / bw * float64(time.Second))

	total := 2*popRTT + transfer // TCP+request to the PoP, PoP→client transfer
	if popHit {
		return total, nil
	}
	total += 2*regionalRTT + transfer // PoP's miss fetch, store-and-forward
	if regionalHit {
		return total, nil
	}
	total += 2*originRTT + transfer // regional's miss fetch from the origin
	return total, nil
}

// HierarchySample draws trials hierarchy downloads of size bytes from
// every vantage point with the given per-tier hit probabilities (the
// measured hit rates of a real run), returning sorted samples. The hit
// draw shares the download's seeded rng, so the sample set is fully
// deterministic in (seed, bytes, trials, rates).
func (n *Network) HierarchySample(bytes, trials int, popHitRate, regionalHitRate float64) []time.Duration {
	out := make([]time.Duration, 0, n.Nodes()*trials)
	for node := 0; node < n.Nodes(); node++ {
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewPCG(n.seed^hierarchySeedSalt^0x5A, uint64(node)<<32|uint64(trial)))
			popHit := rng.Float64() < popHitRate
			regionalHit := rng.Float64() < regionalHitRate
			d, err := n.HierarchyDownloadTime(node, trial, bytes, popHit, regionalHit)
			if err != nil {
				continue // unreachable: node index is in range
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sample runs trials downloads of size bytes from every vantage point and
// returns all samples, sorted ascending — the raw material of a CDF.
func (n *Network) Sample(bytes, trials int) []time.Duration {
	out := make([]time.Duration, 0, n.Nodes()*trials)
	for node := 0; node < n.Nodes(); node++ {
		for trial := 0; trial < trials; trial++ {
			d, err := n.DownloadTime(node, trial, bytes)
			if err != nil {
				continue // unreachable: node index is in range
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of sorted samples.
func Quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// CDFPoint is one (x, F(x)) point of an empirical CDF.
type CDFPoint struct {
	Time     time.Duration
	Fraction float64
}

// CDF reduces sorted samples to at most points CDF points for plotting.
func CDF(sorted []time.Duration, points int) []CDFPoint {
	if len(sorted) == 0 || points <= 0 {
		return nil
	}
	if points > len(sorted) {
		points = len(sorted)
	}
	out := make([]CDFPoint, points)
	for i := 0; i < points; i++ {
		idx := (i + 1) * len(sorted) / points
		if idx > len(sorted) {
			idx = len(sorted)
		}
		out[i] = CDFPoint{
			Time:     sorted[idx-1],
			Fraction: float64(idx) / float64(len(sorted)),
		}
	}
	return out
}
