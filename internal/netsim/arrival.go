// Open-loop arrival scheduling for the macro-benchmark harness.
//
// A load generator that waits for one request to finish before issuing
// the next (closed-loop) lets a slow server throttle its own measurement:
// every stall also pauses the arrival clock, so the tail the user would
// have felt never gets generated — the coordinated-omission trap. The
// schedule here is the opposite: arrival offsets are drawn up front from
// the chosen process, anchored to one wall-clock start instant, and fired
// on time regardless of how many earlier requests are still in flight.
// Latency is then measured from the *scheduled* arrival, so queueing
// delay a real user would experience counts against the tail.
package netsim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ArrivalProcess selects the inter-arrival law of an open-loop schedule.
type ArrivalProcess int

const (
	// ArrivalUniform spaces arrivals exactly 1/rate apart — a
	// deterministic paced load with zero burstiness.
	ArrivalUniform ArrivalProcess = iota
	// ArrivalPoisson draws i.i.d. exponential inter-arrival gaps with
	// mean 1/rate — the memoryless process that models independent users
	// and exercises transient bursts well above the average rate.
	ArrivalPoisson
)

// ParseArrivalProcess maps a flag value to an ArrivalProcess.
func ParseArrivalProcess(s string) (ArrivalProcess, error) {
	switch s {
	case "uniform":
		return ArrivalUniform, nil
	case "poisson":
		return ArrivalPoisson, nil
	}
	return 0, fmt.Errorf("netsim: unknown arrival process %q (want uniform or poisson)", s)
}

func (p ArrivalProcess) String() string {
	switch p {
	case ArrivalUniform:
		return "uniform"
	case ArrivalPoisson:
		return "poisson"
	}
	return fmt.Sprintf("ArrivalProcess(%d)", int(p))
}

// Schedule is a precomputed open-loop arrival schedule: a sorted list of
// offsets from an arbitrary start instant, one per request. Precomputing
// (rather than drawing gaps on the fly) makes runs with the same seed
// byte-for-byte reproducible and keeps the hot firing loop allocation-free.
type Schedule struct {
	process  ArrivalProcess
	rate     float64
	duration time.Duration
	offsets  []time.Duration
}

// NewSchedule draws an arrival schedule for the given process at rate
// arrivals/second over duration. The seed fully determines the schedule;
// uniform schedules ignore it.
func NewSchedule(p ArrivalProcess, rate float64, duration time.Duration, seed int64) (*Schedule, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("netsim: arrival rate %v must be positive", rate)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("netsim: schedule duration %v must be positive", duration)
	}
	s := &Schedule{process: p, rate: rate, duration: duration}
	switch p {
	case ArrivalUniform:
		gap := float64(time.Second) / rate
		for i := 0; ; i++ {
			off := time.Duration(float64(i) * gap)
			if off >= duration {
				break
			}
			s.offsets = append(s.offsets, off)
		}
	case ArrivalPoisson:
		rng := rand.New(rand.NewSource(seed))
		t := 0.0
		for {
			t += rng.ExpFloat64() / rate * float64(time.Second)
			off := time.Duration(t)
			if off >= duration {
				break
			}
			s.offsets = append(s.offsets, off)
		}
	default:
		return nil, fmt.Errorf("netsim: unknown arrival process %v", p)
	}
	return s, nil
}

// Len returns the number of scheduled arrivals.
func (s *Schedule) Len() int { return len(s.offsets) }

// Offset returns the i-th arrival's offset from the schedule start.
func (s *Schedule) Offset(i int) time.Duration { return s.offsets[i] }

// Duration returns the schedule's nominal run length.
func (s *Schedule) Duration() time.Duration { return s.duration }

// OfferedRate returns the realized offered rate — arrivals actually drawn
// divided by the nominal duration. For uniform schedules this equals the
// requested rate; for Poisson it fluctuates around it.
func (s *Schedule) OfferedRate() float64 {
	return float64(len(s.offsets)) / s.duration.Seconds()
}

// Run fires fn once per arrival at its scheduled instant (start + offset),
// each invocation in its own goroutine so a stalled fn never delays later
// arrivals — the open-loop guarantee. fn receives the arrival index and
// its scheduled time; measure latency from that instant, not from when fn
// got around to dialing, so time spent queued behind a slow server counts.
//
// Run returns the number of arrivals fired once the schedule is exhausted
// or ctx is cancelled. It does not wait for in-flight fn calls; callers
// that need completion tracking keep their own WaitGroup inside fn.
func (s *Schedule) Run(ctx context.Context, start time.Time, fn func(i int, scheduled time.Time)) int {
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	fired := 0
	for i, off := range s.offsets {
		scheduled := start.Add(off)
		// Behind schedule (or due now): fire immediately without sleeping
		// — later targets are absolute, so one late wakeup never shifts
		// the rest of the schedule.
		if wait := time.Until(scheduled); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return fired
			case <-timer.C:
			}
		} else {
			select {
			case <-ctx.Done():
				return fired
			default:
			}
		}
		go fn(i, scheduled)
		fired++
	}
	return fired
}

// RunAndWait is Run followed by waiting for every fired fn to return —
// the common shape for fixed-duration benchmark runs that must drain
// in-flight work before reading counters. The open-loop property is
// unchanged: waiting happens only after the last arrival has fired.
func (s *Schedule) RunAndWait(ctx context.Context, start time.Time, fn func(i int, scheduled time.Time)) int {
	var wg sync.WaitGroup
	wg.Add(len(s.offsets))
	fired := s.Run(ctx, start, func(i int, scheduled time.Time) {
		defer wg.Done()
		fn(i, scheduled)
	})
	// Arrivals skipped by cancellation never fire their Done; settle them.
	for i := fired; i < len(s.offsets); i++ {
		wg.Done()
	}
	wg.Wait()
	return fired
}
