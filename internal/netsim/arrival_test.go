package netsim

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Uniform schedules are fully deterministic: exactly rate×duration
// arrivals, every gap exactly 1/rate.
func TestScheduleUniformCountAndSpacing(t *testing.T) {
	s, err := NewSchedule(ArrivalUniform, 1000, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1000 {
		t.Fatalf("uniform 1000/s over 1s: got %d arrivals, want 1000", s.Len())
	}
	if got := s.OfferedRate(); got != 1000 {
		t.Fatalf("offered rate = %v, want 1000", got)
	}
	for i := 1; i < s.Len(); i++ {
		gap := s.Offset(i) - s.Offset(i-1)
		if gap != time.Millisecond {
			t.Fatalf("gap[%d] = %v, want exactly 1ms", i, gap)
		}
	}
	if s.Offset(0) != 0 {
		t.Fatalf("first arrival at %v, want 0", s.Offset(0))
	}
}

// Poisson schedules must be reproducible from the seed, land near the
// requested rate, and have exponential inter-arrival gaps (mean 1/rate,
// coefficient of variation ≈ 1 — the signature that distinguishes them
// from paced arrivals, whose CV is 0).
func TestSchedulePoissonSeededDistribution(t *testing.T) {
	const rate, seed = 2000.0, 42
	a, err := NewSchedule(ArrivalPoisson, rate, 5*time.Second, seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSchedule(ArrivalPoisson, rate, 5*time.Second, seed)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different counts: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Offset(i) != b.Offset(i) {
			t.Fatalf("same seed, offsets diverge at %d: %v vs %v", i, a.Offset(i), b.Offset(i))
		}
	}
	other, err := NewSchedule(ArrivalPoisson, rate, 5*time.Second, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	if other.Len() == a.Len() && other.Offset(0) == a.Offset(0) && other.Offset(1) == a.Offset(1) {
		t.Fatal("different seeds produced an identical schedule prefix")
	}

	// ~10000 expected arrivals: count within ±5% of rate×duration.
	want := rate * 5
	if math.Abs(float64(a.Len())-want) > 0.05*want {
		t.Fatalf("poisson count %d too far from expected %v", a.Len(), want)
	}

	// Inter-arrival moments: mean ≈ 1/rate, CV ≈ 1.
	gaps := make([]float64, 0, a.Len()-1)
	for i := 1; i < a.Len(); i++ {
		gaps = append(gaps, (a.Offset(i) - a.Offset(i-1)).Seconds())
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	if math.Abs(mean-1/rate) > 0.05/rate {
		t.Fatalf("mean inter-arrival %v, want ≈ %v", mean, 1/rate)
	}
	var sq float64
	for _, g := range gaps {
		sq += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(sq/float64(len(gaps))) / mean
	if cv < 0.9 || cv > 1.1 {
		t.Fatalf("inter-arrival CV = %v, want ≈ 1 (exponential)", cv)
	}
}

func TestScheduleRejectsBadInput(t *testing.T) {
	if _, err := NewSchedule(ArrivalUniform, 0, time.Second, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewSchedule(ArrivalPoisson, 100, 0, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := ParseArrivalProcess("zipf"); err == nil {
		t.Fatal("unknown process accepted")
	}
	if p, err := ParseArrivalProcess("poisson"); err != nil || p != ArrivalPoisson {
		t.Fatalf("ParseArrivalProcess(poisson) = %v, %v", p, err)
	}
}

// The open-loop pin: a server that never answers must not slow the
// arrival clock. Every fn blocks forever; Run must still fire the whole
// schedule on time and return. A closed-loop generator would deadlock
// after the first arrival.
func TestRunStalledServerDoesNotSlowArrivals(t *testing.T) {
	const rate = 2000.0
	duration := 200 * time.Millisecond
	s, err := NewSchedule(ArrivalUniform, rate, duration, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	lateness := make([]time.Duration, s.Len())
	var mu sync.Mutex
	block := make(chan struct{}) // never closed during the run
	start := time.Now()
	n := s.Run(context.Background(), start, func(i int, scheduled time.Time) {
		at := time.Now()
		mu.Lock()
		lateness[i] = at.Sub(scheduled)
		mu.Unlock()
		fired.Add(1)
		<-block // the "stalled server": no request ever completes
	})
	elapsed := time.Since(start)
	close(block)

	if n != s.Len() {
		t.Fatalf("fired %d of %d arrivals", n, s.Len())
	}
	// Run returned after the last scheduled offset, not after the (never
	// arriving) completions — and without waiting much beyond the
	// schedule itself.
	if elapsed > duration+time.Second {
		t.Fatalf("run took %v, schedule was %v: arrival clock was slowed", elapsed, duration)
	}
	// Wait for the last stragglers to record their fire times.
	for fired.Load() < int64(n) {
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	var worst time.Duration
	for _, l := range lateness {
		if l > worst {
			worst = l
		}
	}
	// Generous bound for a loaded CI box — the point is that lateness is
	// bounded by scheduler wakeup slop, not by the stalled completions
	// (which would push it past the full run duration).
	if worst > duration/2 {
		t.Fatalf("worst firing lateness %v: arrivals are being delayed by stalled work", worst)
	}
}

// Cancellation stops firing promptly and RunAndWait still settles.
func TestRunAndWaitCancel(t *testing.T) {
	s, err := NewSchedule(ArrivalUniform, 100, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Int64
	done := make(chan int, 1)
	start := time.Now()
	go func() {
		done <- s.RunAndWait(ctx, start, func(i int, scheduled time.Time) {
			if fired.Add(1) == 3 {
				cancel()
			}
		})
	}()
	select {
	case n := <-done:
		if n >= s.Len() {
			t.Fatalf("cancelled run fired the full schedule (%d)", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunAndWait did not return after cancellation")
	}
}
