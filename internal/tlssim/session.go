package tlssim

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"io"
	"sync"

	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/wire"
)

// sessionIDLen is the length of server-assigned session identifiers.
const sessionIDLen = 16

// Session is the resumable state shared by both resumption mechanisms:
// the master secret plus the server certificate identity. The certificate
// identity is retained so that a resuming client still knows which CA
// dictionary its revocation statuses must come from, even though no
// Certificate message crosses the wire on an abbreviated handshake.
type Session struct {
	Master       [masterSecretLen]byte
	ServerName   string
	ServerCA     dictionary.CAID
	ServerSerial serial.Number
}

// ClientSessionCache stores resumable sessions per server name. It is safe
// for concurrent use.
type ClientSessionCache struct {
	mu sync.Mutex
	m  map[string]*clientSession
}

type clientSession struct {
	session   Session
	sessionID []byte
	ticket    []byte
}

// NewClientSessionCache returns an empty cache.
func NewClientSessionCache() *ClientSessionCache {
	return &ClientSessionCache{m: make(map[string]*clientSession)}
}

func (c *ClientSessionCache) put(serverName string, cs *clientSession) {
	if c == nil || serverName == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[serverName] = cs
}

func (c *ClientSessionCache) get(serverName string) (*clientSession, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.m[serverName]
	return cs, ok
}

// forget drops a session (after a failed resumption).
func (c *ClientSessionCache) forget(serverName string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, serverName)
}

// serverSessionCache maps session IDs to sessions, with a crude size bound.
type serverSessionCache struct {
	mu  sync.Mutex
	m   map[string]Session
	max int
}

func newServerSessionCache(max int) *serverSessionCache {
	if max <= 0 {
		max = 4096
	}
	return &serverSessionCache{m: make(map[string]Session), max: max}
}

func (c *serverSessionCache) put(id []byte, s Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.max {
		// Evict an arbitrary entry; map iteration order serves as a cheap
		// random replacement policy adequate for a simulator.
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[string(id)] = s
}

func (c *serverSessionCache) get(id []byte) (Session, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.m[string(id)]
	return s, ok
}

// Ticket sealing (RFC 5077 analogue): the server encrypts the session state
// under a ticket key it alone holds, making the ticket opaque to clients
// and middleboxes.

func encodeSession(s Session) []byte {
	e := wire.NewEncoder(96)
	e.Raw(s.Master[:])
	e.String(s.ServerName)
	e.String(string(s.ServerCA))
	e.BytesField(s.ServerSerial.Raw())
	return e.Bytes()
}

func decodeSession(buf []byte) (Session, error) {
	d := wire.NewDecoder(buf)
	var s Session
	copy(s.Master[:], d.Raw(masterSecretLen))
	s.ServerName = d.String()
	s.ServerCA = dictionary.CAID(d.String())
	raw := d.BytesCopy()
	if err := d.Finish(); err != nil {
		return Session{}, fmt.Errorf("decode session: %w", err)
	}
	if len(raw) > 0 {
		sn, err := serial.New(raw)
		if err != nil {
			return Session{}, fmt.Errorf("decode session serial: %w", err)
		}
		s.ServerSerial = sn
	}
	return s, nil
}

// sealTicket encrypts a session into a ticket under key.
func sealTicket(rng io.Reader, key [32]byte, s Session) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("ticket cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("ticket AEAD: %w", err)
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, fmt.Errorf("ticket nonce: %w", err)
	}
	return append(nonce, aead.Seal(nil, nonce, encodeSession(s), nil)...), nil
}

// openTicket decrypts a ticket. Any failure means "do a full handshake".
func openTicket(key [32]byte, ticket []byte) (Session, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return Session{}, fmt.Errorf("ticket cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return Session{}, fmt.Errorf("ticket AEAD: %w", err)
	}
	if len(ticket) < aead.NonceSize() {
		return Session{}, fmt.Errorf("%w: short ticket", ErrBadHandshake)
	}
	pt, err := aead.Open(nil, ticket[:aead.NonceSize()], ticket[aead.NonceSize():], nil)
	if err != nil {
		return Session{}, fmt.Errorf("%w: ticket does not decrypt", ErrBadHandshake)
	}
	return decodeSession(pt)
}
