package tlssim

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"io"
)

// keyExchangeContext domain-separates the ServerKeyExchange signature from
// certificate and dictionary signatures under the same server key.
const keyExchangeContext = "RITM-TLSSIM/server-key-exchange/v1"

// masterSecretLen is the size of the derived master secret.
const masterSecretLen = 32

// deriveLabelled computes SHA-256(label ‖ parts...), the package's single
// key-derivation primitive (an HKDF stand-in adequate for a simulator).
func deriveLabelled(label string, parts ...[]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte(label))
	for _, p := range parts {
		// Length-prefix each part so concatenations cannot collide.
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// masterFromECDH derives the master secret from the X25519 shared secret
// and both randoms.
func masterFromECDH(shared, clientRandom, serverRandom []byte) [masterSecretLen]byte {
	return deriveLabelled("tlssim master", shared, clientRandom, serverRandom)
}

// sessionKeys derives directional AEAD keys from a master secret and the
// randoms of the current handshake (fresh per resumption, as in TLS).
type sessionKeys struct {
	clientWrite, serverWrite [32]byte
}

func deriveSessionKeys(master [masterSecretLen]byte, clientRandom, serverRandom []byte) sessionKeys {
	return sessionKeys{
		clientWrite: deriveLabelled("tlssim client write", master[:], clientRandom, serverRandom),
		serverWrite: deriveLabelled("tlssim server write", master[:], clientRandom, serverRandom),
	}
}

// finishedMAC computes the Finished verify data for one side.
func finishedMAC(master [masterSecretLen]byte, label string, transcript []byte) []byte {
	mac := hmac.New(sha256.New, master[:])
	mac.Write([]byte(label))
	mac.Write(transcript)
	return mac.Sum(nil)
}

// verifyFinishedMAC checks a Finished verify-data value in constant time.
func verifyFinishedMAC(master [masterSecretLen]byte, label string, transcript, got []byte) error {
	want := finishedMAC(master, label, transcript)
	if subtle.ConstantTimeCompare(want, got) != 1 {
		return fmt.Errorf("%w: bad finished MAC", ErrHandshakeFailed)
	}
	return nil
}

// transcript accumulates the hash input of all handshake messages in order.
type transcript struct {
	h []byte
}

func (t *transcript) add(msg Handshake) {
	t.h = append(t.h, msg.Encode()...)
}

func (t *transcript) bytes() []byte { return t.h }

// aeadState is one direction of record protection: an AES-256-GCM AEAD with
// a counter nonce. Sequence numbers are implicit (counted independently by
// both ends), as in TLS.
type aeadState struct {
	aead cipher.AEAD
	seq  uint64
}

func newAEADState(key [32]byte) (*aeadState, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("new record cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("new record AEAD: %w", err)
	}
	return &aeadState{aead: aead}, nil
}

func (s *aeadState) nonce() []byte {
	n := make([]byte, 12)
	binary.BigEndian.PutUint64(n[4:], s.seq)
	s.seq++
	return n
}

// seal encrypts an application payload. The record type is authenticated as
// associated data so a middlebox cannot retype protected records.
func (s *aeadState) seal(plaintext []byte) []byte {
	return s.aead.Seal(nil, s.nonce(), plaintext, []byte{byte(ContentApplicationData)})
}

// open decrypts an application payload.
func (s *aeadState) open(ciphertext []byte) ([]byte, error) {
	pt, err := s.aead.Open(nil, s.nonce(), ciphertext, []byte{byte(ContentApplicationData)})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecrypt, err)
	}
	return pt, nil
}

// ecdhKeypair generates an ephemeral X25519 key pair from rng.
func ecdhKeypair(rng io.Reader) (*ecdh.PrivateKey, error) {
	priv, err := ecdh.X25519().GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("generate X25519 key: %w", err)
	}
	return priv, nil
}

// ecdhShared computes the shared secret between priv and peerPublic bytes.
func ecdhShared(priv *ecdh.PrivateKey, peerPublic []byte) ([]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(peerPublic)
	if err != nil {
		return nil, fmt.Errorf("peer X25519 key: %w", err)
	}
	shared, err := priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("X25519: %w", err)
	}
	return shared, nil
}

// keyExchangePayload is the byte string the server signs in its
// ServerKeyExchange: both randoms and the ephemeral public key.
func keyExchangePayload(clientRandom, serverRandom, pub []byte) []byte {
	out := make([]byte, 0, len(keyExchangeContext)+2*randomLen+len(pub))
	out = append(out, keyExchangeContext...)
	out = append(out, clientRandom...)
	out = append(out, serverRandom...)
	return append(out, pub...)
}
