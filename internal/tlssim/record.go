// Package tlssim implements the TLS substrate that RITM operates on: a
// miniature TLS-1.2-style protocol with a plaintext negotiation phase, an
// X25519 key exchange authenticated by the server's certificate chain,
// AES-GCM-protected application records, and both session-identifier and
// session-ticket resumption (RFC 5246/5077 analogues, §III of the paper).
//
// The protocol is deliberately parsable by an on-path middlebox: handshake
// records are cleartext, the server certificate chain crosses the wire
// unencrypted, and a dedicated record content type (ContentRITMStatus)
// carries revocation statuses injected by Revocation Agents. This realizes
// RA-to-client communication method 1/3 of §VIII — the status travels in
// the TLS stream itself, with the middlebox adjusting the byte stream —
// without the client confusing it for handshake or application data.
//
// It is a protocol simulator for research, not a secure TLS implementation:
// the paper assumes "TLS and the cryptographic primitives are secure" and
// this package exists so the rest of the system has a realistic, fully
// inspectable TLS path to interpose on.
package tlssim

import (
	"errors"
	"fmt"
	"io"
)

// ContentType labels a record, mirroring TLS content types.
type ContentType uint8

// Record content types. ContentRITMStatus is the dedicated type of §VIII
// (method 1): clients that support RITM consume it, the TLS state machine
// never sees it.
const (
	ContentAlert           ContentType = 21
	ContentHandshake       ContentType = 22
	ContentApplicationData ContentType = 23
	ContentRITMStatus      ContentType = 100
)

// String names the content type for logs and errors.
func (ct ContentType) String() string {
	switch ct {
	case ContentAlert:
		return "alert"
	case ContentHandshake:
		return "handshake"
	case ContentApplicationData:
		return "application-data"
	case ContentRITMStatus:
		return "ritm-status"
	default:
		return fmt.Sprintf("ContentType(%d)", uint8(ct))
	}
}

// Record layer constants.
const (
	// recordVersion is the legacy version field (TLS 1.2 = 0x0303).
	recordVersionHi = 0x03
	recordVersionLo = 0x03
	// recordHeaderLen is type(1) + version(2) + length(2).
	recordHeaderLen = 5
	// MaxRecordPayload bounds one record's payload, mirroring TLS's 2^14
	// plus expansion allowance.
	MaxRecordPayload = 1<<14 + 2048
)

// Record layer errors.
var (
	// ErrRecordTooLarge reports a record exceeding MaxRecordPayload.
	ErrRecordTooLarge = errors.New("tlssim: record exceeds maximum size")
	// ErrBadRecord reports a malformed record header.
	ErrBadRecord = errors.New("tlssim: malformed record")
	// ErrAlert reports receipt of a fatal alert from the peer.
	ErrAlert = errors.New("tlssim: fatal alert from peer")
)

// Record is one record-layer unit.
type Record struct {
	Type    ContentType
	Payload []byte
}

// AppendRecord appends the record's wire encoding to dst and returns the
// extended slice. Used by the RA proxy to splice statuses into the stream
// without extra copies.
func AppendRecord(dst []byte, rec Record) ([]byte, error) {
	if len(rec.Payload) > MaxRecordPayload {
		return dst, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec.Payload))
	}
	dst = append(dst, byte(rec.Type), recordVersionHi, recordVersionLo,
		byte(len(rec.Payload)>>8), byte(len(rec.Payload)))
	return append(dst, rec.Payload...), nil
}

// WriteRecord writes one record to w.
func WriteRecord(w io.Writer, rec Record) error {
	buf, err := AppendRecord(make([]byte, 0, recordHeaderLen+len(rec.Payload)), rec)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("write %v record: %w", rec.Type, err)
	}
	return nil
}

// ReadRecord reads one record from r. The payload is freshly allocated.
func ReadRecord(r io.Reader) (Record, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("read record header: %w", err)
	}
	rec, n, err := parseRecordHeader(hdr[:])
	if err != nil {
		return Record{}, err
	}
	rec.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, rec.Payload); err != nil {
		return Record{}, fmt.Errorf("read record payload: %w", err)
	}
	return rec, nil
}

// parseRecordHeader validates the 5-byte header and returns the (empty)
// record plus the payload length.
func parseRecordHeader(hdr []byte) (Record, int, error) {
	if hdr[1] != recordVersionHi || hdr[2] != recordVersionLo {
		return Record{}, 0, fmt.Errorf("%w: version %02x%02x", ErrBadRecord, hdr[1], hdr[2])
	}
	n := int(hdr[3])<<8 | int(hdr[4])
	if n > MaxRecordPayload {
		return Record{}, 0, fmt.Errorf("%w: length %d", ErrRecordTooLarge, n)
	}
	return Record{Type: ContentType(hdr[0])}, n, nil
}

// Alert payloads: one level byte (always fatal here) and one reason byte.
type alertReason uint8

const (
	alertCloseNotify      alertReason = 0
	alertHandshakeFailure alertReason = 40
	alertBadCertificate   alertReason = 42
	alertCertRevoked      alertReason = 44
	alertDecryptError     alertReason = 51
	alertRITMPolicy       alertReason = 120 // revocation status missing/stale
)

func (a alertReason) String() string {
	switch a {
	case alertCloseNotify:
		return "close notify"
	case alertHandshakeFailure:
		return "handshake failure"
	case alertBadCertificate:
		return "bad certificate"
	case alertCertRevoked:
		return "certificate revoked"
	case alertDecryptError:
		return "decrypt error"
	case alertRITMPolicy:
		return "ritm policy violation"
	default:
		return fmt.Sprintf("alert(%d)", uint8(a))
	}
}

// alertRecord builds an alert record.
func alertRecord(reason alertReason) Record {
	return Record{Type: ContentAlert, Payload: []byte{2 /* fatal */, byte(reason)}}
}

// parseAlert interprets an alert payload as an error.
func parseAlert(payload []byte) error {
	if len(payload) != 2 {
		return fmt.Errorf("%w: bad alert payload", ErrBadRecord)
	}
	reason := alertReason(payload[1])
	if reason == alertCloseNotify {
		return io.EOF
	}
	return fmt.Errorf("%w: %v", ErrAlert, reason)
}
