package tlssim

import (
	"errors"
	"fmt"

	"ritm/internal/cert"
	"ritm/internal/wire"
)

// HandshakeType labels a handshake message, mirroring TLS's values.
type HandshakeType uint8

// Handshake message types.
const (
	TypeClientHello       HandshakeType = 1
	TypeServerHello       HandshakeType = 2
	TypeNewSessionTicket  HandshakeType = 4
	TypeCertificate       HandshakeType = 11
	TypeServerKeyExchange HandshakeType = 12
	TypeServerHelloDone   HandshakeType = 14
	TypeClientKeyExchange HandshakeType = 16
	TypeFinished          HandshakeType = 20
)

// String names the handshake type.
func (ht HandshakeType) String() string {
	switch ht {
	case TypeClientHello:
		return "ClientHello"
	case TypeServerHello:
		return "ServerHello"
	case TypeNewSessionTicket:
		return "NewSessionTicket"
	case TypeCertificate:
		return "Certificate"
	case TypeServerKeyExchange:
		return "ServerKeyExchange"
	case TypeServerHelloDone:
		return "ServerHelloDone"
	case TypeClientKeyExchange:
		return "ClientKeyExchange"
	case TypeFinished:
		return "Finished"
	default:
		return fmt.Sprintf("HandshakeType(%d)", uint8(ht))
	}
}

// Extension identifiers carried in hello messages.
const (
	// ExtSessionTicket carries a resumption ticket (RFC 5077 analogue).
	ExtSessionTicket uint16 = 35
	// ExtRITMSupport marks a ClientHello as RITM-supporting: "I'm deploying
	// RITM" in Fig 3. On-path RAs create connection state when they see it.
	ExtRITMSupport uint16 = 0xFF01
	// ExtRITMServerDeployed is the server-side deployment confirmation of
	// §IV/§V: a TLS terminator that runs an RA sets it in the ServerHello,
	// which the TLS handshake authenticates, defeating downgrade attacks.
	ExtRITMServerDeployed uint16 = 0xFF02
)

// ErrBadHandshake reports a malformed handshake message.
var ErrBadHandshake = errors.New("tlssim: malformed handshake message")

// randomLen is the size of hello randoms, as in TLS.
const randomLen = 32

// Extension is one (type, data) extension pair.
type Extension struct {
	Type uint16
	Data []byte
}

// extensionList helpers shared by both hellos.
func encodeExtensions(e *wire.Encoder, exts []Extension) {
	e.Uvarint(uint64(len(exts)))
	for _, x := range exts {
		e.Uint16(x.Type)
		e.BytesField(x.Data)
	}
}

func decodeExtensions(d *wire.Decoder) ([]Extension, error) {
	count := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	const maxExts = 64
	if count > maxExts {
		return nil, fmt.Errorf("%w: %d extensions", ErrBadHandshake, count)
	}
	exts := make([]Extension, 0, count)
	for i := uint64(0); i < count; i++ {
		var x Extension
		x.Type = d.Uint16()
		x.Data = d.BytesCopy()
		if d.Err() != nil {
			return nil, d.Err()
		}
		exts = append(exts, x)
	}
	return exts, nil
}

// findExtension returns the first extension of the given type.
func findExtension(exts []Extension, typ uint16) ([]byte, bool) {
	for _, x := range exts {
		if x.Type == typ {
			return x.Data, true
		}
	}
	return nil, false
}

// Handshake is a parsed handshake message: the type plus the raw body. The
// raw encoding (header + body) feeds the transcript hash, so it is kept.
type Handshake struct {
	Type HandshakeType
	Body []byte
}

// Encode frames the message as type(1) | length(3) | body, the payload of a
// handshake record.
func (h Handshake) Encode() []byte {
	out := make([]byte, 4+len(h.Body))
	out[0] = byte(h.Type)
	out[1] = byte(len(h.Body) >> 16)
	out[2] = byte(len(h.Body) >> 8)
	out[3] = byte(len(h.Body))
	copy(out[4:], h.Body)
	return out
}

// ParseHandshake parses a handshake record payload into one message. The
// protocol emits exactly one handshake message per record.
func ParseHandshake(payload []byte) (Handshake, error) {
	if len(payload) < 4 {
		return Handshake{}, fmt.Errorf("%w: short header", ErrBadHandshake)
	}
	n := int(payload[1])<<16 | int(payload[2])<<8 | int(payload[3])
	if n != len(payload)-4 {
		return Handshake{}, fmt.Errorf("%w: length %d in %d-byte payload", ErrBadHandshake, n, len(payload))
	}
	return Handshake{Type: HandshakeType(payload[0]), Body: payload[4:]}, nil
}

// ClientHello opens the negotiation (Fig 3 step 1).
type ClientHello struct {
	Random     [randomLen]byte
	SessionID  []byte // non-empty to request session-ID resumption
	Extensions []Extension
}

// SupportsRITM reports whether the hello carries the RITM extension.
func (m *ClientHello) SupportsRITM() bool {
	_, ok := findExtension(m.Extensions, ExtRITMSupport)
	return ok
}

// SessionTicket returns the resumption ticket extension, if present.
func (m *ClientHello) SessionTicket() ([]byte, bool) {
	return findExtension(m.Extensions, ExtSessionTicket)
}

// Marshal encodes the message with its handshake framing.
func (m *ClientHello) Marshal() Handshake {
	e := wire.NewEncoder(128)
	e.Raw(m.Random[:])
	e.BytesField(m.SessionID)
	encodeExtensions(e, m.Extensions)
	return Handshake{Type: TypeClientHello, Body: e.Bytes()}
}

// ParseClientHello decodes a ClientHello body.
func ParseClientHello(body []byte) (*ClientHello, error) {
	d := wire.NewDecoder(body)
	var m ClientHello
	copy(m.Random[:], d.Raw(randomLen))
	m.SessionID = d.BytesCopy()
	exts, err := decodeExtensions(d)
	if err != nil {
		return nil, fmt.Errorf("ClientHello: %w", err)
	}
	m.Extensions = exts
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("ClientHello: %w", err)
	}
	return &m, nil
}

// ServerHello answers the ClientHello (Fig 3 step 3).
type ServerHello struct {
	Random [randomLen]byte
	// SessionID echoes the client's ID on resumption, or names a new
	// session the client may resume later. Empty disables ID resumption.
	SessionID []byte
	// Resumed is true when the server accepted resumption (by ID or
	// ticket) and will skip the certificate and key-exchange flight.
	Resumed    bool
	Extensions []Extension
}

// DeploysRITM reports the server-side deployment confirmation (§IV).
func (m *ServerHello) DeploysRITM() bool {
	_, ok := findExtension(m.Extensions, ExtRITMServerDeployed)
	return ok
}

// Marshal encodes the message with its handshake framing.
func (m *ServerHello) Marshal() Handshake {
	e := wire.NewEncoder(128)
	e.Raw(m.Random[:])
	e.BytesField(m.SessionID)
	e.Bool(m.Resumed)
	encodeExtensions(e, m.Extensions)
	return Handshake{Type: TypeServerHello, Body: e.Bytes()}
}

// ParseServerHello decodes a ServerHello body.
func ParseServerHello(body []byte) (*ServerHello, error) {
	d := wire.NewDecoder(body)
	var m ServerHello
	copy(m.Random[:], d.Raw(randomLen))
	m.SessionID = d.BytesCopy()
	m.Resumed = d.Bool()
	exts, err := decodeExtensions(d)
	if err != nil {
		return nil, fmt.Errorf("ServerHello: %w", err)
	}
	m.Extensions = exts
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("ServerHello: %w", err)
	}
	return &m, nil
}

// CertificateMsg carries the server chain, leaf first (Fig 3 step 3).
type CertificateMsg struct {
	Chain cert.Chain
}

// Marshal encodes the message with its handshake framing.
func (m *CertificateMsg) Marshal() Handshake {
	e := wire.NewEncoder(512)
	m.Chain.EncodeTo(e)
	return Handshake{Type: TypeCertificate, Body: e.Bytes()}
}

// ParseCertificateMsg decodes a Certificate body.
func ParseCertificateMsg(body []byte) (*CertificateMsg, error) {
	d := wire.NewDecoder(body)
	ch, err := cert.DecodeChainFrom(d)
	if err != nil {
		return nil, fmt.Errorf("Certificate: %w", err)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("Certificate: %w", err)
	}
	return &CertificateMsg{Chain: ch}, nil
}

// ServerKeyExchange carries the server's ephemeral X25519 public key signed
// by the certificate key, binding the key exchange to the certificate.
type ServerKeyExchange struct {
	Public    []byte // 32-byte X25519 public key
	Signature []byte // over client random ‖ server random ‖ public
}

// Marshal encodes the message with its handshake framing.
func (m *ServerKeyExchange) Marshal() Handshake {
	e := wire.NewEncoder(128)
	e.BytesField(m.Public)
	e.BytesField(m.Signature)
	return Handshake{Type: TypeServerKeyExchange, Body: e.Bytes()}
}

// ParseServerKeyExchange decodes a ServerKeyExchange body.
func ParseServerKeyExchange(body []byte) (*ServerKeyExchange, error) {
	d := wire.NewDecoder(body)
	var m ServerKeyExchange
	m.Public = d.BytesCopy()
	m.Signature = d.BytesCopy()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("ServerKeyExchange: %w", err)
	}
	return &m, nil
}

// ClientKeyExchange carries the client's ephemeral X25519 public key.
type ClientKeyExchange struct {
	Public []byte
}

// Marshal encodes the message with its handshake framing.
func (m *ClientKeyExchange) Marshal() Handshake {
	e := wire.NewEncoder(64)
	e.BytesField(m.Public)
	return Handshake{Type: TypeClientKeyExchange, Body: e.Bytes()}
}

// ParseClientKeyExchange decodes a ClientKeyExchange body.
func ParseClientKeyExchange(body []byte) (*ClientKeyExchange, error) {
	d := wire.NewDecoder(body)
	var m ClientKeyExchange
	m.Public = d.BytesCopy()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("ClientKeyExchange: %w", err)
	}
	return &m, nil
}

// Finished closes each side's handshake with a MAC over the transcript.
type Finished struct {
	VerifyData []byte
}

// Marshal encodes the message with its handshake framing.
func (m *Finished) Marshal() Handshake {
	e := wire.NewEncoder(48)
	e.BytesField(m.VerifyData)
	return Handshake{Type: TypeFinished, Body: e.Bytes()}
}

// ParseFinished decodes a Finished body.
func ParseFinished(body []byte) (*Finished, error) {
	d := wire.NewDecoder(body)
	var m Finished
	m.VerifyData = d.BytesCopy()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("Finished: %w", err)
	}
	return &m, nil
}

// NewSessionTicket delivers a resumption ticket (RFC 5077 analogue).
type NewSessionTicket struct {
	LifetimeSecs uint32
	Ticket       []byte
}

// Marshal encodes the message with its handshake framing.
func (m *NewSessionTicket) Marshal() Handshake {
	e := wire.NewEncoder(64 + len(m.Ticket))
	e.Uint32(m.LifetimeSecs)
	e.BytesField(m.Ticket)
	return Handshake{Type: TypeNewSessionTicket, Body: e.Bytes()}
}

// ParseNewSessionTicket decodes a NewSessionTicket body.
func ParseNewSessionTicket(body []byte) (*NewSessionTicket, error) {
	d := wire.NewDecoder(body)
	var m NewSessionTicket
	m.LifetimeSecs = d.Uint32()
	m.Ticket = d.BytesCopy()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("NewSessionTicket: %w", err)
	}
	return &m, nil
}

// ServerHelloDone marks the end of the server's first flight.
type ServerHelloDone struct{}

// Marshal encodes the message with its handshake framing.
func (ServerHelloDone) Marshal() Handshake {
	return Handshake{Type: TypeServerHelloDone}
}
