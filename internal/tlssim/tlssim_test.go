package tlssim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"

	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

// testEnv is a server identity plus a client trust pool.
type testEnv struct {
	pool      *cert.Pool
	chain     cert.Chain
	serverKey *cryptoutil.Signer
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	caKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	serverKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	root, err := cert.SelfSigned("CA1", caKey, 0, 1<<40, 10)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := cert.Issue("CA1", caKey, cert.Template{
		SerialNumber: serial.FromUint64(0x73E10A5),
		Subject:      "example.com",
		NotBefore:    0,
		NotAfter:     1 << 40,
		PublicKey:    serverKey.Public(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cert.NewPool(root)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{pool: pool, chain: cert.Chain{leaf}, serverKey: serverKey}
}

// handshakePair runs client and server handshakes over a pipe and returns
// the connected pair.
func handshakePair(t *testing.T, clientCfg, serverCfg *Config) (*Conn, *Conn) {
	t.Helper()
	cRaw, sRaw := net.Pipe()
	client := Client(cRaw, clientCfg)
	server := Server(sRaw, serverCfg)
	errCh := make(chan error, 1)
	go func() { errCh <- server.Handshake() }()
	if err := client.Handshake(); err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	t.Cleanup(func() {
		client.Close()
		server.Close()
	})
	return client, server
}

func (e *testEnv) clientConfig() *Config {
	return &Config{Pool: e.pool, ServerName: "example.com", RequestRITM: true}
}

func (e *testEnv) serverConfig() *Config {
	return &Config{Chain: e.chain, Key: e.serverKey}
}

func TestFullHandshakeAndEcho(t *testing.T) {
	env := newTestEnv(t)
	client, server := handshakePair(t, env.clientConfig(), env.serverConfig())

	// Server echoes in the background.
	go func() {
		buf := make([]byte, 256)
		n, err := server.Read(buf)
		if err != nil {
			return
		}
		server.Write(buf[:n])
	}()

	msg := []byte("GET / HTTP/1.1")
	if _, err := client.Write(msg); err != nil {
		t.Fatalf("client write: %v", err)
	}
	buf := make([]byte, 256)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatalf("client read: %v", err)
	}
	if !bytes.Equal(buf[:n], msg) {
		t.Errorf("echo = %q, want %q", buf[:n], msg)
	}

	st := client.ConnectionState()
	if st.ServerCA != "CA1" {
		t.Errorf("ServerCA = %s, want CA1", st.ServerCA)
	}
	if !st.ServerSerial.Equal(serial.FromUint64(0x73E10A5)) {
		t.Errorf("ServerSerial = %v", st.ServerSerial)
	}
	if st.Resumed {
		t.Error("full handshake marked resumed")
	}
	if !st.RITMRequested {
		t.Error("RITM extension not recorded")
	}
}

func TestLargeTransferFragments(t *testing.T) {
	env := newTestEnv(t)
	client, server := handshakePair(t, env.clientConfig(), env.serverConfig())

	payload := bytes.Repeat([]byte("ritm"), 20_000) // 80 KB, several records
	go func() {
		server.Write(payload)
		server.Close()
	}()
	got, err := io.ReadAll(client)
	if err != nil && !errors.Is(err, io.EOF) {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("transfer mismatch: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestServerNameMismatchRejected(t *testing.T) {
	env := newTestEnv(t)
	cfg := env.clientConfig()
	cfg.ServerName = "other.com"

	cRaw, sRaw := net.Pipe()
	client := Client(cRaw, cfg)
	server := Server(sRaw, env.serverConfig())
	go server.Handshake() //nolint:errcheck // failure expected
	if err := client.Handshake(); err == nil {
		t.Fatal("handshake with wrong server name succeeded")
	}
	cRaw.Close()
	sRaw.Close()
}

func TestUntrustedChainRejected(t *testing.T) {
	env := newTestEnv(t)
	otherEnv := newTestEnv(t) // different root CA

	cRaw, sRaw := net.Pipe()
	client := Client(cRaw, env.clientConfig())
	server := Server(sRaw, otherEnv.serverConfig())
	go server.Handshake() //nolint:errcheck // failure expected
	err := client.Handshake()
	if err == nil {
		t.Fatal("handshake with untrusted chain succeeded")
	}
	if !errors.Is(err, ErrHandshakeFailed) {
		t.Errorf("err = %v, want ErrHandshakeFailed", err)
	}
	cRaw.Close()
	sRaw.Close()
}

func TestSessionIDResumption(t *testing.T) {
	env := newTestEnv(t)
	cache := NewClientSessionCache()
	serverCfg := env.serverConfig()

	// First connection: full handshake populates the cache.
	cfg1 := env.clientConfig()
	cfg1.SessionCache = cache
	c1, _ := handshakePair(t, cfg1, serverCfg)
	if c1.ConnectionState().Resumed {
		t.Fatal("first connection resumed")
	}

	// Second connection: abbreviated handshake.
	cfg2 := env.clientConfig()
	cfg2.SessionCache = cache
	c2, s2 := handshakePair(t, cfg2, serverCfg)
	st := c2.ConnectionState()
	if !st.Resumed {
		t.Fatal("second connection not resumed")
	}
	// The resumed connection still knows the server certificate identity.
	if st.ServerCA != "CA1" || !st.ServerSerial.Equal(serial.FromUint64(0x73E10A5)) {
		t.Errorf("resumed state lost certificate identity: %+v", st)
	}
	if !s2.ConnectionState().Resumed {
		t.Error("server side not marked resumed")
	}

	// Data still flows.
	go s2.Write([]byte("pong"))
	buf := make([]byte, 16)
	n, err := c2.Read(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Errorf("read after resumption: %q, %v", buf[:n], err)
	}
}

func TestSessionTicketResumption(t *testing.T) {
	env := newTestEnv(t)
	cache := NewClientSessionCache()
	var ticketKey [32]byte
	copy(ticketKey[:], bytes.Repeat([]byte{7}, 32))

	serverCfg := env.serverConfig()
	serverCfg.TicketKey = &ticketKey
	serverCfg.DisableSessionID = true // force ticket-only resumption

	cfg1 := env.clientConfig()
	cfg1.SessionCache = cache
	handshakePair(t, cfg1, serverCfg)

	// A *different* server config object with the same ticket key must be
	// able to resume: tickets are stateless on the server.
	serverCfg2 := env.serverConfig()
	serverCfg2.TicketKey = &ticketKey
	serverCfg2.DisableSessionID = true

	cfg2 := env.clientConfig()
	cfg2.SessionCache = cache
	c2, _ := handshakePair(t, cfg2, serverCfg2)
	if !c2.ConnectionState().Resumed {
		t.Fatal("ticket resumption failed")
	}
	if c2.ConnectionState().ServerCA != "CA1" {
		t.Error("ticket resumption lost certificate identity")
	}
}

func TestResumptionDeclinedFallsBackToFull(t *testing.T) {
	env := newTestEnv(t)
	cache := NewClientSessionCache()

	cfg1 := env.clientConfig()
	cfg1.SessionCache = cache
	handshakePair(t, cfg1, env.serverConfig())

	// A brand-new server config has no session cache entries and no ticket
	// key, so it declines and the client falls back to a full handshake.
	cfg2 := env.clientConfig()
	cfg2.SessionCache = cache
	c2, _ := handshakePair(t, cfg2, env.serverConfig())
	if c2.ConnectionState().Resumed {
		t.Fatal("resumption against a fresh server succeeded")
	}
	if c2.ConnectionState().ServerCA != "CA1" {
		t.Error("fallback handshake lost certificate identity")
	}
}

func TestServerDeploymentConfirmation(t *testing.T) {
	env := newTestEnv(t)
	serverCfg := env.serverConfig()
	serverCfg.AnnounceRITM = true
	client, _ := handshakePair(t, env.clientConfig(), serverCfg)
	if !client.ConnectionState().ServerDeploysRITM {
		t.Error("deployment confirmation not visible to client")
	}
}

func TestStatusRecordsDispatchedToHandler(t *testing.T) {
	env := newTestEnv(t)

	var received [][]byte
	cfg := env.clientConfig()
	cfg.OnStatus = func(raw []byte, st *ConnectionState) error {
		received = append(received, append([]byte(nil), raw...))
		return nil
	}

	cRaw, sRaw := net.Pipe()
	client := Client(cRaw, cfg)
	// A fake middlebox terminates the raw connection: it runs a real server
	// handshake but injects a status record between handshake flights and
	// before application data.
	serverCfg := env.serverConfig()
	server := Server(&statusInjectingConn{Conn: sRaw, inject: []byte("status-1")}, serverCfg)

	errCh := make(chan error, 1)
	go func() { errCh <- server.Handshake() }()
	if err := client.Handshake(); err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	go server.Write([]byte("data"))
	buf := make([]byte, 16)
	if _, err := client.Read(buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(received) == 0 {
		t.Fatal("status record never reached the handler")
	}
	if string(received[0]) != "status-1" {
		t.Errorf("status payload = %q", received[0])
	}
	client.Close()
	server.Close()
}

// statusInjectingConn wraps the server's net.Conn and injects one RITM
// status record immediately after the first write (the ServerHello flight),
// simulating an on-path RA.
type statusInjectingConn struct {
	net.Conn
	inject   []byte
	injected bool
}

func (c *statusInjectingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if err != nil {
		return n, err
	}
	if !c.injected {
		c.injected = true
		rec, recErr := AppendRecord(nil, Record{Type: ContentRITMStatus, Payload: c.inject})
		if recErr != nil {
			return n, recErr
		}
		if _, err := c.Conn.Write(rec); err != nil {
			return n, err
		}
	}
	return n, nil
}

func TestStatusHandlerRejectionAbortsConnection(t *testing.T) {
	env := newTestEnv(t)
	cfg := env.clientConfig()
	cfg.OnStatus = func(raw []byte, st *ConnectionState) error {
		return errors.New("revoked")
	}

	cRaw, sRaw := net.Pipe()
	client := Client(cRaw, cfg)
	server := Server(sRaw, env.serverConfig())
	errCh := make(chan error, 1)
	go func() { errCh <- server.Handshake() }()
	if err := client.Handshake(); err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	defer client.Close()
	defer server.Close()

	// Inject a status record server→client after the handshake.
	rec, err := AppendRecord(nil, Record{Type: ContentRITMStatus, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	go sRaw.Write(rec) //nolint:errcheck // best-effort injection

	buf := make([]byte, 16)
	_, readErr := client.Read(buf)
	if !errors.Is(readErr, ErrStatusRejected) {
		t.Errorf("Read err = %v, want ErrStatusRejected", readErr)
	}
}

func TestTamperedApplicationRecordRejected(t *testing.T) {
	env := newTestEnv(t)

	cRaw, sRaw := net.Pipe()
	tamper := &tamperingConn{Conn: sRaw}
	client := Client(cRaw, env.clientConfig())
	server := Server(tamper, env.serverConfig())
	errCh := make(chan error, 1)
	go func() { errCh <- server.Handshake() }()
	if err := client.Handshake(); err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	defer client.Close()
	defer server.Close()

	tamper.tamperNext.Store(true)
	go server.Write([]byte("secret"))
	buf := make([]byte, 16)
	if _, err := client.Read(buf); !errors.Is(err, ErrDecrypt) {
		t.Errorf("Read err = %v, want ErrDecrypt", err)
	}
}

// tamperingConn flips a bit in the payload of the next application record.
type tamperingConn struct {
	net.Conn
	tamperNext atomic.Bool
}

func (c *tamperingConn) Write(p []byte) (int, error) {
	if c.tamperNext.Load() && len(p) > recordHeaderLen && p[0] == byte(ContentApplicationData) {
		c.tamperNext.Store(false)
		mutated := append([]byte(nil), p...)
		mutated[len(mutated)-1] ^= 1
		n, err := c.Conn.Write(mutated)
		if n > len(p) {
			n = len(p)
		}
		return n, err
	}
	return c.Conn.Write(p)
}

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Record{Type: ContentHandshake, Payload: []byte{1, 2, 3}}
	if err := WriteRecord(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
		t.Errorf("round trip: %+v != %+v", got, want)
	}
}

func TestRecordSizeLimit(t *testing.T) {
	_, err := AppendRecord(nil, Record{Type: ContentHandshake, Payload: make([]byte, MaxRecordPayload+1)})
	if !errors.Is(err, ErrRecordTooLarge) {
		t.Errorf("err = %v, want ErrRecordTooLarge", err)
	}
}

func TestReadRecordBadVersion(t *testing.T) {
	_, err := ReadRecord(bytes.NewReader([]byte{22, 9, 9, 0, 0}))
	if !errors.Is(err, ErrBadRecord) {
		t.Errorf("err = %v, want ErrBadRecord", err)
	}
}

func TestHandshakeMessageCodecs(t *testing.T) {
	ch := &ClientHello{
		SessionID: []byte{1, 2, 3},
		Extensions: []Extension{
			{Type: ExtRITMSupport},
			{Type: ExtSessionTicket, Data: []byte("ticket")},
		},
	}
	msg := ch.Marshal()
	parsed, err := ParseHandshake(msg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseClientHello(parsed.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SupportsRITM() {
		t.Error("RITM extension lost")
	}
	if ticket, ok := got.SessionTicket(); !ok || string(ticket) != "ticket" {
		t.Error("ticket extension lost")
	}
	if !bytes.Equal(got.SessionID, ch.SessionID) {
		t.Error("session ID lost")
	}
}

func TestTicketSealOpenRoundTrip(t *testing.T) {
	var key [32]byte
	key[0] = 9
	s := Session{ServerName: "example.com", ServerCA: "CA1", ServerSerial: serial.FromUint64(7)}
	s.Master[3] = 0xAB
	ticket, err := sealTicket(bytes.NewReader(bytes.Repeat([]byte{5}, 64)), key, s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := openTicket(key, ticket)
	if err != nil {
		t.Fatal(err)
	}
	if got.ServerName != s.ServerName || got.ServerCA != s.ServerCA ||
		!got.ServerSerial.Equal(s.ServerSerial) || got.Master != s.Master {
		t.Error("ticket round trip lost state")
	}

	// Wrong key fails.
	var wrong [32]byte
	if _, err := openTicket(wrong, ticket); err == nil {
		t.Error("ticket opened with wrong key")
	}
	// Tampered ticket fails.
	ticket[len(ticket)-1] ^= 1
	if _, err := openTicket(key, ticket); err == nil {
		t.Error("tampered ticket opened")
	}
}
