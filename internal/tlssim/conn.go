package tlssim

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// Connection errors.
var (
	// ErrHandshakeFailed reports a handshake that could not complete.
	ErrHandshakeFailed = errors.New("tlssim: handshake failed")
	// ErrDecrypt reports an application record that failed authentication.
	ErrDecrypt = errors.New("tlssim: record decryption failed")
	// ErrStatusRejected reports that the status callback refused a
	// revocation status; the connection is terminated.
	ErrStatusRejected = errors.New("tlssim: revocation status rejected by policy")
)

// ConnectionState describes an established connection.
type ConnectionState struct {
	// ServerName is the name the client asked for.
	ServerName string
	// PeerChain is the server's certificate chain (nil on resumed
	// connections, where no Certificate message is sent).
	PeerChain cert.Chain
	// ServerCA identifies the CA that issued the server certificate; with
	// ServerSerial it selects the dictionary entry for revocation checks.
	ServerCA dictionary.CAID
	// ServerSerial is the server certificate's serial number.
	ServerSerial serial.Number
	// Resumed reports an abbreviated handshake.
	Resumed bool
	// RITMRequested reports that the ClientHello carried the RITM extension.
	RITMRequested bool
	// ServerDeploysRITM reports the server-side deployment confirmation
	// (§IV), authenticated by the handshake.
	ServerDeploysRITM bool
}

// StatusHandler consumes a raw revocation status injected by an on-path RA
// (a ContentRITMStatus record). Returning an error terminates the
// connection with a policy alert. The handler runs on the reading
// goroutine.
type StatusHandler func(raw []byte, state *ConnectionState) error

// Config configures a client or server connection. A Config may be shared
// across connections.
type Config struct {
	// Rand sources all randomness (nil = crypto/rand.Reader).
	Rand io.Reader
	// Time returns the current time (nil = time.Now); injected by tests and
	// virtual-clock experiments.
	Time func() time.Time

	// Pool anchors server chain validation (client side).
	Pool *cert.Pool
	// ServerName is the expected leaf subject (client side).
	ServerName string
	// RequestRITM adds the RITM extension to the ClientHello (Fig 3):
	// "I'm deploying RITM".
	RequestRITM bool
	// SessionCache enables client-side resumption when non-nil.
	SessionCache *ClientSessionCache
	// OnStatus receives RA-injected revocation statuses (client side).
	// If nil, status records are discarded.
	OnStatus StatusHandler
	// InsecureSkipVerify disables chain validation (tests and baselines
	// that model pre-RITM behaviour).
	InsecureSkipVerify bool

	// Chain is the server's certificate chain, leaf first (server side).
	Chain cert.Chain
	// Key is the server's private key; it must match Chain[0] (server side).
	Key *cryptoutil.Signer
	// AnnounceRITM adds the deployment-confirmation extension to the
	// ServerHello, used by the TLS-terminator deployment model (§IV).
	AnnounceRITM bool
	// TicketKey enables session-ticket resumption when non-nil.
	TicketKey *[32]byte
	// DisableSessionID turns off session-ID resumption (server side).
	DisableSessionID bool

	sessionsOnce sync.Once
	sessions     *serverSessionCache
}

func (c *Config) rand() io.Reader {
	if c.Rand != nil {
		return c.Rand
	}
	return rand.Reader
}

func (c *Config) now() time.Time {
	if c.Time != nil {
		return c.Time()
	}
	return time.Now()
}

func (c *Config) serverSessions() *serverSessionCache {
	c.sessionsOnce.Do(func() { c.sessions = newServerSessionCache(0) })
	return c.sessions
}

// Conn is a TLS-sim connection over an underlying net.Conn. Reads and
// writes are each serialized by their own mutex, so one reader and one
// writer goroutine may operate concurrently.
type Conn struct {
	conn     net.Conn
	cfg      *Config
	isClient bool

	hsMu   sync.Mutex
	hsDone bool
	hsErr  error
	state  ConnectionState

	in, out *aeadState
	master  [masterSecretLen]byte

	readMu  sync.Mutex
	readBuf []byte // undelivered plaintext

	writeMu sync.Mutex

	closeOnce sync.Once
	closeErr  error
}

// Client wraps conn as the client side of a TLS-sim connection.
func Client(conn net.Conn, cfg *Config) *Conn {
	return &Conn{conn: conn, cfg: cfg, isClient: true}
}

// Server wraps conn as the server side of a TLS-sim connection.
func Server(conn net.Conn, cfg *Config) *Conn {
	return &Conn{conn: conn, cfg: cfg}
}

// Dial connects to addr and performs the client handshake.
func Dial(network, addr string, cfg *Config) (*Conn, error) {
	raw, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("tlssim dial: %w", err)
	}
	c := Client(raw, cfg)
	if err := c.Handshake(); err != nil {
		raw.Close()
		return nil, err
	}
	return c, nil
}

// Handshake runs the handshake if it has not run yet.
func (c *Conn) Handshake() error {
	c.hsMu.Lock()
	defer c.hsMu.Unlock()
	if c.hsDone || c.hsErr != nil {
		return c.hsErr
	}
	var err error
	if c.isClient {
		err = c.clientHandshake()
	} else {
		err = c.serverHandshake()
	}
	if err != nil {
		c.hsErr = fmt.Errorf("%w: %w", ErrHandshakeFailed, err)
		c.sendAlert(alertHandshakeFailure)
		return c.hsErr
	}
	c.hsDone = true
	return nil
}

// ConnectionState returns the negotiated state; zero before the handshake.
func (c *Conn) ConnectionState() ConnectionState {
	c.hsMu.Lock()
	defer c.hsMu.Unlock()
	return c.state
}

// LocalAddr returns the underlying local address.
func (c *Conn) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// RemoteAddr returns the underlying remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// SetReadDeadline sets the read deadline on the underlying connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// SetWriteDeadline sets the write deadline on the underlying connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }

// SetDeadline sets both deadlines on the underlying connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// alertWriteTimeout bounds best-effort alert writes so that closing a
// connection never blocks on a peer that stopped reading (synchronous
// transports like net.Pipe would otherwise block forever).
const alertWriteTimeout = 100 * time.Millisecond

// Close sends a close-notify alert (best effort) and closes the transport.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.sendAlert(alertCloseNotify)
		c.closeErr = c.conn.Close()
	})
	return c.closeErr
}

// Abort closes the connection with a policy alert; the RITM client uses it
// when a revocation status is missing, stale, or proves revocation.
func (c *Conn) Abort() error {
	c.closeOnce.Do(func() {
		c.sendAlert(alertRITMPolicy)
		c.closeErr = c.conn.Close()
	})
	return c.closeErr
}

func (c *Conn) sendAlert(reason alertReason) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	_ = c.conn.SetWriteDeadline(time.Now().Add(alertWriteTimeout))
	_ = WriteRecord(c.conn, alertRecord(reason))
	_ = c.conn.SetWriteDeadline(time.Time{})
}

// Write encrypts and sends application data, fragmenting into records.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.Handshake(); err != nil {
		return 0, err
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	const maxPlain = MaxRecordPayload - 256 // leave room for AEAD expansion
	written := 0
	for len(p) > 0 {
		chunk := p
		if len(chunk) > maxPlain {
			chunk = chunk[:maxPlain]
		}
		sealed := c.out.seal(chunk)
		if err := WriteRecord(c.conn, Record{Type: ContentApplicationData, Payload: sealed}); err != nil {
			return written, err
		}
		written += len(chunk)
		p = p[len(chunk):]
	}
	return written, nil
}

// Read returns decrypted application data. RA-injected status records are
// dispatched to the OnStatus handler transparently: application code never
// sees them (Fig 3 step 5: the client "removes the status from the
// message"). If the handler rejects a status, Read fails and the
// connection is aborted.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.Handshake(); err != nil {
		return 0, err
	}
	c.readMu.Lock()
	defer c.readMu.Unlock()
	for len(c.readBuf) == 0 {
		rec, err := ReadRecord(c.conn)
		if err != nil {
			return 0, err
		}
		switch rec.Type {
		case ContentApplicationData:
			pt, err := c.in.open(rec.Payload)
			if err != nil {
				c.sendAlert(alertDecryptError)
				return 0, err
			}
			c.readBuf = pt
		case ContentRITMStatus:
			if err := c.handleStatus(rec.Payload); err != nil {
				c.Abort()
				return 0, err
			}
		case ContentAlert:
			return 0, parseAlert(rec.Payload)
		default:
			return 0, fmt.Errorf("%w: unexpected %v record", ErrBadRecord, rec.Type)
		}
	}
	n := copy(p, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

func (c *Conn) handleStatus(raw []byte) error {
	if c.cfg.OnStatus == nil {
		return nil // non-RITM-aware endpoint: transparently discarded
	}
	// Read c.state directly: during the handshake this runs on the
	// handshaking goroutine (which owns the state); afterwards the state is
	// immutable. Taking hsMu here would self-deadlock mid-handshake.
	st := c.state
	if err := c.cfg.OnStatus(raw, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrStatusRejected, err)
	}
	return nil
}

// readHandshakeMessage reads records until a handshake message arrives,
// dispatching interleaved status records (an RA may inject its status
// between the server's handshake flights) and failing on alerts. The
// message is appended to the transcript and must be one of the expected
// types.
func (c *Conn) readHandshakeMessage(tr *transcript, expect ...HandshakeType) (Handshake, error) {
	for {
		rec, err := ReadRecord(c.conn)
		if err != nil {
			return Handshake{}, err
		}
		switch rec.Type {
		case ContentHandshake:
			msg, err := ParseHandshake(rec.Payload)
			if err != nil {
				return Handshake{}, err
			}
			for _, want := range expect {
				if msg.Type == want {
					tr.add(msg)
					return msg, nil
				}
			}
			return Handshake{}, fmt.Errorf("%w: got %v, want one of %v", ErrBadHandshake, msg.Type, expect)
		case ContentRITMStatus:
			if err := c.handleStatus(rec.Payload); err != nil {
				return Handshake{}, err
			}
		case ContentAlert:
			return Handshake{}, parseAlert(rec.Payload)
		default:
			return Handshake{}, fmt.Errorf("%w: %v record during handshake", ErrBadRecord, rec.Type)
		}
	}
}

// writeHandshake sends one handshake message and adds it to the transcript.
func (c *Conn) writeHandshake(tr *transcript, msg Handshake) error {
	tr.add(msg)
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return WriteRecord(c.conn, Record{Type: ContentHandshake, Payload: msg.Encode()})
}

func (c *Conn) setKeys(master [masterSecretLen]byte, clientRandom, serverRandom []byte) error {
	keys := deriveSessionKeys(master, clientRandom, serverRandom)
	var inKey, outKey [32]byte
	if c.isClient {
		inKey, outKey = keys.serverWrite, keys.clientWrite
	} else {
		inKey, outKey = keys.clientWrite, keys.serverWrite
	}
	in, err := newAEADState(inKey)
	if err != nil {
		return err
	}
	out, err := newAEADState(outKey)
	if err != nil {
		return err
	}
	c.in, c.out = in, out
	c.master = master
	return nil
}

// clientHandshake implements both the full and abbreviated client flows.
func (c *Conn) clientHandshake() error {
	var tr transcript
	var hello ClientHello
	if _, err := io.ReadFull(c.cfg.rand(), hello.Random[:]); err != nil {
		return fmt.Errorf("client random: %w", err)
	}
	if c.cfg.RequestRITM {
		hello.Extensions = append(hello.Extensions, Extension{Type: ExtRITMSupport})
	}
	cached, haveSession := c.cfg.SessionCache.get(c.cfg.ServerName)
	if haveSession {
		hello.SessionID = cached.sessionID
		if len(cached.ticket) > 0 {
			hello.Extensions = append(hello.Extensions, Extension{Type: ExtSessionTicket, Data: cached.ticket})
		}
	}
	if err := c.writeHandshake(&tr, hello.Marshal()); err != nil {
		return err
	}

	msg, err := c.readHandshakeMessage(&tr, TypeServerHello)
	if err != nil {
		return err
	}
	sh, err := ParseServerHello(msg.Body)
	if err != nil {
		return err
	}
	c.state = ConnectionState{
		ServerName:        c.cfg.ServerName,
		RITMRequested:     c.cfg.RequestRITM,
		ServerDeploysRITM: sh.DeploysRITM(),
	}

	if sh.Resumed {
		if !haveSession {
			return fmt.Errorf("%w: server resumed a session we do not hold", ErrBadHandshake)
		}
		return c.clientFinishResumed(&tr, cached, &hello, sh)
	}
	if haveSession {
		// Resumption declined; fall through to a full handshake and drop
		// the stale session.
		c.cfg.SessionCache.forget(c.cfg.ServerName)
	}

	// Full handshake: Certificate, ServerKeyExchange, ServerHelloDone.
	msg, err = c.readHandshakeMessage(&tr, TypeCertificate)
	if err != nil {
		return err
	}
	certMsg, err := ParseCertificateMsg(msg.Body)
	if err != nil {
		return err
	}
	leaf := certMsg.Chain.Leaf()
	if leaf == nil {
		return fmt.Errorf("%w: empty certificate chain", ErrBadHandshake)
	}
	if !c.cfg.InsecureSkipVerify {
		if c.cfg.Pool == nil {
			return fmt.Errorf("tlssim: client config has no certificate pool")
		}
		if _, err := c.cfg.Pool.VerifyChain(certMsg.Chain, c.cfg.now().Unix()); err != nil {
			c.sendAlert(alertBadCertificate)
			return err
		}
		if c.cfg.ServerName != "" && leaf.Subject != c.cfg.ServerName {
			c.sendAlert(alertBadCertificate)
			return fmt.Errorf("%w: certificate for %q, want %q", cert.ErrBadChain, leaf.Subject, c.cfg.ServerName)
		}
	}
	c.state.PeerChain = certMsg.Chain
	c.state.ServerCA = leaf.Issuer
	c.state.ServerSerial = leaf.SerialNumber

	msg, err = c.readHandshakeMessage(&tr, TypeServerKeyExchange)
	if err != nil {
		return err
	}
	ske, err := ParseServerKeyExchange(msg.Body)
	if err != nil {
		return err
	}
	if !c.cfg.InsecureSkipVerify {
		payload := keyExchangePayload(hello.Random[:], sh.Random[:], ske.Public)
		if err := cryptoutil.Verify(leaf.PublicKey, payload, ske.Signature); err != nil {
			return fmt.Errorf("server key exchange: %w", err)
		}
	}
	if _, err = c.readHandshakeMessage(&tr, TypeServerHelloDone); err != nil {
		return err
	}

	// Client key exchange and Finished.
	priv, err := ecdhKeypair(c.cfg.rand())
	if err != nil {
		return err
	}
	if err := c.writeHandshake(&tr, (&ClientKeyExchange{Public: priv.PublicKey().Bytes()}).Marshal()); err != nil {
		return err
	}
	shared, err := ecdhShared(priv, ske.Public)
	if err != nil {
		return err
	}
	master := masterFromECDH(shared, hello.Random[:], sh.Random[:])
	fin := &Finished{VerifyData: finishedMAC(master, "client finished", tr.bytes())}
	if err := c.writeHandshake(&tr, fin.Marshal()); err != nil {
		return err
	}

	// Server's closing flight: optional NewSessionTicket, then Finished.
	var ticket []byte
	msg, err = c.readHandshakeMessage(&tr, TypeNewSessionTicket, TypeFinished)
	if err != nil {
		return err
	}
	if msg.Type == TypeNewSessionTicket {
		nst, err := ParseNewSessionTicket(msg.Body)
		if err != nil {
			return err
		}
		ticket = nst.Ticket
		if msg, err = c.readHandshakeMessage(&tr, TypeFinished); err != nil {
			return err
		}
	}
	sfin, err := ParseFinished(msg.Body)
	if err != nil {
		return err
	}
	// The server MACs the transcript up to (and including) the client's
	// Finished but not its own; replicate by MACing everything added before
	// this message. The transcript already includes the server Finished, so
	// recompute over the prefix.
	prefix := tr.bytes()[:len(tr.bytes())-len(msg.Encode())]
	if err := verifyFinishedMAC(master, "server finished", prefix, sfin.VerifyData); err != nil {
		return err
	}

	if err := c.setKeys(master, hello.Random[:], sh.Random[:]); err != nil {
		return err
	}
	c.cacheSession(leaf, master, sh.SessionID, ticket)
	return nil
}

// clientFinishResumed completes an abbreviated handshake.
func (c *Conn) clientFinishResumed(tr *transcript, cached *clientSession, hello *ClientHello, sh *ServerHello) error {
	master := cached.session.Master
	c.state.Resumed = true
	c.state.ServerCA = cached.session.ServerCA
	c.state.ServerSerial = cached.session.ServerSerial

	msg, err := c.readHandshakeMessage(tr, TypeNewSessionTicket, TypeFinished)
	if err != nil {
		return err
	}
	if msg.Type == TypeNewSessionTicket {
		nst, err := ParseNewSessionTicket(msg.Body)
		if err != nil {
			return err
		}
		// Store the refreshed ticket as a new cache entry rather than
		// mutating the shared one.
		c.cfg.SessionCache.put(c.cfg.ServerName, &clientSession{
			session:   cached.session,
			sessionID: cached.sessionID,
			ticket:    nst.Ticket,
		})
		if msg, err = c.readHandshakeMessage(tr, TypeFinished); err != nil {
			return err
		}
	}
	sfin, err := ParseFinished(msg.Body)
	if err != nil {
		return err
	}
	prefix := tr.bytes()[:len(tr.bytes())-len(msg.Encode())]
	if err := verifyFinishedMAC(master, "server finished", prefix, sfin.VerifyData); err != nil {
		return err
	}
	fin := &Finished{VerifyData: finishedMAC(master, "client finished", tr.bytes())}
	if err := c.writeHandshake(tr, fin.Marshal()); err != nil {
		return err
	}
	return c.setKeys(master, hello.Random[:], sh.Random[:])
}

func (c *Conn) cacheSession(leaf *cert.Certificate, master [masterSecretLen]byte, sessionID, ticket []byte) {
	if c.cfg.SessionCache == nil || c.cfg.ServerName == "" {
		return
	}
	if len(sessionID) == 0 && len(ticket) == 0 {
		return
	}
	c.cfg.SessionCache.put(c.cfg.ServerName, &clientSession{
		session: Session{
			Master:       master,
			ServerName:   c.cfg.ServerName,
			ServerCA:     leaf.Issuer,
			ServerSerial: leaf.SerialNumber,
		},
		sessionID: sessionID,
		ticket:    ticket,
	})
}

// serverHandshake implements both the full and abbreviated server flows.
func (c *Conn) serverHandshake() error {
	if len(c.cfg.Chain) == 0 || c.cfg.Key == nil {
		return fmt.Errorf("tlssim: server config missing chain or key")
	}
	var tr transcript
	msg, err := c.readHandshakeMessage(&tr, TypeClientHello)
	if err != nil {
		return err
	}
	ch, err := ParseClientHello(msg.Body)
	if err != nil {
		return err
	}
	// Per Fig 3 the server ignores the RITM extension entirely; only the
	// TLS-terminator deployment (AnnounceRITM) reacts to the handshake.
	c.state = ConnectionState{RITMRequested: ch.SupportsRITM()}

	// Attempt resumption: ticket first (stateless), then session ID.
	var (
		resumed Session
		ok      bool
	)
	if ticket, has := ch.SessionTicket(); has && c.cfg.TicketKey != nil {
		if s, err := openTicket(*c.cfg.TicketKey, ticket); err == nil {
			resumed, ok = s, true
		}
	}
	if !ok && len(ch.SessionID) > 0 {
		resumed, ok = c.cfg.serverSessions().get(ch.SessionID)
	}

	var sh ServerHello
	if _, err := io.ReadFull(c.cfg.rand(), sh.Random[:]); err != nil {
		return fmt.Errorf("server random: %w", err)
	}
	if c.cfg.AnnounceRITM {
		sh.Extensions = append(sh.Extensions, Extension{Type: ExtRITMServerDeployed})
	}

	if ok {
		sh.Resumed = true
		sh.SessionID = ch.SessionID
		if err := c.writeHandshake(&tr, sh.Marshal()); err != nil {
			return err
		}
		c.state.Resumed = true
		c.state.ServerCA = resumed.ServerCA
		c.state.ServerSerial = resumed.ServerSerial
		sfin := &Finished{VerifyData: finishedMAC(resumed.Master, "server finished", tr.bytes())}
		if err := c.writeHandshake(&tr, sfin.Marshal()); err != nil {
			return err
		}
		msg, err := c.readHandshakeMessage(&tr, TypeFinished)
		if err != nil {
			return err
		}
		cfin, err := ParseFinished(msg.Body)
		if err != nil {
			return err
		}
		prefix := tr.bytes()[:len(tr.bytes())-len(msg.Encode())]
		if err := verifyFinishedMAC(resumed.Master, "client finished", prefix, cfin.VerifyData); err != nil {
			return err
		}
		return c.setKeys(resumed.Master, ch.Random[:], sh.Random[:])
	}

	// Full handshake.
	if !c.cfg.DisableSessionID {
		sh.SessionID = make([]byte, sessionIDLen)
		if _, err := io.ReadFull(c.cfg.rand(), sh.SessionID); err != nil {
			return fmt.Errorf("session id: %w", err)
		}
	}
	if err := c.writeHandshake(&tr, sh.Marshal()); err != nil {
		return err
	}
	if err := c.writeHandshake(&tr, (&CertificateMsg{Chain: c.cfg.Chain}).Marshal()); err != nil {
		return err
	}
	priv, err := ecdhKeypair(c.cfg.rand())
	if err != nil {
		return err
	}
	pub := priv.PublicKey().Bytes()
	ske := &ServerKeyExchange{
		Public:    pub,
		Signature: c.cfg.Key.Sign(keyExchangePayload(ch.Random[:], sh.Random[:], pub)),
	}
	if err := c.writeHandshake(&tr, ske.Marshal()); err != nil {
		return err
	}
	if err := c.writeHandshake(&tr, ServerHelloDone{}.Marshal()); err != nil {
		return err
	}

	msg, err = c.readHandshakeMessage(&tr, TypeClientKeyExchange)
	if err != nil {
		return err
	}
	cke, err := ParseClientKeyExchange(msg.Body)
	if err != nil {
		return err
	}
	shared, err := ecdhShared(priv, cke.Public)
	if err != nil {
		return err
	}
	master := masterFromECDH(shared, ch.Random[:], sh.Random[:])

	msg, err = c.readHandshakeMessage(&tr, TypeFinished)
	if err != nil {
		return err
	}
	cfin, err := ParseFinished(msg.Body)
	if err != nil {
		return err
	}
	prefix := tr.bytes()[:len(tr.bytes())-len(msg.Encode())]
	if err := verifyFinishedMAC(master, "client finished", prefix, cfin.VerifyData); err != nil {
		return err
	}

	leaf := c.cfg.Chain.Leaf()
	c.state.ServerCA = leaf.Issuer
	c.state.ServerSerial = leaf.SerialNumber
	session := Session{
		Master:       master,
		ServerName:   leaf.Subject,
		ServerCA:     leaf.Issuer,
		ServerSerial: leaf.SerialNumber,
	}
	if c.cfg.TicketKey != nil {
		ticket, err := sealTicket(c.cfg.rand(), *c.cfg.TicketKey, session)
		if err != nil {
			return err
		}
		nst := &NewSessionTicket{LifetimeSecs: 3600, Ticket: ticket}
		if err := c.writeHandshake(&tr, nst.Marshal()); err != nil {
			return err
		}
	}
	sfin := &Finished{VerifyData: finishedMAC(master, "server finished", tr.bytes())}
	if err := c.writeHandshake(&tr, sfin.Marshal()); err != nil {
		return err
	}
	if len(sh.SessionID) > 0 {
		c.cfg.serverSessions().put(sh.SessionID, session)
	}
	return c.setKeys(master, ch.Random[:], sh.Random[:])
}
