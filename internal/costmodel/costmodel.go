// Package costmodel reproduces the CDN cost evaluation of §VII-C (Fig 6,
// Table II): the monthly bill a CA pays a CloudFront-like CDN for
// disseminating its revocations to the worldwide RA population.
//
// The traffic model follows the dissemination protocol exactly: every RA
// pulls once per ∆, each pull carries the CA's 20-byte freshness
// statement, and each revocation issued during the month is downloaded
// once by each RA (at the dataset's CRL bytes-per-entry rate, §VII-A).
// Prices are CloudFront's 2015 regional, volume-tiered per-GB rates, and
// the RA population is proportional to city population (internal/workload).
package costmodel

import (
	"fmt"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/workload"
)

// Tier is one volume tier of a regional price list: the first UpToBytes of
// a month's regional traffic beyond the previous tiers costs USDPerGB.
type Tier struct {
	UpToBytes float64 // tier width in bytes; the last tier is unbounded
	USDPerGB  float64
}

const (
	tb = 1e12
	gb = 1e9
)

// pricing is CloudFront's 2015 per-GB data-transfer-out price list by
// region. Widths: 10 TB, 40 TB, 100 TB, 350 TB, 524 TB, 4 PB, then
// unbounded.
var pricing = map[workload.Region][]Tier{
	workload.RegionUnitedStates: tiers(0.085, 0.080, 0.060, 0.040, 0.030, 0.025, 0.020),
	workload.RegionEurope:       tiers(0.085, 0.080, 0.060, 0.040, 0.030, 0.025, 0.020),
	workload.RegionAsia:         tiers(0.140, 0.135, 0.120, 0.100, 0.080, 0.070, 0.060),
	workload.RegionJapan:        tiers(0.140, 0.135, 0.120, 0.100, 0.080, 0.070, 0.060),
	workload.RegionIndia:        tiers(0.170, 0.130, 0.110, 0.100, 0.100, 0.090, 0.080),
	workload.RegionSouthAmerica: tiers(0.250, 0.200, 0.180, 0.160, 0.140, 0.130, 0.125),
	workload.RegionAustralia:    tiers(0.140, 0.135, 0.120, 0.100, 0.095, 0.090, 0.085),
}

func tiers(rates ...float64) []Tier {
	widths := []float64{10 * tb, 40 * tb, 100 * tb, 350 * tb, 524 * tb, 4000 * tb, 0}
	out := make([]Tier, len(rates))
	for i, r := range rates {
		out[i] = Tier{UpToBytes: widths[i], USDPerGB: r}
	}
	return out
}

// BillForBytes prices bytes of monthly traffic in one region through its
// volume tiers.
func BillForBytes(region workload.Region, bytes float64) (float64, error) {
	ts, ok := pricing[region]
	if !ok {
		return 0, fmt.Errorf("costmodel: no pricing for region %v", region)
	}
	usd := 0.0
	remaining := bytes
	for i, t := range ts {
		width := t.UpToBytes
		if i == len(ts)-1 || width <= 0 || remaining < width {
			width = remaining
		}
		usd += width / gb * t.USDPerGB
		remaining -= width
		if remaining <= 0 {
			break
		}
	}
	return usd, nil
}

// SerialEntryBytes is the per-revocation dissemination payload the cost
// analysis charges for: the paper pins serial numbers at their 3-byte mode
// ("we use 3-byte serial numbers throughout this analysis", §VII-A).
const SerialEntryBytes = 3

// Traffic parameterizes one CA's dissemination load.
type Traffic struct {
	// Delta is the pull interval ∆.
	Delta time.Duration
	// FreshnessBytes is the per-pull heartbeat size. The default is the
	// 20-byte hash-chain value of §VI.
	FreshnessBytes int
	// EntryBytes is the bytes each revocation costs on the wire. The
	// default is SerialEntryBytes, the paper's 3-byte serial convention;
	// pass workload.EntryBytes() to charge full CRL-entry weight instead.
	EntryBytes float64
}

func (t Traffic) freshnessBytes() float64 {
	if t.FreshnessBytes > 0 {
		return float64(t.FreshnessBytes)
	}
	return cryptoutil.HashSize
}

func (t Traffic) entryBytes() float64 {
	if t.EntryBytes > 0 {
		return t.EntryBytes
	}
	return SerialEntryBytes
}

// BytesPerRA returns one RA's download volume over a period of
// periodSeconds during which the CA issued revocations new revocations:
// one freshness statement per pull plus every new revocation once.
func (t Traffic) BytesPerRA(periodSeconds int64, revocations int) (float64, error) {
	if t.Delta < time.Second {
		return 0, fmt.Errorf("costmodel: ∆ = %v, must be at least one second", t.Delta)
	}
	pulls := float64(periodSeconds) / t.Delta.Seconds()
	return pulls*t.freshnessBytes() + float64(revocations)*t.entryBytes(), nil
}

// Bill is one billing cycle's cost breakdown.
type Bill struct {
	// Cycle labels the billing cycle (1-based, as in Fig 6's x-axis).
	Cycle int
	// Year and Month identify the calendar month.
	Year  int
	Month time.Month
	// Revocations the CA issued during the cycle.
	Revocations int
	// BytesTotal is the global traffic the CA paid for.
	BytesTotal float64
	// ByRegion is the per-region cost in USD.
	ByRegion map[workload.Region]float64
	// TotalUSD is the cycle's bill.
	TotalUSD float64
}

// MonthlyBill prices one month (monthSeconds long, revocations issued) for
// a CA whose RAs are distributed per cities at clientsPerRA.
func MonthlyBill(cities *workload.Cities, clientsPerRA int, t Traffic, monthSeconds int64, revocations int) (*Bill, error) {
	perRA, err := t.BytesPerRA(monthSeconds, revocations)
	if err != nil {
		return nil, err
	}
	bill := &Bill{
		Revocations: revocations,
		ByRegion:    make(map[workload.Region]float64),
	}
	for region, ras := range cities.RAsByRegion(clientsPerRA) {
		bytes := perRA * float64(ras)
		usd, err := BillForBytes(region, bytes)
		if err != nil {
			return nil, err
		}
		bill.ByRegion[region] = usd
		bill.BytesTotal += bytes
		bill.TotalUSD += usd
	}
	return bill, nil
}

// Simulation reproduces Fig 6: per-billing-cycle bills for the CA owning
// the largest CRL, over the whole revocation series.
type Simulation struct {
	// Cities is the RA population model.
	Cities *workload.Cities
	// Series drives per-month revocation counts.
	Series *workload.Series
	// ClientsPerRA sizes the RA population (Fig 6 uses 10).
	ClientsPerRA int
	// CAShare is the fraction of all revocations issued by the billed CA.
	// Fig 6 bills the largest-CRL CA: ≈24.6 % of the dataset.
	CAShare float64
}

// LargestCAShare is the largest CRL's share of all revocations (§VII-A).
func LargestCAShare() float64 {
	return float64(workload.LargestCRLEntries) / float64(workload.TotalRevocations)
}

// Run produces one bill per calendar month of the series for the given ∆.
func (s *Simulation) Run(t Traffic) ([]*Bill, error) {
	share := s.CAShare
	if share == 0 {
		share = LargestCAShare()
	}
	months := s.Series.Monthly()
	bills := make([]*Bill, 0, len(months))
	for i, m := range months {
		monthSeconds := int64(daysIn(m.Year, m.Month)) * 24 * 3600
		revs := int(float64(m.Count) * share)
		bill, err := MonthlyBill(s.Cities, s.ClientsPerRA, t, monthSeconds, revs)
		if err != nil {
			return nil, err
		}
		bill.Cycle = i + 1
		bill.Year = m.Year
		bill.Month = m.Month
		bills = append(bills, bill)
	}
	return bills, nil
}

// AverageBill runs the simulation and averages the monthly totals — the
// quantity Table II reports per (∆, clients-per-RA) cell.
func (s *Simulation) AverageBill(t Traffic) (float64, error) {
	bills, err := s.Run(t)
	if err != nil {
		return 0, err
	}
	if len(bills) == 0 {
		return 0, nil
	}
	sum := 0.0
	for _, b := range bills {
		sum += b.TotalUSD
	}
	return sum / float64(len(bills)), nil
}

func daysIn(year int, month time.Month) int {
	return time.Date(year, month+1, 0, 0, 0, 0, 0, time.UTC).Day()
}
