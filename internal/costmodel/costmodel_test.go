package costmodel

import (
	"math"
	"testing"
	"time"

	"ritm/internal/workload"
)

func TestBillForBytesTiering(t *testing.T) {
	// 5 TB entirely in the first US tier.
	usd, err := BillForBytes(workload.RegionUnitedStates, 5*tb)
	if err != nil {
		t.Fatal(err)
	}
	if want := 5000 * 0.085; math.Abs(usd-want) > 1 {
		t.Errorf("5 TB US = $%.2f, want $%.2f", usd, want)
	}
	// 60 TB spans three tiers: 10 @ 0.085 + 40 @ 0.080 + 10 @ 0.060.
	usd, err = BillForBytes(workload.RegionUnitedStates, 60*tb)
	if err != nil {
		t.Fatal(err)
	}
	if want := 10_000*0.085 + 40_000*0.080 + 10_000*0.060; math.Abs(usd-want) > 1 {
		t.Errorf("60 TB US = $%.2f, want $%.2f", usd, want)
	}
	// South America is the most expensive region.
	sa, err := BillForBytes(workload.RegionSouthAmerica, 5*tb)
	if err != nil {
		t.Fatal(err)
	}
	if sa <= usd/12 {
		t.Error("South America not priced above the US rate")
	}
	if _, err := BillForBytes(workload.Region(99), 1); err == nil {
		t.Error("unknown region priced")
	}
}

func TestBytesPerRAComposition(t *testing.T) {
	tr := Traffic{Delta: 10 * time.Second}
	const month = int64(30 * 24 * 3600)

	// No revocations: pure freshness heartbeat, 20 B per pull.
	idle, err := tr.BytesPerRA(month, 0)
	if err != nil {
		t.Fatal(err)
	}
	pulls := float64(month) / 10
	if want := pulls * 20; math.Abs(idle-want) > 1 {
		t.Errorf("idle month = %f B, want %f", idle, want)
	}

	// Revocations add the per-entry cost once, independent of ∆ (3-byte
	// serials per §VII-A).
	busy, err := tr.BytesPerRA(month, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if extra := busy - idle; math.Abs(extra-10_000*SerialEntryBytes) > 1 {
		t.Errorf("10k revocations added %f B", extra)
	}

	// Charging full CRL-entry weight is possible explicitly.
	heavy, err := (Traffic{Delta: 10 * time.Second, EntryBytes: workload.EntryBytes()}).BytesPerRA(month, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if heavy <= busy {
		t.Error("explicit entry weight not applied")
	}

	if _, err := (Traffic{Delta: 0}).BytesPerRA(month, 0); err == nil {
		t.Error("zero ∆ accepted")
	}
}

func TestDeltaTradeoffMonotone(t *testing.T) {
	// Fig 6's core shape: the bill decreases monotonically as ∆ grows.
	cities := workload.NewCities(1)
	series := workload.NewSeries(1)
	sim := &Simulation{Cities: cities, Series: series, ClientsPerRA: 10}

	deltas := []time.Duration{10 * time.Second, time.Minute, time.Hour, 24 * time.Hour}
	var prev float64 = math.Inf(1)
	for _, d := range deltas {
		avg, err := sim.AverageBill(Traffic{Delta: d})
		if err != nil {
			t.Fatal(err)
		}
		if avg >= prev {
			t.Errorf("∆=%v bill $%.0f not below ∆-smaller bill $%.0f", d, avg, prev)
		}
		prev = avg
	}
}

func TestFig6Magnitudes(t *testing.T) {
	// Shape targets from Fig 6 (10 clients per RA, largest-CRL CA):
	// ∆ = 10 s lands in the tens of thousands of USD per month; ∆ = 1 day
	// in the hundreds. Absolute values differ from the paper's (unknown
	// internal pricing assumptions); the orders of magnitude must hold.
	cities := workload.NewCities(1)
	series := workload.NewSeries(1)
	sim := &Simulation{Cities: cities, Series: series, ClientsPerRA: 10}

	fast, err := sim.AverageBill(Traffic{Delta: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if fast < 20_000 || fast > 120_000 {
		t.Errorf("∆=10s average bill = $%.0f, want tens of thousands (Fig 6: ≈$55k)", fast)
	}
	minute, err := sim.AverageBill(Traffic{Delta: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if minute < 5_000 || minute > 25_000 {
		t.Errorf("∆=1m average bill = $%.0f, want ≈$10k (Fig 6)", minute)
	}
	hour, err := sim.AverageBill(Traffic{Delta: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if hour < 800 || hour > 5_000 {
		t.Errorf("∆=1h average bill = $%.0f, want $1.5k–3.5k (Fig 6)", hour)
	}
	slow, err := sim.AverageBill(Traffic{Delta: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if slow < 100 || slow > 3_000 {
		t.Errorf("∆=1d average bill = $%.0f, want low (Fig 6: hundreds)", slow)
	}
	if fast/slow < 10 {
		t.Errorf("∆ leverage = %.1f×, want ≫ 10×", fast/slow)
	}
}

func TestTableIIScalesInverselyWithClientsPerRA(t *testing.T) {
	// Table II: cost ∝ 1/(clients per RA), because the RA count is.
	cities := workload.NewCities(1)
	series := workload.NewSeries(1)
	tr := Traffic{Delta: time.Minute}

	bill := func(clients int) float64 {
		t.Helper()
		sim := &Simulation{Cities: cities, Series: series, ClientsPerRA: clients}
		avg, err := sim.AverageBill(tr)
		if err != nil {
			t.Fatal(err)
		}
		return avg
	}
	b30, b250, b1000 := bill(30), bill(250), bill(1000)
	if ratio := b30 / b250; ratio < 6 || ratio > 10 {
		t.Errorf("30→250 clients ratio = %.2f, want ≈ 250/30 (tiering bends it slightly)", ratio)
	}
	if ratio := b250 / b1000; ratio < 3 || ratio > 5 {
		t.Errorf("250→1000 clients ratio = %.2f, want ≈ 4", ratio)
	}
	if !(b30 > b250 && b250 > b1000) {
		t.Error("bills not decreasing in clients per RA")
	}
}

func TestHeartbleedCycleVisible(t *testing.T) {
	// Fig 6: the April 2014 cycle costs visibly more than its neighbors
	// for every ∆ (more revocation bytes), most prominently at large ∆
	// where revocation bytes dominate the freshness heartbeat.
	cities := workload.NewCities(1)
	series := workload.NewSeries(1)
	sim := &Simulation{Cities: cities, Series: series, ClientsPerRA: 10}
	bills, err := sim.Run(Traffic{Delta: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(bills) != 18 {
		t.Fatalf("cycles = %d, want 18 (Jan 2014 – Jun 2015)", len(bills))
	}
	var april, march float64
	for _, b := range bills {
		if b.Year == 2014 && b.Month == time.April {
			april = b.TotalUSD
		}
		if b.Year == 2014 && b.Month == time.March {
			march = b.TotalUSD
		}
	}
	if april <= march*1.5 {
		t.Errorf("Heartbleed cycle $%.0f not prominent vs March $%.0f", april, march)
	}
}

func TestMonthlyBillRegionalBreakdown(t *testing.T) {
	cities := workload.NewCities(1)
	bill, err := MonthlyBill(cities, 10, Traffic{Delta: time.Hour}, 30*24*3600, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range workload.Regions() {
		usd, ok := bill.ByRegion[r]
		if !ok || usd <= 0 {
			t.Errorf("region %v missing from bill", r)
		}
		sum += usd
	}
	if math.Abs(sum-bill.TotalUSD) > 0.01 {
		t.Errorf("regional sum $%.2f != total $%.2f", sum, bill.TotalUSD)
	}
}
