package cert

import (
	"errors"
	"testing"

	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// testPKI builds a root CA, an intermediate, and a server certificate:
// the three-certificate chain the paper calls the most common case (§VII-D).
type testPKI struct {
	rootKey, intKey, serverKey *cryptoutil.Signer
	root, intermediate, server *Certificate
	pool                       *Pool
}

func newTestPKI(t *testing.T) *testPKI {
	t.Helper()
	var p testPKI
	var err error
	if p.rootKey, err = cryptoutil.NewSigner(nil); err != nil {
		t.Fatal(err)
	}
	if p.intKey, err = cryptoutil.NewSigner(nil); err != nil {
		t.Fatal(err)
	}
	if p.serverKey, err = cryptoutil.NewSigner(nil); err != nil {
		t.Fatal(err)
	}
	if p.root, err = SelfSigned("RootCA", p.rootKey, 0, 1_000_000, 10); err != nil {
		t.Fatal(err)
	}
	if p.intermediate, err = Issue("RootCA", p.rootKey, Template{
		SerialNumber: serial.FromUint64(2),
		Subject:      "IntermediateCA",
		NotBefore:    0,
		NotAfter:     1_000_000,
		PublicKey:    p.intKey.Public(),
		IsCA:         true,
		DeltaSecs:    10,
	}); err != nil {
		t.Fatal(err)
	}
	// The intermediate issues under its own CA identity.
	if p.server, err = Issue("IntermediateCA", p.intKey, Template{
		SerialNumber: serial.FromUint64(0x73E10A5),
		Subject:      "example.com",
		NotBefore:    0,
		NotAfter:     500_000,
		PublicKey:    p.serverKey.Public(),
	}); err != nil {
		t.Fatal(err)
	}
	if p.pool, err = NewPool(p.root); err != nil {
		t.Fatal(err)
	}
	return &p
}

func TestIssueValidation(t *testing.T) {
	key, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		tmpl Template
	}{
		{"missing serial", Template{Subject: "x", NotAfter: 10, PublicKey: key.Public()}},
		{"bad key", Template{SerialNumber: serial.FromUint64(1), NotAfter: 10, PublicKey: []byte{1}}},
		{"empty validity", Template{SerialNumber: serial.FromUint64(1), NotBefore: 10, NotAfter: 10, PublicKey: key.Public()}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Issue("CA", key, tt.tmpl); err == nil {
				t.Error("invalid template accepted")
			}
		})
	}
}

func TestSignatureBindsAllFields(t *testing.T) {
	pki := newTestPKI(t)
	orig := pki.server

	mutations := map[string]func(*Certificate){
		"serial":    func(c *Certificate) { c.SerialNumber = serial.FromUint64(999) },
		"issuer":    func(c *Certificate) { c.Issuer = "OtherCA" },
		"subject":   func(c *Certificate) { c.Subject = "evil.com" },
		"notBefore": func(c *Certificate) { c.NotBefore++ },
		"notAfter":  func(c *Certificate) { c.NotAfter++ },
		"isCA":      func(c *Certificate) { c.IsCA = true },
		"delta":     func(c *Certificate) { c.DeltaSecs++ },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			c := *orig
			mutate(&c)
			if err := c.CheckSignature(pki.intKey.Public()); !errors.Is(err, cryptoutil.ErrBadSignature) {
				t.Errorf("mutated %s still verifies: %v", name, err)
			}
		})
	}
	if err := orig.CheckSignature(pki.intKey.Public()); err != nil {
		t.Errorf("unmutated certificate rejected: %v", err)
	}
}

func TestCheckValidity(t *testing.T) {
	pki := newTestPKI(t)
	if err := pki.server.CheckValidity(250_000); err != nil {
		t.Errorf("mid-window: %v", err)
	}
	if err := pki.server.CheckValidity(-1); !errors.Is(err, ErrExpired) {
		t.Errorf("before window: err = %v, want ErrExpired", err)
	}
	if err := pki.server.CheckValidity(500_000); !errors.Is(err, ErrExpired) {
		t.Errorf("at expiry: err = %v, want ErrExpired", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	pki := newTestPKI(t)
	for _, c := range []*Certificate{pki.root, pki.intermediate, pki.server} {
		decoded, err := Decode(c.Encode())
		if err != nil {
			t.Fatalf("decode %s: %v", c.Subject, err)
		}
		if decoded.Subject != c.Subject || !decoded.SerialNumber.Equal(c.SerialNumber) ||
			decoded.Issuer != c.Issuer || decoded.IsCA != c.IsCA ||
			decoded.DeltaSecs != c.DeltaSecs {
			t.Errorf("decoded %s differs", c.Subject)
		}
		// The signature must still verify after the round trip.
		var issuerPub = pki.rootKey.Public()
		if c.Issuer == "IntermediateCA" {
			issuerPub = pki.intKey.Public()
		}
		if err := decoded.CheckSignature(issuerPub); err != nil {
			t.Errorf("decoded %s signature: %v", c.Subject, err)
		}
	}
}

func TestDecodeJunk(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty buffer decoded")
	}
	if _, err := Decode([]byte{0x05, 1, 2}); err == nil {
		t.Error("truncated buffer decoded")
	}
}

func TestChainVerify(t *testing.T) {
	pki := newTestPKI(t)
	ch := Chain{pki.server, pki.intermediate}
	ca, err := pki.pool.VerifyChain(ch, 100)
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if ca != "IntermediateCA" {
		t.Errorf("issuing CA = %s, want IntermediateCA", ca)
	}
}

func TestChainVerifyFailures(t *testing.T) {
	pki := newTestPKI(t)

	t.Run("empty chain", func(t *testing.T) {
		if _, err := pki.pool.VerifyChain(nil, 100); !errors.Is(err, ErrBadChain) {
			t.Errorf("err = %v, want ErrBadChain", err)
		}
	})
	t.Run("expired leaf", func(t *testing.T) {
		ch := Chain{pki.server, pki.intermediate}
		if _, err := pki.pool.VerifyChain(ch, 600_000); !errors.Is(err, ErrExpired) {
			t.Errorf("err = %v, want ErrExpired", err)
		}
	})
	t.Run("broken link", func(t *testing.T) {
		tampered := *pki.server
		tampered.Subject = "evil.com"
		ch := Chain{&tampered, pki.intermediate}
		if _, err := pki.pool.VerifyChain(ch, 100); !errors.Is(err, ErrBadChain) {
			t.Errorf("err = %v, want ErrBadChain", err)
		}
	})
	t.Run("untrusted root", func(t *testing.T) {
		emptyPool, err := NewPool()
		if err != nil {
			t.Fatal(err)
		}
		ch := Chain{pki.server, pki.intermediate}
		if _, err := emptyPool.VerifyChain(ch, 100); !errors.Is(err, ErrUntrusted) {
			t.Errorf("err = %v, want ErrUntrusted", err)
		}
	})
	t.Run("non-CA issuer", func(t *testing.T) {
		// A leaf signed by another leaf must fail even with valid sigs.
		leafKey, err := cryptoutil.NewSigner(nil)
		if err != nil {
			t.Fatal(err)
		}
		rogue, err := Issue("IntermediateCA", pki.serverKey, Template{
			SerialNumber: serial.FromUint64(77),
			Subject:      "rogue.com",
			NotBefore:    0,
			NotAfter:     500_000,
			PublicKey:    leafKey.Public(),
		})
		if err != nil {
			t.Fatal(err)
		}
		// Chain: rogue <- server (not a CA) <- intermediate.
		ch := Chain{rogue, pki.server, pki.intermediate}
		if _, err := pki.pool.VerifyChain(ch, 100); !errors.Is(err, ErrNotCA) {
			t.Errorf("err = %v, want ErrNotCA", err)
		}
	})
}

func TestChainCodecRoundTrip(t *testing.T) {
	pki := newTestPKI(t)
	ch := Chain{pki.server, pki.intermediate}
	decoded, err := DecodeChain(ch.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded chain length = %d", len(decoded))
	}
	if _, err := pki.pool.VerifyChain(decoded, 100); err != nil {
		t.Errorf("decoded chain verification: %v", err)
	}
	if decoded.Leaf().Subject != "example.com" {
		t.Errorf("Leaf().Subject = %q", decoded.Leaf().Subject)
	}
}

func TestDecodeChainBounds(t *testing.T) {
	if _, err := DecodeChain([]byte{0}); !errors.Is(err, ErrBadChain) {
		t.Errorf("zero-length chain: err = %v, want ErrBadChain", err)
	}
	if _, err := DecodeChain([]byte{17}); !errors.Is(err, ErrBadChain) {
		t.Errorf("oversized chain: err = %v, want ErrBadChain", err)
	}
}

func TestPool(t *testing.T) {
	pki := newTestPKI(t)
	if _, ok := pki.pool.Root("RootCA"); !ok {
		t.Error("root missing from pool")
	}
	if _, ok := pki.pool.CAKey("RootCA"); !ok {
		t.Error("CA key missing from pool")
	}
	if _, ok := pki.pool.CAKey("Nobody"); ok {
		t.Error("unknown CA has a key")
	}
	if got := pki.pool.CAs(); len(got) != 1 || got[0] != dictionary.CAID("RootCA") {
		t.Errorf("CAs() = %v", got)
	}

	// Non-CA roots and non-self-signed roots are rejected.
	if err := pki.pool.AddRoot(pki.server); !errors.Is(err, ErrNotCA) {
		t.Errorf("leaf as root: err = %v, want ErrNotCA", err)
	}
	if err := pki.pool.AddRoot(pki.intermediate); err == nil {
		t.Error("non-self-signed root accepted")
	}
}

func TestDeltaOnCACert(t *testing.T) {
	pki := newTestPKI(t)
	if pki.root.Delta().Seconds() != 10 {
		t.Errorf("root ∆ = %v, want 10s", pki.root.Delta())
	}
	if pki.server.DeltaSecs != 0 {
		t.Error("server cert carries a ∆")
	}
}
