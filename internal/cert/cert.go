// Package cert implements the certificate substrate RITM operates on: a
// simplified X.509 equivalent with exactly the fields the paper's protocol
// touches — a per-CA serial number (RFC 5280 style, the dictionary key), an
// issuer identifier (which selects the dictionary), a validity period, an
// Ed25519 subject key, and an issuer signature.
//
// Certificates are exchanged in plaintext during the TLS-sim negotiation so
// that a Revocation Agent can parse them in flight (§III "Validation"), and
// chains of any length are supported (§VIII "Certificate chains").
//
// Per §VIII ("Local ∆ parameter"), a CA certificate carries the CA's
// dissemination interval ∆ in a dedicated field, so clients and RAs learn
// the correct freshness cadence from material they must validate anyway.
package cert

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/wire"
)

// Errors returned by certificate validation.
var (
	// ErrExpired reports a certificate outside its validity window.
	ErrExpired = errors.New("cert: certificate expired or not yet valid")
	// ErrBadChain reports a chain whose links do not verify.
	ErrBadChain = errors.New("cert: invalid certificate chain")
	// ErrUntrusted reports a chain that does not end at a trusted root.
	ErrUntrusted = errors.New("cert: chain does not terminate at a trusted CA")
	// ErrNotCA reports an issuing certificate without CA capability.
	ErrNotCA = errors.New("cert: issuer certificate is not a CA certificate")
)

// signingContext domain-separates certificate signatures from the CA key's
// other uses (dictionary roots).
const signingContext = "RITM/certificate/v1"

// Certificate is a simplified X.509 certificate.
type Certificate struct {
	// SerialNumber is unique per issuer; it is the dictionary lookup key.
	SerialNumber serial.Number
	// Issuer identifies the CA that signed this certificate and therefore
	// the dictionary that holds its revocation status.
	Issuer dictionary.CAID
	// Subject is the entity the certificate binds the key to (a DNS name
	// for servers, the CA name for CA certificates).
	Subject string
	// NotBefore and NotAfter bound the validity period, Unix seconds.
	NotBefore, NotAfter int64
	// PublicKey is the subject's Ed25519 key.
	PublicKey ed25519.PublicKey
	// IsCA marks a certificate whose key may issue other certificates.
	IsCA bool
	// DeltaSecs is the CA's dissemination interval ∆ in seconds; meaningful
	// only on CA certificates (zero otherwise).
	DeltaSecs uint32
	// Signature is the issuer's signature over all fields above.
	Signature []byte
}

// Delta returns the CA's dissemination interval (CA certificates only).
func (c *Certificate) Delta() time.Duration {
	return time.Duration(c.DeltaSecs) * time.Second
}

// signingPayload returns the bytes covered by the issuer signature.
func (c *Certificate) signingPayload() []byte {
	e := wire.NewEncoder(192)
	e.String(signingContext)
	e.BytesField(c.SerialNumber.Raw())
	e.String(string(c.Issuer))
	e.String(c.Subject)
	e.Int64(c.NotBefore)
	e.Int64(c.NotAfter)
	e.BytesField(c.PublicKey)
	e.Bool(c.IsCA)
	e.Uint32(c.DeltaSecs)
	return e.Bytes()
}

// Template carries the fields a caller chooses when requesting issuance.
type Template struct {
	SerialNumber serial.Number
	Subject      string
	NotBefore    int64
	NotAfter     int64
	PublicKey    ed25519.PublicKey
	IsCA         bool
	DeltaSecs    uint32
}

// Issue signs a certificate from the template under the issuer identity.
func Issue(issuer dictionary.CAID, issuerKey *cryptoutil.Signer, tmpl Template) (*Certificate, error) {
	if tmpl.SerialNumber.IsZero() {
		return nil, fmt.Errorf("cert: template missing serial number")
	}
	if len(tmpl.PublicKey) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("cert: template has bad public key size %d", len(tmpl.PublicKey))
	}
	if tmpl.NotAfter <= tmpl.NotBefore {
		return nil, fmt.Errorf("cert: empty validity window [%d, %d)", tmpl.NotBefore, tmpl.NotAfter)
	}
	c := &Certificate{
		SerialNumber: tmpl.SerialNumber,
		Issuer:       issuer,
		Subject:      tmpl.Subject,
		NotBefore:    tmpl.NotBefore,
		NotAfter:     tmpl.NotAfter,
		PublicKey:    append(ed25519.PublicKey(nil), tmpl.PublicKey...),
		IsCA:         tmpl.IsCA,
		DeltaSecs:    tmpl.DeltaSecs,
	}
	c.Signature = issuerKey.Sign(c.signingPayload())
	return c, nil
}

// SelfSigned issues a root CA certificate: issuer and subject key coincide.
func SelfSigned(ca dictionary.CAID, key *cryptoutil.Signer, notBefore, notAfter int64, deltaSecs uint32) (*Certificate, error) {
	sn := serial.FromUint64(1)
	return Issue(ca, key, Template{
		SerialNumber: sn,
		Subject:      string(ca),
		NotBefore:    notBefore,
		NotAfter:     notAfter,
		PublicKey:    key.Public(),
		IsCA:         true,
		DeltaSecs:    deltaSecs,
	})
}

// CheckSignature verifies the certificate's signature under the issuer key.
func (c *Certificate) CheckSignature(issuerPub ed25519.PublicKey) error {
	if err := cryptoutil.Verify(issuerPub, c.signingPayload(), c.Signature); err != nil {
		return fmt.Errorf("certificate %v from %s: %w", c.SerialNumber, c.Issuer, err)
	}
	return nil
}

// CheckValidity verifies the validity window against now (Unix seconds).
func (c *Certificate) CheckValidity(now int64) error {
	if now < c.NotBefore || now >= c.NotAfter {
		return fmt.Errorf("%w: valid [%d, %d), now %d", ErrExpired, c.NotBefore, c.NotAfter, now)
	}
	return nil
}

// Encode serializes the certificate.
func (c *Certificate) Encode() []byte {
	e := wire.NewEncoder(256)
	c.EncodeTo(e)
	return e.Bytes()
}

// EncodeTo appends the certificate's encoding to an encoder; used by chain
// and handshake encodings.
func (c *Certificate) EncodeTo(e *wire.Encoder) {
	e.BytesField(c.SerialNumber.Raw())
	e.String(string(c.Issuer))
	e.String(c.Subject)
	e.Int64(c.NotBefore)
	e.Int64(c.NotAfter)
	e.BytesField(c.PublicKey)
	e.Bool(c.IsCA)
	e.Uint32(c.DeltaSecs)
	e.BytesField(c.Signature)
}

// Decode parses a certificate encoded by Encode.
func Decode(buf []byte) (*Certificate, error) {
	d := wire.NewDecoder(buf)
	c, err := DecodeFrom(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode certificate: %w", err)
	}
	return c, nil
}

// DecodeFrom parses one certificate from a decoder stream.
func DecodeFrom(d *wire.Decoder) (*Certificate, error) {
	var c Certificate
	sn, err := serial.New(d.BytesField())
	if err != nil {
		if d.Err() != nil {
			return nil, fmt.Errorf("decode certificate: %w", d.Err())
		}
		return nil, fmt.Errorf("decode certificate serial: %w", err)
	}
	c.SerialNumber = sn
	c.Issuer = dictionary.CAID(d.String())
	c.Subject = d.String()
	c.NotBefore = d.Int64()
	c.NotAfter = d.Int64()
	c.PublicKey = ed25519.PublicKey(d.BytesCopy())
	c.IsCA = d.Bool()
	c.DeltaSecs = d.Uint32()
	c.Signature = d.BytesCopy()
	if d.Err() != nil {
		return nil, fmt.Errorf("decode certificate: %w", d.Err())
	}
	if len(c.PublicKey) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("decode certificate: bad public key size %d", len(c.PublicKey))
	}
	return &c, nil
}

// Chain is a certificate chain ordered leaf-first: chain[0] is the
// end-entity certificate, each chain[i] is signed by chain[i+1], and the
// last element is signed by (or is) a trusted root.
type Chain []*Certificate

// Leaf returns the end-entity certificate, or nil for an empty chain.
func (ch Chain) Leaf() *Certificate {
	if len(ch) == 0 {
		return nil
	}
	return ch[0]
}

// Encode serializes the chain.
func (ch Chain) Encode() []byte {
	e := wire.NewEncoder(256 * len(ch))
	ch.EncodeTo(e)
	return e.Bytes()
}

// EncodeTo appends the chain's encoding to an encoder.
func (ch Chain) EncodeTo(e *wire.Encoder) {
	e.Uvarint(uint64(len(ch)))
	for _, c := range ch {
		c.EncodeTo(e)
	}
}

// DecodeChain parses a chain encoded by Encode.
func DecodeChain(buf []byte) (Chain, error) {
	d := wire.NewDecoder(buf)
	ch, err := DecodeChainFrom(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("decode chain: %w", err)
	}
	return ch, nil
}

// DecodeChainFrom parses a chain from a decoder stream.
func DecodeChainFrom(d *wire.Decoder) (Chain, error) {
	count := d.Uvarint()
	if d.Err() != nil {
		return nil, fmt.Errorf("decode chain: %w", d.Err())
	}
	const maxChain = 16 // real chains are ≤4; generous safety bound
	if count == 0 || count > maxChain {
		return nil, fmt.Errorf("%w: %d certificates", ErrBadChain, count)
	}
	ch := make(Chain, 0, count)
	for i := uint64(0); i < count; i++ {
		c, err := DecodeFrom(d)
		if err != nil {
			return nil, fmt.Errorf("decode chain[%d]: %w", i, err)
		}
		ch = append(ch, c)
	}
	return ch, nil
}

// Pool is a set of trusted root CA certificates, keyed by CA identifier.
// It is the client's and the RA's trust anchor store.
type Pool struct {
	roots map[dictionary.CAID]*Certificate
}

// NewPool returns a pool trusting the given self-signed root certificates.
func NewPool(roots ...*Certificate) (*Pool, error) {
	p := &Pool{roots: make(map[dictionary.CAID]*Certificate, len(roots))}
	for _, r := range roots {
		if err := p.AddRoot(r); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// AddRoot adds a self-signed CA certificate to the trust store.
func (p *Pool) AddRoot(root *Certificate) error {
	if !root.IsCA {
		return fmt.Errorf("%w: %s", ErrNotCA, root.Subject)
	}
	if err := root.CheckSignature(root.PublicKey); err != nil {
		return fmt.Errorf("root %s is not self-signed: %w", root.Issuer, err)
	}
	p.roots[root.Issuer] = root
	return nil
}

// Clone returns a pool with the same roots that shares no mutable state:
// later AddRoot calls on either pool are invisible to the other. The RA
// store's copy-on-write views rely on this to keep published views
// immutable without re-verifying every root self-signature.
func (p *Pool) Clone() *Pool {
	roots := make(map[dictionary.CAID]*Certificate, len(p.roots))
	for ca, c := range p.roots {
		roots[ca] = c
	}
	return &Pool{roots: roots}
}

// Root returns the trusted certificate for a CA, if any.
func (p *Pool) Root(ca dictionary.CAID) (*Certificate, bool) {
	c, ok := p.roots[ca]
	return c, ok
}

// CAKey returns the trusted public key for a CA, used to verify dictionary
// roots from that CA.
func (p *Pool) CAKey(ca dictionary.CAID) (ed25519.PublicKey, bool) {
	c, ok := p.roots[ca]
	if !ok {
		return nil, false
	}
	return c.PublicKey, true
}

// CAs lists the CA identifiers in the pool.
func (p *Pool) CAs() []dictionary.CAID {
	out := make([]dictionary.CAID, 0, len(p.roots))
	for id := range p.roots {
		out = append(out, id)
	}
	return out
}

// VerifyChain performs the "standard validation" of §III step 5a: each link
// signature, CA capability of issuers, validity windows, and anchoring at a
// pool root. It returns the issuing CA of the leaf certificate, which is
// the dictionary the revocation status must come from.
//
// Revocation is deliberately NOT checked here: in RITM the revocation
// status arrives separately from the on-path RA and is verified by the
// client against the same pool (ritmclient package).
func (p *Pool) VerifyChain(ch Chain, now int64) (dictionary.CAID, error) {
	if len(ch) == 0 {
		return "", fmt.Errorf("%w: empty chain", ErrBadChain)
	}
	for i, c := range ch {
		if err := c.CheckValidity(now); err != nil {
			return "", fmt.Errorf("chain[%d] (%s): %w", i, c.Subject, err)
		}
		if i > 0 && !ch[i].IsCA {
			return "", fmt.Errorf("chain[%d] (%s): %w", i, c.Subject, ErrNotCA)
		}
		if i+1 < len(ch) {
			if err := c.CheckSignature(ch[i+1].PublicKey); err != nil {
				return "", fmt.Errorf("%w: link %d: %v", ErrBadChain, i, err)
			}
		}
	}
	last := ch[len(ch)-1]
	root, ok := p.roots[last.Issuer]
	if !ok {
		return "", fmt.Errorf("%w: no root for %s", ErrUntrusted, last.Issuer)
	}
	if err := last.CheckSignature(root.PublicKey); err != nil {
		return "", fmt.Errorf("%w: anchor: %v", ErrUntrusted, err)
	}
	return ch[0].Issuer, nil
}
