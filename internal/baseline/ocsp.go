package baseline

import (
	"fmt"
	"sync"

	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/wire"
)

const ocspContext = "baseline/ocsp/v1"

// OCSPStatus is a response's certificate status.
type OCSPStatus uint8

// OCSP statuses (RFC 6960 analogue).
const (
	OCSPGood OCSPStatus = iota + 1
	OCSPRevoked
)

// OCSPResponse is a signed per-certificate status (RFC 6960 analogue).
type OCSPResponse struct {
	CA         dictionary.CAID
	Serial     serial.Number
	Status     OCSPStatus
	ProducedAt int64
	Signature  []byte
}

func (r *OCSPResponse) signingPayload() []byte {
	e := wire.NewEncoder(96)
	e.String(ocspContext)
	e.String(string(r.CA))
	e.BytesField(r.Serial.Raw())
	e.Uint8(uint8(r.Status))
	e.Int64(r.ProducedAt)
	return e.Bytes()
}

// Verify checks the signature and that the response is no older than
// maxAgeSecs at time now. The age bound is the client policy; with OCSP
// stapling the server controls the response's age, which is exactly the
// attack window the paper criticizes (§II: "a long attack window can be
// introduced by an adversary or a misconfiguration").
func (r *OCSPResponse) Verify(pub []byte, now, maxAgeSecs int64) error {
	if err := cryptoutil.Verify(pub, r.signingPayload(), r.Signature); err != nil {
		return fmt.Errorf("%w: ocsp response for %v", ErrBadSignature, r.Serial)
	}
	if now-r.ProducedAt > maxAgeSecs {
		return fmt.Errorf("%w: ocsp response is %d s old, policy allows %d",
			ErrStaleArtifact, now-r.ProducedAt, maxAgeSecs)
	}
	return nil
}

// Size returns the encoded response size in bytes.
func (r *OCSPResponse) Size() int { return len(r.signingPayload()) + cryptoutil.SignatureSize }

// OCSPResponder answers per-certificate status queries. Every query leaks
// which certificate (and thus which site) the asker cares about — the
// privacy violation of §II. QueryLog records that leak explicitly.
type OCSPResponder struct {
	ca     dictionary.CAID
	signer *cryptoutil.Signer

	mu      sync.Mutex
	revoked map[string]bool
	// QueryLog is every serial the responder was asked about: the
	// information a malicious or curious CA collects about clients.
	QueryLog []serial.Number
}

// NewOCSPResponder creates a responder for one CA.
func NewOCSPResponder(ca dictionary.CAID, signer *cryptoutil.Signer) *OCSPResponder {
	return &OCSPResponder{ca: ca, signer: signer, revoked: make(map[string]bool)}
}

// Revoke marks serials revoked.
func (o *OCSPResponder) Revoke(serials ...serial.Number) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, s := range serials {
		o.revoked[string(s.Raw())] = true
	}
}

// Respond answers one status query at time now.
func (o *OCSPResponder) Respond(sn serial.Number, now int64) *OCSPResponse {
	o.mu.Lock()
	o.QueryLog = append(o.QueryLog, sn)
	status := OCSPGood
	if o.revoked[string(sn.Raw())] {
		status = OCSPRevoked
	}
	o.mu.Unlock()
	resp := &OCSPResponse{CA: o.ca, Serial: sn, Status: status, ProducedAt: now}
	resp.Signature = o.signer.Sign(resp.signingPayload())
	return resp
}

// Queries returns how many status queries the responder has seen.
func (o *OCSPResponder) Queries() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.QueryLog)
}

// StaplingServer models a TLS server deploying OCSP stapling: it fetches a
// response for its own certificate every refreshSecs and hands the cached
// copy to every client. The refresh interval is server-controlled — a
// compromised or misconfigured server can stretch it, growing the attack
// window (§II).
type StaplingServer struct {
	responder   *OCSPResponder
	sn          serial.Number
	refreshSecs int64

	mu          sync.Mutex
	cached      *OCSPResponse
	FetchCount  int
	StapleCount int
}

// NewStaplingServer creates a stapling server for the certificate sn.
func NewStaplingServer(responder *OCSPResponder, sn serial.Number, refreshSecs int64) *StaplingServer {
	return &StaplingServer{responder: responder, sn: sn, refreshSecs: refreshSecs}
}

// Staple returns the response the server would attach to a handshake at
// time now, refreshing it from the responder when due.
func (s *StaplingServer) Staple(now int64) *OCSPResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cached == nil || now-s.cached.ProducedAt >= s.refreshSecs {
		s.cached = s.responder.Respond(s.sn, now)
		s.FetchCount++
	}
	s.StapleCount++
	return s.cached
}
