// Package baseline implements the competing revocation schemes RITM is
// evaluated against (§II, Table IV): CRLs (with delta CRLs), OCSP, OCSP
// stapling, short-lived certificates, vendor-pushed CRLSets, RevCast radio
// broadcast, and log-based approaches in both client- and server-driven
// deployments.
//
// Each scheme is a working miniature: it produces verifiable artifacts and
// tracks the costs the paper compares — bytes transferred, connections
// made, state stored, and the attack window each design choice opens. The
// analytic model behind Table IV lives in model.go.
package baseline

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/wire"
)

// Errors returned by baseline schemes.
var (
	// ErrStaleArtifact reports a CRL/OCSP response past its validity.
	ErrStaleArtifact = errors.New("baseline: artifact is stale")
	// ErrBadSignature reports a failed signature check.
	ErrBadSignature = errors.New("baseline: invalid signature")
)

const crlContext = "baseline/crl/v1"

// CRL is a signed certificate revocation list (RFC 5280 analogue): the
// complete list of revoked serials with a validity window. Clients must
// download it whole to check a single certificate — the core inefficiency
// the paper criticizes.
type CRL struct {
	CA         dictionary.CAID
	Serials    []serial.Number // sorted
	ThisUpdate int64
	NextUpdate int64
	// BaseSize marks a delta CRL: entries cover revocations after the
	// first BaseSize of the issuer's log. Zero means a full CRL.
	BaseSize  uint64
	Signature []byte
}

func (c *CRL) signingPayload() []byte {
	e := wire.NewEncoder(64 + 8*len(c.Serials))
	e.String(crlContext)
	e.String(string(c.CA))
	e.Int64(c.ThisUpdate)
	e.Int64(c.NextUpdate)
	e.Uvarint(c.BaseSize)
	e.Uvarint(uint64(len(c.Serials)))
	for _, s := range c.Serials {
		e.BytesField(s.Raw())
	}
	return e.Bytes()
}

// Verify checks the signature and validity window at time now.
func (c *CRL) Verify(pub []byte, now int64) error {
	if err := cryptoutil.Verify(pub, c.signingPayload(), c.Signature); err != nil {
		return fmt.Errorf("%w: crl from %s", ErrBadSignature, c.CA)
	}
	if now >= c.NextUpdate {
		return fmt.Errorf("%w: crl expired at %d, now %d", ErrStaleArtifact, c.NextUpdate, now)
	}
	return nil
}

// Contains reports whether sn is on the list (binary search).
func (c *CRL) Contains(sn serial.Number) bool {
	i := sort.Search(len(c.Serials), func(i int) bool {
		return c.Serials[i].Compare(sn) >= 0
	})
	return i < len(c.Serials) && c.Serials[i].Equal(sn)
}

// Size returns the encoded size in bytes — what a client must download.
func (c *CRL) Size() int { return len(c.signingPayload()) + cryptoutil.SignatureSize }

// CRLAuthority issues CRLs for one CA. It is safe for concurrent use.
type CRLAuthority struct {
	ca       dictionary.CAID
	signer   *cryptoutil.Signer
	validity int64 // seconds a CRL remains valid

	mu  sync.Mutex
	log []serial.Number // issuance order
}

// NewCRLAuthority creates a CRL issuer whose lists are valid for
// validitySecs seconds (the CRL refresh interval; the paper's attack-window
// discussion hinges on it).
func NewCRLAuthority(ca dictionary.CAID, signer *cryptoutil.Signer, validitySecs int64) *CRLAuthority {
	return &CRLAuthority{ca: ca, signer: signer, validity: validitySecs}
}

// Revoke appends serials to the issuer's revocation log.
func (a *CRLAuthority) Revoke(serials ...serial.Number) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.log = append(a.log, serials...)
}

// Count returns the number of revocations issued.
func (a *CRLAuthority) Count() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return uint64(len(a.log))
}

// Sign issues the full CRL at time now.
func (a *CRLAuthority) Sign(now int64) *CRL {
	a.mu.Lock()
	serials := make([]serial.Number, len(a.log))
	copy(serials, a.log)
	a.mu.Unlock()
	serial.Sort(serials)
	crl := &CRL{
		CA:         a.ca,
		Serials:    serials,
		ThisUpdate: now,
		NextUpdate: now + a.validity,
	}
	crl.Signature = a.signer.Sign(crl.signingPayload())
	return crl
}

// SignDelta issues a delta CRL covering revocations after the first base
// entries of the log; clients holding a full CRL of that size fetch only
// the delta.
func (a *CRLAuthority) SignDelta(base uint64, now int64) (*CRL, error) {
	a.mu.Lock()
	if base > uint64(len(a.log)) {
		a.mu.Unlock()
		return nil, fmt.Errorf("baseline: delta base %d beyond log of %d", base, len(a.log))
	}
	serials := make([]serial.Number, uint64(len(a.log))-base)
	copy(serials, a.log[base:])
	a.mu.Unlock()
	serial.Sort(serials)
	crl := &CRL{
		CA:         a.ca,
		Serials:    serials,
		ThisUpdate: now,
		NextUpdate: now + a.validity,
		BaseSize:   base,
	}
	crl.Signature = a.signer.Sign(crl.signingPayload())
	return crl, nil
}

// CRLClient models a client using CRLs: it caches the latest list and
// re-downloads when stale, counting the traffic this costs.
type CRLClient struct {
	pub []byte

	mu              sync.Mutex
	cached          *CRL
	Fetches         int
	BytesDownloaded int64
}

// NewCRLClient creates a client trusting the issuer key pub.
func NewCRLClient(pub []byte) *CRLClient {
	return &CRLClient{pub: pub}
}

// Check validates sn at time now, downloading a fresh CRL from the
// authority if the cached one is missing or stale. It returns true when sn
// is revoked.
func (c *CRLClient) Check(a *CRLAuthority, sn serial.Number, now int64) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cached == nil || now >= c.cached.NextUpdate {
		crl := a.Sign(now)
		if err := crl.Verify(c.pub, now); err != nil {
			return false, err
		}
		c.cached = crl
		c.Fetches++
		c.BytesDownloaded += int64(crl.Size())
	}
	return c.cached.Contains(sn), nil
}
