package baseline

import (
	"testing"
	"time"

	"ritm/internal/cryptoutil"
	"ritm/internal/serial"
)

func testSigner(t *testing.T) *cryptoutil.Signer {
	t.Helper()
	s, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCRLSignVerifyContains(t *testing.T) {
	signer := testSigner(t)
	a := NewCRLAuthority("CA1", signer, 3600)
	gen := serial.NewGenerator(1, nil)
	revoked := gen.NextN(100)
	a.Revoke(revoked...)

	crl := a.Sign(1000)
	if err := crl.Verify(signer.Public(), 1500); err != nil {
		t.Fatalf("verify: %v", err)
	}
	for _, sn := range revoked {
		if !crl.Contains(sn) {
			t.Fatalf("revoked serial %v missing from CRL", sn)
		}
	}
	if crl.Contains(gen.Next()) {
		t.Error("unrevoked serial found in CRL")
	}

	// Expiry and tampering are rejected.
	if err := crl.Verify(signer.Public(), 1000+3600); err == nil {
		t.Error("expired CRL verified")
	}
	crl.Serials = crl.Serials[1:]
	if err := crl.Verify(signer.Public(), 1500); err == nil {
		t.Error("tampered CRL verified")
	}
}

func TestCRLClientCachingAndDownloadCost(t *testing.T) {
	signer := testSigner(t)
	a := NewCRLAuthority("CA1", signer, 3600)
	a.Revoke(serial.NewGenerator(2, nil).NextN(1000)...)
	client := NewCRLClient(signer.Public())

	// First check downloads; the next 9 (within validity) do not.
	for i := 0; i < 10; i++ {
		if _, err := client.Check(a, serial.FromUint64(uint64(i+5_000_000)), int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if client.Fetches != 1 {
		t.Errorf("fetches = %d, want 1", client.Fetches)
	}
	// After expiry the whole list is downloaded again — the CRL
	// inefficiency the paper criticizes.
	if _, err := client.Check(a, serial.FromUint64(1), 1000+3600); err != nil {
		t.Fatal(err)
	}
	if client.Fetches != 2 {
		t.Errorf("fetches after expiry = %d, want 2", client.Fetches)
	}
	if client.BytesDownloaded < 2*1000*3 {
		t.Errorf("download accounting too low: %d bytes", client.BytesDownloaded)
	}
}

func TestDeltaCRLCoversOnlySuffix(t *testing.T) {
	signer := testSigner(t)
	a := NewCRLAuthority("CA1", signer, 3600)
	gen := serial.NewGenerator(3, nil)
	first := gen.NextN(50)
	a.Revoke(first...)
	second := gen.NextN(20)
	a.Revoke(second...)

	delta, err := a.SignDelta(50, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Serials) != 20 {
		t.Fatalf("delta has %d entries, want 20", len(delta.Serials))
	}
	if delta.BaseSize != 50 {
		t.Errorf("BaseSize = %d", delta.BaseSize)
	}
	full := a.Sign(2000)
	if delta.Size() >= full.Size() {
		t.Error("delta CRL not smaller than full CRL")
	}
	if _, err := a.SignDelta(999, 2000); err == nil {
		t.Error("delta beyond log accepted")
	}
}

func TestOCSPResponderAndPrivacyLeak(t *testing.T) {
	signer := testSigner(t)
	o := NewOCSPResponder("CA1", signer)
	gen := serial.NewGenerator(4, nil)
	bad := gen.Next()
	good := gen.Next()
	o.Revoke(bad)

	resp := o.Respond(bad, 1000)
	if err := resp.Verify(signer.Public(), 1100, 3600); err != nil {
		t.Fatal(err)
	}
	if resp.Status != OCSPRevoked {
		t.Error("revoked serial reported good")
	}
	if resp := o.Respond(good, 1000); resp.Status != OCSPGood {
		t.Error("good serial reported revoked")
	}

	// The privacy violation: the responder saw exactly which certificates
	// clients asked about.
	if o.Queries() != 2 {
		t.Errorf("query log has %d entries, want 2", o.Queries())
	}

	// Stale responses are rejected under the client's age policy.
	if err := resp.Verify(signer.Public(), 1000+7200, 3600); err == nil {
		t.Error("stale response verified")
	}
}

func TestOCSPStaplingAttackWindow(t *testing.T) {
	signer := testSigner(t)
	o := NewOCSPResponder("CA1", signer)
	sn := serial.NewGenerator(5, nil).Next()
	srv := NewStaplingServer(o, sn, 3600)

	r1 := srv.Staple(1000)
	if r1.Status != OCSPGood {
		t.Fatal("unexpected initial status")
	}
	// Revocation happens, but the server staples its cached response until
	// the refresh interval elapses — the attack window.
	o.Revoke(sn)
	r2 := srv.Staple(2000)
	if r2.Status != OCSPGood {
		t.Fatal("cached staple refreshed too early")
	}
	r3 := srv.Staple(1000 + 3600)
	if r3.Status != OCSPRevoked {
		t.Error("staple not refreshed after interval")
	}
	if srv.FetchCount != 2 {
		t.Errorf("fetches = %d, want 2", srv.FetchCount)
	}
}

func TestSLCIrrevocabilityWindow(t *testing.T) {
	signer := testSigner(t)
	a := NewSLCAuthority("CA1", signer, 72*time.Hour)
	subjectKey := testSigner(t)
	srv := NewSLCServer(a, "example.com", subjectKey.Public())

	c1, err := srv.Certificate(1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := c1.NotAfter - c1.NotBefore; got != 72*3600 {
		t.Errorf("lifetime = %d s", got)
	}
	// Within the lifetime the same certificate is served: nothing can
	// revoke it.
	c2, err := srv.Certificate(1000 + 3600)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.SerialNumber.Equal(c1.SerialNumber) {
		t.Error("certificate rotated early")
	}
	// After expiry the server must contact the CA again.
	if _, err := srv.Certificate(1000 + 72*3600); err != nil {
		t.Fatal(err)
	}
	if srv.FetchCount != 2 {
		t.Errorf("fetches = %d, want 2", srv.FetchCount)
	}
	if a.AttackWindow() != 72*time.Hour {
		t.Errorf("attack window = %v", a.AttackWindow())
	}
}

func TestCRLSetCoverageCap(t *testing.T) {
	vendor := NewVendor(35) // cap at 35 of 10,000 → 0.35 %, the cited rate
	revoked := serial.NewGenerator(6, nil).NextN(10_000)
	set := vendor.Compile(revoked)

	if set.Len() != 35 {
		t.Fatalf("set size = %d, want 35", set.Len())
	}
	if got := set.Coverage(); got < 0.0034 || got > 0.0036 {
		t.Errorf("coverage = %f, want ≈0.0035", got)
	}
	if !set.Contains(revoked[0]) {
		t.Error("head entry missing")
	}
	if set.Contains(revoked[9_999]) {
		t.Error("tail entry unexpectedly covered: the cap failed")
	}

	// Unicast push cost scales with the client population.
	bytes := vendor.Push(set, 1_000_000, 8)
	if bytes != 35*8*1_000_000 {
		t.Errorf("push bytes = %d", bytes)
	}
}

func TestRevCastBroadcastTime(t *testing.T) {
	ch := NewRevCastChannel()
	// The Heartbleed hourly peak (§VII-A): ~10,000 revocations of ~8 bytes
	// each is 640 kbit — over 25 minutes of air time at 421.8 bit/s, so a
	// burst hour cannot be broadcast within that hour with realistic CRL
	// entry sizes (~23 B/entry → over an hour). RevCast's ceiling.
	d := ch.BroadcastTime(10_000, 8)
	if d < 20*time.Minute || d > 30*time.Minute {
		t.Errorf("broadcast time = %v, want ≈25 min", d)
	}
	if full := ch.BroadcastTime(10_000, 23); full < time.Hour {
		t.Errorf("realistic-entry broadcast time = %v, want > 1 h", full)
	}

	rx := NewRevCastReceiver()
	serials := serial.NewGenerator(7, nil).NextN(100)
	rx.Receive(serials)
	if !rx.Revoked(serials[42]) {
		t.Error("received revocation not stored")
	}
	if rx.StoredEntries() != 100 {
		t.Errorf("receiver stores %d entries", rx.StoredEntries())
	}
}

func TestRevocationLogMMDWindow(t *testing.T) {
	log := NewRevocationLog(4 * time.Hour)
	sn := serial.NewGenerator(8, nil).Next()
	log.Submit(sn, 1000)

	// Before the MMD the revocation is invisible — the attack window.
	if log.ClientQuery(sn, 1000+3600) {
		t.Error("revocation visible before MMD")
	}
	if !log.ClientQuery(sn, 1000+4*3600) {
		t.Error("revocation invisible after MMD")
	}
	if log.AttackWindow() != 4*time.Hour {
		t.Errorf("attack window = %v", log.AttackWindow())
	}
	// Client-driven queries leak; server-driven fetches do not add client
	// connections.
	if log.ClientQueries != 2 {
		t.Errorf("client queries = %d", log.ClientQueries)
	}
	if !log.ServerFetch(sn, 1000+5*3600) {
		t.Error("server fetch missed visible entry")
	}
	if log.ServerFetches != 1 {
		t.Errorf("server fetches = %d", log.ServerFetches)
	}
}

func TestTableIVFormulas(t *testing.T) {
	p := Params{Servers: 10, CAs: 3, RAs: 5, Clients: 100, Revocations: 1000}
	rows := map[string]Scheme{}
	for _, s := range Schemes() {
		rows[s.Name] = s
	}
	if len(rows) != 8 {
		t.Fatalf("Schemes() returned %d rows, want 8", len(rows))
	}

	tests := []struct {
		scheme  string
		metric  string
		get     func(Scheme) float64
		want    float64
		checked string
	}{
		{"CRL", "storage-global", func(s Scheme) float64 { return s.StorageGlobal(p) }, 1000 * 101, "n_rev×(n_cl+1)"},
		{"CRL", "storage-client", func(s Scheme) float64 { return s.StorageClient(p) }, 1000, "n_rev"},
		{"CRL", "conn-global", func(s Scheme) float64 { return s.ConnGlobal(p) }, 100 * 3, "n_cl×n_ca"},
		{"CRL", "conn-client", func(s Scheme) float64 { return s.ConnClient(p) }, 3, "n_ca"},
		{"CRLSet", "conn-client", func(s Scheme) float64 { return s.ConnClient(p) }, 1, "1"},
		{"OCSP", "storage-global", func(s Scheme) float64 { return s.StorageGlobal(p) }, 1000, "n_rev"},
		{"OCSP", "conn-global", func(s Scheme) float64 { return s.ConnGlobal(p) }, 100 * 10, "n_cl×n_s"},
		{"OCSP Stapling", "storage-global", func(s Scheme) float64 { return s.StorageGlobal(p) }, 1010, "n_rev+n_s"},
		{"OCSP Stapling", "conn-global", func(s Scheme) float64 { return s.ConnGlobal(p) }, 10, "n_s"},
		{"OCSP Stapling", "conn-client", func(s Scheme) float64 { return s.ConnClient(p) }, 0, "0"},
		{"Log (client-driven)", "conn-client", func(s Scheme) float64 { return s.ConnClient(p) }, 10, "n_s"},
		{"Log (server-driven)", "conn-global", func(s Scheme) float64 { return s.ConnGlobal(p) }, 10, "n_s"},
		{"RevCast", "storage-client", func(s Scheme) float64 { return s.StorageClient(p) }, 1000, "n_rev"},
		{"RITM", "storage-global", func(s Scheme) float64 { return s.StorageGlobal(p) }, 1000 * 6, "n_rev×(n_ra+1)"},
		{"RITM", "storage-client", func(s Scheme) float64 { return s.StorageClient(p) }, 0, "0"},
		{"RITM", "conn-global", func(s Scheme) float64 { return s.ConnGlobal(p) }, 3, "n_ca"},
		{"RITM", "conn-client", func(s Scheme) float64 { return s.ConnClient(p) }, 0, "0"},
	}
	for _, tt := range tests {
		s, ok := rows[tt.scheme]
		if !ok {
			t.Fatalf("scheme %q missing", tt.scheme)
		}
		if got := tt.get(s); got != tt.want {
			t.Errorf("%s %s = %g, want %g (%s)", tt.scheme, tt.metric, got, tt.want, tt.checked)
		}
	}
}

func TestTableIVProperties(t *testing.T) {
	want := map[string]string{
		"CRL":                 "I, P, E, T",
		"CRLSet":              "I, E, T",
		"OCSP":                "I, P, E, T",
		"OCSP Stapling":       "I, S, T",
		"Log (client-driven)": "I, P, E",
		"Log (server-driven)": "I, S",
		"RevCast":             "E, T",
		"RITM":                "-",
	}
	for _, s := range Schemes() {
		if got := s.ViolatedLetters(); got != want[s.Name] {
			t.Errorf("%s violated = %q, want %q", s.Name, got, want[s.Name])
		}
	}
}
