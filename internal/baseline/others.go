package baseline

import (
	"sync"
	"time"

	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
)

// Short-lived certificates (SLCs, §II): revocation is eliminated by making
// certificates expire within days. The price is that a compromised SLC is
// irrevocable for its whole lifetime, and every server must fetch a fresh
// certificate on schedule.

// SLCAuthority issues short-lived certificates.
type SLCAuthority struct {
	ca       dictionary.CAID
	signer   *cryptoutil.Signer
	lifetime time.Duration

	mu     sync.Mutex
	gen    *serial.Generator
	Issued int
}

// NewSLCAuthority creates an issuer of certificates valid for lifetime.
func NewSLCAuthority(ca dictionary.CAID, signer *cryptoutil.Signer, lifetime time.Duration) *SLCAuthority {
	return &SLCAuthority{
		ca:       ca,
		signer:   signer,
		lifetime: lifetime,
		gen:      serial.NewGenerator(0x51C, nil),
	}
}

// Issue signs a short-lived certificate for subject at time now.
func (a *SLCAuthority) Issue(subject string, pub []byte, now int64) (*cert.Certificate, error) {
	a.mu.Lock()
	sn := a.gen.Next()
	a.Issued++
	a.mu.Unlock()
	return cert.Issue(a.ca, a.signer, cert.Template{
		SerialNumber: sn,
		Subject:      subject,
		NotBefore:    now,
		NotAfter:     now + int64(a.lifetime/time.Second),
		PublicKey:    pub,
	})
}

// AttackWindow is the irrevocability window: the full certificate lifetime.
func (a *SLCAuthority) AttackWindow() time.Duration { return a.lifetime }

// SLCServer models a server on the SLC treadmill: it must contact the CA
// whenever its certificate nears expiry — the server-side deployment
// dependency the paper flags.
type SLCServer struct {
	authority *SLCAuthority
	subject   string
	pub       []byte

	mu         sync.Mutex
	current    *cert.Certificate
	FetchCount int
}

// NewSLCServer creates a server using short-lived certificates.
func NewSLCServer(a *SLCAuthority, subject string, pub []byte) *SLCServer {
	return &SLCServer{authority: a, subject: subject, pub: pub}
}

// Certificate returns the server's certificate at time now, renewing it
// when expired.
func (s *SLCServer) Certificate(now int64) (*cert.Certificate, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.current == nil || now >= s.current.NotAfter {
		c, err := s.authority.Issue(s.subject, s.pub, now)
		if err != nil {
			return nil, err
		}
		s.current = c
		s.FetchCount++
	}
	return s.current, nil
}

// CRLSet is the vendor-pushed revocation list (Chrome's CRLSet, Mozilla's
// OneCRL, §II): a capped subset of all revocations shipped to clients via
// software update. The cap is the scheme's documented weakness — the paper
// cites a 0.35 % coverage rate.
type CRLSet struct {
	Version  int
	contains map[string]bool
	// Dropped counts revocations that did not fit under the cap.
	Dropped int
}

// Contains reports whether the set covers sn.
func (s *CRLSet) Contains(sn serial.Number) bool {
	return s.contains[string(sn.Raw())]
}

// Len returns the number of entries shipped.
func (s *CRLSet) Len() int { return len(s.contains) }

// Coverage returns the fraction of the input revocations the set covers.
func (s *CRLSet) Coverage() float64 {
	total := len(s.contains) + s.Dropped
	if total == 0 {
		return 1
	}
	return float64(len(s.contains)) / float64(total)
}

// Vendor compiles and pushes CRLSets. MaxEntries caps the list size (the
// efficiency concession); every Push models one software update reaching
// clients by unicast.
type Vendor struct {
	MaxEntries int

	mu      sync.Mutex
	version int
	Pushes  int
}

// NewVendor creates a browser vendor shipping CRLSets of at most max
// entries.
func NewVendor(max int) *Vendor {
	return &Vendor{MaxEntries: max}
}

// Compile builds the next CRLSet from the full revocation population,
// keeping at most MaxEntries (the head of the list — vendors prioritize by
// importance; position models that here).
func (v *Vendor) Compile(revoked []serial.Number) *CRLSet {
	v.mu.Lock()
	v.version++
	version := v.version
	v.mu.Unlock()

	kept := len(revoked)
	if v.MaxEntries > 0 && kept > v.MaxEntries {
		kept = v.MaxEntries
	}
	set := &CRLSet{
		Version:  version,
		contains: make(map[string]bool, kept),
		Dropped:  len(revoked) - kept,
	}
	for _, sn := range revoked[:kept] {
		set.contains[string(sn.Raw())] = true
	}
	return set
}

// Push delivers a set to n clients (unicast software update) and returns
// the total bytes shipped, assuming bytesPerEntry per entry.
func (v *Vendor) Push(set *CRLSet, clients int, bytesPerEntry int) int64 {
	v.mu.Lock()
	v.Pushes++
	v.mu.Unlock()
	return int64(set.Len()) * int64(bytesPerEntry) * int64(clients)
}

// RevCast (§II): CAs broadcast revocations over FM radio; clients with
// receivers collect them into a full local CRL. The binding constraint is
// channel capacity — 421.8 bit/s — which bounds how fast a revocation
// burst can reach listeners.

// RevCastBitsPerSecond is the maximum broadcast bandwidth the paper
// reports for RevCast.
const RevCastBitsPerSecond = 421.8

// RevCastChannel models the broadcast medium.
type RevCastChannel struct {
	// BitsPerSecond is the channel capacity (default RevCastBitsPerSecond).
	BitsPerSecond float64
}

// NewRevCastChannel returns the paper-parameterized channel.
func NewRevCastChannel() *RevCastChannel {
	return &RevCastChannel{BitsPerSecond: RevCastBitsPerSecond}
}

// BroadcastTime returns how long broadcasting entries revocations of
// bytesPerEntry bytes each takes at channel capacity.
func (c *RevCastChannel) BroadcastTime(entries, bytesPerEntry int) time.Duration {
	if c.BitsPerSecond <= 0 {
		return 0
	}
	bits := float64(entries) * float64(bytesPerEntry) * 8
	return time.Duration(bits / c.BitsPerSecond * float64(time.Second))
}

// RevCastReceiver is a listening client: it must store the complete CRL
// (same per-client storage as plain CRLs, Table IV).
type RevCastReceiver struct {
	mu      sync.Mutex
	entries map[string]bool
	// MissedWindows counts broadcast windows the receiver was offline for,
	// requiring the catch-up infrastructure the paper points out.
	MissedWindows int
}

// NewRevCastReceiver creates an empty receiver.
func NewRevCastReceiver() *RevCastReceiver {
	return &RevCastReceiver{entries: make(map[string]bool)}
}

// Receive ingests one broadcast batch.
func (r *RevCastReceiver) Receive(serials []serial.Number) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range serials {
		r.entries[string(s.Raw())] = true
	}
}

// Miss records an offline broadcast window.
func (r *RevCastReceiver) Miss() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.MissedWindows++
}

// Revoked reports whether the receiver's CRL contains sn.
func (r *RevCastReceiver) Revoked(sn serial.Number) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[string(sn.Raw())]
}

// StoredEntries returns the receiver's CRL size (per-client storage).
func (r *RevCastReceiver) StoredEntries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Log-based approaches (§II): CAs submit revocations to a public,
// verifiable log that batches them with a maximum merge delay (MMD). The
// attack window is the MMD ("logs are designed to update their internal
// state every few hours"). Deployment is either client-driven (clients
// query the log, losing privacy) or server-driven (servers fetch and
// staple proofs, requiring server changes).

// RevocationLog is a public log with batched visibility.
type RevocationLog struct {
	mmd int64 // seconds

	mu      sync.Mutex
	pending []logEntry
	visible map[string]bool
	lastMMD int64
	// ClientQueries records the serials clients asked about — the privacy
	// loss of client-driven deployment.
	ClientQueries int
	// ServerFetches counts server-driven proof fetches.
	ServerFetches int
}

type logEntry struct {
	sn      serial.Number
	addedAt int64
}

// NewRevocationLog creates a log with the given maximum merge delay.
func NewRevocationLog(mmd time.Duration) *RevocationLog {
	return &RevocationLog{mmd: int64(mmd / time.Second), visible: make(map[string]bool)}
}

// Submit adds a revocation at time now; it becomes visible at the next MMD
// boundary.
func (l *RevocationLog) Submit(sn serial.Number, now int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pending = append(l.pending, logEntry{sn: sn, addedAt: now})
}

// merge publishes every pending entry older than the MMD. Caller holds mu.
func (l *RevocationLog) merge(now int64) {
	kept := l.pending[:0]
	for _, e := range l.pending {
		if now-e.addedAt >= l.mmd {
			l.visible[string(e.sn.Raw())] = true
		} else {
			kept = append(kept, e)
		}
	}
	l.pending = kept
}

// ClientQuery is the client-driven check: the log learns the serial.
func (l *RevocationLog) ClientQuery(sn serial.Number, now int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.merge(now)
	l.ClientQueries++
	return l.visible[string(sn.Raw())]
}

// ServerFetch is the server-driven check: the server fetches its own
// proof; clients receive it stapled with no extra connection.
func (l *RevocationLog) ServerFetch(sn serial.Number, now int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.merge(now)
	l.ServerFetches++
	return l.visible[string(sn.Raw())]
}

// AttackWindow is the log's MMD.
func (l *RevocationLog) AttackWindow() time.Duration {
	return time.Duration(l.mmd) * time.Second
}
