package baseline

import "fmt"

// Analytic comparison model behind Table IV of the paper: for each scheme,
// the storage and connection counts required so that an arbitrary client
// can establish a secure connection with an arbitrary server, plus the
// desired properties the scheme violates.
//
// Symbols (Table IV caption): n_s servers, n_ca CAs, n_ra RAs, n_cl
// clients, n_rev revocations, with n_ca ≪ n_ra < n_s ≪ n_cl.

// Property is one of the desired properties of §II.
type Property int

// Desired properties, with the letters Table IV uses.
const (
	// PropInstant is I: near-instant revocation.
	PropInstant Property = iota + 1
	// PropPrivacy is P: no third party learns client browsing.
	PropPrivacy
	// PropEfficiency is E: efficiency and scalability.
	PropEfficiency
	// PropTransparency is T: transparency and accountability.
	PropTransparency
	// PropServerChanges is S: server changes not required.
	PropServerChanges
)

// Letter returns the Table IV symbol.
func (p Property) Letter() string {
	switch p {
	case PropInstant:
		return "I"
	case PropPrivacy:
		return "P"
	case PropEfficiency:
		return "E"
	case PropTransparency:
		return "T"
	case PropServerChanges:
		return "S"
	default:
		return "?"
	}
}

// String names the property.
func (p Property) String() string {
	switch p {
	case PropInstant:
		return "near-instant revocation"
	case PropPrivacy:
		return "privacy"
	case PropEfficiency:
		return "efficiency and scalability"
	case PropTransparency:
		return "transparency and accountability"
	case PropServerChanges:
		return "server changes not required"
	default:
		return fmt.Sprintf("Property(%d)", int(p))
	}
}

// Params instantiates the Table IV symbols.
type Params struct {
	Servers     float64 // n_s
	CAs         float64 // n_ca
	RAs         float64 // n_ra
	Clients     float64 // n_cl
	Revocations float64 // n_rev
}

// PaperParams returns the magnitudes used throughout the evaluation: the
// measured dataset's revocations and CA count, and a client/server/RA
// population consistent with §VII-C (10 clients per RA, 230 M RAs).
func PaperParams() Params {
	return Params{
		Servers:     1e8,       // ~100 M TLS servers
		CAs:         254,       // the dataset's CRL issuer count
		RAs:         2.3e8 / 1, // 230 M RAs at 10 clients each — see §VII-C
		Clients:     2.3e9,     // 2.3 B clients (MaxMind population, §VII-C)
		Revocations: 1_381_992, // dataset total (§VII-A)
	}
}

// Scheme is one Table IV row.
type Scheme struct {
	// Name as printed in Table IV.
	Name string
	// Footnote carries the table's qualifier (e.g. CRLSet truncation).
	Footnote string
	// StorageGlobal is total revocation-entry replication system-wide.
	StorageGlobal func(Params) float64
	// StorageClient is revocation entries stored per client.
	StorageClient func(Params) float64
	// ConnGlobal is total dedicated revocation connections system-wide.
	ConnGlobal func(Params) float64
	// ConnClient is dedicated revocation connections per client.
	ConnClient func(Params) float64
	// Violated lists the §II properties the scheme fails.
	Violated []Property
}

// ViolatedLetters renders the violated properties as Table IV does
// (e.g. "I, P, E, T"), with "-" for none.
func (s Scheme) ViolatedLetters() string {
	if len(s.Violated) == 0 {
		return "-"
	}
	out := ""
	for i, p := range s.Violated {
		if i > 0 {
			out += ", "
		}
		out += p.Letter()
	}
	return out
}

// Schemes returns every Table IV row, in the paper's order. The formulas
// are transcribed exactly; tests assert them symbolically.
func Schemes() []Scheme {
	return []Scheme{
		{
			Name: "CRL",
			// Every client stores the full list, plus the CA's copy.
			StorageGlobal: func(p Params) float64 { return p.Revocations * (p.Clients + 1) },
			StorageClient: func(p Params) float64 { return p.Revocations },
			ConnGlobal:    func(p Params) float64 { return p.Clients * p.CAs },
			ConnClient:    func(p Params) float64 { return p.CAs },
			Violated:      []Property{PropInstant, PropPrivacy, PropEfficiency, PropTransparency},
		},
		{
			Name:          "CRLSet",
			Footnote:      "CRLSets contain a limited number of revocations",
			StorageGlobal: func(p Params) float64 { return p.Revocations * (p.Clients + 1) },
			StorageClient: func(p Params) float64 { return p.Revocations },
			ConnGlobal:    func(p Params) float64 { return p.Clients },
			ConnClient:    func(p Params) float64 { return 1 },
			Violated:      []Property{PropInstant, PropEfficiency, PropTransparency},
		},
		{
			Name:          "OCSP",
			StorageGlobal: func(p Params) float64 { return p.Revocations },
			StorageClient: func(p Params) float64 { return 0 },
			ConnGlobal:    func(p Params) float64 { return p.Clients * p.Servers },
			ConnClient:    func(p Params) float64 { return p.Servers },
			Violated:      []Property{PropInstant, PropPrivacy, PropEfficiency, PropTransparency},
		},
		{
			Name:          "OCSP Stapling",
			Footnote:      "OCSP Stapling",
			StorageGlobal: func(p Params) float64 { return p.Revocations + p.Servers },
			StorageClient: func(p Params) float64 { return 0 },
			ConnGlobal:    func(p Params) float64 { return p.Servers },
			ConnClient:    func(p Params) float64 { return 0 },
			Violated:      []Property{PropInstant, PropServerChanges, PropTransparency},
		},
		{
			Name:          "Log (client-driven)",
			Footnote:      "Client-driven approaches",
			StorageGlobal: func(p Params) float64 { return p.Revocations },
			StorageClient: func(p Params) float64 { return 0 },
			ConnGlobal:    func(p Params) float64 { return p.Clients * p.Servers },
			ConnClient:    func(p Params) float64 { return p.Servers },
			Violated:      []Property{PropInstant, PropPrivacy, PropEfficiency},
		},
		{
			Name:          "Log (server-driven)",
			Footnote:      "Server-driven approaches",
			StorageGlobal: func(p Params) float64 { return p.Revocations },
			StorageClient: func(p Params) float64 { return 0 },
			ConnGlobal:    func(p Params) float64 { return p.Servers },
			ConnClient:    func(p Params) float64 { return 0 },
			Violated:      []Property{PropInstant, PropServerChanges},
		},
		{
			Name:          "RevCast",
			Footnote:      "RevCast uses radio broadcast for dissemination",
			StorageGlobal: func(p Params) float64 { return p.Revocations * (p.Clients + 1) },
			StorageClient: func(p Params) float64 { return p.Revocations },
			ConnGlobal:    func(p Params) float64 { return p.Clients },
			ConnClient:    func(p Params) float64 { return p.Revocations }, // broadcast receipts
			Violated:      []Property{PropEfficiency, PropTransparency},
		},
		{
			Name:          "RITM",
			StorageGlobal: func(p Params) float64 { return p.Revocations * (p.RAs + 1) },
			StorageClient: func(p Params) float64 { return 0 },
			ConnGlobal:    func(p Params) float64 { return p.CAs },
			ConnClient:    func(p Params) float64 { return 0 },
			Violated:      nil,
		},
	}
}
