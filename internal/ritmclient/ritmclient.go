// Package ritmclient implements the RITM-supported TLS client (§III steps
// 5–7, §V): it requests RITM protection in the ClientHello, verifies every
// revocation status an on-path RA injects (proof against the signed root,
// root signature against the trust pool, freshness against the 2∆ policy),
// and interrupts the connection — including long-established ones — when a
// fresh absence proof stops arriving or a presence proof shows the
// certificate revoked.
//
// The watchdog on established connections is what closes the race condition
// of §V: a connection set up seconds before its certificate was revoked is
// torn down within 2∆ rather than surviving until it naturally ends.
package ritmclient

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"time"

	"ritm/internal/cert"
	"ritm/internal/dictionary"
	"ritm/internal/serial"
	"ritm/internal/tlssim"
)

// Errors returned by the RITM client.
var (
	// ErrRevoked reports a valid presence proof: the server certificate is
	// revoked and the connection must not be used.
	ErrRevoked = errors.New("ritmclient: server certificate is revoked")
	// ErrNoStatus reports that no revocation status arrived during the
	// handshake although policy requires one (blocking/MITM indication, §V).
	ErrNoStatus = errors.New("ritmclient: no revocation status received")
	// ErrStatusExpired reports that an established connection went longer
	// than 2∆ without a fresh status (§III step 7).
	ErrStatusExpired = errors.New("ritmclient: revocation status expired")
	// ErrWrongCertificate reports a status that is not about the server
	// certificate of this connection.
	ErrWrongCertificate = errors.New("ritmclient: status is for a different certificate")
	// ErrUnknownCA reports a status from a CA outside the trust pool.
	ErrUnknownCA = errors.New("ritmclient: status from unknown CA")
	// ErrDowngrade reports a missing server-side deployment confirmation
	// when policy demands one (§IV/§V downgrade protection).
	ErrDowngrade = errors.New("ritmclient: server did not confirm RITM deployment")
)

// Config configures the RITM client.
type Config struct {
	// Pool anchors both certificate chains and dictionary roots.
	Pool *cert.Pool
	// Delta is the fallback ∆ when the CA certificate does not carry one.
	// The effective ∆ for freshness policy comes from the signed root
	// itself (each CA expresses its own ∆, §VIII "Local ∆ parameter").
	Delta time.Duration
	// RequireStatus makes the handshake fail unless at least one valid
	// status arrived before the first application read/write. This is the
	// bootstrapped client of §IV/§V: it knows an RA is on path, so a
	// missing status is an attack, not an unprotected network.
	RequireStatus bool
	// RequireServerDeployment additionally demands the handshake-protected
	// ServerHello confirmation (TLS-terminator deployment model, §IV).
	RequireServerDeployment bool
	// WatchInterval is how often the established-connection watchdog checks
	// staleness. Zero selects ∆/2 (capped at one second minimum).
	WatchInterval time.Duration
	// Now is the clock (nil = time.Now).
	Now func() time.Time
	// SessionCache enables TLS resumption when non-nil.
	SessionCache *tlssim.ClientSessionCache
}

func (c *Config) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// Verifier checks revocation statuses for one connection and tracks their
// freshness over the connection's lifetime. It is safe for concurrent use
// (the reading goroutine updates it, the watchdog reads it).
type Verifier struct {
	cfg *Config

	mu         sync.Mutex
	validCount int
	lastValid  time.Time
	lastDelta  time.Duration
	revoked    bool
}

// NewVerifier creates a verifier for one connection under cfg.
func NewVerifier(cfg *Config) *Verifier {
	return &Verifier{cfg: cfg, lastValid: cfg.now()}
}

// Handle is the tlssim.StatusHandler: it decodes and verifies one injected
// revocation status (§III step 5). A verification failure or a presence
// proof returns an error, which makes the TLS layer abort the connection.
func (v *Verifier) Handle(raw []byte, state *tlssim.ConnectionState) error {
	status, err := dictionary.DecodeStatus(raw)
	if err != nil {
		return fmt.Errorf("ritmclient: decode status: %w", err)
	}
	return v.verify(status, state)
}

func (v *Verifier) verify(status *dictionary.Status, state *tlssim.ConnectionState) error {
	if status.Root == nil {
		return fmt.Errorf("%w: status without signed root", dictionary.ErrBadProof)
	}
	// 5b prerequisite: the status must be about one of this connection's
	// certificates. Statuses carrying a subject serial are routed to the
	// matching chain element (§VIII "Certificate chains"); bare statuses
	// must be about the leaf.
	subject, pub, err := v.routeStatus(status, state)
	if err != nil {
		return err
	}
	// 5b + 5c: proof against signed root, signature, freshness within 2∆.
	res, err := status.Check(subject, pub, v.cfg.now().Unix())
	if err != nil {
		return err
	}
	if res == dictionary.CheckRevoked {
		v.mu.Lock()
		v.revoked = true
		v.mu.Unlock()
		return fmt.Errorf("%w: serial %v (CA %s)", ErrRevoked, subject, status.Root.CA)
	}
	v.mu.Lock()
	v.validCount++
	v.lastValid = v.cfg.now()
	v.lastDelta = status.Root.Delta()
	v.mu.Unlock()
	return nil
}

// routeStatus resolves which certificate serial the status is about and
// which public key verifies its signed root: the leaf by default, or —
// when the status names a subject — the chain element whose issuer and
// serial match. A status that matches nothing on this connection is
// rejected: accepting a proof about an unrelated certificate would tell
// the client nothing about its peer.
//
// The verification key comes from the next chain element when the issuing
// CA is an intermediate (its key was already validated by the standard
// chain check of step 5a) and from the trust pool for roots and for
// resumed connections where no chain was exchanged.
func (v *Verifier) routeStatus(status *dictionary.Status, state *tlssim.ConnectionState) (serial.Number, ed25519.PublicKey, error) {
	matchIndex := -1
	switch {
	case status.Subject.IsZero():
		if state.ServerCA == "" || status.Root.CA != state.ServerCA {
			return serial.Number{}, nil, fmt.Errorf("%w: status from %s, certificate issued by %s",
				ErrWrongCertificate, status.Root.CA, state.ServerCA)
		}
		status.Subject = state.ServerSerial
		matchIndex = 0

	case status.Root.CA == state.ServerCA && status.Subject.Equal(state.ServerSerial):
		// Leaf match works even on resumed connections.
		matchIndex = 0

	default:
		for i, c := range state.PeerChain {
			if c.Issuer == status.Root.CA && c.SerialNumber.Equal(status.Subject) {
				matchIndex = i
				break
			}
		}
		if matchIndex < 0 {
			return serial.Number{}, nil, fmt.Errorf("%w: status about %v from %s matches no chain certificate",
				ErrWrongCertificate, status.Subject, status.Root.CA)
		}
	}
	if matchIndex+1 < len(state.PeerChain) {
		return status.Subject, state.PeerChain[matchIndex+1].PublicKey, nil
	}
	pub, ok := v.cfg.Pool.CAKey(status.Root.CA)
	if !ok {
		return serial.Number{}, nil, fmt.Errorf("%w: %s", ErrUnknownCA, status.Root.CA)
	}
	return status.Subject, pub, nil
}

// ValidCount returns how many valid absence proofs have been accepted.
func (v *Verifier) ValidCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.validCount
}

// Revoked reports whether a valid presence proof was seen.
func (v *Verifier) Revoked() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.revoked
}

// Expired reports whether the last valid status is older than 2∆ at time
// now — the client-side interruption condition of §III step 7.
func (v *Verifier) Expired(now time.Time) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	delta := v.lastDelta
	if delta == 0 {
		delta = v.cfg.Delta
	}
	if delta == 0 {
		return false // no policy configured and none learned yet
	}
	return now.Sub(v.lastValid) > 2*delta
}

// Conn is a RITM-protected connection: a tlssim.Conn plus the verifier and
// the staleness watchdog.
type Conn struct {
	*tlssim.Conn
	verifier *Verifier

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Verifier exposes the connection's status verifier (tests and examples
// read its counters).
func (c *Conn) Verifier() *Verifier { return c.verifier }

// Close stops the watchdog and closes the underlying connection.
func (c *Conn) Close() error {
	c.stopWatchdog()
	return c.Conn.Close()
}

func (c *Conn) stopWatchdog() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// watchdog interrupts the connection when the status goes stale (§III:
// "the connection is interrupted by the client, when a fresh absence proof
// is not provided").
func (c *Conn) watchdog(interval time.Duration, now func() time.Time) {
	defer close(c.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if c.verifier.Expired(now()) {
				c.Conn.Abort()
				return
			}
		case <-c.stop:
			return
		}
	}
}

// Dial establishes a RITM-protected TLS-sim connection to addr. The
// handshake requests RITM protection; every injected status is verified;
// and if cfg.RequireStatus is set, the connection fails unless a valid
// status arrived with the handshake.
func Dial(network, addr, serverName string, cfg *Config) (*Conn, error) {
	if cfg == nil || cfg.Pool == nil {
		return nil, fmt.Errorf("ritmclient: config with a certificate pool is required")
	}
	verifier := NewVerifier(cfg)
	tcfg := &tlssim.Config{
		Pool:         cfg.Pool,
		ServerName:   serverName,
		RequestRITM:  true,
		OnStatus:     verifier.Handle,
		SessionCache: cfg.SessionCache,
		Time:         cfg.Now,
	}
	raw, err := tlssim.Dial(network, addr, tcfg)
	if err != nil {
		return nil, err
	}
	if err := checkPostHandshake(raw, verifier, cfg); err != nil {
		raw.Abort()
		return nil, err
	}
	c := &Conn{
		Conn:     raw,
		verifier: verifier,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	interval := cfg.WatchInterval
	if interval == 0 {
		interval = cfg.Delta / 2
		if interval < time.Second {
			interval = time.Second
		}
	}
	go c.watchdog(interval, cfg.now)
	return c, nil
}

// checkPostHandshake enforces the handshake-time policy: deployment
// confirmation (downgrade protection) and at-least-one-status.
func checkPostHandshake(conn *tlssim.Conn, verifier *Verifier, cfg *Config) error {
	state := conn.ConnectionState()
	if cfg.RequireServerDeployment && !state.ServerDeploysRITM {
		return ErrDowngrade
	}
	if cfg.RequireStatus && verifier.ValidCount() == 0 {
		return ErrNoStatus
	}
	return nil
}
