package ritmclient

import (
	"errors"
	"testing"
	"time"

	"ritm/internal/ca"
	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/ra"
	"ritm/internal/serial"
	"ritm/internal/tlssim"
)

// chainEnv is a deployment with a 3-certificate chain (root → intermediate
// → leaf) and an RA running the §VIII chain-proof extension.
type chainEnv struct {
	root      *ca.CA
	agent     *ra.RA
	pool      *cert.Pool
	chain     cert.Chain
	leafKey   *cryptoutil.Signer
	interCert *cert.Certificate
}

func newChainEnv(t *testing.T) *chainEnv {
	t.Helper()
	dp := cdn.NewDistributionPoint(nil)
	root, err := ca.New(ca.Config{ID: "ChainRoot", Delta: 10 * time.Second, Publisher: dp})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.RegisterCA("ChainRoot", root.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := root.PublishRoot(); err != nil {
		t.Fatal(err)
	}

	// The intermediate CA has its own dictionary on the same CDN; its
	// certificate is issued (and revocable) by the root.
	interKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	interCert, err := root.IssueCACertificate("ChainInter", interKey.Public(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	now := time.Now().Unix()
	leafKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	leafCert, err := cert.Issue("ChainInter", interKey, cert.Template{
		SerialNumber: serial.FromUint64(0x1EAF),
		Subject:      "chain.example",
		NotBefore:    now - 1,
		NotAfter:     now + 1<<20,
		PublicKey:    leafKey.Public(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// The RA replicates BOTH dictionaries: the root's (which can revoke
	// the intermediate) and the intermediate's (which can revoke the leaf).
	// The intermediate's dictionary authority is modeled by a second CA
	// object sharing the intermediate's key and identity.
	interCA, err := ca.New(ca.Config{
		ID:        "ChainInter",
		Delta:     10 * time.Second,
		Signer:    interKey,
		Publisher: dp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.RegisterCA("ChainInter", interKey.Public()); err != nil {
		t.Fatal(err)
	}
	if err := interCA.PublishRoot(); err != nil {
		t.Fatal(err)
	}

	agent, err := ra.New(ra.Config{
		Roots:       []*cert.Certificate{root.RootCertificate(), interCA.RootCertificate()},
		Origin:      cdn.NewEdgeServer(dp, 0, nil),
		Delta:       10 * time.Second,
		ChainProofs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	pool, err := cert.NewPool(root.RootCertificate())
	if err != nil {
		t.Fatal(err)
	}
	env := &chainEnv{
		root:      root,
		agent:     agent,
		pool:      pool,
		chain:     cert.Chain{leafCert, interCert},
		leafKey:   leafKey,
		interCert: interCert,
	}
	_ = interCA
	return env
}

func TestChainProofsDeliverStatusPerCertificate(t *testing.T) {
	env := newChainEnv(t)
	addr := startEcho(t, &tlssim.Config{Chain: env.chain, Key: env.leafKey})
	proxy, err := env.agent.NewProxy("127.0.0.1:0", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	conn, err := Dial("tcp", proxy.Addr().String(), "chain.example", &Config{
		Pool:          env.pool,
		Delta:         10 * time.Second,
		RequireStatus: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Two statuses: one for the leaf (from ChainInter's dictionary), one
	// for the intermediate certificate (from ChainRoot's dictionary).
	if got := conn.Verifier().ValidCount(); got != 2 {
		t.Errorf("verified statuses = %d, want 2 (leaf + intermediate)", got)
	}
}

func TestChainProofsRevokedIntermediateRejected(t *testing.T) {
	env := newChainEnv(t)
	// The ROOT revokes the INTERMEDIATE's certificate; the leaf itself is
	// untouched. Without chain proofs this attack window stays open.
	if _, err := env.root.Revoke(env.interCert.SerialNumber); err != nil {
		t.Fatal(err)
	}
	if err := env.agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	addr := startEcho(t, &tlssim.Config{Chain: env.chain, Key: env.leafKey})
	proxy, err := env.agent.NewProxy("127.0.0.1:0", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	_, err = Dial("tcp", proxy.Addr().String(), "chain.example", &Config{
		Pool:          env.pool,
		Delta:         10 * time.Second,
		RequireStatus: true,
	})
	if err == nil {
		t.Fatal("chain with revoked intermediate accepted")
	}
	if !errors.Is(err, tlssim.ErrStatusRejected) && !errors.Is(err, ErrRevoked) {
		t.Errorf("err = %v, want revocation rejection", err)
	}
}

func TestChainedRAsWithChainProofs(t *testing.T) {
	// Two chain-proof RAs on one path: the outer RA must match each
	// upstream status to the right chain identity (leaf vs intermediate),
	// never replacing an intermediate's status with a leaf proof. The
	// client ends up with exactly one valid status per chain certificate.
	env := newChainEnv(t)
	outer, err := ra.New(ra.Config{
		Roots: []*cert.Certificate{
			env.root.RootCertificate(),
		},
		Origin:      cdn.NewEdgeServer(cdn.NewDistributionPoint(nil), 0, nil),
		Delta:       10 * time.Second,
		ChainProofs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The outer RA has no dictionaries synced (its origin is empty), so it
	// must forward both upstream statuses untouched.

	addr := startEcho(t, &tlssim.Config{Chain: env.chain, Key: env.leafKey})
	inner, err := env.agent.NewProxy("127.0.0.1:0", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	outerProxy, err := outer.NewProxy("127.0.0.1:0", inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer outerProxy.Close()

	conn, err := Dial("tcp", outerProxy.Addr().String(), "chain.example", &Config{
		Pool:          env.pool,
		Delta:         10 * time.Second,
		RequireStatus: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got := conn.Verifier().ValidCount(); got != 2 {
		t.Errorf("verified statuses through chained RAs = %d, want 2", got)
	}
	if st := outer.Stats(); st.StatusesForwarded != 2 || st.StatusesReplaced != 0 {
		t.Errorf("outer RA stats = %+v, want 2 forwarded / 0 replaced", st)
	}
}

func TestRouteStatusMatchesChainElements(t *testing.T) {
	env := newChainEnv(t)
	v := NewVerifier(&Config{Pool: env.pool, Delta: 10 * time.Second})
	state := &tlssim.ConnectionState{
		ServerCA:     "ChainInter",
		ServerSerial: env.chain[0].SerialNumber,
		PeerChain:    env.chain,
	}

	// A status about the intermediate routes to the intermediate and is
	// verified under the root's key (the intermediate is chain[1], whose
	// issuer is anchored in the pool).
	interStatus, err := env.agent.Status("ChainRoot", env.interCert.SerialNumber)
	if err != nil {
		t.Fatal(err)
	}
	got, pub, err := v.routeStatus(interStatus, state)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(env.interCert.SerialNumber) {
		t.Errorf("routed to %v", got)
	}
	if err := interStatus.Root.VerifySignature(pub); err != nil {
		t.Errorf("resolved key does not verify the root: %v", err)
	}

	// A status about the leaf resolves the intermediate's key from the
	// chain, not the pool.
	leafStatus, err := env.agent.Status("ChainInter", env.chain[0].SerialNumber)
	if err != nil {
		t.Fatal(err)
	}
	if _, pub, err = v.routeStatus(leafStatus, state); err != nil {
		t.Fatal(err)
	}
	if err := leafStatus.Root.VerifySignature(pub); err != nil {
		t.Errorf("leaf status key from chain does not verify: %v", err)
	}

	// A status about an unrelated certificate is rejected.
	stray, err := env.agent.Status("ChainRoot", serial.FromUint64(0xDEAD))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.routeStatus(stray, state); !errors.Is(err, ErrWrongCertificate) {
		t.Errorf("stray status routed: %v", err)
	}
}
