package ritmclient

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ritm/internal/ca"
	"ritm/internal/cdn"
	"ritm/internal/cert"
	"ritm/internal/cryptoutil"
	"ritm/internal/dictionary"
	"ritm/internal/ra"
	"ritm/internal/serial"
	"ritm/internal/tlssim"
)

// env is the full pipeline: CA → distribution point → edge → RA proxy →
// server, with a client trust pool.
type env struct {
	ca    *ca.CA
	agent *ra.RA
	pool  *cert.Pool
	chain cert.Chain
	key   *cryptoutil.Signer
}

func newEnv(t *testing.T, delta time.Duration) *env {
	t.Helper()
	dp := cdn.NewDistributionPoint(nil)
	authority, err := ca.New(ca.Config{ID: "CA1", Delta: delta, Publisher: dp})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp.RegisterCA("CA1", authority.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := authority.PublishRoot(); err != nil {
		t.Fatal(err)
	}
	agent, err := ra.New(ra.Config{
		Roots:  []*cert.Certificate{authority.RootCertificate()},
		Origin: cdn.NewEdgeServer(dp, 0, nil),
		Delta:  delta,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	serverKey, err := cryptoutil.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := authority.IssueServerCertificate("example.com", serverKey.Public())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cert.NewPool(authority.RootCertificate())
	if err != nil {
		t.Fatal(err)
	}
	return &env{ca: authority, agent: agent, pool: pool, chain: cert.Chain{leaf}, key: serverKey}
}

// startEcho runs a TLS-sim echo server and returns its address.
func startEcho(t *testing.T, cfg *tlssim.Config) net.Addr {
	t.Helper()
	return startServerFunc(t, cfg, func(conn *tlssim.Conn) {
		buf := make([]byte, 4096)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			if _, err := conn.Write(buf[:n]); err != nil {
				return
			}
		}
	})
}

// startDrip runs a TLS-sim server that writes "tick" every interval, the
// long-lived-connection workload (VPNs, IoT) of §II.
func startDrip(t *testing.T, cfg *tlssim.Config, interval time.Duration) net.Addr {
	t.Helper()
	return startServerFunc(t, cfg, func(conn *tlssim.Conn) {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for range ticker.C {
			if _, err := conn.Write([]byte("tick")); err != nil {
				return
			}
		}
	})
}

func startServerFunc(t *testing.T, cfg *tlssim.Config, serve func(*tlssim.Conn)) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn := tlssim.Server(raw, cfg)
				defer conn.Close()
				serve(conn)
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		wg.Wait()
	})
	return ln.Addr()
}

func (e *env) proxyTo(t *testing.T, serverAddr net.Addr) *ra.Proxy {
	t.Helper()
	proxy, err := e.agent.NewProxy("127.0.0.1:0", serverAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	return proxy
}

func TestDialThroughRAVerifiesStatus(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	addr := startEcho(t, &tlssim.Config{Chain: e.chain, Key: e.key})
	proxy := e.proxyTo(t, addr)

	conn, err := Dial("tcp", proxy.Addr().String(), "example.com", &Config{
		Pool:          e.pool,
		Delta:         10 * time.Second,
		RequireStatus: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if conn.Verifier().ValidCount() == 0 {
		t.Error("no valid status counted")
	}
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("echo: %q, %v", buf[:n], err)
	}
}

func TestRevokedCertificateRejectedAtHandshake(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	if _, err := e.ca.Revoke(e.chain.Leaf().SerialNumber); err != nil {
		t.Fatal(err)
	}
	if err := e.agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	addr := startEcho(t, &tlssim.Config{Chain: e.chain, Key: e.key})
	proxy := e.proxyTo(t, addr)

	_, err := Dial("tcp", proxy.Addr().String(), "example.com", &Config{
		Pool:          e.pool,
		Delta:         10 * time.Second,
		RequireStatus: true,
	})
	if err == nil {
		t.Fatal("handshake with revoked certificate succeeded")
	}
	if !errors.Is(err, tlssim.ErrStatusRejected) && !errors.Is(err, ErrRevoked) {
		t.Errorf("err = %v, want revocation rejection", err)
	}
}

func TestRequireStatusFailsWithoutRA(t *testing.T) {
	// Direct connection, no RA on path: a blocking adversary (or a tunnel)
	// produces exactly this view, and the bootstrapped client refuses (§V).
	e := newEnv(t, 10*time.Second)
	addr := startEcho(t, &tlssim.Config{Chain: e.chain, Key: e.key})

	_, err := Dial("tcp", addr.String(), "example.com", &Config{
		Pool:          e.pool,
		Delta:         10 * time.Second,
		RequireStatus: true,
	})
	if !errors.Is(err, ErrNoStatus) {
		t.Errorf("err = %v, want ErrNoStatus", err)
	}
}

func TestRequireServerDeploymentConfirmation(t *testing.T) {
	e := newEnv(t, 10*time.Second)

	// Server does not announce RITM: downgrade detected.
	plain := startEcho(t, &tlssim.Config{Chain: e.chain, Key: e.key})
	_, err := Dial("tcp", plain.String(), "example.com", &Config{
		Pool:                    e.pool,
		Delta:                   10 * time.Second,
		RequireServerDeployment: true,
	})
	if !errors.Is(err, ErrDowngrade) {
		t.Errorf("err = %v, want ErrDowngrade", err)
	}

	// Announcing server (TLS-terminator model): accepted.
	announcing := startEcho(t, &tlssim.Config{Chain: e.chain, Key: e.key, AnnounceRITM: true})
	conn, err := Dial("tcp", announcing.String(), "example.com", &Config{
		Pool:                    e.pool,
		Delta:                   10 * time.Second,
		RequireServerDeployment: true,
	})
	if err != nil {
		t.Fatalf("announcing server rejected: %v", err)
	}
	conn.Close()
}

func TestWatchdogInterruptsWhenStatusesStop(t *testing.T) {
	// No RA on path and a lenient handshake policy: statuses never arrive,
	// so 2∆ after the handshake the watchdog must interrupt (§III step 7).
	e := newEnv(t, 10*time.Second)
	addr := startDrip(t, &tlssim.Config{Chain: e.chain, Key: e.key}, 100*time.Millisecond)

	conn, err := Dial("tcp", addr.String(), "example.com", &Config{
		Pool:          e.pool,
		Delta:         400 * time.Millisecond, // 2∆ = 800 ms
		WatchInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	buf := make([]byte, 16)
	for time.Now().Before(deadline) {
		if _, err := conn.Read(buf); err != nil {
			return // interrupted as required
		}
	}
	t.Fatal("connection survived more than 2∆ without any revocation status")
}

func TestMidConnectionRevocationInterrupts(t *testing.T) {
	// The race-condition protection of §V: a long-lived connection is
	// established, THEN the certificate is revoked; the periodic status
	// (presence proof) must kill the established connection. ∆ = 1 s keeps
	// the test fast; the CA refresher and RA fetcher run as in production.
	e := newEnv(t, time.Second)
	refresher := e.ca.StartRefresher(nil)
	t.Cleanup(refresher.Shutdown)
	fetcher := e.agent.StartFetcher(nil)
	t.Cleanup(fetcher.Shutdown)

	addr := startDrip(t, &tlssim.Config{Chain: e.chain, Key: e.key}, 100*time.Millisecond)
	proxy := e.proxyTo(t, addr)

	conn, err := Dial("tcp", proxy.Addr().String(), "example.com", &Config{
		Pool:          e.pool,
		RequireStatus: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Read a little data: the connection works.
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}

	// Revoke mid-connection and let the RA learn it.
	if _, err := e.ca.Revoke(e.chain.Leaf().SerialNumber); err != nil {
		t.Fatal(err)
	}
	if err := e.agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(15 * time.Second)
	var readErr error
	for time.Now().Before(deadline) {
		if _, readErr = conn.Read(buf); readErr != nil {
			break
		}
	}
	if readErr == nil {
		t.Fatal("established connection survived revocation")
	}
	if !errors.Is(readErr, tlssim.ErrStatusRejected) {
		t.Errorf("read err = %v, want status rejection", readErr)
	}
	if !conn.Verifier().Revoked() {
		t.Error("verifier did not record revocation")
	}
}

func TestVerifierRejectsMismatchedStatuses(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	cfg := &Config{Pool: e.pool, Delta: 10 * time.Second}

	// Revoke the leaf so its status carries a presence proof bound to the
	// exact serial (absence proofs for an empty dictionary are universal,
	// so they cannot distinguish serials — presence proofs can).
	if _, err := e.ca.Revoke(e.chain.Leaf().SerialNumber); err != nil {
		t.Fatal(err)
	}
	if err := e.agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	status, err := e.agent.Status("CA1", e.chain.Leaf().SerialNumber)
	if err != nil {
		t.Fatal(err)
	}
	raw := status.Encode()

	// Status about a different certificate (wrong serial in state).
	v := NewVerifier(cfg)
	state := &tlssim.ConnectionState{ServerCA: "CA1", ServerSerial: serial.FromUint64(999)}
	if err := v.Handle(raw, state); err == nil {
		t.Error("status accepted for a different serial")
	}

	// Status from a CA that did not issue the certificate.
	v = NewVerifier(cfg)
	state = &tlssim.ConnectionState{ServerCA: "CA2", ServerSerial: e.chain.Leaf().SerialNumber}
	if err := v.Handle(raw, state); !errors.Is(err, ErrWrongCertificate) {
		t.Errorf("err = %v, want ErrWrongCertificate", err)
	}

	// Garbage is rejected.
	v = NewVerifier(cfg)
	if err := v.Handle([]byte{1, 2, 3}, state); err == nil {
		t.Error("garbage accepted as status")
	}
}

func TestVerifierExpiry(t *testing.T) {
	e := newEnv(t, 10*time.Second)
	now := time.Unix(1_400_000_000, 0)
	cfg := &Config{
		Pool:  e.pool,
		Delta: 10 * time.Second,
		Now:   func() time.Time { return now },
	}
	v := NewVerifier(cfg)

	if v.Expired(now.Add(19 * time.Second)) {
		t.Error("expired within 2∆")
	}
	if !v.Expired(now.Add(21 * time.Second)) {
		t.Error("not expired beyond 2∆")
	}
}

func TestVerifierTracksDeltaFromSignedRoot(t *testing.T) {
	// The effective ∆ comes from the signed root (per-CA ∆, §VIII), not
	// from the client's fallback configuration.
	e := newEnv(t, 30*time.Second) // CA publishes ∆ = 30 s
	now := time.Unix(1_400_000_000, 0)
	cfg := &Config{
		Pool:  e.pool,
		Delta: 5 * time.Second, // fallback would expire much sooner
		Now:   func() time.Time { return now },
	}
	v := NewVerifier(cfg)
	status, err := e.agent.Status("CA1", e.chain.Leaf().SerialNumber)
	if err != nil {
		t.Fatal(err)
	}
	state := &tlssim.ConnectionState{ServerCA: "CA1", ServerSerial: e.chain.Leaf().SerialNumber}
	if err := v.Handle(status.Encode(), state); err != nil {
		t.Fatal(err)
	}
	if v.Expired(now.Add(45 * time.Second)) {
		t.Error("expired before 2×30 s although the root's ∆ is 30 s")
	}
	if !v.Expired(now.Add(61 * time.Second)) {
		t.Error("not expired after 2×30 s")
	}
}

func TestStatusCheckAgainstDictionaryResults(t *testing.T) {
	// End-to-end unit check of the CheckValid / CheckRevoked outcomes as
	// the verifier sees them.
	e := newEnv(t, 10*time.Second)
	sn := e.chain.Leaf().SerialNumber
	pub, _ := e.pool.CAKey("CA1")

	status, err := e.agent.Status("CA1", sn)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := status.Check(sn, pub, time.Now().Unix()); err != nil || res != dictionary.CheckValid {
		t.Fatalf("pre-revocation check = %v, %v", res, err)
	}

	if _, err := e.ca.Revoke(sn); err != nil {
		t.Fatal(err)
	}
	if err := e.agent.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	status, err = e.agent.Status("CA1", sn)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := status.Check(sn, pub, time.Now().Unix()); err != nil || res != dictionary.CheckRevoked {
		t.Fatalf("post-revocation check = %v, %v", res, err)
	}
}
